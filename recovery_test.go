package otpdb_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"otpdb"
)

// bumpN drives n "incr" transactions (see session_test.go's
// counterCluster) through the given site and returns the last result.
func bumpN(t *testing.T, cluster *otpdb.Cluster, site, n int) otpdb.Result {
	t.Helper()
	sess, err := cluster.Session(site)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var last otpdb.Result
	for i := 0; i < n; i++ {
		res, err := sess.Exec(ctx, "incr")
		if err != nil {
			t.Fatalf("incr %d at site %d: %v", i, site, err)
		}
		last = res
	}
	return last
}

func readCounter(t *testing.T, cluster *otpdb.Cluster, site int) int64 {
	t.Helper()
	v, _, err := cluster.Read(site, "counter", "n")
	if err != nil {
		t.Fatal(err)
	}
	return otpdb.AsInt64(v)
}

// TestDurableColdRestart commits through a durable single-site database,
// stops it cleanly, reopens the directory and checks that the full
// committed state and the definitive index counter are recovered.
func TestDurableColdRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() *otpdb.Cluster {
		c := counterCluster(t,
			otpdb.WithReplicas(1),
			otpdb.WithDurability(dir),
			otpdb.WithSyncPolicy(otpdb.SyncEveryCommit),
			otpdb.WithCheckpointEvery(25), // several checkpoints over the run
		)
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		return c
	}

	c1 := open()
	last := bumpN(t, c1, 0, 100)
	if last.TOIndex != 100 {
		t.Fatalf("last TOIndex = %d, want 100", last.TOIndex)
	}
	c1.Stop()

	c2 := open()
	defer c2.Stop()
	base, err := c2.RecoveredIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	if base != 100 {
		t.Fatalf("RecoveredIndex = %d, want 100", base)
	}
	if got := readCounter(t, c2, 0); got != 100 {
		t.Fatalf("recovered counter = %d, want 100", got)
	}
	// New commits continue the definitive order where it left off.
	if res := bumpN(t, c2, 0, 1); res.TOIndex != 101 || otpdb.AsInt64(res.Value) != 101 {
		t.Fatalf("post-recovery commit = TO %d value %d, want 101/101", res.TOIndex, otpdb.AsInt64(res.Value))
	}
}

// TestDurableCrashRestart simulates a kill -9: the first cluster is
// abandoned without Stop (no flush, no checkpoint finalization), then
// the directory is reopened. Every acknowledged commit must be
// recovered exactly. Runs under -race in CI.
func TestDurableCrashRestart(t *testing.T) {
	dir := t.TempDir()
	c1 := counterCluster(t,
		otpdb.WithReplicas(1),
		otpdb.WithDurability(dir),
		otpdb.WithSyncPolicy(otpdb.SyncNever), // process crash: write() suffices
		otpdb.WithCheckpointEvery(-1),         // recovery replays the whole log
	)
	if err := c1.Start(); err != nil {
		t.Fatal(err)
	}
	bumpN(t, c1, 0, 60)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c1.WaitForCommits(ctx, 60); err != nil {
		t.Fatal(err)
	}
	// No Stop: the "process" dies here. The old goroutines idle (nothing
	// more is submitted) while the directory is reopened.

	c2 := counterCluster(t,
		otpdb.WithReplicas(1),
		otpdb.WithDurability(dir),
	)
	if err := c2.Start(); err != nil {
		t.Fatal(err)
	}
	defer c2.Stop()
	base, err := c2.RecoveredIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	if base != 60 {
		t.Fatalf("RecoveredIndex after crash = %d, want 60", base)
	}
	if got := readCounter(t, c2, 0); got != 60 {
		t.Fatalf("recovered counter = %d, want 60", got)
	}
	if res := bumpN(t, c2, 0, 5); res.TOIndex != 65 {
		t.Fatalf("post-crash commit TOIndex = %d, want 65", res.TOIndex)
	}
}

// TestRestartSiteRejoin crashes a minority of a five-site cluster,
// commits through the survivors, rejoins the victims live, and checks
// that all five sites reconverge and that the restarted sites submit
// and commit new transactions in agreement with the survivors.
func TestRestartSiteRejoin(t *testing.T) {
	cluster := counterCluster(t,
		otpdb.WithReplicas(5),
		otpdb.WithConsensusRoundTimeout(50*time.Millisecond),
	)
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	total := 0
	for site := 0; site < 5; site++ {
		bumpN(t, cluster, site, 4)
		total += 4
	}

	// Crash a minority.
	for _, victim := range []int{3, 4} {
		if err := cluster.CrashSite(victim); err != nil {
			t.Fatal(err)
		}
	}
	// Survivors keep committing.
	for site := 0; site < 3; site++ {
		bumpN(t, cluster, site, 5)
		total += 5
	}

	// Live rejoin both victims.
	for _, victim := range []int{3, 4} {
		if err := cluster.RestartSite(ctx, victim); err != nil {
			t.Fatalf("RestartSite(%d): %v", victim, err)
		}
		// The survivors' retained definitive history easily covers this
		// short run, so the state transfer negotiates a tail.
		if mode, err := cluster.RejoinMode(victim); err != nil || mode != "tail-only" {
			t.Fatalf("RejoinMode(%d) = %q, %v; want tail-only", victim, mode, err)
		}
	}

	// Every site — including the restarted ones — submits new work.
	for site := 0; site < 5; site++ {
		res := bumpN(t, cluster, site, 3)
		total += 3
		if res.TOIndex == 0 {
			t.Fatalf("site %d: zero TOIndex after rejoin", site)
		}
	}

	if err := cluster.WaitForCommits(ctx, total); err != nil {
		t.Fatalf("WaitForCommits(%d): %v", total, err)
	}
	ok, err := cluster.Converged()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("sites did not reconverge after rejoin")
	}
	for site := 0; site < 5; site++ {
		if got := readCounter(t, cluster, site); got != int64(total) {
			t.Fatalf("site %d counter = %d, want %d", site, got, total)
		}
	}
	if err := cluster.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRestartSiteDurable exercises rejoin with durability on: the
// victim's directory is reset to the transferred checkpoint and keeps
// logging, so a subsequent cold restart of the whole (stopped) cluster
// recovers the converged state at every site.
func TestRestartSiteDurable(t *testing.T) {
	dir := t.TempDir()
	mk := func() *otpdb.Cluster {
		c := counterCluster(t,
			otpdb.WithReplicas(3),
			otpdb.WithDurability(dir),
			otpdb.WithConsensusRoundTimeout(50*time.Millisecond),
		)
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	cluster := mk()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	bumpN(t, cluster, 0, 10)
	if err := cluster.CrashSite(2); err != nil {
		t.Fatal(err)
	}
	bumpN(t, cluster, 1, 10)
	if err := cluster.RestartSite(ctx, 2); err != nil {
		t.Fatalf("RestartSite: %v", err)
	}
	bumpN(t, cluster, 2, 5)
	if err := cluster.WaitForCommits(ctx, 25); err != nil {
		t.Fatal(err)
	}
	ok, err := cluster.Converged()
	if err != nil || !ok {
		t.Fatalf("converged = %v, %v", ok, err)
	}
	cluster.Stop()

	// Whole-cluster cold restart from the three directories.
	again := mk()
	defer again.Stop()
	for site := 0; site < 3; site++ {
		base, err := again.RecoveredIndex(site)
		if err != nil {
			t.Fatal(err)
		}
		if base != 25 {
			t.Fatalf("site %d recovered index = %d, want 25", site, base)
		}
		if got := readCounter(t, again, site); got != 25 {
			t.Fatalf("site %d recovered counter = %d, want 25", site, got)
		}
	}
	bumpN(t, again, 0, 1)
	if got := readCounter(t, again, 0); got != 26 {
		t.Fatalf("counter after restart commit = %d, want 26", got)
	}
}

// TestRestartSiteCheckpointFallback forces the backlog-evicted path: a
// tiny retained-history cap means the survivors no longer hold the
// definitive deliveries the victim missed, so the state transfer must
// fall back from tail-only to a full checkpoint + tail — and the
// rejoined site still reconverges.
func TestRestartSiteCheckpointFallback(t *testing.T) {
	cluster := counterCluster(t,
		otpdb.WithReplicas(3),
		otpdb.WithConsensusRoundTimeout(50*time.Millisecond),
		otpdb.WithDefLogCap(32), // retains ~16 entries after eviction
	)
	if err := cluster.Seed("counter", "seeded", otpdb.Int64(77)); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	bumpN(t, cluster, 0, 10)
	if err := cluster.CrashSite(2); err != nil {
		t.Fatal(err)
	}
	// Far more commits than the ring retains: the victim's gap reaches
	// below the survivors' history.
	bumpN(t, cluster, 0, 150)

	if err := cluster.RestartSite(ctx, 2); err != nil {
		t.Fatalf("RestartSite: %v", err)
	}
	if mode, err := cluster.RejoinMode(2); err != nil || mode != "checkpoint+tail" {
		t.Fatalf("RejoinMode = %q, %v; want checkpoint+tail", mode, err)
	}

	bumpN(t, cluster, 2, 5)
	if err := cluster.WaitForCommits(ctx, 165); err != nil {
		t.Fatal(err)
	}
	ok, err := cluster.Converged()
	if err != nil || !ok {
		t.Fatalf("converged = %v, %v", ok, err)
	}
	if got := readCounter(t, cluster, 2); got != 165 {
		t.Fatalf("restarted site counter = %d, want 165", got)
	}
	// Values that predate the eviction window — including the seed, which
	// never appears in any backlog — arrived through the checkpoint.
	v, okv, err := cluster.Read(2, "counter", "seeded")
	if err != nil || !okv || otpdb.AsInt64(v) != 77 {
		t.Fatalf("seeded key at restarted site = %v/%v/%v, want 77", v, okv, err)
	}
}

// TestRestartSiteRequiresCrash documents the precondition.
func TestRestartSiteRequiresCrash(t *testing.T) {
	cluster := counterCluster(t, otpdb.WithReplicas(3))
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	err := cluster.RestartSite(context.Background(), 1)
	if err == nil {
		t.Fatal("RestartSite of a live site should fail")
	}
	if !strings.Contains(err.Error(), "not crashed") {
		t.Fatalf("unexpected error: %v", err)
	}
}
