package otpdb_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"otpdb"
)

// crossBranchCluster registers per-branch deposits plus a cross-branch
// transfer — the multi-class procedure of the [13] extension.
func crossBranchCluster(t *testing.T, opts ...otpdb.Option) *otpdb.Cluster {
	t.Helper()
	c, err := otpdb.NewCluster(opts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, branch := range []otpdb.Class{"east", "west"} {
		branch := branch
		c.MustRegisterUpdate(otpdb.Update{
			Name:  "deposit-" + string(branch),
			Class: branch,
			Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
				acct := otpdb.Key(otpdb.AsString(ctx.Args()[0]))
				v, _ := ctx.Read(acct)
				next := otpdb.Int64(otpdb.AsInt64(v) + otpdb.AsInt64(ctx.Args()[1]))
				return next, ctx.Write(acct, next)
			},
		})
	}
	// moveFunds(fromBranch, fromAcct, toBranch, toAcct, amount): a single
	// atomic transaction across two conflict classes.
	c.MustRegisterMultiUpdate(otpdb.MultiUpdate{
		Name:    "moveFunds",
		Classes: []otpdb.Class{"east", "west"},
		Fn: func(ctx otpdb.MultiUpdateCtx) (otpdb.Value, error) {
			from := otpdb.Class(otpdb.AsString(ctx.Args()[0]))
			fromAcct := otpdb.Key(otpdb.AsString(ctx.Args()[1]))
			to := otpdb.Class(otpdb.AsString(ctx.Args()[2]))
			toAcct := otpdb.Key(otpdb.AsString(ctx.Args()[3]))
			amount := otpdb.AsInt64(ctx.Args()[4])
			fv, _ := ctx.Read(from, fromAcct)
			tv, _ := ctx.Read(to, toAcct)
			if err := ctx.Write(from, fromAcct, otpdb.Int64(otpdb.AsInt64(fv)-amount)); err != nil {
				return nil, err
			}
			return otpdb.Int64(otpdb.AsInt64(fv) - amount),
				ctx.Write(to, toAcct, otpdb.Int64(otpdb.AsInt64(tv)+amount))
		},
	})
	c.MustRegisterQuery(otpdb.Query{
		Name: "bothTotals",
		Fn: func(ctx otpdb.QueryCtx) (otpdb.Value, error) {
			var sum int64
			for _, branch := range []otpdb.Class{"east", "west"} {
				v, _ := ctx.Read(branch, "acct")
				sum += otpdb.AsInt64(v)
			}
			return otpdb.Int64(sum), nil
		},
	})
	t.Cleanup(c.Stop)
	return c
}

func TestMultiClassTransferIsAtomic(t *testing.T) {
	c := crossBranchCluster(t, otpdb.WithReplicas(3), otpdb.WithHistoryRecording())
	if err := c.Seed("east", "acct", otpdb.Int64(1000)); err != nil {
		t.Fatal(err)
	}
	if err := c.Seed("west", "acct", otpdb.Int64(1000)); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.Exec(ctx, 0, "moveFunds",
		otpdb.String("east"), otpdb.String("acct"),
		otpdb.String("west"), otpdb.String("acct"),
		otpdb.Int64(250)); err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := c.WaitForCommits(wctx, 1); err != nil {
		t.Fatal(err)
	}
	for site := 0; site < 3; site++ {
		east, _, _ := c.Read(site, "east", "acct")
		west, _, _ := c.Read(site, "west", "acct")
		if otpdb.AsInt64(east) != 750 || otpdb.AsInt64(west) != 1250 {
			t.Fatalf("site %d: east=%d west=%d", site, otpdb.AsInt64(east), otpdb.AsInt64(west))
		}
	}
	if err := c.CheckHistory(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiClassMixedLoadConvergesAndIsSerializable(t *testing.T) {
	c := crossBranchCluster(t, otpdb.WithReplicas(3),
		otpdb.WithHistoryRecording(), otpdb.WithNetworkJitter(time.Millisecond))
	if err := c.Seed("east", "acct", otpdb.Int64(10000)); err != nil {
		t.Fatal(err)
	}
	if err := c.Seed("west", "acct", otpdb.Int64(10000)); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	const perSite = 12
	for site := 0; site < 3; site++ {
		wg.Add(1)
		go func(site int) {
			defer wg.Done()
			for i := 0; i < perSite; i++ {
				var err error
				switch i % 3 {
				case 0:
					err = c.Exec(ctx, site, "deposit-east", otpdb.String("acct"), otpdb.Int64(5))
				case 1:
					err = c.Exec(ctx, site, "deposit-west", otpdb.String("acct"), otpdb.Int64(5))
				case 2:
					err = c.Exec(ctx, site, "moveFunds",
						otpdb.String("east"), otpdb.String("acct"),
						otpdb.String("west"), otpdb.String("acct"), otpdb.Int64(7))
				}
				if err != nil {
					t.Errorf("site %d txn %d: %v", site, i, err)
					return
				}
			}
		}(site)
	}
	// Cross-class snapshot queries run against the mixed load; transfers
	// conserve the combined total, deposits raise it deterministically by
	// commit count, so every snapshot total must be 20000 + 5*deposits
	// for some deposit count between 0 and 24.
	for i := 0; i < 15; i++ {
		v, err := c.QueryAt(ctx, i%3, "bothTotals")
		if err != nil {
			t.Fatal(err)
		}
		total := otpdb.AsInt64(v)
		if total < 20000 || total > 20000+5*24 || (total-20000)%5 != 0 {
			t.Fatalf("query %d: inconsistent snapshot total %d", i, total)
		}
	}
	wg.Wait()
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := c.WaitForCommits(wctx, 3*perSite); err != nil {
		t.Fatal(err)
	}
	ok, err := c.Converged()
	if err != nil || !ok {
		t.Fatalf("converged = %v, %v", ok, err)
	}
	if err := c.CheckHistory(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Deterministic final state: 12 deposits of 5 per branch... 3 sites
	// each did 4 east-deposits, 4 west-deposits, 4 transfers of 7.
	wantEast := int64(10000 + 3*4*5 - 3*4*7)
	wantWest := int64(10000 + 3*4*5 + 3*4*7)
	for site := 0; site < 3; site++ {
		east, _, _ := c.Read(site, "east", "acct")
		west, _, _ := c.Read(site, "west", "acct")
		if otpdb.AsInt64(east) != wantEast || otpdb.AsInt64(west) != wantWest {
			t.Fatalf("site %d: east=%d west=%d, want %d/%d",
				site, otpdb.AsInt64(east), otpdb.AsInt64(west), wantEast, wantWest)
		}
	}
}

func TestMultiClassNameCollisionRejected(t *testing.T) {
	c := crossBranchCluster(t)
	err := c.RegisterMultiUpdate(otpdb.MultiUpdate{
		Name:    "moveFunds",
		Classes: []otpdb.Class{"east"},
		Fn:      func(otpdb.MultiUpdateCtx) (otpdb.Value, error) { return nil, nil },
	})
	if err == nil {
		t.Fatal("duplicate multi-update accepted")
	}
}

func TestMultiClassRegistrationAfterStartRejected(t *testing.T) {
	c := crossBranchCluster(t)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	err := c.RegisterMultiUpdate(otpdb.MultiUpdate{
		Name:    "late",
		Classes: []otpdb.Class{"east"},
		Fn:      func(otpdb.MultiUpdateCtx) (otpdb.Value, error) { return nil, nil },
	})
	if err != otpdb.ErrStarted {
		t.Fatalf("err = %v", err)
	}
}

func TestMultiClassWriteOutsideDeclaredClassesFails(t *testing.T) {
	c := crossBranchCluster(t)
	writeErr := make(chan error, 1)
	c.MustRegisterMultiUpdate(otpdb.MultiUpdate{
		Name:    "rogue",
		Classes: []otpdb.Class{"east"},
		Fn: func(ctx otpdb.MultiUpdateCtx) (otpdb.Value, error) {
			err := ctx.Write("west", "acct", otpdb.Int64(1)) // undeclared class
			select {
			case writeErr <- err:
			default:
			}
			return nil, nil
		},
	})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.Exec(ctx, 0, "rogue"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-writeErr:
		if err == nil {
			t.Fatal("write outside declared classes succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("procedure never ran")
	}
}

func TestManyCrossClassTransfersNoDeadlock(t *testing.T) {
	c, err := otpdb.NewCluster(otpdb.WithReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	const classes = 4
	for i := 0; i < classes; i++ {
		for j := 0; j < classes; j++ {
			if i == j {
				continue
			}
			ci, cj := otpdb.Class(fmt.Sprintf("c%d", i)), otpdb.Class(fmt.Sprintf("c%d", j))
			c.MustRegisterMultiUpdate(otpdb.MultiUpdate{
				Name:    fmt.Sprintf("mv-%d-%d", i, j),
				Classes: []otpdb.Class{ci, cj},
				Fn: func(ctx otpdb.MultiUpdateCtx) (otpdb.Value, error) {
					a, _ := ctx.Read(ci, "k")
					b, _ := ctx.Read(cj, "k")
					if err := ctx.Write(ci, "k", otpdb.Int64(otpdb.AsInt64(a)-1)); err != nil {
						return nil, err
					}
					return nil, ctx.Write(cj, "k", otpdb.Int64(otpdb.AsInt64(b)+1))
				},
			})
		}
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	const perSite = 18
	for site := 0; site < 2; site++ {
		wg.Add(1)
		go func(site int) {
			defer wg.Done()
			for n := 0; n < perSite; n++ {
				i := (site + n) % classes
				j := (i + 1 + n%(classes-1)) % classes
				if i == j {
					j = (j + 1) % classes
				}
				if err := c.Exec(ctx, site, fmt.Sprintf("mv-%d-%d", i, j)); err != nil {
					t.Errorf("site %d: %v", site, err)
					return
				}
			}
		}(site)
	}
	wg.Wait()
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := c.WaitForCommits(wctx, 2*perSite); err != nil {
		t.Fatal(err)
	}
	ok, err := c.Converged()
	if err != nil || !ok {
		t.Fatalf("converged = %v, %v", ok, err)
	}
	// Conservation: the sum over all classes is zero-delta.
	var sum int64
	for i := 0; i < classes; i++ {
		v, _, _ := c.Read(0, otpdb.Class(fmt.Sprintf("c%d", i)), "k")
		sum += otpdb.AsInt64(v)
	}
	if sum != 0 {
		t.Fatalf("transfers not conserving: sum = %d", sum)
	}
}
