package otpdb_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"otpdb"
	"otpdb/internal/metrics"
	"otpdb/internal/testutil"
)

// TestCrossShardTraceStitch is the in-process half of the distributed
// tracing acceptance check: a cross-shard transaction leaves one
// causally ordered span set — stitched by its cluster-wide trace ID —
// covering the full lifecycle (x-submit, per-shard submit/opt-deliver/
// to-deliver, the coordinator's prepare/vote/decide, commit) with spans
// recorded at three or more distinct sites. The CI smoke test drives
// the same path over real otpd processes.
func TestCrossShardTraceStitch(t *testing.T) {
	ring := metrics.NewTraceRing(8192)
	c := newShardedCluster(t, otpdb.WithTraceRing(ring))
	sess, err := c.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(context.Background(), "transfer", otpdb.Int64(30)); err != nil {
		t.Fatal(err)
	}

	// The coordinator mints the trace ID at x-submit; recover it from
	// the ring rather than the result so the test also proves the ID is
	// recorded, not just returned.
	var trace string
	for _, ev := range ring.Events() {
		if ev.Span == metrics.SpanXSubmit {
			trace = ev.Trace
		}
	}
	if trace == "" || !strings.HasPrefix(trace, "t") {
		t.Fatalf("no x-submit span with a trace ID in the ring")
	}

	// Every site applies the decision asynchronously; wait until all
	// three have recorded their commit span for this trace.
	var stitched []metrics.TraceEvent
	testutil.EventuallyOr(t, 5*time.Second, "commit spans at 3 sites", func() bool {
		stitched = metrics.StitchTraces(ring.Find(trace))
		committed := map[int]bool{}
		for _, ev := range stitched {
			if ev.Span == metrics.SpanCommit {
				committed[ev.Site] = true
			}
		}
		return len(committed) >= 3
	}, func() {
		t.Logf("stitched: %+v", stitched)
	})

	sites := map[int]bool{}
	spans := map[string]bool{}
	for _, ev := range stitched {
		if ev.Trace != trace {
			t.Fatalf("stitched span with foreign trace %q: %+v", ev.Trace, ev)
		}
		sites[ev.Site] = true
		spans[ev.Span] = true
	}
	if len(sites) < 3 {
		t.Fatalf("stitched trace covers %d sites, want >= 3: %+v", len(sites), stitched)
	}
	for _, want := range []string{
		metrics.SpanXSubmit, metrics.SpanSubmit, metrics.SpanOptDeliver,
		metrics.SpanTODeliver, metrics.SpanPrepare, metrics.SpanVote,
		metrics.SpanDecide, metrics.SpanXCommit, metrics.SpanCommit,
	} {
		if !spans[want] {
			t.Fatalf("stitched trace missing span %q; have %v", want, spans)
		}
	}

	// StitchTraces promises causal order: the definitive decision cannot
	// precede the optimistic submit.
	idx := func(span string) int {
		for i, ev := range stitched {
			if ev.Span == span {
				return i
			}
		}
		return -1
	}
	if idx(metrics.SpanXSubmit) != 0 {
		t.Fatalf("x-submit is not the first stitched span: %+v", stitched[0])
	}
	if idx(metrics.SpanDecide) < idx(metrics.SpanPrepare) {
		t.Fatalf("decide ordered before prepare in stitched trace")
	}
}
