package otpdb

import "otpdb/internal/shard"

// Test hooks on the cross-shard coordinator (crash-point injection).
// Install after Start and before submitting cross-shard transactions.

// SetCrashBeforeDecide makes the coordinator abandon an attempt after
// collecting votes and before submitting the decide — the classic 2PC
// in-doubt point — whenever fn returns true.
func (c *Cluster) SetCrashBeforeDecide(fn func() bool) {
	if fn == nil {
		c.coord.CrashBeforeDecide = nil
		return
	}
	c.coord.CrashBeforeDecide = func(shard.XID) bool { return fn() }
}

// SetCrashAfterHomeDecide makes the coordinator abandon an attempt right
// after the home shard commits the decision record, whenever fn returns
// true.
func (c *Cluster) SetCrashAfterHomeDecide(fn func() bool) {
	if fn == nil {
		c.coord.CrashAfterHomeDecide = nil
		return
	}
	c.coord.CrashAfterHomeDecide = func(shard.XID) bool { return fn() }
}
