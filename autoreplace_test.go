package otpdb_test

import (
	"fmt"
	"testing"
	"time"

	"otpdb"
	"otpdb/internal/testutil"
	"otpdb/internal/transport"
)

// waitEpoch waits until every listed site reports at least the given
// epoch, or fails at the deadline.
func waitEpoch(t *testing.T, c *otpdb.Cluster, epoch uint64, deadline time.Duration, sites ...int) {
	t.Helper()
	testutil.EventuallyOr(t, deadline, fmt.Sprintf("epoch %d on sites %v", epoch, sites), func() bool {
		for _, s := range sites {
			if e, err := c.Epoch(s); err != nil || e < epoch {
				return false
			}
		}
		return true
	}, func() {
		for _, s := range sites {
			e, _ := c.Epoch(s)
			t.Logf("site %d epoch %d", s, e)
		}
	})
}

// waitRebuilt waits until no site is in the crashed set.
func waitRebuilt(t *testing.T, c *otpdb.Cluster, deadline time.Duration) {
	t.Helper()
	testutil.EventuallyOr(t, deadline, "crashed sites to be rebuilt", func() bool {
		return len(c.CrashedSites()) == 0
	}, func() {
		t.Logf("still crashed: %v", c.CrashedSites())
	})
}

// TestAutoReplaceHealsCrashedSite: with WithAutoReplace armed, a crashed
// site is replaced and rebuilt with no operator action — the acceptance
// scenario of the self-healing loop. The replacement then serves
// transactions in agreement with the survivors.
func TestAutoReplaceHealsCrashedSite(t *testing.T) {
	c := accountsCluster(t, otpdb.WithReplicas(3), otpdb.WithAutoReplace(150*time.Millisecond))
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	creditN(t, c, 0, 10, 10)

	if err := c.CrashSite(2); err != nil {
		t.Fatal(err)
	}
	// No RestartSite, no ReplaceSite: the detectors and replacers do it.
	waitEpoch(t, c, 2, time.Minute, 0, 1)

	// The rebuild follows the epoch commit; wait for the site to be live
	// again before using it.
	waitRebuilt(t, c, time.Minute)
	creditN(t, c, 2, 1, 12) // 11 credits + 1 membership change
	assertConverged(t, c)
	if mode, err := c.RejoinMode(2); err != nil || mode == "" {
		t.Fatalf("RejoinMode = %q, %v (replacement did not rejoin through statex)", mode, err)
	}
}

// TestAutoReplaceExactlyOnce: four racing survivors notice the crash
// together; exactly one ReplaceSite commits (the epoch advances by one)
// and the losers back off on ErrEpochConflict instead of stacking
// further epochs.
func TestAutoReplaceExactlyOnce(t *testing.T) {
	c := accountsCluster(t, otpdb.WithReplicas(5), otpdb.WithAutoReplace(150*time.Millisecond))
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	creditN(t, c, 0, 5, 5)

	if err := c.CrashSite(4); err != nil {
		t.Fatal(err)
	}
	waitEpoch(t, c, 2, time.Minute, 0, 1, 2, 3)
	waitRebuilt(t, c, time.Minute)
	// Let any straggler replacer round drain, then require the epoch to
	// have settled at exactly 2: one replacement, not one per survivor.
	time.Sleep(500 * time.Millisecond)
	for _, s := range []int{0, 1, 2, 3, 4} {
		e, err := c.Epoch(s)
		if err != nil {
			t.Fatal(err)
		}
		if e != 2 {
			t.Fatalf("site %d epoch = %d, want exactly 2 (racing replacers stacked epochs)", s, e)
		}
	}
	creditN(t, c, 4, 1, 7) // 6 credits + 1 membership change
	assertConverged(t, c)
}

// TestAutoReplaceSparesPartitionedSite: a partitioned-but-alive site is
// suspected (its heartbeats stop arriving) but never replaced — only a
// transport-level crash qualifies. After the heal the site is simply a
// member again, state intact.
func TestAutoReplaceSparesPartitionedSite(t *testing.T) {
	c := accountsCluster(t, otpdb.WithReplicas(3), otpdb.WithAutoReplace(100*time.Millisecond))
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	creditN(t, c, 0, 5, 5)

	f := c.Fault()
	if err := f.Partition(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Partition(2, 1); err != nil {
		t.Fatal(err)
	}
	// Several full suspicion windows pass; the replacers see the
	// suspicion but must hold fire.
	time.Sleep(600 * time.Millisecond)
	for _, s := range []int{0, 1} {
		e, err := c.Epoch(s)
		if err != nil {
			t.Fatal(err)
		}
		if e != 1 {
			t.Fatalf("site %d epoch = %d: a live site was replaced over a partition", s, e)
		}
	}
	if err := f.HealAll(); err != nil {
		t.Fatal(err)
	}
	creditN(t, c, 0, 1, 6)
	assertConverged(t, c)
}

// TestAutoReplaceIgnoresGhostHeartbeats: replayed heartbeats from the
// dead incarnation must not refresh its lease and stall the
// replacement. The ghosts carry a stale incarnation, so detectors drop
// them and the replacement proceeds.
func TestAutoReplaceIgnoresGhostHeartbeats(t *testing.T) {
	c := accountsCluster(t, otpdb.WithReplicas(3), otpdb.WithAutoReplace(150*time.Millisecond))
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	creditN(t, c, 0, 5, 5)
	if err := c.CrashSite(2); err != nil {
		t.Fatal(err)
	}
	// A reconnecting transport replaying the dead process's backlog:
	// periodic stale heartbeats at every survivor.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				_ = c.Fault().GhostHeartbeat(2, 0)
				_ = c.Fault().GhostHeartbeat(2, 1)
			}
		}
	}()
	waitEpoch(t, c, 2, time.Minute, 0, 1)
	close(stop)
	<-done
	waitRebuilt(t, c, time.Minute)
	assertConverged(t, c)
}

// TestFaultInjectorValidation: the injector rejects out-of-range sites
// and an unstarted cluster rather than panicking mid-scenario.
func TestFaultInjectorValidation(t *testing.T) {
	c := accountsCluster(t, otpdb.WithReplicas(3))
	f := c.Fault()
	if err := f.Partition(0, 1); err == nil {
		t.Fatal("Partition before Start succeeded")
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Partition(0, 7); err == nil {
		t.Fatal("Partition with out-of-range site succeeded")
	}
	if err := f.StallCommits(-1, time.Millisecond); err == nil {
		t.Fatal("StallCommits with negative site succeeded")
	}
	if err := f.SetLink(0, 1, transport.LinkProfile{Delay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := f.ClearLinks(); err != nil {
		t.Fatal(err)
	}
}
