package otpdb_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"otpdb"
	"otpdb/internal/testutil"
)

// memCtx is a generous deadline for membership operations under -race.
func memCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

// creditN runs n credit transactions through the given site and waits
// until every live site has committed at least total transactions.
func creditN(t *testing.T, c *otpdb.Cluster, site, n, total int) {
	t.Helper()
	ctx := memCtx(t)
	for i := 0; i < n; i++ {
		if err := c.Exec(ctx, site, "credit", otpdb.String("a"), otpdb.Int64(1)); err != nil {
			t.Fatalf("credit: %v", err)
		}
	}
	if err := c.WaitForCommits(ctx, total); err != nil {
		t.Fatalf("WaitForCommits(%d): %v", total, err)
	}
}

// assertConverged requires every live site to report one digest.
func assertConverged(t *testing.T, c *otpdb.Cluster) {
	t.Helper()
	testutil.Eventually(t, time.Minute, "live sites to converge on one digest", func() bool {
		ok, err := c.Converged()
		if err != nil {
			t.Fatal(err)
		}
		return ok
	})
}

// assertEpoch requires the given sites to agree on a membership epoch
// and member count. A site applies the change at its own commit of the
// configuration transaction, so each may lag briefly.
func assertEpoch(t *testing.T, c *otpdb.Cluster, epoch uint64, members int, sites ...int) {
	t.Helper()
	for _, site := range sites {
		var e uint64
		var m []int
		testutil.EventuallyOr(t, time.Minute,
			fmt.Sprintf("site %d to reach epoch %d with %d members", site, epoch, members),
			func() bool {
				var err error
				if e, err = c.Epoch(site); err != nil {
					t.Fatal(err)
				}
				if m, err = c.Members(site); err != nil {
					t.Fatal(err)
				}
				return e == epoch && len(m) == members
			}, func() {
				t.Logf("site %d: epoch=%d members=%v", site, e, m)
			})
	}
}

// TestAddSiteGrowsGroup: a fourth site is admitted through the ordered
// configuration change, statex-joins mid-traffic, serves transactions,
// and converges to the group digest.
func TestAddSiteGrowsGroup(t *testing.T) {
	c := accountsCluster(t, otpdb.WithReplicas(3))
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := memCtx(t)
	creditN(t, c, 0, 10, 10)

	site, err := c.AddSite(ctx)
	if err != nil {
		t.Fatalf("AddSite: %v", err)
	}
	if site != 3 {
		t.Fatalf("new site index = %d, want 3", site)
	}
	if c.Size() != 4 {
		t.Fatalf("Size after add = %d", c.Size())
	}
	// Epoch 2 everywhere, four members.
	assertEpoch(t, c, 2, 4, 0, 1, 2, 3)

	// The new site serves updates and queries in agreement.
	sess, err := c.Session(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Exec(ctx, "credit", otpdb.String("a"), otpdb.Int64(5))
	if err != nil {
		t.Fatalf("exec at added site: %v", err)
	}
	if otpdb.AsInt64(res.Value) != 15 {
		t.Fatalf("added site sees balance %d, want 15", otpdb.AsInt64(res.Value))
	}
	// +1 for the membership change itself: it occupies a definitive
	// commit at every site.
	if err := c.WaitForCommits(ctx, 12); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, c)
}

// TestRemoveSiteShrinksQuorum: removing a dead site from a four-member
// group drops the quorum from 3 to 2, which is what lets the group keep
// committing after a second crash — under the old configuration two
// dead sites of four would have stalled it.
func TestRemoveSiteShrinksQuorum(t *testing.T) {
	c := accountsCluster(t, otpdb.WithReplicas(4))
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := memCtx(t)
	creditN(t, c, 0, 5, 5)

	// Site 3 dies for good; vote it out.
	if err := c.CrashSite(3); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveSite(ctx, 3); err != nil {
		t.Fatalf("RemoveSite: %v", err)
	}
	assertEpoch(t, c, 2, 3, 0, 1, 2)

	// Now a second crash: {0, 1} is a quorum of the three-member group
	// (it would not have been a quorum of four), so commits proceed.
	if err := c.CrashSite(2); err != nil {
		t.Fatal(err)
	}
	creditN(t, c, 0, 5, 11) // 10 credits + the membership change
	assertConverged(t, c)

	// The removed identity cannot sneak back via RestartSite.
	if err := c.RestartSite(ctx, 3); err == nil {
		t.Fatal("RestartSite revived a removed site")
	}
	// But the crashed (not removed) site can.
	if err := c.RestartSite(ctx, 2); err != nil {
		t.Fatalf("RestartSite(2): %v", err)
	}
	creditN(t, c, 2, 1, 12)
	assertConverged(t, c)
}

// TestReplaceSiteReadmitsDeadIdentity: a crashed site is replaced — one
// epoch change — and the fresh incarnation catches up from a donor and
// serves traffic while the survivors never stop serving. A subsequent
// RemoveSite shrinks the group again.
func TestReplaceSiteReadmitsDeadIdentity(t *testing.T) {
	c := accountsCluster(t, otpdb.WithReplicas(3))
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := memCtx(t)
	creditN(t, c, 0, 10, 10)

	if err := c.CrashSite(2); err != nil {
		t.Fatal(err)
	}
	// Survivors keep committing while the site is down.
	creditN(t, c, 0, 10, 20)

	if err := c.ReplaceSite(ctx, 2); err != nil {
		t.Fatalf("ReplaceSite: %v", err)
	}
	assertEpoch(t, c, 2, 3, 0, 1, 2)
	// The replacement serves in agreement with the survivors: 20 credits
	// of 1 plus this one.
	sess, err := c.Session(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Exec(ctx, "credit", otpdb.String("a"), otpdb.Int64(1))
	if err != nil {
		t.Fatalf("exec at replacement: %v", err)
	}
	if otpdb.AsInt64(res.Value) != 21 {
		t.Fatalf("replacement sees balance %d, want 21", otpdb.AsInt64(res.Value))
	}
	if err := c.WaitForCommits(ctx, 22); err != nil { // 21 credits + 1 change
		t.Fatal(err)
	}
	assertConverged(t, c)
	if mode, err := c.RejoinMode(2); err != nil || mode == "" {
		t.Fatalf("RejoinMode = %q, %v", mode, err)
	}

	// Replace is remove+add in one epoch; a later RemoveSite still works
	// and lands on epoch 3.
	if err := c.RemoveSite(ctx, 2); err != nil {
		t.Fatalf("RemoveSite after replace: %v", err)
	}
	assertEpoch(t, c, 3, 2, 0, 1)
	creditN(t, c, 0, 1, 24) // 22 credits + 2 changes
}

// TestReplaceSiteRequiresCrash: replacing a live site is rejected.
func TestReplaceSiteRequiresCrash(t *testing.T) {
	c := accountsCluster(t, otpdb.WithReplicas(3))
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.ReplaceSite(memCtx(t), 1); err == nil {
		t.Fatal("ReplaceSite of a live site succeeded")
	}
}

// TestMembershipSurvivesColdRestart: the configuration is replicated
// state, so a durable cluster restarted from disk comes back in the
// epoch it was stopped in.
func TestMembershipSurvivesColdRestart(t *testing.T) {
	dir := t.TempDir()
	build := func() *otpdb.Cluster {
		c := accountsCluster(t, otpdb.WithReplicas(3), otpdb.WithDurability(dir),
			otpdb.WithSyncPolicy(otpdb.SyncEveryCommit))
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	c := build()
	ctx := memCtx(t)
	creditN(t, c, 0, 5, 5)
	if err := c.CrashSite(2); err != nil {
		t.Fatal(err)
	}
	if err := c.ReplaceSite(ctx, 2); err != nil {
		t.Fatalf("ReplaceSite: %v", err)
	}
	assertEpoch(t, c, 2, 3, 0, 1, 2)
	creditN(t, c, 0, 1, 7) // 6 credits + 1 change
	c.Stop()

	c2 := build()
	assertEpoch(t, c2, 2, 3, 0, 1, 2)
	idx, err := c2.RecoveredIndex(0)
	if err != nil || idx == 0 {
		t.Fatalf("RecoveredIndex = %d, %v", idx, err)
	}
	creditN(t, c2, 0, 1, 8)
	assertConverged(t, c2)
}
