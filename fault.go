package otpdb

import (
	"fmt"
	"sort"
	"time"

	"otpdb/internal/fd"
	"otpdb/internal/transport"
)

// CrashedSites reports the sites currently downed by CrashSite, in
// ascending order.
func (c *Cluster) CrashedSites() []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []int
	for i, down := range c.crashed {
		if down {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// AutoReplaceEnabled reports whether WithAutoReplace armed the
// self-healing loop.
func (c *Cluster) AutoReplaceEnabled() bool { return c.cfg.autoReplace }

// FaultInjector manipulates the cluster's in-process network and site
// behaviour for fault-injection testing — the control surface the chaos
// harness (internal/chaos) drives. Every method applies to all shard
// groups: site i of every group shares a failure domain, so a partition
// or a WAN link profile affects the site as a whole.
//
// The injector only works for in-process clusters (the default
// transport); it is not part of the data-plane API and its faults are
// invisible to the protocol layers, which see only the resulting delay,
// loss and silence.
type FaultInjector struct {
	c *Cluster
}

// Fault returns the cluster's fault injector.
func (c *Cluster) Fault() *FaultInjector { return &FaultInjector{c: c} }

// checkSites validates site indexes against shard 0's site table.
func (f *FaultInjector) checkSites(sites ...int) error {
	f.c.mu.RLock()
	defer f.c.mu.RUnlock()
	if !f.c.started || f.c.stopped {
		return ErrNotStarted
	}
	n := len(f.c.groups[0].replicas)
	for _, s := range sites {
		if s < 0 || s >= n {
			return fmt.Errorf("%w: %d", ErrBadSite, s)
		}
	}
	return nil
}

// Partition cuts both directions of the link between two sites in every
// shard group. In-flight messages still deliver; nothing new crosses
// until Heal.
func (f *FaultInjector) Partition(a, b int) error {
	if err := f.checkSites(a, b); err != nil {
		return err
	}
	f.c.mu.RLock()
	defer f.c.mu.RUnlock()
	for _, grp := range f.c.groups {
		grp.hub.Partition(transport.NodeID(a), transport.NodeID(b))
	}
	return nil
}

// Heal removes the partition between two sites in every shard group.
func (f *FaultInjector) Heal(a, b int) error {
	if err := f.checkSites(a, b); err != nil {
		return err
	}
	f.c.mu.RLock()
	defer f.c.mu.RUnlock()
	for _, grp := range f.c.groups {
		grp.hub.Heal(transport.NodeID(a), transport.NodeID(b))
	}
	return nil
}

// HealAll removes every partition.
func (f *FaultInjector) HealAll() error {
	f.c.mu.RLock()
	defer f.c.mu.RUnlock()
	if !f.c.started || f.c.stopped {
		return ErrNotStarted
	}
	for _, grp := range f.c.groups {
		n := grp.hub.Len()
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				grp.hub.Heal(transport.NodeID(a), transport.NodeID(b))
			}
		}
	}
	return nil
}

// SetLink installs a directed link profile (delay, jitter, loss) from
// one site to another in every shard group — the building block of WAN
// topologies and asymmetric degradation.
func (f *FaultInjector) SetLink(from, to int, p transport.LinkProfile) error {
	if err := f.checkSites(from, to); err != nil {
		return err
	}
	f.c.mu.RLock()
	defer f.c.mu.RUnlock()
	for _, grp := range f.c.groups {
		grp.hub.SetLink(transport.NodeID(from), transport.NodeID(to), p)
	}
	return nil
}

// ClearLink removes the directed link profile between two sites in
// every shard group, restoring that link to the base configuration.
func (f *FaultInjector) ClearLink(from, to int) error {
	if err := f.checkSites(from, to); err != nil {
		return err
	}
	f.c.mu.RLock()
	defer f.c.mu.RUnlock()
	for _, grp := range f.c.groups {
		grp.hub.ClearLink(transport.NodeID(from), transport.NodeID(to))
	}
	return nil
}

// ClearLinks removes every link profile, returning the network to its
// base delay/jitter configuration.
func (f *FaultInjector) ClearLinks() error {
	f.c.mu.RLock()
	defer f.c.mu.RUnlock()
	if !f.c.started || f.c.stopped {
		return ErrNotStarted
	}
	for _, grp := range f.c.groups {
		grp.hub.ClearLinks()
	}
	return nil
}

// StallCommits makes every shard replica at a site sleep for d in its
// commit path — a stalled WAL fsync / saturated disk. Zero clears the
// stall. The stall is a sleep, not a spin: it models a blocked device,
// and a chaos run hosts dozens of sites in one process.
func (f *FaultInjector) StallCommits(site int, d time.Duration) error {
	if err := f.checkSites(site); err != nil {
		return err
	}
	f.c.mu.RLock()
	defer f.c.mu.RUnlock()
	for _, grp := range f.c.groups {
		if site < len(grp.replicas) && !f.c.crashed[site] && !f.c.removed[site] {
			grp.replicas[site].SetCommitStall(d)
		}
	}
	return nil
}

// GhostHeartbeat injects one stale-incarnation failure-detector
// heartbeat from a (typically crashed) site to a live one — the replay
// a reconnecting transport emits when it drains a dead process's
// backlog. Detectors must drop it: a ghost must not refresh the dead
// site's lease and stall its replacement. The injection bypasses the
// sender's crashed state but not the receiver's or any partition.
func (f *FaultInjector) GhostHeartbeat(from, to int) error {
	if err := f.checkSites(from, to); err != nil {
		return err
	}
	f.c.mu.RLock()
	defer f.c.mu.RUnlock()
	// Detectors live on shard group 0's endpoints (one verdict per
	// failure domain); ghost traffic goes where they listen.
	f.c.groups[0].hub.Inject(transport.NodeID(from), transport.NodeID(to), fd.Stream, fd.Heartbeat{Inc: 1})
	return nil
}
