package otpdb

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"otpdb/internal/abcast"
	"otpdb/internal/db"
)

// TxnID identifies a submitted update transaction network-wide: the
// originating site plus a per-origin sequence number.
type TxnID = abcast.MsgID

// Outcome classifies how the optimistic protocol handled a committed
// transaction at the submitting site.
type Outcome int

// Outcomes.
const (
	// FastPath means the tentative order was confirmed as-is: the
	// transaction executed once, in the position it was Opt-delivered,
	// and committed the moment the definitive order arrived. This is the
	// common case the paper's throughput argument rests on.
	FastPath Outcome = iota + 1
	// Reordered means TO-delivery moved the transaction ahead of pending
	// transactions in one of its class queues — its definitive position
	// contradicted the tentative one (Correctness Check, CC10).
	Reordered
	// Retried means the transaction's optimistic execution was undone by
	// the Correctness Check and redone in the definitive order (CC8).
	Retried
)

func (o Outcome) String() string {
	switch o {
	case FastPath:
		return "fastpath"
	case Reordered:
		return "reordered"
	case Retried:
		return "retried"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Result is the typed outcome of a committed update transaction.
type Result struct {
	// Value is the stored procedure's return value (may be nil).
	Value Value
	// TOIndex is the transaction's definitive total-order index; every
	// site commits conflicting transactions in ascending TOIndex order.
	TOIndex int64
	// Outcome reports which protocol path the transaction took.
	Outcome Outcome
	// Latency is the submit-to-local-commit time observed by the session.
	Latency time.Duration
}

// Handle is the future of an in-flight update transaction submitted with
// Session.SubmitAsync. It resolves when the transaction commits at the
// submitting site (which fixes its definitive order everywhere) or when
// it terminally fails. Handles are safe for concurrent use.
type Handle struct {
	id   TxnID
	site int

	done     chan struct{}
	res      Result
	err      error
	resolved atomic.Bool
}

// ID returns the transaction's broadcast identifier, usable to correlate
// the transaction across sites (e.g. in commit logs and histories).
func (h *Handle) ID() TxnID { return h.id }

// Site returns the submitting site.
func (h *Handle) Site() int { return h.site }

// Done returns a channel closed when the handle is resolved. After Done
// is closed, Result returns immediately.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Resolved reports whether the handle has already resolved (non-blocking).
func (h *Handle) Resolved() bool { return h.resolved.Load() }

// Result blocks until the transaction commits locally (or terminally
// fails) and returns its typed outcome. Use Wait to bound the block with
// a context.
func (h *Handle) Result() (Result, error) {
	<-h.done
	return h.res, h.err
}

// Wait blocks until the handle resolves or ctx is cancelled. Abandoning
// the wait does not affect the transaction — broadcast is irrevocable and
// the handle can still be waited on again later.
func (h *Handle) Wait(ctx context.Context) (Result, error) {
	select {
	case <-h.done:
		return h.res, h.err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// resolve is the commit callback; the replica invokes it exactly once.
func (h *Handle) resolve(start time.Time, cr db.CommitResult) {
	h.err = cr.Err
	if cr.Err == nil {
		outcome := FastPath
		switch {
		case cr.Info.Retried:
			outcome = Retried
		case cr.Info.Reordered:
			outcome = Reordered
		}
		h.res = Result{
			Value:   cr.Info.Value,
			TOIndex: cr.Info.TOIndex,
			Outcome: outcome,
			Latency: time.Since(start),
		}
	}
	h.resolved.Store(true)
	close(h.done)
}

// Call names one procedure invocation of a batch.
type Call struct {
	// Proc is the registered update procedure name.
	Proc string
	// Args are the invocation arguments.
	Args []Value
}

// Session is a client attachment to one site of the cluster. It is the
// primary data interface: synchronous Exec with typed results, pipelined
// SubmitAsync returning transaction handles, amortized ExecBatch, and
// local snapshot queries. Sessions are safe for concurrent use and cheap
// to share; all sessions of a site observe the same replica. A session
// is bound to the site, not to one incarnation of it: after
// Cluster.RestartSite the same session transparently talks to the
// site's new replica.
type Session struct {
	c    *Cluster
	site int
}

// Session returns the client session bound to the given site. The cluster
// must be started.
func (c *Cluster) Session(site int) (*Session, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if _, err := c.replicaLocked(site); err != nil {
		return nil, err
	}
	return c.sessions[site], nil
}

// rep resolves the site's current replica.
func (s *Session) rep() *db.Replica {
	s.c.mu.RLock()
	defer s.c.mu.RUnlock()
	return s.c.replicas[s.site]
}

// Site returns the session's site index.
func (s *Session) Site() int { return s.site }

// SubmitAsync TO-broadcasts an update transaction and returns its handle
// without waiting for the commit. Clients pipeline by keeping many
// handles in flight and resolving them later; the broadcast layer orders
// all of them regardless of when (or whether) the handles are awaited.
func (s *Session) SubmitAsync(proc string, args ...Value) (*Handle, error) {
	h := &Handle{site: s.site, done: make(chan struct{})}
	start := time.Now()
	id, err := s.rep().SubmitNotify(proc, args, func(cr db.CommitResult) { h.resolve(start, cr) })
	if err != nil {
		return nil, err
	}
	h.id = id
	return h, nil
}

// Exec submits an update transaction and waits until it commits at this
// session's site, returning the procedure's value and ordering metadata.
// Committing at the submitting site implies the definitive order is
// fixed; all other sites commit the same transaction in the same relative
// order. On ctx cancellation the wait is abandoned but the transaction
// still commits everywhere — broadcast is irrevocable.
func (s *Session) Exec(ctx context.Context, proc string, args ...Value) (Result, error) {
	h, err := s.SubmitAsync(proc, args...)
	if err != nil {
		return Result{}, err
	}
	return h.Wait(ctx)
}

// ExecBatch submits every call before resolving any of them, amortizing
// the broadcast round-trips over the whole batch, then waits for all
// commits. Results are returned in call order. On error (including ctx
// cancellation) the already-broadcast tail still commits everywhere.
func (s *Session) ExecBatch(ctx context.Context, calls []Call) ([]Result, error) {
	handles := make([]*Handle, 0, len(calls))
	for i, call := range calls {
		h, err := s.SubmitAsync(call.Proc, call.Args...)
		if err != nil {
			return nil, fmt.Errorf("otpdb: batch call %d (%s): %w", i, call.Proc, err)
		}
		handles = append(handles, h)
	}
	results := make([]Result, len(handles))
	for i, h := range handles {
		res, err := h.Wait(ctx)
		if err != nil {
			return nil, fmt.Errorf("otpdb: batch call %d (%s): %w", i, calls[i].Proc, err)
		}
		results[i] = res
	}
	return results, nil
}

// Query runs a read-only stored procedure locally at the session's site,
// against a consistent multi-version snapshot (Section 5). Queries never
// block updates.
func (s *Session) Query(ctx context.Context, proc string, args ...Value) (Value, error) {
	return s.rep().Query(ctx, proc, args...)
}
