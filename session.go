package otpdb

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"otpdb/internal/abcast"
	"otpdb/internal/db"
	"otpdb/internal/shard"
	"otpdb/internal/transport"
)

// TxnID identifies a submitted update transaction network-wide within its
// shard group: the originating site plus a per-origin sequence number.
type TxnID = abcast.MsgID

// ShardTO locates a cross-shard transaction in one shard's definitive
// order: the TO index of its prepare transaction there (re-exported from
// internal/shard).
type ShardTO = shard.ShardTO

// Outcome classifies how the optimistic protocol handled a committed
// transaction at the submitting site.
type Outcome int

// Outcomes.
const (
	// FastPath means the tentative order was confirmed as-is: the
	// transaction executed once, in the position it was Opt-delivered,
	// and committed the moment the definitive order arrived. This is the
	// common case the paper's throughput argument rests on. A cross-shard
	// transaction is FastPath when its first attempt committed.
	FastPath Outcome = iota + 1
	// Reordered means TO-delivery moved the transaction ahead of pending
	// transactions in one of its class queues — its definitive position
	// contradicted the tentative one (Correctness Check, CC10).
	Reordered
	// Retried means the transaction's optimistic execution was undone by
	// the Correctness Check and redone in the definitive order (CC8), or
	// — for a cross-shard transaction — earlier attempts aborted on
	// validation before one committed.
	Retried
)

func (o Outcome) String() string {
	switch o {
	case FastPath:
		return "fastpath"
	case Reordered:
		return "reordered"
	case Retried:
		return "retried"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Result is the typed outcome of a committed update transaction.
type Result struct {
	// Value is the stored procedure's return value (may be nil).
	Value Value
	// TOIndex is the transaction's definitive total-order index; every
	// site commits conflicting transactions in ascending TOIndex order
	// within a shard group. For a cross-shard transaction it is the
	// prepare's index at the home shard; ShardTO lists every shard's.
	TOIndex int64
	// Outcome reports which protocol path the transaction took.
	Outcome Outcome
	// Latency is the submit-to-local-commit time observed by the session.
	Latency time.Duration
	// Shard is the shard group that ordered the transaction (the home
	// shard for a cross-shard transaction). Always 0 without WithShards.
	Shard int
	// ShardTO lists a cross-shard transaction's definitive position in
	// every shard it touched, ascending by shard; nil for single-shard
	// transactions.
	ShardTO []ShardTO
}

// Handle is the future of an in-flight update transaction submitted with
// Session.SubmitAsync. It resolves when the transaction commits at the
// submitting site (which fixes its definitive order everywhere) or when
// it terminally fails. Handles are safe for concurrent use.
type Handle struct {
	id    TxnID
	site  int
	shard int // owning shard group, or -1 for cross-shard

	done     chan struct{}
	res      Result
	err      error
	resolved atomic.Bool
}

// ID returns the transaction's broadcast identifier within its shard
// group, usable to correlate the transaction across sites (e.g. in
// commit logs and histories). Cross-shard transactions span groups and
// return the zero TxnID.
func (h *Handle) ID() TxnID { return h.id }

// Site returns the submitting site.
func (h *Handle) Site() int { return h.site }

// Shard returns the shard group the transaction was routed to, or -1 for
// a cross-shard transaction.
func (h *Handle) Shard() int { return h.shard }

// Done returns a channel closed when the handle is resolved. After Done
// is closed, Result returns immediately.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Resolved reports whether the handle has already resolved (non-blocking).
func (h *Handle) Resolved() bool { return h.resolved.Load() }

// Result blocks until the transaction commits locally (or terminally
// fails) and returns its typed outcome. Use Wait to bound the block with
// a context.
func (h *Handle) Result() (Result, error) {
	<-h.done
	return h.res, h.err
}

// Wait blocks until the handle resolves or ctx is cancelled. Abandoning
// the wait does not affect the transaction — broadcast is irrevocable and
// the handle can still be waited on again later.
func (h *Handle) Wait(ctx context.Context) (Result, error) {
	select {
	case <-h.done:
		return h.res, h.err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// resolve is the commit callback; the replica invokes it exactly once.
func (h *Handle) resolve(start time.Time, cr db.CommitResult) {
	h.err = cr.Err
	if cr.Err == nil {
		outcome := FastPath
		switch {
		case cr.Info.Retried:
			outcome = Retried
		case cr.Info.Reordered:
			outcome = Reordered
		}
		h.res = Result{
			Value:   cr.Info.Value,
			TOIndex: cr.Info.TOIndex,
			Outcome: outcome,
			Latency: time.Since(start),
			Shard:   h.shard,
		}
	}
	h.resolved.Store(true)
	close(h.done)
}

// resolveCross is the cross-shard coordinator callback; invoked exactly
// once per handle.
func (h *Handle) resolveCross(start time.Time, res shard.CrossResult, err error) {
	h.err = err
	if err == nil {
		outcome := FastPath
		if res.Retries > 0 {
			outcome = Retried
		}
		r := Result{
			Value:   res.Value,
			Outcome: outcome,
			Latency: time.Since(start),
			Shard:   res.Home,
			ShardTO: res.ShardTO,
		}
		for _, st := range res.ShardTO {
			if st.Shard == res.Home {
				r.TOIndex = st.TOIndex
			}
		}
		h.res = r
	}
	h.resolved.Store(true)
	close(h.done)
}

// Call names one procedure invocation of a batch.
type Call struct {
	// Proc is the registered update procedure name.
	Proc string
	// Args are the invocation arguments.
	Args []Value
}

// Session is a client attachment to one site of the cluster. It is the
// primary data interface: synchronous Exec with typed results, pipelined
// SubmitAsync returning transaction handles, amortized ExecBatch, and
// local snapshot queries. Sessions are safe for concurrent use and cheap
// to share; all sessions of a site observe the same replicas. A session
// is bound to the site, not to one incarnation of it: after
// Cluster.RestartSite the same session transparently talks to the
// site's new replicas. With WithShards the session routes each
// transaction to the shard group owning its classes; a transaction
// spanning shards runs the two-phase cross-shard protocol.
type Session struct {
	c    *Cluster
	site int
}

// Session returns the client session bound to the given site. The cluster
// must be started.
func (c *Cluster) Session(site int) (*Session, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if _, err := c.replicaLocked(0, site); err != nil {
		return nil, err
	}
	return c.sessions[site], nil
}

// rep resolves the site's current replica in one shard group.
func (s *Session) rep(g int) (*db.Replica, error) {
	return s.c.replica(g, s.site)
}

// Site returns the session's site index.
func (s *Session) Site() int { return s.site }

// SubmitAsync TO-broadcasts an update transaction and returns its handle
// without waiting for the commit. Clients pipeline by keeping many
// handles in flight and resolving them later; the broadcast layer orders
// all of them regardless of when (or whether) the handles are awaited.
// A transaction whose classes span shard groups is driven by the
// cross-shard coordinator instead; its handle resolves when the decision
// is committed in every shard it touched.
func (s *Session) SubmitAsync(proc string, args ...Value) (*Handle, error) {
	c := s.c
	classes, err := c.registry.UpdateClasses(proc)
	if err != nil {
		return nil, err
	}
	split := c.smap.Split(classes)
	if len(split) > 1 {
		h := &Handle{site: s.site, shard: -1, done: make(chan struct{})}
		start := time.Now()
		// The coordinator runs in the background so cross-shard
		// transactions pipeline like single-shard ones; its own vote and
		// resolve timeouts bound the run.
		go func() {
			res, cerr := c.coord.Exec(context.Background(), proc, args...)
			h.resolveCross(start, res, cerr)
		}()
		return h, nil
	}
	g := 0
	for owner := range split {
		g = owner
	}
	rep, err := s.rep(g)
	if err != nil {
		return nil, err
	}
	h := &Handle{site: s.site, shard: g, done: make(chan struct{})}
	start := time.Now()
	id, err := rep.SubmitNotify(proc, args, func(cr db.CommitResult) { h.resolve(start, cr) })
	if err != nil {
		return nil, err
	}
	h.id = id
	return h, nil
}

// Exec submits an update transaction and waits until it commits at this
// session's site, returning the procedure's value and ordering metadata.
// Committing at the submitting site implies the definitive order is
// fixed; all other sites commit the same transaction in the same relative
// order. On ctx cancellation the wait is abandoned but the transaction
// still commits everywhere — broadcast is irrevocable.
func (s *Session) Exec(ctx context.Context, proc string, args ...Value) (Result, error) {
	h, err := s.SubmitAsync(proc, args...)
	if err != nil {
		return Result{}, err
	}
	return h.Wait(ctx)
}

// ExecBatch submits every call before resolving any of them, amortizing
// the broadcast round-trips over the whole batch, then waits for all
// commits. Results are returned in call order. On error (including ctx
// cancellation) the already-broadcast tail still commits everywhere.
func (s *Session) ExecBatch(ctx context.Context, calls []Call) ([]Result, error) {
	handles := make([]*Handle, 0, len(calls))
	for i, call := range calls {
		h, err := s.SubmitAsync(call.Proc, call.Args...)
		if err != nil {
			return nil, fmt.Errorf("otpdb: batch call %d (%s): %w", i, call.Proc, err)
		}
		handles = append(handles, h)
	}
	results := make([]Result, len(handles))
	for i, h := range handles {
		res, err := h.Wait(ctx)
		if err != nil {
			return nil, fmt.Errorf("otpdb: batch call %d (%s): %w", i, calls[i].Proc, err)
		}
		results[i] = res
	}
	return results, nil
}

// Query runs a read-only stored procedure locally at the session's site,
// against a consistent multi-version snapshot (Section 5). Queries never
// block updates. With WithShards the query holds one pinned snapshot per
// shard group it touches, opened lazily at first read: reads within a
// shard see a consistent committed prefix, while the per-shard snapshots
// are pinned independently (per-shard snapshot isolation — there is no
// global cross-shard snapshot index).
func (s *Session) Query(ctx context.Context, proc string, args ...Value) (Value, error) {
	c := s.c
	if c.cfg.shards == 1 {
		rep, err := s.rep(0)
		if err != nil {
			return nil, err
		}
		return rep.Query(ctx, proc, args...)
	}
	q, err := c.registry.Query(proc)
	if err != nil {
		return nil, err
	}
	mq := &multiQueryCtx{s: s, ctx: ctx, args: args, snaps: make(map[int]*db.QuerySnap)}
	defer mq.close()
	res, err := q.Fn(mq)
	if err != nil {
		return nil, err
	}
	if mq.err != nil {
		return nil, mq.err
	}
	c.mu.RLock()
	for g, snap := range mq.snaps {
		if rec := c.groups[g].recorder; rec != nil {
			rec.RecordQuery(transport.NodeID(s.site), snap.QIndex(), snap.Reads())
		}
	}
	c.mu.RUnlock()
	return res, nil
}

// multiQueryCtx adapts per-shard QuerySnaps to sproc.QueryCtx, routing
// each read to the snapshot of the shard group owning its class.
type multiQueryCtx struct {
	s     *Session
	ctx   context.Context
	args  []Value
	snaps map[int]*db.QuerySnap
	err   error
}

func (m *multiQueryCtx) Args() []Value { return m.args }

func (m *multiQueryCtx) Read(class Class, key Key) (Value, bool) {
	if m.err != nil {
		return nil, false
	}
	g := m.s.c.smap.Locate(class)
	snap := m.snaps[g]
	if snap == nil {
		rep, err := m.s.rep(g)
		if err != nil {
			m.err = err
			return nil, false
		}
		snap, err = rep.BeginSnap(m.ctx)
		if err != nil {
			m.err = err
			return nil, false
		}
		m.snaps[g] = snap
	}
	v, ok := snap.Read(class, key)
	if e := snap.Err(); e != nil {
		m.err = e
		return nil, false
	}
	return v, ok
}

func (m *multiQueryCtx) close() {
	for _, snap := range m.snaps {
		snap.Close()
	}
}
