// Command faulttolerance crashes a minority of replicas in the middle of
// a run and shows that the cluster keeps committing: the optimistic
// atomic broadcast's consensus stages need only a majority, and the
// survivors converge to identical state (Section 2: crash failures,
// Section 2.1: the broadcast properties hold at every correct site).
//
//	go run ./examples/faulttolerance
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"otpdb"
)

const (
	sites        = 5
	beforeCrash  = 20
	afterCrash   = 20
	crashVictims = 2 // a minority of 5
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := otpdb.NewCluster(
		otpdb.WithReplicas(sites),
		otpdb.WithConsensusRoundTimeout(50*time.Millisecond),
	)
	if err != nil {
		return err
	}
	defer cluster.Stop()

	cluster.MustRegisterUpdate(otpdb.Update{
		Name:  "append",
		Class: "log",
		Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
			n, _ := ctx.Read("count")
			next := otpdb.Int64(otpdb.AsInt64(n) + 1)
			return next, ctx.Write("count", next)
		},
	})
	if err := cluster.Start(); err != nil {
		return err
	}
	ctx := context.Background()

	// Phase 1: all sites healthy. Sessions return typed results: the
	// count after each append and the definitive order index.
	var lastTO int64
	for i := 0; i < beforeCrash; i++ {
		sess, err := cluster.Session(i % sites)
		if err != nil {
			return err
		}
		res, err := sess.Exec(ctx, "append")
		if err != nil {
			return fmt.Errorf("pre-crash append %d: %w", i, err)
		}
		lastTO = res.TOIndex
	}
	fmt.Printf("phase 1: %d transactions committed on %d healthy sites (last TO index %d)\n",
		beforeCrash, sites, lastTO)

	// Phase 2: crash a minority.
	for v := 0; v < crashVictims; v++ {
		victim := sites - 1 - v
		if err := cluster.CrashSite(victim); err != nil {
			return err
		}
		fmt.Printf("crashed site %d\n", victim)
	}

	// Phase 3: the survivors keep committing (majority alive). Note the
	// submitting sites must be survivors.
	survivors := sites - crashVictims
	for i := 0; i < afterCrash; i++ {
		sess, err := cluster.Session(i % survivors)
		if err != nil {
			return err
		}
		ectx, cancel := context.WithTimeout(ctx, 30*time.Second)
		res, err := sess.Exec(ectx, "append")
		cancel()
		if err != nil {
			return fmt.Errorf("post-crash append %d: %w", i, err)
		}
		lastTO = res.TOIndex
	}
	fmt.Printf("phase 3: %d more transactions committed with %d/%d sites alive (last TO index %d)\n",
		afterCrash, survivors, sites, lastTO)

	// Verify the survivors agree and hold the full history.
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := cluster.WaitForCommits(wctx, beforeCrash+afterCrash); err != nil {
		return err
	}
	ok, err := cluster.Converged()
	if err != nil {
		return err
	}
	v, _, err := cluster.Read(0, "log", "count")
	if err != nil {
		return err
	}
	fmt.Printf("survivors converged: %v; count = %d (want %d)\n",
		ok, otpdb.AsInt64(v), beforeCrash+afterCrash)
	if !ok || otpdb.AsInt64(v) != beforeCrash+afterCrash {
		return fmt.Errorf("fault tolerance demonstration failed")
	}
	return nil
}
