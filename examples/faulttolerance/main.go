// Command faulttolerance crashes a minority of replicas in the middle of
// a run, shows that the cluster keeps committing (the optimistic atomic
// broadcast's consensus stages need only a majority), then brings the
// victims back with RestartSite: each rejoins from a peer checkpoint
// plus the definitive deliveries it missed, submits new transactions of
// its own, and all five sites reconverge to identical state (Section 2:
// crash failures; Section 3.2: recovery).
//
//	go run ./examples/faulttolerance
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"otpdb"
)

const (
	sites        = 5
	beforeCrash  = 20
	afterCrash   = 20
	afterRejoin  = 10
	crashVictims = 2 // a minority of 5
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := otpdb.NewCluster(
		otpdb.WithReplicas(sites),
		otpdb.WithConsensusRoundTimeout(50*time.Millisecond),
	)
	if err != nil {
		return err
	}
	defer cluster.Stop()

	cluster.MustRegisterUpdate(otpdb.Update{
		Name:  "append",
		Class: "log",
		Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
			n, _ := ctx.Read("count")
			next := otpdb.Int64(otpdb.AsInt64(n) + 1)
			return next, ctx.Write("count", next)
		},
	})
	if err := cluster.Start(); err != nil {
		return err
	}
	ctx := context.Background()

	// Phase 1: all sites healthy. Sessions return typed results: the
	// count after each append and the definitive order index.
	var lastTO int64
	for i := 0; i < beforeCrash; i++ {
		sess, err := cluster.Session(i % sites)
		if err != nil {
			return err
		}
		res, err := sess.Exec(ctx, "append")
		if err != nil {
			return fmt.Errorf("pre-crash append %d: %w", i, err)
		}
		lastTO = res.TOIndex
	}
	fmt.Printf("phase 1: %d transactions committed on %d healthy sites (last TO index %d)\n",
		beforeCrash, sites, lastTO)

	// Phase 2: crash a minority.
	for v := 0; v < crashVictims; v++ {
		victim := sites - 1 - v
		if err := cluster.CrashSite(victim); err != nil {
			return err
		}
		fmt.Printf("crashed site %d\n", victim)
	}

	// Phase 3: the survivors keep committing (majority alive). Note the
	// submitting sites must be survivors.
	survivors := sites - crashVictims
	for i := 0; i < afterCrash; i++ {
		sess, err := cluster.Session(i % survivors)
		if err != nil {
			return err
		}
		ectx, cancel := context.WithTimeout(ctx, 30*time.Second)
		res, err := sess.Exec(ectx, "append")
		cancel()
		if err != nil {
			return fmt.Errorf("post-crash append %d: %w", i, err)
		}
		lastTO = res.TOIndex
	}
	fmt.Printf("phase 3: %d more transactions committed with %d/%d sites alive (last TO index %d)\n",
		afterCrash, survivors, sites, lastTO)

	// Phase 4: bring the victims back. Each rejoins live — a peer
	// checkpoint plus the missed definitive deliveries — and then
	// submits new transactions of its own.
	rctx, rcancel := context.WithTimeout(ctx, 30*time.Second)
	defer rcancel()
	for v := 0; v < crashVictims; v++ {
		victim := sites - 1 - v
		if err := cluster.RestartSite(rctx, victim); err != nil {
			return fmt.Errorf("restart site %d: %w", victim, err)
		}
		fmt.Printf("restarted site %d\n", victim)
	}
	for i := 0; i < afterRejoin; i++ {
		sess, err := cluster.Session(i % sites) // all five sites submit again
		if err != nil {
			return err
		}
		ectx, cancel := context.WithTimeout(ctx, 30*time.Second)
		res, err := sess.Exec(ectx, "append")
		cancel()
		if err != nil {
			return fmt.Errorf("post-rejoin append %d: %w", i, err)
		}
		lastTO = res.TOIndex
	}
	total := beforeCrash + afterCrash + afterRejoin
	fmt.Printf("phase 4: %d more transactions committed with all %d sites alive (last TO index %d)\n",
		afterRejoin, sites, lastTO)

	// Verify ALL five sites agree and hold the full history.
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := cluster.WaitForCommits(wctx, total); err != nil {
		return err
	}
	ok, err := cluster.Converged()
	if err != nil {
		return err
	}
	v, _, err := cluster.Read(sites-1, "log", "count") // read at a restarted site
	if err != nil {
		return err
	}
	fmt.Printf("all %d sites converged: %v; count = %d (want %d)\n",
		sites, ok, otpdb.AsInt64(v), total)
	if !ok || otpdb.AsInt64(v) != int64(total) {
		return fmt.Errorf("fault tolerance demonstration failed")
	}
	return nil
}
