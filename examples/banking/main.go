// Command banking runs the paper's motivating workload: a replicated bank
// with one conflict class per branch. Transfers within a branch conflict
// (and are serialized by the class queue); transfers in different
// branches run concurrently. Network jitter makes tentative and
// definitive orders disagree, exercising the abort/reorder machinery of
// the Correctness Check module — each site pipelines its transfers with
// SubmitAsync and the resolved handles report per-transaction outcomes
// (fastpath / reordered / retried).
//
//	go run ./examples/banking
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"otpdb"
)

const (
	branches        = 4
	accountsPer     = 8
	initialBalance  = 1000
	transfersPerSit = 50
	sites           = 3
	pipelineDepth   = 8 // in-flight transactions per site
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func branchClass(b int) otpdb.Class {
	return otpdb.Class(fmt.Sprintf("branch%d", b))
}

func run() error {
	cluster, err := otpdb.NewCluster(
		otpdb.WithReplicas(sites),
		otpdb.WithNetworkJitter(2*time.Millisecond), // provoke mismatches
		otpdb.WithHistoryRecording(),
	)
	if err != nil {
		return err
	}
	defer cluster.Stop()

	for b := 0; b < branches; b++ {
		class := branchClass(b)
		cluster.MustRegisterUpdate(otpdb.Update{
			Name:  fmt.Sprintf("transfer-%d", b),
			Class: class,
			Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
				from := otpdb.Key(otpdb.AsString(ctx.Args()[0]))
				to := otpdb.Key(otpdb.AsString(ctx.Args()[1]))
				amount := otpdb.AsInt64(ctx.Args()[2])
				fv, _ := ctx.Read(from)
				tv, _ := ctx.Read(to)
				if err := ctx.Write(from, otpdb.Int64(otpdb.AsInt64(fv)-amount)); err != nil {
					return nil, err
				}
				// Return the sender's new balance to the client.
				return otpdb.Int64(otpdb.AsInt64(fv) - amount),
					ctx.Write(to, otpdb.Int64(otpdb.AsInt64(tv)+amount))
			},
		})
		for a := 0; a < accountsPer; a++ {
			if err := cluster.Seed(class, otpdb.Key(fmt.Sprintf("acct%d", a)),
				otpdb.Int64(initialBalance)); err != nil {
				return err
			}
		}
	}
	// Bank-wide audit: sums every account of every branch from one
	// consistent snapshot. Transfers conserve money, so the audit total
	// is invariant.
	cluster.MustRegisterQuery(otpdb.Query{
		Name: "audit",
		Fn: func(ctx otpdb.QueryCtx) (otpdb.Value, error) {
			var total int64
			for b := 0; b < branches; b++ {
				for a := 0; a < accountsPer; a++ {
					v, _ := ctx.Read(branchClass(b), otpdb.Key(fmt.Sprintf("acct%d", a)))
					total += otpdb.AsInt64(v)
				}
			}
			return otpdb.Int64(total), nil
		},
	})
	if err := cluster.Start(); err != nil {
		return err
	}

	ctx := context.Background()
	expected := int64(branches * accountsPer * initialBalance)

	// Load: every site pipelines transfers at random branches through
	// its session, keeping pipelineDepth in flight, concurrently with
	// audits. Outcome counters show how often the optimistic order held.
	var omu sync.Mutex
	outcomeCount := map[otpdb.Outcome]int{}
	var wg sync.WaitGroup
	start := time.Now()
	for site := 0; site < sites; site++ {
		sess, err := cluster.Session(site)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(site int, sess *otpdb.Session) {
			defer wg.Done()
			resolve := func(h *otpdb.Handle) bool {
				res, err := h.Result()
				if err != nil {
					log.Printf("site %d transfer %v: %v", site, h.ID(), err)
					return false
				}
				omu.Lock()
				outcomeCount[res.Outcome]++
				omu.Unlock()
				return true
			}
			window := make([]*otpdb.Handle, 0, pipelineDepth)
			for i := 0; i < transfersPerSit; i++ {
				if len(window) == pipelineDepth {
					if !resolve(window[0]) {
						return
					}
					window = window[1:]
				}
				b := (site + i) % branches
				from := fmt.Sprintf("acct%d", i%accountsPer)
				to := fmt.Sprintf("acct%d", (i+1)%accountsPer)
				h, err := sess.SubmitAsync(fmt.Sprintf("transfer-%d", b),
					otpdb.String(from), otpdb.String(to), otpdb.Int64(5))
				if err != nil {
					log.Printf("site %d submit: %v", site, err)
					return
				}
				window = append(window, h)
			}
			for _, h := range window {
				if !resolve(h) {
					return
				}
			}
		}(site, sess)
	}
	auditFailures := 0
	for i := 0; i < 20; i++ {
		v, err := cluster.QueryAt(ctx, i%sites, "audit")
		if err != nil {
			return err
		}
		if otpdb.AsInt64(v) != expected {
			auditFailures++
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := cluster.WaitForCommits(wctx, sites*transfersPerSit); err != nil {
		return err
	}
	ok, err := cluster.Converged()
	if err != nil {
		return err
	}
	if err := cluster.CheckHistory(); err != nil {
		return fmt.Errorf("serializability check: %w", err)
	}

	fmt.Printf("committed %d transfers across %d sites in %v (pipeline depth %d)\n",
		sites*transfersPerSit, sites, elapsed.Round(time.Millisecond), pipelineDepth)
	fmt.Printf("outcomes: fastpath=%d reordered=%d retried=%d\n",
		outcomeCount[otpdb.FastPath], outcomeCount[otpdb.Reordered], outcomeCount[otpdb.Retried])
	fmt.Printf("audits during load: 20, inconsistent: %d (must be 0)\n", auditFailures)
	fmt.Printf("replicas converged: %v; history 1-copy-serializable\n", ok)
	for site := 0; site < sites; site++ {
		st, err := cluster.SiteStats(site)
		if err != nil {
			return err
		}
		fmt.Printf("site %d: commits=%d aborts=%d reorders=%d (mismatch repair work)\n",
			site, st.Commits, st.Aborts, st.Reorders)
	}
	return nil
}
