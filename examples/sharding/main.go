// Command sharding runs the bank across two shards: branch classes are
// pinned to alternating shards, so within-branch transfers commit through
// their home shard's ordinary OTP path while cross-branch transfers run
// the two-phase cross-shard protocol (definitively ordered in both
// shards, decided by the home shard's durable record — abort anywhere is
// abort everywhere). The run ends by checking the invariant sharding must
// not break: money is conserved across the whole namespace, and every
// site agrees per shard.
//
//	go run ./examples/sharding
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"otpdb"
)

const (
	shards      = 2
	branches    = 4 // branch b lives on shard b%shards
	accountsPer = 4
	initial     = 1000
	sites       = 3
	transfers   = 120 // per kind (local, cross)
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func branchClass(b int) otpdb.Class {
	return otpdb.Class(fmt.Sprintf("branch%d", b))
}

func acct(b, a int) otpdb.Key {
	return otpdb.Key(fmt.Sprintf("b%d/acct%d", b, a))
}

func run() error {
	cluster, err := otpdb.NewCluster(
		otpdb.WithReplicas(sites),
		otpdb.WithShards(shards),
	)
	if err != nil {
		return err
	}
	defer cluster.Stop()

	// Pin branch b to shard b%shards. Branches 0,2 and 1,3 commit in
	// independent total orders; nothing below changes if the pin layout
	// does.
	for b := 0; b < branches; b++ {
		if err := cluster.PinClass(branchClass(b), b%shards); err != nil {
			return err
		}
	}

	// Within-branch transfer: a single-shard, single-class procedure.
	for b := 0; b < branches; b++ {
		b := b
		cluster.MustRegisterUpdate(otpdb.Update{
			Name:  fmt.Sprintf("transfer-%d", b),
			Class: branchClass(b),
			Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
				return move(ctx.Read, func(k otpdb.Key, v otpdb.Value) error { return ctx.Write(k, v) }, ctx.Args())
			},
		})
	}

	// Cross-branch transfer between branch 0 (shard 0) and branch 1
	// (shard 1): a MultiUpdate whose classes span shards, routed through
	// the cross-shard coordinator transparently.
	c0, c1 := branchClass(0), branchClass(1)
	cluster.MustRegisterMultiUpdate(otpdb.MultiUpdate{
		Name:    "transfer-x",
		Classes: []otpdb.Class{c0, c1},
		Fn: func(ctx otpdb.MultiUpdateCtx) (otpdb.Value, error) {
			from := otpdb.Key(otpdb.AsString(ctx.Args()[0]))
			to := otpdb.Key(otpdb.AsString(ctx.Args()[1]))
			amt := otpdb.AsInt64(ctx.Args()[2])
			fv, _ := ctx.Read(c0, from)
			if otpdb.AsInt64(fv) < amt {
				return nil, fmt.Errorf("insufficient funds in %s", from)
			}
			tv, _ := ctx.Read(c1, to)
			if err := ctx.Write(c0, from, otpdb.Int64(otpdb.AsInt64(fv)-amt)); err != nil {
				return nil, err
			}
			next := otpdb.Int64(otpdb.AsInt64(tv) + amt)
			return next, ctx.Write(c1, to, next)
		},
	})

	// Seed deposits per branch.
	for b := 0; b < branches; b++ {
		b := b
		cluster.MustRegisterUpdate(otpdb.Update{
			Name:  fmt.Sprintf("seed-%d", b),
			Class: branchClass(b),
			Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
				k := otpdb.Key(otpdb.AsString(ctx.Args()[0]))
				v := otpdb.Int64(otpdb.AsInt64(ctx.Args()[1]))
				return v, ctx.Write(k, v)
			},
		})
	}

	// Per-branch balance sum (single-shard query).
	for b := 0; b < branches; b++ {
		b := b
		cluster.MustRegisterQuery(otpdb.Query{
			Name: fmt.Sprintf("branch-total-%d", b),
			Fn: func(ctx otpdb.QueryCtx) (otpdb.Value, error) {
				var sum int64
				for a := 0; a < accountsPer; a++ {
					v, _ := ctx.Read(branchClass(b), acct(b, a))
					sum += otpdb.AsInt64(v)
				}
				return otpdb.Int64(sum), nil
			},
		})
	}

	if err := cluster.Start(); err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sess, err := cluster.Session(0)
	if err != nil {
		return err
	}

	for b := 0; b < branches; b++ {
		for a := 0; a < accountsPer; a++ {
			if _, err := sess.Exec(ctx, fmt.Sprintf("seed-%d", b), otpdb.String(string(acct(b, a))), otpdb.Int64(initial)); err != nil {
				return err
			}
		}
	}
	total := int64(branches * accountsPer * initial)
	fmt.Printf("seeded %d branches × %d accounts on %d shards; total=%d\n",
		branches, accountsPer, shards, total)

	// Local transfers: round-robin over branches, each stays inside its
	// home shard.
	for i := 0; i < transfers; i++ {
		b := i % branches
		from := acct(b, i%accountsPer)
		to := acct(b, (i+1)%accountsPer)
		if _, err := sess.Exec(ctx, fmt.Sprintf("transfer-%d", b),
			otpdb.String(string(from)), otpdb.String(string(to)), otpdb.Int64(5)); err != nil {
			return err
		}
	}

	// Cross-shard transfers branch0 → branch1, including some doomed to
	// abort (insufficient funds) — an abort in shard 0 must leave shard 1
	// untouched too.
	commits, aborts := 0, 0
	for i := 0; i < transfers; i++ {
		amt := int64(3)
		if i%10 == 9 {
			amt = 1 << 40 // force an abort
		}
		from := acct(0, i%accountsPer)
		to := acct(1, i%accountsPer)
		_, err := sess.Exec(ctx, "transfer-x",
			otpdb.String(string(from)), otpdb.String(string(to)), otpdb.Int64(amt))
		if err != nil {
			aborts++
			continue
		}
		commits++
	}
	fmt.Printf("cross-shard: %d committed, %d aborted (both shards agree on every outcome)\n", commits, aborts)

	// Invariant 1: money conserved across the whole sharded namespace.
	var sum int64
	for b := 0; b < branches; b++ {
		v, err := sess.Query(ctx, fmt.Sprintf("branch-total-%d", b))
		if err != nil {
			return err
		}
		sum += otpdb.AsInt64(v)
	}
	if sum != total {
		return fmt.Errorf("money not conserved: have %d, want %d", sum, total)
	}
	fmt.Printf("conservation holds: total=%d\n", sum)

	// Invariant 2: every site agrees, shard by shard. Non-submitting
	// sites may trail the last commit by a moment, so poll briefly.
	for g := 0; g < shards; g++ {
		first, err := converge(cluster, g)
		if err != nil {
			return err
		}
		fmt.Printf("shard %d: all %d sites converged (digest %016x)\n", g, sites, first)
	}
	return nil
}

func converge(cluster *otpdb.Cluster, g int) (uint64, error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		digests := make([]uint64, sites)
		agree := true
		for s := 0; s < sites; s++ {
			d, err := cluster.ShardDigest(s, g)
			if err != nil {
				return 0, err
			}
			digests[s] = d
			agree = agree && d == digests[0]
		}
		if agree {
			return digests[0], nil
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("shard %d digests did not converge: %v", g, digests)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// move implements the shared within-branch transfer body over the
// single-class read/write surface.
func move(read func(otpdb.Key) (otpdb.Value, bool), write func(otpdb.Key, otpdb.Value) error, args []otpdb.Value) (otpdb.Value, error) {
	from := otpdb.Key(otpdb.AsString(args[0]))
	to := otpdb.Key(otpdb.AsString(args[1]))
	amt := otpdb.AsInt64(args[2])
	fv, _ := read(from)
	if otpdb.AsInt64(fv) < amt {
		return nil, fmt.Errorf("insufficient funds in %s", from)
	}
	tv, _ := read(to)
	if err := write(from, otpdb.Int64(otpdb.AsInt64(fv)-amt)); err != nil {
		return nil, err
	}
	next := otpdb.Int64(otpdb.AsInt64(tv) + amt)
	return next, write(to, next)
}
