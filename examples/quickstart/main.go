// Command quickstart is the smallest possible otpdb program: a 3-replica
// cluster with one update procedure and one query. Run it with
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"otpdb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := otpdb.NewCluster(otpdb.WithReplicas(3))
	if err != nil {
		return err
	}
	defer cluster.Stop()

	// An update stored procedure: bound to conflict class "accounts",
	// broadcast to every replica, executed in the same definitive order
	// everywhere.
	cluster.MustRegisterUpdate(otpdb.Update{
		Name:  "credit",
		Class: "accounts",
		Fn: func(ctx otpdb.UpdateCtx) error {
			account := otpdb.Key(otpdb.AsString(ctx.Args()[0]))
			amount := otpdb.AsInt64(ctx.Args()[1])
			balance, _ := ctx.Read(account)
			return ctx.Write(account, otpdb.Int64(otpdb.AsInt64(balance)+amount))
		},
	})
	// A read-only query: runs locally at one replica against a
	// consistent snapshot, never blocking updates.
	cluster.MustRegisterQuery(otpdb.Query{
		Name: "balance",
		Fn: func(ctx otpdb.QueryCtx) (otpdb.Value, error) {
			v, _ := ctx.Read("accounts", otpdb.Key(otpdb.AsString(ctx.Args()[0])))
			return v, nil
		},
	})
	if err := cluster.Start(); err != nil {
		return err
	}

	ctx := context.Background()
	// Submit updates at different replicas; the atomic broadcast puts
	// them in one global order.
	for site := 0; site < cluster.Size(); site++ {
		if err := cluster.Exec(ctx, site, "credit",
			otpdb.String("alice"), otpdb.Int64(100)); err != nil {
			return err
		}
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := cluster.WaitForCommits(wctx, 3); err != nil {
		return err
	}

	// Every replica answers the same balance.
	for site := 0; site < cluster.Size(); site++ {
		v, err := cluster.QueryAt(ctx, site, "balance", otpdb.String("alice"))
		if err != nil {
			return err
		}
		fmt.Printf("site %d: alice = %d\n", site, otpdb.AsInt64(v))
	}
	ok, err := cluster.Converged()
	if err != nil {
		return err
	}
	fmt.Printf("replicas converged: %v\n", ok)
	return nil
}
