// Command quickstart is the smallest possible otpdb program: a 3-replica
// cluster with one update procedure and one query, driven through the
// Session API. Run it with
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"otpdb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := otpdb.NewCluster(otpdb.WithReplicas(3))
	if err != nil {
		return err
	}
	defer cluster.Stop()

	// An update stored procedure: bound to conflict class "accounts",
	// broadcast to every replica, executed in the same definitive order
	// everywhere. It returns the new balance, which the submitting
	// client receives in Result.Value.
	cluster.MustRegisterUpdate(otpdb.Update{
		Name:  "credit",
		Class: "accounts",
		Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
			account := otpdb.Key(otpdb.AsString(ctx.Args()[0]))
			amount := otpdb.AsInt64(ctx.Args()[1])
			balance, _ := ctx.Read(account)
			next := otpdb.Int64(otpdb.AsInt64(balance) + amount)
			return next, ctx.Write(account, next)
		},
	})
	// A read-only query: runs locally at one replica against a
	// consistent snapshot, never blocking updates.
	cluster.MustRegisterQuery(otpdb.Query{
		Name: "balance",
		Fn: func(ctx otpdb.QueryCtx) (otpdb.Value, error) {
			v, _ := ctx.Read("accounts", otpdb.Key(otpdb.AsString(ctx.Args()[0])))
			return v, nil
		},
	})
	if err := cluster.Start(); err != nil {
		return err
	}

	ctx := context.Background()
	// Open a session per replica and submit updates; the atomic
	// broadcast puts them in one global order, and every Result reports
	// the value, the definitive position and the protocol path taken.
	for site := 0; site < cluster.Size(); site++ {
		sess, err := cluster.Session(site)
		if err != nil {
			return err
		}
		res, err := sess.Exec(ctx, "credit", otpdb.String("alice"), otpdb.Int64(100))
		if err != nil {
			return err
		}
		fmt.Printf("site %d: credited -> balance %d (to=%d, %s, %v)\n",
			site, otpdb.AsInt64(res.Value), res.TOIndex, res.Outcome,
			res.Latency.Round(time.Microsecond))
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := cluster.WaitForCommits(wctx, 3); err != nil {
		return err
	}

	// Every replica answers the same balance.
	for site := 0; site < cluster.Size(); site++ {
		sess, err := cluster.Session(site)
		if err != nil {
			return err
		}
		v, err := sess.Query(ctx, "balance", otpdb.String("alice"))
		if err != nil {
			return err
		}
		fmt.Printf("site %d: alice = %d\n", site, otpdb.AsInt64(v))
	}
	ok, err := cluster.Converged()
	if err != nil {
		return err
	}
	fmt.Printf("replicas converged: %v\n", ok)
	return nil
}
