// Command inventory models a warehouse chain: one conflict class per
// warehouse, stock movements as update transactions, and a company-wide
// stock report as a snapshot query (Section 5 of the paper). The report
// runs concurrently with the update load, never blocks it, and always
// sees a consistent cut: goods in transit between two warehouses are
// visible in exactly one of them, never zero or both.
//
//	go run ./examples/inventory
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"otpdb"
)

const (
	warehouses   = 3
	skus         = 5
	initialStock = 100
	movesPerSite = 40
	sites        = 3
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func warehouse(w int) otpdb.Class {
	return otpdb.Class(fmt.Sprintf("wh%d", w))
}

func sku(i int) otpdb.Key {
	return otpdb.Key(fmt.Sprintf("sku%d", i))
}

func run() error {
	cluster, err := otpdb.NewCluster(
		otpdb.WithReplicas(sites),
		otpdb.WithNetworkJitter(time.Millisecond),
	)
	if err != nil {
		return err
	}
	defer cluster.Stop()

	for w := 0; w < warehouses; w++ {
		class := warehouse(w)
		// receive-<w>(sku, qty): goods arrive at warehouse w; returns the
		// item's new stock level.
		cluster.MustRegisterUpdate(otpdb.Update{
			Name:  fmt.Sprintf("receive-%d", w),
			Class: class,
			Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
				item := otpdb.Key(otpdb.AsString(ctx.Args()[0]))
				qty := otpdb.AsInt64(ctx.Args()[1])
				cur, _ := ctx.Read(item)
				next := otpdb.Int64(otpdb.AsInt64(cur) + qty)
				return next, ctx.Write(item, next)
			},
		})
		// ship-<w>(sku, qty): goods leave warehouse w; returns the item's
		// new stock level.
		cluster.MustRegisterUpdate(otpdb.Update{
			Name:  fmt.Sprintf("ship-%d", w),
			Class: class,
			Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
				item := otpdb.Key(otpdb.AsString(ctx.Args()[0]))
				qty := otpdb.AsInt64(ctx.Args()[1])
				cur, _ := ctx.Read(item)
				next := otpdb.Int64(otpdb.AsInt64(cur) - qty)
				return next, ctx.Write(item, next)
			},
		})
		for s := 0; s < skus; s++ {
			if err := cluster.Seed(class, sku(s), otpdb.Int64(initialStock)); err != nil {
				return err
			}
		}
	}
	// stockReport(): company-wide total per SKU from one snapshot.
	cluster.MustRegisterQuery(otpdb.Query{
		Name: "stockTotal",
		Fn: func(ctx otpdb.QueryCtx) (otpdb.Value, error) {
			var total int64
			for w := 0; w < warehouses; w++ {
				for s := 0; s < skus; s++ {
					v, _ := ctx.Read(warehouse(w), sku(s))
					total += otpdb.AsInt64(v)
				}
			}
			return otpdb.Int64(total), nil
		},
	})
	if err := cluster.Start(); err != nil {
		return err
	}

	ctx := context.Background()
	expectedTotal := int64(warehouses * skus * initialStock)

	// Concurrent load: every site moves stock between warehouse pairs.
	// Each move is two transactions (ship + receive), so a report taken
	// between them legitimately sees the goods "in transit" — the total
	// dips by the moved quantity at most. To keep the invariant crisp we
	// move zero-sum within one warehouse here and do cross-warehouse
	// moves as receive-then-ship (never negative totals). Each site
	// submits its moves in batches through its session: ExecBatch
	// broadcasts the whole batch before resolving any commit, amortizing
	// the ordering round-trips.
	const movesPerBatch = 8
	var wg sync.WaitGroup
	for site := 0; site < sites; site++ {
		sess, err := cluster.Session(site)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(site int, sess *otpdb.Session) {
			defer wg.Done()
			calls := make([]otpdb.Call, 0, 2*movesPerBatch)
			flush := func() bool {
				if len(calls) == 0 {
					return true
				}
				if _, err := sess.ExecBatch(ctx, calls); err != nil {
					log.Printf("site %d batch: %v", site, err)
					return false
				}
				calls = calls[:0]
				return true
			}
			for i := 0; i < movesPerSite; i++ {
				w := (site + i) % warehouses
				item := otpdb.String(fmt.Sprintf("sku%d", i%skus))
				// Receive 3 and ship 3 in the same warehouse: the
				// warehouse total is conserved transaction by
				// transaction... shipped quantity re-enters elsewhere.
				calls = append(calls,
					otpdb.Call{Proc: fmt.Sprintf("receive-%d", w), Args: []otpdb.Value{item, otpdb.Int64(3)}},
					otpdb.Call{Proc: fmt.Sprintf("ship-%d", w), Args: []otpdb.Value{item, otpdb.Int64(3)}},
				)
				if len(calls) >= 2*movesPerBatch && !flush() {
					return
				}
			}
			flush()
		}(site, sess)
	}

	// Reports run concurrently with the load. Because every +3 is paired
	// with a -3 in the same warehouse, any snapshot total lies within
	// [expected - 3*movesPerBatch*sites, expected + 3*movesPerBatch*sites]:
	// each site pipelines up to movesPerBatch receive/ship pairs, and with
	// jitter the definitive order may commit either half of a pair first,
	// so a snapshot can see up to that many unmatched receives (total
	// above expected) or unmatched ships (total below).
	reports := 0
	outOfBounds := 0
	maxSlack := int64(3 * movesPerBatch * sites)
	for i := 0; i < 25; i++ {
		v, err := cluster.QueryAt(ctx, i%sites, "stockTotal")
		if err != nil {
			return err
		}
		total := otpdb.AsInt64(v)
		reports++
		if total < expectedTotal-maxSlack || total > expectedTotal+maxSlack {
			outOfBounds++
		}
	}
	wg.Wait()

	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := cluster.WaitForCommits(wctx, sites*movesPerSite*2); err != nil {
		return err
	}
	final, err := cluster.QueryAt(ctx, 0, "stockTotal")
	if err != nil {
		return err
	}
	ok, err := cluster.Converged()
	if err != nil {
		return err
	}
	fmt.Printf("stock reports during load: %d, out of bounds: %d (must be 0)\n", reports, outOfBounds)
	fmt.Printf("final company stock: %d (expected %d)\n", otpdb.AsInt64(final), expectedTotal)
	fmt.Printf("replicas converged: %v\n", ok)
	return nil
}
