package otpdb_test

// One benchmark per paper artifact (see DESIGN.md §4 for the experiment
// index) plus micro-benchmarks for the ablations called out in DESIGN.md
// §5. The macro benchmarks wrap the experiment harness with reduced
// parameters and export the headline quantity via b.ReportMetric; run
// cmd/otpbench for the full tables.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"otpdb"
	"otpdb/internal/abcast"
	"otpdb/internal/consensus"
	"otpdb/internal/experiments"
	"otpdb/internal/netsim"
	"otpdb/internal/otp"
	"otpdb/internal/storage"
	"otpdb/internal/transport"
)

// BenchmarkFigure1SpontaneousOrder regenerates one point of Figure 1 per
// iteration and reports the spontaneous-order percentage at the paper's
// 4 ms anchor.
func BenchmarkFigure1SpontaneousOrder(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		st := netsim.SpontaneousExperiment{
			Sites:    4,
			PerSite:  200,
			Interval: 4 * time.Millisecond,
			Seed:     int64(i),
		}.Run()
		last = st.Percent()
	}
	b.ReportMetric(last, "%ordered@4ms")
}

// BenchmarkAbortRate regenerates E2 cells: abort rate per committed
// transaction under 25% adjacent-swap mismatch, by class count. The
// paper's §3.2 claim is visible in the falling aborts/commit metric.
func BenchmarkAbortRate(b *testing.B) {
	for _, classes := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("classes=%d", classes), func(b *testing.B) {
			var aborts, commits uint64
			for i := 0; i < b.N; i++ {
				st := experiments.AbortRateCell(500, classes, 0.25, int64(i))
				aborts += st.Aborts
				commits += st.Commits
			}
			b.ReportMetric(100*float64(aborts)/float64(commits), "aborts%")
		})
	}
}

// BenchmarkOTPManager measures the raw event-processing throughput of the
// core scheduler: one Opt+TO+execution cycle per iteration.
func BenchmarkOTPManager(b *testing.B) {
	exec := &autoExec{}
	mgr := otp.NewManager(exec, otp.Hooks{})
	exec.mgr = mgr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := abcast.MsgID{Origin: 0, Seq: uint64(i + 1)}
		if err := mgr.OnOptDeliver(id, "c", nil); err != nil {
			b.Fatal(err)
		}
		if err := mgr.OnTODeliver(id); err != nil {
			b.Fatal(err)
		}
	}
	if mgr.Pending() != 0 {
		b.Fatal("transactions stuck")
	}
}

// autoExec completes executions synchronously.
type autoExec struct{ mgr *otp.Manager }

func (e *autoExec) Submit(tx *otp.Txn, epoch int) { e.mgr.OnExecuted(tx.ID, epoch) }
func (e *autoExec) Abort(*otp.Txn)                {}
func (e *autoExec) Commit(*otp.Txn)               {}

// BenchmarkOTPManagerWithMismatch measures the scheduler including the
// abort/reorder path: every other TO confirmation contradicts the
// tentative order.
func BenchmarkOTPManagerWithMismatch(b *testing.B) {
	exec := &autoExec{}
	mgr := otp.NewManager(exec, otp.Hooks{})
	exec.mgr = mgr
	b.ResetTimer()
	seq := uint64(0)
	for i := 0; i < b.N; i++ {
		a := abcast.MsgID{Origin: 0, Seq: seq + 1}
		c := abcast.MsgID{Origin: 0, Seq: seq + 2}
		seq += 2
		if err := mgr.OnOptDeliver(a, "c", nil); err != nil {
			b.Fatal(err)
		}
		if err := mgr.OnOptDeliver(c, "c", nil); err != nil {
			b.Fatal(err)
		}
		// Definitive order reverses the tentative one.
		if err := mgr.OnTODeliver(c); err != nil {
			b.Fatal(err)
		}
		if err := mgr.OnTODeliver(a); err != nil {
			b.Fatal(err)
		}
	}
	st := mgr.Stats()
	b.ReportMetric(float64(st.Aborts)/float64(b.N), "aborts/op")
}

// BenchmarkStorageCommit is the write-strategy ablation: buffered
// write-at-commit versus in-place writes with undo logs.
func BenchmarkStorageCommit(b *testing.B) {
	for _, mode := range []storage.Mode{storage.Buffered, storage.InPlaceUndo} {
		name := "buffered"
		if mode == storage.InPlaceUndo {
			name = "inplace-undo"
		}
		b.Run(name, func(b *testing.B) {
			s := storage.NewStore()
			val := storage.Int64Value(42)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx, err := s.Begin("p", mode)
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < 4; k++ {
					_ = tx.Write(storage.Key(fmt.Sprintf("k%d", k)), val)
				}
				if err := tx.Commit(int64(i + 1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStorageAbort is the undo-cost ablation: rolling back a
// transaction under each write strategy.
func BenchmarkStorageAbort(b *testing.B) {
	for _, mode := range []storage.Mode{storage.Buffered, storage.InPlaceUndo} {
		name := "buffered"
		if mode == storage.InPlaceUndo {
			name = "inplace-undo"
		}
		b.Run(name, func(b *testing.B) {
			s := storage.NewStore()
			for k := 0; k < 4; k++ {
				s.Load("p", storage.Key(fmt.Sprintf("k%d", k)), storage.Int64Value(0))
			}
			val := storage.Int64Value(42)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx, err := s.Begin("p", mode)
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < 4; k++ {
					_ = tx.Write(storage.Key(fmt.Sprintf("k%d", k)), val)
				}
				if err := tx.Abort(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotRead measures Section 5 snapshot reads against a deep
// version chain.
func BenchmarkSnapshotRead(b *testing.B) {
	s := storage.NewStore()
	for i := int64(1); i <= 1000; i++ {
		tx, _ := s.Begin("p", storage.Buffered)
		_ = tx.Write("k", storage.Int64Value(i))
		if err := tx.Commit(i); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.SnapshotRead("p", "k", int64(i%1000)+1); !ok {
			b.Fatal("missing version")
		}
	}
}

// BenchmarkSnapshotReadParallel measures the lock-free read path under
// reader concurrency: snapshot reads scale with GOMAXPROCS because they
// take no locks at all.
func BenchmarkSnapshotReadParallel(b *testing.B) {
	s := storage.NewStore()
	for i := int64(1); i <= 1000; i++ {
		tx, _ := s.Begin("p", storage.Buffered)
		_ = tx.Write("k", storage.Int64Value(i))
		if err := tx.Commit(i); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, ok := s.SnapshotRead("p", "k", int64(i%1000)+1); !ok {
				b.Error("missing version")
				return
			}
			i++
		}
	})
}

// BenchmarkStorageCommitSharded measures per-partition commit
// independence: interleaved commits across 8 partitions, which under the
// old store-wide lock serialized on one mutex.
func BenchmarkStorageCommitSharded(b *testing.B) {
	const parts = 8
	s := storage.NewStore()
	val := storage.Int64Value(42)
	next := make([]int64, parts)
	names := make([]storage.Partition, parts)
	for p := range names {
		names[p] = storage.Partition(fmt.Sprintf("p%d", p))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := i % parts
		tx, err := s.Begin(names[p], storage.Buffered)
		if err != nil {
			b.Fatal(err)
		}
		_ = tx.Write("k", val)
		next[p]++
		if err := tx.Commit(next[p]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConsensusDecide measures end-to-end decision latency of the
// Chandra–Toueg engine on a 3-node in-memory network.
func BenchmarkConsensusDecide(b *testing.B) {
	h := transport.NewHub(3)
	defer h.Close()
	engines := make([]*consensus.Engine, 3)
	for i := range engines {
		engines[i] = consensus.New(consensus.Config{
			Endpoint:     h.Endpoint(transport.NodeID(i)),
			RoundTimeout: 100 * time.Millisecond,
		})
		engines[i].Start()
		defer engines[i].Stop()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst := uint64(i + 1)
		for _, e := range engines {
			if err := e.Propose(inst, i); err != nil {
				b.Fatal(err)
			}
		}
		// Wait for the local decision at engine 0.
		for d := range engines[0].Decisions() {
			if d.Instance == inst {
				break
			}
		}
	}
}

// BenchmarkEndToEndCommit measures full-stack commit latency on a
// 3-replica cluster: broadcast, optimistic execution, consensus
// confirmation, commit.
func BenchmarkEndToEndCommit(b *testing.B) {
	cluster, err := otpdb.NewCluster(otpdb.WithReplicas(3))
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Stop()
	cluster.MustRegisterUpdate(otpdb.Update{
		Name:  "bump",
		Class: "c",
		Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
			v, _ := ctx.Read("k")
			next := otpdb.Int64(otpdb.AsInt64(v) + 1)
			return next, ctx.Write("k", next)
		},
	})
	if err := cluster.Start(); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cluster.Exec(ctx, i%3, "bump"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndQuery measures local snapshot queries on the same
// cluster shape.
func BenchmarkEndToEndQuery(b *testing.B) {
	cluster, err := otpdb.NewCluster(otpdb.WithReplicas(3))
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Stop()
	cluster.MustRegisterUpdate(otpdb.Update{
		Name:  "bump",
		Class: "c",
		Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
			v, _ := ctx.Read("k")
			next := otpdb.Int64(otpdb.AsInt64(v) + 1)
			return next, ctx.Write("k", next)
		},
	})
	cluster.MustRegisterQuery(otpdb.Query{
		Name: "read",
		Fn: func(ctx otpdb.QueryCtx) (otpdb.Value, error) {
			v, _ := ctx.Read("c", "k")
			return v, nil
		},
	})
	if err := cluster.Start(); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if err := cluster.Exec(ctx, 0, "bump"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.QueryAt(ctx, i%3, "read"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverlapLatency regenerates one E3 cell per ordering mode and
// reports the measured commit latency (model: OTP ~= max(E,D),
// conservative ~= E+D with E = D = 2ms).
func BenchmarkOverlapLatency(b *testing.B) {
	experimentsOverlap := func(optimistic bool) time.Duration {
		p := experiments.OverlapParams{
			ExecTime:      2 * time.Millisecond,
			ConfirmDelays: []time.Duration{2 * time.Millisecond},
			Txns:          10,
		}
		t, err := experiments.Overlap(p)
		if err != nil {
			b.Fatal(err)
		}
		col := 1 // OTP mean column
		if !optimistic {
			col = 2
		}
		d, err := time.ParseDuration(t.Rows[0][col])
		if err != nil {
			b.Fatal(err)
		}
		return d
	}
	b.Run("otp", func(b *testing.B) {
		var last time.Duration
		for i := 0; i < b.N; i++ {
			last = experimentsOverlap(true)
		}
		b.ReportMetric(float64(last.Microseconds()), "µs/commit")
	})
	b.Run("conservative", func(b *testing.B) {
		var last time.Duration
		for i := 0; i < b.N; i++ {
			last = experimentsOverlap(false)
		}
		b.ReportMetric(float64(last.Microseconds()), "µs/commit")
	})
}
