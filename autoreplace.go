package otpdb

import (
	"context"
	"errors"
	"strconv"
	"time"

	"otpdb/internal/events"
	"otpdb/internal/fd"
	"otpdb/internal/member"
	"otpdb/internal/transport"
)

// autoReplaceTimeout bounds one replacement round end to end: the
// membership proposals through every shard group plus the state
// transfer that rebuilds the replacement.
const autoReplaceTimeout = 30 * time.Second

// autoReplaceLoop is the per-site half of WithAutoReplace: it watches the
// site's failure detector and, when a peer has been continuously
// suspected for the configured window, runs one replacement round. Every
// live site runs this loop independently — there is no elected repairer
// to be the next single point of failure — and the membership protocol's
// epoch-succession check arbitrates the resulting race (see
// tryAutoReplace).
//
// The loop exits on stop without being joined; Cluster.Stop and site
// teardown only signal it, so a round blocked inside a proposal drains
// on its own timeout.
func (c *Cluster) autoReplaceLoop(self int, det *fd.Detector, stop <-chan struct{}) {
	window := c.cfg.suspectWin
	poll := window / 8
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	// Suspicion must be *sustained*: a node that flaps (suspected,
	// refreshed, suspected again) restarts its window every time it
	// drops out of the suspected set. since records when the current
	// unbroken stretch of suspicion began.
	since := make(map[transport.NodeID]time.Time)
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		now := time.Now()
		cur := make(map[transport.NodeID]bool)
		for _, n := range det.SuspectedSet() {
			cur[n] = true
		}
		for n := range since {
			if !cur[n] {
				delete(since, n)
			}
		}
		for n := range cur {
			start, ok := since[n]
			if !ok {
				since[n] = now
				continue
			}
			if now.Sub(start) < window {
				continue
			}
			c.tryAutoReplace(self, int(n), start)
			// Back off a full further window whether we won or lost:
			// a winner's rebuild clears the suspicion via the epoch
			// change; a loser must not re-propose while the winner's
			// round is still in flight. If the round failed outright
			// (no donors yet), the victim stays suspected and the
			// next window retries — the loop is the retry.
			since[n] = now
		}
	}
}

// tryAutoReplace runs one replacement round for victim as seen from
// site self. Exactly-once across racing survivors is the membership
// protocol's epoch-succession check doing its job: every proposer
// derives WithReplace from the configuration it captured at window
// expiry, so for a given epoch exactly one proposal commits and every
// other proposer observes member.ErrEpochConflict and backs off.
//
// Group 0 is the gate: a proposer only continues to the remaining shard
// groups after winning group 0, so concurrent rounds serialize there. A
// conflict in a later group can then only be an unrelated membership
// change interleaving; the winner retries that group once against the
// live configuration (the victim still needs replacing — nobody else
// could be replacing it without having won group 0 first).
//
// Only transport-level crashes are repaired: a partitioned-but-alive
// site is suspected but keeps its seat, because replacing it would wipe
// a healthy replica to fix a network problem. This is also what keeps
// the detector's inevitable false suspicions (◇S is unreliable by
// nature) from ever destroying state.
// suspectedAt is when the winner's unbroken stretch of suspicion began;
// the winner records the round's full timeline (see Replacements), which
// separates the detection hysteresis from the repair cost.
func (c *Cluster) tryAutoReplace(self, victim int, suspectedAt time.Time) {
	detectedAt := time.Now()
	c.mu.RLock()
	ok := c.started && !c.stopped &&
		c.crashed[victim] && !c.removed[victim] &&
		!c.crashed[self] && !c.removed[self]
	var captured []member.Config
	if ok {
		captured = make([]member.Config, len(c.groups))
		for g := range c.groups {
			captured[g] = c.groups[g].trackers[self].Config()
		}
	}
	c.mu.RUnlock()
	if !ok {
		return
	}
	c.cfg.events.Record(self, events.KindReplace,
		"phase", "propose", "victim", strconv.Itoa(victim))
	ctx, cancel := context.WithTimeout(context.Background(), autoReplaceTimeout)
	defer cancel()
	for g := range captured {
		snap := captured[g]
		_, err := c.proposeChange(ctx, g, self, func(member.Config) (member.Config, error) {
			return snap.WithReplace(transport.NodeID(victim), "")
		})
		if err == nil {
			continue
		}
		if g == 0 || !errors.Is(err, member.ErrEpochConflict) {
			return
		}
		if _, rerr := c.proposeChange(ctx, g, self, func(cfg member.Config) (member.Config, error) {
			return cfg.WithReplace(transport.NodeID(victim), "")
		}); rerr != nil {
			return
		}
	}
	// Every group committed the replacement; rebuild the identity as a
	// fresh replica (wipe semantics — the dead incarnation's durable
	// state does not come with it). Re-validate under the write lock:
	// Stop, RemoveSite or an operator's ReplaceSite may have moved first.
	rec := Replacement{
		Victim:      victim,
		SuspectedAt: suspectedAt,
		DetectedAt:  detectedAt,
		CommittedAt: time.Now(),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped || !c.crashed[victim] || c.removed[victim] || c.crashed[self] {
		return
	}
	if err := c.rejoinLocked(ctx, victim, true); err == nil {
		rec.RebuiltAt = time.Now()
		c.cfg.events.Record(self, events.KindReplace,
			"phase", "rebuilt", "victim", strconv.Itoa(victim))
	} else {
		c.cfg.events.Record(self, events.KindReplace,
			"phase", "rebuild-failed", "victim", strconv.Itoa(victim), "err", err.Error())
	}
	c.replMu.Lock()
	c.repls = append(c.repls, rec)
	c.replMu.Unlock()
}
