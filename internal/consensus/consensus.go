// Package consensus implements the Chandra–Toueg ◇S consensus algorithm
// with a rotating coordinator, the agreement substrate referenced by the
// paper's atomic broadcast layer ([6] in Kemme et al., ICDCS'99).
//
// The engine runs an unbounded sequence of independent consensus instances
// (one per OPT-ABcast stage). For each instance:
//
//	round r: coordinator = r mod n
//	 phase 1: every process sends its (estimate, ts) to the coordinator
//	 phase 2: the coordinator gathers a majority and broadcasts the
//	          estimate with the highest ts as its proposal
//	 phase 3: processes adopt the proposal and ack, or — after suspecting
//	          the coordinator — nack and move to round r+1
//	 phase 4: a majority of acks lets the coordinator reliably broadcast
//	          DECIDE
//
// Safety (agreement, validity) holds under arbitrary failure-detector
// mistakes; termination needs a majority of correct processes and ◇S.
package consensus

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"otpdb/internal/fd"
	"otpdb/internal/metrics"
	"otpdb/internal/queue"
	"otpdb/internal/transport"
)

// Stream is the transport stream used by the engine.
const Stream = "cons"

// Wire messages. Values proposed through the engine must themselves be
// registered with transport.Register when running over TCP.
//
// Estimate, propose and ack messages carry the sender's membership
// epoch: quorum sizes and coordinator rotation are properties of one
// configuration, so a process only counts round traffic from processes
// in the same epoch (DESIGN.md §9). Decisions are epoch-free — a
// decision, once reached, is safe to adopt in any epoch, and the DECIDE
// relay is how laggards straddling a reconfiguration converge.
type (
	// MsgEstimate is a phase 1 message carrying a process's current
	// estimate and the round in which it was last updated.
	MsgEstimate struct {
		Inst  uint64
		Round int
		Epoch uint64
		Est   any
		TS    int
	}
	// MsgPropose is the phase 2 coordinator proposal.
	MsgPropose struct {
		Inst  uint64
		Round int
		Epoch uint64
		Val   any
	}
	// MsgAck is the phase 3 reply: OK reports adoption, !OK is a nack
	// after suspecting the coordinator.
	MsgAck struct {
		Inst  uint64
		Round int
		Epoch uint64
		OK    bool
	}
	// MsgDecide is the reliably broadcast decision.
	MsgDecide struct {
		Inst uint64
		Val  any
	}
	// MsgDecideReq asks peers to retransmit the decisions of every
	// instance >= From they know of — the catch-up primitive a restarted
	// site uses to close the gap between the instance it rejoined at and
	// the instances decided while it was down. Decisions are tombstoned
	// forever (onDecide), so any correct peer can serve the request.
	MsgDecideReq struct {
		From uint64
	}
)

// RegisterWire registers the engine's message types with the gob codec
// used by the TCP transport.
func RegisterWire() {
	transport.Register(MsgEstimate{}, MsgPropose{}, MsgAck{}, MsgDecide{}, MsgDecideReq{})
}

// Decision is an output of the engine.
type Decision struct {
	Instance uint64
	Value    any
}

// View exposes the group membership the engine runs under. Majority
// sizes and coordinator rotation derive from the member list; the epoch
// stamps and filters round traffic so two configurations never mix
// their quorums. Implementations must be safe for concurrent use and
// may change between calls (internal/member.Tracker is the standard
// implementation). The epoch and the member list are returned by one
// atomic call — every message handler takes exactly one snapshot and
// filters, counts and stamps against it, so a configuration change
// landing mid-handler cannot pair an old-epoch vote set with a
// new-epoch majority (the snapshot is either wholly old or wholly new).
type View interface {
	// Snapshot returns the configuration's epoch and its member
	// identifiers in ascending order, captured atomically. Callers must
	// treat the returned slice as immutable.
	Snapshot() (uint64, []transport.NodeID)
}

// epView is the default static view: the endpoint's full node range at
// epoch 0, preserving the fixed-group behaviour for engines built
// without membership. Only correct for groups whose size never changes
// while the engine runs; dynamic groups must supply a real View.
type epView struct {
	ep  transport.Endpoint
	mu  sync.Mutex
	ids []transport.NodeID
}

func (v *epView) Snapshot() (uint64, []transport.NodeID) {
	n := v.ep.N()
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.ids) != n {
		v.ids = make([]transport.NodeID, n)
		for i := range v.ids {
			v.ids[i] = transport.NodeID(i)
		}
	}
	return 0, v.ids
}

// majorityOf and coordOf derive quorum size and coordinator rotation
// from one view snapshot. Member identifiers need not be contiguous
// once sites have been removed.
func majorityOf(members []transport.NodeID) int { return len(members)/2 + 1 }

func coordOf(members []transport.NodeID, round int) transport.NodeID {
	return members[round%len(members)]
}

// Config parameterises an Engine.
type Config struct {
	// Endpoint is the node's transport attachment.
	Endpoint transport.Endpoint
	// Suspector drives coordinator rotation. Defaults to never-suspect
	// (rounds then advance on RoundTimeout alone).
	Suspector fd.Suspector
	// RoundTimeout bounds how long a process waits for the coordinator's
	// proposal before nacking, in addition to failure-detector suspicion.
	// Defaults to 100 ms.
	RoundTimeout time.Duration
	// TickEvery is the deadline-check granularity. Defaults to
	// RoundTimeout/4.
	TickEvery time.Duration
	// CatchUpFrom, when positive, makes the engine broadcast a decision
	// retransmission request for instances >= CatchUpFrom as soon as it
	// starts — the rejoin path of a restarted site. Decisions made at
	// peers after they serve the request arrive through the normal
	// DECIDE broadcast (the endpoint is live by then), so the two
	// channels together cover every instance >= CatchUpFrom.
	CatchUpFrom uint64
	// View supplies the (possibly dynamic) group membership. Defaults to
	// the endpoint's full static node range at epoch 0.
	View View
	// Metrics, when non-nil, registers engine telemetry (decision
	// latency, rounds per instance, decision re-requests) under the
	// scope's labels.
	Metrics *metrics.Scope
}

// Engine executes consensus instances. Create with New, then Start.
type Engine struct {
	ep        transport.Endpoint
	susp      fd.Suspector
	view      View
	timeout   time.Duration
	tickEvery time.Duration
	catchUp   uint64

	proposeCh chan proposeReq
	dumpCh    chan chan string
	decisions *queue.Q[Decision]

	instances map[uint64]*instance

	// Telemetry (inert unregistered instruments without cfg.Metrics).
	// decLatency covers locally proposed instances only: Propose to
	// DECIDE. rounds counts rounds entered before the decision landed —
	// 1 means the fast path (round 0 decided).
	decLatency *metrics.Histogram
	rounds     *metrics.Histogram
	reReqs     *metrics.Counter
	decCount   *metrics.Counter

	stop chan struct{}
	done chan struct{}

	mu      sync.Mutex
	started bool
	closed  bool
}

type proposeReq struct {
	inst uint64
	val  any
}

// instance is the per-consensus-instance state machine.
type instance struct {
	id        uint64
	round     int
	estimate  any
	ts        int
	startedAt time.Time // local Propose time (zero when never proposed here)
	started   bool      // local Propose seen
	waiting   bool      // in phase 3, waiting for the coordinator's proposal
	deadline  time.Time
	decided   bool
	decision  any
	relayed   bool
	announced bool

	// Per-round coordinator state. Any process may become coordinator of
	// some round — even of instances it never locally started — so every
	// instance tracks these.
	estimates map[int]map[transport.NodeID]MsgEstimate
	acks      map[int]map[transport.NodeID]bool
	voteEpoch map[int]uint64     // epoch whose votes a round's maps hold
	proposals map[int]MsgPropose // buffered proposals from future rounds
	sentVal   map[int]any        // values we proposed, by round
	decideFor map[int]bool       // rounds for which we already decided
}

// resetStaleVotes discards a round's accumulated estimate/ack votes when
// the configuration changed since they were collected: a quorum must be
// counted within one epoch, never mixing votes accepted under two
// different majorities. sentVal/decideFor are deliberately retained —
// the value proposed for a round stays unique across the switch, so
// fresh same-epoch votes for it are sound.
func (st *instance) resetStaleVotes(round int, epoch uint64) {
	if st.voteEpoch == nil {
		st.voteEpoch = make(map[int]uint64)
	}
	if e, ok := st.voteEpoch[round]; ok && e == epoch {
		return
	}
	st.voteEpoch[round] = epoch
	delete(st.estimates, round)
	delete(st.acks, round)
}

// New creates an engine. Call Start before proposing.
func New(cfg Config) *Engine {
	if cfg.Endpoint == nil {
		panic("consensus: Config.Endpoint is required")
	}
	if cfg.Suspector == nil {
		cfg.Suspector = fd.StaticSuspector{}
	}
	if cfg.View == nil {
		cfg.View = &epView{ep: cfg.Endpoint}
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 100 * time.Millisecond
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = cfg.RoundTimeout / 4
	}
	return &Engine{
		ep:         cfg.Endpoint,
		susp:       cfg.Suspector,
		view:       cfg.View,
		timeout:    cfg.RoundTimeout,
		tickEvery:  cfg.TickEvery,
		catchUp:    cfg.CatchUpFrom,
		proposeCh:  make(chan proposeReq),
		dumpCh:     make(chan chan string),
		decisions:  queue.New[Decision](),
		instances:  make(map[uint64]*instance),
		decLatency: cfg.Metrics.Histogram("consensus_decision_seconds"),
		rounds:     cfg.Metrics.SizeHistogram("consensus_rounds_per_instance"),
		reReqs:     cfg.Metrics.Counter("consensus_decide_rerequest_total"),
		decCount:   cfg.Metrics.Counter("consensus_decided_total"),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
}

// Decisions returns the channel of decided instances. Each instance is
// announced exactly once, in decision order at this node.
func (e *Engine) Decisions() <-chan Decision { return e.decisions.Chan() }

// Start launches the engine goroutine.
func (e *Engine) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return
	}
	e.started = true
	go e.run()
}

// Stop terminates the engine and waits for its goroutine.
func (e *Engine) Stop() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	close(e.stop)
	<-e.done
	e.decisions.Close()
}

// ErrStopped is returned by Propose on a stopped engine.
var ErrStopped = errors.New("consensus: engine stopped")

// Propose submits this node's initial value for an instance. Proposing
// twice for the same instance is a no-op; different nodes may propose
// different values (validity guarantees the decision is one of them).
func (e *Engine) Propose(inst uint64, val any) error {
	select {
	case e.proposeCh <- proposeReq{inst: inst, val: val}:
		return nil
	case <-e.stop:
		return ErrStopped
	}
}

func (e *Engine) run() {
	defer close(e.done)
	in := e.ep.Subscribe(Stream)
	if e.catchUp > 0 {
		// Subscribe first, then ask: every decision a peer makes after
		// serving the request reaches us through its normal DECIDE
		// broadcast (the transport buffers messages from subscription
		// time), so the reply and the live stream overlap with no gap.
		e.reReqs.Inc()
		_ = e.ep.Broadcast(Stream, MsgDecideReq{From: e.catchUp})
	}
	ticker := time.NewTicker(e.tickEvery)
	defer ticker.Stop()
	for {
		select {
		case req := <-e.proposeCh:
			e.handlePropose(req.inst, req.val)
		case env, ok := <-in:
			if !ok {
				return
			}
			e.handleEnvelope(env)
		case <-ticker.C:
			e.checkDeadlines()
		case reply := <-e.dumpCh:
			reply <- e.dumpLocked()
		case <-e.stop:
			return
		}
	}
}

func (e *Engine) get(inst uint64) *instance {
	st, ok := e.instances[inst]
	if !ok {
		st = &instance{
			id:        inst,
			round:     -1,
			estimates: make(map[int]map[transport.NodeID]MsgEstimate),
			acks:      make(map[int]map[transport.NodeID]bool),
			proposals: make(map[int]MsgPropose),
			sentVal:   make(map[int]any),
			decideFor: make(map[int]bool),
		}
		e.instances[inst] = st
	}
	return st
}

func (e *Engine) handlePropose(inst uint64, val any) {
	st := e.get(inst)
	if st.decided || st.started {
		return
	}
	st.started = true
	st.startedAt = time.Now()
	if st.estimate == nil {
		st.estimate = val
		st.ts = 0
	}
	e.startRound(st, 0)
}

// startRound enters round r: phase 1 (send estimate to the coordinator)
// and phase 3 setup (arm the proposal wait). The proposal timeout backs
// off exponentially with the round number so that, even when the
// configured timeout undershoots the actual message delay, some round is
// eventually long enough for the coordinator to be heard — the practical
// realization of the ◇S eventual-timeliness assumption that CT's
// termination proof needs.
func (e *Engine) startRound(st *instance, r int) {
	epoch, members := e.view.Snapshot()
	st.round = r
	st.waiting = true
	backoff := r
	if backoff > 6 {
		backoff = 6
	}
	st.deadline = time.Now().Add(e.timeout << uint(backoff))
	_ = e.ep.Send(coordOf(members, r), Stream, MsgEstimate{
		Inst:  st.id,
		Round: r,
		Epoch: epoch,
		Est:   st.estimate,
		TS:    st.ts,
	})
	// A proposal for this round may have arrived before we entered it.
	if p, ok := st.proposals[r]; ok {
		delete(st.proposals, r)
		e.adoptProposal(st, p, epoch, members)
	}
}

func (e *Engine) handleEnvelope(env transport.Envelope) {
	switch m := env.Msg.(type) {
	case MsgEstimate:
		e.onEstimate(env.From, m)
	case MsgPropose:
		e.onPropose(m)
	case MsgAck:
		e.onAck(env.From, m)
	case MsgDecide:
		e.onDecide(m)
	case MsgDecideReq:
		e.onDecideReq(env.From, m)
	}
}

// RequestDecisions broadcasts a retransmission request for the
// decisions of every instance at or above from. The ordering layer
// calls it when it detects a decision gap — typically after a healed
// partition swallowed DECIDE broadcasts. Safe from any goroutine.
func (e *Engine) RequestDecisions(from uint64) {
	e.reReqs.Inc()
	_ = e.ep.Broadcast(Stream, MsgDecideReq{From: from})
}

// onDecideReq retransmits known decisions to a catching-up peer.
func (e *Engine) onDecideReq(from transport.NodeID, m MsgDecideReq) {
	for inst, st := range e.instances {
		if st.decided && inst >= m.From {
			_ = e.ep.Send(from, Stream, MsgDecide{Inst: inst, Val: st.decision})
		}
	}
}

// onEstimate is coordinator phase 2: with a majority of estimates for a
// round we coordinate, propose the one with the highest timestamp.
// Estimates from another epoch are dropped: their sender counts toward
// that epoch's quorum, not ours. One snapshot serves the filter, the
// majority and the stamp, so a configuration change landing mid-handler
// cannot mix the two epochs.
func (e *Engine) onEstimate(from transport.NodeID, m MsgEstimate) {
	epoch, members := e.view.Snapshot()
	if m.Epoch != epoch {
		return
	}
	st := e.get(m.Inst)
	if st.decided {
		// The sender missed this instance's DECIDE broadcast (it was
		// partitioned away when the decision fired) and is still spinning
		// rounds for it. Nobody will re-run the round protocol for a
		// decided instance, so answering with the decision here is the
		// only way the sender ever converges.
		_ = e.ep.Send(from, Stream, MsgDecide{Inst: m.Inst, Val: st.decision})
		return
	}
	if coordOf(members, m.Round) != e.ep.ID() {
		return
	}
	if _, already := st.sentVal[m.Round]; already {
		return
	}
	st.resetStaleVotes(m.Round, epoch)
	byNode, ok := st.estimates[m.Round]
	if !ok {
		byNode = make(map[transport.NodeID]MsgEstimate)
		st.estimates[m.Round] = byNode
	}
	byNode[from] = m
	if len(byNode) < majorityOf(members) {
		return
	}
	best := MsgEstimate{TS: -1}
	for _, est := range byNode {
		if est.TS > best.TS {
			best = est
		}
	}
	// Remember the proposed value: phase 4 must decide exactly this
	// value, not whatever the coordinator's own estimate happens to be
	// (the coordinator may not even participate in the instance).
	st.sentVal[m.Round] = best.Est
	_ = e.ep.Broadcast(Stream, MsgPropose{Inst: m.Inst, Round: m.Round, Epoch: epoch, Val: best.Est})
}

// onPropose is participant phase 3: adopt the coordinator's proposal for
// the current round; buffer proposals from rounds we have not reached.
func (e *Engine) onPropose(m MsgPropose) {
	epoch, members := e.view.Snapshot()
	if m.Epoch != epoch {
		return
	}
	st := e.get(m.Inst)
	if st.decided {
		return
	}
	switch {
	case m.Round == st.round && st.waiting:
		e.adoptProposal(st, m, epoch, members)
	case m.Round > st.round:
		st.proposals[m.Round] = m
	}
}

//otp:fenced both callers fence: onPropose compares m.Epoch against the view snapshot before adopting or buffering, and startRound only replays proposals that passed that check
func (e *Engine) adoptProposal(st *instance, m MsgPropose, epoch uint64, members []transport.NodeID) {
	st.estimate = m.Val
	// The adoption timestamp must dominate the never-adopted initial
	// estimates (ts 0) even in round 0, otherwise a later coordinator
	// could propose a value different from one already locked by a
	// round-0 majority — the classic CT locking argument.
	st.ts = m.Round + 1
	st.waiting = false
	_ = e.ep.Send(coordOf(members, m.Round), Stream, MsgAck{Inst: st.id, Round: m.Round, Epoch: epoch, OK: true})
	// Proceed to the next round; a DECIDE will normally arrive first and
	// halt the instance.
	e.startRound(st, m.Round+1)
}

// onAck is coordinator phase 4: a majority of positive acks decides.
// Like onEstimate, the filter, the quorum count and the membership all
// come from one snapshot.
func (e *Engine) onAck(from transport.NodeID, m MsgAck) {
	epoch, members := e.view.Snapshot()
	if m.Epoch != epoch {
		return
	}
	st := e.get(m.Inst)
	if st.decided || coordOf(members, m.Round) != e.ep.ID() || st.decideFor[m.Round] {
		return
	}
	st.resetStaleVotes(m.Round, epoch)
	byNode, ok := st.acks[m.Round]
	if !ok {
		byNode = make(map[transport.NodeID]bool)
		st.acks[m.Round] = byNode
	}
	byNode[from] = m.OK
	positive := 0
	for _, ok := range byNode {
		if ok {
			positive++
		}
	}
	if positive >= majorityOf(members) {
		val, proposed := st.sentVal[m.Round]
		if !proposed {
			// Acks for a round we never proposed in: stale traffic.
			return
		}
		st.decideFor[m.Round] = true
		_ = e.ep.Broadcast(Stream, MsgDecide{Inst: m.Inst, Val: val})
	}
}

// onDecide is the reliable-broadcast delivery: decide once, relay once.
func (e *Engine) onDecide(m MsgDecide) {
	st := e.get(m.Inst)
	if !st.relayed {
		st.relayed = true
		_ = e.ep.Broadcast(Stream, MsgDecide{Inst: m.Inst, Val: m.Val})
	}
	if st.decided {
		return
	}
	st.decided = true
	st.decision = m.Val
	st.waiting = false
	e.decCount.Inc()
	if st.started {
		e.decLatency.Observe(time.Since(st.startedAt))
		e.rounds.ObserveInt(int64(st.round) + 1)
	}
	if !st.announced {
		st.announced = true
		e.decisions.Push(Decision{Instance: m.Inst, Value: m.Val})
	}
	// Release per-round state; only the decision tombstone remains.
	st.estimates = nil
	st.acks = nil
	st.voteEpoch = nil
	st.proposals = nil
	st.sentVal = nil
}

// checkDeadlines implements the "coordinator suspected" branch of phase 3:
// nack and move on when the proposal did not arrive in time or the
// failure detector suspects the coordinator.
func (e *Engine) checkDeadlines() {
	now := time.Now()
	epoch, members := e.view.Snapshot()
	for _, st := range e.instances {
		if st.decided || !st.started || !st.waiting {
			continue
		}
		if now.Before(st.deadline) && !e.susp.Suspected(coordOf(members, st.round)) {
			continue
		}
		r := st.round
		st.waiting = false
		_ = e.ep.Send(coordOf(members, r), Stream, MsgAck{Inst: st.id, Round: r, Epoch: epoch, OK: false})
		e.startRound(st, r+1)
	}
}

// String aids debugging.
func (e *Engine) String() string {
	return fmt.Sprintf("consensus.Engine(%v)", e.ep.ID())
}

// Dump returns a human-readable snapshot of all undecided instances, for
// debugging stuck protocols. It is served by the engine goroutine.
func (e *Engine) Dump() string {
	reply := make(chan string, 1)
	select {
	case e.dumpCh <- reply:
		return <-reply
	case <-e.stop:
		return "engine stopped"
	}
}

func (e *Engine) dumpLocked() string {
	out := fmt.Sprintf("%v:", e)
	undecided := 0
	for inst, st := range e.instances {
		if st.decided {
			continue
		}
		undecided++
		ests := 0
		for _, byNode := range st.estimates {
			ests += len(byNode)
		}
		out += fmt.Sprintf(" [inst=%d round=%d started=%v waiting=%v est=%d]",
			inst, st.round, st.started, st.waiting, ests)
	}
	if undecided == 0 {
		out += " all-decided"
	}
	return out
}
