package consensus

import (
	"fmt"
	"testing"
	"time"

	"otpdb/internal/fd"
	"otpdb/internal/transport"
)

// collectDecision waits for the decision of a given instance on one engine.
func collectDecision(t *testing.T, e *Engine, inst uint64, timeout time.Duration) any {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case d, ok := <-e.Decisions():
			if !ok {
				t.Fatal("decisions channel closed")
			}
			if d.Instance == inst {
				return d.Value
			}
		case <-deadline:
			t.Fatalf("engine %v: no decision for instance %d within %v", e, inst, timeout)
		}
	}
}

func startEngines(t *testing.T, h *transport.Hub, n int, susp fd.Suspector) []*Engine {
	t.Helper()
	engines := make([]*Engine, n)
	for i := 0; i < n; i++ {
		engines[i] = New(Config{
			Endpoint:     h.Endpoint(transport.NodeID(i)),
			Suspector:    susp,
			RoundTimeout: 50 * time.Millisecond,
		})
		engines[i].Start()
	}
	t.Cleanup(func() {
		for _, e := range engines {
			e.Stop()
		}
	})
	return engines
}

func TestAgreementAndValiditySameProposal(t *testing.T) {
	h := transport.NewHub(3)
	defer h.Close()
	engines := startEngines(t, h, 3, nil)
	for _, e := range engines {
		if err := e.Propose(1, "v"); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range engines {
		if got := collectDecision(t, e, 1, 5*time.Second); got != "v" {
			t.Fatalf("decided %v, want v", got)
		}
	}
}

func TestAgreementDifferentProposals(t *testing.T) {
	h := transport.NewHub(5)
	defer h.Close()
	engines := startEngines(t, h, 5, nil)
	proposed := make(map[string]bool)
	for i, e := range engines {
		v := fmt.Sprintf("val-%d", i)
		proposed[v] = true
		if err := e.Propose(7, v); err != nil {
			t.Fatal(err)
		}
	}
	first := collectDecision(t, engines[0], 7, 5*time.Second)
	s, ok := first.(string)
	if !ok || !proposed[s] {
		t.Fatalf("decision %v was never proposed (validity)", first)
	}
	for _, e := range engines[1:] {
		if got := collectDecision(t, e, 7, 5*time.Second); got != first {
			t.Fatalf("disagreement: %v vs %v", got, first)
		}
	}
}

func TestTerminationWithCrashedCoordinator(t *testing.T) {
	h := transport.NewHub(3)
	defer h.Close()
	// Node 0 coordinates round 0; crash it before anything happens.
	h.Crash(0)
	susp := fd.StaticSuspector{0: true}
	engines := make([]*Engine, 3)
	for i := 1; i < 3; i++ {
		engines[i] = New(Config{
			Endpoint:     h.Endpoint(transport.NodeID(i)),
			Suspector:    susp,
			RoundTimeout: 50 * time.Millisecond,
		})
		engines[i].Start()
		defer engines[i].Stop()
	}
	for i := 1; i < 3; i++ {
		if err := engines[i].Propose(1, i); err != nil {
			t.Fatal(err)
		}
	}
	got1 := collectDecision(t, engines[1], 1, 5*time.Second)
	got2 := collectDecision(t, engines[2], 1, 5*time.Second)
	if got1 != got2 {
		t.Fatalf("disagreement after coordinator crash: %v vs %v", got1, got2)
	}
}

func TestTerminationWithCrashedParticipantMinority(t *testing.T) {
	h := transport.NewHub(5)
	defer h.Close()
	h.Crash(3)
	h.Crash(4)
	susp := fd.StaticSuspector{3: true, 4: true}
	engines := make([]*Engine, 3)
	for i := 0; i < 3; i++ {
		engines[i] = New(Config{
			Endpoint:     h.Endpoint(transport.NodeID(i)),
			Suspector:    susp,
			RoundTimeout: 50 * time.Millisecond,
		})
		engines[i].Start()
		defer engines[i].Stop()
	}
	for _, e := range engines {
		if err := e.Propose(3, "alive"); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range engines {
		if got := collectDecision(t, e, 3, 5*time.Second); got != "alive" {
			t.Fatalf("decided %v", got)
		}
	}
}

// A node can coordinate an instance it never locally proposed (node 0
// coordinates round 0 of every instance). The decision must then be the
// value it proposed from the gathered estimates — never its own (absent)
// estimate. Regression test for a wedge where DECIDE(nil) was broadcast.
func TestDecisionWithNonParticipatingCoordinator(t *testing.T) {
	h := transport.NewHub(3)
	defer h.Close()
	engines := startEngines(t, h, 3, nil)
	// Engines 1 and 2 propose; engine 0 (round-0 coordinator) does not.
	if err := engines[1].Propose(1, "fromN1"); err != nil {
		t.Fatal(err)
	}
	if err := engines[2].Propose(1, "fromN2"); err != nil {
		t.Fatal(err)
	}
	v1 := collectDecision(t, engines[1], 1, 5*time.Second)
	v2 := collectDecision(t, engines[2], 1, 5*time.Second)
	if v1 == nil || v1 != v2 {
		t.Fatalf("decisions %v / %v; want equal non-nil proposed value", v1, v2)
	}
	if v1 != "fromN1" && v1 != "fromN2" {
		t.Fatalf("decision %v was never proposed (validity)", v1)
	}
}

func TestManyInstancesConcurrently(t *testing.T) {
	h := transport.NewHub(3)
	defer h.Close()
	engines := startEngines(t, h, 3, nil)
	const instances = 20
	for inst := uint64(0); inst < instances; inst++ {
		for i, e := range engines {
			if err := e.Propose(inst, fmt.Sprintf("i%d-n%d", inst, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Collect all decisions per engine and compare.
	decided := make([]map[uint64]any, len(engines))
	for i, e := range engines {
		decided[i] = make(map[uint64]any, instances)
		deadline := time.After(10 * time.Second)
		for len(decided[i]) < instances {
			select {
			case d := <-e.Decisions():
				decided[i][d.Instance] = d.Value
			case <-deadline:
				t.Fatalf("engine %d decided only %d/%d", i, len(decided[i]), instances)
			}
		}
	}
	for inst := uint64(0); inst < instances; inst++ {
		v := decided[0][inst]
		for i := 1; i < len(engines); i++ {
			if decided[i][inst] != v {
				t.Fatalf("instance %d: %v vs %v", inst, decided[i][inst], v)
			}
		}
	}
}

func TestDecisionAnnouncedExactlyOnce(t *testing.T) {
	h := transport.NewHub(3)
	defer h.Close()
	engines := startEngines(t, h, 3, nil)
	for _, e := range engines {
		if err := e.Propose(1, "x"); err != nil {
			t.Fatal(err)
		}
	}
	collectDecision(t, engines[0], 1, 5*time.Second)
	select {
	case d := <-engines[0].Decisions():
		t.Fatalf("duplicate decision announced: %+v", d)
	case <-time.After(200 * time.Millisecond):
	}
}

func TestProposeTwiceIsNoop(t *testing.T) {
	h := transport.NewHub(3)
	defer h.Close()
	engines := startEngines(t, h, 3, nil)
	for _, e := range engines {
		if err := e.Propose(1, "first"); err != nil {
			t.Fatal(err)
		}
	}
	if err := engines[0].Propose(1, "second"); err != nil {
		t.Fatal(err)
	}
	for _, e := range engines {
		if got := collectDecision(t, e, 1, 5*time.Second); got != "first" {
			t.Fatalf("decided %v, want first", got)
		}
	}
}

func TestStopRejectsPropose(t *testing.T) {
	h := transport.NewHub(1)
	defer h.Close()
	e := New(Config{Endpoint: h.Endpoint(0), RoundTimeout: 20 * time.Millisecond})
	e.Start()
	e.Stop()
	if err := e.Propose(1, "x"); err != ErrStopped {
		t.Fatalf("Propose after stop = %v, want ErrStopped", err)
	}
	e.Stop() // idempotent
}

func TestSingleNodeDecidesAlone(t *testing.T) {
	h := transport.NewHub(1)
	defer h.Close()
	e := New(Config{Endpoint: h.Endpoint(0), RoundTimeout: 20 * time.Millisecond})
	e.Start()
	defer e.Stop()
	if err := e.Propose(1, 99); err != nil {
		t.Fatal(err)
	}
	if got := collectDecision(t, e, 1, 5*time.Second); got != 99 {
		t.Fatalf("decided %v, want 99", got)
	}
}

// Round timeouts far below the message delay force nacks and multi-round
// instances on every decision — the regime that exposes locking bugs in
// the coordinator's estimate selection (a round-0 adoption must dominate
// initial estimates, see adoptProposal).
func TestAgreementUnderConstantRoundRotation(t *testing.T) {
	h := transport.NewHub(3, transport.WithDelay(4*time.Millisecond),
		transport.WithJitter(8*time.Millisecond), transport.WithSeed(23))
	defer h.Close()
	engines := make([]*Engine, 3)
	for i := 0; i < 3; i++ {
		engines[i] = New(Config{
			Endpoint:     h.Endpoint(transport.NodeID(i)),
			RoundTimeout: 3 * time.Millisecond, // below one network delay
		})
		engines[i].Start()
		defer engines[i].Stop()
	}
	const instances = 30
	for inst := uint64(0); inst < instances; inst++ {
		for i, e := range engines {
			if err := e.Propose(inst, fmt.Sprintf("i%d-n%d", inst, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	decided := make([]map[uint64]any, len(engines))
	for i, e := range engines {
		decided[i] = make(map[uint64]any, instances)
		deadline := time.After(30 * time.Second)
		for len(decided[i]) < instances {
			select {
			case d := <-e.Decisions():
				decided[i][d.Instance] = d.Value
			case <-deadline:
				t.Fatalf("engine %d decided only %d/%d", i, len(decided[i]), instances)
			}
		}
	}
	for inst := uint64(0); inst < instances; inst++ {
		if decided[0][inst] != decided[1][inst] || decided[1][inst] != decided[2][inst] {
			t.Fatalf("SAFETY: instance %d decided %v / %v / %v",
				inst, decided[0][inst], decided[1][inst], decided[2][inst])
		}
	}
}

func TestAgreementUnderMessageJitter(t *testing.T) {
	h := transport.NewHub(3, transport.WithJitter(3*time.Millisecond), transport.WithSeed(9))
	defer h.Close()
	engines := startEngines(t, h, 3, nil)
	const instances = 10
	for inst := uint64(0); inst < instances; inst++ {
		for i, e := range engines {
			if err := e.Propose(inst, int(inst)*10+i); err != nil {
				t.Fatal(err)
			}
		}
	}
	decided := make([]map[uint64]any, len(engines))
	for i, e := range engines {
		decided[i] = make(map[uint64]any, instances)
		deadline := time.After(15 * time.Second)
		for len(decided[i]) < instances {
			select {
			case d := <-e.Decisions():
				decided[i][d.Instance] = d.Value
			case <-deadline:
				t.Fatalf("engine %d decided only %d/%d", i, len(decided[i]), instances)
			}
		}
	}
	for inst := uint64(0); inst < instances; inst++ {
		if decided[0][inst] != decided[1][inst] || decided[1][inst] != decided[2][inst] {
			t.Fatalf("instance %d: %v %v %v",
				inst, decided[0][inst], decided[1][inst], decided[2][inst])
		}
	}
}
