package consensus

import (
	"testing"
	"time"

	"otpdb/internal/member"
	"otpdb/internal/transport"
)

// trackedEngines starts n engines sharing per-node member.Trackers
// primed with the same configuration.
func trackedEngines(t *testing.T, h *transport.Hub, cfg member.Config) ([]*Engine, []*member.Tracker) {
	t.Helper()
	n := len(cfg.Members)
	engines := make([]*Engine, n)
	trackers := make([]*member.Tracker, n)
	for i := 0; i < n; i++ {
		trackers[i] = member.NewTracker(cfg)
		engines[i] = New(Config{
			Endpoint:     h.Endpoint(transport.NodeID(i)),
			RoundTimeout: 50 * time.Millisecond,
			View:         trackers[i],
		})
		engines[i].Start()
	}
	t.Cleanup(func() {
		for _, e := range engines {
			e.Stop()
		}
	})
	return engines, trackers
}

// TestViewShrinkDecidesWithNewQuorum: after every live member applies
// the shrunk configuration, instances decide among the survivors even
// though the old configuration's quorum could never be met (two of four
// nodes are dead).
func TestViewShrinkDecidesWithNewQuorum(t *testing.T) {
	h := transport.NewHub(4)
	defer h.Close()
	cfg := member.Bootstrap(map[transport.NodeID]string{0: "", 1: "", 2: "", 3: ""})
	engines, trackers := trackedEngines(t, h, cfg)

	// Nodes 2 and 3 die; the old epoch needs 3 of 4 and cannot decide.
	h.Crash(2)
	h.Crash(3)
	next, err := cfg.WithRemove(3)
	if err != nil {
		t.Fatal(err)
	}
	next2, err := next.WithRemove(2)
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 3: members {0, 1}, quorum 2 — both survivors must apply it.
	trackers[0].Apply(next)
	trackers[0].Apply(next2)
	trackers[1].Apply(next)
	trackers[1].Apply(next2)

	for _, i := range []int{0, 1} {
		if err := engines[i].Propose(1, "v"); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []int{0, 1} {
		if got := collectDecision(t, engines[i], 1, 10*time.Second); got != "v" {
			t.Fatalf("engine %d decided %v, want v", i, got)
		}
	}
}

// TestViewEpochFilterDropsCrossEpochQuorum: a process still in the old
// epoch contributes nothing to a new-epoch quorum. With only one member
// advanced to the new epoch of a two-member group, no decision can form;
// once the laggard catches up, the instance completes.
func TestViewEpochFilterDropsCrossEpochQuorum(t *testing.T) {
	h := transport.NewHub(3)
	defer h.Close()
	cfg := member.Bootstrap(map[transport.NodeID]string{0: "", 1: "", 2: ""})
	engines, trackers := trackedEngines(t, h, cfg)

	next, err := cfg.WithRemove(2)
	if err != nil {
		t.Fatal(err)
	}
	h.Crash(2)
	trackers[0].Apply(next) // node 1 lags in epoch 1

	if err := engines[0].Propose(1, "v"); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-engines[0].Decisions():
		t.Fatalf("decision %v formed across epochs", d)
	case <-time.After(400 * time.Millisecond):
	}

	trackers[1].Apply(next)
	if err := engines[1].Propose(1, "v"); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1} {
		if got := collectDecision(t, engines[i], 1, 10*time.Second); got != "v" {
			t.Fatalf("engine %d decided %v, want v", i, got)
		}
	}
}

// TestViewNonContiguousMembers: coordinator rotation works over member
// identifier sets with holes (site 1 removed from {0,1,2}).
func TestViewNonContiguousMembers(t *testing.T) {
	h := transport.NewHub(3)
	defer h.Close()
	cfg := member.Bootstrap(map[transport.NodeID]string{0: "", 1: "", 2: ""})
	engines, trackers := trackedEngines(t, h, cfg)

	next, err := cfg.WithRemove(1)
	if err != nil {
		t.Fatal(err)
	}
	h.Crash(1)
	trackers[0].Apply(next)
	trackers[2].Apply(next)

	for _, i := range []int{0, 2} {
		if err := engines[i].Propose(5, "w"); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []int{0, 2} {
		if got := collectDecision(t, engines[i], 5, 10*time.Second); got != "w" {
			t.Fatalf("engine %d decided %v, want w", i, got)
		}
	}
}
