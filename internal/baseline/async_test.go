package baseline

import (
	"testing"
	"time"

	"otpdb/internal/sproc"
	"otpdb/internal/storage"
	"otpdb/internal/testutil"
	"otpdb/internal/transport"
)

func incrReg(t *testing.T) *sproc.Registry {
	t.Helper()
	reg := sproc.NewRegistry()
	if err := reg.RegisterUpdate(sproc.Update{
		Name:  "incr",
		Class: "c",
		Fn: func(ctx sproc.UpdateCtx) (storage.Value, error) {
			v, _ := ctx.Read("n")
			next := storage.Int64Value(storage.ValueInt64(v) + 1)
			return next, ctx.Write("n", next)
		},
	}); err != nil {
		t.Fatal(err)
	}
	return reg
}

func startAsyncPair(t *testing.T, delay time.Duration) (*transport.Hub, []*AsyncReplica) {
	t.Helper()
	var opts []transport.MemOption
	if delay > 0 {
		opts = append(opts, transport.WithDelay(delay))
	}
	hub := transport.NewHub(2, opts...)
	reg := incrReg(t)
	reps := make([]*AsyncReplica, 2)
	for i := range reps {
		reps[i] = NewAsync(hub.Endpoint(transport.NodeID(i)), reg, nil)
		reps[i].Start()
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
		hub.Close()
	})
	return hub, reps
}

func waitApplies(t *testing.T, rep *AsyncReplica, want uint64) {
	t.Helper()
	testutil.EventuallyOr(t, 10*time.Second, "remote applies", func() bool {
		return rep.Stats().RemoteApplies >= want
	}, func() {
		t.Logf("applies = %d, want %d", rep.Stats().RemoteApplies, want)
	})
}

func TestAsyncLocalCommitThenPropagation(t *testing.T) {
	_, reps := startAsyncPair(t, 0)
	if err := reps[0].Exec("incr"); err != nil {
		t.Fatal(err)
	}
	// Local commit visible immediately.
	v, ok := reps[0].Get("c", "n")
	if !ok || storage.ValueInt64(v) != 1 {
		t.Fatalf("local read = %d,%v", storage.ValueInt64(v), ok)
	}
	waitApplies(t, reps[1], 1)
	v, _ = reps[1].Get("c", "n")
	if storage.ValueInt64(v) != 1 {
		t.Fatalf("remote value = %d", storage.ValueInt64(v))
	}
	if reps[0].Stats().LocalCommits != 1 {
		t.Fatalf("stats = %+v", reps[0].Stats())
	}
}

func TestAsyncConcurrentConflictingUpdatesLose(t *testing.T) {
	// With a propagation delay, both sites increment from the same base
	// and the blind write-set apply loses one of the increments — the
	// anomaly the paper's architecture avoids.
	_, reps := startAsyncPair(t, 5*time.Millisecond)
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) { done <- reps[i].Exec("incr") }(i)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	waitApplies(t, reps[0], 1)
	waitApplies(t, reps[1], 1)
	v0, _ := reps[0].Get("c", "n")
	v1, _ := reps[1].Get("c", "n")
	// Both committed one increment locally, then overwrote each other:
	// the final value is 1 at both sites (or they diverge), never 2.
	if storage.ValueInt64(v0) == 2 && storage.ValueInt64(v1) == 2 {
		t.Fatal("async replication unexpectedly preserved both conflicting increments")
	}
}

func TestAsyncUnknownProcErrors(t *testing.T) {
	_, reps := startAsyncPair(t, 0)
	if err := reps[0].Exec("nope"); err == nil {
		t.Fatal("unknown proc accepted")
	}
}

func TestAsyncStopRejectsExec(t *testing.T) {
	_, reps := startAsyncPair(t, 0)
	reps[0].Stop()
	if err := reps[0].Exec("incr"); err != ErrStopped {
		t.Fatalf("err = %v", err)
	}
	reps[0].Stop() // idempotent
}
