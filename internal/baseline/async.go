// Package baseline implements the replication strategies the paper
// compares against:
//
//   - Conservative atomic-broadcast processing (execute only after the
//     definitive order is known) is obtained by running the regular
//     replica (internal/db) over the abcast.Sequencer engine, which emits
//     Opt and TO together. No extra code is needed here.
//   - AsyncReplica is the commercial-style asynchronous replication of
//     Section 1 ([20]): update transactions commit locally first and the
//     write sets propagate to other sites afterwards, with no total
//     order. It is fast — commit latency is purely local — but
//     concurrent conflicting updates are silently lost and replicas can
//     diverge, which is precisely the trade-off the paper's architecture
//     avoids.
package baseline

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"otpdb/internal/sproc"
	"otpdb/internal/storage"
	"otpdb/internal/transport"
)

// StreamAsync carries write-set propagation messages.
const StreamAsync = "async.update"

// WriteSet is the propagated effect of a locally committed transaction.
type WriteSet struct {
	Partition storage.Partition
	Keys      []storage.Key
	Values    []storage.Value
}

// RegisterWire registers the baseline's message types with the gob codec.
func RegisterWire() { transport.Register(WriteSet{}) }

// AsyncStats counts replica events.
type AsyncStats struct {
	// LocalCommits counts transactions committed by local clients.
	LocalCommits uint64
	// RemoteApplies counts write sets applied from other sites.
	RemoteApplies uint64
}

// AsyncReplica is one site of a multi-master asynchronously replicated
// database. Updates commit locally and propagate in the background
// ("update coordination is done after transaction commit", Section 1).
type AsyncReplica struct {
	id    transport.NodeID
	ep    transport.Endpoint
	reg   *sproc.Registry
	store *storage.Store

	mu      sync.Mutex
	nextIdx map[storage.Partition]int64
	stats   AsyncStats
	stopped bool

	stop chan struct{}
	done chan struct{}
}

// ErrStopped is returned after Stop.
var ErrStopped = errors.New("baseline: replica stopped")

// NewAsync creates an asynchronous replica bound to ep.
func NewAsync(ep transport.Endpoint, reg *sproc.Registry, store *storage.Store) *AsyncReplica {
	if store == nil {
		store = storage.NewStore()
	}
	return &AsyncReplica{
		id:      ep.ID(),
		ep:      ep,
		reg:     reg,
		store:   store,
		nextIdx: make(map[storage.Partition]int64),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Start launches the apply loop for remote write sets.
func (r *AsyncReplica) Start() {
	go r.run()
}

// Stop halts the apply loop.
func (r *AsyncReplica) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		<-r.done
		return
	}
	r.stopped = true
	r.mu.Unlock()
	close(r.stop)
	<-r.done
}

// Store returns the local storage engine.
func (r *AsyncReplica) Store() *storage.Store { return r.store }

// Stats returns a snapshot of the counters.
func (r *AsyncReplica) Stats() AsyncStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Exec runs an update procedure locally, commits it, and propagates the
// write set asynchronously. It returns once the local commit is durable —
// the low-latency behaviour the paper's Section 1 credits asynchronous
// schemes with.
func (r *AsyncReplica) Exec(proc string, args ...storage.Value) error {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return ErrStopped
	}
	r.mu.Unlock()
	up, err := r.reg.Update(proc)
	if err != nil {
		return err
	}
	part := storage.Partition(up.Class)

	// Local execution. A remote apply may hold the partition briefly;
	// park on its release channel instead of spinning.
	stx, err := r.store.BeginWait(part, storage.Buffered, nil)
	if err != nil {
		return err
	}
	if up.Cost > 0 {
		time.Sleep(up.Cost)
	}
	uc := &asyncCtx{stx: stx, args: args}
	if _, perr := up.Fn(uc); perr != nil {
		_ = stx.Abort()
		return perr
	}
	// Collect the write set before committing (Commit consumes the txn).
	keys := stx.WriteSet()
	ws := WriteSet{Partition: part, Keys: make([]storage.Key, 0, len(keys)), Values: make([]storage.Value, 0, len(keys))}
	seen := make(map[storage.Key]bool, len(keys))
	for i := len(keys) - 1; i >= 0; i-- {
		k := keys[i]
		if seen[k] {
			continue
		}
		seen[k] = true
		v, _ := stx.Read(k)
		ws.Keys = append(ws.Keys, k)
		ws.Values = append(ws.Values, v)
	}
	r.mu.Lock()
	r.nextIdx[part]++
	idx := r.nextIdx[part]
	r.stats.LocalCommits++
	r.mu.Unlock()
	if err := stx.Commit(idx); err != nil {
		return fmt.Errorf("baseline: local commit: %w", err)
	}
	// Fire-and-forget propagation — the defining property (and flaw) of
	// asynchronous replication.
	for i := 0; i < r.ep.N(); i++ {
		if transport.NodeID(i) == r.id {
			continue
		}
		_ = r.ep.Send(transport.NodeID(i), StreamAsync, ws)
	}
	return nil
}

// Get reads the latest locally committed value.
func (r *AsyncReplica) Get(class sproc.ClassID, key storage.Key) (storage.Value, bool) {
	return r.store.Get(storage.Partition(class), key)
}

func (r *AsyncReplica) run() {
	defer close(r.done)
	in := r.ep.Subscribe(StreamAsync)
	for {
		select {
		case env, ok := <-in:
			if !ok {
				return
			}
			if ws, ok := env.Msg.(WriteSet); ok {
				r.apply(ws)
			}
		case <-r.stop:
			return
		}
	}
}

// apply installs a remote write set blindly (last writer wins by arrival
// order) — concurrent conflicting local updates are overwritten, which is
// how asynchronous replication loses updates.
func (r *AsyncReplica) apply(ws WriteSet) {
	stx, err := r.store.BeginWait(ws.Partition, storage.Buffered, nil)
	if err != nil {
		return
	}
	for i, k := range ws.Keys {
		_ = stx.Write(k, ws.Values[i])
	}
	r.mu.Lock()
	r.nextIdx[ws.Partition]++
	idx := r.nextIdx[ws.Partition]
	r.stats.RemoteApplies++
	r.mu.Unlock()
	_ = stx.Commit(idx)
}

// asyncCtx implements sproc.UpdateCtx directly over a storage txn.
type asyncCtx struct {
	stx  *storage.Txn
	args []storage.Value
}

var _ sproc.UpdateCtx = (*asyncCtx)(nil)

func (c *asyncCtx) Args() []storage.Value { return c.args }

func (c *asyncCtx) Read(key storage.Key) (storage.Value, bool) { return c.stx.Read(key) }

func (c *asyncCtx) Write(key storage.Key, v storage.Value) error { return c.stx.Write(key, v) }
