package storage

import (
	"errors"
	"testing"
)

func TestMultiTxnSpansPartitionsAtomically(t *testing.T) {
	s := NewStore()
	mt, err := s.BeginMulti([]Partition{"a", "b"}, Buffered)
	if err != nil {
		t.Fatal(err)
	}
	if err := mt.Write("a", "k", Int64Value(1)); err != nil {
		t.Fatal(err)
	}
	if err := mt.Write("b", "k", Int64Value(2)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("a", "k"); ok {
		t.Fatal("uncommitted multi write visible")
	}
	if err := mt.Commit(1); err != nil {
		t.Fatal(err)
	}
	va, _ := s.Get("a", "k")
	vb, _ := s.Get("b", "k")
	if ValueInt64(va) != 1 || ValueInt64(vb) != 2 {
		t.Fatalf("a=%d b=%d", ValueInt64(va), ValueInt64(vb))
	}
	if s.LastCommitted("a") != 1 || s.LastCommitted("b") != 1 {
		t.Fatal("commit indexes not recorded per partition")
	}
}

func TestMultiTxnAbortRollsBackAll(t *testing.T) {
	s := NewStore()
	s.Load("a", "k", Int64Value(10))
	mt, err := s.BeginMulti([]Partition{"a", "b"}, InPlaceUndo)
	if err != nil {
		t.Fatal(err)
	}
	_ = mt.Write("a", "k", Int64Value(99))
	_ = mt.Write("b", "k", Int64Value(99))
	if err := mt.Abort(); err != nil {
		t.Fatal(err)
	}
	va, _ := s.Get("a", "k")
	if ValueInt64(va) != 10 {
		t.Fatalf("a/k = %d after abort", ValueInt64(va))
	}
	if _, ok := s.Get("b", "k"); ok {
		t.Fatal("b/k exists after abort")
	}
	// Partitions released.
	if _, err := s.Begin("a", Buffered); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Begin("b", Buffered); err != nil {
		t.Fatal(err)
	}
}

func TestMultiTxnForeignPartitionRejected(t *testing.T) {
	s := NewStore()
	mt, err := s.BeginMulti([]Partition{"a"}, Buffered)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mt.Abort() }()
	if err := mt.Write("z", "k", nil); err == nil {
		t.Fatal("write to undeclared partition accepted")
	}
	if _, ok := mt.Read("z", "k"); ok {
		t.Fatal("read from undeclared partition returned data")
	}
}

func TestMultiTxnBusyPartitionReleasesAcquired(t *testing.T) {
	s := NewStore()
	holder, err := s.Begin("b", Buffered)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.BeginMulti([]Partition{"a", "b"}, Buffered); !errors.Is(err, ErrPartitionBusy) {
		t.Fatalf("err = %v, want ErrPartitionBusy", err)
	}
	// Partition "a" must have been released by the failed BeginMulti.
	if _, err := s.Begin("a", Buffered); err != nil {
		t.Fatalf("partition a leaked: %v", err)
	}
	_ = holder.Abort()
}

func TestMultiTxnDedupesAndSortsPartitions(t *testing.T) {
	s := NewStore()
	mt, err := s.BeginMulti([]Partition{"b", "a", "b"}, Buffered)
	if err != nil {
		t.Fatal(err)
	}
	_ = mt.Write("a", "x", nil)
	_ = mt.Write("b", "y", nil)
	ws := mt.WriteSet()
	if len(ws) != 2 || ws[0].Partition != "a" || ws[1].Partition != "b" {
		t.Fatalf("write set = %v", ws)
	}
	if err := mt.Commit(1); err != nil {
		t.Fatal(err)
	}
}

func TestMultiTxnDoneSemantics(t *testing.T) {
	s := NewStore()
	mt, _ := s.BeginMulti([]Partition{"a"}, Buffered)
	if err := mt.Commit(1); err != nil {
		t.Fatal(err)
	}
	if err := mt.Commit(2); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double commit err = %v", err)
	}
	if err := mt.Abort(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("abort after commit err = %v", err)
	}
	if _, err := s.BeginMulti(nil, Buffered); err == nil {
		t.Fatal("empty partition set accepted")
	}
}

func TestMultiTxnReadSetQualified(t *testing.T) {
	s := NewStore()
	s.Load("a", "k", Int64Value(5))
	mt, _ := s.BeginMulti([]Partition{"a", "b"}, Buffered)
	defer func() { _ = mt.Abort() }()
	if v, ok := mt.Read("a", "k"); !ok || ValueInt64(v) != 5 {
		t.Fatalf("read = %d,%v", ValueInt64(v), ok)
	}
	rs := mt.ReadSet()
	if len(rs) != 1 || rs[0] != (ClassKey{Partition: "a", Key: "k"}) {
		t.Fatalf("read set = %v", rs)
	}
}
