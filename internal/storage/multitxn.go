package storage

import (
	"fmt"
	"sort"
)

// MultiTxn is an update transaction spanning several partitions — the
// storage side of the multi-class transactions of the companion report
// [13]. It composes one single-partition Txn per partition; the OTP
// scheduler guarantees the transaction heads every class queue before it
// runs, so partition acquisition cannot deadlock (and failure to acquire
// is a scheduler bug, reported as ErrPartitionBusy).
//
// Partitions are kept in a small sorted slice with linear lookup:
// transactions declare at most a handful of classes, and the slice saves
// a map allocation per attempt on the commit hot path.
type MultiTxn struct {
	order []Partition
	txs   []*Txn // parallel to order
	done  bool
}

// ClassKey qualifies a key with its partition, for read/write-set
// reporting across partitions.
type ClassKey struct {
	Partition Partition
	Key       Key
}

// dedupSortParts returns the sorted, deduplicated partition set.
func dedupSortParts(parts []Partition) ([]Partition, error) {
	uniq := make([]Partition, 0, len(parts))
	for _, p := range parts {
		dup := false
		for _, u := range uniq {
			if u == p {
				dup = true
				break
			}
		}
		if !dup {
			uniq = append(uniq, p)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("storage: BeginMulti needs at least one partition")
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
	return uniq, nil
}

// BeginMulti starts a transaction over the given set of partitions
// (deduplicated; acquisition in sorted order). On any failure the already
// acquired partitions are released.
func (s *Store) BeginMulti(parts []Partition, mode Mode) (*MultiTxn, error) {
	uniq, err := dedupSortParts(parts)
	if err != nil {
		return nil, err
	}
	mt := &MultiTxn{order: uniq, txs: make([]*Txn, 0, len(uniq))}
	for _, p := range uniq {
		tx, err := s.Begin(p, mode)
		if err != nil {
			_ = mt.Abort()
			return nil, err
		}
		mt.txs = append(mt.txs, tx)
	}
	return mt, nil
}

// BeginMultiWait is BeginMulti that blocks until every partition is free
// instead of returning ErrPartitionBusy. Acquisition is all-or-nothing:
// on a busy partition the already acquired ones are released and the
// caller parks on the busy partition's release channel — no polling.
// cancel, when non-nil, aborts the wait with ErrCanceled.
func (s *Store) BeginMultiWait(parts []Partition, mode Mode, cancel <-chan struct{}) (*MultiTxn, error) {
	if mode != Buffered && mode != InPlaceUndo {
		return nil, fmt.Errorf("storage: invalid mode %d", mode)
	}
	uniq, err := dedupSortParts(parts)
	if err != nil {
		return nil, err
	}
	for {
		mt := &MultiTxn{order: uniq, txs: make([]*Txn, 0, len(uniq))}
		var busy Partition
		for _, p := range uniq {
			tx, err := s.Begin(p, mode)
			if err != nil {
				busy = p
				break
			}
			mt.txs = append(mt.txs, tx)
		}
		if len(mt.txs) == len(uniq) {
			return mt, nil
		}
		// Release what we hold (all-or-nothing avoids deadlock against a
		// racing abort that still owns a later partition), then wait for
		// the busy partition to free up.
		mt.order = mt.order[:len(mt.txs)]
		_ = mt.Abort()
		pt := s.part(busy)
		pt.mu.Lock()
		if pt.active == nil {
			// Freed between the failed Begin and here; retry immediately.
			pt.mu.Unlock()
			continue
		}
		ch := pt.waitChLocked()
		pt.mu.Unlock()
		select {
		case <-ch:
		case <-cancel:
			pt.mu.Lock()
			pt.waiters--
			pt.mu.Unlock()
			return nil, ErrCanceled
		}
		pt.mu.Lock()
		pt.waiters--
		pt.mu.Unlock()
	}
}

// lookup returns the partition's txn or nil.
func (t *MultiTxn) lookup(p Partition) *Txn {
	for i, q := range t.order {
		if q == p {
			return t.txs[i]
		}
	}
	return nil
}

// Read returns the value of a key in one of the transaction's partitions.
// The returned Value must not be modified.
func (t *MultiTxn) Read(p Partition, k Key) (Value, bool) {
	tx := t.lookup(p)
	if tx == nil {
		return nil, false
	}
	return tx.Read(k)
}

// Write sets a key in one of the transaction's partitions.
func (t *MultiTxn) Write(p Partition, k Key, v Value) error {
	tx := t.lookup(p)
	if tx == nil {
		return fmt.Errorf("storage: partition %s not part of this transaction", p)
	}
	return tx.Write(k, v)
}

// ReadSet returns the qualified keys read so far, in partition order.
func (t *MultiTxn) ReadSet() []ClassKey {
	var out []ClassKey
	for i, p := range t.order {
		for _, k := range t.txs[i].readSet {
			out = append(out, ClassKey{Partition: p, Key: k})
		}
	}
	return out
}

// WriteSet returns the qualified keys written so far, in partition order.
func (t *MultiTxn) WriteSet() []ClassKey {
	var out []ClassKey
	for i, p := range t.order {
		for _, k := range t.txs[i].writeSet {
			out = append(out, ClassKey{Partition: p, Key: k})
		}
	}
	return out
}

// PendingWrites captures the qualified writes as they will commit (last
// write wins per key), in partition order — the payload of one
// write-ahead log record. Call before Commit; the returned values alias
// the transaction's buffers, which are immutable from here to commit.
func (t *MultiTxn) PendingWrites() []ClassKeyValue {
	var out []ClassKeyValue
	for _, tx := range t.txs {
		out = tx.pendingWrites(out)
	}
	return out
}

// Abort rolls back every partition's transaction. Safe on partially
// constructed transactions.
func (t *MultiTxn) Abort() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	var first error
	for _, tx := range t.txs {
		if err := tx.Abort(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Commit installs the writes of every partition with the same definitive
// index. Conflicting transactions commit in definitive order in every
// class they share, so per-partition indexes remain ascending.
func (t *MultiTxn) Commit(toIndex int64) error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	for i, tx := range t.txs {
		if err := tx.Commit(toIndex); err != nil {
			return fmt.Errorf("storage: multi commit, partition %s: %w", t.order[i], err)
		}
	}
	return nil
}
