package storage

import (
	"fmt"
	"sort"
)

// MultiTxn is an update transaction spanning several partitions — the
// storage side of the multi-class transactions of the companion report
// [13]. It composes one single-partition Txn per partition; the OTP
// scheduler guarantees the transaction heads every class queue before it
// runs, so partition acquisition cannot deadlock (and failure to acquire
// is a scheduler bug, reported as ErrPartitionBusy).
type MultiTxn struct {
	parts map[Partition]*Txn
	order []Partition
	done  bool
}

// ClassKey qualifies a key with its partition, for read/write-set
// reporting across partitions.
type ClassKey struct {
	Partition Partition
	Key       Key
}

// BeginMulti starts a transaction over the given set of partitions
// (deduplicated; acquisition in sorted order). On any failure the already
// acquired partitions are released.
func (s *Store) BeginMulti(parts []Partition, mode Mode) (*MultiTxn, error) {
	uniq := make([]Partition, 0, len(parts))
	seen := make(map[Partition]bool, len(parts))
	for _, p := range parts {
		if !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("storage: BeginMulti needs at least one partition")
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
	mt := &MultiTxn{parts: make(map[Partition]*Txn, len(uniq)), order: uniq}
	for _, p := range uniq {
		tx, err := s.Begin(p, mode)
		if err != nil {
			_ = mt.Abort()
			return nil, err
		}
		mt.parts[p] = tx
	}
	return mt, nil
}

// Read returns the value of a key in one of the transaction's partitions.
func (t *MultiTxn) Read(p Partition, k Key) (Value, bool) {
	tx, ok := t.parts[p]
	if !ok {
		return nil, false
	}
	return tx.Read(k)
}

// Write sets a key in one of the transaction's partitions.
func (t *MultiTxn) Write(p Partition, k Key, v Value) error {
	tx, ok := t.parts[p]
	if !ok {
		return fmt.Errorf("storage: partition %s not part of this transaction", p)
	}
	return tx.Write(k, v)
}

// ReadSet returns the qualified keys read so far, in partition order.
func (t *MultiTxn) ReadSet() []ClassKey {
	var out []ClassKey
	for _, p := range t.order {
		for _, k := range t.parts[p].ReadSet() {
			out = append(out, ClassKey{Partition: p, Key: k})
		}
	}
	return out
}

// WriteSet returns the qualified keys written so far, in partition order.
func (t *MultiTxn) WriteSet() []ClassKey {
	var out []ClassKey
	for _, p := range t.order {
		for _, k := range t.parts[p].WriteSet() {
			out = append(out, ClassKey{Partition: p, Key: k})
		}
	}
	return out
}

// Abort rolls back every partition's transaction. Safe on partially
// constructed transactions.
func (t *MultiTxn) Abort() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	var first error
	for _, p := range t.order {
		if tx, ok := t.parts[p]; ok {
			if err := tx.Abort(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Commit installs the writes of every partition with the same definitive
// index. Conflicting transactions commit in definitive order in every
// class they share, so per-partition indexes remain ascending.
func (t *MultiTxn) Commit(toIndex int64) error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	for _, p := range t.order {
		if err := t.parts[p].Commit(toIndex); err != nil {
			return fmt.Errorf("storage: multi commit, partition %s: %w", p, err)
		}
	}
	return nil
}
