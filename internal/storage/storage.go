// Package storage is the replicated database's local storage engine: an
// in-memory key-value store partitioned by conflict class, with
// multi-version history for the snapshot queries of Section 5 of the
// paper and undo support for the OTP abort path.
//
// The engine supports two write strategies (the ablation DESIGN.md calls
// out):
//
//   - Buffered: transaction writes go to a private buffer and are applied
//     at commit. Aborting discards the buffer. This is the default; it
//     matches the paper's execution model exactly because a transaction
//     never sees another's uncommitted data (only the head of a class
//     queue executes).
//   - InPlaceUndo: writes are applied immediately and an undo log of
//     before-images is kept; aborting restores the before-images in
//     reverse order ("traditional recovery techniques", Section 3.2).
//
// Committed versions are labelled with the transaction's definitive
// (TO-delivery) index. A query with index q reads, per partition, the
// latest version with index <= q — exactly the snapshot rule of Section 5.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Partition names a storage partition. Partitions correspond one-to-one
// to conflict classes (Section 2.3: different classes access disjoint
// parts of the database).
type Partition string

// Key identifies an object within a partition.
type Key string

// Value is an immutable byte string. The store copies values at its
// boundaries, so callers may reuse buffers.
type Value []byte

// clone copies a value; nil stays nil.
func (v Value) clone() Value {
	if v == nil {
		return nil
	}
	out := make(Value, len(v))
	copy(out, v)
	return out
}

// Int64Value encodes an int64 as a Value.
func Int64Value(n int64) Value {
	buf := make(Value, 8)
	binary.BigEndian.PutUint64(buf, uint64(n))
	return buf
}

// ValueInt64 decodes a Value written by Int64Value. Missing or short
// values decode to 0.
func ValueInt64(v Value) int64 {
	if len(v) < 8 {
		return 0
	}
	return int64(binary.BigEndian.Uint64(v))
}

// StringValue encodes a string as a Value.
func StringValue(s string) Value { return Value(s) }

// ValueString decodes a Value as a string.
func ValueString(v Value) string { return string(v) }

// Mode selects the write strategy of a transaction.
type Mode int

// Write strategies.
const (
	// Buffered applies writes at commit time from a private buffer.
	Buffered Mode = iota + 1
	// InPlaceUndo applies writes immediately, keeping undo records.
	InPlaceUndo
)

// Version is one committed version of a key.
type Version struct {
	// TOIndex is the definitive index of the transaction that wrote it.
	TOIndex int64
	// Value is the committed value.
	Value Value
}

// entry is the version chain of one key.
type entry struct {
	current  Value
	versions []Version // ascending TOIndex
}

// partition holds one conflict class's keys.
type partition struct {
	keys          map[Key]*entry
	lastCommitted int64 // TO index of the last committed transaction
	active        *Txn  // at most one writer (OTP head) at a time
}

// Store is the local storage engine. Safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	parts map[Partition]*partition
}

// Errors returned by the engine.
var (
	// ErrPartitionBusy is returned by Begin when the partition already
	// has an active transaction — the OTP scheduler must never let two
	// transactions of one class run concurrently.
	ErrPartitionBusy = errors.New("storage: partition has an active transaction")
	// ErrTxnDone is returned by operations on a committed/aborted txn.
	ErrTxnDone = errors.New("storage: transaction already finished")
)

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{parts: make(map[Partition]*partition)}
}

func (s *Store) part(p Partition) *partition {
	pt, ok := s.parts[p]
	if !ok {
		pt = &partition{keys: make(map[Key]*entry)}
		s.parts[p] = pt
	}
	return pt
}

// Load seeds initial data (version index 0), bypassing transactions. Use
// before the replica starts processing.
func (s *Store) Load(p Partition, k Key, v Value) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pt := s.part(p)
	e, ok := pt.keys[k]
	if !ok {
		e = &entry{}
		pt.keys[k] = e
	}
	e.current = v.clone()
	e.versions = []Version{{TOIndex: 0, Value: v.clone()}}
}

// Get reads the latest committed value of a key.
func (s *Store) Get(p Partition, k Key) (Value, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pt, ok := s.parts[p]
	if !ok {
		return nil, false
	}
	e, ok := pt.keys[k]
	if !ok || e.current == nil {
		return nil, false
	}
	return e.current.clone(), true
}

// SnapshotRead returns the value of the latest version of k with
// TOIndex <= maxIndex — the Section 5 snapshot rule. The boolean reports
// whether such a version exists.
func (s *Store) SnapshotRead(p Partition, k Key, maxIndex int64) (Value, bool) {
	v, _, ok := s.SnapshotReadVersion(p, k, maxIndex)
	return v, ok
}

// SnapshotReadVersion is SnapshotRead returning additionally the TO index
// of the version observed; the serializability checker uses it to verify
// that every query saw exactly the snapshot Section 5 prescribes.
func (s *Store) SnapshotReadVersion(p Partition, k Key, maxIndex int64) (Value, int64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pt, ok := s.parts[p]
	if !ok {
		return nil, 0, false
	}
	e, ok := pt.keys[k]
	if !ok {
		return nil, 0, false
	}
	vs := e.versions
	i := sort.Search(len(vs), func(i int) bool { return vs[i].TOIndex > maxIndex })
	if i == 0 {
		return nil, 0, false
	}
	return vs[i-1].Value.clone(), vs[i-1].TOIndex, true
}

// GetVersioned reads the latest committed value of a key together with
// the TO index of the transaction that wrote it. It backs the "dirty
// query" baseline used to demonstrate why Section 5 needs snapshots.
func (s *Store) GetVersioned(p Partition, k Key) (Value, int64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pt, ok := s.parts[p]
	if !ok {
		return nil, 0, false
	}
	e, ok := pt.keys[k]
	if !ok || e.current == nil {
		return nil, 0, false
	}
	idx := int64(0)
	if n := len(e.versions); n > 0 {
		idx = e.versions[n-1].TOIndex
	}
	return e.current.clone(), idx, true
}

// LastCommitted reports the TO index of the last transaction committed in
// the partition (0 if none). The query layer uses it to decide whether a
// snapshot at a given index is complete yet.
func (s *Store) LastCommitted(p Partition) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pt, ok := s.parts[p]
	if !ok {
		return 0
	}
	return pt.lastCommitted
}

// Keys lists the keys of a partition in sorted order.
func (s *Store) Keys(p Partition) []Key {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pt, ok := s.parts[p]
	if !ok {
		return nil
	}
	out := make([]Key, 0, len(pt.keys))
	for k := range pt.keys {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Partitions lists all partitions in sorted order.
func (s *Store) Partitions() []Partition {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Partition, 0, len(s.parts))
	for p := range s.parts {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Digest hashes the committed state (partition, key, current value) so
// replica convergence can be asserted cheaply.
func (s *Store) Digest() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := fnv.New64a()
	parts := make([]Partition, 0, len(s.parts))
	for p := range s.parts {
		parts = append(parts, p)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
	for _, p := range parts {
		pt := s.parts[p]
		keys := make([]Key, 0, len(pt.keys))
		for k := range pt.keys {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			_, _ = h.Write([]byte(p))
			_, _ = h.Write([]byte{0})
			_, _ = h.Write([]byte(k))
			_, _ = h.Write([]byte{0})
			_, _ = h.Write(pt.keys[k].current)
			_, _ = h.Write([]byte{0})
		}
	}
	return h.Sum64()
}

// Vacuum drops, for every key, all versions strictly older than the
// newest version with TOIndex <= horizon (which must be retained to serve
// snapshot reads at the horizon). It returns the number of versions
// removed.
func (s *Store) Vacuum(horizon int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for _, pt := range s.parts {
		for _, e := range pt.keys {
			vs := e.versions
			i := sort.Search(len(vs), func(i int) bool { return vs[i].TOIndex > horizon })
			// Keep vs[i-1:] — the last version at or before the horizon
			// plus everything newer.
			if i > 1 {
				removed += i - 1
				e.versions = append([]Version(nil), vs[i-1:]...)
			}
		}
	}
	return removed
}

// VersionCount reports the total number of stored versions (for GC tests).
func (s *Store) VersionCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, pt := range s.parts {
		for _, e := range pt.keys {
			n += len(e.versions)
		}
	}
	return n
}

// undoRecord is a before-image for InPlaceUndo transactions.
type undoRecord struct {
	key    Key
	value  Value // nil means the key did not exist
	wasSet bool
}

// Txn is a single-partition update transaction. It is not safe for
// concurrent use (one stored procedure runs in one goroutine).
type Txn struct {
	store *Store
	p     Partition
	mode  Mode
	done  bool

	buffer   map[Key]Value // Buffered mode
	undo     []undoRecord  // InPlaceUndo mode
	readSet  []Key
	writeSet []Key
}

// Begin starts an update transaction on partition p. At most one
// transaction may be active per partition; the OTP scheduler guarantees
// this, and the store enforces it.
func (s *Store) Begin(p Partition, mode Mode) (*Txn, error) {
	if mode != Buffered && mode != InPlaceUndo {
		return nil, fmt.Errorf("storage: invalid mode %d", mode)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	pt := s.part(p)
	if pt.active != nil {
		return nil, fmt.Errorf("%w: %s", ErrPartitionBusy, p)
	}
	tx := &Txn{store: s, p: p, mode: mode}
	if mode == Buffered {
		tx.buffer = make(map[Key]Value)
	}
	pt.active = tx
	return tx, nil
}

// Read returns the value of k as seen by the transaction (its own writes
// first, then the committed state).
func (t *Txn) Read(k Key) (Value, bool) {
	if t.done {
		return nil, false
	}
	t.readSet = append(t.readSet, k)
	t.store.mu.RLock()
	defer t.store.mu.RUnlock()
	if t.mode == Buffered {
		if v, ok := t.buffer[k]; ok {
			return v.clone(), v != nil
		}
	}
	e, ok := t.store.parts[t.p].keys[k]
	if !ok || e.current == nil {
		return nil, false
	}
	return e.current.clone(), true
}

// Write sets k to v within the transaction.
func (t *Txn) Write(k Key, v Value) error {
	if t.done {
		return ErrTxnDone
	}
	t.writeSet = append(t.writeSet, k)
	t.store.mu.Lock()
	defer t.store.mu.Unlock()
	if t.mode == Buffered {
		t.buffer[k] = v.clone()
		return nil
	}
	// InPlaceUndo: apply now, remember the before-image.
	pt := t.store.parts[t.p]
	e, ok := pt.keys[k]
	if !ok {
		e = &entry{}
		pt.keys[k] = e
	}
	t.undo = append(t.undo, undoRecord{key: k, value: e.current, wasSet: e.current != nil})
	e.current = v.clone()
	return nil
}

// ReadSet returns the keys read so far (duplicates preserved, in order).
func (t *Txn) ReadSet() []Key { return append([]Key(nil), t.readSet...) }

// WriteSet returns the keys written so far (duplicates preserved, in order).
func (t *Txn) WriteSet() []Key { return append([]Key(nil), t.writeSet...) }

// Partition returns the transaction's partition.
func (t *Txn) Partition() Partition { return t.p }

// Abort rolls the transaction back: buffered writes are discarded,
// in-place writes are undone from the before-images in reverse order.
func (t *Txn) Abort() error {
	if t.done {
		return ErrTxnDone
	}
	t.store.mu.Lock()
	defer t.store.mu.Unlock()
	t.done = true
	pt := t.store.parts[t.p]
	pt.active = nil
	if t.mode == Buffered {
		t.buffer = nil
		return nil
	}
	for i := len(t.undo) - 1; i >= 0; i-- {
		rec := t.undo[i]
		e := pt.keys[rec.key]
		if rec.wasSet {
			e.current = rec.value
		} else {
			e.current = nil
		}
	}
	// Remove phantom entries for keys the transaction created: they must
	// not linger (they would be visible in Keys and perturb Digest).
	for _, rec := range t.undo {
		if e, ok := pt.keys[rec.key]; ok && e.current == nil && len(e.versions) == 0 {
			delete(pt.keys, rec.key)
		}
	}
	t.undo = nil
	return nil
}

// Commit installs the transaction's writes as committed versions labelled
// with the definitive index toIndex. Conflicting transactions commit in
// TO order (Lemma 4.1), so version chains are append-only and ascending.
func (t *Txn) Commit(toIndex int64) error {
	if t.done {
		return ErrTxnDone
	}
	t.store.mu.Lock()
	defer t.store.mu.Unlock()
	t.done = true
	pt := t.store.parts[t.p]
	pt.active = nil
	if toIndex <= pt.lastCommitted {
		return fmt.Errorf("storage: commit index %d not after last committed %d in %s",
			toIndex, pt.lastCommitted, t.p)
	}
	switch t.mode {
	case Buffered:
		for k, v := range t.buffer {
			e, ok := pt.keys[k]
			if !ok {
				e = &entry{}
				pt.keys[k] = e
			}
			e.current = v
			e.versions = append(e.versions, Version{TOIndex: toIndex, Value: v.clone()})
		}
	case InPlaceUndo:
		// Current values are already in place; record versions for the
		// written keys (last write wins per key).
		seen := make(map[Key]bool, len(t.writeSet))
		for i := len(t.writeSet) - 1; i >= 0; i-- {
			k := t.writeSet[i]
			if seen[k] {
				continue
			}
			seen[k] = true
			e := pt.keys[k]
			e.versions = append(e.versions, Version{TOIndex: toIndex, Value: e.current.clone()})
		}
	}
	pt.lastCommitted = toIndex
	return nil
}
