// Package storage is the replicated database's local storage engine: an
// in-memory key-value store partitioned by conflict class, with
// multi-version history for the snapshot queries of Section 5 of the
// paper and undo support for the OTP abort path.
//
// The engine supports two write strategies (the ablation DESIGN.md §5
// calls out):
//
//   - Buffered: transaction writes go to a private buffer and are applied
//     at commit. Aborting discards the buffer. This is the default; it
//     matches the paper's execution model exactly because a transaction
//     never sees another's uncommitted data (only the head of a class
//     queue executes).
//   - InPlaceUndo: writes are applied immediately and an undo log of
//     before-images is kept; aborting restores the before-images in
//     reverse order ("traditional recovery techniques", Section 3.2).
//
// Committed versions are labelled with the transaction's definitive
// (TO-delivery) index. A query with index q reads, per partition, the
// latest version with index <= q — exactly the snapshot rule of Section 5.
//
// # Concurrency
//
// The engine is sharded by partition (= conflict class, Section 2.3:
// different classes access disjoint parts of the database), and the read
// path is lock-free:
//
//   - The partition directory is an atomic copy-on-write map (partitions
//     are created once and live forever).
//   - Each key's version chain is an immutable versionState published
//     through an atomic pointer; writers build the next state and swap
//     it in at commit.
//   - Keys live in an atomic copy-on-write native map (one plain map
//     lookup on the hot path), fronted by a small sync.Map overflow for
//     recently created keys; the overflow is merged into a fresh base
//     map geometrically, so key creation — including bulk seeding via
//     Load — stays amortized O(1) instead of O(keys) per insert.
//
// Writers — at most one update transaction per partition, enforced via
// the partition's active slot — serialize against each other and against
// Prune on the partition mutex. Readers (Get, SnapshotRead, queries)
// never take a lock, so snapshot queries cost no coordination and never
// block updates, sharpening the paper's Section 5 property.
//
// # Value immutability
//
// Values handed to the store (Load, Write) are copied at the boundary,
// so callers may reuse buffers. Values handed OUT of the store
// (Get, SnapshotRead, Txn.Read, ...) are NOT copied: they alias the
// committed version, which is immutable by contract. Callers must treat
// returned Values as read-only. This removes one allocation per read
// from the commit and query hot paths.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
)

// Partition names a storage partition. Partitions correspond one-to-one
// to conflict classes (Section 2.3: different classes access disjoint
// parts of the database).
type Partition string

// Key identifies an object within a partition.
type Key string

// Value is an immutable byte string. The store copies values at its
// boundaries on the way in (callers may reuse buffers) and returns
// aliases of committed versions on the way out (callers must not
// mutate them).
type Value []byte

// clone copies a value; nil stays nil.
func (v Value) clone() Value {
	if v == nil {
		return nil
	}
	out := make(Value, len(v))
	copy(out, v)
	return out
}

// Int64Value encodes an int64 as a Value.
func Int64Value(n int64) Value {
	buf := make(Value, 8)
	binary.BigEndian.PutUint64(buf, uint64(n))
	return buf
}

// ValueInt64 decodes a Value written by Int64Value. Missing or short
// values decode to 0.
func ValueInt64(v Value) int64 {
	if len(v) < 8 {
		return 0
	}
	return int64(binary.BigEndian.Uint64(v))
}

// StringValue encodes a string as a Value.
func StringValue(s string) Value { return Value(s) }

// ValueString decodes a Value as a string.
func ValueString(v Value) string { return string(v) }

// Mode selects the write strategy of a transaction.
type Mode int

// Write strategies.
const (
	// Buffered applies writes at commit time from a private buffer.
	Buffered Mode = iota + 1
	// InPlaceUndo applies writes immediately, keeping undo records.
	InPlaceUndo
)

// Version is one committed version of a key.
type Version struct {
	// TOIndex is the definitive index of the transaction that wrote it.
	TOIndex int64
	// Value is the committed value.
	Value Value
}

// versionState is the immutable published state of one key: the current
// value plus the version chain as parallel slices (ascending TOIndex).
// The index column is separate from the value column so the snapshot
// binary search walks a dense []int64 — 8-byte strides instead of
// 24-byte Version structs, which matters on deep chains where the search
// is cache-miss bound. Writers build the successor state and publish it
// atomically; readers load and use it without coordination. Appends may
// share the columns' backing arrays with older states — older states
// never index past their own length, so the sharing is invisible to
// them.
type versionState struct {
	current Value
	idx     []int64 // version TO indexes, ascending
	vals    []Value // parallel committed values
}

// appendVersion derives the successor state with one more version.
func (st *versionState) appendVersion(current Value, toIndex int64, v Value) *versionState {
	return &versionState{
		current: current,
		idx:     append(st.idx, toIndex),
		vals:    append(st.vals, v),
	}
}

// entry is one key's slot: an atomic pointer to its published state.
type entry struct {
	state atomic.Pointer[versionState]
}

// load returns the entry's current state (never nil for a published
// entry).
func (e *entry) load() *versionState { return e.state.Load() }

// keyMap is the COW key directory of one partition: readers use a plain
// (native, string-specialized) map lookup on the published snapshot.
type keyMap = map[Key]*entry

// partition holds one conflict class's keys. Readers are lock-free; the
// mutex serializes writers (the active update transaction, Load, Prune)
// and the Begin wait list.
//
// Key layout: `keys` is the merged base map, published whole via the
// atomic pointer. New keys first land in the `overflow` sync.Map (O(1)
// insert); once the overflow outgrows a quarter of the base it is
// merged into a fresh base in one pass, keeping key creation amortized
// O(1) while the hot read path stays a single native map lookup (the
// overflow is consulted only on a base miss while overflowN != 0).
type partition struct {
	mu            sync.Mutex
	keys          atomic.Pointer[keyMap]
	overflow      sync.Map // Key -> *entry, recently created
	overflowN     atomic.Int32
	lastCommitted atomic.Int64
	pruned        atomic.Int64 // snapshot watermark: reads below fail
	active        *Txn         // at most one writer (OTP head) at a time

	// freeCh signals Begin waiters when the active transaction releases
	// the partition. It is allocated lazily by the first waiter and
	// closed (then cleared) by the releasing transaction, so uncontended
	// commits never touch it.
	waiters int
	freeCh  chan struct{}
}

// release marks the partition free and wakes any Begin waiters. Callers
// hold pt.mu.
func (pt *partition) release() {
	pt.active = nil
	if pt.waiters > 0 && pt.freeCh != nil {
		close(pt.freeCh)
		pt.freeCh = nil
	}
}

// waitChLocked registers the caller as a Begin waiter and returns the
// channel closed at the next release. Callers hold pt.mu and must
// decrement pt.waiters after the wait resolves.
func (pt *partition) waitChLocked() chan struct{} {
	pt.waiters++
	if pt.freeCh == nil {
		pt.freeCh = make(chan struct{})
	}
	return pt.freeCh
}

// getEntry returns the key's entry, or nil. Lock-free.
func (pt *partition) getEntry(k Key) *entry {
	if e := (*pt.keys.Load())[k]; e != nil {
		return e
	}
	if pt.overflowN.Load() != 0 {
		if v, ok := pt.overflow.Load(k); ok {
			return v.(*entry)
		}
	}
	// A concurrent merge may have moved the key from the overflow into a
	// fresh base between the two lookups; re-check the base.
	if e := (*pt.keys.Load())[k]; e != nil {
		return e
	}
	return nil
}

// ensureEntry returns the key's entry, creating one if needed. New keys
// go to the overflow; the overflow is folded into a fresh base once it
// reaches a quarter of the base size (amortized O(1) per creation).
// Callers hold pt.mu.
func (pt *partition) ensureEntry(k Key) *entry {
	if e := pt.getEntry(k); e != nil {
		return e
	}
	e := &entry{}
	e.state.Store(&versionState{})
	pt.overflow.Store(k, e)
	n := int(pt.overflowN.Add(1))
	if 4*n > len(*pt.keys.Load()) {
		pt.mergeOverflowLocked()
	}
	return e
}

// mergeOverflowLocked folds the overflow into a fresh base map and
// publishes it. Callers hold pt.mu.
func (pt *partition) mergeOverflowLocked() {
	base := *pt.keys.Load()
	next := make(keyMap, len(base)+int(pt.overflowN.Load()))
	for k, v := range base {
		next[k] = v
	}
	var moved []Key
	pt.overflow.Range(func(k, v any) bool {
		next[k.(Key)] = v.(*entry)
		moved = append(moved, k.(Key))
		return true
	})
	pt.keys.Store(&next)
	for _, k := range moved {
		pt.overflow.Delete(k)
	}
	pt.overflowN.Store(0)
}

// deleteEntry removes a key. Callers hold pt.mu.
func (pt *partition) deleteEntry(k Key) {
	if _, ok := pt.overflow.Load(k); ok {
		pt.overflow.Delete(k)
		pt.overflowN.Add(-1)
	}
	old := *pt.keys.Load()
	if _, ok := old[k]; !ok {
		return
	}
	next := make(keyMap, len(old))
	for kk, vv := range old {
		if kk != k {
			next[kk] = vv
		}
	}
	pt.keys.Store(&next)
}

// forEachEntry visits every key (base + overflow, deduplicated). The
// iteration order is unspecified; callers needing a stable view hold
// pt.mu (as Digest and Prune do).
func (pt *partition) forEachEntry(fn func(Key, *entry)) {
	base := *pt.keys.Load()
	for k, e := range base {
		fn(k, e)
	}
	if pt.overflowN.Load() != 0 {
		pt.overflow.Range(func(k, v any) bool {
			if _, dup := base[k.(Key)]; !dup {
				fn(k.(Key), v.(*entry))
			}
			return true
		})
	}
}

// Store is the local storage engine. Safe for concurrent use.
type Store struct {
	mu  sync.Mutex // guards directory copy-on-write only
	dir atomic.Pointer[map[Partition]*partition]
}

// Errors returned by the engine.
var (
	// ErrPartitionBusy is returned by Begin when the partition already
	// has an active transaction — the OTP scheduler must never let two
	// transactions of one class run concurrently.
	ErrPartitionBusy = errors.New("storage: partition has an active transaction")
	// ErrTxnDone is returned by operations on a committed/aborted txn.
	ErrTxnDone = errors.New("storage: transaction already finished")
	// ErrCanceled is returned by BeginWait/BeginMultiWait when the
	// caller's cancel channel fires before the partitions free up.
	ErrCanceled = errors.New("storage: begin wait canceled")
	// ErrSnapshotPruned is returned by SnapshotReadAt for indexes below
	// the partition's prune watermark: the versions needed to answer the
	// read exactly may have been discarded, so the read fails loudly
	// instead of returning an incomplete snapshot.
	ErrSnapshotPruned = errors.New("storage: snapshot index below prune watermark")
)

// NewStore creates an empty store.
func NewStore() *Store {
	s := &Store{}
	dir := make(map[Partition]*partition)
	s.dir.Store(&dir)
	return s
}

// lookup returns the partition or nil, lock-free.
func (s *Store) lookup(p Partition) *partition {
	return (*s.dir.Load())[p]
}

// part returns the partition, creating it if needed (copy-on-write on
// the directory; creation happens once per conflict class).
func (s *Store) part(p Partition) *partition {
	if pt := s.lookup(p); pt != nil {
		return pt
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.dir.Load()
	if pt, ok := old[p]; ok {
		return pt
	}
	next := make(map[Partition]*partition, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	pt := &partition{}
	empty := make(keyMap)
	pt.keys.Store(&empty)
	next[p] = pt
	s.dir.Store(&next)
	return pt
}

// Load seeds initial data (version index 0), bypassing transactions. Use
// before the replica starts processing.
func (s *Store) Load(p Partition, k Key, v Value) {
	pt := s.part(p)
	pt.mu.Lock()
	defer pt.mu.Unlock()
	e := pt.ensureEntry(k)
	stored := v.clone()
	e.state.Store(&versionState{
		current: stored,
		idx:     []int64{0},
		vals:    []Value{stored},
	})
}

// Get reads the latest committed value of a key, lock-free. The returned
// Value aliases the committed version and must not be modified.
func (s *Store) Get(p Partition, k Key) (Value, bool) {
	pt := s.lookup(p)
	if pt == nil {
		return nil, false
	}
	e := pt.getEntry(k)
	if e == nil {
		return nil, false
	}
	st := e.load()
	if st.current == nil {
		return nil, false
	}
	return st.current, true
}

// searchVersions returns the position of the first version index
// > maxIndex in the ascending index column (manual binary search: the
// closure-free equivalent of sort.Search, which costs one indirect call
// per probe on this very hot path).
func searchVersions(idx []int64, maxIndex int64) int {
	lo, hi := 0, len(idx)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if idx[mid] <= maxIndex {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SnapshotRead returns the value of the latest version of k with
// TOIndex <= maxIndex — the Section 5 snapshot rule. The boolean reports
// whether such a version exists (reads below the prune watermark report
// false; use SnapshotReadAt to distinguish them loudly).
func (s *Store) SnapshotRead(p Partition, k Key, maxIndex int64) (Value, bool) {
	v, _, ok := s.SnapshotReadVersion(p, k, maxIndex)
	return v, ok
}

// SnapshotReadVersion is SnapshotRead returning additionally the TO index
// of the version observed; the serializability checker uses it to verify
// that every query saw exactly the snapshot Section 5 prescribes.
func (s *Store) SnapshotReadVersion(p Partition, k Key, maxIndex int64) (Value, int64, bool) {
	v, idx, ok, err := s.SnapshotReadAt(p, k, maxIndex)
	if err != nil {
		return nil, 0, false
	}
	return v, idx, ok
}

// SnapshotReadAt is the error-reporting snapshot read: it returns
// ErrSnapshotPruned when maxIndex is below the partition's prune
// watermark (the exact snapshot may have been discarded), and ok=false
// when no version at or below maxIndex exists. Lock-free.
func (s *Store) SnapshotReadAt(p Partition, k Key, maxIndex int64) (Value, int64, bool, error) {
	pt := s.lookup(p)
	if pt == nil {
		return nil, 0, false, nil
	}
	if w := pt.pruned.Load(); maxIndex < w {
		return nil, 0, false, fmt.Errorf("%w: read at %d, watermark %d in %s",
			ErrSnapshotPruned, maxIndex, w, p)
	}
	e := pt.getEntry(k)
	if e == nil {
		return nil, 0, false, nil
	}
	st := e.load()
	// Fast path: reads at or past the chain tip take the newest version
	// without searching (the common case for fresh snapshots).
	n := len(st.idx)
	if n > 0 && st.idx[n-1] <= maxIndex {
		return st.vals[n-1], st.idx[n-1], true, nil
	}
	if i := searchVersions(st.idx, maxIndex); i > 0 {
		return st.vals[i-1], st.idx[i-1], true, nil
	}
	// No version at or below maxIndex. A Prune racing this read may have
	// advanced the watermark past maxIndex after the check above and
	// dropped the versions we needed — re-check so such a read still
	// fails loudly instead of reporting the key absent.
	if w := pt.pruned.Load(); maxIndex < w {
		return nil, 0, false, fmt.Errorf("%w: read at %d, watermark %d in %s",
			ErrSnapshotPruned, maxIndex, w, p)
	}
	return nil, 0, false, nil
}

// GetVersioned reads the latest committed value of a key together with
// the TO index of the transaction that wrote it. It backs the "dirty
// query" baseline used to demonstrate why Section 5 needs snapshots.
func (s *Store) GetVersioned(p Partition, k Key) (Value, int64, bool) {
	pt := s.lookup(p)
	if pt == nil {
		return nil, 0, false
	}
	e := pt.getEntry(k)
	if e == nil {
		return nil, 0, false
	}
	st := e.load()
	if st.current == nil {
		return nil, 0, false
	}
	idx := int64(0)
	if n := len(st.idx); n > 0 {
		idx = st.idx[n-1]
	}
	return st.current, idx, true
}

// LastCommitted reports the TO index of the last transaction committed in
// the partition (0 if none). The query layer uses it to decide whether a
// snapshot at a given index is complete yet.
func (s *Store) LastCommitted(p Partition) int64 {
	pt := s.lookup(p)
	if pt == nil {
		return 0
	}
	return pt.lastCommitted.Load()
}

// PruneWatermark reports the partition's prune watermark: snapshot reads
// strictly below it fail (0 = never pruned).
func (s *Store) PruneWatermark(p Partition) int64 {
	pt := s.lookup(p)
	if pt == nil {
		return 0
	}
	return pt.pruned.Load()
}

// Keys lists the keys of a partition in sorted order.
func (s *Store) Keys(p Partition) []Key {
	pt := s.lookup(p)
	if pt == nil {
		return nil
	}
	var out []Key
	pt.forEachEntry(func(k Key, _ *entry) { out = append(out, k) })
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Partitions lists all partitions in sorted order.
func (s *Store) Partitions() []Partition {
	dir := *s.dir.Load()
	out := make([]Partition, 0, len(dir))
	for p := range dir {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Digest hashes the committed state (partition, key, current value) so
// replica convergence can be asserted cheaply. Partitions are hashed one
// at a time under their writer locks; for a stable digest, quiesce
// writers first (as the convergence checks do).
func (s *Store) Digest() uint64 {
	h := fnv.New64a()
	for _, p := range s.Partitions() {
		pt := s.lookup(p)
		pt.mu.Lock()
		var keys []Key
		entries := make(keyMap)
		pt.forEachEntry(func(k Key, e *entry) {
			keys = append(keys, k)
			entries[k] = e
		})
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			_, _ = h.Write([]byte(p))
			_, _ = h.Write([]byte{0})
			_, _ = h.Write([]byte(k))
			_, _ = h.Write([]byte{0})
			_, _ = h.Write(entries[k].load().current)
			_, _ = h.Write([]byte{0})
		}
		pt.mu.Unlock()
	}
	return h.Sum64()
}

// Prune advances the snapshot watermark to minSnapshot and drops, for
// every key, all versions strictly older than the newest version with
// TOIndex <= minSnapshot (which must be retained to serve snapshot reads
// at the watermark). The replica calls it with the oldest active query
// snapshot, so every read that can still be issued remains answerable
// exactly; reads below the watermark fail loudly (ErrSnapshotPruned).
// It returns the number of versions removed.
func (s *Store) Prune(minSnapshot int64) int {
	if minSnapshot <= 0 {
		return 0
	}
	removed := 0
	for _, p := range s.Partitions() {
		pt := s.lookup(p)
		pt.mu.Lock()
		if minSnapshot > pt.pruned.Load() {
			pt.pruned.Store(minSnapshot)
		}
		pt.forEachEntry(func(_ Key, e *entry) {
			st := e.load()
			i := searchVersions(st.idx, minSnapshot)
			// Keep suffix [i-1:] — the last version at or before the
			// horizon plus everything newer.
			if i > 1 {
				removed += i - 1
				e.state.Store(&versionState{
					current: st.current,
					idx:     append([]int64(nil), st.idx[i-1:]...),
					vals:    append([]Value(nil), st.vals[i-1:]...),
				})
			}
		})
		pt.mu.Unlock()
	}
	return removed
}

// Vacuum is the historical name of Prune, kept for compatibility.
func (s *Store) Vacuum(horizon int64) int { return s.Prune(horizon) }

// VersionCount reports the total number of stored versions (for GC tests).
func (s *Store) VersionCount() int {
	n := 0
	for _, p := range s.Partitions() {
		pt := s.lookup(p)
		pt.forEachEntry(func(_ Key, e *entry) {
			n += len(e.load().idx)
		})
	}
	return n
}

// undoRecord is a before-image for InPlaceUndo transactions.
type undoRecord struct {
	key    Key
	value  Value // nil means the key did not exist
	wasSet bool
}

// Txn is a single-partition update transaction. It is not safe for
// concurrent use (one stored procedure runs in one goroutine).
type Txn struct {
	store *Store
	pt    *partition
	p     Partition
	mode  Mode
	done  bool

	buffer   map[Key]Value // Buffered mode
	undo     []undoRecord  // InPlaceUndo mode
	readSet  []Key
	writeSet []Key
}

// newTxnLocked constructs a transaction for a free partition. Callers
// hold pt.mu and have checked pt.active == nil.
func (s *Store) newTxnLocked(pt *partition, p Partition, mode Mode) *Txn {
	tx := &Txn{store: s, pt: pt, p: p, mode: mode}
	if mode == Buffered {
		tx.buffer = make(map[Key]Value)
	}
	pt.active = tx
	return tx
}

// Begin starts an update transaction on partition p. At most one
// transaction may be active per partition; the OTP scheduler guarantees
// this, and the store enforces it.
func (s *Store) Begin(p Partition, mode Mode) (*Txn, error) {
	if mode != Buffered && mode != InPlaceUndo {
		return nil, fmt.Errorf("storage: invalid mode %d", mode)
	}
	pt := s.part(p)
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if pt.active != nil {
		return nil, fmt.Errorf("%w: %s", ErrPartitionBusy, p)
	}
	return s.newTxnLocked(pt, p, mode), nil
}

// BeginWait is Begin that blocks until the partition is free instead of
// returning ErrPartitionBusy. A release of the partition (commit or
// abort) wakes waiters through a channel — no polling. cancel, when
// non-nil, aborts the wait with ErrCanceled.
func (s *Store) BeginWait(p Partition, mode Mode, cancel <-chan struct{}) (*Txn, error) {
	if mode != Buffered && mode != InPlaceUndo {
		return nil, fmt.Errorf("storage: invalid mode %d", mode)
	}
	pt := s.part(p)
	for {
		pt.mu.Lock()
		if pt.active == nil {
			tx := s.newTxnLocked(pt, p, mode)
			pt.mu.Unlock()
			return tx, nil
		}
		ch := pt.waitChLocked()
		pt.mu.Unlock()
		select {
		case <-ch:
		case <-cancel:
			pt.mu.Lock()
			pt.waiters--
			pt.mu.Unlock()
			return nil, ErrCanceled
		}
		pt.mu.Lock()
		pt.waiters--
		pt.mu.Unlock()
	}
}

// Read returns the value of k as seen by the transaction (its own writes
// first, then the committed state). The returned Value must not be
// modified.
func (t *Txn) Read(k Key) (Value, bool) {
	if t.done {
		return nil, false
	}
	t.readSet = append(t.readSet, k)
	if t.mode == Buffered {
		// The buffer is private to the transaction's goroutine.
		if v, ok := t.buffer[k]; ok {
			return v, v != nil
		}
	}
	e := t.pt.getEntry(k)
	if e == nil {
		return nil, false
	}
	st := e.load()
	if st.current == nil {
		return nil, false
	}
	return st.current, true
}

// Write sets k to v within the transaction. v is copied; the caller may
// reuse its buffer.
func (t *Txn) Write(k Key, v Value) error {
	if t.done {
		return ErrTxnDone
	}
	t.writeSet = append(t.writeSet, k)
	if t.mode == Buffered {
		// Private buffer: no lock needed.
		t.buffer[k] = v.clone()
		return nil
	}
	// InPlaceUndo: apply now (dirty values become visible, which is the
	// point of the ablation), remember the before-image.
	t.pt.mu.Lock()
	defer t.pt.mu.Unlock()
	e := t.pt.ensureEntry(k)
	st := e.load()
	t.undo = append(t.undo, undoRecord{key: k, value: st.current, wasSet: st.current != nil})
	e.state.Store(&versionState{current: v.clone(), idx: st.idx, vals: st.vals})
	return nil
}

// ReadSet returns the keys read so far (duplicates preserved, in order).
func (t *Txn) ReadSet() []Key { return append([]Key(nil), t.readSet...) }

// WriteSet returns the keys written so far (duplicates preserved, in order).
func (t *Txn) WriteSet() []Key { return append([]Key(nil), t.writeSet...) }

// Partition returns the transaction's partition.
func (t *Txn) Partition() Partition { return t.p }

// Abort rolls the transaction back: buffered writes are discarded,
// in-place writes are undone from the before-images in reverse order.
func (t *Txn) Abort() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	pt := t.pt
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if t.mode == Buffered {
		t.buffer = nil
		pt.release()
		return nil
	}
	for i := len(t.undo) - 1; i >= 0; i-- {
		rec := t.undo[i]
		e := pt.getEntry(rec.key)
		st := e.load()
		cur := rec.value
		if !rec.wasSet {
			cur = nil
		}
		e.state.Store(&versionState{current: cur, idx: st.idx, vals: st.vals})
	}
	// Remove phantom entries for keys the transaction created: they must
	// not linger (they would be visible in Keys and perturb Digest).
	for _, rec := range t.undo {
		if e := pt.getEntry(rec.key); e != nil {
			if st := e.load(); st.current == nil && len(st.idx) == 0 {
				pt.deleteEntry(rec.key)
			}
		}
	}
	t.undo = nil
	pt.release()
	return nil
}

// Commit installs the transaction's writes as committed versions labelled
// with the definitive index toIndex. Conflicting transactions commit in
// TO order (Lemma 4.1), so version chains are append-only and ascending.
func (t *Txn) Commit(toIndex int64) error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	pt := t.pt
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if toIndex <= pt.lastCommitted.Load() {
		pt.release()
		return fmt.Errorf("storage: commit index %d not after last committed %d in %s",
			toIndex, pt.lastCommitted.Load(), t.p)
	}
	switch t.mode {
	case Buffered:
		for k, v := range t.buffer {
			e := pt.ensureEntry(k)
			// The buffered value was cloned on the way in and becomes the
			// immutable committed version: current and the version chain
			// share it.
			e.state.Store(e.load().appendVersion(v, toIndex, v))
		}
	case InPlaceUndo:
		// Current values are already in place; record versions for the
		// written keys (last write wins per key).
		seen := make(map[Key]bool, len(t.writeSet))
		for i := len(t.writeSet) - 1; i >= 0; i-- {
			k := t.writeSet[i]
			if seen[k] {
				continue
			}
			seen[k] = true
			e := pt.getEntry(k)
			st := e.load()
			e.state.Store(st.appendVersion(st.current, toIndex, st.current))
		}
	}
	// Publish the commit index last: a reader that observes it sees every
	// version state published above.
	pt.lastCommitted.Store(toIndex)
	pt.release()
	return nil
}

// ---------------------------------------------------------------------------
// Durability: checkpoints and replay application.
//
// A Checkpoint is a consistent cross-partition snapshot of the committed
// state at one definitive index: for every key, the latest version with
// TOIndex <= Index. Because versions are immutable once committed and
// conflicting transactions commit in definitive order, a checkpoint taken
// after all transactions <= Index have committed is exactly the state the
// paper's Section 5 snapshot rule would let a query observe at Index —
// the same mechanism serves recovery (serialize the checkpoint to disk)
// and live replica catch-up (stream it to a rejoining site).

// KeyVersion is one key's surviving version in a checkpoint.
type KeyVersion struct {
	// Key is the object identifier within its partition.
	Key Key
	// TOIndex is the definitive index of the version retained.
	TOIndex int64
	// Value is the committed value (nil preserved).
	Value Value
}

// PartitionCheckpoint is one partition's slice of a checkpoint.
type PartitionCheckpoint struct {
	// Partition names the conflict class.
	Partition Partition
	// LastCommitted is the partition's committed floor at the checkpoint
	// index: replayed records at or below it are already reflected in
	// Keys and must be skipped.
	LastCommitted int64
	// Keys holds, per key, the latest version with TOIndex <= the
	// checkpoint index.
	Keys []KeyVersion
}

// Checkpoint is a consistent snapshot of the whole store at Index.
type Checkpoint struct {
	// Index is the definitive commit index the snapshot is consistent at.
	Index int64
	// Partitions are the per-class slices, in sorted partition order.
	Partitions []PartitionCheckpoint
}

// ClassKeyValue is one write of a committed transaction, qualified by
// partition — the unit the write-ahead log records.
type ClassKeyValue struct {
	Partition Partition
	Key       Key
	Value     Value
}

// CheckpointAt captures a checkpoint of the committed state at maxIndex.
// The caller must ensure every transaction with definitive index <=
// maxIndex has committed (the replica waits on its per-class commit
// targets, exactly as Section 5 queries do) and that versions at maxIndex
// are pinned against pruning for the duration of the call.
func (s *Store) CheckpointAt(maxIndex int64) *Checkpoint {
	ck := &Checkpoint{Index: maxIndex}
	for _, p := range s.Partitions() {
		pt := s.lookup(p)
		pt.mu.Lock()
		pc := PartitionCheckpoint{Partition: p}
		if lc := pt.lastCommitted.Load(); lc <= maxIndex {
			pc.LastCommitted = lc
		} else {
			// Commits beyond the snapshot index may already have landed
			// (they are excluded below); the floor the checkpoint vouches
			// for is capped at its own index.
			pc.LastCommitted = maxIndex
		}
		pt.forEachEntry(func(k Key, e *entry) {
			st := e.load()
			if i := searchVersions(st.idx, maxIndex); i > 0 {
				pc.Keys = append(pc.Keys, KeyVersion{
					Key:     k,
					TOIndex: st.idx[i-1],
					Value:   st.vals[i-1],
				})
			}
		})
		pt.mu.Unlock()
		sort.Slice(pc.Keys, func(i, j int) bool { return pc.Keys[i].Key < pc.Keys[j].Key })
		ck.Partitions = append(ck.Partitions, pc)
	}
	return ck
}

// InstallCheckpoint loads a checkpoint into the store, replacing any
// overlapping keys: each key gets a single-version chain at its
// checkpointed index, the partition's committed floor is restored, and
// the prune watermark advances to the checkpoint index (state below it
// was never transferred, so snapshot reads below it fail loudly, exactly
// as after a Prune). Intended for empty or freshly seeded stores during
// recovery and rejoin.
func (s *Store) InstallCheckpoint(ck *Checkpoint) {
	for _, pc := range ck.Partitions {
		pt := s.part(pc.Partition)
		pt.mu.Lock()
		for _, kv := range pc.Keys {
			e := pt.ensureEntry(kv.Key)
			e.state.Store(&versionState{
				current: kv.Value,
				idx:     []int64{kv.TOIndex},
				vals:    []Value{kv.Value},
			})
		}
		if pc.LastCommitted > pt.lastCommitted.Load() {
			pt.lastCommitted.Store(pc.LastCommitted)
		}
		if ck.Index > pt.pruned.Load() {
			pt.pruned.Store(ck.Index)
		}
		pt.mu.Unlock()
	}
}

// InstallCommit applies one logged commit during replay: the writes of
// the transaction with definitive index toIndex, grouped by partition.
// Application is idempotent per partition — a partition whose committed
// floor already covers toIndex is skipped, so replaying a log over a
// checkpoint (or replaying twice) converges to the same state. It
// reports whether any partition applied the writes.
func (s *Store) InstallCommit(toIndex int64, writes []ClassKeyValue) bool {
	applied := false
	for i := 0; i < len(writes); {
		p := writes[i].Partition
		j := i
		for j < len(writes) && writes[j].Partition == p {
			j++
		}
		pt := s.part(p)
		pt.mu.Lock()
		if toIndex > pt.lastCommitted.Load() {
			applied = true
			for _, w := range writes[i:j] {
				e := pt.ensureEntry(w.Key)
				v := w.Value.clone()
				e.state.Store(e.load().appendVersion(v, toIndex, v))
			}
			pt.lastCommitted.Store(toIndex)
		}
		pt.mu.Unlock()
		i = j
	}
	return applied
}

// pendingWrites captures the transaction's writes as they will commit
// (last write wins per key), for write-ahead logging. Call before
// Commit; the returned values alias the transaction's buffers.
func (t *Txn) pendingWrites(out []ClassKeyValue) []ClassKeyValue {
	switch t.mode {
	case Buffered:
		for k, v := range t.buffer {
			out = append(out, ClassKeyValue{Partition: t.p, Key: k, Value: v})
		}
	case InPlaceUndo:
		// Writes are already in place; the committed value is the entry's
		// current one. Only this transaction writes the partition, so the
		// values are stable until commit.
		seen := make(map[Key]bool, len(t.writeSet))
		for i := len(t.writeSet) - 1; i >= 0; i-- {
			k := t.writeSet[i]
			if seen[k] {
				continue
			}
			seen[k] = true
			var v Value
			if e := t.pt.getEntry(k); e != nil {
				v = e.load().current
			}
			out = append(out, ClassKeyValue{Partition: t.p, Key: k, Value: v})
		}
	}
	return out
}
