package storage

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestLoadAndGet(t *testing.T) {
	s := NewStore()
	s.Load("p", "k", Int64Value(42))
	v, ok := s.Get("p", "k")
	if !ok || ValueInt64(v) != 42 {
		t.Fatalf("Get = %v,%v", v, ok)
	}
	if _, ok := s.Get("p", "missing"); ok {
		t.Fatal("missing key found")
	}
	if _, ok := s.Get("nopart", "k"); ok {
		t.Fatal("missing partition found")
	}
}

func TestBufferedCommitVisibility(t *testing.T) {
	s := NewStore()
	tx, err := s.Begin("p", Buffered)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write("k", StringValue("v1")); err != nil {
		t.Fatal(err)
	}
	// Uncommitted writes invisible outside the transaction.
	if _, ok := s.Get("p", "k"); ok {
		t.Fatal("uncommitted write visible")
	}
	// But visible to the transaction itself.
	v, ok := tx.Read("k")
	if !ok || ValueString(v) != "v1" {
		t.Fatalf("own read = %q,%v", v, ok)
	}
	if err := tx.Commit(1); err != nil {
		t.Fatal(err)
	}
	v, ok = s.Get("p", "k")
	if !ok || ValueString(v) != "v1" {
		t.Fatalf("after commit = %q,%v", v, ok)
	}
}

func TestBufferedAbortDiscards(t *testing.T) {
	s := NewStore()
	s.Load("p", "k", StringValue("orig"))
	tx, _ := s.Begin("p", Buffered)
	_ = tx.Write("k", StringValue("changed"))
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Get("p", "k")
	if ValueString(v) != "orig" {
		t.Fatalf("abort leaked write: %q", v)
	}
}

func TestInPlaceUndoAbortRestores(t *testing.T) {
	s := NewStore()
	s.Load("p", "a", StringValue("A"))
	tx, _ := s.Begin("p", InPlaceUndo)
	_ = tx.Write("a", StringValue("A'"))
	_ = tx.Write("b", StringValue("B")) // key did not exist
	_ = tx.Write("a", StringValue("A''"))
	// In-place: visible immediately (single writer per partition).
	if v, _ := s.Get("p", "a"); ValueString(v) != "A''" {
		t.Fatalf("in-place write not visible: %q", v)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("p", "a"); ValueString(v) != "A" {
		t.Fatalf("undo failed for a: %q", v)
	}
	if _, ok := s.Get("p", "b"); ok {
		t.Fatal("undo failed: b still exists")
	}
}

func TestInPlaceCommitCreatesVersions(t *testing.T) {
	s := NewStore()
	tx, _ := s.Begin("p", InPlaceUndo)
	_ = tx.Write("k", StringValue("v1"))
	if err := tx.Commit(1); err != nil {
		t.Fatal(err)
	}
	v, ok := s.SnapshotRead("p", "k", 1)
	if !ok || ValueString(v) != "v1" {
		t.Fatalf("snapshot = %q,%v", v, ok)
	}
}

func TestPartitionExclusion(t *testing.T) {
	s := NewStore()
	tx1, err := s.Begin("p", Buffered)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Begin("p", Buffered); !errors.Is(err, ErrPartitionBusy) {
		t.Fatalf("second Begin = %v, want ErrPartitionBusy", err)
	}
	// A different partition is fine.
	if _, err := s.Begin("q", Buffered); err != nil {
		t.Fatal(err)
	}
	_ = tx1.Abort()
	if _, err := s.Begin("p", Buffered); err != nil {
		t.Fatal(err)
	}
}

func TestTxnDoneErrors(t *testing.T) {
	s := NewStore()
	tx, _ := s.Begin("p", Buffered)
	_ = tx.Commit(1)
	if err := tx.Write("k", nil); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("Write after commit = %v", err)
	}
	if err := tx.Commit(2); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double commit = %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("abort after commit = %v", err)
	}
}

func TestCommitIndexMustAdvance(t *testing.T) {
	s := NewStore()
	tx, _ := s.Begin("p", Buffered)
	_ = tx.Write("k", StringValue("a"))
	if err := tx.Commit(5); err != nil {
		t.Fatal(err)
	}
	tx2, _ := s.Begin("p", Buffered)
	_ = tx2.Write("k", StringValue("b"))
	if err := tx2.Commit(5); err == nil {
		t.Fatal("non-advancing commit index accepted")
	}
}

func TestSnapshotReadPicksLatestAtOrBelow(t *testing.T) {
	s := NewStore()
	for i, val := range []string{"v1", "v3", "v7"} {
		tx, _ := s.Begin("p", Buffered)
		_ = tx.Write("k", StringValue(val))
		idx := []int64{1, 3, 7}[i]
		if err := tx.Commit(idx); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		max  int64
		want string
		ok   bool
	}{
		{0, "", false},
		{1, "v1", true},
		{2, "v1", true},
		{3, "v3", true},
		{6, "v3", true},
		{7, "v7", true},
		{100, "v7", true},
	}
	for _, tc := range cases {
		v, ok := s.SnapshotRead("p", "k", tc.max)
		if ok != tc.ok || (ok && ValueString(v) != tc.want) {
			t.Fatalf("SnapshotRead(max=%d) = %q,%v; want %q,%v", tc.max, v, ok, tc.want, tc.ok)
		}
	}
}

func TestSnapshotUnaffectedByLaterCommits(t *testing.T) {
	s := NewStore()
	tx, _ := s.Begin("p", Buffered)
	_ = tx.Write("k", Int64Value(1))
	_ = tx.Commit(1)
	before, _ := s.SnapshotRead("p", "k", 1)
	tx2, _ := s.Begin("p", Buffered)
	_ = tx2.Write("k", Int64Value(2))
	_ = tx2.Commit(2)
	after, _ := s.SnapshotRead("p", "k", 1)
	if ValueInt64(before) != 1 || ValueInt64(after) != 1 {
		t.Fatalf("snapshot drifted: before=%d after=%d", ValueInt64(before), ValueInt64(after))
	}
}

func TestLastCommittedTracksPerPartition(t *testing.T) {
	s := NewStore()
	tx, _ := s.Begin("a", Buffered)
	_ = tx.Write("k", nil)
	_ = tx.Commit(4)
	if s.LastCommitted("a") != 4 {
		t.Fatalf("LastCommitted(a) = %d", s.LastCommitted("a"))
	}
	if s.LastCommitted("b") != 0 {
		t.Fatalf("LastCommitted(b) = %d", s.LastCommitted("b"))
	}
}

func TestReadAndWriteSets(t *testing.T) {
	s := NewStore()
	tx, _ := s.Begin("p", Buffered)
	_, _ = tx.Read("r1")
	_ = tx.Write("w1", nil)
	_, _ = tx.Read("r2")
	_ = tx.Write("w1", nil)
	rs, ws := tx.ReadSet(), tx.WriteSet()
	if len(rs) != 2 || rs[0] != "r1" || rs[1] != "r2" {
		t.Fatalf("readset = %v", rs)
	}
	if len(ws) != 2 || ws[0] != "w1" || ws[1] != "w1" {
		t.Fatalf("writeset = %v", ws)
	}
	_ = tx.Abort()
}

func TestDigestDetectsDivergence(t *testing.T) {
	a, b := NewStore(), NewStore()
	a.Load("p", "k", Int64Value(1))
	b.Load("p", "k", Int64Value(1))
	if a.Digest() != b.Digest() {
		t.Fatal("identical stores digest differently")
	}
	b.Load("p", "k", Int64Value(2))
	if a.Digest() == b.Digest() {
		t.Fatal("divergent stores digest equal")
	}
}

func TestVacuumKeepsSnapshotHorizon(t *testing.T) {
	s := NewStore()
	for i := int64(1); i <= 10; i++ {
		tx, _ := s.Begin("p", Buffered)
		_ = tx.Write("k", Int64Value(i))
		_ = tx.Commit(i)
	}
	before := s.VersionCount()
	removed := s.Vacuum(5)
	if removed == 0 || s.VersionCount() != before-removed {
		t.Fatalf("vacuum removed %d, count %d (before %d)", removed, s.VersionCount(), before)
	}
	// Snapshot at the horizon still answers correctly.
	v, ok := s.SnapshotRead("p", "k", 5)
	if !ok || ValueInt64(v) != 5 {
		t.Fatalf("snapshot at horizon = %v,%v", ValueInt64(v), ok)
	}
	// Older snapshots may be gone (that is the contract).
	if _, ok := s.SnapshotRead("p", "k", 3); ok {
		t.Fatal("pre-horizon version survived vacuum")
	}
}

func TestKeysAndPartitionsSorted(t *testing.T) {
	s := NewStore()
	s.Load("b", "z", nil)
	s.Load("b", "a", nil)
	s.Load("a", "m", nil)
	parts := s.Partitions()
	if len(parts) != 2 || parts[0] != "a" || parts[1] != "b" {
		t.Fatalf("partitions = %v", parts)
	}
	keys := s.Keys("b")
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "z" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestValueEncodingHelpers(t *testing.T) {
	if ValueInt64(Int64Value(-12345)) != -12345 {
		t.Fatal("int64 round trip failed")
	}
	if ValueInt64(nil) != 0 {
		t.Fatal("nil decode != 0")
	}
	if ValueString(StringValue("hi")) != "hi" {
		t.Fatal("string round trip failed")
	}
}

func TestQuickVersionChainsAscend(t *testing.T) {
	f := func(vals []int16) bool {
		s := NewStore()
		idx := int64(0)
		for _, v := range vals {
			idx++
			tx, err := s.Begin("p", Buffered)
			if err != nil {
				return false
			}
			_ = tx.Write("k", Int64Value(int64(v)))
			if err := tx.Commit(idx); err != nil {
				return false
			}
		}
		// Every snapshot index returns the exact value committed at or
		// before it.
		for i := int64(1); i <= idx; i++ {
			v, ok := s.SnapshotRead("p", "k", i)
			if !ok || ValueInt64(v) != int64(vals[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBufferedAndInPlaceConverge(t *testing.T) {
	type op struct {
		Key byte
		Val int16
	}
	f := func(ops []op, abortMask uint8) bool {
		a, b := NewStore(), NewStore()
		idx := int64(0)
		for i, o := range ops {
			k := Key([]byte{'k', o.Key % 4})
			doAbort := (abortMask>>(uint(i)%8))&1 == 1
			txA, _ := a.Begin("p", Buffered)
			txB, _ := b.Begin("p", InPlaceUndo)
			_ = txA.Write(k, Int64Value(int64(o.Val)))
			_ = txB.Write(k, Int64Value(int64(o.Val)))
			if doAbort {
				_ = txA.Abort()
				_ = txB.Abort()
				continue
			}
			idx++
			if txA.Commit(idx) != nil || txB.Commit(idx) != nil {
				return false
			}
		}
		return a.Digest() == b.Digest()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
