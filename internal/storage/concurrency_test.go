package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"otpdb/internal/testutil"
)

// TestParallelReadsRacingCommitters drives the lock-free read path
// (Get, SnapshotRead, GetVersioned, LastCommitted) from many goroutines
// while a committer appends versions — run under -race this validates
// the atomic publication protocol. Every version of "k" holds its own
// TO index, so any read can verify it observed an exact snapshot.
func TestParallelReadsRacingCommitters(t *testing.T) {
	const txns = 2000
	s := NewStore()
	s.Load("p", "k", Int64Value(0))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var reads atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				last := s.LastCommitted("p")
				at := int64(i) % (last + 1)
				v, idx, ok := s.SnapshotReadVersion("p", "k", at)
				if !ok {
					t.Errorf("snapshot at %d missing (last=%d)", at, last)
					return
				}
				if idx > at {
					t.Errorf("snapshot at %d returned version %d", at, idx)
					return
				}
				if ValueInt64(v) != idx {
					t.Errorf("version %d holds %d", idx, ValueInt64(v))
					return
				}
				if cur, ok := s.Get("p", "k"); !ok || ValueInt64(cur) < 0 {
					t.Error("Get lost the key")
					return
				}
				reads.Add(1)
			}
		}()
	}

	for i := int64(1); i <= txns; i++ {
		tx, err := s.Begin("p", Buffered)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Write("k", Int64Value(i)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(i); err != nil {
			t.Fatal(err)
		}
	}
	// On a single-CPU box the readers may not have been scheduled yet;
	// give them time to observe the final state before stopping. A
	// timeout is not failure here — the assertion below reports it.
	testutil.Await(5*time.Second, func() bool { return reads.Load() != 0 })
	close(stop)
	wg.Wait()
	if reads.Load() == 0 {
		t.Fatal("readers made no progress")
	}
}

// TestParallelPartitionsCommitConcurrently verifies the sharding win:
// committers on distinct partitions run in parallel (per-partition
// locking), racing readers across all partitions.
func TestParallelPartitionsCommitConcurrently(t *testing.T) {
	const parts, txns = 8, 500
	s := NewStore()
	for p := 0; p < parts; p++ {
		s.Load(Partition(fmt.Sprintf("p%d", p)), "k", Int64Value(0))
	}
	var wg sync.WaitGroup
	for p := 0; p < parts; p++ {
		part := Partition(fmt.Sprintf("p%d", p))
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := int64(1); i <= txns; i++ {
				tx, err := s.Begin(part, Buffered)
				if err != nil {
					t.Error(err)
					return
				}
				_ = tx.Write("k", Int64Value(i))
				if err := tx.Commit(i); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < txns; i++ {
				if last := s.LastCommitted(part); last > 0 {
					if _, ok := s.SnapshotRead(part, "k", last); !ok {
						t.Errorf("%s: missing snapshot at %d", part, last)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	for p := 0; p < parts; p++ {
		part := Partition(fmt.Sprintf("p%d", p))
		if got := s.LastCommitted(part); got != txns {
			t.Fatalf("%s: lastCommitted = %d, want %d", part, got, txns)
		}
	}
}

// TestManyNewKeysStayReadable drives key creation through the overflow
// map and its geometric merges into the COW base: every created key
// must remain readable (Get, SnapshotRead, Keys) at every stage, racing
// concurrent readers.
func TestManyNewKeysStayReadable(t *testing.T) {
	const keys = 5000
	s := NewStore()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := Key(fmt.Sprintf("k%d", i%keys))
			if v, ok := s.Get("p", k); ok && ValueInt64(v) != int64(i%keys) {
				t.Errorf("%s = %d", k, ValueInt64(v))
				return
			}
		}
	}()
	for i := 0; i < keys; i++ {
		tx, err := s.Begin("p", Buffered)
		if err != nil {
			t.Fatal(err)
		}
		_ = tx.Write(Key(fmt.Sprintf("k%d", i)), Int64Value(int64(i)))
		if err := tx.Commit(int64(i + 1)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if got := len(s.Keys("p")); got != keys {
		t.Fatalf("Keys() = %d, want %d", got, keys)
	}
	for i := 0; i < keys; i++ {
		k := Key(fmt.Sprintf("k%d", i))
		v, ok := s.Get("p", k)
		if !ok || ValueInt64(v) != int64(i) {
			t.Fatalf("%s = %d,%v", k, ValueInt64(v), ok)
		}
		if _, ok := s.SnapshotRead("p", k, int64(keys)); !ok {
			t.Fatalf("%s missing from snapshot", k)
		}
	}
	if n := s.VersionCount(); n != keys {
		t.Fatalf("VersionCount = %d, want %d", n, keys)
	}
}

// TestPruneCorrectness: after Prune(w), reads at or above w still see
// exact snapshots, reads below w fail loudly with ErrSnapshotPruned,
// and the watermark is observable.
func TestPruneCorrectness(t *testing.T) {
	const versions = 20
	s := NewStore()
	for i := int64(1); i <= versions; i++ {
		tx, _ := s.Begin("p", Buffered)
		_ = tx.Write("k", Int64Value(i))
		if err := tx.Commit(i); err != nil {
			t.Fatal(err)
		}
	}
	const w = 12
	removed := s.Prune(w)
	if removed != w-1 {
		t.Fatalf("removed %d versions, want %d", removed, w-1)
	}
	if got := s.PruneWatermark("p"); got != w {
		t.Fatalf("watermark = %d, want %d", got, w)
	}
	// Reads at or above the watermark: exact snapshots survive.
	for at := int64(w); at <= versions; at++ {
		v, idx, ok, err := s.SnapshotReadAt("p", "k", at)
		if err != nil || !ok {
			t.Fatalf("read at %d: ok=%v err=%v", at, ok, err)
		}
		if idx != at || ValueInt64(v) != at {
			t.Fatalf("read at %d saw version %d value %d", at, idx, ValueInt64(v))
		}
	}
	// Reads below the watermark fail loudly.
	for at := int64(0); at < w; at++ {
		_, _, _, err := s.SnapshotReadAt("p", "k", at)
		if !errors.Is(err, ErrSnapshotPruned) {
			t.Fatalf("read at %d: err = %v, want ErrSnapshotPruned", at, err)
		}
	}
	// The legacy boolean API reports a plain miss.
	if _, ok := s.SnapshotRead("p", "k", w-1); ok {
		t.Fatal("pruned read succeeded through SnapshotRead")
	}
	// Prune is monotone: a lower horizon does not regress the watermark.
	s.Prune(3)
	if got := s.PruneWatermark("p"); got != w {
		t.Fatalf("watermark regressed to %d", got)
	}
}

// TestPruneKeepsNewestAtOrBelowHorizon: a key whose last write predates
// the horizon keeps exactly that version (it serves reads at the
// horizon).
func TestPruneKeepsNewestAtOrBelowHorizon(t *testing.T) {
	s := NewStore()
	for i := int64(1); i <= 5; i++ {
		tx, _ := s.Begin("p", Buffered)
		_ = tx.Write("k", Int64Value(i))
		_ = tx.Commit(i)
	}
	s.Prune(9)
	v, idx, ok, err := s.SnapshotReadAt("p", "k", 9)
	if err != nil || !ok || idx != 5 || ValueInt64(v) != 5 {
		t.Fatalf("read at horizon: v=%d idx=%d ok=%v err=%v", ValueInt64(v), idx, ok, err)
	}
	if n := s.VersionCount(); n != 1 {
		t.Fatalf("version count = %d, want 1", n)
	}
}

// TestBeginWaitWakesOnRelease: BeginWait parks while the partition is
// busy and wakes on commit — no polling, no missed wakeup.
func TestBeginWaitWakesOnRelease(t *testing.T) {
	s := NewStore()
	tx, err := s.Begin("p", Buffered)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		wtx, err := s.BeginWait("p", Buffered, nil)
		if err == nil {
			err = wtx.Abort()
		}
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("BeginWait returned %v while partition busy", err)
	case <-time.After(20 * time.Millisecond):
	}
	_ = tx.Write("k", Int64Value(1))
	if err := tx.Commit(1); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("BeginWait after release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("BeginWait missed the release wakeup")
	}
}

// TestBeginWaitCancel: the cancel channel aborts the wait with
// ErrCanceled and deregisters the waiter.
func TestBeginWaitCancel(t *testing.T) {
	s := NewStore()
	tx, err := s.Begin("p", Buffered)
	if err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	got := make(chan error, 1)
	go func() {
		_, err := s.BeginWait("p", Buffered, cancel)
		got <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(cancel)
	select {
	case err := <-got:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancel did not unblock BeginWait")
	}
	// The holder still releases normally and future begins work.
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	tx2, err := s.Begin("p", Buffered)
	if err != nil {
		t.Fatal(err)
	}
	_ = tx2.Abort()
}

// TestBeginMultiWaitAcquiresWhenAllFree: a multi-partition wait parks on
// the busy partition, then atomically acquires the full set.
func TestBeginMultiWaitAcquiresWhenAllFree(t *testing.T) {
	s := NewStore()
	hold, err := s.Begin("b", Buffered)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		mt, err := s.BeginMultiWait([]Partition{"a", "b", "c"}, Buffered, nil)
		if err == nil {
			err = mt.Abort()
		}
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("BeginMultiWait returned %v while b busy", err)
	case <-time.After(20 * time.Millisecond):
	}
	// While the waiter retries, partitions a and c must not stay locked
	// (all-or-nothing acquisition releases them).
	if txa, err := s.BeginWait("a", Buffered, nil); err != nil {
		t.Fatalf("partition a wedged: %v", err)
	} else {
		_ = txa.Abort()
	}
	if err := hold.Abort(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("BeginMultiWait after release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("BeginMultiWait missed the release wakeup")
	}
}

// TestBeginMultiWaitCancel: cancellation releases partially acquired
// partitions and returns ErrCanceled.
func TestBeginMultiWaitCancel(t *testing.T) {
	s := NewStore()
	hold, err := s.Begin("b", Buffered)
	if err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	got := make(chan error, 1)
	go func() {
		_, err := s.BeginMultiWait([]Partition{"a", "b"}, Buffered, cancel)
		got <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(cancel)
	select {
	case err := <-got:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancel did not unblock BeginMultiWait")
	}
	_ = hold.Abort()
	// Nothing left locked.
	mt, err := s.BeginMulti([]Partition{"a", "b"}, Buffered)
	if err != nil {
		t.Fatal(err)
	}
	_ = mt.Abort()
}

// TestSnapshotReadsRacingPrune: readers at or above the advancing
// watermark keep seeing exact snapshots while Prune rewrites chains.
func TestSnapshotReadsRacingPrune(t *testing.T) {
	const versions = 1000
	s := NewStore()
	for i := int64(1); i <= versions; i++ {
		tx, _ := s.Begin("p", Buffered)
		_ = tx.Write("k", Int64Value(i))
		if err := tx.Commit(i); err != nil {
			t.Fatal(err)
		}
	}
	var watermark atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				w := watermark.Load()
				if w == 0 {
					w = 1 // no version exists at index 0 (chain starts at 1)
				}
				at := w + int64(i)%(versions-w+1) // in [w, versions]
				v, idx, ok, err := s.SnapshotReadAt("p", "k", at)
				if err != nil {
					// A racing Prune may have advanced the watermark past
					// our captured w; that read is legitimately refused.
					if !errors.Is(err, ErrSnapshotPruned) {
						t.Errorf("read at %d: %v", at, err)
						return
					}
					continue
				}
				if !ok {
					t.Errorf("read at %d: missing", at)
					return
				}
				want := at
				if want > versions {
					want = versions
				}
				if idx != want || ValueInt64(v) != want {
					t.Errorf("read at %d saw version %d value %d", at, idx, ValueInt64(v))
					return
				}
			}
		}(g)
	}
	for w := int64(1); w <= versions; w += 7 {
		watermark.Store(w)
		s.Prune(w)
	}
	close(stop)
	wg.Wait()
}
