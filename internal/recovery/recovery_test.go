package recovery

import (
	"os"
	"path/filepath"
	"testing"

	"otpdb/internal/storage"
	"otpdb/internal/wal"
)

func write(idx int64, key string, val int64) wal.Record {
	return wal.Record{TOIndex: idx, Writes: []storage.ClassKeyValue{{
		Partition: "p", Key: storage.Key(key), Value: storage.Int64Value(val),
	}}}
}

// buildState commits 1..n into a fresh store and the durability log.
func buildState(t *testing.T, d *Durability, n int64) *storage.Store {
	t.Helper()
	s := storage.NewStore()
	for i := int64(1); i <= n; i++ {
		rec := write(i, "k", i)
		if err := d.Append(rec); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		s.InstallCommit(rec.TOIndex, rec.Writes)
	}
	return s
}

func TestRecoverLogOnly(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	live := buildState(t, d, 100)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d2.Close() }()
	s := storage.NewStore()
	base, err := d2.Recover(s)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if base != 100 {
		t.Fatalf("recovered index = %d, want 100", base)
	}
	if s.Digest() != live.Digest() {
		t.Fatal("recovered state differs from live state")
	}
}

// TestRecoverStopsAtLogHole: non-conflicting commits may append out of
// TOIndex order, so a crash can persist index N+1 without N. Recovery
// must resume at the contiguous frontier below the hole — installing
// the orphan and resuming above it would lose transaction N forever.
func TestRecoverStopsAtLogHole(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int64{1, 2, 3, 5, 6} { // 4 lost in the crash
		if err := d.Append(write(idx, "k", idx)); err != nil {
			t.Fatalf("Append %d: %v", idx, err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d2.Close() }()
	s := storage.NewStore()
	base, err := d2.Recover(s)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if base != 3 {
		t.Fatalf("recovered index = %d, want 3 (frontier below the hole)", base)
	}
	if v, _ := s.Get("p", "k"); storage.ValueInt64(v) != 3 {
		t.Fatalf("recovered value = %d, want 3 — orphan records above the hole must not install", storage.ValueInt64(v))
	}
	if lc := s.LastCommitted("p"); lc != 3 {
		t.Fatalf("partition floor = %d, want 3", lc)
	}
}

func TestRecoverCheckpointPlusTail(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{Sync: wal.SyncNever, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	live := buildState(t, d, 60)
	// Checkpoint at 60, then 40 more commits land in the tail.
	if !d.TryBeginCheckpoint() {
		t.Fatal("checkpoint slot busy")
	}
	if err := d.Checkpoint(live.CheckpointAt(60)); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for i := int64(61); i <= 100; i++ {
		rec := write(i, "k", i)
		if err := d.Append(rec); err != nil {
			t.Fatal(err)
		}
		live.InstallCommit(rec.TOIndex, rec.Writes)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d2.Close() }()
	s := storage.NewStore()
	base, err := d2.Recover(s)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if base != 100 {
		t.Fatalf("recovered index = %d, want 100", base)
	}
	if v, ok := s.Get("p", "k"); !ok || storage.ValueInt64(v) != 100 {
		t.Fatalf("recovered value = %v %v, want 100", v, ok)
	}
	if got := s.LastCommitted("p"); got != 100 {
		t.Fatalf("LastCommitted = %d, want 100", got)
	}
}

func TestCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	live := buildState(t, d, 50)
	// Two checkpoints: 30 (valid) and 50 (to be corrupted). Keep the WAL
	// intact so the tail above 30 replays. pruneCheckpoints would delete
	// the older file, so save both manually.
	if err := saveCheckpoint(dir, live.CheckpointAt(30)); err != nil {
		t.Fatal(err)
	}
	if err := saveCheckpoint(dir, live.CheckpointAt(50)); err != nil {
		t.Fatal(err)
	}
	files, err := d.checkpointFiles()
	if err != nil || len(files) != 2 {
		t.Fatalf("checkpoint files = %v (%v)", files, err)
	}
	// Corrupt the newest checkpoint's body.
	data, err := os.ReadFile(files[1].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(files[1].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d2.Close() }()
	s := storage.NewStore()
	base, err := d2.Recover(s)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	// Fallback checkpoint at 30 + full log replay above it = 50.
	if base != 50 {
		t.Fatalf("recovered index = %d, want 50", base)
	}
	if s.Digest() != live.Digest() {
		t.Fatal("recovered state differs after checkpoint fallback")
	}
}

func TestCheckpointBoundsReplayAndPrunes(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{Sync: wal.SyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	live := buildState(t, d, 100)
	if !d.TryBeginCheckpoint() {
		t.Fatal("slot busy")
	}
	if err := d.Checkpoint(live.CheckpointAt(50)); err != nil {
		t.Fatal(err)
	}
	if !d.TryBeginCheckpoint() {
		t.Fatal("slot not released")
	}
	if err := d.Checkpoint(live.CheckpointAt(100)); err != nil {
		t.Fatal(err)
	}
	// Only the newest checkpoint file survives.
	files, err := d.checkpointFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0].index != 100 {
		t.Fatalf("checkpoint files after prune = %v", files)
	}
	// Old WAL segments are gone.
	segs, err := filepath.Glob(filepath.Join(dir, walSubdir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 2 {
		t.Fatalf("WAL not bounded after checkpoint: %d segments remain", len(segs))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d2.Close() }()
	s := storage.NewStore()
	base, err := d2.Recover(s)
	if err != nil || base != 100 {
		t.Fatalf("Recover = %d, %v; want 100", base, err)
	}
	if s.Digest() != live.Digest() {
		t.Fatal("recovered state differs after bounded replay")
	}
}

func TestRecoverEmptyDir(t *testing.T) {
	d, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d.Close() }()
	s := storage.NewStore()
	base, err := d.Recover(s)
	if err != nil || base != 0 {
		t.Fatalf("Recover on empty dir = %d, %v; want 0, nil", base, err)
	}
}

func TestCheckpointPreservesEmptyVsNilValues(t *testing.T) {
	// Gob collapses empty slices to nil; the checkpoint codec must not —
	// an empty committed value means "key present", nil means "absent".
	s := storage.NewStore()
	s.InstallCommit(1, []storage.ClassKeyValue{
		{Partition: "p", Key: "empty", Value: storage.Value{}},
		{Partition: "p", Key: "nilval", Value: nil},
		{Partition: "p", Key: "full", Value: storage.StringValue("x")},
	})
	dir := t.TempDir()
	if err := saveCheckpoint(dir, s.CheckpointAt(1)); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d.Close() }()
	restored := storage.NewStore()
	if _, err := d.Recover(restored); err != nil {
		t.Fatal(err)
	}
	if v, ok := restored.Get("p", "empty"); !ok || v == nil || len(v) != 0 {
		t.Fatalf("empty value mangled: v=%v ok=%v", v, ok)
	}
	if _, ok := restored.Get("p", "nilval"); ok {
		t.Fatal("nil value resurrected as present")
	}
	if v, ok := restored.Get("p", "full"); !ok || storage.ValueString(v) != "x" {
		t.Fatalf("full value mangled: %v %v", v, ok)
	}
	if restored.Digest() != s.Digest() {
		t.Fatal("digest mismatch after checkpoint round-trip")
	}
}
