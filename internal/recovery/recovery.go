// Package recovery binds the write-ahead log (internal/wal) and storage
// checkpoints into the durability subsystem of one replica: the paper
// assumes every site can "use traditional recovery techniques" (Section
// 3.2) to survive crashes, and this package is that machinery.
//
// A site's data directory holds:
//
//	wal/                      segmented commit log (internal/wal)
//	checkpoint-<index>.ckpt   gob-encoded storage.Checkpoint + CRC-32C
//
// Cold restart (Recover) installs the newest valid checkpoint and
// replays the log tail above it; replay is idempotent, so a checkpoint
// racing a crash never double-applies. Periodic checkpoints
// (TryBeginCheckpoint/Checkpoint, driven by the replica's commit hook)
// bound replay:
// after a checkpoint at index C succeeds, segments entirely at or below
// C are deleted and older checkpoint files removed.
package recovery

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"otpdb/internal/metrics"
	"otpdb/internal/storage"
	"otpdb/internal/wal"
)

const (
	walSubdir  = "wal"
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
)

// Options configures a site's durability.
type Options struct {
	// Sync is the WAL fsync policy (default wal.SyncGrouped).
	Sync wal.SyncPolicy
	// GroupInterval is the grouped-fsync period (default 2 ms).
	GroupInterval time.Duration
	// SegmentBytes caps WAL segments (default 4 MiB).
	SegmentBytes int64
	// CheckpointEvery is the number of commits between checkpoints
	// (default 4096; negative disables periodic checkpoints).
	CheckpointEvery int
	// Metrics, when non-nil, registers WAL and checkpoint telemetry
	// under the scope's labels.
	Metrics *metrics.Scope
}

// DefaultCheckpointEvery is the commit count between checkpoints when
// Options.CheckpointEvery is 0.
const DefaultCheckpointEvery = 4096

// Durability is one site's open durability state: the WAL plus the
// checkpoint directory. Safe for concurrent use.
type Durability struct {
	dir  string
	opts Options
	log  *wal.Log

	// checkpointing serializes background checkpoints (at most one in
	// flight; extra triggers are dropped, not queued).
	checkpointing atomic.Bool
	ckpts         *metrics.Counter

	mu     sync.Mutex
	closed bool
}

// Open opens (or creates) a site's durability directory.
func Open(dir string, opts Options) (*Durability, error) {
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = DefaultCheckpointEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("recovery: %w", err)
	}
	log, err := wal.Open(filepath.Join(dir, walSubdir), wal.Options{
		SegmentBytes:  opts.SegmentBytes,
		Sync:          opts.Sync,
		GroupInterval: opts.GroupInterval,
		Metrics:       opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	d := &Durability{dir: dir, opts: opts, log: log}
	d.ckpts = opts.Metrics.Counter("wal_checkpoint_total")
	return d, nil
}

// CheckpointEvery reports the configured commit count between
// checkpoints (<= 0 when periodic checkpoints are disabled).
func (d *Durability) CheckpointEvery() int { return d.opts.CheckpointEvery }

// Recover rebuilds the committed state into store: the newest valid
// checkpoint is installed (corrupt ones fall back to older), then the
// log tail above it is replayed. It returns the definitive index the
// store is recovered to — the replica resumes counting from there.
//
// Non-conflicting commits append slightly out of TOIndex order, so a
// crash can leave the log holding index N+1 without N. Resuming past
// such a hole would lose transaction N forever (replay, rejoin
// backlogs and the commit counters all start above the resume point),
// so recovery first finds the contiguous frontier and installs only
// records at or below it. Orphan records above the hole are left in
// the log and re-covered by whatever refills the gap — a statex
// backlog on live rejoin, or the group's replay on a cold restart —
// both idempotent against the duplicate.
func (d *Durability) Recover(store *storage.Store) (int64, error) {
	base := int64(0)
	if ck, ok, err := d.latestCheckpoint(); err != nil {
		return 0, err
	} else if ok {
		store.InstallCheckpoint(ck)
		base = ck.Index
	}
	seen := make(map[int64]bool)
	if err := d.log.Replay(base, func(rec wal.Record) error {
		seen[rec.TOIndex] = true
		return nil
	}); err != nil {
		return 0, err
	}
	last := base
	for seen[last+1] {
		last++
	}
	err := d.log.Replay(base, func(rec wal.Record) error {
		if rec.TOIndex <= last {
			store.InstallCommit(rec.TOIndex, rec.Writes)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return last, nil
}

// Append logs one commit, honouring the configured sync policy. An
// acknowledged commit is durable per that policy's contract.
func (d *Durability) Append(rec wal.Record) error {
	return d.log.Append(rec)
}

// LastIndex reports the largest logged or recovered definitive index.
func (d *Durability) LastIndex() int64 { return d.log.LastIndex() }

// Sync flushes the WAL.
func (d *Durability) Sync() error { return d.log.Sync() }

// Close flushes and closes the WAL. Idempotent.
func (d *Durability) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	return d.log.Close()
}

// TryBeginCheckpoint claims the single background-checkpoint slot. The
// caller must call Checkpoint (which releases it) when it wins, or
// ReleaseCheckpoint when the snapshot attempt fails.
func (d *Durability) TryBeginCheckpoint() bool {
	return d.checkpointing.CompareAndSwap(false, true)
}

// ReleaseCheckpoint releases the slot claimed by TryBeginCheckpoint
// without writing a checkpoint.
func (d *Durability) ReleaseCheckpoint() { d.checkpointing.Store(false) }

// Checkpoint durably saves ck, then bounds the log: WAL segments whose
// records are all covered by ck and checkpoint files older than ck are
// deleted. It releases the slot claimed by TryBeginCheckpoint.
func (d *Durability) Checkpoint(ck *storage.Checkpoint) error {
	defer d.checkpointing.Store(false)
	d.ckpts.Inc()
	return d.ResetTo(ck)
}

// ResetTo reinitializes the directory to exactly ck — the save/bound/
// prune sequence shared with Checkpoint, and the rejoin path: the store
// content came from a peer, so the local log history below it is
// obsolete. Existing WAL segments are bounded against ck.Index and
// subsequent Appends continue above it.
func (d *Durability) ResetTo(ck *storage.Checkpoint) error {
	if err := saveCheckpoint(d.dir, ck); err != nil {
		return err
	}
	if err := d.log.TruncateBelow(ck.Index); err != nil {
		return err
	}
	return d.pruneCheckpoints(ck.Index)
}

// ckptFile is one on-disk checkpoint.
type ckptFile struct {
	index int64
	path  string
}

// checkpointFiles lists checkpoint files in ascending index order.
func (d *Durability) checkpointFiles() ([]ckptFile, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("recovery: %w", err)
	}
	var out []ckptFile
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		idx, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix), 16, 64)
		if err != nil {
			continue
		}
		out = append(out, ckptFile{index: idx, path: filepath.Join(d.dir, name)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].index < out[j].index })
	return out, nil
}

// latestCheckpoint loads the newest checkpoint that validates; corrupt
// files (torn rename, bit rot) are skipped in favour of older ones.
func (d *Durability) latestCheckpoint() (*storage.Checkpoint, bool, error) {
	files, err := d.checkpointFiles()
	if err != nil {
		return nil, false, err
	}
	for i := len(files) - 1; i >= 0; i-- {
		ck, err := loadCheckpoint(files[i].path)
		if err == nil {
			return ck, true, nil
		}
	}
	return nil, false, nil
}

// pruneCheckpoints removes checkpoint files older than keepIndex.
func (d *Durability) pruneCheckpoints(keepIndex int64) error {
	files, err := d.checkpointFiles()
	if err != nil {
		return err
	}
	for _, f := range files {
		if f.index < keepIndex {
			if err := os.Remove(f.path); err != nil && !errors.Is(err, os.ErrNotExist) {
				return fmt.Errorf("recovery: prune checkpoint: %w", err)
			}
		}
	}
	return nil
}

// castagnoli matches the WAL's CRC flavour.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Gob collapses zero-length byte slices to nil on decode, but the store
// distinguishes an empty committed value (key present) from nil (key
// absent) — the WAL preserves the distinction explicitly, and the
// checkpoint must too. The wire structs below carry a presence flag and
// are converted at the save/load boundary.
type (
	ckptWire struct {
		Index      int64
		Partitions []ckptWirePartition
	}
	ckptWirePartition struct {
		Partition     string
		LastCommitted int64
		Keys          []ckptWireKV
	}
	ckptWireKV struct {
		Key      string
		TOIndex  int64
		HasValue bool
		Value    []byte
	}
)

func toWire(ck *storage.Checkpoint) ckptWire {
	w := ckptWire{Index: ck.Index}
	for _, pc := range ck.Partitions {
		wp := ckptWirePartition{
			Partition:     string(pc.Partition),
			LastCommitted: pc.LastCommitted,
		}
		for _, kv := range pc.Keys {
			wp.Keys = append(wp.Keys, ckptWireKV{
				Key:      string(kv.Key),
				TOIndex:  kv.TOIndex,
				HasValue: kv.Value != nil,
				Value:    kv.Value,
			})
		}
		w.Partitions = append(w.Partitions, wp)
	}
	return w
}

func fromWire(w ckptWire) *storage.Checkpoint {
	ck := &storage.Checkpoint{Index: w.Index}
	for _, wp := range w.Partitions {
		pc := storage.PartitionCheckpoint{
			Partition:     storage.Partition(wp.Partition),
			LastCommitted: wp.LastCommitted,
		}
		for _, kv := range wp.Keys {
			v := storage.Value(kv.Value)
			if kv.HasValue && v == nil {
				v = storage.Value{} // gob collapsed empty to nil; restore presence
			} else if !kv.HasValue {
				v = nil
			}
			pc.Keys = append(pc.Keys, storage.KeyVersion{
				Key:     storage.Key(kv.Key),
				TOIndex: kv.TOIndex,
				Value:   v,
			})
		}
		ck.Partitions = append(ck.Partitions, pc)
	}
	return ck
}

// EncodeCheckpointTo streams a checkpoint in the durable on-disk
// format: gob body + CRC-32C trailer. Checkpoint files and the statex
// wire transfer share this encoding, so a checkpoint received from a
// peer is bit-identical to one written locally.
func EncodeCheckpointTo(w io.Writer, ck *storage.Checkpoint) error {
	crc := crc32.New(castagnoli)
	if err := gob.NewEncoder(io.MultiWriter(w, crc)).Encode(toWire(ck)); err != nil {
		return fmt.Errorf("recovery: encode checkpoint: %w", err)
	}
	var trailer [4]byte
	binary.BigEndian.PutUint32(trailer[:], crc.Sum32())
	if _, err := w.Write(trailer[:]); err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	return nil
}

// EncodeCheckpoint is EncodeCheckpointTo into memory, for callers that
// chunk the encoded form (the statex wire path).
func EncodeCheckpoint(ck *storage.Checkpoint) ([]byte, error) {
	var buf bytes.Buffer
	if err := EncodeCheckpointTo(&buf, ck); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeCheckpoint validates and decodes the EncodeCheckpoint format.
func DecodeCheckpoint(data []byte) (*storage.Checkpoint, error) {
	if len(data) < 4 {
		return nil, errors.New("recovery: checkpoint too short")
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.BigEndian.Uint32(trailer) {
		return nil, errors.New("recovery: checkpoint CRC mismatch")
	}
	var w ckptWire
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&w); err != nil {
		return nil, fmt.Errorf("recovery: decode checkpoint: %w", err)
	}
	return fromWire(w), nil
}

// saveCheckpoint writes a checkpoint durably: the encoded form streamed
// into a temp file (no full in-memory copy), fsync, then atomic rename.
func saveCheckpoint(dir string, ck *storage.Checkpoint) error {
	tmp, err := os.CreateTemp(dir, "checkpoint-*.tmp")
	if err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	tmpName := tmp.Name()
	defer func() { _ = os.Remove(tmpName) }()
	bw := bufio.NewWriterSize(tmp, 1<<16)
	if err := EncodeCheckpointTo(bw, ck); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("recovery: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("recovery: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	final := filepath.Join(dir, fmt.Sprintf("%s%016x%s", ckptPrefix, ck.Index, ckptSuffix))
	if err := os.Rename(tmpName, final); err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	return syncDir(dir)
}

// loadCheckpoint reads and validates one checkpoint file.
func loadCheckpoint(path string) (*storage.Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("recovery: %w", err)
	}
	return DecodeCheckpoint(data)
}

// syncDir fsyncs a directory so renames are durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	defer func() { _ = f.Close() }()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("recovery: sync dir: %w", err)
	}
	return nil
}
