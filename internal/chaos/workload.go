package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"otpdb"
)

// The chaos workload is engineered so that invariants are checkable and
// the final state is seed-stable regardless of commit interleaving:
//
//   - Each submission carries a unique id and writes an idempotent
//     marker row ("id/<id>" = 1). A resubmission of the same id — the
//     client retry after an ack timeout — sees the marker and no-ops,
//     which is what "no double-commit of a retried submission" means at
//     the application layer.
//   - Each class keeps a commutative counter ("sum") incremented only on
//     first application of an id. The counter equals the number of
//     marker rows if and only if every effect applied exactly once —
//     a replication bug that re-applies an entry inflates the counter
//     past the marker count and is caught by CheckEffectOnce.
//
// Both pieces are order-independent, so two runs that commit the same
// id set in different orders produce identical digests.

// workload owns the class layout and procedure registration for a
// scenario's cluster.
type workload struct {
	classes []string // single-class procs: apply-<class>
	pairs   [][2]int // two-class procs over classes[p[0]], classes[p[1]]
}

func newWorkload(sc Scenario, shards int) *workload {
	n := 2 * shards
	if n < 4 {
		n = 4
	}
	w := &workload{}
	for i := 0; i < n; i++ {
		w.classes = append(w.classes, fmt.Sprintf("c%d", i))
	}
	for i := 0; i+1 < n; i += 2 {
		w.pairs = append(w.pairs, [2]int{i, i + 1})
	}
	return w
}

// markerKey is the idempotence row of one submission in one class.
func markerKey(id string) otpdb.Key { return otpdb.Key("id/" + id) }

// register installs the procedures on an unstarted cluster.
func (w *workload) register(c *otpdb.Cluster) {
	for _, class := range w.classes {
		class := class
		c.MustRegisterUpdate(otpdb.Update{
			Name:  "apply-" + class,
			Class: otpdb.Class(class),
			Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
				id := otpdb.AsString(ctx.Args()[0])
				if _, dup := ctx.Read(markerKey(id)); dup {
					return otpdb.Int64(0), nil
				}
				if err := ctx.Write(markerKey(id), otpdb.Int64(1)); err != nil {
					return nil, err
				}
				sum, _ := ctx.Read("sum")
				next := otpdb.Int64(otpdb.AsInt64(sum) + 1)
				return next, ctx.Write("sum", next)
			},
		})
	}
	for _, p := range w.pairs {
		a, b := w.classes[p[0]], w.classes[p[1]]
		c.MustRegisterMultiUpdate(otpdb.MultiUpdate{
			Name:    fmt.Sprintf("applyboth-%s-%s", a, b),
			Classes: []otpdb.Class{otpdb.Class(a), otpdb.Class(b)},
			Fn: func(ctx otpdb.MultiUpdateCtx) (otpdb.Value, error) {
				id := otpdb.AsString(ctx.Args()[0])
				applied := int64(0)
				for _, class := range []otpdb.Class{otpdb.Class(a), otpdb.Class(b)} {
					if _, dup := ctx.Read(class, markerKey(id)); dup {
						continue
					}
					if err := ctx.Write(class, markerKey(id), otpdb.Int64(1)); err != nil {
						return nil, err
					}
					sum, _ := ctx.Read(class, "sum")
					if err := ctx.Write(class, "sum", otpdb.Int64(otpdb.AsInt64(sum)+1)); err != nil {
						return nil, err
					}
					applied++
				}
				return otpdb.Int64(applied), nil
			},
		})
	}
}

// pick chooses the next submission's procedure and the classes it
// touches.
func (w *workload) pick(rng *rand.Rand, sc Scenario) (proc string, classes []string) {
	if sc.CrossShard > 0 && rng.Float64() < sc.CrossShard {
		p := w.pairs[rng.Intn(len(w.pairs))]
		a, b := w.classes[p[0]], w.classes[p[1]]
		return fmt.Sprintf("applyboth-%s-%s", a, b), []string{a, b}
	}
	class := w.classes[rng.Intn(len(w.classes))]
	return "apply-" + class, []string{class}
}

// ackPoint is one acknowledged commit, attributed to the submitter's
// home site (the availability and recovery metrics are per home site —
// "could a client of this site commit?").
type ackPoint struct {
	site int
	at   time.Time
}

// recorder collects workload observations under one lock; submitters
// are concurrent.
type recorder struct {
	mu        sync.Mutex
	ids       map[string][]string // every submitted id → classes touched
	acked     map[string][]string // acked subset
	acks      []ackPoint
	resubmits int
}

func newRecorder() *recorder {
	return &recorder{ids: make(map[string][]string), acked: make(map[string][]string)}
}

func (r *recorder) submitted(id string, classes []string) {
	r.mu.Lock()
	r.ids[id] = classes
	r.mu.Unlock()
}

func (r *recorder) ack(id string, site int, classes []string, at time.Time) {
	r.mu.Lock()
	r.acked[id] = classes
	r.acks = append(r.acks, ackPoint{site: site, at: at})
	r.mu.Unlock()
}

func (r *recorder) resubmit() {
	r.mu.Lock()
	r.resubmits++
	r.mu.Unlock()
}

// ackedCommitted flattens the acked set for CheckAckedDurability.
func (r *recorder) ackedCommitted() []Committed {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Committed
	for id, classes := range r.acked {
		for _, class := range classes {
			out = append(out, Committed{ID: id, Class: class})
		}
	}
	return out
}

// submitter drives one site's client load until stop (open plan) or
// until its fixed budget is acknowledged (closed plan). A submission
// that cannot be acknowledged within ackTimeout is retried — same id —
// at another live site, exercising the retried-submission dedup the
// invariants then audit.
func submitter(c *otpdb.Cluster, w *workload, sc Scenario, site int, seed int64, rec *recorder, stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	rng := rand.New(rand.NewSource(seed<<16 ^ int64(site)))
	const ackTimeout = 3 * time.Second
	for seq := 0; ; seq++ {
		select {
		case <-stop:
			if sc.FixedTxns == 0 {
				return
			}
		default:
		}
		if sc.FixedTxns > 0 && seq >= sc.FixedTxns {
			return
		}
		proc, classes := w.pick(rng, sc)
		id := fmt.Sprintf("s%d-n%d", site, seq)
		rec.submitted(id, classes)
		submitOne(c, sc, site, proc, id, classes, rec, stop, rng, ackTimeout)
	}
}

// submitOne pushes one submission to acknowledgement, retrying across
// live sites. In the open plan it abandons after a few attempts (the
// transaction may still commit — the invariants only audit
// acknowledged ones for durability); in the closed plan it retries
// until acknowledged so every id eventually commits.
func submitOne(c *otpdb.Cluster, sc Scenario, home int, proc, id string, classes []string,
	rec *recorder, stop <-chan struct{}, rng *rand.Rand, ackTimeout time.Duration) {
	site := home
	for attempt := 0; ; attempt++ {
		if sc.FixedTxns == 0 && attempt >= 3 {
			return
		}
		sess, err := c.Session(site)
		if err != nil {
			return
		}
		h, err := sess.SubmitAsync(proc, otpdb.String(id))
		if err == nil {
			ctx, cancel := context.WithTimeout(context.Background(), ackTimeout)
			_, err = h.Wait(ctx)
			cancel()
			if err == nil {
				rec.ack(id, home, classes, time.Now())
				return
			}
		}
		// The site is down or the commit is stuck behind a fault: hand
		// the same id to another live site after a beat. The closed plan
		// only gives up when the run is being torn down.
		if sc.FixedTxns > 0 {
			select {
			case <-stop:
				return
			default:
			}
		}
		rec.resubmit()
		select {
		case <-stop:
			if sc.FixedTxns == 0 {
				return
			}
		case <-time.After(25 * time.Millisecond):
		}
		site = otherLive(c, rng, site)
	}
}

// otherLive picks a random live site, preferring one different from
// cur; falls back to cur when everything is down.
func otherLive(c *otpdb.Cluster, rng *rand.Rand, cur int) int {
	down := make(map[int]bool)
	for _, s := range c.CrashedSites() {
		down[s] = true
	}
	n := c.Size()
	var live []int
	for i := 0; i < n; i++ {
		if !down[i] && i != cur {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return cur
	}
	return live[rng.Intn(len(live))]
}
