// Package chaos is a deterministic fault-injection harness for otpdb
// clusters: seeded scenarios compose WAN topologies, scripted fault
// schedules, realistic workloads and end-of-run invariant checking.
//
// Everything observable about a scenario's fault plan is a pure function
// of (Scenario, seed): Expand derives the schedule from one seeded RNG,
// so a run replays its exact fault sequence from its seed — a failing
// scenario is a repro, not an anecdote. The workload is built from
// commutative increments and idempotent markers, so the *final state* is
// also seed-stable even though commit interleavings are not.
//
// A scenario passes when, after faults stop and repairs complete, the
// surviving sites agree (per-shard digest convergence), no acknowledged
// commit was lost, effects were applied exactly once (retried
// submissions do not double-commit), and every site's epoch history is
// monotone. See Run.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// FaultClass names a category of injected fault; scenarios enable a
// subset and the report aggregates recovery metrics per class.
type FaultClass string

// The fault taxonomy.
const (
	// Crash downs a site at the transport level. Repaired by a scheduled
	// restart (statex rejoin) or — when the scenario arms auto-replace —
	// by the cluster itself.
	Crash FaultClass = "crash"
	// Partition cuts both directions of one site pair; a later heal
	// restores it. The in-process network does not relay, so partitioned
	// survivors rely on coordinator rotation for liveness.
	Partition FaultClass = "partition"
	// SlowDisk stalls a site's commit path (a blocked WAL fsync): every
	// commit at the site sleeps for the stall length until cleared.
	SlowDisk FaultClass = "slow-disk"
	// DelaySpike temporarily degrades one directed link far beyond its
	// base profile, then restores the base.
	DelaySpike FaultClass = "delay-spike"
	// Ghost replays a stale-incarnation failure-detector heartbeat from
	// a crashed site — the backlog a reconnecting transport drains.
	// Detectors must drop it or a dead site would look alive forever.
	Ghost FaultClass = "ghost"
)

// Scenario is one reproducible chaos experiment. The zero value is not
// runnable; use the shipped Scenarios or fill in at least Sites,
// Duration, Events and Faults.
type Scenario struct {
	// Name identifies the scenario in reports.
	Name string
	// Sites is the cluster size; Shards the number of shard groups
	// (0 means 1).
	Sites  int
	Shards int

	// Regions > 1 lays the sites out in contiguous regional blocks and
	// installs an RTT matrix: links inside a region keep the LAN base
	// profile, links between regions get RegionRTT/2 one-way delay with
	// RegionJitter and Loss, each direction perturbed asymmetrically.
	Regions      int
	RegionRTT    time.Duration
	RegionJitter time.Duration
	Loss         float64

	// Duration is the fault-phase length; Events the number of fault
	// injections scheduled across it.
	Duration time.Duration
	Events   int
	// Faults enables fault classes; an empty set schedules nothing
	// (a pure workload soak).
	Faults []FaultClass

	// AutoReplace, when positive, arms otpdb.WithAutoReplace with this
	// suspicion window; crash events are then left for the cluster to
	// heal itself instead of scheduling restarts.
	AutoReplace time.Duration

	// FixedTxns, when positive, switches the workload to a closed plan:
	// each site submits exactly this many transactions, retrying until
	// acknowledged. Together with the commutative workload this makes
	// the final state digest identical across runs of the same seed —
	// the determinism mode. Zero runs an open workload for Duration.
	FixedTxns int

	// CrossShard is the fraction of submissions that use a two-class
	// cross-shard procedure (only meaningful with Shards > 1).
	CrossShard float64

	// Quick marks the scenario as cheap enough for smoke runs (-quick,
	// CI); expensive scenarios are full-mode only.
	Quick bool
}

// Region reports the region of a site under the scenario's contiguous
// block layout (0 when the scenario is single-region).
func (sc Scenario) Region(site int) int {
	if sc.Regions <= 1 {
		return 0
	}
	return site * sc.Regions / sc.Sites
}

// Event is one step of a fault schedule: an injection or its paired
// repair. A and B are sites (B is -1 when unused); Dur carries the
// stall length or spike delay.
type Event struct {
	At    time.Duration
	Kind  string // crash restart partition heal stall unstall spike calm ghost
	A, B  int
	Dur   time.Duration
	Class FaultClass
}

// String renders the event in the fixed replayable format.
func (e Event) String() string {
	switch e.Kind {
	case "crash", "restart":
		return fmt.Sprintf("%8s %-9s site=%d", fmtAt(e.At), e.Kind, e.A)
	case "partition", "heal":
		return fmt.Sprintf("%8s %-9s sites=%d,%d", fmtAt(e.At), e.Kind, e.A, e.B)
	case "stall":
		return fmt.Sprintf("%8s %-9s site=%d stall=%s", fmtAt(e.At), e.Kind, e.A, e.Dur)
	case "unstall":
		return fmt.Sprintf("%8s %-9s site=%d", fmtAt(e.At), e.Kind, e.A)
	case "spike":
		return fmt.Sprintf("%8s %-9s link=%d->%d delay=%s", fmtAt(e.At), e.Kind, e.A, e.B, e.Dur)
	case "calm":
		return fmt.Sprintf("%8s %-9s link=%d->%d", fmtAt(e.At), e.Kind, e.A, e.B)
	case "ghost":
		return fmt.Sprintf("%8s %-9s from=%d to=%d", fmtAt(e.At), e.Kind, e.A, e.B)
	}
	return fmt.Sprintf("%8s %s", fmtAt(e.At), e.Kind)
}

func fmtAt(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// Schedule is a fault plan sorted by offset into the fault phase.
type Schedule []Event

// String renders the whole schedule, one event per line — the
// byte-identical replay artifact: two expansions of the same
// (scenario, seed) produce equal strings.
func (s Schedule) String() string {
	var b strings.Builder
	for _, e := range s {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Expand derives the scenario's fault schedule from the seed — a pure
// function: no wall clock, no global randomness. Crash events respect
// the quorum budget (at most (Sites-1)/2 sites down at any scheduled
// moment), so the schedule can never take the group below a live
// majority by itself.
func Expand(sc Scenario, seed int64) Schedule {
	rng := rand.New(rand.NewSource(seed))
	var out Schedule
	if sc.Events <= 0 || len(sc.Faults) == 0 {
		return out
	}
	maxDown := (sc.Sites - 1) / 2
	// Virtual-time occupancy of each disturbance, so victims are chosen
	// against what the schedule itself has pending.
	crashedUntil := make([]time.Duration, sc.Sites)
	stalledUntil := make([]time.Duration, sc.Sites)
	type pair struct{ a, b int }
	partedUntil := make(map[pair]time.Duration)
	spikedUntil := make(map[pair]time.Duration)

	jitter := func(min, max time.Duration) time.Duration {
		return min + time.Duration(rng.Int63n(int64(max-min)))
	}
	for k := 0; k < sc.Events; k++ {
		at := time.Duration(float64(sc.Duration) * (float64(k) + rng.Float64()) / float64(sc.Events))
		class := sc.Faults[rng.Intn(len(sc.Faults))]
		switch class {
		case Crash:
			down := 0
			for _, until := range crashedUntil {
				if until > at {
					down++
				}
			}
			budget := maxDown
			if sc.AutoReplace > 0 {
				// Self-healed crashes are strictly serial in the plan:
				// the model cannot know how long a real replacement
				// takes, and overlapping crashes that both outrun the
				// model could cost the quorum auto-replace itself needs
				// to commit the configuration change.
				budget = 1
			}
			victim := pickSite(rng, sc.Sites, func(i int) bool { return crashedUntil[i] <= at })
			if victim < 0 || down >= budget {
				continue
			}
			out = append(out, Event{At: at, Kind: "crash", A: victim, B: -1, Class: Crash})
			if sc.AutoReplace > 0 {
				// The cluster heals itself; budget the outage as the
				// window plus generous detection and rebuild slack.
				crashedUntil[victim] = at + sc.AutoReplace + 4*time.Second
			} else {
				up := at + jitter(500*time.Millisecond, 1500*time.Millisecond)
				crashedUntil[victim] = up
				out = append(out, Event{At: up, Kind: "restart", A: victim, B: -1, Class: Crash})
			}
		case Partition:
			a := pickSite(rng, sc.Sites, func(i int) bool { return crashedUntil[i] <= at })
			b := pickSite(rng, sc.Sites, func(i int) bool { return crashedUntil[i] <= at && i != a })
			if a < 0 || b < 0 {
				continue
			}
			if a > b {
				a, b = b, a
			}
			if partedUntil[pair{a, b}] > at {
				continue
			}
			heal := at + jitter(300*time.Millisecond, 1500*time.Millisecond)
			partedUntil[pair{a, b}] = heal
			out = append(out, Event{At: at, Kind: "partition", A: a, B: b, Class: Partition})
			out = append(out, Event{At: heal, Kind: "heal", A: a, B: b, Class: Partition})
		case SlowDisk:
			victim := pickSite(rng, sc.Sites, func(i int) bool {
				return crashedUntil[i] <= at && stalledUntil[i] <= at
			})
			if victim < 0 {
				continue
			}
			stall := jitter(20*time.Millisecond, 120*time.Millisecond)
			clear := at + jitter(500*time.Millisecond, 2*time.Second)
			stalledUntil[victim] = clear
			out = append(out, Event{At: at, Kind: "stall", A: victim, B: -1, Dur: stall, Class: SlowDisk})
			out = append(out, Event{At: clear, Kind: "unstall", A: victim, B: -1, Class: SlowDisk})
		case DelaySpike:
			from := rng.Intn(sc.Sites)
			to := rng.Intn(sc.Sites)
			if from == to || spikedUntil[pair{from, to}] > at {
				continue
			}
			delay := jitter(100*time.Millisecond, 400*time.Millisecond)
			calm := at + jitter(500*time.Millisecond, 1500*time.Millisecond)
			spikedUntil[pair{from, to}] = calm
			out = append(out, Event{At: at, Kind: "spike", A: from, B: to, Dur: delay, Class: DelaySpike})
			out = append(out, Event{At: calm, Kind: "calm", A: from, B: to, Class: DelaySpike})
		case Ghost:
			// Source preferably a site the schedule has down right now;
			// the runner skips the injection if it is live after all.
			from := pickSite(rng, sc.Sites, func(i int) bool { return crashedUntil[i] > at })
			if from < 0 {
				from = rng.Intn(sc.Sites)
			}
			to := pickSite(rng, sc.Sites, func(i int) bool { return i != from && crashedUntil[i] <= at })
			if to < 0 {
				continue
			}
			out = append(out, Event{At: at, Kind: "ghost", A: from, B: to, Class: Ghost})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// pickSite returns a random site satisfying ok, or -1. One rng draw per
// call (a shifted scan from a random start), so schedule expansion
// consumes randomness in a fixed pattern.
func pickSite(rng *rand.Rand, n int, ok func(int) bool) int {
	start := rng.Intn(n)
	for i := 0; i < n; i++ {
		s := (start + i) % n
		if ok(s) {
			return s
		}
	}
	return -1
}
