package chaos

import "time"

// Scenarios is the shipped scenario matrix. quick selects the smoke
// subset (small clusters, short phases) used by -quick runs and CI; the
// full set adds the wide WAN and large-cluster scenarios.
func Scenarios(quick bool) []Scenario {
	all := []Scenario{
		{
			Name:     "crash-rejoin",
			Sites:    5,
			Duration: 4 * time.Second,
			Events:   6,
			Faults:   []FaultClass{Crash},
			Quick:    true,
		},
		{
			Name:     "partition-heal",
			Sites:    5,
			Duration: 4 * time.Second,
			Events:   8,
			Faults:   []FaultClass{Partition},
			Quick:    true,
		},
		{
			Name:     "slow-disk",
			Sites:    3,
			Duration: 4 * time.Second,
			Events:   6,
			Faults:   []FaultClass{SlowDisk},
			Quick:    true,
		},
		{
			Name:         "wan-jitter",
			Sites:        9,
			Regions:      3,
			RegionRTT:    30 * time.Millisecond,
			RegionJitter: 5 * time.Millisecond,
			Loss:         0.02,
			Duration:     5 * time.Second,
			Events:       8,
			Faults:       []FaultClass{DelaySpike},
		},
		{
			Name:        "auto-replace",
			Sites:       5,
			Duration:    5 * time.Second,
			Events:      3,
			Faults:      []FaultClass{Crash},
			AutoReplace: 300 * time.Millisecond,
		},
		{
			Name:     "ghost-replay",
			Sites:    5,
			Duration: 4 * time.Second,
			Events:   10,
			Faults:   []FaultClass{Crash, Ghost},
		},
		{
			Name:       "everything",
			Sites:      10,
			Shards:     2,
			Regions:    2,
			RegionRTT:  10 * time.Millisecond,
			Loss:       0.01,
			Duration:   6 * time.Second,
			Events:     14,
			Faults:     []FaultClass{Crash, Partition, SlowDisk, DelaySpike, Ghost},
			CrossShard: 0.2,
		},
		{
			Name:         "wan-wide",
			Sites:        24,
			Shards:       2,
			Regions:      3,
			RegionRTT:    40 * time.Millisecond,
			RegionJitter: 8 * time.Millisecond,
			Loss:         0.02,
			Duration:     8 * time.Second,
			Events:       20,
			Faults:       []FaultClass{Crash, Partition, DelaySpike},
			CrossShard:   0.1,
		},
	}
	if !quick {
		return all
	}
	var out []Scenario
	for _, sc := range all {
		if sc.Quick {
			out = append(out, sc)
		}
	}
	return out
}

// Find returns the shipped scenario with the given name.
func Find(name string) (Scenario, bool) {
	for _, sc := range Scenarios(false) {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// DeterminismScenario is the closed-plan scenario the same-seed
// determinism check replays: a fixed transaction budget retried to
// completion, so two runs of one seed end in byte-identical fault
// schedules and identical state digests.
func DeterminismScenario() Scenario {
	return Scenario{
		Name:      "determinism",
		Sites:     5,
		Duration:  3 * time.Second,
		Events:    6,
		Faults:    []FaultClass{Crash, Partition, SlowDisk},
		FixedTxns: 30,
		Quick:     true,
	}
}
