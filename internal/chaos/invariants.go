package chaos

import (
	"fmt"
	"sort"
)

// The invariant checkers are pure functions over observations collected
// by a run, so they unit-test directly against fabricated violations.
// Each returns human-readable violation strings (empty = invariant
// holds).

// CheckDigestConvergence requires every surviving site of each shard to
// report the same state digest. digests is shard → site → digest.
func CheckDigestConvergence(digests map[int]map[int]uint64) []string {
	var out []string
	for _, g := range sortedKeys(digests) {
		sites := digests[g]
		var ref uint64
		refSite := -1
		for _, s := range sortedKeys(sites) {
			if refSite < 0 {
				ref, refSite = sites[s], s
				continue
			}
			if sites[s] != ref {
				out = append(out, fmt.Sprintf(
					"digest divergence: shard %d site %d digest %016x != site %d digest %016x",
					g, s, sites[s], refSite, ref))
			}
		}
	}
	return out
}

// Committed names one (submission, class) effect an acknowledgement
// promised: a multi-class submission contributes one entry per class.
type Committed struct {
	ID    string
	Class string
}

// CheckAckedDurability requires every acknowledged submission to be
// present in the final state: present reports whether the id's marker
// row survives in the class. An acknowledgement the cluster later
// forgot is a lost commit.
func CheckAckedDurability(acked []Committed, present func(class, id string) bool) []string {
	sorted := append([]Committed(nil), acked...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Class != sorted[j].Class {
			return sorted[i].Class < sorted[j].Class
		}
		return sorted[i].ID < sorted[j].ID
	})
	var out []string
	for _, a := range sorted {
		if !present(a.Class, a.ID) {
			out = append(out, fmt.Sprintf("lost acked commit: id %s (class %s) has no marker in the final state", a.ID, a.Class))
		}
	}
	return out
}

// CheckEffectOnce requires each class's commutative counter to equal the
// number of distinct committed submissions of the class: sums maps
// class → final counter, markers maps class → count of marker rows
// found. The workload increments the counter only on first application
// of an id, so sum > markers means some submission's effect was applied
// more than once (a retried submission double-committed), and
// sum < markers means an applied marker skipped its increment.
func CheckEffectOnce(sums, markers map[string]int64) []string {
	var out []string
	for _, class := range sortedKeys(sums) {
		if sums[class] != markers[class] {
			out = append(out, fmt.Sprintf(
				"effect-once violation: class %s counter=%d but %d distinct committed submissions",
				class, sums[class], markers[class]))
		}
	}
	for _, class := range sortedKeys(markers) {
		if _, ok := sums[class]; !ok && markers[class] != 0 {
			out = append(out, fmt.Sprintf(
				"effect-once violation: class %s has %d markers but no counter", class, markers[class]))
		}
	}
	return out
}

// CheckEpochMonotonic requires every observed per-site, per-shard epoch
// sequence to be non-decreasing, and all sites of a shard to end at the
// same epoch. samples maps "site/shard" label → the polled epoch
// sequence in observation order.
func CheckEpochMonotonic(samples map[string][]uint64) []string {
	var out []string
	final := make(map[string]map[string]uint64) // shard part → label → last
	for _, label := range sortedKeys(samples) {
		seq := samples[label]
		for i := 1; i < len(seq); i++ {
			if seq[i] < seq[i-1] {
				out = append(out, fmt.Sprintf(
					"epoch regression: %s observed %d then %d", label, seq[i-1], seq[i]))
				break
			}
		}
		if len(seq) == 0 {
			continue
		}
		shard := shardOfLabel(label)
		if final[shard] == nil {
			final[shard] = make(map[string]uint64)
		}
		final[shard][label] = seq[len(seq)-1]
	}
	for _, shard := range sortedKeys(final) {
		labels := final[shard]
		var ref uint64
		refLabel := ""
		for _, l := range sortedKeys(labels) {
			if refLabel == "" {
				ref, refLabel = labels[l], l
				continue
			}
			if labels[l] != ref {
				out = append(out, fmt.Sprintf(
					"epoch divergence: %s ended at %d but %s at %d", l, labels[l], refLabel, ref))
			}
		}
	}
	return out
}

// EpochLabel builds the sample key CheckEpochMonotonic groups by.
func EpochLabel(site, shard int) string { return fmt.Sprintf("site%d/shard%d", site, shard) }

func shardOfLabel(label string) string {
	for i := 0; i < len(label); i++ {
		if label[i] == '/' {
			return label[i+1:]
		}
	}
	return label
}

func sortedKeys[K int | string, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
