package chaos

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"otpdb"
	"otpdb/internal/events"
	"otpdb/internal/transport"
)

// Options configures a Run.
type Options struct {
	// Out receives progress lines (nil = silent).
	Out io.Writer
	// Events, when non-nil, is the flight recorder the run feeds: the
	// cluster's causal transitions (epoch changes, suspicions,
	// replacements, transfers) plus the harness's own fault injections
	// and repairs. When nil the run creates a private one, so dump-on-
	// violation works either way.
	Events *events.Recorder
	// DumpDir, when non-empty, receives a flight-recorder dump
	// (flight-<scenario>-<seed>.json) whenever the run ends with
	// invariant violations — the post-mortem artifact CI uploads.
	DumpDir string
}

// RecoveryStat aggregates recovery times for one fault class: the time
// from fault injection until the affected site acknowledged its first
// commit after repair began.
type RecoveryStat struct {
	Events    int     `json:"events"`
	Recovered int     `json:"recovered"`
	MeanMs    float64 `json:"mean_ms"`
	MaxMs     float64 `json:"max_ms"`
}

// Result is the outcome of one scenario run.
type Result struct {
	Scenario     string                  `json:"scenario"`
	Seed         int64                   `json:"seed"`
	Sites        int                     `json:"sites"`
	Shards       int                     `json:"shards"`
	Pass         bool                    `json:"pass"`
	Violations   []string                `json:"violations,omitempty"`
	ScheduleText string                  `json:"-"`
	Events       int                     `json:"events"`
	Submitted    int                     `json:"submitted"`
	Acked        int                     `json:"acked"`
	Resubmits    int                     `json:"resubmits"`
	Availability float64                 `json:"availability"`
	Recovery     map[string]RecoveryStat `json:"recovery,omitempty"`
	// Digests is the converged per-shard state digest — the cross-run
	// comparison point of the determinism check.
	Digests map[int]uint64 `json:"digests,omitempty"`
	// Replacements reports the auto-replacement rounds the cluster won
	// during the run, splitting detection hysteresis from repair cost.
	Replacements []ReplacementMs `json:"replacements,omitempty"`
	// FlightDump is the path of the flight-recorder dump written when
	// the run ended with violations (empty otherwise).
	FlightDump string  `json:"flight_dump,omitempty"`
	ElapsedSec float64 `json:"elapsed_sec"`
}

// msBetween is the span from a to b in milliseconds.
func msBetween(a, b time.Time) float64 { return float64(b.Sub(a)) / float64(time.Millisecond) }

// ReplacementMs is one auto-replacement's phase timing: Detect is the
// sustained-suspicion window the winning survivor waited before acting
// (the WithAutoReplace hysteresis), Rebuild is everything after —
// membership commits through every shard group plus the state transfer
// that rebuilt the replacement (zero when the rebuild failed).
type ReplacementMs struct {
	Site      int     `json:"site"`
	DetectMs  float64 `json:"detect_ms"`
	RebuildMs float64 `json:"rebuild_ms"`
}

// anchor tracks one disruptive event for the recovery metric.
type anchor struct {
	class    FaultClass
	site     int
	faultAt  time.Time
	repairAt time.Time // zero until repaired
}

// Run executes one scenario at one seed: build the cluster and
// topology, drive the workload and the expanded fault schedule, repair
// everything, wait for convergence, and audit the invariants. The
// returned Result reports pass/fail plus availability and recovery
// metrics; err is reserved for harness failures (a cluster that will
// not even start), not invariant violations.
func Run(sc Scenario, seed int64, opt Options) (*Result, error) {
	res, c, err := RunKeep(sc, seed, opt)
	if c != nil {
		c.Stop()
	}
	return res, err
}

// RunKeep is Run, but hands the (still running) cluster back for
// post-mortem inspection — reading divergent rows, dumping engines —
// instead of stopping it. The caller owns Stop. The cluster is non-nil
// exactly when err is nil.
func RunKeep(sc Scenario, seed int64, opt Options) (*Result, *otpdb.Cluster, error) {
	start := time.Now()
	logf := func(format string, args ...any) {
		if opt.Out != nil {
			fmt.Fprintf(opt.Out, format+"\n", args...)
		}
	}
	shards := sc.Shards
	if shards < 1 {
		shards = 1
	}
	sched := Expand(sc, seed)
	res := &Result{
		Scenario: sc.Name, Seed: seed, Sites: sc.Sites, Shards: shards,
		ScheduleText: sched.String(), Events: len(sched),
		Recovery: make(map[string]RecoveryStat),
	}
	logf("chaos %s: seed=%d sites=%d shards=%d events=%d", sc.Name, seed, sc.Sites, shards, len(sched))

	flight := opt.Events
	if flight == nil {
		flight = events.NewRecorder(4096)
	}

	w := newWorkload(sc, shards)
	copts := []otpdb.Option{
		otpdb.WithReplicas(sc.Sites),
		otpdb.WithShards(shards),
		otpdb.WithSeed(seed),
		otpdb.WithNetworkDelay(200 * time.Microsecond),
		otpdb.WithNetworkJitter(300 * time.Microsecond),
		otpdb.WithEvents(flight),
	}
	if sc.AutoReplace > 0 {
		copts = append(copts, otpdb.WithAutoReplace(sc.AutoReplace))
	}
	c, err := otpdb.NewCluster(copts...)
	if err != nil {
		return nil, nil, err
	}
	w.register(c)
	if err := c.Start(); err != nil {
		return nil, nil, err
	}
	if sc.Regions > 1 {
		installTopology(c, sc, seed)
	}

	// Warm-up: one commit per class so every shard has traffic before
	// faults begin.
	warmCtx, cancelWarm := context.WithTimeout(context.Background(), 30*time.Second)
	for _, class := range w.classes {
		if err := c.Exec(warmCtx, 0, "apply-"+class, otpdb.String("warm-"+class)); err != nil {
			cancelWarm()
			c.Stop()
			return nil, nil, fmt.Errorf("chaos: warm-up: %w", err)
		}
	}
	cancelWarm()

	// Fault phase: submitters, epoch monitor and the schedule run
	// concurrently.
	rec := newRecorder()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < sc.Sites; s++ {
		wg.Add(1)
		go submitter(c, w, sc, s, seed, rec, stop, &wg)
	}
	mon := startEpochMonitor(c, sc.Sites, shards)
	phaseStart := time.Now()
	anchors := runSchedule(c, sc, seed, sched, flight, logf)
	phaseEnd := time.Now()

	// Repair everything the schedule left open, then drain the workload.
	repairViolations := repairAll(c, sc, seed, anchors, flight, logf)
	close(stop)
	if !waitGroupWithin(&wg, 90*time.Second) {
		repairViolations = append(repairViolations, "workload did not drain within 90s of repairs")
	}
	mon.stop()

	// Convergence: all live sites agree and the epochs settle.
	if v := waitConverged(c, 90*time.Second, logf); v != "" {
		repairViolations = append(repairViolations, v)
	}

	// Audit.
	violations := repairViolations
	violations = append(violations, auditState(c, sc, shards, w, rec)...)
	violations = append(violations, CheckEpochMonotonic(mon.samples)...)
	res.Digests = make(map[int]uint64)
	for g := 0; g < shards; g++ {
		for s := 0; s < sc.Sites; s++ {
			if d, err := c.ShardDigest(s, g); err == nil {
				res.Digests[g] = d
				break
			}
		}
	}

	res.Violations = violations
	res.Pass = len(violations) == 0
	if !res.Pass {
		// The run failed an invariant: seal the causal log. Violations go
		// in first so the dump is self-describing, then the whole ring is
		// written as the post-mortem artifact.
		for _, v := range violations {
			flight.Record(-1, events.KindViolation, "check", v)
		}
		if opt.DumpDir != "" {
			path := filepath.Join(opt.DumpDir, fmt.Sprintf("flight-%s-%d.json", sc.Name, seed))
			if werr := os.WriteFile(path, flight.DumpJSON(), 0o644); werr == nil {
				res.FlightDump = path
				logf("chaos %s: flight recorder dumped to %s", sc.Name, path)
			} else {
				logf("chaos %s: flight dump failed: %v", sc.Name, werr)
			}
		}
	}
	rec.mu.Lock()
	res.Submitted = len(rec.ids)
	res.Acked = len(rec.acked)
	res.Resubmits = rec.resubmits
	acks := append([]ackPoint(nil), rec.acks...)
	rec.mu.Unlock()
	res.Availability = availability(acks, phaseStart, phaseEnd)
	res.Recovery = recoveryStats(anchors, acks)
	for _, r := range c.Replacements() {
		rm := ReplacementMs{Site: r.Victim, DetectMs: msBetween(r.SuspectedAt, r.DetectedAt)}
		if !r.RebuiltAt.IsZero() {
			rm.RebuildMs = msBetween(r.DetectedAt, r.RebuiltAt)
		}
		res.Replacements = append(res.Replacements, rm)
	}
	res.ElapsedSec = time.Since(start).Seconds()
	logf("chaos %s: pass=%v acked=%d/%d resubmits=%d availability=%.3f elapsed=%.1fs",
		sc.Name, res.Pass, res.Acked, res.Submitted, res.Resubmits, res.Availability, res.ElapsedSec)
	for _, v := range violations {
		logf("chaos %s: VIOLATION: %s", sc.Name, v)
	}
	return res, c, nil
}

// installTopology lays the WAN RTT matrix over every inter-region
// directed link. The per-direction asymmetry factors come from their
// own deterministic rng, consumed in fixed (from, to) order — part of
// the scenario's reproducibility contract.
func installTopology(c *otpdb.Cluster, sc Scenario, seed int64) {
	rng := rand.New(rand.NewSource(seed + 1))
	f := c.Fault()
	for from := 0; from < sc.Sites; from++ {
		for to := 0; to < sc.Sites; to++ {
			if from == to || sc.Region(from) == sc.Region(to) {
				continue
			}
			factor := 0.8 + 0.4*rng.Float64() // asymmetric per direction
			p := transport.LinkProfile{
				Delay:  time.Duration(float64(sc.RegionRTT/2) * factor),
				Jitter: sc.RegionJitter,
				Loss:   sc.Loss,
			}
			_ = f.SetLink(from, to, p)
		}
	}
}

// baseProfile reports the link's standing profile so a delay spike can
// be calmed back to it (zero Delay means "no override": clear instead).
func baseProfile(sc Scenario, seed int64, from, to int) (transport.LinkProfile, bool) {
	if sc.Regions <= 1 || sc.Region(from) == sc.Region(to) {
		return transport.LinkProfile{}, false
	}
	// Re-derive the same factor installTopology drew: replay its rng up
	// to this link.
	rng := rand.New(rand.NewSource(seed + 1))
	for f := 0; f < sc.Sites; f++ {
		for t := 0; t < sc.Sites; t++ {
			if f == t || sc.Region(f) == sc.Region(t) {
				continue
			}
			factor := 0.8 + 0.4*rng.Float64()
			if f == from && t == to {
				return transport.LinkProfile{
					Delay:  time.Duration(float64(sc.RegionRTT/2) * factor),
					Jitter: sc.RegionJitter,
					Loss:   sc.Loss,
				}, true
			}
		}
	}
	return transport.LinkProfile{}, false
}

// runSchedule applies the expanded schedule in real time and returns
// the recovery anchors of the disruptive events. Restarts run async so
// a slow rejoin cannot skew later event times; their completions are
// joined before returning.
func runSchedule(c *otpdb.Cluster, sc Scenario, seed int64, sched Schedule, flight *events.Recorder, logf func(string, ...any)) []*anchor {
	f := c.Fault()
	start := time.Now()
	var anchors []*anchor
	openCrash := make(map[int]*anchor)
	openStall := make(map[int]*anchor)
	openPart := make(map[[2]int]*anchor)
	var restarts sync.WaitGroup
	for _, e := range sched {
		if wait := e.At - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		// Heals and un-stalls are repairs; everything else the schedule
		// injects is a fault. Both sides land in the causal log so a
		// post-mortem can line cluster transitions up against what the
		// harness was doing to it.
		kind := events.KindFault
		if e.Kind == "restart" || e.Kind == "heal" || e.Kind == "unstall" || e.Kind == "calm" {
			kind = events.KindRepair
		}
		flight.Record(e.A, kind, "what", e.Kind, "b", strconv.Itoa(e.B))
		now := time.Now()
		switch e.Kind {
		case "crash":
			if err := c.CrashSite(e.A); err != nil {
				logf("chaos: crash site %d: %v", e.A, err)
				continue
			}
			a := &anchor{class: Crash, site: e.A, faultAt: now}
			if sc.AutoReplace > 0 {
				// Self-healing starts at the crash; recovery time will
				// include detection, replacement and rebuild.
				a.repairAt = now
			}
			openCrash[e.A] = a
			anchors = append(anchors, a)
		case "restart":
			a := openCrash[e.A]
			delete(openCrash, e.A)
			site := e.A
			restarts.Add(1)
			go func() {
				defer restarts.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				defer cancel()
				if err := c.RestartSite(ctx, site); err != nil {
					logf("chaos: restart site %d: %v", site, err)
					return
				}
				if a != nil {
					a.repairAt = time.Now()
				}
			}()
		case "partition":
			_ = f.Partition(e.A, e.B)
			a := &anchor{class: Partition, site: e.A, faultAt: now}
			openPart[[2]int{e.A, e.B}] = a
			anchors = append(anchors, a)
		case "heal":
			_ = f.Heal(e.A, e.B)
			if a := openPart[[2]int{e.A, e.B}]; a != nil {
				a.repairAt = time.Now()
				delete(openPart, [2]int{e.A, e.B})
			}
		case "stall":
			if err := f.StallCommits(e.A, e.Dur); err == nil {
				a := &anchor{class: SlowDisk, site: e.A, faultAt: now}
				openStall[e.A] = a
				anchors = append(anchors, a)
			}
		case "unstall":
			_ = f.StallCommits(e.A, 0)
			if a := openStall[e.A]; a != nil {
				a.repairAt = time.Now()
				delete(openStall, e.A)
			}
		case "spike":
			_ = f.SetLink(e.A, e.B, transport.LinkProfile{Delay: e.Dur, Jitter: e.Dur / 2})
		case "calm":
			if p, ok := baseProfile(sc, seed, e.A, e.B); ok {
				_ = f.SetLink(e.A, e.B, p)
			} else {
				_ = f.ClearLink(e.A, e.B)
			}
		case "ghost":
			for _, s := range c.CrashedSites() {
				if s == e.A {
					_ = f.GhostHeartbeat(e.A, e.B)
					break
				}
			}
		}
	}
	restarts.Wait()
	return anchors
}

// repairAll closes whatever the schedule left open at phase end: heal
// partitions, clear links and stalls, and bring every crashed site
// back — by waiting for auto-replace when the scenario armed it (its
// acceptance criterion), by RestartSite otherwise. Returns violations.
func repairAll(c *otpdb.Cluster, sc Scenario, seed int64, anchors []*anchor, flight *events.Recorder, logf func(string, ...any)) []string {
	var out []string
	f := c.Fault()
	flight.Record(-1, events.KindRepair, "what", "heal-all")
	_ = f.HealAll()
	_ = f.ClearLinks()
	if sc.Regions > 1 {
		installTopology(c, sc, seed)
	}
	for i := 0; i < sc.Sites; i++ {
		_ = f.StallCommits(i, 0)
	}
	now := time.Now()
	for _, a := range anchors {
		if a.repairAt.IsZero() {
			a.repairAt = now
		}
	}
	if sc.AutoReplace > 0 {
		deadline := time.Now().Add(20*sc.AutoReplace + 15*time.Second)
		for len(c.CrashedSites()) > 0 && time.Now().Before(deadline) {
			time.Sleep(50 * time.Millisecond)
		}
		if down := c.CrashedSites(); len(down) > 0 {
			out = append(out, fmt.Sprintf("auto-replace did not heal sites %v without operator action", down))
			for _, s := range down {
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				if err := c.RestartSite(ctx, s); err != nil {
					logf("chaos: fallback restart %d: %v", s, err)
				}
				cancel()
			}
		}
	} else {
		for _, s := range c.CrashedSites() {
			var err error
			for attempt := 0; attempt < 3; attempt++ {
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				err = c.RestartSite(ctx, s)
				cancel()
				if err == nil {
					break
				}
			}
			if err != nil {
				out = append(out, fmt.Sprintf("site %d could not be restarted after the run: %v", s, err))
			}
		}
	}
	return out
}

// waitConverged polls until every live site agrees per shard, returning
// a violation string on deadline.
func waitConverged(c *otpdb.Cluster, d time.Duration, logf func(string, ...any)) string {
	deadline := time.Now().Add(d)
	for {
		ok, err := c.Converged()
		if err == nil && ok {
			return ""
		}
		if time.Now().After(deadline) {
			for s := 0; s < c.Size(); s++ {
				if dump, derr := c.DumpEngine(s); derr == nil {
					logf("chaos: engine site %d: %s", s, dump)
				}
			}
			return fmt.Sprintf("live sites did not converge within %s of repairs", d)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// auditState runs the state invariants against a live reference site.
func auditState(c *otpdb.Cluster, sc Scenario, shards int, w *workload, rec *recorder) []string {
	var out []string
	// Digest convergence across survivors, per shard.
	digests := make(map[int]map[int]uint64)
	for g := 0; g < shards; g++ {
		digests[g] = make(map[int]uint64)
		for s := 0; s < sc.Sites; s++ {
			if d, err := c.ShardDigest(s, g); err == nil {
				digests[g][s] = d
			}
		}
	}
	out = append(out, CheckDigestConvergence(digests)...)

	// One live reference site for row reads (digest equality extends
	// its answers to every survivor).
	ref := 0
	down := make(map[int]bool)
	for _, s := range c.CrashedSites() {
		down[s] = true
	}
	for s := 0; s < sc.Sites; s++ {
		if !down[s] {
			ref = s
			break
		}
	}
	present := func(class, id string) bool {
		_, ok, err := c.Read(ref, otpdb.Class(class), markerKey(id))
		return err == nil && ok
	}
	out = append(out, CheckAckedDurability(rec.ackedCommitted(), present)...)

	// Effect-once: each class's counter vs its distinct committed ids.
	rec.mu.Lock()
	ids := make(map[string][]string, len(rec.ids))
	for id, classes := range rec.ids {
		ids[id] = classes
	}
	rec.mu.Unlock()
	sums := make(map[string]int64)
	markers := make(map[string]int64)
	for _, class := range w.classes {
		v, _, err := c.Read(ref, otpdb.Class(class), "sum")
		if err == nil {
			sums[class] = otpdb.AsInt64(v)
		}
		// Warm-up rows count too: one per class.
		if present(class, "warm-"+class) {
			markers[class]++
		}
	}
	for id, classes := range ids {
		for _, class := range classes {
			if present(class, id) {
				markers[class]++
			}
		}
	}
	out = append(out, CheckEffectOnce(sums, markers)...)
	if err := c.CheckInvariants(); err != nil {
		out = append(out, fmt.Sprintf("cluster invariants: %v", err))
	}
	return out
}

// epochMonitor samples every (site, shard) epoch until stopped.
type epochMonitor struct {
	samples map[string][]uint64
	stopCh  chan struct{}
	done    chan struct{}
}

func startEpochMonitor(c *otpdb.Cluster, sites, shards int) *epochMonitor {
	m := &epochMonitor{
		samples: make(map[string][]uint64),
		stopCh:  make(chan struct{}),
		done:    make(chan struct{}),
	}
	go func() {
		defer close(m.done)
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-m.stopCh:
				return
			case <-tick.C:
			}
			down := make(map[int]bool)
			for _, s := range c.CrashedSites() {
				down[s] = true
			}
			for s := 0; s < sites; s++ {
				if down[s] {
					// A crashed site's frozen tracker is stale by
					// definition; its post-rebuild epoch re-enters the
					// sequence when it is live again.
					continue
				}
				for g := 0; g < shards; g++ {
					if e, err := c.ShardEpoch(s, g); err == nil {
						label := EpochLabel(s, g)
						m.samples[label] = append(m.samples[label], e)
					}
				}
			}
		}
	}()
	return m
}

func (m *epochMonitor) stop() {
	close(m.stopCh)
	<-m.done
}

// availability is the fraction of 100 ms buckets of the fault phase in
// which at least one commit was acknowledged somewhere.
func availability(acks []ackPoint, from, to time.Time) float64 {
	const bucket = 100 * time.Millisecond
	n := int(to.Sub(from) / bucket)
	if n <= 0 {
		return 1
	}
	seen := make([]bool, n)
	for _, a := range acks {
		if a.at.Before(from) || !a.at.Before(to) {
			continue
		}
		idx := int(a.at.Sub(from) / bucket)
		if idx >= n {
			idx = n - 1 // the truncated tail fraction of the phase
		}
		seen[idx] = true
	}
	hit := 0
	for _, s := range seen {
		if s {
			hit++
		}
	}
	return float64(hit) / float64(n)
}

// recoveryStats computes, per fault class, how long the affected site
// took from fault injection to its first acknowledged commit after
// repair began.
func recoveryStats(anchors []*anchor, acks []ackPoint) map[string]RecoveryStat {
	sort.Slice(acks, func(i, j int) bool { return acks[i].at.Before(acks[j].at) })
	out := make(map[string]RecoveryStat)
	for _, a := range anchors {
		st := out[string(a.class)]
		st.Events++
		for _, p := range acks {
			if p.site != a.site || p.at.Before(a.repairAt) {
				continue
			}
			ms := float64(p.at.Sub(a.faultAt)) / float64(time.Millisecond)
			st.Recovered++
			st.MeanMs += ms // sum for now; normalized below
			if ms > st.MaxMs {
				st.MaxMs = ms
			}
			break
		}
		out[string(a.class)] = st
	}
	for k, st := range out {
		if st.Recovered > 0 {
			st.MeanMs /= float64(st.Recovered)
		}
		out[k] = st
	}
	return out
}

func waitGroupWithin(wg *sync.WaitGroup, d time.Duration) bool {
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
		return true
	case <-time.After(d):
		return false
	}
}
