package chaos

import (
	"strings"
	"testing"
	"time"
)

// quickScenario shrinks a shipped scenario for unit-test runtimes.
func quickScenario(t *testing.T, name string) Scenario {
	t.Helper()
	sc, ok := Find(name)
	if !ok {
		t.Fatalf("no shipped scenario %q", name)
	}
	sc.Duration = 2 * time.Second
	if sc.Events > 5 {
		sc.Events = 5
	}
	return sc
}

// TestExpandDeterministic: the schedule is a pure function of
// (scenario, seed) — two expansions are byte-identical, and a different
// seed actually changes the plan.
func TestExpandDeterministic(t *testing.T) {
	for _, sc := range Scenarios(false) {
		a := Expand(sc, 42).String()
		b := Expand(sc, 42).String()
		if a != b {
			t.Fatalf("%s: same seed expanded two different schedules:\n%s\n---\n%s", sc.Name, a, b)
		}
		c := Expand(sc, 43).String()
		if a == c && len(a) > 0 {
			t.Fatalf("%s: seeds 42 and 43 expanded identical schedules", sc.Name)
		}
	}
}

// TestExpandRespectsQuorumBudget: replaying any expanded schedule in
// virtual time never has more than (Sites-1)/2 sites crashed at once,
// so the schedule alone cannot destroy the live majority.
func TestExpandRespectsQuorumBudget(t *testing.T) {
	for _, sc := range Scenarios(false) {
		for seed := int64(0); seed < 20; seed++ {
			sched := Expand(sc, seed)
			down := make(map[int]time.Duration) // site → model heal time
			for _, e := range sched {
				if e.Kind != "crash" && e.Kind != "restart" {
					continue
				}
				for s, until := range down {
					if until <= e.At {
						delete(down, s)
					}
				}
				switch e.Kind {
				case "crash":
					if _, dup := down[e.A]; dup {
						t.Fatalf("%s seed %d: crash of already-crashed site %d", sc.Name, seed, e.A)
					}
					if sc.AutoReplace > 0 {
						// Self-healed crashes must be strictly serial.
						if len(down) != 0 {
							t.Fatalf("%s seed %d: overlapping auto-replace crashes:\n%s", sc.Name, seed, sched)
						}
						down[e.A] = e.At + sc.AutoReplace + 4*time.Second
					} else {
						down[e.A] = sc.Duration * 1000 // until its restart event
					}
					if len(down) > (sc.Sites-1)/2 {
						t.Fatalf("%s seed %d: %d sites down simultaneously with %d sites total:\n%s",
							sc.Name, seed, len(down), sc.Sites, sched)
					}
				case "restart":
					delete(down, e.A)
				}
			}
			if sc.AutoReplace == 0 {
				if len(down) != 0 {
					t.Fatalf("%s seed %d: schedule ends with unrepaired crashes %v", sc.Name, seed, down)
				}
			}
		}
	}
}

// TestExpandPairsRepairs: every partition/stall/spike has its matching
// repair event later in the schedule.
func TestExpandPairsRepairs(t *testing.T) {
	for _, sc := range Scenarios(false) {
		sched := Expand(sc, 7)
		type key struct {
			kind string
			a, b int
		}
		open := make(map[key]int)
		for _, e := range sched {
			switch e.Kind {
			case "partition":
				open[key{"partition", e.A, e.B}]++
			case "heal":
				open[key{"partition", e.A, e.B}]--
			case "stall":
				open[key{"stall", e.A, -1}]++
			case "unstall":
				open[key{"stall", e.A, -1}]--
			case "spike":
				open[key{"spike", e.A, e.B}]++
			case "calm":
				open[key{"spike", e.A, e.B}]--
			}
		}
		for k, n := range open {
			if n != 0 {
				t.Fatalf("%s: unbalanced %v (count %d):\n%s", sc.Name, k, n, sched)
			}
		}
	}
}

// --- invariant checker units: seeded violations must be caught ---

func TestCheckDigestConvergence(t *testing.T) {
	ok := map[int]map[int]uint64{0: {0: 7, 1: 7, 2: 7}, 1: {0: 9, 1: 9}}
	if v := CheckDigestConvergence(ok); len(v) != 0 {
		t.Fatalf("converged digests flagged: %v", v)
	}
	bad := map[int]map[int]uint64{0: {0: 7, 1: 8, 2: 7}}
	v := CheckDigestConvergence(bad)
	if len(v) != 1 || !strings.Contains(v[0], "shard 0 site 1") {
		t.Fatalf("divergence not caught: %v", v)
	}
}

func TestCheckAckedDurability(t *testing.T) {
	acked := []Committed{{"a", "c0"}, {"b", "c0"}, {"b", "c1"}}
	have := map[string]bool{"c0/a": true, "c0/b": true, "c1/b": true}
	present := func(class, id string) bool { return have[class+"/"+id] }
	if v := CheckAckedDurability(acked, present); len(v) != 0 {
		t.Fatalf("durable acks flagged: %v", v)
	}
	delete(have, "c1/b")
	v := CheckAckedDurability(acked, present)
	if len(v) != 1 || !strings.Contains(v[0], "id b (class c1)") {
		t.Fatalf("lost commit not caught: %v", v)
	}
}

func TestCheckEffectOnce(t *testing.T) {
	if v := CheckEffectOnce(map[string]int64{"c0": 3}, map[string]int64{"c0": 3}); len(v) != 0 {
		t.Fatalf("exact counts flagged: %v", v)
	}
	// Double-applied effect: counter ran ahead of the marker set.
	v := CheckEffectOnce(map[string]int64{"c0": 4}, map[string]int64{"c0": 3})
	if len(v) != 1 || !strings.Contains(v[0], "counter=4") {
		t.Fatalf("double-commit not caught: %v", v)
	}
	// Markers without a counter at all.
	if v := CheckEffectOnce(map[string]int64{}, map[string]int64{"c1": 2}); len(v) != 1 {
		t.Fatalf("orphan markers not caught: %v", v)
	}
}

func TestCheckEpochMonotonic(t *testing.T) {
	ok := map[string][]uint64{
		EpochLabel(0, 0): {1, 1, 2, 2},
		EpochLabel(1, 0): {1, 2, 2},
	}
	if v := CheckEpochMonotonic(ok); len(v) != 0 {
		t.Fatalf("monotone epochs flagged: %v", v)
	}
	regress := map[string][]uint64{EpochLabel(0, 0): {1, 2, 1}}
	if v := CheckEpochMonotonic(regress); len(v) != 1 || !strings.Contains(v[0], "regression") {
		t.Fatalf("regression not caught: %v", v)
	}
	diverge := map[string][]uint64{
		EpochLabel(0, 0): {2},
		EpochLabel(1, 0): {3},
	}
	if v := CheckEpochMonotonic(diverge); len(v) != 1 || !strings.Contains(v[0], "divergence") {
		t.Fatalf("final divergence not caught: %v", v)
	}
	// Different shards may legitimately sit at different epochs.
	perShard := map[string][]uint64{
		EpochLabel(0, 0): {2},
		EpochLabel(0, 1): {1},
	}
	if v := CheckEpochMonotonic(perShard); len(v) != 0 {
		t.Fatalf("cross-shard epoch difference flagged: %v", v)
	}
}

// --- end-to-end scenario smokes ---

func TestRunCrashRejoin(t *testing.T) {
	res, err := Run(quickScenario(t, "crash-rejoin"), 11, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("violations:\n%s\nschedule:\n%s", strings.Join(res.Violations, "\n"), res.ScheduleText)
	}
	if res.Acked == 0 {
		t.Fatal("no commit was ever acknowledged")
	}
}

func TestRunPartitionHeal(t *testing.T) {
	res, err := Run(quickScenario(t, "partition-heal"), 12, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("violations:\n%s\nschedule:\n%s", strings.Join(res.Violations, "\n"), res.ScheduleText)
	}
}

func TestRunSlowDisk(t *testing.T) {
	res, err := Run(quickScenario(t, "slow-disk"), 13, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("violations:\n%s\nschedule:\n%s", strings.Join(res.Violations, "\n"), res.ScheduleText)
	}
}

// TestRunAutoReplace: the self-healing acceptance — a crash scenario
// with WithAutoReplace converges with no operator action (a fallback
// restart inside the runner records a violation, so Pass means the
// cluster healed itself).
func TestRunAutoReplace(t *testing.T) {
	sc, ok := Find("auto-replace")
	if !ok {
		t.Fatal("no auto-replace scenario")
	}
	sc.Duration = 2 * time.Second
	sc.Events = 2
	res, err := Run(sc, 14, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("violations:\n%s\nschedule:\n%s", strings.Join(res.Violations, "\n"), res.ScheduleText)
	}
}

// TestRunDeterminism: the closed-plan scenario replays byte-identical
// fault schedules and converges to identical state digests for the
// same seed.
func TestRunDeterminism(t *testing.T) {
	sc := DeterminismScenario()
	sc.Duration = 2 * time.Second
	sc.FixedTxns = 15
	a, err := Run(sc, 99, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc, 99, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Pass || !b.Pass {
		t.Fatalf("violations:\nrun A: %v\nrun B: %v", a.Violations, b.Violations)
	}
	if a.ScheduleText != b.ScheduleText {
		t.Fatalf("same seed produced different fault schedules:\n%s\n---\n%s", a.ScheduleText, b.ScheduleText)
	}
	if len(a.Digests) == 0 {
		t.Fatal("no digests collected")
	}
	for g, d := range a.Digests {
		if b.Digests[g] != d {
			t.Fatalf("same seed diverged: shard %d digest %016x vs %016x", g, d, b.Digests[g])
		}
	}
	if a.Submitted != b.Submitted {
		t.Fatalf("closed plan submitted %d vs %d ids", a.Submitted, b.Submitted)
	}
}
