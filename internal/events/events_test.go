package events

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 6; i++ {
		r.Record(i, KindSuspect, "peer", "n1")
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("kept %d events, want 4", len(evs))
	}
	if evs[0].Site != 2 || evs[3].Site != 5 {
		t.Fatalf("ring order wrong: %+v", evs)
	}
	if evs[0].At.IsZero() {
		t.Fatal("At not stamped")
	}
	if evs[0].Fields["peer"] != "n1" {
		t.Fatalf("fields = %+v", evs[0].Fields)
	}
	if got := evs[0].String(); got != "suspect peer=n1" {
		t.Fatalf("String() = %q", got)
	}
}

func TestRecorderWatch(t *testing.T) {
	r := NewRecorder(16)
	ch, cancel := r.Watch(8)
	r.Record(0, KindEpochChange, "epoch", "2")
	ev := <-ch
	if ev.Kind != KindEpochChange || ev.Fields["epoch"] != "2" {
		t.Fatalf("watched event = %+v", ev)
	}
	cancel()
	if _, open := <-ch; open {
		t.Fatal("channel not closed after cancel")
	}
	// Recording after cancel must not panic or block.
	r.Record(0, KindClear)
	cancel() // double-cancel is safe
}

func TestRecorderDumpJSON(t *testing.T) {
	r := NewRecorder(8)
	r.Record(1, KindViolation, "check", "digest")
	var evs []Event
	if err := json.Unmarshal(r.DumpJSON(), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != KindViolation {
		t.Fatalf("dump = %+v", evs)
	}
	// Empty recorder dumps a valid empty array.
	if err := json.Unmarshal(NewRecorder(1).DumpJSON(), &evs); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(0, KindFault)
	if r.Events() != nil {
		t.Fatal("nil recorder should return no events")
	}
	ch, cancel := r.Watch(1)
	if _, open := <-ch; open {
		t.Fatal("nil recorder watch should be closed")
	}
	cancel()
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(128)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ch, cancel := r.Watch(4)
			defer cancel()
			for i := 0; i < 500; i++ {
				r.Record(w, KindStatex, "chunk", "1")
				_ = r.Events()
				select {
				case <-ch:
				default:
				}
			}
		}(w)
	}
	wg.Wait()
	if len(r.Events()) != 128 {
		t.Fatalf("ring size = %d", len(r.Events()))
	}
}
