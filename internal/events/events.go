// Package events is the cluster's flight recorder: a bounded
// structured log of rare-but-load-bearing transitions — epoch changes,
// failure-detector suspicions, auto-replace rounds, shard-map flips,
// state-transfer negotiations, chaos fault injections and repairs.
// Unlike the metrics registry (continuous rates) and the trace ring
// (per-transaction lifecycles), the recorder answers "what sequence of
// rare events led here": each entry is a kind plus key=value fields,
// retained in a fixed ring, streamable live (Watch feeds otpd's WATCH
// verb) and dumpable as JSON when an invariant breaks.
package events

import (
	"encoding/json"
	"sort"
	"sync"
	"time"
)

// Event kinds recorded by the runtime. Emitters are free to add
// ad-hoc kinds; these are the taxonomy the tooling knows about.
const (
	KindEpochChange = "epoch-change" // membership epoch committed
	KindSuspect     = "suspect"      // failure detector suspects a peer
	KindClear       = "clear"        // suspicion cleared (peer answered)
	KindReplace     = "auto-replace" // auto-replacement round outcome
	KindShardMap    = "shard-map"    // class→shard map changed
	KindStatex      = "statex"       // state transfer negotiation/serve
	KindFault       = "fault"        // chaos harness fault injection
	KindRepair      = "repair"       // chaos harness repair
	KindViolation   = "violation"    // invariant violation detected
)

// Event is one recorded transition.
type Event struct {
	At     time.Time         `json:"at"`
	Site   int               `json:"site"`
	Kind   string            `json:"kind"`
	Fields map[string]string `json:"fields,omitempty"`
}

// String renders "kind site=N k=v ..." with fields in sorted order.
func (e Event) String() string {
	out := e.Kind
	keys := make([]string, 0, len(e.Fields))
	for k := range e.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out += " " + k + "=" + e.Fields[k]
	}
	return out
}

// Recorder is a fixed-capacity ring of events with live subscribers.
// Record is mutex-guarded and cheap; a nil *Recorder discards
// everything, so emitters thread it unconditionally.
type Recorder struct {
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
	subs map[int]chan Event
	nsub int
}

// NewRecorder creates a recorder retaining the last capacity events
// (minimum 1).
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{buf: make([]Event, capacity), subs: make(map[int]chan Event)}
}

// Record appends one event; kv is alternating field keys and values (a
// trailing odd key is dropped). Live subscribers receive it
// non-blocking — a stalled watcher drops events rather than stalling
// the emitter.
func (r *Recorder) Record(site int, kind string, kv ...string) {
	if r == nil {
		return
	}
	ev := Event{At: time.Now(), Site: site, Kind: kind}
	if len(kv) >= 2 {
		ev.Fields = make(map[string]string, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			ev.Fields[kv[i]] = kv[i+1]
		}
	}
	r.mu.Lock()
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	for _, ch := range r.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	r.mu.Unlock()
}

// Events returns the retained events in record order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event{}, r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Watch subscribes to future events: returns a buffered channel and a
// cancel function that unsubscribes and closes it. Events recorded
// while the channel is full are dropped for this subscriber only.
func (r *Recorder) Watch(buffer int) (<-chan Event, func()) {
	if r == nil {
		ch := make(chan Event)
		close(ch)
		return ch, func() {}
	}
	if buffer < 1 {
		buffer = 64
	}
	ch := make(chan Event, buffer)
	r.mu.Lock()
	id := r.nsub
	r.nsub++
	r.subs[id] = ch
	r.mu.Unlock()
	var once sync.Once
	return ch, func() {
		once.Do(func() {
			r.mu.Lock()
			delete(r.subs, id)
			r.mu.Unlock()
			close(ch)
		})
	}
}

// DumpJSON renders the retained events as indented JSON — the
// artifact a failed chaos run ships with its violation report.
func (r *Recorder) DumpJSON() []byte {
	evs := r.Events()
	if evs == nil {
		evs = []Event{}
	}
	out, err := json.MarshalIndent(evs, "", "  ")
	if err != nil {
		return []byte("[]")
	}
	return out
}
