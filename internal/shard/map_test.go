package shard

import (
	"fmt"
	"testing"

	"otpdb/internal/sproc"
)

func TestMapDeterministic(t *testing.T) {
	a, err := NewMap(4)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewMap(4)
	for i := 0; i < 200; i++ {
		c := sproc.ClassID(fmt.Sprintf("class-%d", i))
		if a.Locate(c) != b.Locate(c) {
			t.Fatalf("maps disagree on %s: %d vs %d", c, a.Locate(c), b.Locate(c))
		}
	}
}

func TestMapBalance(t *testing.T) {
	m, _ := NewMap(4)
	counts := make([]int, 4)
	for i := 0; i < 1000; i++ {
		counts[m.Locate(sproc.ClassID(fmt.Sprintf("class-%d", i)))]++
	}
	for s, n := range counts {
		if n < 100 {
			t.Fatalf("shard %d owns only %d of 1000 classes: %v", s, n, counts)
		}
	}
}

func TestMapPinOverridesAndBumpsVersion(t *testing.T) {
	m, _ := NewMap(4)
	c := sproc.ClassID("accounts")
	want := (m.Locate(c) + 1) % 4
	v0 := m.Version()
	if err := m.Pin(c, want); err != nil {
		t.Fatal(err)
	}
	if got := m.Locate(c); got != want {
		t.Fatalf("pinned class on shard %d, want %d", got, want)
	}
	if m.Version() != v0+1 {
		t.Fatalf("version %d, want %d", m.Version(), v0+1)
	}
	if err := m.Pin(c, 4); err == nil {
		t.Fatal("out-of-range pin accepted")
	}
}

func TestMapReservedClassesOnShardZero(t *testing.T) {
	m, _ := NewMap(8)
	for _, c := range []sproc.ClassID{CoordClass, "__members", "__anything"} {
		if got := m.Locate(c); got != 0 {
			t.Fatalf("reserved class %s on shard %d, want 0", c, got)
		}
	}
}

func TestMapSplitAndHome(t *testing.T) {
	m, _ := NewMap(4)
	if err := m.Pin("a", 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Pin("b", 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Pin("c", 2); err != nil {
		t.Fatal(err)
	}
	split := m.Split([]sproc.ClassID{"a", "b", "c"})
	if len(split) != 2 {
		t.Fatalf("split %v, want 2 shards", split)
	}
	if len(split[2]) != 2 || split[2][0] != "a" || split[2][1] != "c" {
		t.Fatalf("shard 2 classes %v, want [a c]", split[2])
	}
	if h := m.Home([]sproc.ClassID{"a", "b", "c"}); h != 1 {
		t.Fatalf("home %d, want 1", h)
	}
}

func TestMapSingleShardTakesAll(t *testing.T) {
	m, _ := NewMap(1)
	for i := 0; i < 50; i++ {
		if s := m.Locate(sproc.ClassID(fmt.Sprintf("c%d", i))); s != 0 {
			t.Fatalf("class on shard %d in a 1-shard map", s)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	x := XID{Origin: 3, Inc: 99, Seq: 7}
	p := prepPayload{
		XID:    x,
		Shard:  1,
		Home:   0,
		Shards: []int{0, 1},
		Reads:  []RW{{Class: "a", Key: "k", Value: []byte("v"), Present: true}},
		Writes: []RW{{Class: "a", Key: "k", Value: []byte("w"), Present: true}},
	}
	enc, err := encode(p)
	if err != nil {
		t.Fatal(err)
	}
	var got prepPayload
	if err := decode(enc, &got); err != nil {
		t.Fatal(err)
	}
	if got.XID != x || got.Shard != 1 || len(got.Reads) != 1 || string(got.Writes[0].Value) != "w" {
		t.Fatalf("round trip mangled payload: %+v", got)
	}
	for _, v := range []Verdict{VerdictNone, VerdictCommit, VerdictAbort} {
		if v == VerdictNone {
			continue
		}
		if decodeVerdict(encodeVerdict(v)) != v {
			t.Fatalf("verdict %v did not round-trip", v)
		}
	}
	if decodeVerdict(nil) != VerdictNone || decodeVerdict([]byte{42}) != VerdictNone {
		t.Fatal("malformed verdict bytes should decode to none")
	}
}
