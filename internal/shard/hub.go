package shard

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"otpdb/internal/db"
	"otpdb/internal/metrics"
	"otpdb/internal/sproc"
	"otpdb/internal/storage"
	"otpdb/internal/transport"
)

// decisionCacheCap bounds the in-memory verdict cache. The home shard's
// record is the durable truth; the cache only short-circuits lookups.
const decisionCacheCap = 4096

// Config parameterises a Hub.
type Config struct {
	// Origin is this process's node identity, stamped into XIDs.
	Origin transport.NodeID
	// Incarnation distinguishes XIDs across restarts of this process.
	Incarnation uint64
	// ResolveAfter is how long a prepare may block before the resolver
	// presumes its coordinator dead and proposes abort at the home
	// shard. It MUST exceed the coordinators' VoteTimeout, or the
	// resolver aborts transactions their live coordinator is still
	// driving. Defaults to 5s.
	ResolveAfter time.Duration
	// ResolveTick is the resolver's scan period. Defaults to 200ms.
	ResolveTick time.Duration
	// Metrics, when non-nil, registers hub telemetry (presumed-abort
	// resolutions) under the scope's labels.
	Metrics *metrics.Scope
}

// attachment is one local replica of one shard, by getter so the hub
// survives replica replacement (crash, rejoin, membership change).
type attachment struct {
	site int
	get  func() *db.Replica
}

// blockedPrepare is a prepare transaction parked at the head of its
// class queues, waiting for the cross-shard verdict.
type blockedPrepare struct {
	xid   XID
	shard int
	home  int
	since time.Time
	ch    chan Verdict // buffered 1; receives the verdict exactly once
}

// Hub is the process-local coordination point of cross-shard
// transactions. It never talks to the network itself: all cross-process
// agreement rides on ordinary transactions (prepare per shard, decide at
// the home shard), and the hub merely connects the local executions of
// those transactions — votes from prepares, verdicts from decides — to
// the local coordinators and blocked prepares.
//
// Deployment requirement: every process attached to any shard must also
// host a replica of every shard it coordinates or prepares for —
// concretely, in this codebase every process hosts all shards — so the
// home shard's decide executes locally everywhere and wakes the local
// blocked prepares with the same first-wins verdict. That is what makes
// the prepare procedure deterministic across a shard's replicas.
type Hub struct {
	origin       transport.NodeID
	inc          uint64
	resolveAfter time.Duration
	resolveTick  time.Duration

	// presumedAborts counts resolver-initiated abort proposals for
	// prepares whose coordinator was presumed crashed.
	presumedAborts *metrics.Counter

	mu        sync.Mutex
	seq       uint64
	attached  map[int][]attachment
	votes     map[XID]map[int]bool
	decisions map[XID]Verdict
	decOrder  []XID
	blocked   map[*blockedPrepare]bool
	active    map[XID]bool      // coordinations driven by a live local coordinator
	resolving map[XID]time.Time // resolver decide submitted, awaiting its verdict
	gen       chan struct{}     // closed and remade on every vote/decision

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewHub creates a hub. Call Register on each shard's procedure registry
// and Attach for each local replica, then Start.
func NewHub(cfg Config) *Hub {
	if cfg.ResolveAfter <= 0 {
		cfg.ResolveAfter = 5 * time.Second
	}
	if cfg.ResolveTick <= 0 {
		cfg.ResolveTick = 200 * time.Millisecond
	}
	if cfg.Incarnation == 0 {
		cfg.Incarnation = uint64(time.Now().UnixNano())
	}
	return &Hub{
		origin:         cfg.Origin,
		inc:            cfg.Incarnation,
		resolveAfter:   cfg.ResolveAfter,
		resolveTick:    cfg.ResolveTick,
		presumedAborts: cfg.Metrics.Counter("shard_presumed_abort_total"),
		attached:       make(map[int][]attachment),
		votes:          make(map[XID]map[int]bool),
		decisions:      make(map[XID]Verdict),
		blocked:        make(map[*blockedPrepare]bool),
		active:         make(map[XID]bool),
		resolving:      make(map[XID]time.Time),
		gen:            make(chan struct{}),
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
	}
}

// Register installs the prepare and decide procedures for one shard's
// registry. Every shard of the deployment must register them (prepares
// run in any shard; decides only ever carry CoordClass work but the
// procedure must resolve everywhere the class exists).
func (h *Hub) Register(reg *sproc.Registry) error {
	err := reg.RegisterMulti(sproc.MultiUpdate{
		Name:    PrepareProc,
		Classes: []sproc.ClassID{CoordClass}, // fallback only; requests carry the real set
		Dynamic: true,
		Fn:      h.runPrepare,
	})
	if err != nil {
		return err
	}
	return reg.RegisterUpdate(sproc.Update{
		Name:  DecideProc,
		Class: CoordClass,
		Fn:    h.runDecide,
	})
}

// Attach wires a local replica of a shard into the hub. The getter is
// consulted on use so replica replacement needs no re-attachment; it may
// return nil while the site is down.
func (h *Hub) Attach(shard, site int, get func() *db.Replica) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.attached[shard] = append(h.attached[shard], attachment{site: site, get: get})
}

// Start launches the resolver. Safe to call once.
func (h *Hub) Start() {
	h.startOnce.Do(func() { go h.resolver() })
}

// Stop halts the resolver and releases blocked prepares with an abort
// verdict locally (the process is shutting down; its replicas' state is
// moot, but their goroutines must unwind).
func (h *Hub) Stop() {
	select {
	case <-h.stop:
		<-h.done
		return
	default:
	}
	close(h.stop)
	<-h.done
}

// NewXID mints a globally unique cross-transaction attempt identity.
func (h *Hub) NewXID() XID {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.seq++
	return XID{Origin: h.origin, Inc: h.inc, Seq: h.seq}
}

// localReplica returns a live local replica of a shard, or nil.
func (h *Hub) localReplica(shard int) *db.Replica {
	h.mu.Lock()
	atts := h.attached[shard]
	h.mu.Unlock()
	for _, a := range atts {
		if r := a.get(); r != nil {
			return r
		}
	}
	return nil
}

// localReplicas returns all live local replicas of a shard.
func (h *Hub) localReplicas(shard int) []*db.Replica {
	h.mu.Lock()
	atts := h.attached[shard]
	h.mu.Unlock()
	var out []*db.Replica
	for _, a := range atts {
		if r := a.get(); r != nil {
			out = append(out, r)
		}
	}
	return out
}

// markActive registers a locally-driven coordination: the resolver keeps
// its hands off until unmarkActive (coordinator finished or abandoned).
func (h *Hub) markActive(x XID) {
	h.mu.Lock()
	h.active[x] = true
	h.mu.Unlock()
}

func (h *Hub) unmarkActive(x XID) {
	h.mu.Lock()
	delete(h.active, x)
	h.mu.Unlock()
}

// vote records one shard's prepare validation result and wakes waiters.
func (h *Hub) vote(x XID, shard int, yes bool) {
	h.mu.Lock()
	m := h.votes[x]
	if m == nil {
		m = make(map[int]bool)
		h.votes[x] = m
	}
	m[shard] = yes
	h.bumpLocked()
	h.mu.Unlock()
}

// bumpLocked broadcasts a state change to waitVotes parkers.
func (h *Hub) bumpLocked() {
	close(h.gen)
	h.gen = make(chan struct{})
}

// waitVotes blocks until every listed shard has voted on x, any shard
// votes no, the timeout lapses, or ctx is done. It reports whether all
// votes arrived and were yes.
func (h *Hub) waitVotes(stop <-chan struct{}, x XID, shards []int, timeout time.Duration) bool {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		h.mu.Lock()
		m := h.votes[x]
		all, yes := true, true
		for _, s := range shards {
			v, ok := m[s]
			if !ok {
				all = false
				break
			}
			if !v {
				yes = false
			}
		}
		gen := h.gen
		h.mu.Unlock()
		if all {
			return yes
		}
		select {
		case <-gen:
		case <-deadline.C:
			return false
		case <-stop:
			return false
		case <-h.stop:
			return false
		}
	}
}

// applyDecision publishes a verdict process-locally: cache it, drop the
// vote tally, and wake every blocked prepare of x. Idempotent (the first
// verdict wins — callers always pass the home record's winner, so
// repeats agree anyway).
func (h *Hub) applyDecision(x XID, v Verdict) {
	if v == VerdictNone {
		return
	}
	h.mu.Lock()
	if _, ok := h.decisions[x]; !ok {
		h.decisions[x] = v
		h.decOrder = append(h.decOrder, x)
		if len(h.decOrder) > decisionCacheCap {
			old := h.decOrder[0]
			h.decOrder = h.decOrder[1:]
			delete(h.decisions, old)
		}
	}
	v = h.decisions[x]
	delete(h.votes, x)
	delete(h.resolving, x)
	for bp := range h.blocked {
		if bp.xid == x {
			select {
			case bp.ch <- v:
			default:
			}
			delete(h.blocked, bp)
		}
	}
	h.bumpLocked()
	h.mu.Unlock()
}

// lookupDecision returns the known verdict of x: the local cache, else
// the home shard's durable record read from a local replica's store.
func (h *Hub) lookupDecision(x XID, home int) Verdict {
	h.mu.Lock()
	if v, ok := h.decisions[x]; ok {
		h.mu.Unlock()
		return v
	}
	h.mu.Unlock()
	for _, r := range h.localReplicas(home) {
		if b, ok := r.Store().Get(storage.Partition(CoordClass), recordKey(x)); ok {
			return decodeVerdict(b)
		}
	}
	return VerdictNone
}

// addBlocked parks a prepare; the caller selects on the returned
// channel. removeBlocked must be called if the wait is abandoned.
func (h *Hub) addBlocked(x XID, shard, home int) *blockedPrepare {
	bp := &blockedPrepare{xid: x, shard: shard, home: home, since: time.Now(), ch: make(chan Verdict, 1)}
	h.mu.Lock()
	if v, ok := h.decisions[x]; ok {
		bp.ch <- v
	} else {
		h.blocked[bp] = true
	}
	h.mu.Unlock()
	return bp
}

func (h *Hub) removeBlocked(bp *blockedPrepare) {
	h.mu.Lock()
	delete(h.blocked, bp)
	h.mu.Unlock()
}

// runPrepare is the body of PrepareProc, executed by every replica of a
// touched shard under the transaction's real conflict classes. It parks
// at the head of those class queues — the 2PC lock, held without
// touching the scheduler — until the cross-shard verdict arrives, then
// applies the writes iff the verdict is commit. Everything observable
// (the vote, the applied writes) happens strictly after the prepare's
// own definitive (TO) position is fixed, so all replicas of the shard
// validate against identical state and commit identical effects.
func (h *Hub) runPrepare(ctx sproc.MultiUpdateCtx) (storage.Value, error) {
	args := ctx.Args()
	if len(args) != 1 {
		return nil, fmt.Errorf("shard: prepare wants 1 arg, got %d", len(args))
	}
	var p prepPayload
	if err := decode(args[0], &p); err != nil {
		return nil, err
	}
	tc, ok := ctx.(sproc.TxnControl)
	if !ok {
		return nil, fmt.Errorf("shard: prepare context %T lacks TxnControl", ctx)
	}

	// Stage 1: wait for this prepare's own definitive position. A vote
	// cast from a tentative execution could be invalidated by a
	// Correctness Check re-execution after the coordinator already
	// decided — breaking atomicity — so nothing escapes before this.
	select {
	case <-tc.Definitive():
	case <-tc.AbortSignal():
		return h.abortAttempt(ctx)
	}

	// Stage 2: the verdict may already exist — a resolver or coordinator
	// decide does not conflict with this prepare (CoordClass is not
	// among its classes) and can be ordered and executed first.
	if v := h.lookupDecision(p.XID, p.Home); v != VerdictNone {
		return h.finishPrepare(ctx, &p, v)
	}

	// Stage 3: validate the coordinator's phase-0 reads against this
	// shard's state at the prepare's definitive position. The state is
	// identical at every replica of the shard, so the vote is too.
	valid := true
	for _, rd := range p.Reads {
		v, present := ctx.Read(rd.Class, rd.Key)
		if present != rd.Present || !bytes.Equal(v, rd.Value) {
			valid = false
			break
		}
	}
	select {
	case <-tc.AbortSignal():
		// Unreachable if the stability argument holds; fail safe.
		return h.abortAttempt(ctx)
	default:
	}

	// Stage 4: vote and park until the verdict. The vote is process-
	// local — only the coordinating process reads its own tally; on
	// every other process it is inert bookkeeping.
	h.vote(p.XID, p.Shard, valid)
	bp := h.addBlocked(p.XID, p.Shard, p.Home)
	defer h.removeBlocked(bp)
	select {
	case v := <-bp.ch:
		return h.finishPrepare(ctx, &p, v)
	case <-tc.AbortSignal():
		return h.abortAttempt(ctx)
	case <-h.stop:
		// Process shutdown: this replica's state is moot, but the
		// goroutine must unwind. Committing the empty prepare here
		// could diverge from peers; fail the procedure instead.
		return nil, fmt.Errorf("shard: hub stopped while prepare %v blocked", p.XID)
	}
}

// finishPrepare applies the verdict: install the shard's writes on
// commit, nothing on abort. The prepare transaction itself always
// commits (possibly empty) — the verdict decides its payload, keeping
// the scheduler's one-commit-per-TO-delivery invariant intact.
func (h *Hub) finishPrepare(ctx sproc.MultiUpdateCtx, p *prepPayload, v Verdict) (storage.Value, error) {
	if v == VerdictCommit {
		for _, w := range p.Writes {
			if err := ctx.Write(w.Class, w.Key, w.Value); err != nil {
				return nil, err
			}
		}
	}
	return encodeVerdict(v), nil
}

// abortAttempt reports a Correctness Check abort back to the executor:
// one more context access records the abort, and returning a nil error
// lets the executor's sentinel flow handle the rest.
func (h *Hub) abortAttempt(ctx sproc.MultiUpdateCtx) (storage.Value, error) {
	_, _ = ctx.Read(CoordClass, "__probe")
	return nil, nil
}

// runDecide is the body of DecideProc. The first decide of an XID in the
// home shard's definitive order writes the durable record; later ones
// (coordinator/resolver races) read the winner back. Local side effects
// — waking this process's blocked prepares — fire only after the
// decide's own definitive position, for the same stability reason as
// the prepare's vote.
func (h *Hub) runDecide(ctx sproc.UpdateCtx) (storage.Value, error) {
	args := ctx.Args()
	if len(args) != 1 {
		return nil, fmt.Errorf("shard: decide wants 1 arg, got %d", len(args))
	}
	var d decidePayload
	if err := decode(args[0], &d); err != nil {
		return nil, err
	}
	tc, ok := ctx.(sproc.TxnControl)
	if !ok {
		return nil, fmt.Errorf("shard: decide context %T lacks TxnControl", ctx)
	}
	winner := d.Verdict
	key := recordKey(d.XID)
	if existing, ok := ctx.Read(key); ok {
		winner = decodeVerdict(existing)
	} else if err := ctx.Write(key, encodeVerdict(winner)); err != nil {
		return nil, err
	}
	select {
	case <-tc.Definitive():
	case <-tc.AbortSignal():
		_, _ = ctx.Read(key) // record the abort with the executor
		return nil, nil
	}
	h.applyDecision(d.XID, winner)
	return encodeVerdict(winner), nil
}

// resolver watches for prepares blocked past ResolveAfter whose
// coordinator is not locally active — the coordinating process is
// presumed crashed — and terminates them: adopt the home record if one
// exists, otherwise propose abort at the home shard. First-wins ordering
// there makes the race against a slow-but-alive coordinator safe: one
// verdict wins everywhere.
func (h *Hub) resolver() {
	defer close(h.done)
	ticker := time.NewTicker(h.resolveTick)
	defer ticker.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-ticker.C:
		}
		now := time.Now()
		type target struct {
			xid  XID
			home int
		}
		var stale []target
		h.mu.Lock()
		seen := make(map[XID]bool)
		for bp := range h.blocked {
			if h.active[bp.xid] || seen[bp.xid] {
				continue
			}
			if now.Sub(bp.since) < h.resolveAfter {
				continue
			}
			if t, ok := h.resolving[bp.xid]; ok && now.Sub(t) < h.resolveAfter {
				continue // a resolver decide is already in flight
			}
			seen[bp.xid] = true
			h.resolving[bp.xid] = now
			stale = append(stale, target{xid: bp.xid, home: bp.home})
		}
		h.mu.Unlock()
		for _, t := range stale {
			if v := h.lookupDecision(t.xid, t.home); v != VerdictNone {
				h.applyDecision(t.xid, v)
				continue
			}
			h.presumedAborts.Inc()
			h.submitDecide(t.xid, t.home, VerdictAbort)
		}
	}
}

// submitDecide proposes a verdict at the home shard through any live
// local replica. Fire-and-forget: the decide's own local execution
// applies the winner via applyDecision.
func (h *Hub) submitDecide(x XID, home int, v Verdict) {
	enc, err := encode(decidePayload{XID: x, Verdict: v})
	if err != nil {
		return
	}
	req := sproc.Request{Proc: DecideProc, Args: []storage.Value{enc}}
	for _, r := range h.localReplicas(home) {
		if _, err := r.SubmitRequest(req, nil); err == nil {
			return
		}
	}
}
