// Package shard scales the single replicated database of the paper out
// horizontally: the conflict-class namespace is partitioned across many
// independent OTP groups ("shards"), each running its own OPT-ABcast,
// scheduler and durability stack. Classes are disjoint by construction
// (Section 2.3), so a transaction whose classes all map to one shard is
// simply that shard's problem — the paper's protocol applies unchanged
// and shards never coordinate for it.
//
// Transactions spanning shards are ordered by a two-phase protocol built
// from ordinary transactions (see Hub and Coordinator): a prepare
// transaction per touched shard, holding exactly the cross-transaction's
// classes, and a decide transaction at a designated home shard whose
// first-wins record is the durable commit point.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"otpdb/internal/sproc"
)

// vnodesPerShard is the number of ring positions each shard occupies.
// 64 keeps the assignment balanced within a few percent for realistic
// class counts while the ring stays small enough to rebuild on Pin.
const vnodesPerShard = 64

// Map assigns conflict classes to shards: consistent hashing over a
// virtual-node ring, overridden by explicit pins. The version increments
// on every pin so routers can detect a stale map. Maps must be identical
// at every process of a deployment (same shard count, same pins, applied
// in the same order) — the assignment is deterministic given those.
type Map struct {
	mu      sync.RWMutex
	shards  int
	version uint64
	pins    map[sproc.ClassID]int
	ring    []ringEntry // sorted by hash
}

type ringEntry struct {
	hash  uint64
	shard int
}

// NewMap builds a map over n shards (n >= 1).
func NewMap(n int) (*Map, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: map needs at least one shard, got %d", n)
	}
	m := &Map{shards: n, pins: make(map[sproc.ClassID]int)}
	m.ring = make([]ringEntry, 0, n*vnodesPerShard)
	for s := 0; s < n; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			m.ring = append(m.ring, ringEntry{hash: hash64(fmt.Sprintf("shard-%d-vnode-%d", s, v)), shard: s})
		}
	}
	sort.Slice(m.ring, func(i, j int) bool { return m.ring[i].hash < m.ring[j].hash })
	return m, nil
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// Shards reports the shard count.
func (m *Map) Shards() int { return m.shards }

// Version reports the pin revision; it increments on every Pin.
func (m *Map) Version() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.version
}

// Pin forces a class onto a shard, overriding the hash assignment.
func (m *Map) Pin(class sproc.ClassID, shard int) error {
	if shard < 0 || shard >= m.shards {
		return fmt.Errorf("shard: pin %q to %d out of range [0,%d)", class, shard, m.shards)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pins[class] = shard
	m.version++
	return nil
}

// Locate returns the shard owning a class. Reserved classes (a "__"
// prefix: group membership, the cross-shard coordination class) live on
// shard 0 by convention so every deployment agrees without pinning them.
func (m *Map) Locate(class sproc.ClassID) int {
	if strings.HasPrefix(string(class), "__") {
		return 0
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if s, ok := m.pins[class]; ok {
		return s
	}
	if m.shards == 1 {
		return 0
	}
	h := hash64(string(class))
	i := sort.Search(len(m.ring), func(i int) bool { return m.ring[i].hash >= h })
	if i == len(m.ring) {
		i = 0
	}
	return m.ring[i].shard
}

// Split groups a class set by owning shard. The returned map has one
// entry per touched shard, each holding that shard's classes in input
// order; len(result) == 1 means the transaction is single-shard.
func (m *Map) Split(classes []sproc.ClassID) map[int][]sproc.ClassID {
	out := make(map[int][]sproc.ClassID)
	for _, c := range classes {
		s := m.Locate(c)
		out[s] = append(out[s], c)
	}
	return out
}

// Home returns the designated home shard of a class set: the smallest
// touched shard id. The home shard's decide record is the durable commit
// point of a cross-shard transaction, so every participant must derive
// the same home from the same class set.
func (m *Map) Home(classes []sproc.ClassID) int {
	home := -1
	for _, c := range classes {
		s := m.Locate(c)
		if home < 0 || s < home {
			home = s
		}
	}
	if home < 0 {
		home = 0
	}
	return home
}
