package shard

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"otpdb/internal/sproc"
	"otpdb/internal/storage"
	"otpdb/internal/transport"
)

// Reserved procedure and class names. CoordClass is pinned to shard 0's
// namespace convention (the "__" prefix, see Map.Locate) but exists in
// EVERY shard: prepares carry the cross-transaction's real classes, and
// decides run under CoordClass at the home shard only.
const (
	// CoordClass is the conflict class of decide transactions. It is
	// deliberately NOT among a prepare's classes, so a decide never
	// queues behind the blocked prepare it must unblock.
	CoordClass = sproc.ClassID("__xshard")
	// PrepareProc is the dynamic multi-class prepare procedure.
	PrepareProc = "__xshard.prepare"
	// DecideProc is the decide procedure (single class: CoordClass).
	DecideProc = "__xshard.decide"
)

// Verdict is the outcome of a cross-shard transaction.
type Verdict int

// Verdicts.
const (
	// VerdictNone is the zero value (no decision yet).
	VerdictNone Verdict = iota
	// VerdictCommit: every shard votes yes; writes are applied.
	VerdictCommit
	// VerdictAbort: some shard voted no, timed out, or the resolver
	// presumed abort; no shard applies any write.
	VerdictAbort
)

func (v Verdict) String() string {
	switch v {
	case VerdictCommit:
		return "commit"
	case VerdictAbort:
		return "abort"
	default:
		return "none"
	}
}

// XID identifies one cross-shard transaction attempt globally: the
// coordinating process's node identity and incarnation plus a local
// sequence number. A retry is a NEW XID — verdicts are per-attempt.
type XID struct {
	Origin transport.NodeID
	Inc    uint64
	Seq    uint64
}

func (x XID) String() string { return fmt.Sprintf("x%d.%d.%d", x.Origin, x.Inc, x.Seq) }

// RW is one captured access of the coordinator's phase-0 execution:
// the class-qualified key with either the value read (validation) or
// the value to write (application).
type RW struct {
	Class sproc.ClassID
	Key   storage.Key
	// Value is the read snapshot value (nil if the key was absent) or
	// the value to install.
	Value storage.Value
	// Present distinguishes a read of an absent key from a nil value.
	Present bool
}

// prepPayload is the argument of a prepare transaction at one shard: the
// attempt identity, this shard, the home shard, the full shard set, and
// the phase-0 reads (to validate) and writes (to apply on commit) that
// fall into this shard's classes.
type prepPayload struct {
	XID    XID
	Shard  int
	Home   int
	Shards []int
	Reads  []RW
	Writes []RW
}

// decidePayload is the argument of a decide transaction.
type decidePayload struct {
	XID     XID
	Verdict Verdict
}

// recordKey is the durable decision record's key in CoordClass at the
// home shard. First write wins; later decides read it back instead.
func recordKey(x XID) storage.Key { return storage.Key("txn/" + x.String()) }

func encode(v any) (storage.Value, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("shard: encode: %w", err)
	}
	return buf.Bytes(), nil
}

func decode(b storage.Value, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(v); err != nil {
		return fmt.Errorf("shard: decode: %w", err)
	}
	return nil
}

// encodeVerdict renders a verdict as the decide record value.
func encodeVerdict(v Verdict) storage.Value { return storage.Value{byte(v)} }

// decodeVerdict parses a decide record value.
func decodeVerdict(b storage.Value) Verdict {
	if len(b) != 1 {
		return VerdictNone
	}
	switch Verdict(b[0]) {
	case VerdictCommit:
		return VerdictCommit
	case VerdictAbort:
		return VerdictAbort
	default:
		return VerdictNone
	}
}
