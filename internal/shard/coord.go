package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"otpdb/internal/db"
	"otpdb/internal/metrics"
	"otpdb/internal/sproc"
	"otpdb/internal/storage"
)

// Coordinator errors.
var (
	// ErrAborted reports that the cross-shard transaction could not be
	// committed within the retry budget (validation conflicts, vote
	// timeouts, or resolver races).
	ErrAborted = errors.New("shard: cross-shard transaction aborted")
	// errCrashed is the test hooks' abandonment sentinel.
	errCrashed = errors.New("shard: coordinator crashed (test hook)")
)

// CoordConfig parameterises a Coordinator.
type CoordConfig struct {
	// VoteTimeout bounds the wait for every shard's prepare vote before
	// the coordinator proposes abort. It MUST stay below the hub's
	// ResolveAfter so a live coordinator always decides before the
	// resolver presumes it dead. Defaults to 3s.
	VoteTimeout time.Duration
	// MaxRetries bounds commit attempts (each with a fresh XID and
	// re-executed phase 0) before giving up with ErrAborted. Defaults
	// to 8.
	MaxRetries int
	// Metrics, when non-nil, registers coordinator telemetry (vote
	// latency, cross-shard commits/aborts/retries) under the scope's
	// labels.
	Metrics *metrics.Scope
	// Trace, when non-nil, receives the coordinator's 2PC spans
	// (x-submit, prepare, vote, decide, x-commit/x-abort) and arms
	// cluster-wide trace IDs: every Exec mints one ID that rides the
	// prepare and decide requests into every touched shard, so each
	// site's local spans stitch into one tree.
	Trace *metrics.TraceRing
}

// ShardTO locates a cross-shard transaction in one shard's definitive
// order: the TO index of its prepare transaction there.
type ShardTO struct {
	Shard   int
	TOIndex int64
}

// CrossResult is the outcome of a committed cross-shard transaction.
type CrossResult struct {
	// Value is the procedure's phase-0 return value.
	Value storage.Value
	// Home is the shard holding the durable decision record.
	Home int
	// ShardTO lists the prepare's definitive position in every touched
	// shard, ascending by shard.
	ShardTO []ShardTO
	// Retries counts abandoned attempts before the committing one.
	Retries int
	// Trace is the cluster-wide trace ID of this transaction (empty
	// when the coordinator runs untraced); TRACE <id> stitches the
	// spans every touched site recorded under it.
	Trace string
}

// Coordinator drives cross-shard transactions from this process: execute
// the procedure against local committed state (phase 0), prepare the
// captured read/write sets in every touched shard, collect votes, and
// decide at the home shard. It is an optimistic protocol — phase 0 runs
// without locks, and each shard's prepare validates the reads at its
// definitive position, so a conflicting interleaving surfaces as a NO
// vote and a retried attempt rather than as blocking.
type Coordinator struct {
	hub *Hub
	m   *Map
	reg *sproc.Registry
	cfg CoordConfig

	// Telemetry (inert unregistered instruments without cfg.Metrics).
	voteLat      *metrics.Histogram
	crossCommits *metrics.Counter
	crossAborts  *metrics.Counter
	crossRetries *metrics.Counter

	// CrashBeforeDecide, when set, is consulted after votes are
	// collected and before the decide is submitted; returning true
	// abandons the attempt (simulating a coordinator crash at the
	// classic 2PC in-doubt point). Test use only.
	CrashBeforeDecide func(XID) bool
	// CrashAfterHomeDecide abandons the attempt right after the home
	// decide commits (the decision is durable but unfanned). Test only.
	CrashAfterHomeDecide func(XID) bool
}

// NewCoordinator creates a coordinator over a hub, map and registry.
func NewCoordinator(h *Hub, m *Map, reg *sproc.Registry, cfg CoordConfig) *Coordinator {
	if cfg.VoteTimeout <= 0 {
		cfg.VoteTimeout = 3 * time.Second
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 8
	}
	return &Coordinator{
		hub: h, m: m, reg: reg, cfg: cfg,
		voteLat:      cfg.Metrics.Histogram("shard_vote_seconds"),
		crossCommits: cfg.Metrics.Counter("shard_cross_commit_total"),
		crossAborts:  cfg.Metrics.Counter("shard_cross_abort_total"),
		crossRetries: cfg.Metrics.Counter("shard_cross_retry_total"),
	}
}

// Exec runs a multi-class procedure whose classes span several shards,
// retrying aborted attempts with fresh phase-0 executions. The returned
// error is ErrAborted when the retry budget is exhausted.
func (c *Coordinator) Exec(ctx context.Context, proc string, args ...storage.Value) (CrossResult, error) {
	mu, err := c.reg.Multi(proc)
	if err != nil {
		return CrossResult{}, err
	}
	split := c.m.Split(mu.Classes)
	if len(split) < 2 {
		return CrossResult{}, fmt.Errorf("shard: %s is single-shard; submit it to its home group", proc)
	}
	// One trace ID per logical transaction, stable across retries; the
	// XID counter guarantees uniqueness per coordinating process.
	trace := ""
	if c.cfg.Trace != nil {
		trace = "t" + c.hub.NewXID().String()
	}
	c.cspan(trace, metrics.SpanXSubmit, proc)
	var lastErr error = ErrAborted
	for attempt := 0; attempt < c.cfg.MaxRetries; attempt++ {
		res, err := c.tryOnce(ctx, mu, split, args, trace)
		if err == nil {
			res.Retries = attempt
			res.Trace = trace
			c.crossCommits.Inc()
			c.cspan(trace, metrics.SpanXCommit, "")
			return res, nil
		}
		if errors.Is(err, errCrashed) || ctx.Err() != nil {
			return CrossResult{}, err
		}
		c.crossRetries.Inc()
		lastErr = err
	}
	c.crossAborts.Inc()
	c.cspan(trace, metrics.SpanXAbort, lastErr.Error())
	return CrossResult{}, lastErr
}

// cspan records one coordinator-side span under the transaction's
// cluster-wide trace ID. Shard -1 marks the coordinator itself (it
// acts across shards, from this site).
func (c *Coordinator) cspan(trace, span, note string) {
	if c.cfg.Trace == nil || trace == "" {
		return
	}
	c.cfg.Trace.Record(metrics.TraceEvent{
		Txn: trace, Trace: trace, Span: span,
		Site: int(c.hub.origin), Shard: -1, Note: note,
	})
}

// tryOnce runs one attempt: phase 0, prepares, votes, decide, collect.
func (c *Coordinator) tryOnce(ctx context.Context, mu sproc.MultiUpdate, split map[int][]sproc.ClassID, args []storage.Value, trace string) (CrossResult, error) {
	xid := c.hub.NewXID()
	c.hub.markActive(xid)
	defer c.hub.unmarkActive(xid)

	// Phase 0: execute the procedure against this process's committed
	// view of every touched shard, capturing reads and buffering writes.
	pc := &phase0Ctx{c: c, classes: classSet(mu.Classes), args: args}
	val, err := mu.Fn(pc)
	if err != nil {
		return CrossResult{}, err
	}
	if pc.err != nil {
		return CrossResult{}, pc.err
	}

	shards := make([]int, 0, len(split))
	for s := range split {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	home := shards[0]

	// Prepare in every touched shard. The request carries the real
	// conflict classes; each shard's scheduler orders the prepare like
	// any transaction of those classes.
	type prepDone struct {
		shard int
		res   db.CommitResult
	}
	doneCh := make(chan prepDone, len(shards))
	for _, s := range shards {
		payload := prepPayload{
			XID:    xid,
			Shard:  s,
			Home:   home,
			Shards: shards,
			Reads:  pc.readsFor(c.m, s),
			Writes: pc.writesFor(c.m, s),
		}
		enc, err := encode(payload)
		if err != nil {
			return CrossResult{}, err
		}
		req := sproc.Request{Proc: PrepareProc, Args: []storage.Value{enc}, Classes: split[s], Trace: trace}
		r := c.hub.localReplica(s)
		if r == nil {
			return CrossResult{}, fmt.Errorf("shard: no live local replica of shard %d", s)
		}
		shard := s
		if _, err := r.SubmitRequest(req, func(res db.CommitResult) {
			doneCh <- prepDone{shard: shard, res: res}
		}); err != nil {
			return CrossResult{}, err
		}
		c.cspan(trace, metrics.SpanPrepare, fmt.Sprintf("shard=%d xid=%v", s, xid))
	}

	// Collect votes; silence past the timeout proposes abort — a shard
	// that never votes (partition, dead replica) must not hold every
	// other shard's classes hostage.
	verdict := VerdictAbort
	voteStart := time.Now()
	if c.hub.waitVotes(ctx.Done(), xid, shards, c.cfg.VoteTimeout) {
		verdict = VerdictCommit
	}
	c.voteLat.Observe(time.Since(voteStart))
	c.cspan(trace, metrics.SpanVote, verdict.String())

	if hook := c.CrashBeforeDecide; hook != nil && hook(xid) {
		return CrossResult{}, errCrashed
	}

	// Decide at the home shard. First-wins ordering there arbitrates
	// against a racing resolver; whatever the record says is the
	// verdict everywhere.
	winner, err := c.decide(ctx, xid, home, verdict, trace)
	if err != nil {
		return CrossResult{}, err
	}
	c.cspan(trace, metrics.SpanDecide, winner.String())

	if hook := c.CrashAfterHomeDecide; hook != nil && hook(xid) {
		return CrossResult{}, errCrashed
	}

	// Collect the prepares' commits for the per-shard TO positions.
	// Each prepare commits once its local hub observes the decide; cap
	// the wait so a lost replica cannot wedge the client.
	timer := time.NewTimer(c.cfg.VoteTimeout + c.hub.resolveAfter)
	defer timer.Stop()
	tos := make([]ShardTO, 0, len(shards))
	for range shards {
		select {
		case d := <-doneCh:
			if d.res.Err != nil {
				return CrossResult{}, d.res.Err
			}
			tos = append(tos, ShardTO{Shard: d.shard, TOIndex: d.res.Info.TOIndex})
		case <-timer.C:
			return CrossResult{}, fmt.Errorf("shard: %v: prepare commit wait timed out", xid)
		case <-ctx.Done():
			return CrossResult{}, ctx.Err()
		}
	}
	sort.Slice(tos, func(i, j int) bool { return tos[i].Shard < tos[j].Shard })

	if winner != VerdictCommit {
		return CrossResult{}, fmt.Errorf("%w: %v", ErrAborted, xid)
	}
	return CrossResult{Value: val, Home: home, ShardTO: tos}, nil
}

// decide submits the verdict proposal to the home shard and returns the
// first-wins winner from the committed record. The decide request
// carries the transaction's trace ID so the home shard's replicas span
// it like any traced transaction.
func (c *Coordinator) decide(ctx context.Context, xid XID, home int, v Verdict, trace string) (Verdict, error) {
	enc, err := encode(decidePayload{XID: xid, Verdict: v})
	if err != nil {
		return VerdictNone, err
	}
	r := c.hub.localReplica(home)
	if r == nil {
		return VerdictNone, fmt.Errorf("shard: no live local replica of home shard %d", home)
	}
	req := sproc.Request{Proc: DecideProc, Args: []storage.Value{enc}, Trace: trace}
	ch := make(chan db.CommitResult, 1)
	id, err := r.SubmitRequest(req, func(res db.CommitResult) { ch <- res })
	if err != nil {
		return VerdictNone, err
	}
	select {
	case res := <-ch:
		if res.Err != nil {
			return VerdictNone, res.Err
		}
		return decodeVerdict(res.Info.Value), nil
	case <-ctx.Done():
		r.Forget(id)
		return VerdictNone, ctx.Err()
	}
}

func classSet(cs []sproc.ClassID) map[sproc.ClassID]bool {
	m := make(map[sproc.ClassID]bool, len(cs))
	for _, c := range cs {
		m[c] = true
	}
	return m
}

// phase0Ctx implements sproc.MultiUpdateCtx for the coordinator's local
// phase-0 execution: reads come from the local replicas' committed
// stores (first read of a key is cached — repeatable reads within the
// attempt), writes are buffered with read-your-writes. Every captured
// value is copied, since stores recycle nothing but procedures may alias.
type phase0Ctx struct {
	c       *Coordinator
	classes map[sproc.ClassID]bool
	args    []storage.Value
	reads   []RW
	writes  []RW
	cache   map[string]RW // class\x00key -> captured read or buffered write
	err     error
}

var _ sproc.MultiUpdateCtx = (*phase0Ctx)(nil)

func (p *phase0Ctx) Args() []storage.Value { return p.args }

func cacheKey(class sproc.ClassID, key storage.Key) string {
	return string(class) + "\x00" + string(key)
}

func (p *phase0Ctx) Read(class sproc.ClassID, key storage.Key) (storage.Value, bool) {
	if p.err != nil {
		return nil, false
	}
	if !p.classes[class] {
		p.err = fmt.Errorf("shard: phase-0 read of undeclared class %q", class)
		return nil, false
	}
	if rw, ok := p.cache[cacheKey(class, key)]; ok {
		return copyVal(rw.Value), rw.Present
	}
	r := p.c.hub.localReplica(p.c.m.Locate(class))
	if r == nil {
		p.err = fmt.Errorf("shard: no live local replica for class %q", class)
		return nil, false
	}
	v, ok := r.Store().Get(storage.Partition(class), key)
	rw := RW{Class: class, Key: key, Value: copyVal(v), Present: ok}
	p.reads = append(p.reads, rw)
	if p.cache == nil {
		p.cache = make(map[string]RW)
	}
	p.cache[cacheKey(class, key)] = rw
	return copyVal(v), ok
}

func (p *phase0Ctx) Write(class sproc.ClassID, key storage.Key, v storage.Value) error {
	if p.err != nil {
		return p.err
	}
	if !p.classes[class] {
		p.err = fmt.Errorf("shard: phase-0 write of undeclared class %q", class)
		return p.err
	}
	rw := RW{Class: class, Key: key, Value: copyVal(v), Present: true}
	// Last write per key wins in the shipped write set.
	for i := range p.writes {
		if p.writes[i].Class == class && p.writes[i].Key == key {
			p.writes[i] = rw
			if p.cache == nil {
				p.cache = make(map[string]RW)
			}
			p.cache[cacheKey(class, key)] = rw
			return nil
		}
	}
	p.writes = append(p.writes, rw)
	if p.cache == nil {
		p.cache = make(map[string]RW)
	}
	p.cache[cacheKey(class, key)] = rw
	return nil
}

// readsFor filters the captured reads down to one shard's classes.
func (p *phase0Ctx) readsFor(m *Map, shard int) []RW {
	var out []RW
	for _, rw := range p.reads {
		if m.Locate(rw.Class) == shard {
			out = append(out, rw)
		}
	}
	return out
}

// writesFor filters the buffered writes down to one shard's classes.
func (p *phase0Ctx) writesFor(m *Map, shard int) []RW {
	var out []RW
	for _, rw := range p.writes {
		if m.Locate(rw.Class) == shard {
			out = append(out, rw)
		}
	}
	return out
}

func copyVal(v storage.Value) storage.Value {
	if v == nil {
		return nil
	}
	out := make(storage.Value, len(v))
	copy(out, v)
	return out
}
