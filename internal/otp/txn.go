// Package otp implements the paper's core contribution: the OTP algorithm
// for optimistic transaction processing over an atomic broadcast with
// optimistic delivery (Kemme, Pedone, Alonso, Schiper — ICDCS'99,
// Section 3).
//
// Transactions are partitioned into disjoint conflict classes; each class
// has a FIFO class queue (Figure 2). Opt-delivery appends a transaction to
// its queue and starts it when it reaches the head (Serialization module,
// Figure 4). Completion is recorded, or the transaction commits if its
// definitive order is already known (Execution module, Figure 5).
// TO-delivery confirms the definitive position: matching tentative
// executions commit; mismatches abort the head and reorder the confirmed
// transaction before all unconfirmed ones (Correctness Check module,
// Figure 6).
//
// The Manager is a synchronous state machine: its On* methods are driven
// by the broadcast layer (live engine) or directly by tests and the
// deterministic simulation. Actual data access is delegated to an
// Executor.
package otp

import (
	"fmt"
	"sync/atomic"

	"otpdb/internal/abcast"
)

// ClassID names a conflict class (a database partition; Section 2.3).
type ClassID string

// ExecState is the execution state of a transaction (Section 3.3):
// active until its stored procedure has run to completion, executed
// afterwards.
type ExecState int

// Execution states.
const (
	// Active means the transaction has not finished executing (it may be
	// running or waiting in its class queue).
	Active ExecState = iota + 1
	// Executed means the stored procedure ran to completion but the
	// transaction has not committed.
	Executed
)

func (s ExecState) String() string {
	switch s {
	case Active:
		return "active"
	case Executed:
		return "executed"
	default:
		return fmt.Sprintf("ExecState(%d)", int(s))
	}
}

// DeliveryState is the delivery state of a transaction (Section 3.3):
// pending after Opt-delivery, committable after TO-delivery.
type DeliveryState int

// Delivery states.
const (
	// Pending means only the tentative position is known.
	Pending DeliveryState = iota + 1
	// Committable means the definitive position is confirmed.
	Committable
)

func (s DeliveryState) String() string {
	switch s {
	case Pending:
		return "pending"
	case Committable:
		return "committable"
	default:
		return fmt.Sprintf("DeliveryState(%d)", int(s))
	}
}

// Txn is the manager's bookkeeping for one update transaction. ID, Class
// and Payload are immutable after Opt-delivery; the state fields are owned
// by the Manager and must be read through snapshots (State) by outsiders.
type Txn struct {
	// ID is the atomic broadcast message identifier of the transaction
	// request.
	ID abcast.MsgID
	// Class is the transaction's conflict class.
	Class ClassID
	// Payload is the opaque transaction request (stored procedure name
	// and arguments at the database layer).
	Payload any

	exec    ExecState
	deliv   DeliveryState
	running bool
	epoch   int
	toIndex int64 // definitive index, assigned at TO-delivery (1-based)

	// refs counts deferred perform() actions still referencing this
	// struct; committed is set when the commit action is enqueued. The
	// manager recycles the struct only when it is committed AND every
	// action (including stale submits superseded by an abort) has
	// drained — a stale action must keep observing the original ID so
	// the executor's epoch fence rejects it. Typed atomics so every
	// access — the pool reset included — goes through Load/Store/Add,
	// and the embedded noCopy lets vet's copylocks reject struct
	// copies (the atomiccow analyzer enforces the access side).
	refs      atomic.Int32
	committed atomic.Int32
}

// TOIndex returns the definitive (TO-delivery) index of the transaction,
// or 0 if it has not been TO-delivered yet. Transaction T_i of the paper's
// Section 5 has TOIndex i.
func (t *Txn) TOIndex() int64 { return t.toIndex }

// Epoch returns the abort epoch passed to Executor.Submit; completions
// from stale epochs are ignored by the manager.
func (t *Txn) Epoch() int { return t.epoch }

// State is an externally visible snapshot of a transaction's state.
type State struct {
	ID      abcast.MsgID
	Class   ClassID
	Exec    ExecState
	Deliv   DeliveryState
	Running bool
	TOIndex int64
}

func (s State) String() string {
	return fmt.Sprintf("%v[%s;%s]", s.ID, s.Exec, s.Deliv)
}

// CommitRecord is one entry of the local commit log.
type CommitRecord struct {
	ID      abcast.MsgID
	Class   ClassID
	TOIndex int64
}

// Executor performs the data work on behalf of the manager. Submit must
// not block: it starts asynchronous execution (a goroutine in the live
// engine, a scheduled event in simulations) and the executor later calls
// Manager.OnExecuted with the same epoch. Synchronous executors may call
// OnExecuted from within Submit; the manager tolerates reentrancy.
//
// Abort undoes every effect of a partially or fully executed transaction
// and cancels an in-flight execution (completions with stale epochs are
// discarded by the manager as well). Commit makes the transaction's
// effects permanent and visible, labelled with the definitive index
// tx.TOIndex() for the multi-version snapshot reads of Section 5.
type Executor interface {
	Submit(tx *Txn, epoch int)
	Abort(tx *Txn)
	Commit(tx *Txn)
}

// Stats counts manager events; the experiment harness reads them.
type Stats struct {
	// OptDelivered counts Opt-delivered transactions (queue appends).
	OptDelivered uint64
	// TODelivered counts TO-delivered confirmations.
	TODelivered uint64
	// Commits counts committed transactions.
	Commits uint64
	// Aborts counts CC8 aborts (tentative execution undone and redone).
	Aborts uint64
	// Reorders counts CC10 repositionings that actually moved the
	// transaction (a tentative/definitive mismatch on conflicting
	// transactions).
	Reorders uint64
	// Submits counts executor submissions (first runs and re-runs).
	Submits uint64
}
