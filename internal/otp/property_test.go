package otp

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"otpdb/internal/abcast"
)

// schedule is a randomly generated adversarial driver: it interleaves
// Opt-deliveries (in a site-specific tentative order), TO-deliveries (in
// the global definitive order) and execution completions, checking the
// manager invariants after every step.
type schedule struct {
	numTxns    int
	numClasses int
	seed       int64
}

// run drives one manager through the schedule and returns it with its
// executor. The tentative order is a bounded-displacement shuffle of the
// definitive order, mimicking spontaneous-order mismatches.
func (s schedule) run(t *testing.T, displacement int) (*Manager, *recordingExec) {
	t.Helper()
	rng := rand.New(rand.NewSource(s.seed))
	m, exec := newManager(false)

	classOf := make(map[uint64]ClassID, s.numTxns)
	for i := 1; i <= s.numTxns; i++ {
		classOf[uint64(i)] = ClassID(fmt.Sprintf("c%d", rng.Intn(s.numClasses)))
	}
	tentative := boundedShuffle(s.numTxns, displacement, rng)
	definitive := make([]uint64, s.numTxns)
	for i := range definitive {
		definitive[i] = uint64(i + 1)
	}

	oi, ti := 0, 0
	opted := make(map[uint64]bool)
	for oi < len(tentative) || ti < len(definitive) || m.Pending() > 0 {
		progressed := false
		switch rng.Intn(3) {
		case 0:
			if oi < len(tentative) {
				n := tentative[oi]
				oi++
				opted[n] = true
				if err := m.OnOptDeliver(id(n), classOf[n], nil); err != nil {
					t.Fatal(err)
				}
				progressed = true
			}
		case 1:
			// Local Order: TO only after Opt at this site.
			if ti < len(definitive) && opted[definitive[ti]] {
				n := definitive[ti]
				ti++
				if err := m.OnTODeliver(id(n)); err != nil {
					t.Fatal(err)
				}
				progressed = true
			}
		case 2:
			exec.mu.Lock()
			var runnable []abcast.MsgID
			for rid := range exec.running {
				runnable = append(runnable, rid)
			}
			exec.mu.Unlock()
			if len(runnable) > 0 {
				exec.complete(runnable[rng.Intn(len(runnable))])
				progressed = true
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("invariant violated mid-schedule: %v", err)
		}
		if !progressed && oi == len(tentative) && ti == len(definitive) {
			// Only completions remain; drain them deterministically.
			exec.mu.Lock()
			var runnable []abcast.MsgID
			for rid := range exec.running {
				runnable = append(runnable, rid)
			}
			exec.mu.Unlock()
			if len(runnable) == 0 && m.Pending() > 0 {
				t.Fatalf("deadlock: %d pending, nothing running", m.Pending())
			}
			for _, rid := range runnable {
				exec.complete(rid)
			}
		}
	}
	return m, exec
}

// boundedShuffle returns 1..n with each element displaced at most d
// positions from its sorted slot.
func boundedShuffle(n, d int, rng *rand.Rand) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i + 1)
	}
	for i := 0; i < n-1; i++ {
		if d > 0 && rng.Intn(2) == 0 {
			j := i + 1 + rng.Intn(d)
			if j >= n {
				j = n - 1
			}
			out[i], out[j] = out[j], out[i]
		}
	}
	return out
}

// Theorem 4.1 (starvation freedom): every TO-delivered transaction
// eventually commits, under arbitrary interleavings.
func TestQuickStarvationFreedom(t *testing.T) {
	f := func(seed int64, txns, classes, disp uint8) bool {
		s := schedule{
			numTxns:    int(txns%40) + 5,
			numClasses: int(classes%6) + 1,
			seed:       seed,
		}
		m, _ := s.run(t, int(disp%8))
		return m.Pending() == 0 && len(m.Committed()) == s.numTxns
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Lemma 4.1: conflicting transactions commit in the definitive order.
func TestQuickConflictingCommitsFollowTOOrder(t *testing.T) {
	f := func(seed int64, txns, classes, disp uint8) bool {
		s := schedule{
			numTxns:    int(txns%40) + 5,
			numClasses: int(classes%6) + 1,
			seed:       seed,
		}
		m, _ := s.run(t, int(disp%8))
		lastPerClass := make(map[ClassID]int64)
		for _, rec := range m.Committed() {
			if rec.TOIndex <= lastPerClass[rec.Class] {
				return false
			}
			lastPerClass[rec.Class] = rec.TOIndex
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Theorem 4.2 (1-copy-serializability, structural part): two sites with
// different tentative orders but the same definitive order commit each
// conflict class in exactly the same sequence.
func TestQuickSitesAgreeOnPerClassCommitOrder(t *testing.T) {
	f := func(seed int64, txns, classes uint8) bool {
		n := int(txns%30) + 5
		s1 := schedule{numTxns: n, numClasses: int(classes%6) + 1, seed: seed}
		s2 := schedule{numTxns: n, numClasses: s1.numClasses, seed: seed}
		// Same definitive order and classes (seed-determined), different
		// interleaving/displacement per site.
		m1, _ := s1.run(t, 3)
		m2, _ := s2.run(t, 7)
		byClass := func(m *Manager) map[ClassID][]abcast.MsgID {
			out := make(map[ClassID][]abcast.MsgID)
			for _, rec := range m.Committed() {
				out[rec.Class] = append(out[rec.Class], rec.ID)
			}
			return out
		}
		c1, c2 := byClass(m1), byClass(m2)
		if len(c1) != len(c2) {
			return false
		}
		for class, seq1 := range c1 {
			seq2 := c2[class]
			if len(seq1) != len(seq2) {
				return false
			}
			for i := range seq1 {
				if seq1[i] != seq2[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Abort count sanity: with identical tentative and definitive orders there
// are no aborts regardless of completion timing.
func TestQuickNoMismatchNoAborts(t *testing.T) {
	f := func(seed int64, txns, classes uint8) bool {
		s := schedule{
			numTxns:    int(txns%40) + 5,
			numClasses: int(classes%6) + 1,
			seed:       seed,
		}
		m, _ := s.run(t, 0) // displacement 0: tentative == definitive
		return m.Stats().Aborts == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// A transaction is aborted at most once per TO-delivery mismatch and every
// abort is followed by a successful re-execution (no lost work).
func TestQuickSubmitsCoverAbortsAndCommits(t *testing.T) {
	f := func(seed int64, txns, classes, disp uint8) bool {
		s := schedule{
			numTxns:    int(txns%40) + 5,
			numClasses: int(classes%6) + 1,
			seed:       seed,
		}
		m, _ := s.run(t, int(disp%8))
		st := m.Stats()
		// Every commit needed at least one submit; every abort forces a
		// resubmission. (Submits can exceed this when a txn is aborted
		// while queued but running had not started — it cannot — so
		// equality bounds hold.)
		return st.Submits >= st.Commits && st.Submits <= st.Commits+st.Aborts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
