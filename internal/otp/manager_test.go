package otp

import (
	"errors"
	"sync"
	"testing"

	"otpdb/internal/abcast"
)

// recordingExec is a test Executor. In auto mode every submission
// completes synchronously (exercising the manager's reentrancy); in
// manual mode the test calls complete() explicitly.
type recordingExec struct {
	mgr  *Manager
	auto bool

	mu      sync.Mutex
	running map[abcast.MsgID]int
	submits []abcast.MsgID
	aborts  []abcast.MsgID
	commits []abcast.MsgID
}

func newRecordingExec(auto bool) *recordingExec {
	return &recordingExec{auto: auto, running: make(map[abcast.MsgID]int)}
}

func (e *recordingExec) Submit(tx *Txn, epoch int) {
	e.mu.Lock()
	e.submits = append(e.submits, tx.ID)
	e.running[tx.ID] = epoch
	e.mu.Unlock()
	if e.auto {
		e.mgr.OnExecuted(tx.ID, epoch)
	}
}

func (e *recordingExec) Abort(tx *Txn) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.aborts = append(e.aborts, tx.ID)
	delete(e.running, tx.ID)
}

func (e *recordingExec) Commit(tx *Txn) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.commits = append(e.commits, tx.ID)
	delete(e.running, tx.ID)
}

// complete finishes a manually controlled execution.
func (e *recordingExec) complete(id abcast.MsgID) {
	e.mu.Lock()
	epoch, ok := e.running[id]
	e.mu.Unlock()
	if !ok {
		return
	}
	e.mgr.OnExecuted(id, epoch)
}

func newManager(auto bool) (*Manager, *recordingExec) {
	exec := newRecordingExec(auto)
	mgr := NewManager(exec, Hooks{})
	exec.mgr = mgr
	return mgr, exec
}

func id(n uint64) abcast.MsgID { return abcast.MsgID{Origin: 0, Seq: n} }

func mustOpt(t *testing.T, m *Manager, n uint64, class ClassID) {
	t.Helper()
	if err := m.OnOptDeliver(id(n), class, nil); err != nil {
		t.Fatal(err)
	}
}

func mustTO(t *testing.T, m *Manager, n uint64) {
	t.Helper()
	if err := m.OnTODeliver(id(n)); err != nil {
		t.Fatal(err)
	}
}

func assertInvariants(t *testing.T, m *Manager) {
	t.Helper()
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariant violated: %v", err)
	}
}

// --- Serialization module (Figure 4) ---

func TestS1ToS4FirstTxnSubmitted(t *testing.T) {
	m, exec := newManager(false)
	mustOpt(t, m, 1, "C")
	if len(exec.submits) != 1 || exec.submits[0] != id(1) {
		t.Fatalf("submits = %v, want [m0.1]", exec.submits)
	}
	q := m.QueueSnapshot("C")
	if len(q) != 1 || q[0].Exec != Active || q[0].Deliv != Pending || !q[0].Running {
		t.Fatalf("queue = %v", q)
	}
	assertInvariants(t, m)
}

func TestS3QueuedTxnWaits(t *testing.T) {
	m, exec := newManager(false)
	mustOpt(t, m, 1, "C")
	mustOpt(t, m, 2, "C")
	if len(exec.submits) != 1 {
		t.Fatalf("second conflicting txn submitted early: %v", exec.submits)
	}
	q := m.QueueSnapshot("C")
	if q[1].Running {
		t.Fatal("queued txn marked running")
	}
	assertInvariants(t, m)
}

func TestDifferentClassesRunConcurrently(t *testing.T) {
	m, exec := newManager(false)
	mustOpt(t, m, 1, "X")
	mustOpt(t, m, 2, "Y")
	if len(exec.submits) != 2 {
		t.Fatalf("submits = %v, want both heads", exec.submits)
	}
	assertInvariants(t, m)
}

// --- Execution module (Figure 5) ---

func TestE5ExecutedBeforeTODeliveryWaits(t *testing.T) {
	m, exec := newManager(false)
	mustOpt(t, m, 1, "C")
	exec.complete(id(1))
	if len(exec.commits) != 0 {
		t.Fatal("committed before TO-delivery")
	}
	q := m.QueueSnapshot("C")
	if q[0].Exec != Executed || q[0].Deliv != Pending {
		t.Fatalf("state = %v, want executed/pending", q[0])
	}
	assertInvariants(t, m)
}

func TestE1E3CommitAfterExecutionWhenCommittable(t *testing.T) {
	m, exec := newManager(false)
	mustOpt(t, m, 1, "C")
	mustOpt(t, m, 2, "C")
	mustTO(t, m, 1) // head still executing: marked committable
	if len(exec.commits) != 0 {
		t.Fatal("committed before execution finished")
	}
	exec.complete(id(1)) // E1: executed and committable -> commit
	if len(exec.commits) != 1 || exec.commits[0] != id(1) {
		t.Fatalf("commits = %v", exec.commits)
	}
	// E3: next transaction started.
	if len(exec.submits) != 2 || exec.submits[1] != id(2) {
		t.Fatalf("submits = %v", exec.submits)
	}
	assertInvariants(t, m)
}

// --- Correctness check module (Figure 6) ---

func TestCC2CC4ExecutedHeadCommitsOnTODelivery(t *testing.T) {
	m, exec := newManager(false)
	mustOpt(t, m, 1, "C")
	mustOpt(t, m, 2, "C")
	exec.complete(id(1))
	mustTO(t, m, 1)
	if len(exec.commits) != 1 || exec.commits[0] != id(1) {
		t.Fatalf("commits = %v", exec.commits)
	}
	if len(exec.submits) != 2 || exec.submits[1] != id(2) {
		t.Fatalf("submits = %v", exec.submits)
	}
	assertInvariants(t, m)
}

func TestCC7CC8MismatchAbortsPendingHead(t *testing.T) {
	m, exec := newManager(false)
	mustOpt(t, m, 1, "C") // tentative order: T1 then T2
	mustOpt(t, m, 2, "C")
	exec.complete(id(1)) // T1 executed, still pending
	mustTO(t, m, 2)      // definitive order says T2 first
	if len(exec.aborts) != 1 || exec.aborts[0] != id(1) {
		t.Fatalf("aborts = %v, want [m0.1]", exec.aborts)
	}
	// T2 rescheduled to the head and submitted.
	q := m.QueueSnapshot("C")
	if q[0].ID != id(2) || q[0].Deliv != Committable || !q[0].Running {
		t.Fatalf("head = %v, want committable running m0.2", q[0])
	}
	if q[1].ID != id(1) || q[1].Exec != Active || q[1].Deliv != Pending || q[1].Running {
		t.Fatalf("second = %v, want active pending m0.1", q[1])
	}
	// Finish T2: it commits, T1 re-runs, TO for T1 arrives, T1 commits.
	exec.complete(id(2))
	mustTO(t, m, 1)
	exec.complete(id(1))
	want := []abcast.MsgID{id(2), id(1)}
	if len(exec.commits) != 2 || exec.commits[0] != want[0] || exec.commits[1] != want[1] {
		t.Fatalf("commits = %v, want %v", exec.commits, want)
	}
	st := m.Stats()
	if st.Aborts != 1 || st.Reorders != 1 {
		t.Fatalf("stats = %+v, want 1 abort 1 reorder", st)
	}
	assertInvariants(t, m)
}

// Worked example 1 of Section 3.3:
// CQ = T1[a,c], T2[a,p], T3[a,p]; T3 is TO-delivered next.
// Expected: CQ = T1[a,c], T3[a,c], T2[a,p]; T1 not aborted.
func TestPaperExample1CommittableHeadNotAborted(t *testing.T) {
	m, exec := newManager(false)
	mustOpt(t, m, 1, "C")
	mustOpt(t, m, 2, "C")
	mustOpt(t, m, 3, "C")
	mustTO(t, m, 1) // T1 committable, still executing

	mustTO(t, m, 3) // mismatch, but head is committable
	if len(exec.aborts) != 0 {
		t.Fatalf("committable head aborted: %v", exec.aborts)
	}
	q := m.QueueSnapshot("C")
	wantIDs := []abcast.MsgID{id(1), id(3), id(2)}
	wantDeliv := []DeliveryState{Committable, Committable, Pending}
	for i := range wantIDs {
		if q[i].ID != wantIDs[i] || q[i].Deliv != wantDeliv[i] || q[i].Exec != Active {
			t.Fatalf("queue[%d] = %v, want %v[a,%v]", i, q[i], wantIDs[i], wantDeliv[i])
		}
	}
	assertInvariants(t, m)
}

// Worked example 2 of Section 3.3:
// CQ = T1[e,p], T2[a,p], T3[a,p]; T3 is TO-delivered first.
// Expected: T1 aborted; CQ = T3[a,c], T1[a,p], T2[a,p].
func TestPaperExample2PendingExecutedHeadAborted(t *testing.T) {
	m, exec := newManager(false)
	mustOpt(t, m, 1, "C")
	mustOpt(t, m, 2, "C")
	mustOpt(t, m, 3, "C")
	exec.complete(id(1)) // T1 executed, pending

	mustTO(t, m, 3)
	if len(exec.aborts) != 1 || exec.aborts[0] != id(1) {
		t.Fatalf("aborts = %v, want [m0.1]", exec.aborts)
	}
	q := m.QueueSnapshot("C")
	wantIDs := []abcast.MsgID{id(3), id(1), id(2)}
	wantDeliv := []DeliveryState{Committable, Pending, Pending}
	for i := range wantIDs {
		if q[i].ID != wantIDs[i] || q[i].Deliv != wantDeliv[i] || q[i].Exec != Active {
			t.Fatalf("queue[%d] = %v, want %v[a,%v]", i, q[i], wantIDs[i], wantDeliv[i])
		}
	}
	if !q[0].Running || q[1].Running {
		t.Fatalf("running flags wrong: %v", q)
	}
	assertInvariants(t, m)
}

// The full Section 3.2 scenario at site N': tentative order
// T1,T3,T2,T4,T6,T5 with classes Cx={T1,T2}, Cy={T3,T4}, Cz={T5,T6} and
// definitive order T1..T6. Only the T5/T6 mismatch conflicts; T2/T3 do not.
func TestPaperSection32SiteNPrime(t *testing.T) {
	m, exec := newManager(true) // executions finish instantly
	classOf := map[uint64]ClassID{1: "x", 2: "x", 3: "y", 4: "y", 5: "z", 6: "z"}
	for _, n := range []uint64{1, 3, 2, 4, 6, 5} { // tentative order at N'
		mustOpt(t, m, n, classOf[n])
	}
	for n := uint64(1); n <= 6; n++ { // definitive order
		mustTO(t, m, n)
	}
	if m.Pending() != 0 {
		t.Fatalf("%d transactions never committed", m.Pending())
	}
	st := m.Stats()
	if st.Aborts != 1 {
		t.Fatalf("aborts = %d, want exactly 1 (T6)", st.Aborts)
	}
	if len(exec.aborts) != 1 || exec.aborts[0] != id(6) {
		t.Fatalf("aborted %v, want T6", exec.aborts)
	}
	// Lemma 4.1: per class, commits follow the definitive order.
	pos := make(map[abcast.MsgID]int)
	for i, c := range exec.commits {
		pos[c] = i
	}
	if pos[id(5)] > pos[id(6)] {
		t.Fatal("T6 committed before T5 despite definitive order")
	}
	if pos[id(1)] > pos[id(2)] || pos[id(3)] > pos[id(4)] {
		t.Fatal("per-class commit order violated")
	}
	assertInvariants(t, m)
}

// The same scenario at site N (tentative == definitive): no aborts at all,
// including the non-conflicting T2/T3 discrepancy case.
func TestPaperSection32SiteNNoAborts(t *testing.T) {
	m, exec := newManager(true)
	classOf := map[uint64]ClassID{1: "x", 2: "x", 3: "y", 4: "y", 5: "z", 6: "z"}
	for _, n := range []uint64{1, 2, 3, 4, 5, 6} {
		mustOpt(t, m, n, classOf[n])
	}
	for n := uint64(1); n <= 6; n++ {
		mustTO(t, m, n)
	}
	if st := m.Stats(); st.Aborts != 0 || st.Reorders != 0 {
		t.Fatalf("stats = %+v, want no aborts/reorders", st)
	}
	if len(exec.commits) != 6 {
		t.Fatalf("commits = %v", exec.commits)
	}
	assertInvariants(t, m)
}

// Non-conflicting mismatches (different classes) must not cause aborts.
func TestMismatchAcrossClassesIsFree(t *testing.T) {
	m, _ := newManager(true)
	mustOpt(t, m, 1, "X")
	mustOpt(t, m, 2, "Y")
	// Definitive order reversed relative to tentative.
	mustTO(t, m, 2)
	mustTO(t, m, 1)
	if st := m.Stats(); st.Aborts != 0 {
		t.Fatalf("aborts = %d for cross-class mismatch", st.Aborts)
	}
	if m.Pending() != 0 {
		t.Fatal("transactions stuck")
	}
}

// --- epochs and staleness ---

func TestStaleCompletionAfterAbortIgnored(t *testing.T) {
	m, exec := newManager(false)
	mustOpt(t, m, 1, "C")
	mustOpt(t, m, 2, "C")
	// Capture T1's running epoch, then abort it via a mismatching TO.
	exec.mu.Lock()
	staleEpoch := exec.running[id(1)]
	exec.mu.Unlock()
	mustTO(t, m, 2) // aborts T1, submits T2
	m.OnExecuted(id(1), staleEpoch)
	q := m.QueueSnapshot("C")
	for _, s := range q {
		if s.ID == id(1) && s.Exec != Active {
			t.Fatalf("stale completion applied: %v", s)
		}
	}
	assertInvariants(t, m)
}

func TestCompletionForUnknownTxnIgnored(t *testing.T) {
	m, _ := newManager(false)
	m.OnExecuted(id(99), 0) // must not panic
}

// --- error paths ---

func TestTODeliveryForUnknownTxnErrors(t *testing.T) {
	m, _ := newManager(false)
	err := m.OnTODeliver(id(1))
	if !errors.Is(err, ErrUnknownTxn) {
		t.Fatalf("err = %v, want ErrUnknownTxn", err)
	}
}

func TestDuplicateDeliveriesError(t *testing.T) {
	m, _ := newManager(true)
	mustOpt(t, m, 1, "C")
	if err := m.OnOptDeliver(id(1), "C", nil); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate opt err = %v", err)
	}
	mustTO(t, m, 1)
	// T1 has committed; a second TO-delivery is unknown now.
	if err := m.OnTODeliver(id(1)); err == nil {
		t.Fatal("duplicate TO accepted")
	}
}

// --- hooks, indexes, stats ---

func TestHooksFire(t *testing.T) {
	var commits, aborts []abcast.MsgID
	exec := newRecordingExec(false)
	m := NewManager(exec, Hooks{
		OnCommit: func(tx *Txn) { commits = append(commits, tx.ID) },
		OnAbort:  func(tx *Txn) { aborts = append(aborts, tx.ID) },
	})
	exec.mgr = m
	mustOpt(t, m, 1, "C")
	mustOpt(t, m, 2, "C")
	exec.complete(id(1))
	mustTO(t, m, 2) // abort T1
	exec.complete(id(2))
	if len(aborts) != 1 || aborts[0] != id(1) {
		t.Fatalf("abort hook = %v", aborts)
	}
	if len(commits) != 1 || commits[0] != id(2) {
		t.Fatalf("commit hook = %v", commits)
	}
}

func TestTOIndexAssignmentSequential(t *testing.T) {
	m, _ := newManager(true)
	mustOpt(t, m, 1, "X")
	mustOpt(t, m, 2, "Y")
	mustTO(t, m, 2)
	mustTO(t, m, 1)
	recs := m.Committed()
	idxByID := make(map[abcast.MsgID]int64)
	for _, r := range recs {
		idxByID[r.ID] = r.TOIndex
	}
	if idxByID[id(2)] != 1 || idxByID[id(1)] != 2 {
		t.Fatalf("TO indexes = %v", idxByID)
	}
	if m.LastTOIndex() != 2 {
		t.Fatalf("LastTOIndex = %d", m.LastTOIndex())
	}
}

func TestCommittedReturnsCopy(t *testing.T) {
	m, _ := newManager(true)
	mustOpt(t, m, 1, "C")
	mustTO(t, m, 1)
	recs := m.Committed()
	recs[0].TOIndex = 999
	if m.Committed()[0].TOIndex == 999 {
		t.Fatal("Committed exposes internal slice")
	}
}
