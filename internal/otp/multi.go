package otp

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"otpdb/internal/abcast"
)

// This file implements the generalization the paper defers to its
// companion report ([13], referenced in Sections 2.3 and 6): transactions
// whose conflict specification is a *set* of classes rather than exactly
// one. A multi-class transaction enters the FIFO queue of every class it
// declares, starts executing when it heads all of them, and commits when
// it is executed and TO-delivered. The Correctness Check applies per
// queue: on TO-delivery the transaction is rescheduled before the first
// pending transaction of each of its queues, aborting displaced pending
// heads.
//
// Deadlock freedom is inherited from the insertion discipline: pending
// transactions appear in every queue in tentative-delivery order and
// committable ones in definitive order, so the orders of any two queues
// never disagree and the uncommitted transaction with the smallest
// definitive index heads all of its queues.

// MultiTxn is the bookkeeping for a transaction over a set of classes.
type MultiTxn struct {
	// ID is the broadcast message identifier.
	ID abcast.MsgID
	// Classes is the sorted set of conflict classes the transaction may
	// touch.
	Classes []ClassID
	// Payload is the opaque request.
	Payload any

	exec      ExecState
	deliv     DeliveryState
	running   bool
	epoch     int
	toIndex   int64
	reordered bool

	// refs/committed gate pool recycling exactly as on Txn: the struct
	// is reused only when committed and every deferred action has
	// drained. Typed atomics, same contract as Txn.
	refs      atomic.Int32
	committed atomic.Int32
}

// TOIndex returns the definitive index (0 before TO-delivery).
func (t *MultiTxn) TOIndex() int64 { return t.toIndex }

// Epoch returns the abort epoch for Executor fencing.
func (t *MultiTxn) Epoch() int { return t.epoch }

// Aborts returns how many times the transaction's optimistic execution
// was undone by the Correctness Check (each abort bumps the epoch). A
// committed transaction with Aborts() > 0 took the retry path.
func (t *MultiTxn) Aborts() int { return t.epoch }

// Reordered reports whether TO-delivery moved the transaction ahead of
// pending transactions in at least one of its class queues — i.e. its
// definitive position contradicted the tentative one (CC10).
func (t *MultiTxn) Reordered() bool { return t.reordered }

// MultiExecutor mirrors Executor for multi-class transactions.
type MultiExecutor interface {
	Submit(tx *MultiTxn, epoch int)
	Abort(tx *MultiTxn)
	Commit(tx *MultiTxn)
}

// MultiHooks mirror Hooks.
type MultiHooks struct {
	OnCommit      func(tx *MultiTxn)
	OnAbort       func(tx *MultiTxn)
	OnTODelivered func(id abcast.MsgID, classes []ClassID, toIndex int64)
}

// ErrNoClasses is returned for transactions declaring no conflict class.
var ErrNoClasses = errors.New("otp: transaction declares no conflict class")

// MultiManager schedules multi-class transactions. The single-class
// Manager remains the faithful implementation of the paper's pseudocode;
// this type is the [13]-style generalization.
//
// MultiTxn structs are recycled after commit: executors and hooks must
// not retain a *MultiTxn past the return of the callback that received
// it (copy the fields needed instead — the db executor captures ID,
// Classes and Payload into its attempt struct at Submit time).
type MultiManager struct {
	mu     sync.Mutex
	exec   MultiExecutor
	hooks  MultiHooks
	queues map[ClassID][]*MultiTxn
	index  map[abcast.MsgID]*MultiTxn

	nextTOIndex int64
	committed   commitLog
	stats       Stats
}

type multiAction struct {
	kind  actionKind
	tx    *MultiTxn
	epoch int
}

// multiTxnPool recycles MultiTxn bookkeeping structs (one per
// transaction on the commit hot path).
var multiTxnPool = sync.Pool{New: func() any { return new(MultiTxn) }}

// NewMultiManager creates a manager driving exec.
func NewMultiManager(exec MultiExecutor, hooks MultiHooks) *MultiManager {
	return &MultiManager{
		exec:   exec,
		hooks:  hooks,
		queues: make(map[ClassID][]*MultiTxn),
		index:  make(map[abcast.MsgID]*MultiTxn),
	}
}

// StartAt presets the definitive index counter so the next TO delivery
// is assigned base+1 — the recovery resume point. Call before the first
// delivery; the counter never moves backwards.
func (m *MultiManager) StartAt(base int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if base > m.nextTOIndex {
		m.nextTOIndex = base
	}
}

// OnOptDeliver is the generalized Serialization module: the transaction
// joins every declared class queue in tentative order and starts if it
// heads all of them.
func (m *MultiManager) OnOptDeliver(id abcast.MsgID, classes []ClassID, payload any) error {
	if len(classes) == 0 {
		return ErrNoClasses
	}
	sorted := normalizeClasses(classes)
	m.mu.Lock()
	if _, dup := m.index[id]; dup {
		m.mu.Unlock()
		return fmt.Errorf("%w: %v Opt-delivered twice", ErrDuplicate, id)
	}
	tx := multiTxnPool.Get().(*MultiTxn)
	// Field-by-field reset, as in Manager.OnOptDeliver: a whole-struct
	// write would store refs and committed non-atomically.
	tx.ID = id
	tx.Classes = sorted
	tx.Payload = payload
	tx.exec = Active
	tx.deliv = Pending
	tx.running = false
	tx.epoch = 0
	tx.toIndex = 0
	tx.reordered = false
	tx.refs.Store(0)
	tx.committed.Store(0)
	m.index[id] = tx
	for _, class := range sorted {
		m.queues[class] = append(m.queues[class], tx)
	}
	m.stats.OptDelivered++
	var actsBuf [4]multiAction
	acts := m.trySubmitLocked(tx, actsBuf[:0])
	m.mu.Unlock()
	m.perform(acts)
	return nil
}

// OnExecuted is the generalized Execution module.
func (m *MultiManager) OnExecuted(id abcast.MsgID, epoch int) {
	m.mu.Lock()
	tx, ok := m.index[id]
	if !ok || tx.epoch != epoch || !tx.running {
		m.mu.Unlock()
		return
	}
	tx.running = false
	var actsBuf [4]multiAction
	acts := actsBuf[:0]
	if tx.deliv == Committable {
		acts = m.commitLocked(tx, acts)
	} else {
		tx.exec = Executed
	}
	m.mu.Unlock()
	m.perform(acts)
}

// OnTODeliver is the generalized Correctness Check module: the
// rescheduling of CC7–CC12 is applied in every one of the transaction's
// class queues.
func (m *MultiManager) OnTODeliver(id abcast.MsgID) error {
	m.mu.Lock()
	tx, ok := m.index[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrUnknownTxn, id)
	}
	if tx.deliv == Committable {
		m.mu.Unlock()
		return fmt.Errorf("%w: %v TO-delivered twice", ErrDuplicate, id)
	}
	m.nextTOIndex++
	tx.toIndex = m.nextTOIndex
	m.stats.TODelivered++
	if m.hooks.OnTODelivered != nil {
		m.hooks.OnTODelivered(tx.ID, tx.Classes, tx.toIndex)
	}

	var actsBuf [8]multiAction
	acts := actsBuf[:0]
	if tx.exec == Executed { // executed implies heading all queues
		tx.deliv = Committable
		acts = m.commitLocked(tx, acts)
		m.mu.Unlock()
		m.perform(acts)
		return nil
	}

	tx.deliv = Committable
	aborted := make(map[*MultiTxn]bool)
	for _, class := range tx.Classes {
		q := m.queues[class]
		head := q[0]
		// Generalized CC7/CC8: a pending head that has optimistically
		// started (or finished) must be undone before the confirmed
		// transaction overtakes it. A pending head that never started
		// needs no undo — its queue entry simply shifts.
		if head != tx && head.deliv == Pending && (head.running || head.exec == Executed) && !aborted[head] {
			aborted[head] = true
			acts = m.abortLocked(head, acts)
		}
		m.rescheduleInClassLocked(tx, class)
	}
	acts = m.trySubmitLocked(tx, acts)
	m.mu.Unlock()
	m.perform(acts)
	return nil
}

// trySubmitLocked starts tx if it is active, idle, and heads every one of
// its queues.
func (m *MultiManager) trySubmitLocked(tx *MultiTxn, acts []multiAction) []multiAction {
	if tx.running || tx.exec != Active {
		return acts
	}
	for _, class := range tx.Classes {
		q := m.queues[class]
		if len(q) == 0 || q[0] != tx {
			return acts
		}
	}
	tx.running = true
	m.stats.Submits++
	tx.refs.Add(1)
	return append(acts, multiAction{kind: actSubmit, tx: tx, epoch: tx.epoch})
}

// commitLocked removes tx from all its queues and wakes the new heads.
func (m *MultiManager) commitLocked(tx *MultiTxn, acts []multiAction) []multiAction {
	for _, class := range tx.Classes {
		q := m.queues[class]
		if len(q) == 0 || q[0] != tx {
			panic(fmt.Sprintf("otp: multi commit of %v while not heading %s", tx.ID, class))
		}
		m.queues[class] = q[1:]
	}
	delete(m.index, tx.ID)
	m.committed.add(CommitRecord{ID: tx.ID, Class: tx.Classes[0], TOIndex: tx.toIndex})
	m.stats.Commits++
	tx.refs.Add(1)
	tx.committed.Store(1)
	acts = append(acts, multiAction{kind: actCommit, tx: tx})
	// New heads of the vacated queues may now be runnable.
	tried := make(map[*MultiTxn]bool)
	for _, class := range tx.Classes {
		q := m.queues[class]
		if len(q) == 0 || tried[q[0]] {
			continue
		}
		tried[q[0]] = true
		acts = m.trySubmitLocked(q[0], acts)
	}
	return acts
}

func (m *MultiManager) abortLocked(tx *MultiTxn, acts []multiAction) []multiAction {
	tx.epoch++
	tx.running = false
	tx.exec = Active
	m.stats.Aborts++
	tx.refs.Add(1)
	return append(acts, multiAction{kind: actAbort, tx: tx})
}

// rescheduleInClassLocked moves tx before the first pending transaction
// of one class queue (committable transactions form a prefix per queue).
func (m *MultiManager) rescheduleInClassLocked(tx *MultiTxn, class ClassID) {
	q := m.queues[class]
	pos := -1
	for i, cur := range q {
		if cur == tx {
			pos = i
			break
		}
	}
	if pos < 0 {
		panic(fmt.Sprintf("otp: %v missing from class %s", tx.ID, class))
	}
	q = append(q[:pos], q[pos+1:]...)
	ins := 0
	for ins < len(q) && q[ins].deliv == Committable {
		ins++
	}
	q = append(q, nil)
	copy(q[ins+1:], q[ins:])
	q[ins] = tx
	m.queues[class] = q
	if pos != ins {
		m.stats.Reorders++
		tx.reordered = true
	}
}

// perform executes deferred executor calls outside the lock, in protocol
// order. A committed transaction is recycled once its last deferred
// action drains — never earlier, so a stale submit superseded by a
// racing abort still reads the original struct and is rejected by the
// executor's epoch fence (see the MultiManager retention contract).
func (m *MultiManager) perform(acts []multiAction) {
	for _, a := range acts {
		switch a.kind {
		case actAbort:
			m.exec.Abort(a.tx)
			if m.hooks.OnAbort != nil {
				m.hooks.OnAbort(a.tx)
			}
		case actCommit:
			m.exec.Commit(a.tx)
			if m.hooks.OnCommit != nil {
				m.hooks.OnCommit(a.tx)
			}
		case actSubmit:
			m.exec.Submit(a.tx, a.epoch)
		}
		// Flag load BEFORE the decrement — see Manager.perform for the
		// ordering argument.
		committed := a.tx.committed.Load() == 1
		if a.tx.refs.Add(-1) == 0 && committed {
			multiTxnPool.Put(a.tx)
		}
	}
}

// Stats returns a snapshot of the counters.
func (m *MultiManager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Committed returns a copy of the commit log in commit order. The Class
// field holds the transaction's first declared class. The log retains
// the most recent commitLogCap records; callers needing the full history
// of a long run should consume the OnCommit hook.
func (m *MultiManager) Committed() []CommitRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.committed.snapshot()
}

// Pending reports delivered-but-uncommitted transactions.
func (m *MultiManager) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.index)
}

// LastTOIndex returns the most recent definitive index.
func (m *MultiManager) LastTOIndex() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nextTOIndex
}

// QueueSnapshot returns one class queue head-first.
func (m *MultiManager) QueueSnapshot(class ClassID) []State {
	m.mu.Lock()
	defer m.mu.Unlock()
	q := m.queues[class]
	out := make([]State, len(q))
	for i, tx := range q {
		out[i] = State{
			ID:      tx.ID,
			Class:   class,
			Exec:    tx.exec,
			Deliv:   tx.deliv,
			Running: tx.running,
			TOIndex: tx.toIndex,
		}
	}
	return out
}

// CheckInvariants validates the multi-class structural invariants:
// committable transactions form a prefix of every queue in ascending
// definitive order, pending suffixes share a consistent relative order
// across queues, and a running or executed transaction heads every one of
// its queues.
func (m *MultiManager) CheckInvariants() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for class, q := range m.queues {
		inPrefix := true
		lastTO := int64(0)
		for _, tx := range q {
			if m.index[tx.ID] != tx {
				return fmt.Errorf("class %s: %v not indexed", class, tx.ID)
			}
			switch tx.deliv {
			case Committable:
				if !inPrefix {
					return fmt.Errorf("class %s: committable %v after pending", class, tx.ID)
				}
				if tx.toIndex <= lastTO {
					return fmt.Errorf("class %s: committable prefix not in definitive order", class)
				}
				lastTO = tx.toIndex
			case Pending:
				inPrefix = false
			}
		}
	}
	for _, tx := range m.index {
		if tx.running || tx.exec == Executed {
			for _, class := range tx.Classes {
				q := m.queues[class]
				if len(q) == 0 || q[0] != tx {
					return fmt.Errorf("%v is %v/running=%v but not heading %s",
						tx.ID, tx.exec, tx.running, class)
				}
			}
		}
	}
	return nil
}

// normalizeClasses sorts and dedupes a class set. Class sets are tiny
// (usually one or two entries), so linear dedup beats a map and the
// single-class case allocates just the one-element slice.
func normalizeClasses(classes []ClassID) []ClassID {
	if len(classes) == 1 {
		return []ClassID{classes[0]}
	}
	out := make([]ClassID, 0, len(classes))
	for _, c := range classes {
		dup := false
		for _, u := range out {
			if u == c {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
