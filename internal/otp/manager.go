package otp

import (
	"errors"
	"fmt"
	"sync"

	"otpdb/internal/abcast"
)

// Errors reported by the manager. They indicate protocol violations by the
// layer above (the broadcast must Opt-deliver before TO-delivering and
// never deliver twice), so callers usually treat them as fatal.
var (
	// ErrUnknownTxn is returned by OnTODeliver for a transaction that was
	// never Opt-delivered (violates the broadcast's Local Order property).
	ErrUnknownTxn = errors.New("otp: TO-delivery for unknown transaction")
	// ErrDuplicate is returned when a transaction is delivered twice.
	ErrDuplicate = errors.New("otp: duplicate delivery")
)

// Hooks are optional observation points. OnCommit and OnAbort are invoked
// outside the manager lock; OnTODelivered is invoked under it (it must be
// fast and must not call back into the manager).
type Hooks struct {
	// OnCommit fires after Executor.Commit for each transaction.
	OnCommit func(tx *Txn)
	// OnAbort fires after Executor.Abort for each CC8 abort.
	OnAbort func(tx *Txn)
	// OnTODelivered fires when a transaction's definitive index is
	// assigned, before any rescheduling. The query layer uses it to track
	// the largest definitive index per conflict class (Section 5).
	OnTODelivered func(id abcast.MsgID, class ClassID, toIndex int64)
}

// Manager is the OTP transaction manager of Section 3: the Serialization,
// Execution and Correctness Check modules operating on the conflict-class
// queues. All methods are safe for concurrent use; the executor callbacks
// triggered by a method run after its internal lock is released, in
// protocol order (aborts, then commits, then submissions of that step).
//
// Txn structs are recycled after commit: executors and hooks must not
// retain a *Txn past the return of the callback that received it (copy
// the fields needed instead). Every implementation in this repository
// already follows that discipline.
type Manager struct {
	mu     sync.Mutex
	exec   Executor
	hooks  Hooks
	queues map[ClassID][]*Txn
	index  map[abcast.MsgID]*Txn

	nextTOIndex int64
	committed   commitLog
	stats       Stats
}

// txnPool recycles Txn bookkeeping structs: the scheduler allocates one
// per transaction and the commit hot path is allocation-sensitive.
var txnPool = sync.Pool{New: func() any { return new(Txn) }}

// commitLogCap bounds the in-memory commit log. An unbounded log is a
// slow memory leak on a long-running replica (and its reallocation
// dominated the commit hot path); callers needing the full history
// should consume the OnCommit hook instead.
const commitLogCap = 1 << 16

// commitLog is a bounded ring of the most recent commit records.
type commitLog struct {
	recs []CommitRecord
	next int // write position once the ring is full
}

// add appends a record, evicting the oldest once the ring is full.
func (l *commitLog) add(rec CommitRecord) {
	if len(l.recs) < commitLogCap {
		l.recs = append(l.recs, rec)
		return
	}
	l.recs[l.next] = rec
	l.next = (l.next + 1) % commitLogCap
}

// snapshot returns the retained records in commit order.
func (l *commitLog) snapshot() []CommitRecord {
	out := make([]CommitRecord, 0, len(l.recs))
	out = append(out, l.recs[l.next:]...)
	out = append(out, l.recs[:l.next]...)
	return out
}

// actionKind orders deferred executor calls.
type actionKind int

const (
	actAbort actionKind = iota + 1
	actCommit
	actSubmit
)

type action struct {
	kind  actionKind
	tx    *Txn
	epoch int
}

// NewManager creates a manager that drives exec.
func NewManager(exec Executor, hooks Hooks) *Manager {
	return &Manager{
		exec:   exec,
		hooks:  hooks,
		queues: make(map[ClassID][]*Txn),
		index:  make(map[abcast.MsgID]*Txn),
	}
}

// OnOptDeliver is the Serialization module (Figure 4). It appends the
// transaction to its class queue in tentative order (S1), marks it pending
// and active (S2) and submits it when it is alone in the queue (S3–S4).
func (m *Manager) OnOptDeliver(id abcast.MsgID, class ClassID, payload any) error {
	m.mu.Lock()
	if _, dup := m.index[id]; dup {
		m.mu.Unlock()
		return fmt.Errorf("%w: %v Opt-delivered twice", ErrDuplicate, id)
	}
	tx := txnPool.Get().(*Txn)
	// Field-by-field reset: a whole-struct write would store refs and
	// committed non-atomically, racing a late decref from the previous
	// incarnation's perform() drain.
	tx.ID = id
	tx.Class = class
	tx.Payload = payload
	tx.exec = Active   // S2
	tx.deliv = Pending // S2
	tx.running = false
	tx.epoch = 0
	tx.toIndex = 0
	tx.refs.Store(0)
	tx.committed.Store(0)
	m.index[id] = tx
	q := append(m.queues[class], tx) // S1
	m.queues[class] = q
	m.stats.OptDelivered++
	var actsBuf [4]action
	acts := actsBuf[:0]
	if len(q) == 1 { // S3
		acts = m.submitLocked(tx, acts) // S4
	}
	m.mu.Unlock()
	m.perform(acts)
	return nil
}

// OnExecuted is the Execution module (Figure 5), invoked by the executor
// when a submitted transaction finishes. Completions carrying a stale
// epoch (the transaction was aborted meanwhile) are discarded.
func (m *Manager) OnExecuted(id abcast.MsgID, epoch int) {
	m.mu.Lock()
	tx, ok := m.index[id]
	if !ok || tx.epoch != epoch || !tx.running {
		m.mu.Unlock()
		return
	}
	tx.running = false
	var actsBuf [4]action
	acts := actsBuf[:0]
	if tx.deliv == Committable { // E1
		acts = m.commitLocked(tx, acts) // E2–E3
	} else {
		tx.exec = Executed // E5
	}
	m.mu.Unlock()
	m.perform(acts)
}

// OnTODeliver is the Correctness Check module (Figure 6). It confirms the
// definitive position of a transaction: an executed head commits (CC2–CC4);
// otherwise the transaction is marked committable (CC6), a pending head is
// aborted (CC7–CC8), the transaction is rescheduled before the first
// pending one (CC10) and submitted if it is now the head (CC11–CC12).
func (m *Manager) OnTODeliver(id abcast.MsgID) error {
	m.mu.Lock()
	tx, ok := m.index[id] // CC1
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrUnknownTxn, id)
	}
	if tx.deliv == Committable {
		m.mu.Unlock()
		return fmt.Errorf("%w: %v TO-delivered twice", ErrDuplicate, id)
	}
	m.nextTOIndex++
	tx.toIndex = m.nextTOIndex
	m.stats.TODelivered++
	if m.hooks.OnTODelivered != nil {
		m.hooks.OnTODelivered(tx.ID, tx.Class, tx.toIndex)
	}

	var actsBuf [4]action
	acts := actsBuf[:0]
	if tx.exec == Executed { // CC2: can only be the head of its queue
		tx.deliv = Committable
		acts = m.commitLocked(tx, acts) // CC3–CC4
		m.mu.Unlock()
		m.perform(acts)
		return nil
	}

	// CC5: not fully executed, or not the head.
	tx.deliv = Committable // CC6
	q := m.queues[tx.Class]
	if head := q[0]; head.deliv == Pending { // CC7 (tx itself is committable now)
		acts = m.abortLocked(head, acts) // CC8
	}
	acts = m.rescheduleLocked(tx, acts) // CC10–CC12
	m.mu.Unlock()
	m.perform(acts)
	return nil
}

// submitLocked starts tx on the executor.
func (m *Manager) submitLocked(tx *Txn, acts []action) []action {
	tx.running = true
	m.stats.Submits++
	tx.refs.Add(1)
	return append(acts, action{kind: actSubmit, tx: tx, epoch: tx.epoch})
}

// commitLocked commits tx (it must be the head of its queue), removes it,
// and starts the next transaction (E2–E3 / CC3–CC4).
func (m *Manager) commitLocked(tx *Txn, acts []action) []action {
	q := m.queues[tx.Class]
	if len(q) == 0 || q[0] != tx {
		// Protocol invariant: only the head can commit.
		panic(fmt.Sprintf("otp: commit of non-head transaction %v", tx.ID))
	}
	m.queues[tx.Class] = q[1:]
	delete(m.index, tx.ID)
	m.committed.add(CommitRecord{ID: tx.ID, Class: tx.Class, TOIndex: tx.toIndex})
	m.stats.Commits++
	tx.refs.Add(1)
	tx.committed.Store(1)
	acts = append(acts, action{kind: actCommit, tx: tx})
	if next := m.queues[tx.Class]; len(next) > 0 { // E3/CC4
		if next[0].exec == Executed {
			panic(fmt.Sprintf("otp: queued transaction %v executed while not head", next[0].ID))
		}
		acts = m.submitLocked(next[0], acts)
	}
	return acts
}

// abortLocked undoes the head transaction (CC8): its effects are rolled
// back, its execution (if any) is invalidated via the epoch, and it
// becomes active again, to be re-run when it reaches the head.
func (m *Manager) abortLocked(tx *Txn, acts []action) []action {
	tx.epoch++
	tx.running = false
	tx.exec = Active
	m.stats.Aborts++
	tx.refs.Add(1)
	return append(acts, action{kind: actAbort, tx: tx})
}

// rescheduleLocked implements CC10–CC12: move tx before the first pending
// transaction in its class queue (committable transactions always form a
// prefix), then submit it if it is now the head.
func (m *Manager) rescheduleLocked(tx *Txn, acts []action) []action {
	q := m.queues[tx.Class]
	// Remove tx.
	pos := -1
	for i, cur := range q {
		if cur == tx {
			pos = i
			break
		}
	}
	if pos < 0 {
		panic(fmt.Sprintf("otp: transaction %v missing from its class queue", tx.ID))
	}
	q = append(q[:pos], q[pos+1:]...)
	// Insertion point: after the committable prefix (== before the first
	// pending transaction, CC10).
	ins := 0
	for ins < len(q) && q[ins].deliv == Committable {
		ins++
	}
	q = append(q, nil)
	copy(q[ins+1:], q[ins:])
	q[ins] = tx
	m.queues[tx.Class] = q
	if pos != ins {
		m.stats.Reorders++
	}
	if ins == 0 && !tx.running { // CC11–CC12
		acts = m.submitLocked(tx, acts)
	}
	return acts
}

// perform executes deferred executor calls outside the lock, in protocol
// order. A committed transaction is recycled once its last deferred
// action drains — never earlier, so a stale submit superseded by a
// racing abort still reads the original struct and is rejected by the
// executor's epoch fence (see the Manager retention contract).
func (m *Manager) perform(acts []action) {
	for _, a := range acts {
		switch a.kind {
		case actAbort:
			m.exec.Abort(a.tx)
			if m.hooks.OnAbort != nil {
				m.hooks.OnAbort(a.tx)
			}
		case actCommit:
			m.exec.Commit(a.tx)
			if m.hooks.OnCommit != nil {
				m.hooks.OnCommit(a.tx)
			}
		case actSubmit:
			m.exec.Submit(a.tx, a.epoch)
		}
		// Read the committed flag BEFORE the decrement: the decrement is
		// the release point ordering this iteration before a recycle by
		// whichever goroutine drains the last reference — a load after
		// it would race with the pool reuse's reset. If this drainer
		// observes a stale 0 here the struct is simply left to the GC
		// (missed reuse, not a leak).
		committed := a.tx.committed.Load() == 1
		if a.tx.refs.Add(-1) == 0 && committed {
			txnPool.Put(a.tx)
		}
	}
}

// Stats returns a snapshot of the manager counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Committed returns a copy of the local commit log, in commit order. The
// log retains the most recent commitLogCap records; callers needing the
// full history of a long run should consume the OnCommit hook.
func (m *Manager) Committed() []CommitRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.committed.snapshot()
}

// LastTOIndex returns the index of the most recent TO-delivered
// transaction; queries of Section 5 start with index LastTOIndex()+0.5.
func (m *Manager) LastTOIndex() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nextTOIndex
}

// QueueSnapshot returns the current state of one class queue, head first.
func (m *Manager) QueueSnapshot(class ClassID) []State {
	m.mu.Lock()
	defer m.mu.Unlock()
	q := m.queues[class]
	out := make([]State, len(q))
	for i, tx := range q {
		out[i] = State{
			ID:      tx.ID,
			Class:   tx.Class,
			Exec:    tx.exec,
			Deliv:   tx.deliv,
			Running: tx.running,
			TOIndex: tx.toIndex,
		}
	}
	return out
}

// Pending reports the number of transactions still queued (delivered but
// not committed) across all classes.
func (m *Manager) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.index)
}

// CheckInvariants validates the structural invariants of the class queues:
// committable transactions form a prefix of every queue, only the head may
// be running or executed, and every queued transaction is indexed. It
// returns nil when all invariants hold.
func (m *Manager) CheckInvariants() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	indexed := 0
	for class, q := range m.queues {
		inPrefix := true
		for i, tx := range q {
			indexed++
			if m.index[tx.ID] != tx {
				return fmt.Errorf("class %s: %v not indexed", class, tx.ID)
			}
			if tx.Class != class {
				return fmt.Errorf("class %s: %v has class %s", class, tx.ID, tx.Class)
			}
			if tx.deliv == Committable && !inPrefix {
				return fmt.Errorf("class %s: committable %v after a pending transaction", class, tx.ID)
			}
			if tx.deliv == Pending {
				inPrefix = false
			}
			if i > 0 && (tx.running || tx.exec == Executed) {
				return fmt.Errorf("class %s: non-head %v is %v/running=%v", class, tx.ID, tx.exec, tx.running)
			}
		}
	}
	if indexed != len(m.index) {
		return fmt.Errorf("index size %d != queued transactions %d", len(m.index), indexed)
	}
	return nil
}
