package otp

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"otpdb/internal/abcast"
)

// recordingMultiExec mirrors recordingExec for MultiManager.
type recordingMultiExec struct {
	mgr  *MultiManager
	auto bool

	mu      sync.Mutex
	running map[abcast.MsgID]int
	submits []abcast.MsgID
	aborts  []abcast.MsgID
	commits []abcast.MsgID
}

func newMultiExec(auto bool) *recordingMultiExec {
	return &recordingMultiExec{auto: auto, running: make(map[abcast.MsgID]int)}
}

func (e *recordingMultiExec) Submit(tx *MultiTxn, epoch int) {
	e.mu.Lock()
	e.submits = append(e.submits, tx.ID)
	e.running[tx.ID] = epoch
	e.mu.Unlock()
	if e.auto {
		e.mgr.OnExecuted(tx.ID, epoch)
	}
}

func (e *recordingMultiExec) Abort(tx *MultiTxn) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.aborts = append(e.aborts, tx.ID)
	delete(e.running, tx.ID)
}

func (e *recordingMultiExec) Commit(tx *MultiTxn) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.commits = append(e.commits, tx.ID)
	delete(e.running, tx.ID)
}

func (e *recordingMultiExec) complete(id abcast.MsgID) {
	e.mu.Lock()
	epoch, ok := e.running[id]
	e.mu.Unlock()
	if !ok {
		return
	}
	e.mgr.OnExecuted(id, epoch)
}

func newMulti(auto bool) (*MultiManager, *recordingMultiExec) {
	exec := newMultiExec(auto)
	mgr := NewMultiManager(exec, MultiHooks{})
	exec.mgr = mgr
	return mgr, exec
}

func mustOptM(t *testing.T, m *MultiManager, n uint64, classes ...ClassID) {
	t.Helper()
	if err := m.OnOptDeliver(id(n), classes, nil); err != nil {
		t.Fatal(err)
	}
}

func mustTOM(t *testing.T, m *MultiManager, n uint64) {
	t.Helper()
	if err := m.OnTODeliver(id(n)); err != nil {
		t.Fatal(err)
	}
}

func assertMultiInvariants(t *testing.T, m *MultiManager) {
	t.Helper()
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariant violated: %v", err)
	}
}

func TestMultiRejectsEmptyClassSet(t *testing.T) {
	m, _ := newMulti(false)
	if err := m.OnOptDeliver(id(1), nil, nil); !errors.Is(err, ErrNoClasses) {
		t.Fatalf("err = %v", err)
	}
}

func TestMultiSingleClassBehavesLikeManager(t *testing.T) {
	m, exec := newMulti(false)
	mustOptM(t, m, 1, "C")
	mustOptM(t, m, 2, "C")
	if len(exec.submits) != 1 {
		t.Fatalf("submits = %v", exec.submits)
	}
	exec.complete(id(1))
	mustTOM(t, m, 1)
	mustTOM(t, m, 2)
	exec.complete(id(2))
	if len(exec.commits) != 2 || exec.commits[0] != id(1) {
		t.Fatalf("commits = %v", exec.commits)
	}
	assertMultiInvariants(t, m)
}

func TestMultiWaitsForAllHeads(t *testing.T) {
	m, exec := newMulti(false)
	mustOptM(t, m, 1, "A")      // heads A, runs
	mustOptM(t, m, 2, "A", "B") // behind T1 in A: must wait
	if len(exec.submits) != 1 || exec.submits[0] != id(1) {
		t.Fatalf("submits = %v", exec.submits)
	}
	q := m.QueueSnapshot("B")
	if len(q) != 1 || q[0].Running {
		t.Fatalf("B queue = %v; cross-class txn must not run", q)
	}
	// T1 commits; T2 heads both queues and starts.
	exec.complete(id(1))
	mustTOM(t, m, 1)
	if len(exec.submits) != 2 || exec.submits[1] != id(2) {
		t.Fatalf("submits = %v", exec.submits)
	}
	assertMultiInvariants(t, m)
}

func TestMultiClassTxnBlocksBothQueues(t *testing.T) {
	m, exec := newMulti(false)
	mustOptM(t, m, 1, "A", "B") // heads both, runs
	mustOptM(t, m, 2, "A")
	mustOptM(t, m, 3, "B")
	if len(exec.submits) != 1 {
		t.Fatalf("submits = %v", exec.submits)
	}
	exec.complete(id(1))
	mustTOM(t, m, 1) // commit T1; both T2 and T3 become runnable
	if len(exec.submits) != 3 {
		t.Fatalf("submits = %v; want T2 and T3 released", exec.submits)
	}
	assertMultiInvariants(t, m)
}

func TestMultiMismatchAbortsRunningHead(t *testing.T) {
	m, exec := newMulti(false)
	mustOptM(t, m, 1, "A", "B") // tentative first, starts
	mustOptM(t, m, 2, "B", "C")
	exec.complete(id(1)) // T1 executed, pending
	mustTOM(t, m, 2)     // definitive order favours T2: T1 must be undone
	if len(exec.aborts) != 1 || exec.aborts[0] != id(1) {
		t.Fatalf("aborts = %v", exec.aborts)
	}
	// T2 now heads B and C and runs; T1 waits behind it in B.
	q := m.QueueSnapshot("B")
	if q[0].ID != id(2) || !q[0].Running {
		t.Fatalf("B head = %v", q[0])
	}
	exec.complete(id(2))
	mustTOM(t, m, 1)
	exec.complete(id(1))
	want := []abcast.MsgID{id(2), id(1)}
	for i := range want {
		if exec.commits[i] != want[i] {
			t.Fatalf("commits = %v, want %v", exec.commits, want)
		}
	}
	assertMultiInvariants(t, m)
}

func TestMultiIdleHeadNotAbortedOnDisplacement(t *testing.T) {
	m, exec := newMulti(false)
	mustOptM(t, m, 1, "A")      // runs in A
	mustOptM(t, m, 2, "A", "B") // waits behind T1; heads B but idle
	mustOptM(t, m, 3, "B")      // behind T2 in B
	// T3 confirmed first: T2 (B's head) is pending but never started, so
	// no executor abort is needed — it just shifts.
	mustTOM(t, m, 3)
	if len(exec.aborts) != 0 {
		t.Fatalf("aborted idle transaction: %v", exec.aborts)
	}
	q := m.QueueSnapshot("B")
	if q[0].ID != id(3) || q[1].ID != id(2) {
		t.Fatalf("B queue = %v", q)
	}
	// T3 heads B and runs immediately.
	if !q[0].Running {
		t.Fatalf("confirmed head not running: %v", q[0])
	}
	assertMultiInvariants(t, m)
}

func TestMultiDuplicateClassesNormalized(t *testing.T) {
	m, _ := newMulti(true)
	mustOptM(t, m, 1, "B", "A", "B")
	mustTOM(t, m, 1)
	if m.Pending() != 0 {
		t.Fatal("txn with duplicate classes stuck")
	}
	if len(m.Committed()) != 1 || m.Committed()[0].Class != "A" {
		t.Fatalf("committed = %v", m.Committed())
	}
}

func TestMultiErrorsMirrorManager(t *testing.T) {
	m, _ := newMulti(true)
	mustOptM(t, m, 1, "C")
	if err := m.OnOptDeliver(id(1), []ClassID{"C"}, nil); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("dup opt err = %v", err)
	}
	if err := m.OnTODeliver(id(9)); !errors.Is(err, ErrUnknownTxn) {
		t.Fatalf("unknown TO err = %v", err)
	}
	m.OnExecuted(id(9), 0) // must not panic
}

func TestMultiHooksFire(t *testing.T) {
	exec := newMultiExec(false)
	var commits, toDelivs int
	m := NewMultiManager(exec, MultiHooks{
		OnCommit:      func(*MultiTxn) { commits++ },
		OnTODelivered: func(_ abcast.MsgID, classes []ClassID, _ int64) { toDelivs += len(classes) },
	})
	exec.mgr = m
	if err := m.OnOptDeliver(id(1), []ClassID{"A", "B"}, nil); err != nil {
		t.Fatal(err)
	}
	exec.complete(id(1))
	if err := m.OnTODeliver(id(1)); err != nil {
		t.Fatal(err)
	}
	if commits != 1 || toDelivs != 2 {
		t.Fatalf("commits=%d toDelivs=%d", commits, toDelivs)
	}
}

// multiSchedule drives a MultiManager through a random adversarial
// schedule: random class sets, mismatched tentative order, interleaved
// completions. Mirrors the single-class property harness.
func runMultiSchedule(t *testing.T, numTxns, numClasses int, displacement int, seed int64) (*MultiManager, *recordingMultiExec) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m, exec := newMulti(false)

	classSets := make(map[uint64][]ClassID, numTxns)
	for i := 1; i <= numTxns; i++ {
		n := 1 + rng.Intn(3) // 1-3 classes per txn
		set := make([]ClassID, 0, n)
		for j := 0; j < n; j++ {
			set = append(set, ClassID(fmt.Sprintf("c%d", rng.Intn(numClasses))))
		}
		classSets[uint64(i)] = set
	}
	tentative := boundedShuffle(numTxns, displacement, rng)
	oi, ti := 0, 0
	opted := make(map[uint64]bool)
	for oi < len(tentative) || ti < numTxns || m.Pending() > 0 {
		progressed := false
		switch rng.Intn(3) {
		case 0:
			if oi < len(tentative) {
				n := tentative[oi]
				oi++
				opted[n] = true
				if err := m.OnOptDeliver(id(n), classSets[n], nil); err != nil {
					t.Fatal(err)
				}
				progressed = true
			}
		case 1:
			next := uint64(ti + 1)
			if ti < numTxns && opted[next] {
				ti++
				if err := m.OnTODeliver(id(next)); err != nil {
					t.Fatal(err)
				}
				progressed = true
			}
		case 2:
			exec.mu.Lock()
			var runnable []abcast.MsgID
			for rid := range exec.running {
				runnable = append(runnable, rid)
			}
			exec.mu.Unlock()
			if len(runnable) > 0 {
				exec.complete(runnable[rng.Intn(len(runnable))])
				progressed = true
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("invariant violated mid-schedule: %v", err)
		}
		if !progressed && oi == len(tentative) && ti == numTxns {
			exec.mu.Lock()
			var runnable []abcast.MsgID
			for rid := range exec.running {
				runnable = append(runnable, rid)
			}
			exec.mu.Unlock()
			if len(runnable) == 0 && m.Pending() > 0 {
				t.Fatalf("deadlock: %d pending, nothing running (seed %d)", m.Pending(), seed)
			}
			for _, rid := range runnable {
				exec.complete(rid)
			}
		}
	}
	return m, exec
}

// Starvation freedom and deadlock freedom for multi-class transactions.
func TestQuickMultiStarvationFreedom(t *testing.T) {
	f := func(seed int64, txns, classes, disp uint8) bool {
		n := int(txns%25) + 5
		m, _ := runMultiSchedule(t, n, int(classes%5)+2, int(disp%6), seed)
		return m.Pending() == 0 && len(m.Committed()) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Commit order respects the definitive order for every pair of
// transactions sharing a class (the generalized Lemma 4.1).
func TestQuickMultiConflictingCommitsFollowTOOrder(t *testing.T) {
	f := func(seed int64, txns, classes, disp uint8) bool {
		n := int(txns%25) + 5
		m, exec := runMultiSchedule(t, n, int(classes%5)+2, int(disp%6), seed)
		_ = m
		// Reconstruct commit positions and class sets.
		pos := make(map[abcast.MsgID]int)
		for i, cid := range exec.commits {
			pos[cid] = i
		}
		toIdx := make(map[abcast.MsgID]int64)
		for _, rec := range m.Committed() {
			toIdx[rec.ID] = rec.TOIndex
		}
		// For every committed pair sharing a class, commit order must
		// follow definitive order. We recover class sets from the
		// schedule's deterministic RNG replay.
		rng := rand.New(rand.NewSource(seed))
		classSets := make(map[uint64]map[ClassID]bool, n)
		for i := 1; i <= n; i++ {
			cnt := 1 + rng.Intn(3)
			set := make(map[ClassID]bool, cnt)
			for j := 0; j < cnt; j++ {
				set[ClassID(fmt.Sprintf("c%d", rng.Intn(int(classes%5)+2)))] = true
			}
			classSets[uint64(i)] = set
		}
		share := func(a, b uint64) bool {
			for c := range classSets[a] {
				if classSets[b][c] {
					return true
				}
			}
			return false
		}
		for a := uint64(1); a <= uint64(n); a++ {
			for b := a + 1; b <= uint64(n); b++ {
				if !share(a, b) {
					continue
				}
				ia, ib := id(a), id(b)
				if (toIdx[ia] < toIdx[ib]) != (pos[ia] < pos[ib]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
