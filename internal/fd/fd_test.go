package fd

import (
	"sync"
	"testing"
	"time"

	"otpdb/internal/testutil"
	"otpdb/internal/transport"
)

func startDetectors(t *testing.T, h *transport.Hub, n int, cfg Config) []*Detector {
	t.Helper()
	ds := make([]*Detector, n)
	for i := 0; i < n; i++ {
		ds[i] = New(h.Endpoint(transport.NodeID(i)), cfg)
		ds[i].Start()
	}
	t.Cleanup(func() {
		for _, d := range ds {
			d.Stop()
		}
	})
	return ds
}

func eventually(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	testutil.Eventually(t, timeout, msg, cond)
}

// TestNoFalseSuspicionWhenAllAlive asserts the negative over many
// heartbeat intervals. The suspicion timeout is deliberately enormous
// relative to the interval, so the assertion cannot flake on scheduling
// pauses: a false suspicion would require every heartbeat of a live node
// to be delayed by seconds, not a busy CI runner preempting a tick.
func TestNoFalseSuspicionWhenAllAlive(t *testing.T) {
	h := transport.NewHub(3)
	defer h.Close()
	ds := startDetectors(t, h, 3, Config{Interval: 5 * time.Millisecond, Timeout: time.Minute})
	testutil.Consistently(t, 250*time.Millisecond, func() {
		for i, d := range ds {
			for j := 0; j < 3; j++ {
				if d.Suspected(transport.NodeID(j)) {
					t.Fatalf("detector %d falsely suspects %d", i, j)
				}
			}
		}
	})
}

func TestCrashedNodeEventuallySuspected(t *testing.T) {
	h := transport.NewHub(3)
	defer h.Close()
	ds := startDetectors(t, h, 3, Config{Interval: 10 * time.Millisecond})
	h.Crash(2)
	eventually(t, 2*time.Second, func() bool {
		return ds[0].Suspected(2) && ds[1].Suspected(2)
	}, "crashed node 2 never suspected")
	if ds[0].Suspected(1) {
		t.Fatal("live node 1 suspected")
	}
}

func TestPartitionedNodeSuspectedThenRehabilitated(t *testing.T) {
	h := transport.NewHub(2)
	defer h.Close()
	ds := startDetectors(t, h, 2, Config{Interval: 10 * time.Millisecond})
	h.Partition(0, 1)
	eventually(t, 2*time.Second, func() bool { return ds[0].Suspected(1) },
		"partitioned node never suspected")
	h.Heal(0, 1)
	eventually(t, 2*time.Second, func() bool { return !ds[0].Suspected(1) },
		"healed node never rehabilitated")
}

func TestOnChangeCallbacks(t *testing.T) {
	h := transport.NewHub(2)
	defer h.Close()
	d := New(h.Endpoint(0), Config{Interval: 10 * time.Millisecond})
	var mu sync.Mutex
	events := make(map[bool]int)
	d.OnChange(func(n transport.NodeID, suspected bool) {
		mu.Lock()
		events[suspected]++
		mu.Unlock()
	})
	d.Start()
	defer d.Stop()
	d2 := New(h.Endpoint(1), Config{Interval: 10 * time.Millisecond})
	d2.Start()
	time.Sleep(50 * time.Millisecond)
	h.Crash(1)
	d2.Stop()
	eventually(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return events[true] >= 1
	}, "suspicion callback never fired")
}

func TestSuspectedSetSnapshot(t *testing.T) {
	h := transport.NewHub(3)
	defer h.Close()
	ds := startDetectors(t, h, 3, Config{Interval: 10 * time.Millisecond})
	h.Crash(1)
	h.Crash(2)
	eventually(t, 2*time.Second, func() bool {
		return len(ds[0].SuspectedSet()) == 2
	}, "suspected set never reached 2")
}

// TestSetMembersDropsGhostAndClearsSuspicion: an epoch change removes a
// suspected ghost from the monitored set and gives every retained member
// a fresh lease — stale suspicion does not linger across epochs.
func TestSetMembersDropsGhostAndClearsSuspicion(t *testing.T) {
	h := transport.NewHub(4)
	defer h.Close()
	ds := startDetectors(t, h, 4, Config{Interval: 10 * time.Millisecond})
	h.Crash(2)
	h.Crash(3)
	eventually(t, 10*time.Second, func() bool {
		return ds[0].Suspected(2) && ds[0].Suspected(3)
	}, "crashed nodes never suspected")

	// Epoch change: node 3 is removed, node 2 stays (e.g. replaced at a
	// new address and about to come back).
	ds[0].SetMembers([]transport.NodeID{0, 1, 2})
	if ds[0].Suspected(3) {
		t.Fatal("removed ghost still suspected")
	}
	if len(ds[0].SuspectedSet()) != 0 {
		t.Fatalf("suspected set after epoch change = %v", ds[0].SuspectedSet())
	}
	if ds[0].Suspected(2) {
		t.Fatal("retained member's stale suspicion survived the epoch change")
	}
	// A retained member that is genuinely dead is re-suspected after a
	// fresh timeout.
	eventually(t, 10*time.Second, func() bool { return ds[0].Suspected(2) },
		"dead retained member never re-suspected after epoch change")
}

// TestStaleIncarnationHeartbeatIgnored: heartbeats from an older
// incarnation (a reconnecting transport draining a dead process's
// backlog) must not refresh the live identity's lease. Node 1 here is
// a raw endpoint scripting heartbeats: one from a "new" incarnation,
// then a stream of older-incarnation ones, which before the fix would
// have kept the ghost unsuspected forever.
func TestStaleIncarnationHeartbeatIgnored(t *testing.T) {
	h := transport.NewHub(2)
	defer h.Close()
	d := New(h.Endpoint(0), Config{Interval: 10 * time.Millisecond})
	d.Start()
	defer d.Stop()
	peer := h.Endpoint(1)
	if err := peer.Send(0, Stream, Heartbeat{Inc: 100}); err != nil {
		t.Fatal(err)
	}
	testutil.Eventually(t, 10*time.Second, "suspicion despite stale-incarnation chatter", func() bool {
		// Chatter from the dead incarnation, every beat.
		if err := peer.Send(0, Stream, Heartbeat{Inc: 99}); err != nil {
			t.Fatal(err)
		}
		return d.Suspected(1)
	})
	// A newer incarnation rehabilitates the identity immediately.
	if err := peer.Send(0, Stream, Heartbeat{Inc: 101}); err != nil {
		t.Fatal(err)
	}
	eventually(t, 10*time.Second, func() bool { return !d.Suspected(1) },
		"new incarnation never rehabilitated")
}

// TestNonMemberHeartbeatIgnored: a removed site's process may keep
// heartbeating until the operator stops it; those heartbeats must not
// re-admit it to the monitored set (it would be suspected as a ghost
// forever once the process dies).
func TestNonMemberHeartbeatIgnored(t *testing.T) {
	h := transport.NewHub(3)
	defer h.Close()
	d := New(h.Endpoint(0), Config{Interval: 10 * time.Millisecond})
	d.Start()
	defer d.Stop()
	d.SetMembers([]transport.NodeID{0, 1}) // node 2 voted out
	peer2 := h.Endpoint(2)
	h.Crash(1)
	testutil.Eventually(t, 10*time.Second, "member 1 to be suspected", func() bool {
		// The removed node keeps chattering the whole time.
		if err := peer2.Send(0, Stream, Heartbeat{Inc: 7}); err != nil {
			t.Fatal(err)
		}
		return d.Suspected(1)
	})
	if d.Suspected(2) {
		t.Fatal("non-member suspected")
	}
	if got := d.SuspectedSet(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("suspected set = %v, want [1] only", got)
	}
}

// TestSetMembersResetsIncarnationFloor: a replacement machine's clock
// may be behind its dead predecessor's, so its incarnation is lower.
// The epoch change must reset the floor, or every heartbeat the
// replacement sends would be dropped and it would be suspected forever.
func TestSetMembersResetsIncarnationFloor(t *testing.T) {
	h := transport.NewHub(2)
	defer h.Close()
	d := New(h.Endpoint(0), Config{Interval: 10 * time.Millisecond})
	d.Start()
	defer d.Stop()
	peer := h.Endpoint(1)
	// The old incarnation (fast clock) heartbeats once, then dies.
	if err := peer.Send(0, Stream, Heartbeat{Inc: 1000}); err != nil {
		t.Fatal(err)
	}
	eventually(t, 10*time.Second, func() bool { return d.Suspected(1) },
		"dead old incarnation never suspected")
	// MEMBER REPLACE commits: epoch change, same id retained.
	d.SetMembers([]transport.NodeID{0, 1})
	if d.Suspected(1) {
		t.Fatal("suspicion survived the epoch change")
	}
	// The replacement (slower clock: lower incarnation) heartbeats; it
	// must keep the lease alive, never re-suspected.
	testutil.Consistently(t, 300*time.Millisecond, func() {
		if err := peer.Send(0, Stream, Heartbeat{Inc: 500}); err != nil {
			t.Fatal(err)
		}
		if d.Suspected(1) {
			t.Fatal("replacement with lower incarnation suspected despite heartbeating")
		}
	})
}

func TestStaticSuspector(t *testing.T) {
	s := StaticSuspector{1: true}
	if !s.Suspected(1) || s.Suspected(0) {
		t.Fatal("static suspector wrong")
	}
}

// TestSelfNeverSuspected is event-driven: once the crashed peer has been
// suspected, the sweep has demonstrably run past the timeout, so the
// absence of self-suspicion is a real property, not a race window.
func TestSelfNeverSuspected(t *testing.T) {
	h := transport.NewHub(2)
	defer h.Close()
	ds := startDetectors(t, h, 2, Config{Interval: 10 * time.Millisecond})
	h.Crash(1) // node 0 still must not suspect itself
	eventually(t, 10*time.Second, func() bool { return ds[0].Suspected(1) },
		"crashed peer never suspected")
	if ds[0].Suspected(0) {
		t.Fatal("node suspects itself")
	}
}
