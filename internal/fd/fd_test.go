package fd

import (
	"sync"
	"testing"
	"time"

	"otpdb/internal/transport"
)

func startDetectors(t *testing.T, h *transport.Hub, n int, cfg Config) []*Detector {
	t.Helper()
	ds := make([]*Detector, n)
	for i := 0; i < n; i++ {
		ds[i] = New(h.Endpoint(transport.NodeID(i)), cfg)
		ds[i].Start()
	}
	t.Cleanup(func() {
		for _, d := range ds {
			d.Stop()
		}
	})
	return ds
}

func eventually(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

func TestNoFalseSuspicionWhenAllAlive(t *testing.T) {
	h := transport.NewHub(3)
	defer h.Close()
	ds := startDetectors(t, h, 3, Config{Interval: 10 * time.Millisecond})
	time.Sleep(150 * time.Millisecond)
	for i, d := range ds {
		for j := 0; j < 3; j++ {
			if d.Suspected(transport.NodeID(j)) {
				t.Fatalf("detector %d falsely suspects %d", i, j)
			}
		}
	}
}

func TestCrashedNodeEventuallySuspected(t *testing.T) {
	h := transport.NewHub(3)
	defer h.Close()
	ds := startDetectors(t, h, 3, Config{Interval: 10 * time.Millisecond})
	h.Crash(2)
	eventually(t, 2*time.Second, func() bool {
		return ds[0].Suspected(2) && ds[1].Suspected(2)
	}, "crashed node 2 never suspected")
	if ds[0].Suspected(1) {
		t.Fatal("live node 1 suspected")
	}
}

func TestPartitionedNodeSuspectedThenRehabilitated(t *testing.T) {
	h := transport.NewHub(2)
	defer h.Close()
	ds := startDetectors(t, h, 2, Config{Interval: 10 * time.Millisecond})
	h.Partition(0, 1)
	eventually(t, 2*time.Second, func() bool { return ds[0].Suspected(1) },
		"partitioned node never suspected")
	h.Heal(0, 1)
	eventually(t, 2*time.Second, func() bool { return !ds[0].Suspected(1) },
		"healed node never rehabilitated")
}

func TestOnChangeCallbacks(t *testing.T) {
	h := transport.NewHub(2)
	defer h.Close()
	d := New(h.Endpoint(0), Config{Interval: 10 * time.Millisecond})
	var mu sync.Mutex
	events := make(map[bool]int)
	d.OnChange(func(n transport.NodeID, suspected bool) {
		mu.Lock()
		events[suspected]++
		mu.Unlock()
	})
	d.Start()
	defer d.Stop()
	d2 := New(h.Endpoint(1), Config{Interval: 10 * time.Millisecond})
	d2.Start()
	time.Sleep(50 * time.Millisecond)
	h.Crash(1)
	d2.Stop()
	eventually(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return events[true] >= 1
	}, "suspicion callback never fired")
}

func TestSuspectedSetSnapshot(t *testing.T) {
	h := transport.NewHub(3)
	defer h.Close()
	ds := startDetectors(t, h, 3, Config{Interval: 10 * time.Millisecond})
	h.Crash(1)
	h.Crash(2)
	eventually(t, 2*time.Second, func() bool {
		return len(ds[0].SuspectedSet()) == 2
	}, "suspected set never reached 2")
}

func TestStaticSuspector(t *testing.T) {
	s := StaticSuspector{1: true}
	if !s.Suspected(1) || s.Suspected(0) {
		t.Fatal("static suspector wrong")
	}
}

func TestSelfNeverSuspected(t *testing.T) {
	h := transport.NewHub(2)
	defer h.Close()
	ds := startDetectors(t, h, 2, Config{Interval: 10 * time.Millisecond})
	h.Crash(1) // node 0 still must not suspect itself
	time.Sleep(150 * time.Millisecond)
	if ds[0].Suspected(0) {
		t.Fatal("node suspects itself")
	}
}
