// Package fd implements a heartbeat failure detector of class ◇S (eventually
// strong): after some time, every crashed node is permanently suspected and
// at least one correct node is no longer suspected by anyone. The consensus
// engine (internal/consensus) uses it to rotate coordinators, which is all
// the OPT-ABcast fallback path needs for liveness.
//
// In an asynchronous system the detector is necessarily unreliable: a slow
// node may be suspected and later rehabilitated. The protocols above are
// safe under arbitrary suspicion mistakes; the detector affects liveness
// only.
package fd

import (
	"sync"
	"time"

	"otpdb/internal/events"
	"otpdb/internal/metrics"
	"otpdb/internal/transport"
)

// Stream is the transport stream used for heartbeats.
const Stream = "fd.hb"

// Heartbeat is the wire message. Reception alone refreshes the sender's
// lease; Inc is the sender's incarnation (a clock-derived value fixed at
// detector creation), which distinguishes a restarted or replaced
// process from its dead predecessor. Suspicion is otherwise keyed by
// NodeID only, so without the incarnation a fresh process could inherit
// its predecessor's stale suspicion (and, worse, a survivor that
// suspected the old incarnation would have no signal that the identity
// now denotes a different process).
//
//otp:fence Inc
type Heartbeat struct {
	Inc uint64
}

// RegisterWire registers the detector's message types with the gob codec
// used by the TCP transport. Call once per process before ListenTCP nodes
// exchange traffic.
func RegisterWire() { transport.Register(Heartbeat{}) }

// Suspector reports suspicion. It is the read interface consumed by the
// consensus engine; tests substitute scripted implementations.
type Suspector interface {
	// Suspected reports whether the node is currently suspected.
	Suspected(transport.NodeID) bool
}

// StaticSuspector is a fixed suspicion set, useful in tests and in
// deterministic simulations where no real failure detection is wanted.
type StaticSuspector map[transport.NodeID]bool

var _ Suspector = StaticSuspector{}

// Suspected implements Suspector.
func (s StaticSuspector) Suspected(n transport.NodeID) bool { return s[n] }

// Config parameterises a Detector.
type Config struct {
	// Interval is the heartbeat period. Defaults to 25 ms.
	Interval time.Duration
	// Timeout is the silence threshold after which a node is suspected.
	// Defaults to 4x Interval.
	Timeout time.Duration
	// Incarnation, when non-zero, overrides the clock-derived process
	// incarnation stamped on heartbeats. Durable deployments pass a
	// transport.PersistentIncarnation so a clock stepping backwards
	// across a restart cannot mint a stale one.
	Incarnation uint64
	// Metrics, when non-nil, registers suspicion telemetry (suspect
	// events, false-suspect count, suspicion durations) under the
	// scope's labels.
	Metrics *metrics.Scope
	// Events, when non-nil, receives suspect/clear flight-recorder
	// entries so the rare transitions survive in the causal log.
	Events *events.Recorder
}

// Detector broadcasts heartbeats and tracks peer liveness. The monitored
// set follows the group membership: SetMembers retargets it on epoch
// changes, and a heartbeat with a newer sender incarnation resets that
// sender's lease and suspicion (a replaced or restarted site starts with
// a clean slate instead of lingering under its predecessor's suspicion).
type Detector struct {
	ep       transport.Endpoint
	interval time.Duration
	timeout  time.Duration
	inc      uint64 // this process's incarnation, stamped on heartbeats
	events   *events.Recorder

	mu          sync.Mutex
	lastSeen    map[transport.NodeID]time.Time
	lastInc     map[transport.NodeID]uint64 // newest incarnation heard per node
	suspected   map[transport.NodeID]bool
	suspectedAt map[transport.NodeID]time.Time // start of the current suspicion stretch
	onChange    []func(node transport.NodeID, suspected bool)

	// Telemetry: every suspicion flip counts; an un-suspect (the node
	// proved alive) is by definition a false suspicion, and its
	// duration is how long the detector was wrong.
	suspects     *metrics.Counter
	falseSusp    *metrics.Counter
	suspDuration *metrics.Histogram

	stop chan struct{}
	done chan struct{}
}

var _ Suspector = (*Detector)(nil)

// New creates a detector attached to ep. Call Start to begin monitoring.
func New(ep transport.Endpoint, cfg Config) *Detector {
	if cfg.Interval <= 0 {
		cfg.Interval = 25 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 4 * cfg.Interval
	}
	if cfg.Incarnation == 0 {
		cfg.Incarnation = uint64(time.Now().UnixNano())
	}
	return &Detector{
		ep:           ep,
		interval:     cfg.Interval,
		timeout:      cfg.Timeout,
		inc:          cfg.Incarnation,
		events:       cfg.Events,
		lastSeen:     make(map[transport.NodeID]time.Time),
		lastInc:      make(map[transport.NodeID]uint64),
		suspected:    make(map[transport.NodeID]bool),
		suspectedAt:  make(map[transport.NodeID]time.Time),
		suspects:     cfg.Metrics.Counter("fd_suspect_total"),
		falseSusp:    cfg.Metrics.Counter("fd_false_suspect_total"),
		suspDuration: cfg.Metrics.Histogram("fd_suspicion_seconds"),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
}

// OnChange registers a callback invoked (from the detector goroutine) when
// a node's suspicion status flips. Register before Start.
func (d *Detector) OnChange(fn func(node transport.NodeID, suspected bool)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onChange = append(d.onChange, fn)
}

// Start begins heartbeating and monitoring.
func (d *Detector) Start() {
	now := time.Now()
	d.mu.Lock()
	for i := 0; i < d.ep.N(); i++ {
		d.lastSeen[transport.NodeID(i)] = now
	}
	d.mu.Unlock()
	go d.run()
}

// Stop halts the detector and waits for its goroutine.
func (d *Detector) Stop() {
	close(d.stop)
	<-d.done
}

// Suspected implements Suspector.
func (d *Detector) Suspected(n transport.NodeID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.suspected[n]
}

// SuspectedSet returns a snapshot of all currently suspected nodes.
func (d *Detector) SuspectedSet() []transport.NodeID {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []transport.NodeID
	for n, s := range d.suspected {
		if s {
			out = append(out, n)
		}
	}
	return out
}

// SetMembers retargets the detector at a new membership: nodes outside
// the set are dropped (survivors stop tracking the ghost — the transport
// layer stops heartbeating it when its peer link is removed), new nodes
// start with a fresh lease, and a retained node that was suspected is
// given a fresh lease and unsuspected — the epoch change is a statement
// that the group composition was re-decided, so stale suspicion must not
// carry across it (a genuinely dead member is re-suspected one timeout
// later). Safe to call from membership-change subscribers.
func (d *Detector) SetMembers(ids []transport.NodeID) {
	now := time.Now()
	keep := make(map[transport.NodeID]bool, len(ids))
	for _, id := range ids {
		keep[id] = true
	}
	d.mu.Lock()
	for n := range d.lastSeen {
		if !keep[n] {
			delete(d.lastSeen, n)
			delete(d.suspected, n)
			delete(d.suspectedAt, n)
		}
	}
	// Incarnation floors reset wholesale: the epoch change asserts the
	// group composition was re-decided, and a replaced identity's fresh
	// process may have a clock behind its dead predecessor's — holding
	// the old floor would drop every heartbeat it ever sends and
	// suspect it permanently. The floor of a retained member simply
	// re-establishes itself at its next heartbeat.
	d.lastInc = make(map[transport.NodeID]uint64)
	var cleared []transport.NodeID
	for _, id := range ids {
		if _, tracked := d.lastSeen[id]; !tracked {
			d.lastSeen[id] = now
			continue
		}
		if d.suspected[id] {
			d.suspected[id] = false
			// Cleared by the epoch change, not by a heartbeat — record
			// the stretch's duration but don't count it false.
			if at, ok := d.suspectedAt[id]; ok {
				d.suspDuration.Observe(now.Sub(at))
				delete(d.suspectedAt, id)
			}
			d.lastSeen[id] = now
			cleared = append(cleared, id)
		}
	}
	callbacks := d.onChange
	d.mu.Unlock()
	for _, n := range cleared {
		d.events.Record(int(d.ep.ID()), events.KindClear, "peer", n.String(), "reason", "epoch-change")
		for _, fn := range callbacks {
			fn(n, false)
		}
	}
}

func (d *Detector) run() {
	defer close(d.done)
	in := d.ep.Subscribe(Stream)
	ticker := time.NewTicker(d.interval)
	defer ticker.Stop()
	_ = d.ep.Broadcast(Stream, Heartbeat{Inc: d.inc})
	for {
		select {
		case env, ok := <-in:
			if !ok {
				return
			}
			inc := uint64(0)
			if hb, ok := env.Msg.(Heartbeat); ok {
				inc = hb.Inc
			}
			d.refresh(env.From, inc)
		case <-ticker.C:
			_ = d.ep.Broadcast(Stream, Heartbeat{Inc: d.inc})
			d.sweep()
		case <-d.stop:
			return
		}
	}
}

func (d *Detector) refresh(n transport.NodeID, inc uint64) {
	d.mu.Lock()
	if _, tracked := d.lastSeen[n]; !tracked {
		// Not a member: a removed site's process may keep heartbeating
		// until the operator stops it. Re-admitting it here would make
		// the detector suspect (and report) a ghost outside the group
		// forever once that process finally dies; membership is decided
		// by SetMembers, not by whoever still sends traffic.
		d.mu.Unlock()
		return
	}
	switch {
	case inc > d.lastInc[n]:
		// A newer incarnation of this identity: whatever we believed
		// about the old process is void — lease and suspicion reset below.
		d.lastInc[n] = inc
	case inc < d.lastInc[n]:
		// A heartbeat from a dead incarnation (a reconnecting transport
		// retransmitting its backlog). It says nothing about the live
		// identity: refreshing the lease here is exactly the staleness
		// that would keep a ghost looking alive, so drop it.
		d.mu.Unlock()
		return
	}
	d.lastSeen[n] = time.Now()
	flipped := d.suspected[n]
	if flipped {
		d.suspected[n] = false
		// The node proved alive: the whole suspicion stretch was a
		// detector mistake (◇S is unreliable by design) — count it and
		// record how long the mistake lasted.
		d.falseSusp.Inc()
		if at, ok := d.suspectedAt[n]; ok {
			d.suspDuration.Observe(time.Since(at))
			delete(d.suspectedAt, n)
		}
	}
	callbacks := d.onChange
	d.mu.Unlock()
	if flipped {
		d.events.Record(int(d.ep.ID()), events.KindClear, "peer", n.String(), "reason", "heartbeat")
		for _, fn := range callbacks {
			fn(n, false)
		}
	}
}

func (d *Detector) sweep() {
	now := time.Now()
	d.mu.Lock()
	var newly []transport.NodeID
	for n, seen := range d.lastSeen {
		if n == d.ep.ID() {
			continue
		}
		if !d.suspected[n] && now.Sub(seen) > d.timeout {
			d.suspected[n] = true
			d.suspectedAt[n] = now
			d.suspects.Inc()
			newly = append(newly, n)
		}
	}
	callbacks := d.onChange
	d.mu.Unlock()
	for _, n := range newly {
		d.events.Record(int(d.ep.ID()), events.KindSuspect, "peer", n.String())
		for _, fn := range callbacks {
			fn(n, true)
		}
	}
}
