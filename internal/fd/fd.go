// Package fd implements a heartbeat failure detector of class ◇S (eventually
// strong): after some time, every crashed node is permanently suspected and
// at least one correct node is no longer suspected by anyone. The consensus
// engine (internal/consensus) uses it to rotate coordinators, which is all
// the OPT-ABcast fallback path needs for liveness.
//
// In an asynchronous system the detector is necessarily unreliable: a slow
// node may be suspected and later rehabilitated. The protocols above are
// safe under arbitrary suspicion mistakes; the detector affects liveness
// only.
package fd

import (
	"sync"
	"time"

	"otpdb/internal/transport"
)

// Stream is the transport stream used for heartbeats.
const Stream = "fd.hb"

// Heartbeat is the wire message. It carries no payload: reception alone
// refreshes the sender's lease.
type Heartbeat struct{}

// RegisterWire registers the detector's message types with the gob codec
// used by the TCP transport. Call once per process before ListenTCP nodes
// exchange traffic.
func RegisterWire() { transport.Register(Heartbeat{}) }

// Suspector reports suspicion. It is the read interface consumed by the
// consensus engine; tests substitute scripted implementations.
type Suspector interface {
	// Suspected reports whether the node is currently suspected.
	Suspected(transport.NodeID) bool
}

// StaticSuspector is a fixed suspicion set, useful in tests and in
// deterministic simulations where no real failure detection is wanted.
type StaticSuspector map[transport.NodeID]bool

var _ Suspector = StaticSuspector{}

// Suspected implements Suspector.
func (s StaticSuspector) Suspected(n transport.NodeID) bool { return s[n] }

// Config parameterises a Detector.
type Config struct {
	// Interval is the heartbeat period. Defaults to 25 ms.
	Interval time.Duration
	// Timeout is the silence threshold after which a node is suspected.
	// Defaults to 4x Interval.
	Timeout time.Duration
}

// Detector broadcasts heartbeats and tracks peer liveness.
type Detector struct {
	ep       transport.Endpoint
	interval time.Duration
	timeout  time.Duration

	mu        sync.Mutex
	lastSeen  map[transport.NodeID]time.Time
	suspected map[transport.NodeID]bool
	onChange  []func(node transport.NodeID, suspected bool)

	stop chan struct{}
	done chan struct{}
}

var _ Suspector = (*Detector)(nil)

// New creates a detector attached to ep. Call Start to begin monitoring.
func New(ep transport.Endpoint, cfg Config) *Detector {
	if cfg.Interval <= 0 {
		cfg.Interval = 25 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 4 * cfg.Interval
	}
	return &Detector{
		ep:        ep,
		interval:  cfg.Interval,
		timeout:   cfg.Timeout,
		lastSeen:  make(map[transport.NodeID]time.Time),
		suspected: make(map[transport.NodeID]bool),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// OnChange registers a callback invoked (from the detector goroutine) when
// a node's suspicion status flips. Register before Start.
func (d *Detector) OnChange(fn func(node transport.NodeID, suspected bool)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onChange = append(d.onChange, fn)
}

// Start begins heartbeating and monitoring.
func (d *Detector) Start() {
	now := time.Now()
	d.mu.Lock()
	for i := 0; i < d.ep.N(); i++ {
		d.lastSeen[transport.NodeID(i)] = now
	}
	d.mu.Unlock()
	go d.run()
}

// Stop halts the detector and waits for its goroutine.
func (d *Detector) Stop() {
	close(d.stop)
	<-d.done
}

// Suspected implements Suspector.
func (d *Detector) Suspected(n transport.NodeID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.suspected[n]
}

// SuspectedSet returns a snapshot of all currently suspected nodes.
func (d *Detector) SuspectedSet() []transport.NodeID {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []transport.NodeID
	for n, s := range d.suspected {
		if s {
			out = append(out, n)
		}
	}
	return out
}

func (d *Detector) run() {
	defer close(d.done)
	in := d.ep.Subscribe(Stream)
	ticker := time.NewTicker(d.interval)
	defer ticker.Stop()
	_ = d.ep.Broadcast(Stream, Heartbeat{})
	for {
		select {
		case env, ok := <-in:
			if !ok {
				return
			}
			d.refresh(env.From)
		case <-ticker.C:
			_ = d.ep.Broadcast(Stream, Heartbeat{})
			d.sweep()
		case <-d.stop:
			return
		}
	}
}

func (d *Detector) refresh(n transport.NodeID) {
	d.mu.Lock()
	d.lastSeen[n] = time.Now()
	flipped := d.suspected[n]
	if flipped {
		d.suspected[n] = false
	}
	callbacks := d.onChange
	d.mu.Unlock()
	if flipped {
		for _, fn := range callbacks {
			fn(n, false)
		}
	}
}

func (d *Detector) sweep() {
	now := time.Now()
	d.mu.Lock()
	var newly []transport.NodeID
	for n, seen := range d.lastSeen {
		if n == d.ep.ID() {
			continue
		}
		if !d.suspected[n] && now.Sub(seen) > d.timeout {
			d.suspected[n] = true
			newly = append(newly, n)
		}
	}
	callbacks := d.onChange
	d.mu.Unlock()
	for _, n := range newly {
		for _, fn := range callbacks {
			fn(n, true)
		}
	}
}
