package lint

import (
	"go/ast"
	"go/types"
)

// ChaosDet enforces the chaos harness's replayability contract
// (DESIGN.md §11): everything observable about a fault plan must be a
// pure function of (Scenario, seed). It analyzes packages named
// "chaos" and walks the call graph of the schedule-expansion roots —
// Expand plus any function whose doc carries `//otp:deterministic` —
// flagging, anywhere in that graph:
//
//   - wall-clock reads (time.Now, time.Since): a schedule derived from
//     the clock replays differently on every run;
//   - the global math/rand functions (rand.Intn, rand.Float64, ...):
//     they draw from process-global state any goroutine can perturb,
//     so the draw sequence is not a function of the seed — expansion
//     must thread an explicit *rand.Rand;
//   - range over a map: Go randomizes map iteration order, so events
//     appended or rng draws consumed under such a loop reorder between
//     runs of the same seed.
//
// The incident: PR 7's first schedule expander consumed jitter draws
// under map iteration, making "same seed" schedules differ run to run
// and the determinism scenario unreproducible.
var ChaosDet = &Analyzer{
	Name: "chaosdet",
	Doc:  "chaos schedule expansion must be a pure function of (scenario, seed)",
	Run:  runChaosDet,
}

func runChaosDet(pass *Pass) error {
	if pass.Pkg.Name() != "chaos" {
		return nil
	}
	decls := funcDecls(pass)

	// Roots: Expand plus //otp:deterministic-annotated functions.
	var roots []*types.Func
	for fn, decl := range decls {
		if fn.Name() == "Expand" {
			roots = append(roots, fn)
			continue
		}
		if _, ok := docHasDirective(decl.Doc, "//otp:deterministic"); ok {
			roots = append(roots, fn)
		}
	}
	if len(roots) == 0 {
		return nil
	}

	graph := callGraph(pass, decls)
	for fn, root := range reachable(roots, graph) {
		rootLabel := root.Name()
		decl := decls[fn]
		if decl == nil || decl.Body == nil || isTestFile(pass.Fset, decl.Pos()) {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				callee := funcOf(pass.TypesInfo, n)
				switch {
				case isPkgFunc(callee, "time", "Now"), isPkgFunc(callee, "time", "Since"):
					pass.Reportf(n.Pos(), "wall-clock read (time.%s) in schedule expansion reachable from %s: the fault plan must be a pure function of the seed", callee.Name(), rootLabel)
				case callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "math/rand" && isTopLevel(callee) && !isRandConstructor(callee.Name()):
					pass.Reportf(n.Pos(), "global math/rand.%s in schedule expansion reachable from %s: thread the scenario's seeded *rand.Rand instead", callee.Name(), rootLabel)
				}
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, isMap := types.Unalias(t.Underlying()).(*types.Map); isMap {
						pass.Reportf(n.Pos(), "map iteration in schedule expansion reachable from %s: iteration order is randomized, so anything it feeds reorders between runs of one seed", rootLabel)
					}
				}
			}
			return true
		})
	}
	return nil
}

func isTopLevel(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isRandConstructor exempts math/rand's pure constructors: rand.New
// and rand.NewSource build explicitly seeded generators — exactly the
// sanctioned pattern — and touch no global state.
func isRandConstructor(name string) bool {
	switch name {
	case "New", "NewSource", "NewZipf":
		return true
	}
	return false
}

// funcDecls maps each declared function/method object to its decl.
func funcDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// callGraph builds the intra-package static call graph over declared
// functions. Calls through function literals defined inside a body are
// covered implicitly: the literal's statements belong to the enclosing
// declaration's AST, so walking the caller walks them too.
func callGraph(pass *Pass, decls map[*types.Func]*ast.FuncDecl) map[*types.Func][]*types.Func {
	graph := make(map[*types.Func][]*types.Func)
	for fn, decl := range decls {
		if decl.Body == nil {
			continue
		}
		seen := make(map[*types.Func]bool)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := funcOf(pass.TypesInfo, call)
			if callee == nil || seen[callee] {
				return true
			}
			if _, local := decls[callee]; local {
				seen[callee] = true
				graph[fn] = append(graph[fn], callee)
			}
			return true
		})
	}
	return graph
}

// reachable maps every function reachable from roots (roots included)
// to the first root that reaches it.
func reachable(roots []*types.Func, graph map[*types.Func][]*types.Func) map[*types.Func]*types.Func {
	out := make(map[*types.Func]*types.Func)
	var visit func(fn, root *types.Func)
	visit = func(fn, root *types.Func) {
		if _, seen := out[fn]; seen {
			return
		}
		out[fn] = root
		for _, c := range graph[fn] {
			visit(c, root)
		}
	}
	for _, r := range roots {
		visit(r, r)
	}
	return out
}
