package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The analyzer tests run each analyzer over a corpus package under
// testdata/ — its own module (lint.test/corpus), so the corpus never
// leaks into the real build — and match the diagnostics against
// `// want `regex`` comments in the corpus sources, in the spirit of
// golang.org/x/tools/go/analysis/analysistest.

func TestChaosDet(t *testing.T)    { testCorpus(t, ChaosDet, "chaosdet") }
func TestEpochFence(t *testing.T)  { testCorpus(t, EpochFence, "epochfence") }
func TestAtomicCOW(t *testing.T)   { testCorpus(t, AtomicCOW, "atomiccow") }
func TestMetricNames(t *testing.T) { testCorpus(t, MetricNames, "metricnames") }
func TestTestPoll(t *testing.T)    { testCorpus(t, TestPoll, "testpoll") }

// TestAllowContract asserts the suppression mechanics directly: a
// justified allow removes the finding, a bare allow removes nothing
// and is itself reported, and an allow naming the wrong analyzer is
// inert. Direct assertions, because the malformed-allow diagnostic
// lands on the allow comment's own line, where no want comment fits.
func TestAllowContract(t *testing.T) {
	diags := runCorpus(t, AtomicCOW, "allow")
	var got []string
	for _, d := range diags {
		got = append(got, d.String())
	}
	wants := []*regexp.Regexp{
		// unjustified: the finding survives and the bare allow is reported.
		regexp.MustCompile(`allow\.go:26:\d+: atomiccow: otplint:allow requires a justification`),
		regexp.MustCompile(`allow\.go:27:\d+: atomiccow: field box\.n is accessed with sync/atomic`),
		// wrongAnalyzer: the testpoll allow does not cover an atomiccow finding.
		regexp.MustCompile(`allow\.go:34:\d+: atomiccow: field box\.n is accessed with sync/atomic`),
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(wants), strings.Join(got, "\n"))
	}
	for i, re := range wants {
		if !re.MatchString(got[i]) {
			t.Errorf("diag[%d] = %s\nwant match for %s", i, got[i], re)
		}
	}
}

func runCorpus(t *testing.T, a *Analyzer, dir string) []Diagnostic {
	t.Helper()
	root, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./"+dir)
	if err != nil {
		t.Fatalf("loading corpus %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("corpus %s loaded no packages", dir)
	}
	diags, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on corpus %s: %v", a.Name, dir, err)
	}
	return diags
}

// want is one expectation parsed from a corpus source line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("// want ((?:`[^`]*`\\s*)+)")
var wantArgRe = regexp.MustCompile("`([^`]*)`")

func testCorpus(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	diags := runCorpus(t, a, dir)
	wants := parseWants(t, filepath.Join("testdata", dir))

	for _, d := range diags {
		matched := false
		for i := range wants {
			w := &wants[i]
			if w.file == filepath.Base(d.Pos.Filename) && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %s, got none", w.file, w.line, w.re)
		}
	}
}

// parseWants scans every corpus .go file for `// want `regex`...``
// trailing comments.
func parseWants(t *testing.T, dir string) []want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(arg[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp: %v", e.Name(), line, err)
				}
				wants = append(wants, want{file: e.Name(), line: line, re: re})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	if len(wants) == 0 {
		t.Fatalf("corpus %s declares no wants", dir)
	}
	return wants
}
