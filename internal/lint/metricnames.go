package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// MetricNames enforces the metric registration discipline
// (DESIGN.md §12): names are snake_case with the unit spelled in the
// suffix, one name maps to one instrument kind, and label values stay
// bounded — a per-transaction value in a label turns a fixed-size
// registry into an unbounded one and makes federation rollups
// meaningless.
//
// On every call to a metrics Registry/Scope method in non-test files:
//
//   - the metric name must be a compile-time constant matching
//     ^[a-z][a-z0-9_]*$;
//   - counters end in _total and duration histograms in _seconds
//     (SizeHistogram is unitless by convention); gauges and gauge
//     funcs must not claim _total;
//   - the same name must not be registered under two different
//     instrument kinds in one package — Registry.lookup silently
//     replaces on kind mismatch, so the second registration eats the
//     first's data;
//   - label keys must be constant snake_case strings, and keys that
//     name per-transaction identity (txn, txn_id, tx_id, op_id, seq,
//     nonce, trace_id) are rejected outright;
//   - label values built with fmt.Sprintf/Sprint are rejected: every
//     bounded label in this repo is a small-int site/shard id via
//     strconv.Itoa, and format-built values are how unbounded ones
//     sneak in.
var MetricNames = &Analyzer{
	Name: "metricnames",
	Doc:  "metric names are snake_case with unit suffixes, one kind per name, and labels stay bounded",
	Run:  runMetricNames,
}

var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// metricKinds maps the registry's instrument constructors to the
// index of their name argument.
var metricKinds = map[string]bool{
	"Counter":       true,
	"Gauge":         true,
	"Func":          true,
	"Histogram":     true,
	"SizeHistogram": true,
}

var perTxnLabelKeys = map[string]bool{
	"txn": true, "txn_id": true, "tx_id": true, "op_id": true,
	"seq": true, "nonce": true, "trace_id": true,
}

func runMetricNames(pass *Pass) error {
	byName := make(map[string]string) // metric name -> first-seen instrument kind

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := funcOf(pass.TypesInfo, call)
			if !isMetricsMethod(callee) || isTestFile(pass.Fset, call.Pos()) {
				return true
			}
			name := callee.Name()
			switch {
			case metricKinds[name]:
				if len(call.Args) == 0 {
					return true
				}
				metric, ok := constString(pass, call.Args[0])
				if !ok {
					pass.Reportf(call.Args[0].Pos(), "metric name must be a compile-time constant string: dynamic names defeat grep, dashboards, and the one-kind-per-name rule")
					return true
				}
				checkMetricName(pass, call.Args[0], name, metric)
				if prev, seen := byName[metric]; seen && prev != name {
					pass.Reportf(call.Args[0].Pos(), "metric %q registered as %s here but as %s elsewhere in this package: Registry.lookup silently replaces on kind mismatch, losing the earlier instrument's data", metric, name, prev)
				} else if !seen {
					byName[metric] = name
				}
				// Label kv pairs follow the name (and, for Func, the
				// callback).
				kvStart := 1
				if name == "Func" {
					kvStart = 2
				}
				if len(call.Args) > kvStart {
					checkLabels(pass, call.Args[kvStart:])
				}
			case name == "Scope" || name == "With":
				checkLabels(pass, call.Args)
			}
			return true
		})
	}
	return nil
}

// isMetricsMethod reports whether fn is a method on the metrics
// package's Registry or Scope. Matching is by package and receiver
// name, not import path, so the analyzer works against both the real
// registry and test fixtures.
func isMetricsMethod(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "metrics" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := namedOf(sig.Recv().Type())
	if recv == nil {
		return false
	}
	switch recv.Obj().Name() {
	case "Registry", "Scope":
		return true
	}
	return false
}

func checkMetricName(pass *Pass, arg ast.Expr, kind, metric string) {
	if !metricNameRe.MatchString(metric) {
		pass.Reportf(arg.Pos(), "metric name %q is not snake_case (want ^[a-z][a-z0-9_]*$)", metric)
		return
	}
	switch kind {
	case "Counter":
		if !strings.HasSuffix(metric, "_total") {
			pass.Reportf(arg.Pos(), "counter %q must end in _total: the suffix is how scrapes tell monotonic totals from point-in-time gauges", metric)
		}
	case "Histogram":
		if !strings.HasSuffix(metric, "_seconds") {
			pass.Reportf(arg.Pos(), "duration histogram %q must end in _seconds (use SizeHistogram for unitless distributions)", metric)
		}
	case "Gauge", "Func":
		if strings.HasSuffix(metric, "_total") {
			pass.Reportf(arg.Pos(), "gauge %q must not end in _total: that suffix promises a monotonic counter", metric)
		}
	}
}

// checkLabels vets alternating key/value label arguments.
func checkLabels(pass *Pass, kvs []ast.Expr) {
	for i, kv := range kvs {
		if i%2 == 0 { // key
			key, ok := constString(pass, kv)
			if !ok {
				pass.Reportf(kv.Pos(), "label key must be a compile-time constant string")
				continue
			}
			if perTxnLabelKeys[key] {
				pass.Reportf(kv.Pos(), "label key %q names per-transaction identity: labels must stay bounded, so per-txn values belong in traces, not metrics", key)
				continue
			}
			if !metricNameRe.MatchString(key) {
				pass.Reportf(kv.Pos(), "label key %q is not snake_case", key)
			}
			continue
		}
		// value: reject format-built strings.
		if call, ok := ast.Unparen(kv).(*ast.CallExpr); ok {
			callee := funcOf(pass.TypesInfo, call)
			if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" &&
				strings.HasPrefix(callee.Name(), "Sprint") {
				pass.Reportf(kv.Pos(), "label value built with fmt.%s: format-built labels are how unbounded cardinality sneaks in (bounded ids use strconv.Itoa)", callee.Name())
			}
		}
	}
}

// constString evaluates e as a compile-time constant string.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
