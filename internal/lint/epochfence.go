package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// EpochFence enforces the reply-fencing contract (DESIGN.md §9, §13):
// a function that acts on a cross-member reply or peer message must
// compare the message's fence field — membership epoch, sender
// incarnation, or transfer id — before trusting its payload. A stale
// epoch's reply smuggled into a rollup, a dead incarnation's heartbeat
// refreshing a lease, and a superseded transfer's chunk spliced into a
// backlog were each real bugs fixed by hand (PRs 5, 7, 9).
//
// # Contract
//
// A struct type is *fenced* when either
//
//   - its doc comment carries `//otp:fence <Field>`, naming the fence
//     field explicitly (JoinResp, Heartbeat, tcpFrame, ...), or
//   - its name matches the wire-reply convention — `Msg*` or `*Reply`
//     — and it declares an Epoch, Inc or Incarnation field.
//
// A function *consumes* a fenced type when it reads any non-fence
// field of a value of that type (constructing or forwarding one is not
// consumption). Every consumer must contain fence evidence — a
// comparison mentioning the fence field, by selector on the fenced
// type or by (case-insensitive) name — in its own body or in a
// same-package function it calls, transitively.
//
// A consumer whose fence genuinely lives elsewhere (a router that only
// demultiplexes, a helper fed exclusively with already-fenced values)
// is annotated `//otp:fenced <justification>` in its doc comment; the
// justification is required.
var EpochFence = &Analyzer{
	Name: "epochfence",
	Doc:  "reply and peer-message consumers must compare the message's epoch/incarnation/transfer fence before acting",
	Run:  runEpochFence,
}

// defaultFenceFields are recognized on implicitly fenced types.
var defaultFenceFields = []string{"Epoch", "Inc", "Incarnation"}

// fencedType is one type in the contract.
type fencedType struct {
	named *types.Named
	field string
}

func runEpochFence(pass *Pass) error {
	fenced := fencedTypes(pass)
	if len(fenced) == 0 {
		return nil
	}
	decls := funcDecls(pass)
	graph := callGraph(pass, decls)

	for fn, decl := range decls {
		if decl.Body == nil || isTestFile(pass.Fset, decl.Pos()) {
			continue
		}
		consumed := consumedTypes(pass, decl, fenced)
		if len(consumed) == 0 {
			continue
		}
		just, annotated := docHasDirective(decl.Doc, "//otp:fenced")
		if annotated {
			if just == "" {
				pass.Reportf(decl.Pos(), "//otp:fenced requires a justification (//otp:fenced <why the fence holds elsewhere>)")
			}
			continue
		}
		for _, ft := range consumed {
			if !fenceEvidence(pass, fn, ft, decls, graph) {
				pass.Reportf(decl.Pos(), "%s consumes %s without comparing its %s fence: a stale-%s message must be dropped before acting (or annotate //otp:fenced <why>)",
					fn.Name(), ft.named.Obj().Name(), ft.field, strings.ToLower(ft.field))
			}
		}
	}
	return nil
}

// fencedTypes collects the package's fenced struct types.
func fencedTypes(pass *Pass) []fencedType {
	var out []fencedType
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				named := namedOf(obj.Type())
				if named == nil {
					continue
				}
				st, ok := named.Underlying().(*types.Struct)
				if !ok {
					continue
				}
				// Explicit contract: the directive may sit on the TypeSpec
				// (grouped declarations) or on the GenDecl.
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if field, ok := docHasDirective(doc, "//otp:fence"); ok {
					if field == "" || fieldIndex(st, field) < 0 {
						pass.Reportf(ts.Pos(), "//otp:fence must name a field of %s", obj.Name())
						continue
					}
					out = append(out, fencedType{named: named, field: field})
					continue
				}
				// Implicit contract: wire-reply naming convention.
				name := obj.Name()
				if !strings.HasPrefix(name, "Msg") && !strings.HasSuffix(name, "Reply") {
					continue
				}
				for _, f := range defaultFenceFields {
					if fieldIndex(st, f) >= 0 {
						out = append(out, fencedType{named: named, field: f})
						break
					}
				}
			}
		}
	}
	return out
}

func fieldIndex(st *types.Struct, name string) int {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return i
		}
	}
	return -1
}

// consumedTypes reports which fenced types decl reads a non-fence
// field of. Writes (assignment targets) and fence-field reads do not
// count: building a message or inspecting only its fence is not
// consumption.
func consumedTypes(pass *Pass, decl *ast.FuncDecl, fenced []fencedType) []fencedType {
	byNamed := make(map[*types.Named]fencedType, len(fenced))
	for _, ft := range fenced {
		byNamed[ft.named] = ft
	}
	writes := writeTargets(decl)
	seen := make(map[*types.Named]bool)
	var out []fencedType
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		named := namedOf(s.Recv())
		if named == nil {
			return true
		}
		ft, isFenced := byNamed[named]
		if !isFenced || seen[named] {
			return true
		}
		if sel.Sel.Name == ft.field || writes[sel] {
			return true
		}
		seen[named] = true
		out = append(out, ft)
		return true
	})
	return out
}

// writeTargets marks selector expressions that are pure assignment
// targets in decl (x.F = v, x.F += v, x.F++).
func writeTargets(decl *ast.FuncDecl) map[*ast.SelectorExpr]bool {
	out := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
						out[sel] = true
					}
				}
			}
			// Compound assignments (+=) read as well as write: not pure.
		case *ast.IncDecStmt:
			if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
				out[sel] = true
			}
		}
		return true
	})
	return out
}

// fenceEvidence reports whether fn, or any same-package function
// reachable from it, contains a comparison that mentions ft's fence
// field.
func fenceEvidence(pass *Pass, fn *types.Func, ft fencedType, decls map[*types.Func]*ast.FuncDecl, graph map[*types.Func][]*types.Func) bool {
	for reached := range reachable([]*types.Func{fn}, graph) {
		decl := decls[reached]
		if decl == nil || decl.Body == nil {
			continue
		}
		if bodyHasFenceCompare(pass, decl.Body, ft) {
			return true
		}
	}
	return false
}

func bodyHasFenceCompare(pass *Pass, body *ast.BlockStmt, ft fencedType) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		var x, y ast.Expr
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
				x, y = n.X, n.Y
			default:
				return true
			}
		case *ast.SwitchStmt:
			// switch m.Epoch { ... } compares the tag against each case.
			if n.Tag == nil {
				return true
			}
			x, y = n.Tag, nil
		default:
			return true
		}
		if mentionsFence(pass, x, ft) || (y != nil && mentionsFence(pass, y, ft)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// mentionsFence reports whether the expression subtree contains the
// fence field — by selector on the fenced type, or by an identifier or
// selector whose name matches it case-insensitively (the field's value
// is routinely extracted into a local before the compare).
func mentionsFence(pass *Pass, e ast.Expr, ft fencedType) bool {
	if e == nil {
		return false
	}
	want := strings.ToLower(ft.field)
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if s, ok := pass.TypesInfo.Selections[n]; ok && s.Kind() == types.FieldVal &&
				namedOf(s.Recv()) == ft.named && n.Sel.Name == ft.field {
				found = true
				return false
			}
			if nameMatchesFence(n.Sel.Name, want) {
				found = true
				return false
			}
		case *ast.Ident:
			if nameMatchesFence(n.Name, want) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// nameMatchesFence matches identifiers that carry a fence value under
// conventional naming: the field name itself, or prefixed by a role
// ("maxEpoch", "lastInc", "ckXfer").
func nameMatchesFence(name, want string) bool {
	l := strings.ToLower(name)
	return l == want || strings.HasSuffix(l, want)
}
