// Package lint is otpdb's static-analysis toolkit: a small analyzer
// framework in the shape of golang.org/x/tools/go/analysis (which this
// module cannot depend on — the build is hermetic), a package loader
// built on `go list -export` plus the standard library's gc importer,
// and the five analyzers that machine-check the repo's distributed-
// systems invariants (DESIGN.md §14):
//
//	chaosdet    — chaos schedule expansion is a pure function of its seed
//	epochfence  — fenced wire messages are compared against their fence
//	              field (epoch / incarnation / transfer id) before use
//	atomiccow   — fields accessed via sync/atomic are never touched
//	              non-atomically
//	metricnames — metric registration follows the naming and label
//	              cardinality discipline
//	testpoll    — tests wait on events, not sleep-poll loops
//
// The analyzers are invariant regression guards: each encodes a rule
// that was violated at least once before being fixed by hand (the
// incident catalog lives in DESIGN.md §14). `cmd/otplint ./...` runs
// them as a CI gate.
//
// # Suppressions
//
// A diagnostic is suppressed by a comment on the flagged line or the
// line directly above it:
//
//	//otplint:allow <analyzer> <justification>
//
// The justification is mandatory: an allow comment without one is
// itself reported. Analyzer-specific contracts (`//otp:fence`,
// `//otp:fenced`, `//otp:deterministic`) are documented on their
// analyzers.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one invariant check. The shape deliberately mirrors
// golang.org/x/tools/go/analysis.Analyzer so the checks can be ported
// to a stock vettool verbatim if that dependency ever becomes
// available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow comments.
	Name string
	// Doc is the one-paragraph invariant statement.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed sources (with comments).
	Files []*ast.File
	// Pkg and TypesInfo are the go/types results.
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the import path as reported by go list; test variants
	// carry their "pkg [pkg.test]" decoration in ForTest instead.
	PkgPath string
	// ForTest is non-empty for test-augmented package variants.
	ForTest string

	diags *[]Diagnostic
}

// Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers is the full suite, in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{ChaosDet, EpochFence, AtomicCOW, MetricNames, TestPoll}
}

// Run applies the analyzers to the loaded packages and returns the
// surviving diagnostics: suppressed findings are dropped, malformed
// suppressions are reported, and duplicates (the same finding surfacing
// in both a package and its test variant) are folded. The result is
// sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				PkgPath:   pkg.PkgPath,
				ForTest:   pkg.ForTest,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
		diags = applyAllows(pkg, diags)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return dedup(diags), nil
}

func dedup(diags []Diagnostic) []Diagnostic {
	seen := make(map[string]bool, len(diags))
	out := diags[:0]
	for _, d := range diags {
		key := d.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	return out
}

// allowRe matches "//otplint:allow <analyzer> <justification>".
var allowRe = regexp.MustCompile(`^//otplint:allow\s+([a-z]+)\b[ \t]*(.*)$`)

// allow is one parsed suppression comment.
type allow struct {
	analyzer      string
	justification string
	pos           token.Position
}

// applyAllows filters this package's fresh diagnostics through its
// allow comments. A finding is suppressed when an allow comment naming
// its analyzer sits on the same line or the line directly above. An
// allow with an empty justification suppresses nothing and is reported
// itself — the invariant catalog requires every waiver to say why.
func applyAllows(pkg *Package, diags []Diagnostic) []Diagnostic {
	// file -> line -> allows live on that line.
	allows := make(map[string]map[int][]allow)
	var all []*allow
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				a := allow{analyzer: m[1], justification: strings.TrimSpace(m[2]), pos: pos}
				if allows[pos.Filename] == nil {
					allows[pos.Filename] = make(map[int][]allow)
				}
				allows[pos.Filename][pos.Line] = append(allows[pos.Filename][pos.Line], a)
				last := &allows[pos.Filename][pos.Line][len(allows[pos.Filename][pos.Line])-1]
				all = append(all, last)
			}
		}
	}
	if len(all) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			for i := range allows[d.Pos.Filename][line] {
				a := &allows[d.Pos.Filename][line][i]
				if a.analyzer != d.Analyzer || a.justification == "" {
					continue
				}
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, a := range all {
		if a.justification == "" {
			out = append(out, Diagnostic{
				Pos:      a.pos,
				Analyzer: a.analyzer,
				Message:  "otplint:allow requires a justification (//otplint:allow " + a.analyzer + " <why>)",
			})
		}
	}
	return out
}

// --- shared AST/type helpers used by several analyzers ---

// funcOf resolves a call expression to the package-level or method
// *types.Func it invokes, or nil (builtin, func value, interface
// method through a non-Func object).
func funcOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the named top-level function of the
// package with the given path ("time", "math/rand").
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != pkgPath || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// namedOf unwraps pointers and aliases down to the *types.Named type,
// or nil.
func namedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isTestFile reports whether pos lies in a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// docHasDirective scans a doc comment group for a "//prefix" directive
// line and returns its trailing argument text ("" when absent; found
// reports presence).
func docHasDirective(doc *ast.CommentGroup, prefix string) (arg string, found bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if c.Text == prefix || strings.HasPrefix(c.Text, prefix+" ") {
			return strings.TrimSpace(strings.TrimPrefix(c.Text, prefix)), true
		}
	}
	return "", false
}
