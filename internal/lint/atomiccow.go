package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicCOW enforces all-or-nothing atomicity of field access
// (DESIGN.md §14): once any code path touches a struct field through
// sync/atomic, every other access to that field — read, write, or
// whole-struct overwrite — must be atomic too. Mixed access is a data
// race the race detector only catches when both paths happen to fire
// in one run.
//
// The incident: the transaction pool reset wrote `*tx = Txn{...}`
// over fields that in-flight work-stealing accessed with
// atomic.AddInt32/LoadInt32, racing pool recycling against late
// decrefs (internal/otp). The durable fix is migrating such fields to
// the typed atomics (atomic.Int32 et al.), whose noCopy member also
// lets `go vet`'s copylocks check catch the struct-copy half of the
// bug.
//
// Two patterns are flagged in any non-test file:
//
//   - a plain mention (read, write, address-taken escape) of a field
//     that some other site in the package passes to a sync/atomic
//     function;
//   - a whole-struct assignment (`*p = T{...}`, `v = T{...}`) to a
//     struct type owning such a field — it stores the field
//     non-atomically no matter how the literal spells it.
var AtomicCOW = &Analyzer{
	Name: "atomiccow",
	Doc:  "fields accessed via sync/atomic must never be read or written non-atomically",
	Run:  runAtomicCOW,
}

func runAtomicCOW(pass *Pass) error {
	// Pass 1: fields used atomically anywhere in the package, and the
	// exact &x.f selector nodes inside those sync/atomic calls (those
	// mentions are the sanctioned ones).
	atomicFields := make(map[*types.Var]bool)
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := funcOf(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
					if v, ok := s.Obj().(*types.Var); ok {
						atomicFields[v] = true
						sanctioned[sel] = true
					}
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// owners: struct types declaring at least one atomic field, for the
	// whole-struct-overwrite check.
	owners := make(map[*types.Named]*types.Var)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				named := namedOf(obj.Type())
				if named == nil {
					continue
				}
				st, ok := named.Underlying().(*types.Struct)
				if !ok {
					continue
				}
				for i := 0; i < st.NumFields(); i++ {
					if atomicFields[st.Field(i)] {
						owners[named] = st.Field(i)
						break
					}
				}
			}
		}
	}

	// Pass 2: flag unsanctioned mentions and whole-struct overwrites.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sanctioned[n] || isTestFile(pass.Fset, n.Pos()) {
					return true
				}
				s, ok := pass.TypesInfo.Selections[n]
				if !ok || s.Kind() != types.FieldVal {
					return true
				}
				v, ok := s.Obj().(*types.Var)
				if !ok || !atomicFields[v] {
					return true
				}
				pass.Reportf(n.Pos(), "field %s.%s is accessed with sync/atomic elsewhere in this package; this plain access races with those (migrate the field to a typed atomic, e.g. atomic.Int32)",
					ownerName(s.Recv()), v.Name())
			case *ast.AssignStmt:
				if n.Tok != token.ASSIGN || isTestFile(pass.Fset, n.Pos()) {
					return true
				}
				for _, lhs := range n.Lhs {
					t := pass.TypesInfo.TypeOf(lhs)
					if t == nil {
						continue
					}
					// The struct type itself, not a pointer to it:
					// assigning a *T moves a reference, stores nothing.
					named, ok := types.Unalias(t).(*types.Named)
					if !ok {
						continue
					}
					if v, owns := owners[named]; owns {
						pass.Reportf(lhs.Pos(), "whole-struct write to %s overwrites field %s non-atomically while other code accesses it with sync/atomic; reset fields individually with atomic stores",
							named.Obj().Name(), v.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}

func ownerName(recv types.Type) string {
	if n := namedOf(recv); n != nil {
		return n.Obj().Name()
	}
	return recv.String()
}
