package lint

import (
	"go/ast"
)

// TestPoll forbids sleep-poll loops in tests: a `time.Sleep` inside a
// `for` loop in a _test.go file. Sleep-polling picks one duration for
// every machine — too short flakes under race-detector load or CI
// contention, too long pads every run — and the repo's history of
// deflaking commits is mostly sleep-tuning. Tests wait on events
// instead: testutil.Eventually for condition polling with deadline
// and backoff owned in one place, or a channel/Sync call when the
// code under test exposes one.
//
// Only sleeps lexically inside a loop are flagged. A bare sleep (give
// the scheduler one beat, let a timer fire) is sometimes the honest
// tool and stays legal.
var TestPoll = &Analyzer{
	Name: "testpoll",
	Doc:  "tests must wait on events (testutil.Eventually, channels), not sleep-poll in a loop",
	Run:  runTestPoll,
}

func runTestPoll(pass *Pass) error {
	for _, f := range pass.Files {
		if !isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			flagSleepsInLoops(pass, fd.Body, 0)
		}
	}
	return nil
}

// flagSleepsInLoops walks stmts tracking loop nesting depth; a
// time.Sleep call at depth > 0 is a poll.
func flagSleepsInLoops(pass *Pass, n ast.Node, depth int) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.ForStmt:
		flagSleepsInLoops(pass, n.Body, depth+1)
		return
	case *ast.RangeStmt:
		flagSleepsInLoops(pass, n.Body, depth+1)
		return
	case *ast.FuncLit:
		// A closure resets the count: its body runs when called, not
		// where it is written — but a closure *defined* in a loop and
		// sleep-polling internally still gets caught when its own loops
		// nest the sleep.
		flagSleepsInLoops(pass, n.Body, 0)
		return
	case *ast.CallExpr:
		if depth > 0 && isPkgFunc(funcOf(pass.TypesInfo, n), "time", "Sleep") {
			pass.Reportf(n.Pos(), "time.Sleep inside a loop is a poll: wait on the event instead (testutil.Eventually, or a channel from the code under test)")
		}
	}
	// Generic descent preserving depth.
	var children []ast.Node
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil || c == n {
			return true
		}
		children = append(children, c)
		return false // one level only; recursion handles the rest
	})
	for _, c := range children {
		flagSleepsInLoops(pass, c, depth)
	}
}
