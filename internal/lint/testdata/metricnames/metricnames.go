// Package metricnames is the metricnames corpus.
package metricnames

import (
	"fmt"
	"strconv"

	"lint.test/corpus/metrics"
)

func register(r *metrics.Registry, site int, txnID uint64) {
	s := r.Scope("site", strconv.Itoa(site)) // bounded small-int label: fine

	s.Counter("otp_commits_total") // conformant
	s.Histogram("otp_commit_latency_seconds")
	s.SizeHistogram("otp_batch_size") // size histograms are unitless
	s.Gauge("otp_pending")
	s.Func("otp_last_to_index", func() float64 { return 0 })

	s.Counter("otp_aborts")                 // want `counter "otp_aborts" must end in _total`
	s.Histogram("otp_sync_latency")         // want `duration histogram "otp_sync_latency" must end in _seconds`
	s.Gauge("otp_queue_total")              // want `gauge "otp_queue_total" must not end in _total`
	s.Counter("OTP_Retries_Total")          // want `metric name "OTP_Retries_Total" is not snake_case`
	s.Counter("otp_" + strconv.Itoa(site))  // want `metric name must be a compile-time constant string`
	s.Gauge("otp_commits_total")            // want `metric "otp_commits_total" registered as Gauge here but as Counter elsewhere` `gauge "otp_commits_total" must not end in _total`
	s.With("txn_id", strconv.FormatUint(txnID, 10)).Counter("otp_ops_total")   // want `label key "txn_id" names per-transaction identity`
	s.With("peer", fmt.Sprintf("%d->%d", site, site+1)).Counter("otp_rx_total")  // want `label value built with fmt.Sprintf`
	s.With("Shard-ID", "3").Counter("otp_tx_total") // want `label key "Shard-ID" is not snake_case`
	s.With("shard", strconv.Itoa(site))
}
