// Package epochfence is the epochfence corpus.
package epochfence

// JoinResp is explicitly fenced: the transfer id is the fence.
//
//otp:fence Xfer
type JoinResp struct {
	Xfer    uint64
	Payload []byte
}

// MsgEstimate is implicitly fenced: Msg* naming plus an Epoch field.
type MsgEstimate struct {
	Epoch uint64
	Val   int
}

// StatusReply is implicitly fenced: *Reply naming plus an Inc field.
type StatusReply struct {
	Inc  uint64
	Load int
}

// Note carries no fence field and no directive: not in the contract.
type Note struct {
	Text string
}

// Broken has a directive naming a field it does not declare.
//
//otp:fence Epoch
type Broken struct { // want `//otp:fence must name a field of Broken`
	Seq uint64
}

type node struct {
	xfer  uint64
	epoch uint64
}

// goodDirect fences inline before consuming.
func (n *node) goodDirect(r JoinResp) []byte {
	if r.Xfer != n.xfer {
		return nil
	}
	return r.Payload
}

// goodViaCallee consumes here, but a callee holds the fence compare.
func (n *node) goodViaCallee(m MsgEstimate) int {
	if !n.current(m) {
		return 0
	}
	return m.Val
}

func (n *node) current(m MsgEstimate) bool {
	return m.Epoch == n.epoch
}

// badConsume reads the payload with no fence anywhere in its graph.
func (n *node) badConsume(r JoinResp) []byte { // want `badConsume consumes JoinResp without comparing its Xfer fence`
	return r.Payload
}

// badReply acts on a reply without checking the incarnation.
func badReply(r StatusReply) int { // want `badReply consumes StatusReply without comparing its Inc fence`
	return r.Load
}

// construct only builds and assigns fenced values: not consumption.
func construct(v int) MsgEstimate {
	m := MsgEstimate{Epoch: 1, Val: v}
	m.Val = v
	return m
}

// fenceOnly inspects nothing but the fence field: also not consumption.
func fenceOnly(r JoinResp) uint64 {
	return r.Xfer
}

// annotated discharges the obligation with a justification.
//
//otp:fenced callers fence Xfer before delegating
func annotated(r JoinResp) []byte {
	return r.Payload
}

// unjustified carries the annotation but no reason.
//
//otp:fenced
func unjustified(r JoinResp) []byte { // want `//otp:fenced requires a justification`
	return r.Payload
}

// notes reads an unfenced type freely.
func notes(n Note) string {
	return n.Text
}
