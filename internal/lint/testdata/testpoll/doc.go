// Package testpoll is the testpoll corpus; the analyzer only looks at
// its _test.go files.
package testpoll
