package testpoll

import (
	"testing"
	"time"
)

func ready() bool { return true }

func TestSleepPoll(t *testing.T) {
	for i := 0; i < 100; i++ {
		if ready() {
			break
		}
		time.Sleep(10 * time.Millisecond) // want `time.Sleep inside a loop is a poll`
	}
}

func TestRangePoll(t *testing.T) {
	for range [5]int{} {
		time.Sleep(time.Millisecond) // want `time.Sleep inside a loop is a poll`
	}
}

func TestBareSleep(t *testing.T) {
	time.Sleep(time.Millisecond) // one beat for the scheduler: legal
}

func TestClosureResets(t *testing.T) {
	for i := 0; i < 3; i++ {
		t.Run("sub", func(t *testing.T) {
			time.Sleep(time.Millisecond) // bare sleep inside the subtest body: legal
		})
	}
}

func TestClosurePolls(t *testing.T) {
	wait := func() {
		for !ready() {
			time.Sleep(time.Millisecond) // want `time.Sleep inside a loop is a poll`
		}
	}
	wait()
}
