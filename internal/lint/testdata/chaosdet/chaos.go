// Package chaos is the chaosdet corpus: the analyzer only fires in
// packages named "chaos".
package chaos

import (
	"math/rand"
	"time"
)

type Scenario struct {
	Sites  int
	Phases map[string]int
}

type Event struct {
	At   time.Duration
	Site int
}

// Expand is the analyzer's default root.
func Expand(sc Scenario, seed int64) []Event {
	rng := rand.New(rand.NewSource(seed)) // constructors are sanctioned
	now := time.Now()                     // want `wall-clock read \(time.Now\) in schedule expansion reachable from Expand`
	_ = now
	var evs []Event
	for name, n := range sc.Phases { // want `map iteration in schedule expansion reachable from Expand`
		_ = name
		evs = append(evs, Event{Site: n})
	}
	evs = append(evs, helper(rng, sc.Sites)...)
	return evs
}

// helper is reached from Expand through the call graph.
func helper(rng *rand.Rand, sites int) []Event {
	jitter := rand.Intn(sites) // want `global math/rand.Intn in schedule expansion reachable from Expand`
	_ = rng.Intn(sites)        // threading the seeded rng is the sanctioned form
	return []Event{{Site: jitter}}
}

// profile opts into the contract explicitly.
//
//otp:deterministic
func profile(seed int64) time.Duration {
	return time.Since(time.Unix(seed, 0)) // want `wall-clock read \(time.Since\) in schedule expansion reachable from profile`
}

// observe is outside every root's call graph: real-time execution may
// read the clock freely.
func observe() time.Time {
	return time.Now()
}
