// Package atomiccow is the atomiccow corpus.
package atomiccow

import "sync/atomic"

type txn struct {
	id   uint64
	refs int32
	done int32
}

func retain(t *txn) {
	atomic.AddInt32(&t.refs, 1) // sanctioned: this is what marks refs atomic
}

func release(t *txn) int32 {
	return atomic.AddInt32(&t.refs, -1)
}

func finish(t *txn) {
	atomic.StoreInt32(&t.done, 1)
}

func plainRead(t *txn) bool {
	return t.refs == 0 // want `field txn.refs is accessed with sync/atomic elsewhere in this package`
}

func plainWrite(t *txn) {
	t.done = 0 // want `field txn.done is accessed with sync/atomic elsewhere in this package`
}

func reset(t *txn, id uint64) {
	*t = txn{id: id} // want `whole-struct write to txn overwrites field refs non-atomically`
}

func id(t *txn) uint64 {
	return t.id // id is never touched atomically: plain access is fine
}

// typed uses atomic.Int32: no address-of escapes, nothing to flag, and
// go vet's copylocks catches struct copies via the noCopy member.
type typed struct {
	refs atomic.Int32
}

func (t *typed) retain() { t.refs.Add(1) }
func (t *typed) zero() bool {
	return t.refs.Load() == 0
}

// suppressed shows the allow contract (the malformed-allow corpus
// lives in ../allow).
func suppressed(t *txn) int32 {
	//otplint:allow atomiccow single-goroutine teardown path, no concurrent holders remain
	return t.refs
}
