// Package allow is the suppression-mechanism corpus, exercised with
// direct assertions (TestAllowContract) rather than want comments:
// a malformed allow is reported at its own comment line, where no
// want comment can sit.
package allow

import "sync/atomic"

type box struct {
	n int32
}

func bump(b *box) {
	atomic.AddInt32(&b.n, 1)
}

// justified is suppressed: no diagnostic.
func justified(b *box) int32 {
	//otplint:allow atomiccow read happens after the worker pool is joined
	return b.n
}

// unjustified suppresses nothing and the bare allow is itself
// reported.
func unjustified(b *box) int32 {
	//otplint:allow atomiccow
	return b.n
}

// wrongAnalyzer names an analyzer that did not fire here, so the
// finding survives.
func wrongAnalyzer(b *box) int32 {
	//otplint:allow testpoll this comment names the wrong analyzer
	return b.n
}
