// Package metrics is a registry stub for the metricnames corpus: the
// analyzer matches methods by package name ("metrics") and receiver
// type (Registry, Scope), so this stub exercises it exactly like the
// real otpdb/internal/metrics.
package metrics

type Registry struct{}

type Scope struct{}

type Counter struct{}

func (c *Counter) Add(float64) {}

type Gauge struct{}

func (g *Gauge) Set(float64) {}

type Histogram struct{}

func (h *Histogram) Observe(float64) {}

func (r *Registry) Scope(kv ...string) *Scope { return &Scope{} }

func (s *Scope) With(kv ...string) *Scope { return s }

func (s *Scope) Counter(name string, kv ...string) *Counter { return &Counter{} }

func (s *Scope) Gauge(name string, kv ...string) *Gauge { return &Gauge{} }

func (s *Scope) Func(name string, fn func() float64, kv ...string) {}

func (s *Scope) Histogram(name string, kv ...string) *Histogram { return &Histogram{} }

func (s *Scope) SizeHistogram(name string, kv ...string) *Histogram { return &Histogram{} }
