module lint.test/corpus

go 1.24
