package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// PkgPath is the plain import path; ForTest marks test variants
	// ("pkg [pkg.test]" recompilations and external _test packages).
	PkgPath string
	ForTest string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath      string
	Name            string
	Dir             string
	Export          string
	GoFiles         []string
	CompiledGoFiles []string
	Standard        bool
	DepOnly         bool
	ForTest         string
	ImportMap       map[string]string
}

// Load type-checks the packages matching patterns (test variants
// included), rooted at dir. It shells out to `go list -test -export
// -deps -json`, so the go command resolves build constraints, computes
// export data for every dependency, and hands back exact file lists —
// the same division of labor a go/packages driver uses, built from the
// standard library alone.
//
// Packages outside the target module (dependencies, std) are imported
// from export data, never re-analyzed. For a base package with a test
// variant, only the variant is returned: its file set is a strict
// superset, so analyzing both would duplicate every finding.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-test", "-export", "-deps", "-json=ImportPath,Name,Dir,Export,GoFiles,CompiledGoFiles,Standard,DepOnly,ForTest,ImportMap"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, errBuf.String())
	}

	byPath := make(map[string]*listPkg)
	var order []*listPkg
	dec := json.NewDecoder(&out)
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		q := p
		byPath[q.ImportPath] = &q
		order = append(order, &q)
	}

	// Test variants shadow their base package in the analysis set.
	hasVariant := make(map[string]bool)
	for _, p := range order {
		if p.ForTest != "" && strings.HasPrefix(p.ImportPath, p.ForTest+" ") {
			hasVariant[p.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, p := range order {
		if p.Standard || p.DepOnly || strings.HasSuffix(p.ImportPath, ".test") {
			continue // imported via export data, or a synthesized test main
		}
		if p.ForTest == "" && hasVariant[p.ImportPath] {
			continue // the "pkg [pkg.test]" variant covers these files
		}
		pkg, err := check(fset, p, byPath)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.ImportPath, err)
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// check parses and type-checks one package against its dependencies'
// export data.
func check(fset *token.FileSet, p *listPkg, byPath map[string]*listPkg) (*Package, error) {
	files := p.CompiledGoFiles
	if len(files) == 0 {
		files = p.GoFiles
	}
	var asts []*ast.File
	for _, f := range files {
		if !strings.HasSuffix(f, ".go") {
			return nil, nil // cgo or assembly artifacts: out of scope
		}
		path := f
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, f)
		}
		af, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, af)
	}
	if len(asts) == 0 {
		return nil, nil
	}

	// The gc importer reads dependencies' export data through a lookup
	// that first canonicalizes the source-level import path via this
	// package's ImportMap — how "pkg" resolves to "pkg [other.test]"
	// inside test variants.
	lookup := func(ipath string) (io.ReadCloser, error) {
		if m, ok := p.ImportMap[ipath]; ok {
			ipath = m
		}
		dep, ok := byPath[ipath]
		if !ok || dep.Export == "" {
			return nil, fmt.Errorf("no export data for %q", ipath)
		}
		return os.Open(dep.Export)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	// Type-check under the plain path so diagnostics and type identity
	// are stable across base packages and their test variants.
	path := p.ImportPath
	forTest := ""
	if p.ForTest != "" {
		forTest = p.ImportPath
		if i := strings.IndexByte(path, ' '); i > 0 {
			path = path[:i]
		}
	}
	tpkg, err := conf.Check(path, fset, asts, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		PkgPath: path,
		ForTest: forTest,
		Fset:    fset,
		Files:   asts,
		Types:   tpkg,
		Info:    info,
	}, nil
}
