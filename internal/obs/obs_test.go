package obs

import (
	"context"
	"testing"
	"time"

	"otpdb/internal/metrics"
	"otpdb/internal/transport"
)

// cluster builds n stations over a memnet hub.
func cluster(t *testing.T, n int, epochs []uint64) (*transport.Hub, []*Station, []*metrics.Registry, []*metrics.TraceRing) {
	t.Helper()
	hub := transport.NewHub(n)
	stations := make([]*Station, n)
	regs := make([]*metrics.Registry, n)
	rings := make([]*metrics.TraceRing, n)
	for i := 0; i < n; i++ {
		regs[i] = metrics.NewRegistry()
		rings[i] = metrics.NewTraceRing(256)
		site := i
		stations[i] = New(hub.Endpoint(transport.NodeID(i)), Config{
			Site:    site,
			Epoch:   func() uint64 { return epochs[site] },
			Trace:   rings[i],
			Metrics: regs[i],
		})
		stations[i].Start()
	}
	t.Cleanup(func() {
		for _, s := range stations {
			s.Stop()
		}
		hub.Close()
	})
	return hub, stations, regs, rings
}

func peers(n int) []transport.NodeID {
	out := make([]transport.NodeID, n)
	for i := range out {
		out[i] = transport.NodeID(i)
	}
	return out
}

// TestStationTraceStitch: spans recorded at three sites under one
// trace ID come back as one causally ordered set from any site.
func TestStationTraceStitch(t *testing.T) {
	_, stations, _, rings := cluster(t, 3, []uint64{1, 1, 1})
	const trace = "tx0.1.7"
	base := time.Now()
	rings[0].Record(metrics.TraceEvent{Txn: trace, Trace: trace, Span: metrics.SpanXSubmit, Site: 0, At: base})
	rings[1].Record(metrics.TraceEvent{Txn: "m1.9", Trace: trace, Span: metrics.SpanOptDeliver, Site: 1, At: base.Add(time.Millisecond)})
	rings[2].Record(metrics.TraceEvent{Txn: "m1.9", Trace: trace, Span: metrics.SpanCommit, Site: 2, At: base.Add(2 * time.Millisecond)})
	rings[2].Record(metrics.TraceEvent{Txn: "other", Span: metrics.SpanSubmit, Site: 2, At: base})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	spans := stations[0].Trace(ctx, trace, peers(3))
	if len(spans) != 3 {
		t.Fatalf("stitched %d spans, want 3: %+v", len(spans), spans)
	}
	sites := map[int]bool{}
	for i, sp := range spans {
		sites[sp.Site] = true
		if i > 0 && sp.At.Before(spans[i-1].At) {
			t.Fatalf("spans not causally ordered: %+v", spans)
		}
	}
	if len(sites) != 3 {
		t.Fatalf("spans cover %d sites, want 3", len(sites))
	}
}

// TestStationMetricsFederation: every member's series arrive
// site-labelled plus aggregated rollups.
func TestStationMetricsFederation(t *testing.T) {
	_, stations, regs, _ := cluster(t, 3, []uint64{1, 1, 1})
	for i, r := range regs {
		r.Scope("site", string(rune('0'+i))).Counter("otp_commits_total").Add(uint64(10 * (i + 1)))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	fed := stations[1].Metrics(ctx, peers(3))
	var rollup float64
	members := 0
	for _, s := range fed {
		if s.Name != "otp_commits_total" {
			continue
		}
		for _, l := range s.Labels {
			if l.Key == "agg" {
				rollup = s.Value
			}
			if l.Key == "site" {
				members++
			}
		}
	}
	if members != 3 || rollup != 60 {
		t.Fatalf("federation: members=%d rollup=%v (want 3, 60)", members, rollup)
	}
}

// TestStationEpochFence is the federation regression test: a member
// answering from an older membership epoch is dropped from the
// federated scrape, and a member removed from the peer set is not
// scraped at all — its series disappear within one scrape.
func TestStationEpochFence(t *testing.T) {
	epochs := []uint64{2, 2, 1} // site 2 is stale (evicted config)
	_, stations, regs, _ := cluster(t, 3, epochs)
	for i, r := range regs {
		r.Scope("site", string(rune('0'+i))).Counter("otp_commits_total").Add(100)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	fed := stations[0].Metrics(ctx, peers(3))
	for _, s := range fed {
		for _, l := range s.Labels {
			if l.Key == "site" && l.Value == "2" {
				t.Fatalf("stale-epoch member leaked into federation: %+v", s)
			}
		}
	}
	var rollup float64
	for _, s := range fed {
		if s.Name != "otp_commits_total" {
			continue
		}
		for _, l := range s.Labels {
			if l.Key == "agg" {
				rollup = s.Value
			}
		}
	}
	if rollup != 200 {
		t.Fatalf("rollup includes fenced member: %v (want 200)", rollup)
	}

	// After the membership moves on, the caller scrapes only current
	// members: the removed site's series are gone entirely.
	fed = stations[0].Metrics(ctx, []transport.NodeID{0, 1})
	for _, s := range fed {
		for _, l := range s.Labels {
			if l.Key == "site" && l.Value == "2" {
				t.Fatalf("removed member scraped: %+v", s)
			}
		}
	}
}

// TestStationPartialOnTimeout: a dead peer cannot wedge the scrape —
// the context deadline returns what arrived.
func TestStationPartialOnTimeout(t *testing.T) {
	hub, stations, _, rings := cluster(t, 3, []uint64{1, 1, 1})
	rings[0].Record(metrics.TraceEvent{Txn: "x", Span: metrics.SpanSubmit, Site: 0})
	rings[1].Record(metrics.TraceEvent{Txn: "x", Span: metrics.SpanOptDeliver, Site: 1})
	hub.Crash(2)
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	spans := stations[0].Trace(ctx, "x", peers(3))
	sites := map[int]bool{}
	for _, sp := range spans {
		sites[sp.Site] = true
	}
	if !sites[0] || !sites[1] {
		t.Fatalf("live sites missing from partial stitch: %+v", spans)
	}
}
