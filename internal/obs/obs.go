// Package obs is the cluster-wide observability fan-out: one station
// per site answers trace and metrics queries from its peers over the
// group transport, so any site can stitch a transaction's spans from
// every site's local ring (otpd TRACE) or federate every live member's
// metrics registry into one scrape (/cluster/metrics).
//
// Queries are membership-aware and epoch-fenced: the caller passes the
// peer set it currently believes in (its tracker's members), and every
// reply carries the responder's membership epoch. Replies from an
// older epoch than the freshest seen are dropped — a removed member
// still limping on a stale configuration cannot smuggle its series
// into the rollup, so its data disappears within one scrape of its
// eviction.
package obs

import (
	"context"
	"sync"

	"otpdb/internal/metrics"
	"otpdb/internal/transport"
)

// Streams used on the transport.
const (
	// StreamQuery carries trace/metrics queries to peers.
	StreamQuery = "obs.q"
	// StreamReply carries the answers back.
	StreamReply = "obs.r"
)

// Query kinds.
const (
	kindTrace   = "trace"
	kindMetrics = "metrics"
)

// Query asks one peer for observability data.
type Query struct {
	Nonce uint64
	Kind  string
	Key   string // trace queries: the transaction or trace ID
}

// Reply is one peer's answer.
type Reply struct {
	Nonce   uint64
	Kind    string
	Site    int
	Epoch   uint64
	Spans   []metrics.TraceEvent
	Samples []metrics.WireSample
}

// RegisterWire registers the fan-out message types with the gob codec
// used by the TCP transport.
func RegisterWire() {
	transport.Register(Query{}, Reply{},
		metrics.TraceEvent{}, []metrics.TraceEvent(nil),
		metrics.WireSample{}, []metrics.WireSample(nil),
		metrics.HistExport{}, metrics.BucketCount{}, metrics.Label{})
}

// Config parameterises a Station.
type Config struct {
	// Site is this station's site index (stamped on replies).
	Site int
	// Epoch reports the current membership epoch (nil means epoch 0).
	Epoch func() uint64
	// Trace is the local span ring served to trace queries (nil: none).
	Trace *metrics.TraceRing
	// Metrics is the local registry served to metrics queries.
	Metrics *metrics.Registry
}

// Station serves this site's observability data to peers and fans
// queries out to them. One station runs per otpd process, attached to
// the shard-0 group endpoint (every process has one).
type Station struct {
	ep  transport.Endpoint
	cfg Config

	mu      sync.Mutex
	nonce   uint64
	pending map[uint64]chan Reply

	stop chan struct{}
	done chan struct{}
}

// New creates a station over an endpoint. Call Start to begin serving.
func New(ep transport.Endpoint, cfg Config) *Station {
	return &Station{
		ep: ep, cfg: cfg,
		pending: make(map[uint64]chan Reply),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Start launches the serve loop.
func (s *Station) Start() {
	queries := s.ep.Subscribe(StreamQuery)
	replies := s.ep.Subscribe(StreamReply)
	go func() {
		defer close(s.done)
		for {
			select {
			case <-s.stop:
				return
			case env, ok := <-queries:
				if !ok {
					return
				}
				q, good := env.Msg.(Query)
				if !good {
					continue
				}
				_ = s.ep.Send(env.From, StreamReply, s.answer(q))
			case env, ok := <-replies:
				if !ok {
					return
				}
				r, good := env.Msg.(Reply)
				if !good {
					continue
				}
				s.mu.Lock()
				ch := s.pending[r.Nonce]
				s.mu.Unlock()
				if ch != nil {
					select {
					case ch <- r:
					default:
					}
				}
			}
		}
	}()
}

// Stop terminates the serve loop.
func (s *Station) Stop() {
	close(s.stop)
	<-s.done
}

// answer builds this site's reply to a query.
func (s *Station) answer(q Query) Reply {
	r := Reply{Nonce: q.Nonce, Kind: q.Kind, Site: s.cfg.Site}
	if s.cfg.Epoch != nil {
		r.Epoch = s.cfg.Epoch()
	}
	switch q.Kind {
	case kindTrace:
		r.Spans = s.cfg.Trace.Find(q.Key)
	case kindMetrics:
		r.Samples = metrics.ExportSnapshot(s.cfg.Metrics)
	}
	return r
}

// collect fans one query out to peers (self included via transport
// loopback) and gathers replies until every peer answered or ctx
// expires. Replies older than the freshest epoch seen are dropped.
func (s *Station) collect(ctx context.Context, kind, key string, peers []transport.NodeID) []Reply {
	s.mu.Lock()
	s.nonce++
	nonce := s.nonce
	ch := make(chan Reply, len(peers)+1)
	s.pending[nonce] = ch
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.pending, nonce)
		s.mu.Unlock()
	}()

	sent := 0
	for _, p := range peers {
		if s.ep.Send(p, StreamQuery, Query{Nonce: nonce, Kind: kind, Key: key}) == nil {
			sent++
		}
	}
	var out []Reply
	var maxEpoch uint64
	for len(out) < sent {
		select {
		case r := <-ch:
			if r.Epoch > maxEpoch {
				maxEpoch = r.Epoch
			}
			out = append(out, r)
		case <-ctx.Done():
			return fence(out, maxEpoch)
		}
	}
	return fence(out, maxEpoch)
}

// fence drops replies from members whose epoch lags the freshest seen:
// they answered from a configuration the cluster has moved past.
func fence(rs []Reply, maxEpoch uint64) []Reply {
	out := rs[:0]
	for _, r := range rs {
		if r.Epoch == maxEpoch {
			out = append(out, r)
		}
	}
	return out
}

// Trace fans a trace query out to peers and returns the stitched
// cluster-wide span set, causally ordered. Key may be a local
// transaction ID (m0.4) or a cluster-wide trace ID (tx0.1.7).
func (s *Station) Trace(ctx context.Context, key string, peers []transport.NodeID) []metrics.TraceEvent {
	replies := s.collect(ctx, kindTrace, key, peers)
	sets := make([][]metrics.TraceEvent, 0, len(replies))
	for _, r := range replies {
		sets = append(sets, r.Spans)
	}
	return metrics.StitchTraces(sets...)
}

// Metrics fans a metrics scrape out to peers and returns the federated
// sample list (member series plus rollups), ready for WritePromSamples.
func (s *Station) Metrics(ctx context.Context, peers []transport.NodeID) []metrics.Sample {
	replies := s.collect(ctx, kindMetrics, "", peers)
	scrapes := make([][]metrics.WireSample, 0, len(replies))
	for _, r := range replies {
		scrapes = append(scrapes, r.Samples)
	}
	return metrics.Federate(scrapes...)
}
