package metrics

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
	"time"
)

// TestHistExportRoundTrip: Export → gob → Rebuild preserves the exact
// moments and the quantile structure.
func TestHistExportRoundTrip(t *testing.T) {
	h := NewHistogram()
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 50 * time.Millisecond, 3 * time.Second} {
		h.Observe(d)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(h.Export()); err != nil {
		t.Fatal(err)
	}
	var ex HistExport
	if err := gob.NewDecoder(&buf).Decode(&ex); err != nil {
		t.Fatal(err)
	}
	got := ex.Rebuild()
	if got.Count() != h.Count() || got.Sum() != h.Sum() || got.Min() != h.Min() || got.Max() != h.Max() {
		t.Fatalf("round-trip: got n=%d sum=%v min=%v max=%v", got.Count(), got.Sum(), got.Min(), got.Max())
	}
	if got.Percentile(99) != h.Percentile(99) {
		t.Fatalf("p99 changed: %v vs %v", got.Percentile(99), h.Percentile(99))
	}
}

// TestHistogramMerge: merging two exports equals observing the union.
func TestHistogramMerge(t *testing.T) {
	a, b, union := NewHistogram(), NewHistogram(), NewHistogram()
	for i := 1; i <= 100; i++ {
		d := time.Duration(i) * time.Millisecond
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
		union.Observe(d)
	}
	m := NewHistogram()
	m.Merge(a.Export())
	m.Merge(b.Export())
	if m.Count() != union.Count() || m.Sum() != union.Sum() || m.Min() != union.Min() || m.Max() != union.Max() {
		t.Fatalf("merge: n=%d sum=%v", m.Count(), m.Sum())
	}
	for _, p := range []float64{50, 95, 99} {
		if m.Percentile(p) != union.Percentile(p) {
			t.Fatalf("p%v: merged %v union %v", p, m.Percentile(p), union.Percentile(p))
		}
	}
	// Merging an empty export is a no-op (and must not poison min).
	m.Merge(NewHistogram().Export())
	if m.Min() != union.Min() {
		t.Fatalf("empty merge changed min to %v", m.Min())
	}
}

// TestFederate checks the rollup semantics: member series pass through
// verbatim, counters sum, gauges max, histograms bucket-merge, and the
// aggregate rows carry agg labels with the site label dropped.
func TestFederate(t *testing.T) {
	site := func(id string, commits uint64, pending int64, lat time.Duration) []WireSample {
		r := NewRegistry()
		s := r.Scope("site", id)
		s.Counter("otp_commits_total").Add(commits)
		s.Gauge("otp_pending").Set(pending)
		s.Histogram("otp_opt_def_latency_seconds").Observe(lat)
		return ExportSnapshot(r)
	}
	fed := Federate(
		site("0", 10, 3, 5*time.Millisecond),
		site("1", 32, 9, 80*time.Millisecond),
	)
	find := func(name string, kv ...string) *Sample {
		want := pairs(kv)
		for i := range fed {
			if fed[i].Name != name || len(fed[i].Labels) != len(want) {
				continue
			}
			match := true
			for j, l := range fed[i].Labels {
				if want[j] != l {
					match = false
				}
			}
			if match {
				return &fed[i]
			}
		}
		return nil
	}
	if s := find("otp_commits_total", "site", "0"); s == nil || s.Value != 10 {
		t.Fatalf("member series missing or wrong: %+v", s)
	}
	if s := find("otp_commits_total", "agg", "sum"); s == nil || s.Value != 42 {
		t.Fatalf("counter rollup: %+v", s)
	}
	if s := find("otp_pending", "agg", "max"); s == nil || s.Value != 9 {
		t.Fatalf("gauge rollup: %+v", s)
	}
	hs := find("otp_opt_def_latency_seconds", "agg", "merge")
	if hs == nil || hs.Hist == nil || hs.Hist.Count() != 2 {
		t.Fatalf("histogram rollup: %+v", hs)
	}
	if hs.Hist.Max() < 79*time.Millisecond {
		t.Fatalf("merged max = %v", hs.Hist.Max())
	}

	// The federated set renders as valid, deterministic Prometheus text.
	var sb1, sb2 strings.Builder
	if err := WritePromSamples(&sb1, fed); err != nil {
		t.Fatal(err)
	}
	fed2 := Federate(
		site("0", 10, 3, 5*time.Millisecond),
		site("1", 32, 9, 80*time.Millisecond),
	)
	if err := WritePromSamples(&sb2, fed2); err != nil {
		t.Fatal(err)
	}
	if sb1.String() != sb2.String() {
		t.Fatalf("federated exposition not deterministic:\n%s\nvs\n%s", sb1.String(), sb2.String())
	}
	if !strings.Contains(sb1.String(), `otp_commits_total{agg="sum"} 42`) {
		t.Fatalf("rollup line missing:\n%s", sb1.String())
	}
}
