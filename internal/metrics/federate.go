package metrics

import "sort"

// BucketCount is one occupied histogram bucket in wire form.
type BucketCount struct {
	Idx int
	N   int64
}

// HistExport is a histogram snapshot that survives gob encoding: the
// exact moments plus the sparse occupied-bucket list, in the shared
// fixed bucket layout so merging is index-wise addition.
type HistExport struct {
	Count, Sum, Min, Max int64
	Buckets              []BucketCount
}

// Rebuild reconstitutes a live histogram from the export.
func (ex HistExport) Rebuild() *Histogram {
	h := NewHistogram()
	h.Merge(ex)
	return h
}

// WireSample is one metric series as shipped between sites by the
// observability fan-out: scalar kinds carry Value, histogram kinds
// carry Hist. Func collectors are resolved to their reading at export
// time (they travel as their value; kind is preserved so federation
// knows to sum them).
type WireSample struct {
	Name   string
	Labels []Label
	Kind   Kind
	Value  float64
	Hist   *HistExport
}

// ExportSnapshot converts a registry snapshot to wire form.
func ExportSnapshot(r *Registry) []WireSample {
	snap := r.Snapshot()
	out := make([]WireSample, 0, len(snap))
	for _, s := range snap {
		w := WireSample{Name: s.Name, Labels: s.Labels, Kind: s.Kind, Value: s.Value}
		if s.Hist != nil {
			ex := s.Hist.Export()
			w.Hist = &ex
		}
		out = append(out, w)
	}
	return out
}

// Federate merges per-member scrapes into one renderable sample list:
// every member series passes through verbatim (members' scopes already
// carry site labels), and per-family rollups are appended with the
// site label dropped and an agg label naming the fold — counters and
// Func collectors sum, gauges take the max, histograms bucket-merge.
// The result is sorted the way WritePromSamples expects.
func Federate(scrapes ...[]WireSample) []Sample {
	var out []Sample
	type rollup struct {
		name   string
		labels []Label
		kind   Kind
		value  float64
		hist   *Histogram
	}
	rolls := make(map[string]*rollup)
	for _, scrape := range scrapes {
		for _, w := range scrape {
			s := Sample{Name: w.Name, Labels: w.Labels, Kind: w.Kind, Value: w.Value}
			if w.Hist != nil {
				s.Hist = w.Hist.Rebuild()
			}
			out = append(out, s)

			base := dropLabel(w.Labels, "site")
			var agg string
			switch w.Kind {
			case KindCounter, KindFunc:
				agg = "sum"
			case KindGauge:
				agg = "max"
			case KindHistogram, KindSizeHistogram:
				agg = "merge"
			}
			labels := append(append([]Label{}, base...), Label{Key: "agg", Value: agg})
			sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
			key := seriesKey(w.Name, labels)
			r, ok := rolls[key]
			if !ok {
				r = &rollup{name: w.Name, labels: labels, kind: w.Kind}
				if w.Hist != nil {
					r.hist = NewHistogram()
				}
				rolls[key] = r
			}
			switch w.Kind {
			case KindGauge:
				if w.Value > r.value {
					r.value = w.Value
				}
			case KindHistogram, KindSizeHistogram:
				if w.Hist != nil {
					if r.hist == nil {
						r.hist = NewHistogram()
					}
					r.hist.Merge(*w.Hist)
				}
			default:
				r.value += w.Value
			}
		}
	}
	for _, r := range rolls {
		s := Sample{Name: r.name, Labels: r.labels, Kind: r.kind, Value: r.value, Hist: r.hist}
		if s.Kind == KindFunc {
			// A summed pull-gauge is no longer a callback; render as gauge.
			s.Kind = KindGauge
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return seriesKey("", out[i].Labels) < seriesKey("", out[j].Labels)
	})
	return out
}

// dropLabel returns labels without key.
func dropLabel(labels []Label, key string) []Label {
	out := make([]Label, 0, len(labels))
	for _, l := range labels {
		if l.Key != key {
			out = append(out, l)
		}
	}
	return out
}
