package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Span names used by the transaction lifecycle trace. Components
// record whichever apply; a reordered transaction records OptDeliver
// more than once. The x-* spans are the cross-shard coordinator's 2PC
// phases; net-recv marks a traced payload arriving over the TCP
// transport at a remote site.
const (
	SpanSubmit     = "submit"
	SpanOptDeliver = "opt-deliver"
	SpanTODeliver  = "to-deliver"
	SpanCommit     = "commit"
	SpanAbort      = "abort"
	SpanXSubmit    = "x-submit"
	SpanPrepare    = "prepare"
	SpanVote       = "vote"
	SpanDecide     = "decide"
	SpanXCommit    = "x-commit"
	SpanXAbort     = "x-abort"
	SpanNetRecv    = "net-recv"
)

// TraceEvent is one lifecycle span of one transaction at one site.
// Txn is the local message or cross-shard transaction identifier;
// Trace, when set, is the cluster-wide trace ID that stitches the
// spans of one logical transaction across sites and shards.
type TraceEvent struct {
	Txn   string    `json:"txn"`
	Trace string    `json:"trace,omitempty"`
	Span  string    `json:"span"`
	Site  int       `json:"site"`
	Shard int       `json:"shard"`
	At    time.Time `json:"at"`
	Note  string    `json:"note,omitempty"`
}

// Slot string capacities. Fields longer than their cap are truncated
// at record time. The identifier caps are sized for the worst case,
// not the common one: a cross-shard trace ID is
// "t" + "x<origin>.<inc>.<seq>" where Inc is a persisted unix-nano
// incarnation (19–20 digits) and both uint64s can reach 20 digits —
// 46 bytes. A truncated identifier is not cosmetic: Find matches by
// exact string, so a clipped ID makes the span unfindable (TRACE
// returns n=0). Only free-form notes (error text) may clip.
const (
	slotTxnCap   = 48
	slotTraceCap = 48
	slotSpanCap  = 16
	slotNoteCap  = 64
)

// traceSlot is one retained span in fixed, pointer-free storage. The
// ring's backing array holds no pointers at all, so the garbage
// collector never scans it — with a 4096-slot ring live on every
// replica, per-cycle scan cost (paid as GC assist inside the commit
// path) is what the traced-arm E7 budget of DESIGN.md §12 is spent
// on, not the record itself.
type traceSlot struct {
	at                                 int64 // unix nanoseconds
	site, shard                        int32
	txnLen, traceLen, spanLen, noteLen uint8
	txn                                [slotTxnCap]byte
	trace                              [slotTraceCap]byte
	span                               [slotSpanCap]byte
	note                               [slotNoteCap]byte
}

func (s *traceSlot) set(ev TraceEvent) {
	s.at = ev.At.UnixNano()
	s.site, s.shard = int32(ev.Site), int32(ev.Shard)
	s.txnLen = uint8(copy(s.txn[:], ev.Txn))
	s.traceLen = uint8(copy(s.trace[:], ev.Trace))
	s.spanLen = uint8(copy(s.span[:], ev.Span))
	s.noteLen = uint8(copy(s.note[:], ev.Note))
}

func (s *traceSlot) event() TraceEvent {
	return TraceEvent{
		Txn:   string(s.txn[:s.txnLen]),
		Trace: string(s.trace[:s.traceLen]),
		Span:  string(s.span[:s.spanLen]),
		Site:  int(s.site),
		Shard: int(s.shard),
		At:    time.Unix(0, s.at),
		Note:  string(s.note[:s.noteLen]),
	}
}

// TraceRing is a fixed-capacity ring buffer of lifecycle spans: the
// most recent Cap events are retained, older ones are overwritten.
// Record is a mutex-guarded slot write (no allocation — string
// contents are copied into pointer-free slots, so the ring adds
// nothing to GC scan work); a nil *TraceRing discards events, so
// components thread it unconditionally. Reads (Events, Find)
// materialize fresh TraceEvents and are the expensive side — they are
// operator-frequency, Record is commit-frequency.
type TraceRing struct {
	mu   sync.Mutex
	buf  []traceSlot
	next int
	full bool
}

// NewTraceRing creates a ring retaining the last capacity events
// (minimum 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{buf: make([]traceSlot, capacity)}
}

// Record appends one span, stamping At when zero.
func (t *TraceRing) Record(ev TraceEvent) {
	if t == nil {
		return
	}
	if ev.At.IsZero() {
		ev.At = time.Now()
	}
	t.mu.Lock()
	t.buf[t.next].set(ev)
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Events returns the retained spans in record order.
func (t *TraceRing) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		out := make([]TraceEvent, 0, t.next)
		for i := 0; i < t.next; i++ {
			out = append(out, t.buf[i].event())
		}
		return out
	}
	out := make([]TraceEvent, 0, len(t.buf))
	for i := t.next; i < len(t.buf); i++ {
		out = append(out, t.buf[i].event())
	}
	for i := 0; i < t.next; i++ {
		out = append(out, t.buf[i].event())
	}
	return out
}

// Find returns the retained spans matching key — by local transaction
// identifier or by cluster-wide trace ID — in record order.
func (t *TraceRing) Find(key string) []TraceEvent {
	var out []TraceEvent
	for _, ev := range t.Events() {
		if ev.Txn == key || (ev.Trace != "" && ev.Trace == key) {
			out = append(out, ev)
		}
	}
	return out
}

// StitchTraces merges span sets gathered from several sites into one
// causally ordered timeline: sorted by At, ties broken by site then
// span name so the order is deterministic. Duplicate events (the same
// site reporting through two paths) collapse.
func StitchTraces(sets ...[]TraceEvent) []TraceEvent {
	var all []TraceEvent
	seen := make(map[string]bool)
	for _, set := range sets {
		for _, ev := range set {
			k := fmt.Sprintf("%s|%s|%s|%d|%d|%d", ev.Txn, ev.Trace, ev.Span, ev.Site, ev.Shard, ev.At.UnixNano())
			if seen[k] {
				continue
			}
			seen[k] = true
			all = append(all, ev)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if !all[i].At.Equal(all[j].At) {
			return all[i].At.Before(all[j].At)
		}
		if all[i].Site != all[j].Site {
			return all[i].Site < all[j].Site
		}
		return all[i].Span < all[j].Span
	})
	return all
}
