package metrics

import (
	"sync"
	"time"
)

// Span names used by the transaction lifecycle trace. Components
// record whichever apply; a reordered transaction records OptDeliver
// more than once.
const (
	SpanSubmit     = "submit"
	SpanOptDeliver = "opt-deliver"
	SpanTODeliver  = "to-deliver"
	SpanCommit     = "commit"
	SpanAbort      = "abort"
)

// TraceEvent is one lifecycle span of one transaction at one site.
type TraceEvent struct {
	Txn   string    `json:"txn"`
	Span  string    `json:"span"`
	Site  int       `json:"site"`
	Shard int       `json:"shard"`
	At    time.Time `json:"at"`
	Note  string    `json:"note,omitempty"`
}

// TraceRing is a fixed-capacity ring buffer of lifecycle spans: the
// most recent Cap events are retained, older ones are overwritten.
// Record is a mutex-guarded slot write (no allocation); a nil
// *TraceRing discards events, so components thread it unconditionally.
type TraceRing struct {
	mu   sync.Mutex
	buf  []TraceEvent
	next int
	full bool
}

// NewTraceRing creates a ring retaining the last capacity events
// (minimum 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{buf: make([]TraceEvent, capacity)}
}

// Record appends one span, stamping At when zero.
func (t *TraceRing) Record(ev TraceEvent) {
	if t == nil {
		return
	}
	if ev.At.IsZero() {
		ev.At = time.Now()
	}
	t.mu.Lock()
	t.buf[t.next] = ev
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Events returns the retained spans in record order.
func (t *TraceRing) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]TraceEvent{}, t.buf[:t.next]...)
	}
	out := make([]TraceEvent, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	return append(out, t.buf[:t.next]...)
}

// Find returns the retained spans of one transaction, in record order.
func (t *TraceRing) Find(txn string) []TraceEvent {
	var out []TraceEvent
	for _, ev := range t.Events() {
		if ev.Txn == txn {
			out = append(out, ev)
		}
	}
	return out
}
