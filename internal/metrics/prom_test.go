package metrics

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestPromLabelEscaping checks backslash, quote and newline survive in
// valid escaped form.
func TestPromLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Scope("path", `C:\data`, "q", `say "hi"`, "nl", "a\nb").Counter("esc_total").Inc()
	var sb strings.Builder
	if err := WriteProm(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`path="C:\\data"`,
		`q="say \"hi\""`,
		`nl="a\nb"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "\n") != 2 { // TYPE header + one sample line
		t.Fatalf("raw newline leaked into exposition:\n%q", out)
	}
}

// TestPromDeterministicOrder renders the same registry repeatedly and
// a differently-populated registry with the same series set, expecting
// byte-identical output: snapshot order is a contract.
func TestPromDeterministicOrder(t *testing.T) {
	build := func(order []int) *Registry {
		r := NewRegistry()
		for _, i := range order {
			s := r.Scope("site", strconv.Itoa(i))
			s.Counter("a_total").Add(uint64(7))
			s.Gauge("b_gauge").Set(3)
			s.Histogram("c_seconds").Observe(time.Millisecond)
		}
		return r
	}
	var want string
	for trial, order := range [][]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}} {
		var sb strings.Builder
		if err := WriteProm(&sb, build(order)); err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			want = sb.String()
			continue
		}
		if sb.String() != want {
			t.Fatalf("registration order changed exposition:\n%s\nvs\n%s", want, sb.String())
		}
	}
	// One TYPE header per family, before any of its samples.
	lines := strings.Split(strings.TrimSpace(want), "\n")
	seenType := make(map[string]bool)
	for _, line := range lines {
		if name, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fam := strings.Fields(name)[0]
			if seenType[fam] {
				t.Fatalf("duplicate TYPE header for %s", fam)
			}
			seenType[fam] = true
		}
	}
}

// TestPromHistogramConsistency is the property test: for random sample
// sets, the rendered histogram must have monotonically non-decreasing
// le buckets, +Inf equal to _count, _count equal to the sample count,
// and _sum within quantization error of the true sum.
func TestPromHistogramConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		h := NewHistogram()
		n := 1 + rng.Intn(400)
		var trueSum float64
		for i := 0; i < n; i++ {
			// Log-uniform from 1 ns to ~316 s: spans the whole ladder and
			// beyond the 120 s top rung.
			d := time.Duration(math.Pow(10, rng.Float64()*11.5))
			h.Observe(d)
			trueSum += d.Seconds()
		}
		s := Sample{Name: "prop_seconds", Kind: KindHistogram, Hist: h}
		var sb strings.Builder
		if err := WritePromSamples(&sb, []Sample{s}); err != nil {
			t.Fatal(err)
		}
		var prev int64 = -1
		var inf, count int64 = -1, -1
		var sum float64
		for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
			switch {
			case strings.HasPrefix(line, "prop_seconds_bucket"):
				v, err := strconv.ParseInt(strings.Fields(line)[1], 10, 64)
				if err != nil {
					t.Fatal(err)
				}
				if v < prev {
					t.Fatalf("trial %d: bucket counts not monotonic at %q:\n%s", trial, line, sb.String())
				}
				prev = v
				if strings.Contains(line, `le="+Inf"`) {
					inf = v
				}
			case strings.HasPrefix(line, "prop_seconds_count"):
				count, _ = strconv.ParseInt(strings.Fields(line)[1], 10, 64)
			case strings.HasPrefix(line, "prop_seconds_sum"):
				sum, _ = strconv.ParseFloat(strings.Fields(line)[1], 64)
			}
		}
		if inf != int64(n) || count != int64(n) {
			t.Fatalf("trial %d: +Inf=%d count=%d want %d", trial, inf, count, n)
		}
		if diff := sum - trueSum; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: sum=%v true=%v", trial, sum, trueSum)
		}
	}
}

// TestPromOverflowCounter: samples beyond the 120s ladder top must be
// counted in otp_hist_overflow_total instead of clamping silently.
func TestPromOverflowCounter(t *testing.T) {
	r := NewRegistry()
	h := r.Scope("site", "3").Histogram("e13_rtt_seconds")
	h.Observe(50 * time.Millisecond)
	h.Observe(200 * time.Second) // beyond the top rung
	h.Observe(400 * time.Second)
	var sb strings.Builder
	if err := WriteProm(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# TYPE otp_hist_overflow_total counter\n") {
		t.Fatalf("missing overflow TYPE header:\n%s", out)
	}
	want := `otp_hist_overflow_total{hist="e13_rtt_seconds",site="3"} 2`
	if !strings.Contains(out, want) {
		t.Fatalf("missing %q:\n%s", want, out)
	}
	// The finite buckets still account for the in-range sample.
	if !strings.Contains(out, `e13_rtt_seconds_bucket{site="3",le="120"} 1`) {
		t.Fatalf("top finite bucket wrong:\n%s", out)
	}
	if !strings.Contains(out, `e13_rtt_seconds_bucket{site="3",le="+Inf"} 3`) {
		t.Fatalf("+Inf bucket wrong:\n%s", out)
	}
}
