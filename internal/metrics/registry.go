package metrics

import (
	"sort"
	"strings"
	"sync"
)

// Kind classifies a registered family member.
type Kind int

// Registered kinds.
const (
	// KindCounter is a monotonic count.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value.
	KindGauge
	// KindFunc is a pull gauge: its value is computed by a callback at
	// snapshot time, so existing Stats() accessors can be exposed with
	// zero hot-path cost.
	KindFunc
	// KindHistogram is a duration histogram (rendered in seconds).
	KindHistogram
	// KindSizeHistogram is a unitless histogram (batch sizes, bytes).
	KindSizeHistogram
)

// Label is one name=value dimension (site, shard, class, ...).
type Label struct {
	Key, Value string
}

// Sample is one registered series in a snapshot. Exactly one of
// Counter/Gauge/Func/Hist backs it, per Kind; Value carries the
// scalar kinds' reading at snapshot time.
type Sample struct {
	Name   string
	Labels []Label
	Kind   Kind
	Value  float64
	Hist   *Histogram
}

// entry is one registered series.
type entry struct {
	name    string
	labels  []Label
	kind    Kind
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// Registry holds named metric families. Registration (Counter,
// Histogram, ...) takes a lock and deduplicates by name+labels;
// the returned instruments are then updated lock-free. A nil
// *Registry is inert: scopes derived from it hand out unregistered
// instruments that work but are never exported.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// seriesKey canonicalizes name+labels (labels pre-sorted).
func seriesKey(name string, labels []Label) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('|')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// lookup returns the series, creating it via make on first sight.
func (r *Registry) lookup(name string, labels []Label, kind Kind, make func() *entry) *entry {
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok && e.kind == kind {
		return e
	}
	e := make()
	e.name, e.labels, e.kind = name, labels, kind
	r.entries[key] = e
	return e
}

// Snapshot returns every registered series, sorted by name then label
// string, with scalar kinds read at call time. Histogram samples share
// the live histogram (readers only call its query methods).
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	out := make([]Sample, 0, len(entries))
	for _, e := range entries {
		s := Sample{Name: e.name, Labels: e.labels, Kind: e.kind, Hist: e.hist}
		switch e.kind {
		case KindCounter:
			s.Value = float64(e.counter.Value())
		case KindGauge:
			s.Value = float64(e.gauge.Value())
		case KindFunc:
			s.Value = e.fn()
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return seriesKey("", out[i].Labels) < seriesKey("", out[j].Labels)
	})
	return out
}

// Scope derives a labelling scope rooted at this registry. kv is
// alternating key, value pairs ("site", "2", "shard", "0").
func (r *Registry) Scope(kv ...string) *Scope {
	if r == nil {
		return nil
	}
	return &Scope{r: r, base: pairs(kv)}
}

// pairs converts alternating key/value strings to labels (a trailing
// odd key is dropped).
func pairs(kv []string) []Label {
	out := make([]Label, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		out = append(out, Label{Key: kv[i], Value: kv[i+1]})
	}
	return out
}

// Scope is a registry plus base labels, threaded through component
// configs so each site/shard stack registers distinctly-labelled
// series under shared family names. A nil *Scope is fully usable:
// every constructor returns a live but unregistered instrument, so
// instrumented code never branches on whether metrics are enabled.
type Scope struct {
	r    *Registry
	base []Label
}

// With derives a sub-scope with extra base labels.
func (s *Scope) With(kv ...string) *Scope {
	if s == nil || s.r == nil {
		return nil
	}
	return &Scope{r: s.r, base: append(append([]Label{}, s.base...), pairs(kv)...)}
}

// merged combines base and extra labels (extra wins on duplicate keys
// by appearing later; seriesKey sorting keeps the set canonical).
func (s *Scope) merged(kv []string) []Label {
	return append(append([]Label{}, s.base...), pairs(kv)...)
}

// Counter registers (or finds) a counter series.
func (s *Scope) Counter(name string, kv ...string) *Counter {
	if s == nil || s.r == nil {
		return &Counter{}
	}
	e := s.r.lookup(name, s.merged(kv), KindCounter, func() *entry {
		return &entry{counter: &Counter{}}
	})
	return e.counter
}

// Gauge registers (or finds) a gauge series.
func (s *Scope) Gauge(name string, kv ...string) *Gauge {
	if s == nil || s.r == nil {
		return &Gauge{}
	}
	e := s.r.lookup(name, s.merged(kv), KindGauge, func() *entry {
		return &entry{gauge: &Gauge{}}
	})
	return e.gauge
}

// Func registers a pull gauge whose value is computed at snapshot
// time. fn must be safe to call from any goroutine.
func (s *Scope) Func(name string, fn func() float64, kv ...string) {
	if s == nil || s.r == nil {
		return
	}
	s.r.lookup(name, s.merged(kv), KindFunc, func() *entry {
		return &entry{fn: fn}
	})
}

// Histogram registers (or finds) a duration histogram series; the
// exporter renders it in seconds.
func (s *Scope) Histogram(name string, kv ...string) *Histogram {
	if s == nil || s.r == nil {
		return NewHistogram()
	}
	e := s.r.lookup(name, s.merged(kv), KindHistogram, func() *entry {
		return &entry{hist: NewHistogram()}
	})
	return e.hist
}

// SizeHistogram registers (or finds) a unitless histogram series
// (batch sizes, byte counts — fed via ObserveInt); the exporter
// renders raw values.
func (s *Scope) SizeHistogram(name string, kv ...string) *Histogram {
	if s == nil || s.r == nil {
		return NewHistogram()
	}
	e := s.r.lookup(name, s.merged(kv), KindSizeHistogram, func() *entry {
		return &entry{hist: NewHistogram()}
	})
	return e.hist
}
