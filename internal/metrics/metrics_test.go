package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 || h.Min() != 0 {
		t.Fatal("empty histogram not all zero")
	}
}

// closeTo asserts got is within rel relative error of want.
func closeTo(t *testing.T, name string, got, want time.Duration, rel float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Fatalf("%s = %v, want 0", name, got)
		}
		return
	}
	err := math.Abs(float64(got-want)) / float64(want)
	if err > rel {
		t.Fatalf("%s = %v, want %v within %.1f%% (off by %.2f%%)",
			name, got, want, rel*100, err*100)
	}
}

func TestHistogramStatistics(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	// Mean, min and max are exact; percentiles are bucket-approximate
	// within 1/subBuckets relative error.
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v", got)
	}
	closeTo(t, "p50", h.Percentile(50), 50*time.Millisecond, 1.0/subBuckets)
	closeTo(t, "p99", h.Percentile(99), 99*time.Millisecond, 1.0/subBuckets)
	// p100 is clamped to the exact max.
	if got := h.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	if h.Min() != time.Millisecond || h.Max() != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramPercentileBounds(t *testing.T) {
	h := NewHistogram()
	h.Observe(5 * time.Millisecond)
	if got := h.Percentile(0.0001); got != 5*time.Millisecond {
		t.Fatalf("tiny percentile = %v", got)
	}
}

// TestHistogramBucketBoundaries walks every bucket edge across the full
// range and checks round-trip consistency: a value must land in a
// bucket whose representative is within one bucket width.
func TestHistogramBucketBoundaries(t *testing.T) {
	values := []int64{0, 1, 63, 64, 65, 127, 128, 1023, 1024, 4095, 4096}
	// Powers of two and their neighbours across the whole range.
	for e := 6; e <= 40; e++ {
		p := int64(1) << uint(e)
		values = append(values, p-1, p, p+1, p+p/3)
	}
	for _, v := range values {
		idx := bucketIndex(v)
		if idx < 0 || idx >= histNumBucket {
			t.Fatalf("value %d: bucket %d out of range", v, idx)
		}
		rep := bucketValue(idx)
		var width int64 = 1
		if v >= smallExact {
			e := 63 - leadingZeros(v)
			width = int64(1) << (uint(e) - subBits)
		}
		if diff := rep - v; diff > width || diff < -width {
			t.Fatalf("value %d: representative %d off by %d (width %d)", v, rep, diff, width)
		}
		// Monotonicity across the boundary.
		if v > 0 && bucketIndex(v-1) > idx {
			t.Fatalf("value %d: bucket index not monotone", v)
		}
	}
}

func leadingZeros(v int64) int {
	n := 0
	for m := int64(1) << 62; m > 0 && v&(m|m<<1) == 0; m >>= 1 {
		n++
	}
	return n
}

// TestHistogramPercentileAccuracy checks the headline quantiles of a
// large spread-out distribution stay within the documented relative
// error.
func TestHistogramPercentileAccuracy(t *testing.T) {
	h := NewHistogram()
	const n = 100_000
	for i := 1; i <= n; i++ {
		// 1µs .. 100ms uniform.
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	rel := 1.0 / subBuckets
	closeTo(t, "p50", h.Percentile(50), n/2*time.Microsecond, rel)
	closeTo(t, "p95", h.Percentile(95), n*95/100*time.Microsecond, rel)
	closeTo(t, "p99", h.Percentile(99), n*99/100*time.Microsecond, rel)
	if got := h.Max(); got != n*time.Microsecond {
		t.Fatalf("max = %v", got)
	}
	if got := h.Min(); got != time.Microsecond {
		t.Fatalf("min = %v", got)
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5 * time.Second)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative sample not clamped: %+v", h.Summarize())
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestSummaryString(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	s := h.Summarize()
	if s.Count != 1 || s.Mean != time.Millisecond {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	c.Add(5)
	if c.Value() != 4005 {
		t.Fatalf("counter = %d", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestThroughput(t *testing.T) {
	tp := NewThroughput()
	for i := 0; i < 100; i++ {
		tp.Inc()
	}
	time.Sleep(10 * time.Millisecond)
	rate := tp.PerSecond()
	if rate <= 0 {
		t.Fatalf("rate = %f", rate)
	}
}
