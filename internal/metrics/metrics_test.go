package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 || h.Min() != 0 {
		t.Fatal("empty histogram not all zero")
	}
}

func TestHistogramStatistics(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v", got)
	}
	if got := h.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Percentile(99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := h.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	if h.Min() != time.Millisecond || h.Max() != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramPercentileBounds(t *testing.T) {
	h := NewHistogram()
	h.Observe(5 * time.Millisecond)
	if got := h.Percentile(0.0001); got != 5*time.Millisecond {
		t.Fatalf("tiny percentile = %v", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestSummaryString(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	s := h.Summarize()
	if s.Count != 1 || s.Mean != time.Millisecond {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	c.Add(5)
	if c.Value() != 4005 {
		t.Fatalf("counter = %d", c.Value())
	}
}

func TestThroughput(t *testing.T) {
	tp := NewThroughput()
	for i := 0; i < 100; i++ {
		tp.Inc()
	}
	time.Sleep(10 * time.Millisecond)
	rate := tp.PerSecond()
	if rate <= 0 {
		t.Fatalf("rate = %f", rate)
	}
}
