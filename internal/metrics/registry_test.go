package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryDedup(t *testing.T) {
	r := NewRegistry()
	s := r.Scope("site", "0")
	a := s.Counter("x_total")
	b := s.Counter("x_total")
	if a != b {
		t.Fatal("same series resolved to different counters")
	}
	other := s.Counter("x_total", "shard", "1")
	if other == a {
		t.Fatal("distinct labels resolved to one counter")
	}
	// Label order must not matter.
	h1 := s.Histogram("h_seconds", "a", "1", "b", "2")
	h2 := s.Histogram("h_seconds", "b", "2", "a", "1")
	if h1 != h2 {
		t.Fatal("label order changed series identity")
	}
}

func TestNilScopeUsable(t *testing.T) {
	var s *Scope
	s.Counter("x_total").Inc()
	s.Gauge("g").Set(1)
	s.Histogram("h_seconds").Observe(time.Millisecond)
	s.SizeHistogram("b").ObserveInt(10)
	s.Func("f", func() float64 { return 1 })
	if s.With("k", "v") != nil {
		t.Fatal("nil scope With should stay nil")
	}
	var r *Registry
	if r.Scope("a", "b") != nil {
		t.Fatal("nil registry scope should be nil")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	s := r.Scope("site", "2")
	s.Counter("otp_commits_total").Add(42)
	s.Gauge("otp_pending").Set(7)
	s.Func("otp_ratio", func() float64 { return 0.5 })
	s.Histogram("otp_opt_def_latency").Observe(2 * time.Millisecond)
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d series, want 4", len(snap))
	}
	byName := map[string]Sample{}
	for _, smp := range snap {
		byName[smp.Name] = smp
	}
	if got := byName["otp_commits_total"]; got.Kind != KindCounter || got.Value != 42 {
		t.Fatalf("counter sample = %+v", got)
	}
	if got := byName["otp_pending"]; got.Kind != KindGauge || got.Value != 7 {
		t.Fatalf("gauge sample = %+v", got)
	}
	if got := byName["otp_ratio"]; got.Kind != KindFunc || got.Value != 0.5 {
		t.Fatalf("func sample = %+v", got)
	}
	hs := byName["otp_opt_def_latency"]
	if hs.Kind != KindHistogram || hs.Hist.Count() != 1 {
		t.Fatalf("hist sample = %+v", hs)
	}
	if len(hs.Labels) != 1 || hs.Labels[0] != (Label{"site", "2"}) {
		t.Fatalf("labels = %+v", hs.Labels)
	}
}

// TestRegistryObserveSnapshotRace hammers registration, hot-path
// updates and snapshots concurrently; run under -race.
func TestRegistryObserveSnapshotRace(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := r.Scope("site", string(rune('0'+w)))
			c := s.Counter("race_total")
			h := s.Histogram("race_seconds")
			g := s.Gauge("race_gauge")
			for i := 0; i < 5000; i++ {
				c.Inc()
				h.Observe(time.Duration(i))
				g.Set(int64(i))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, smp := range r.Snapshot() {
				if smp.Hist != nil {
					_ = smp.Hist.Summarize()
				}
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		var sb strings.Builder
		for i := 0; i < 50; i++ {
			sb.Reset()
			_ = WriteProm(&sb, r)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	var total uint64
	for _, smp := range r.Snapshot() {
		if smp.Name == "race_total" {
			total += uint64(smp.Value)
		}
	}
	if total != 4*5000 {
		t.Fatalf("race_total sum = %d, want %d", total, 4*5000)
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	s := r.Scope("site", "0")
	s.Counter("otp_reorder_total").Add(3)
	s.Gauge("otp_pending", "shard", "1").Set(9)
	s.Histogram("wal_fsync_seconds").Observe(1500 * time.Microsecond)
	s.SizeHistogram("transport_coalesce_batch").ObserveInt(16)
	var sb strings.Builder
	if err := WriteProm(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE otp_reorder_total counter\n",
		`otp_reorder_total{site="0"} 3` + "\n",
		"# TYPE otp_pending gauge\n",
		`otp_pending{shard="1",site="0"} 9` + "\n",
		"# TYPE wal_fsync_seconds histogram\n",
		`wal_fsync_seconds_bucket{site="0",le="0.001"} 0` + "\n",
		`wal_fsync_seconds_bucket{site="0",le="0.0025"} 1` + "\n",
		`wal_fsync_seconds_bucket{site="0",le="+Inf"} 1` + "\n",
		`wal_fsync_seconds_sum{site="0"} 0.0015`,
		`wal_fsync_seconds_count{site="0"} 1` + "\n",
		"# TYPE transport_coalesce_batch summary\n",
		`transport_coalesce_batch_sum{site="0"} 16` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestTraceRing(t *testing.T) {
	tr := NewTraceRing(4)
	for i := 0; i < 6; i++ {
		tr.Record(TraceEvent{Txn: "t" + string(rune('0'+i)), Span: SpanSubmit, Site: i})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	if evs[0].Txn != "t2" || evs[3].Txn != "t5" {
		t.Fatalf("ring order wrong: %+v", evs)
	}
	tr.Record(TraceEvent{Txn: "t5", Span: SpanCommit})
	spans := tr.Find("t5")
	if len(spans) != 2 || spans[0].Span != SpanSubmit || spans[1].Span != SpanCommit {
		t.Fatalf("find = %+v", spans)
	}
	if spans[0].At.IsZero() {
		t.Fatal("At not stamped")
	}
	// JSON round-trip (the TRACE verb dumps these).
	if _, err := json.Marshal(spans); err != nil {
		t.Fatal(err)
	}
	// Nil ring is inert.
	var nilRing *TraceRing
	nilRing.Record(TraceEvent{})
	if nilRing.Events() != nil || nilRing.Find("x") != nil {
		t.Fatal("nil ring should return nothing")
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	tr := NewTraceRing(128)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Record(TraceEvent{Txn: "x", Span: SpanOptDeliver})
				_ = tr.Events()
			}
		}()
	}
	wg.Wait()
	if len(tr.Events()) != 128 {
		t.Fatalf("ring size = %d", len(tr.Events()))
	}
}
