// Package metrics provides the small measurement toolkit used by the
// benchmark harness: latency histograms with percentile queries, counters
// and throughput windows. Everything is safe for concurrent use.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram records durations and answers mean/percentile queries. It
// stores raw samples (the experiments record at most a few hundred
// thousand), trading memory for exact percentiles.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sum     time.Duration
	max     time.Duration
	min     time.Duration
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = append(h.samples, d)
	h.sum += d
	if d > h.max {
		h.max = d
	}
	if d < h.min {
		h.min = d
	}
}

// Count reports the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean reports the average duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / time.Duration(len(h.samples))
}

// Min reports the smallest sample (0 when empty).
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest sample.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Percentile reports the p-th percentile (0 < p <= 100) by
// nearest-rank on the sorted samples.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	sorted := make([]time.Duration, n)
	copy(sorted, h.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// Summary is a formatted snapshot of a histogram.
type Summary struct {
	Count          int
	Mean, P50, P95 time.Duration
	P99, Min, Max  time.Duration
}

// Summarize computes all headline statistics in one pass.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P95:   h.Percentile(95),
		P99:   h.Percentile(99),
		Min:   h.Min(),
		Max:   h.Max(),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.Max.Round(time.Microsecond))
}

// Counter is a concurrent event counter.
type Counter struct {
	mu sync.Mutex
	n  uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) {
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

// Value reads the counter.
func (c *Counter) Value() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Throughput measures events per second over a wall-clock window.
type Throughput struct {
	mu    sync.Mutex
	start time.Time
	n     uint64
}

// NewThroughput starts a window at now.
func NewThroughput() *Throughput {
	return &Throughput{start: time.Now()}
}

// Inc records one event.
func (t *Throughput) Inc() {
	t.mu.Lock()
	t.n++
	t.mu.Unlock()
}

// PerSecond reports the rate since the window started.
func (t *Throughput) PerSecond() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	elapsed := time.Since(t.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(t.n) / elapsed
}
