// Package metrics is the measurement layer shared by the runtime and
// the benchmark harness: lock-free counters and gauges, fixed-bucket
// log-scale latency histograms, a labelled registry with snapshot
// iteration and Prometheus text exposition (prom.go), and a ring-
// buffered transaction trace log (trace.go). Everything is safe for
// concurrent use; the hot-path operations (Counter.Inc, Gauge.Set,
// Histogram.Observe) are single atomic updates with no allocation.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: durations below smallExact nanoseconds get
// one exact bucket each; above, buckets are log-scale with subBuckets
// linear sub-divisions per power of two, bounding the relative
// quantization error to 1/subBuckets (≈3%) while keeping the whole
// histogram a fixed ~15 KiB regardless of how many samples it absorbs.
const (
	smallExact    = 64 // exact buckets for 0..63 ns
	subBits       = 5
	subBuckets    = 1 << subBits // 32 sub-buckets per octave
	maxExponent   = 62           // top octave: values up to ~2^63 ns
	histNumBucket = smallExact + (maxExponent-6+1)*subBuckets
)

// Histogram records durations into fixed log-scale buckets and answers
// mean/percentile queries. Observe is a handful of atomic adds — no
// locks, no allocation — so it is safe on commit-path hot code; memory
// is bounded (~15 KiB) no matter how long the run. Percentiles are
// approximate within ~1.6% relative error (min, max and mean are
// exact).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [histNumBucket]atomic.Int64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketIndex maps a non-negative nanosecond count to its bucket.
func bucketIndex(n int64) int {
	if n < smallExact {
		return int(n)
	}
	e := bits.Len64(uint64(n)) - 1 // >= 6
	sub := (n >> (uint(e) - subBits)) & (subBuckets - 1)
	return smallExact + (e-6)*subBuckets + int(sub)
}

// bucketValue is the representative (midpoint) duration of a bucket.
func bucketValue(idx int) int64 {
	if idx < smallExact {
		return int64(idx)
	}
	rel := idx - smallExact
	e := rel/subBuckets + 6
	sub := int64(rel % subBuckets)
	lo := (subBuckets + sub) << (uint(e) - subBits)
	width := int64(1) << (uint(e) - subBits)
	return lo + width/2
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	n := int64(d)
	if n < 0 {
		n = 0
	}
	h.buckets[bucketIndex(n)].Add(1)
	h.count.Add(1)
	h.sum.Add(n)
	for {
		cur := h.min.Load()
		if n >= cur || h.min.CompareAndSwap(cur, n) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if n <= cur || h.max.CompareAndSwap(cur, n) {
			break
		}
	}
}

// ObserveInt records a unitless sample (a batch size, a byte count) in
// the same bucket layout; readers interpret the "duration" as a raw
// integer. Used by size-flavoured histograms (Scope.SizeHistogram).
func (h *Histogram) ObserveInt(n int64) { h.Observe(time.Duration(n)) }

// Count reports the number of samples.
func (h *Histogram) Count() int { return int(h.count.Load()) }

// Sum reports the total of all samples.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean reports the average duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Min reports the smallest sample (0 when empty).
func (h *Histogram) Min() time.Duration {
	n := h.min.Load()
	if n == math.MaxInt64 {
		return 0
	}
	return time.Duration(n)
}

// Max reports the largest sample.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Percentile reports the p-th percentile (0 < p <= 100) by
// nearest-rank over the buckets, clamped to the exact observed
// [Min, Max] envelope.
func (h *Histogram) Percentile(p float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank >= total {
		return h.Max()
	}
	var seen int64
	v := bucketValue(histNumBucket - 1)
	for i := 0; i < histNumBucket; i++ {
		if c := h.buckets[i].Load(); c > 0 {
			seen += c
			if seen >= rank {
				v = bucketValue(i)
				break
			}
		}
	}
	if lo := h.Min(); v < int64(lo) {
		v = int64(lo)
	}
	if hi := h.Max(); v > int64(hi) {
		v = int64(hi)
	}
	return time.Duration(v)
}

// CumulativeLE reports how many samples fell in buckets whose
// representative value is at most n nanoseconds — the cumulative count
// behind a Prometheus le bucket. Monotonic in n because bucketValue is
// monotonic in the bucket index.
func (h *Histogram) CumulativeLE(n int64) int64 {
	var total int64
	for i := 0; i < histNumBucket; i++ {
		if bucketValue(i) > n {
			break
		}
		total += h.buckets[i].Load()
	}
	return total
}

// Export snapshots the histogram into its wire form: exact count, sum,
// min and max plus the sparse list of occupied buckets. The snapshot
// is not atomic across fields (concurrent Observe calls may land
// between loads); federation tolerates the skew.
func (h *Histogram) Export() HistExport {
	ex := HistExport{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if mn := h.min.Load(); mn != math.MaxInt64 {
		ex.Min = mn
	}
	for i := 0; i < histNumBucket; i++ {
		if c := h.buckets[i].Load(); c > 0 {
			ex.Buckets = append(ex.Buckets, BucketCount{Idx: i, N: c})
		}
	}
	return ex
}

// Merge folds an exported histogram into this one: bucket-wise adds
// plus count/sum accumulation and min/max widening. Used by the
// federation rollup; idx values outside the layout are dropped.
func (h *Histogram) Merge(ex HistExport) {
	if ex.Count == 0 {
		return
	}
	h.count.Add(ex.Count)
	h.sum.Add(ex.Sum)
	for {
		cur := h.min.Load()
		if ex.Min >= cur || h.min.CompareAndSwap(cur, ex.Min) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ex.Max <= cur || h.max.CompareAndSwap(cur, ex.Max) {
			break
		}
	}
	for _, b := range ex.Buckets {
		if b.Idx >= 0 && b.Idx < histNumBucket {
			h.buckets[b.Idx].Add(b.N)
		}
	}
}

// Summary is a formatted snapshot of a histogram.
type Summary struct {
	Count          int
	Mean, P50, P95 time.Duration
	P99, Min, Max  time.Duration
}

// Summarize computes all headline statistics in one pass.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P95:   h.Percentile(95),
		P99:   h.Percentile(99),
		Min:   h.Min(),
		Max:   h.Max(),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.Max.Round(time.Microsecond))
}

// Counter is a lock-free monotonic event counter.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Value reads the counter.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is a lock-free instantaneous value.
type Gauge struct {
	n atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) { g.n.Store(v) }

// Add adjusts the current value by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.n.Add(delta) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.n.Load() }

// Throughput measures events per second over a wall-clock window.
type Throughput struct {
	mu    sync.Mutex
	start time.Time
	n     uint64
}

// NewThroughput starts a window at now.
func NewThroughput() *Throughput {
	return &Throughput{start: time.Now()}
}

// Inc records one event.
func (t *Throughput) Inc() {
	t.mu.Lock()
	t.n++
	t.mu.Unlock()
}

// PerSecond reports the rate since the window started.
func (t *Throughput) PerSecond() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	elapsed := time.Since(t.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(t.n) / elapsed
}
