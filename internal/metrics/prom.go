package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// latencyLadder is the le bucket ladder (seconds) used when rendering
// duration histograms in the Prometheus text format. It spans 100µs to
// 120s so WAN round-trips (E13 region RTTs run into the hundreds of
// milliseconds, convergence waits into tens of seconds) land in finite
// buckets instead of clamping silently; anything beyond the top rung
// is counted by the otp_hist_overflow_total companion family.
var latencyLadder = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120,
}

// overflowFamily counts samples above the top finite le rung, one
// series per histogram family (label hist=<family name>).
const overflowFamily = "otp_hist_overflow_total"

// WriteProm renders the registry snapshot in the Prometheus text
// exposition format (version 0.0.4). Counters and gauges render as
// their kind; Func collectors render as gauges; duration histograms
// render as native histograms (cumulative le buckets up to 120s, +Inf,
// _sum and _count, all in seconds); size histograms render as
// summaries over raw values. Families are emitted in sorted order with
// one # TYPE header each, except otp_hist_overflow_total — the
// per-histogram count of samples above the top finite bucket — which
// is derived during the walk and appended last.
func WriteProm(w io.Writer, r *Registry) error {
	return WritePromSamples(w, r.Snapshot())
}

// WritePromSamples renders an explicit sample list (pre-sorted by name
// then label set, as Registry.Snapshot and Federate produce) in the
// same format as WriteProm.
func WritePromSamples(w io.Writer, snap []Sample) error {
	lastFamily := ""
	var overflow []Sample
	for _, s := range snap {
		if s.Name != lastFamily {
			lastFamily = s.Name
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, promType(s.Kind)); err != nil {
				return err
			}
		}
		if err := writeSample(w, s); err != nil {
			return err
		}
		if s.Kind == KindHistogram {
			top := int64(latencyLadder[len(latencyLadder)-1] * float64(time.Second))
			if over := int64(s.Hist.Count()) - s.Hist.CumulativeLE(top); over > 0 {
				labels := append(append([]Label{}, s.Labels...), Label{Key: "hist", Value: s.Name})
				sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
				overflow = append(overflow, Sample{
					Name: overflowFamily, Labels: labels,
					Kind: KindCounter, Value: float64(over),
				})
			}
		}
	}
	if len(overflow) > 0 {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", overflowFamily); err != nil {
			return err
		}
		for _, s := range overflow {
			if err := writeSample(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func promType(k Kind) string {
	switch k {
	case KindCounter:
		return "counter"
	case KindHistogram:
		return "histogram"
	case KindSizeHistogram:
		return "summary"
	default:
		return "gauge"
	}
}

func writeSample(w io.Writer, s Sample) error {
	switch s.Kind {
	case KindHistogram:
		count := int64(s.Hist.Count())
		for _, le := range latencyLadder {
			labels := promLabels(s.Labels, "le", promFloat(le))
			n := s.Hist.CumulativeLE(int64(le * float64(time.Second)))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, labels, n); err != nil {
				return err
			}
		}
		labels := promLabels(s.Labels, "le", "+Inf")
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, labels, count); err != nil {
			return err
		}
		labels = promLabels(s.Labels)
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, labels, promFloat(s.Hist.Sum().Seconds())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, labels, count)
		return err
	case KindSizeHistogram:
		sum := s.Hist.Summarize()
		for _, q := range []struct {
			q string
			v time.Duration
		}{{"0.5", sum.P50}, {"0.95", sum.P95}, {"0.99", sum.P99}} {
			labels := promLabels(s.Labels, "quantile", q.q)
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, labels, promFloat(float64(q.v))); err != nil {
				return err
			}
		}
		labels := promLabels(s.Labels)
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, labels, promFloat(float64(s.Hist.Sum()))); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, labels, sum.Count)
		return err
	default:
		_, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, promLabels(s.Labels), promFloat(s.Value))
		return err
	}
}

// promLabels renders {k="v",...} (empty string when no labels). extra
// is alternating key/value pairs appended after the series labels.
func promLabels(labels []Label, extra ...string) string {
	all := append(append([]Label{}, labels...), pairs(extra)...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// promFloat renders a float the way Prometheus clients do: integers
// without an exponent, everything else in shortest round-trip form.
func promFloat(f float64) string {
	if f == float64(int64(f)) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
