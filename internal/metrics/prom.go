package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// WriteProm renders the registry snapshot in the Prometheus text
// exposition format (version 0.0.4). Counters and gauges render as
// their kind; Func collectors render as gauges; histograms render as
// summaries (quantile series plus _sum and _count) — duration
// histograms in seconds, size histograms as raw values. Families are
// emitted in sorted order with one # TYPE header each.
func WriteProm(w io.Writer, r *Registry) error {
	snap := r.Snapshot()
	lastFamily := ""
	for _, s := range snap {
		if s.Name != lastFamily {
			lastFamily = s.Name
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, promType(s.Kind)); err != nil {
				return err
			}
		}
		if err := writeSample(w, s); err != nil {
			return err
		}
	}
	return nil
}

func promType(k Kind) string {
	switch k {
	case KindCounter:
		return "counter"
	case KindHistogram, KindSizeHistogram:
		return "summary"
	default:
		return "gauge"
	}
}

func writeSample(w io.Writer, s Sample) error {
	switch s.Kind {
	case KindHistogram, KindSizeHistogram:
		conv := func(d time.Duration) float64 {
			if s.Kind == KindHistogram {
				return d.Seconds()
			}
			return float64(d)
		}
		sum := s.Hist.Summarize()
		for _, q := range []struct {
			q string
			v time.Duration
		}{{"0.5", sum.P50}, {"0.95", sum.P95}, {"0.99", sum.P99}} {
			labels := promLabels(s.Labels, "quantile", q.q)
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, labels, promFloat(conv(q.v))); err != nil {
				return err
			}
		}
		labels := promLabels(s.Labels)
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, labels, promFloat(conv(s.Hist.Sum()))); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, labels, sum.Count)
		return err
	default:
		_, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, promLabels(s.Labels), promFloat(s.Value))
		return err
	}
}

// promLabels renders {k="v",...} (empty string when no labels). extra
// is alternating key/value pairs appended after the series labels.
func promLabels(labels []Label, extra ...string) string {
	all := append(append([]Label{}, labels...), pairs(extra)...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// promFloat renders a float the way Prometheus clients do: integers
// without an exponent, everything else in shortest round-trip form.
func promFloat(f float64) string {
	if f == float64(int64(f)) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
