// Package wal is the write-ahead commit log of the replicated database:
// an append-only, segmented, CRC-framed record of every definitive-order
// commit at one site. Together with periodic checkpoints
// (internal/recovery) it provides the "traditional recovery techniques"
// the paper assumes each site can use to survive crashes (Section 3.2).
//
// # Log contents
//
// One record per committed update transaction: its definitive (TO) index
// and its physical writes (partition-qualified key/value pairs). Logging
// physical writes rather than procedure invocations makes replay
// independent of the stored-procedure registry and idempotent — a record
// whose index a partition's committed floor already covers is skipped.
//
// # Format
//
// A log is a directory of segment files named wal-<firstIndex>.seg.
// Every segment starts with an 8-byte header ("OWAL" magic, version,
// reserved) followed by length-prefixed records:
//
//	[4B big-endian payload length][4B CRC-32C of payload][payload]
//
// The payload encodes the TO index, the write count, and each write as
// length-prefixed partition/key/value fields. A torn or corrupted record
// can only be the result of a crash mid-append, so Open truncates the
// tail at the first invalid record of the final segment (and refuses
// only on corruption in the middle of the log, which indicates media
// damage rather than a crash).
//
// # Durability policies
//
// Append durability is configurable: SyncEveryCommit fsyncs before
// Append returns (a commit acknowledged to a client is on disk),
// SyncGrouped batches fsyncs on a short timer (bounded loss window,
// near-in-memory throughput), SyncNever leaves flushing to the OS
// (survives process crashes, not machine crashes). Appends are
// serialized, so the durable prefix of the log is always a prefix of the
// append order — recovery never observes a record without its
// predecessors in append order.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"otpdb/internal/metrics"
	"otpdb/internal/storage"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

// Sync policies.
const (
	// SyncEveryCommit fsyncs before Append returns: an acknowledged
	// commit is durable against machine crashes.
	SyncEveryCommit SyncPolicy = iota + 1
	// SyncGrouped fsyncs on a background timer (GroupInterval): commits
	// acknowledged within the last interval may be lost on a machine
	// crash, never on a process crash.
	SyncGrouped
	// SyncNever leaves flushing to the operating system.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncEveryCommit:
		return "commit"
	case SyncGrouped:
		return "group"
	case SyncNever:
		return "off"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the -fsync flag values commit|group|off.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "commit":
		return SyncEveryCommit, nil
	case "group":
		return SyncGrouped, nil
	case "off":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want commit|group|off)", s)
	}
}

// Record is one logged commit: the transaction's definitive index and
// its physical writes.
type Record struct {
	// TOIndex is the definitive total-order index of the commit.
	TOIndex int64
	// Writes are the committed writes, grouped by partition.
	Writes []storage.ClassKeyValue
}

// Options configures a Log.
type Options struct {
	// SegmentBytes caps a segment file before rotation (default 4 MiB).
	SegmentBytes int64
	// Sync is the fsync policy (default SyncGrouped).
	Sync SyncPolicy
	// GroupInterval is the SyncGrouped flush period (default 2 ms).
	GroupInterval time.Duration
	// Metrics, when non-nil, registers the log's runtime telemetry
	// (fsync latency, appends, segment rotations) under the scope's
	// labels.
	Metrics *metrics.Scope
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.Sync == 0 {
		o.Sync = SyncGrouped
	}
	if o.GroupInterval <= 0 {
		o.GroupInterval = 2 * time.Millisecond
	}
	return o
}

const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	headerSize = 8
	frameSize  = 8 // length + CRC
	// maxRecordBytes bounds a single record frame; larger lengths in a
	// segment indicate corruption, not a huge record.
	maxRecordBytes = 64 << 20
)

var segMagic = [8]byte{'O', 'W', 'A', 'L', 1, 0, 0, 0}

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is returned when a non-tail segment fails validation —
// damage that truncation cannot explain away.
var ErrCorrupt = errors.New("wal: corrupt record before log tail")

// Log is an open write-ahead log. Safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	// Telemetry (inert unregistered instruments without Options.Metrics).
	fsyncHist *metrics.Histogram
	appends   *metrics.Counter
	rotations *metrics.Counter

	mu        sync.Mutex
	f         *os.File // active segment
	size      int64    // bytes written to the active segment
	segName   int64    // numeric name of the active segment
	lastIndex int64    // largest TOIndex appended or recovered
	dirty     bool     // written since last fsync
	closed    bool

	stopGroup chan struct{}
	groupDone chan struct{}
}

// Open opens (or creates) the log in dir, validating every segment and
// truncating a torn or corrupted tail of the final segment.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts}
	l.fsyncHist = opts.Metrics.Histogram("wal_fsync_seconds", "policy", opts.Sync.String())
	l.appends = opts.Metrics.Counter("wal_append_total")
	l.rotations = opts.Metrics.Counter("wal_segment_rotate_total")
	segs, err := l.segments()
	if err != nil {
		return nil, err
	}
	for i, seg := range segs {
		last, validLen, verr := validateSegment(seg.path)
		if verr != nil {
			return nil, verr
		}
		if last > l.lastIndex {
			l.lastIndex = last
		}
		if fi, serr := os.Stat(seg.path); serr == nil && fi.Size() != validLen {
			if i != len(segs)-1 {
				return nil, fmt.Errorf("%w: %s", ErrCorrupt, seg.path)
			}
			// Torn or corrupted tail from a crash mid-append: truncate to
			// the last valid record and carry on.
			if terr := os.Truncate(seg.path, validLen); terr != nil {
				return nil, fmt.Errorf("wal: truncate torn tail: %w", terr)
			}
		}
	}
	// Append to the last segment, or start the first one.
	if len(segs) > 0 {
		tail := segs[len(segs)-1]
		f, err := os.OpenFile(tail.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		fi, err := f.Stat()
		if err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f, l.size, l.segName = f, fi.Size(), tail.first
		if l.size < headerSize {
			// A crash mid-creation left the tail without its magic header
			// (truncated to zero above). Write the header now — records
			// appended to a headerless file would be discarded wholesale
			// by the next Open's validation.
			if _, err := f.Write(segMagic[:]); err != nil {
				_ = f.Close()
				return nil, fmt.Errorf("wal: %w", err)
			}
			l.size = headerSize
			l.dirty = true
		}
	} else if err := l.rotateLocked(); err != nil {
		return nil, err
	}
	if opts.Sync == SyncGrouped {
		l.stopGroup = make(chan struct{})
		l.groupDone = make(chan struct{})
		go l.groupFlusher()
	}
	return l, nil
}

// segment is one on-disk segment file.
type segment struct {
	first int64 // first index the segment was opened for (from its name)
	path  string
}

// segments lists the log's segment files in index order.
func (l *Log) segments() ([]segment, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		first, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 16, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segment{first: first, path: filepath.Join(l.dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// rotateLocked closes the active segment and opens a fresh one. The
// numeric name is strictly greater than every existing segment's —
// derived from the largest appended index but floored at the previous
// name + 1, because non-conflicting commits may append slightly out of
// TOIndex order and name-sorted order must equal append order (replay,
// tail-truncation and TruncateBelow all rely on it). Callers hold l.mu
// (or own the log exclusively during Open).
func (l *Log) rotateLocked() error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: rotate sync: %w", err)
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: rotate close: %w", err)
		}
		l.f = nil
	}
	name := l.lastIndex + 1
	if name <= l.segName {
		name = l.segName + 1
	}
	path := filepath.Join(l.dir, fmt.Sprintf("%s%016x%s", segPrefix, name, segSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(segMagic[:]); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		_ = f.Close()
		return err
	}
	l.f, l.size, l.segName = f, headerSize, name
	l.dirty = true
	l.rotations.Inc()
	return nil
}

// timedSync fsyncs the active segment, feeding the latency histogram.
func (l *Log) timedSync() error {
	t0 := time.Now()
	err := l.f.Sync()
	l.fsyncHist.Observe(time.Since(t0))
	return err
}

// Append writes one record and applies the sync policy. Appends are
// serialized; with SyncEveryCommit the record is durable on return.
func (l *Log) Append(rec Record) error {
	buf := encodeRecord(rec)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log closed")
	}
	if l.size+int64(len(buf)) > l.opts.SegmentBytes && l.size > headerSize {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(buf))
	l.dirty = true
	l.appends.Inc()
	if rec.TOIndex > l.lastIndex {
		l.lastIndex = rec.TOIndex
	}
	if l.opts.Sync == SyncEveryCommit {
		if err := l.timedSync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		l.dirty = false
	}
	return nil
}

// Sync flushes the active segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.closed || l.f == nil || !l.dirty {
		return nil
	}
	if err := l.timedSync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.dirty = false
	return nil
}

// groupFlusher is the SyncGrouped background fsync loop.
func (l *Log) groupFlusher() {
	defer close(l.groupDone)
	t := time.NewTicker(l.opts.GroupInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = l.Sync()
		case <-l.stopGroup:
			return
		}
	}
}

// LastIndex reports the largest TOIndex appended or recovered.
func (l *Log) LastIndex() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastIndex
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	if l.stopGroup != nil {
		close(l.stopGroup)
	}
	err := l.syncLocked()
	l.closed = true
	if l.f != nil {
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	l.mu.Unlock()
	if l.groupDone != nil {
		<-l.groupDone
	}
	return err
}

// Replay streams every record with TOIndex > from, in append order, to
// fn. Replay may run on an open log (it reads the segment files
// directly); callers recovering a store rely on InstallCommit's
// idempotence rather than on exclusivity.
func (l *Log) Replay(from int64, fn func(Record) error) error {
	segs, err := l.segments()
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if err := replaySegment(seg.path, from, fn); err != nil {
			return err
		}
	}
	return nil
}

// TruncateBelow deletes segments every record of which has TOIndex <=
// index — the log-bounding step after a checkpoint at index. The active
// segment is never deleted. Because non-conflicting commits may append
// slightly out of TOIndex order, each candidate is scanned for its
// actual maximum index rather than trusting the next segment's name.
//
// The scans run outside l.mu so a large accumulated log does not stall
// every concurrent Append for the duration of the re-read: closed
// segments are immutable (only the active one, which is excluded, is
// written), rotations only ever create strictly newer names, and a
// racing TruncateBelow at worst removes a candidate first (tolerated).
func (l *Log) TruncateBelow(index int64) error {
	l.mu.Lock()
	segs, err := l.segments()
	active := l.segName
	l.mu.Unlock()
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if seg.first >= active {
			break // never the active segment (or anything newer)
		}
		maxIdx, _, err := validateSegment(seg.path)
		if err != nil || maxIdx > index {
			break
		}
		if err := os.Remove(seg.path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("wal: truncate below %d: %w", index, err)
		}
	}
	return syncDir(l.dir)
}

// encodeRecord frames one record: length, CRC-32C, payload.
func encodeRecord(rec Record) []byte {
	n := 8 + binary.MaxVarintLen64
	for _, w := range rec.Writes {
		n += 3*binary.MaxVarintLen64 + len(w.Partition) + len(w.Key) + len(w.Value) + 1
	}
	buf := make([]byte, frameSize, frameSize+n)
	buf = binary.BigEndian.AppendUint64(buf, uint64(rec.TOIndex))
	buf = binary.AppendUvarint(buf, uint64(len(rec.Writes)))
	for _, w := range rec.Writes {
		buf = binary.AppendUvarint(buf, uint64(len(w.Partition)))
		buf = append(buf, w.Partition...)
		buf = binary.AppendUvarint(buf, uint64(len(w.Key)))
		buf = append(buf, w.Key...)
		if w.Value == nil {
			buf = append(buf, 0)
		} else {
			buf = append(buf, 1)
			buf = binary.AppendUvarint(buf, uint64(len(w.Value)))
			buf = append(buf, w.Value...)
		}
	}
	payload := buf[frameSize:]
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	return buf
}

// decodeRecord parses a framed payload (CRC already verified).
func decodeRecord(payload []byte) (Record, error) {
	bad := func() (Record, error) { return Record{}, errors.New("wal: malformed record payload") }
	if len(payload) < 8 {
		return bad()
	}
	rec := Record{TOIndex: int64(binary.BigEndian.Uint64(payload))}
	rest := payload[8:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return bad()
	}
	rest = rest[n:]
	take := func(length uint64) ([]byte, bool) {
		if uint64(len(rest)) < length {
			return nil, false
		}
		out := rest[:length]
		rest = rest[length:]
		return out, true
	}
	takeVar := func() (uint64, bool) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, false
		}
		rest = rest[n:]
		return v, true
	}
	for i := uint64(0); i < count; i++ {
		var w storage.ClassKeyValue
		pl, ok := takeVar()
		if !ok {
			return bad()
		}
		pb, ok := take(pl)
		if !ok {
			return bad()
		}
		w.Partition = storage.Partition(pb)
		kl, ok := takeVar()
		if !ok {
			return bad()
		}
		kb, ok := take(kl)
		if !ok {
			return bad()
		}
		w.Key = storage.Key(kb)
		flag, ok := take(1)
		if !ok {
			return bad()
		}
		if flag[0] != 0 {
			vl, ok := takeVar()
			if !ok {
				return bad()
			}
			vb, ok := take(vl)
			if !ok {
				return bad()
			}
			// make (not append) so a zero-length value stays non-nil —
			// the store distinguishes empty values from absent ones.
			w.Value = make(storage.Value, vl)
			copy(w.Value, vb)
		}
		rec.Writes = append(rec.Writes, w)
	}
	return rec, nil
}

// validateSegment scans a segment and returns the largest TOIndex of its
// valid prefix and that prefix's byte length. A short/garbled header is
// reported as a zero-length prefix (the whole file is a torn creation).
func validateSegment(path string) (last int64, validLen int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	if len(data) < headerSize || [8]byte(data[:headerSize]) != segMagic {
		return 0, 0, nil
	}
	off := int64(headerSize)
	for {
		n, payload := nextFrame(data, off)
		if payload == nil {
			return last, off, nil
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return last, off, nil
		}
		if rec.TOIndex > last {
			last = rec.TOIndex
		}
		off += n
	}
}

// nextFrame returns the byte length and payload of the frame at off, or
// (0, nil) when the bytes at off do not hold a complete, CRC-valid frame.
func nextFrame(data []byte, off int64) (int64, []byte) {
	if int64(len(data)) < off+frameSize {
		return 0, nil
	}
	length := int64(binary.BigEndian.Uint32(data[off : off+4]))
	if length <= 0 || length > maxRecordBytes || int64(len(data)) < off+frameSize+length {
		return 0, nil
	}
	want := binary.BigEndian.Uint32(data[off+4 : off+8])
	payload := data[off+frameSize : off+frameSize+length]
	if crc32.Checksum(payload, castagnoli) != want {
		return 0, nil
	}
	return frameSize + length, payload
}

// replaySegment streams a segment's records with TOIndex > from to fn.
func replaySegment(path string, from int64, fn func(Record) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil // truncated concurrently
		}
		return fmt.Errorf("wal: %w", err)
	}
	if len(data) < headerSize || [8]byte(data[:headerSize]) != segMagic {
		return nil
	}
	off := int64(headerSize)
	for {
		n, payload := nextFrame(data, off)
		if payload == nil {
			return nil
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return nil
		}
		if rec.TOIndex > from {
			if err := fn(rec); err != nil {
				return err
			}
		}
		off += n
	}
}

// syncDir fsyncs a directory so renames and creations are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer func() { _ = d.Close() }()
	if err := d.Sync(); err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
