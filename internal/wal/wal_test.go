package wal

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"otpdb/internal/storage"
)

func rec(idx int64, part, key string, val int64) Record {
	return Record{TOIndex: idx, Writes: []storage.ClassKeyValue{{
		Partition: storage.Partition(part),
		Key:       storage.Key(key),
		Value:     storage.Int64Value(val),
	}}}
}

func openT(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func appendN(t *testing.T, l *Log, from, to int64) {
	t.Helper()
	for i := from; i <= to; i++ {
		if err := l.Append(rec(i, "p", "k", i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

func replayIndexes(t *testing.T, l *Log, from int64) []int64 {
	t.Helper()
	var got []int64
	if err := l.Replay(from, func(r Record) error {
		got = append(got, r.TOIndex)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncNever})
	appendN(t, l, 1, 100)
	// A record with several writes, empty and nil values.
	multi := Record{TOIndex: 101, Writes: []storage.ClassKeyValue{
		{Partition: "a", Key: "x", Value: storage.StringValue("hello")},
		{Partition: "a", Key: "y", Value: storage.Value{}},
		{Partition: "b", Key: "z", Value: nil},
	}}
	if err := l.Append(multi); err != nil {
		t.Fatalf("Append multi: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := openT(t, dir, Options{Sync: SyncNever})
	defer func() { _ = l2.Close() }()
	if got := l2.LastIndex(); got != 101 {
		t.Fatalf("LastIndex = %d, want 101", got)
	}
	var last Record
	n := 0
	if err := l2.Replay(0, func(r Record) error { n++; last = r; return nil }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n != 101 {
		t.Fatalf("replayed %d records, want 101", n)
	}
	if len(last.Writes) != 3 || last.Writes[0].Value == nil ||
		storage.ValueString(last.Writes[0].Value) != "hello" ||
		last.Writes[1].Value == nil || len(last.Writes[1].Value) != 0 ||
		last.Writes[2].Value != nil {
		t.Fatalf("multi-write record mangled: %+v", last)
	}
	// Replay from an offset skips the prefix.
	if got := replayIndexes(t, l2, 99); len(got) != 2 || got[0] != 100 || got[1] != 101 {
		t.Fatalf("Replay(99) = %v, want [100 101]", got)
	}
}

// tailSegment returns the path of the last segment file.
func tailSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segments in %s (err %v)", dir, err)
	}
	return matches[len(matches)-1]
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncNever})
	appendN(t, l, 1, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record: chop a few bytes off the file.
	path := tailSegment(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	l2 := openT(t, dir, Options{Sync: SyncNever})
	if got := l2.LastIndex(); got != 9 {
		t.Fatalf("LastIndex after torn tail = %d, want 9", got)
	}
	if got := replayIndexes(t, l2, 0); len(got) != 9 {
		t.Fatalf("replayed %d records after torn tail, want 9", len(got))
	}
	// The log must accept appends after truncation.
	appendN(t, l2, 10, 12)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3 := openT(t, dir, Options{Sync: SyncNever})
	defer func() { _ = l3.Close() }()
	if got := replayIndexes(t, l3, 0); len(got) != 12 {
		t.Fatalf("replayed %d records after re-append, want 12", len(got))
	}
}

func TestCorruptCRCTruncated(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncNever})
	appendN(t, l, 1, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the last record: its CRC no longer matches,
	// so Open must truncate it (and only it).
	path := tailSegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := openT(t, dir, Options{Sync: SyncNever})
	defer func() { _ = l2.Close() }()
	if got := replayIndexes(t, l2, 0); len(got) != 9 || got[len(got)-1] != 9 {
		t.Fatalf("replay after CRC corruption = %v, want 1..9", got)
	}
}

func TestSegmentRotationAndTruncateBelow(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every few records.
	l := openT(t, dir, Options{Sync: SyncNever, SegmentBytes: 256})
	appendN(t, l, 1, 200)
	segs, err := l.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	if err := l.TruncateBelow(150); err != nil {
		t.Fatalf("TruncateBelow: %v", err)
	}
	after, err := l.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(segs) {
		t.Fatalf("TruncateBelow removed nothing (%d -> %d segments)", len(segs), len(after))
	}
	// Everything above the checkpoint index must survive.
	got := replayIndexes(t, l, 150)
	if len(got) != 50 || got[0] != 151 || got[len(got)-1] != 200 {
		t.Fatalf("replay after truncate lost records: %d records, first %d last %d",
			len(got), got[0], got[len(got)-1])
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayIntoStoreIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncNever})
	appendN(t, l, 1, 50)
	defer func() { _ = l.Close() }()

	apply := func(s *storage.Store) {
		if err := l.Replay(0, func(r Record) error {
			s.InstallCommit(r.TOIndex, r.Writes)
			return nil
		}); err != nil {
			t.Fatalf("Replay: %v", err)
		}
	}
	s := storage.NewStore()
	apply(s)
	d1 := s.Digest()
	apply(s) // replaying twice must not change the state
	if d2 := s.Digest(); d2 != d1 {
		t.Fatalf("second replay changed the state: %x -> %x", d1, d2)
	}
	if got := s.LastCommitted("p"); got != 50 {
		t.Fatalf("LastCommitted = %d, want 50", got)
	}
	if v, ok := s.Get("p", "k"); !ok || storage.ValueInt64(v) != 50 {
		t.Fatalf("Get = %v %v, want 50", v, ok)
	}
}

func TestDirtyReopenSeesEverythingWritten(t *testing.T) {
	// Simulates a process crash (kill -9): the log is never closed, the
	// old handle is simply abandoned. Everything write()n must be
	// recovered on reopen regardless of fsync policy.
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncNever})
	appendN(t, l, 1, 30)
	// No Close: abandon l.

	l2 := openT(t, dir, Options{Sync: SyncEveryCommit})
	defer func() { _ = l2.Close() }()
	if got := replayIndexes(t, l2, 0); len(got) != 30 {
		t.Fatalf("dirty reopen replayed %d records, want 30", len(got))
	}
	appendN(t, l2, 31, 35)
	if got := l2.LastIndex(); got != 35 {
		t.Fatalf("LastIndex = %d, want 35", got)
	}
}

func TestGroupSyncPolicy(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncGrouped, GroupInterval: time.Millisecond})
	appendN(t, l, 1, 100)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openT(t, dir, Options{})
	defer func() { _ = l2.Close() }()
	if got := replayIndexes(t, l2, 0); len(got) != 100 {
		t.Fatalf("replayed %d, want 100", len(got))
	}
}

func TestOutOfOrderAppendsKeepSegmentOrder(t *testing.T) {
	// Non-conflicting commits may append out of TOIndex order. Segment
	// names must stay strictly increasing so name-sorted order equals
	// append order — otherwise replay reorders and TruncateBelow can
	// delete the active segment.
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncNever, SegmentBytes: 160})
	order := []int64{10, 11, 2, 12, 3, 13, 14, 4, 15}
	for _, idx := range order {
		if err := l.Append(rec(idx, "p", "k", idx)); err != nil {
			t.Fatalf("Append %d: %v", idx, err)
		}
	}
	segs, err := l.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("want several segments, got %d", len(segs))
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].first <= segs[i-1].first {
			t.Fatalf("segment names not strictly increasing: %v", segs)
		}
	}
	if got := replayIndexes(t, l, 0); len(got) != len(order) {
		t.Fatalf("replayed %d records, want %d", len(got), len(order))
	} else {
		for i, idx := range order {
			if got[i] != idx {
				t.Fatalf("replay order %v != append order %v", got, order)
			}
		}
	}
	// Truncating below an index that the tail's out-of-order records
	// undercut must not drop anything above it.
	if err := l.TruncateBelow(12); err != nil {
		t.Fatal(err)
	}
	got := replayIndexes(t, l, 12)
	want := map[int64]bool{13: true, 14: true, 15: true}
	for _, idx := range got {
		delete(want, idx)
	}
	if len(want) != 0 {
		t.Fatalf("TruncateBelow(12) lost records: still want %v, replayed %v", want, got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// And reopen still validates cleanly.
	l2 := openT(t, dir, Options{})
	defer func() { _ = l2.Close() }()
	if got := l2.LastIndex(); got != 15 {
		t.Fatalf("LastIndex after reopen = %d, want 15", got)
	}
}

func TestHeaderlessTailSegmentRepaired(t *testing.T) {
	// A crash during segment creation can leave a tail file without its
	// magic header. Open must repair it (write the header) rather than
	// append headerless records that the NEXT Open would discard.
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncNever})
	appendN(t, l, 1, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn creation: an empty segment named above the tail.
	empty := filepath.Join(dir, segPrefix+"00000000000000ff"+segSuffix)
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	// And a second variant: a partially written header.
	l2 := openT(t, dir, Options{Sync: SyncEveryCommit})
	appendN(t, l2, 6, 8) // lands in the repaired tail
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3 := openT(t, dir, Options{})
	defer func() { _ = l3.Close() }()
	if got := replayIndexes(t, l3, 0); len(got) != 8 {
		t.Fatalf("replayed %d records after headerless-tail repair, want 8", len(got))
	}
	if got := l3.LastIndex(); got != 8 {
		t.Fatalf("LastIndex = %d, want 8", got)
	}
}
