package workload

import (
	"math/rand"
	"testing"
	"time"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Sites: 0, Classes: 1}); err == nil {
		t.Fatal("zero sites accepted")
	}
	if _, err := New(Config{Sites: 1, Classes: 0}); err == nil {
		t.Fatal("zero classes accepted")
	}
	if _, err := New(Config{Sites: 1, Classes: 1, QueryFraction: 1.5}); err == nil {
		t.Fatal("bad query fraction accepted")
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []Request {
		g, err := New(Config{Sites: 3, Classes: 8, QueryFraction: 0.3, Seed: 7,
			MeanInterarrival: time.Millisecond, Poisson: true})
		if err != nil {
			t.Fatal(err)
		}
		return g.Stream(1, 100)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestClassesInRange(t *testing.T) {
	g, err := New(Config{Sites: 2, Classes: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range g.Stream(0, 1000) {
		if req.Class < 0 || req.Class >= 5 {
			t.Fatalf("class %d out of range", req.Class)
		}
	}
}

func TestQueryFraction(t *testing.T) {
	g, err := New(Config{Sites: 1, Classes: 2, QueryFraction: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	queries := 0
	const n = 10000
	for _, req := range g.Stream(0, n) {
		if req.Kind == Query {
			queries++
		}
	}
	if queries < n*4/10 || queries > n*6/10 {
		t.Fatalf("query share %d/%d far from 0.5", queries, n)
	}
}

func TestZipfSkewsClasses(t *testing.T) {
	uniform, err := New(Config{Sites: 1, Classes: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := New(Config{Sites: 1, Classes: 16, ZipfS: 2.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	hu := uniform.ClassHistogram(n)
	hz := skewed.ClassHistogram(n)
	if float64(hz[0])/float64(n) < 0.4 {
		t.Fatalf("zipf class 0 share %d/%d too small", hz[0], n)
	}
	if float64(hu[0])/float64(n) > 0.2 {
		t.Fatalf("uniform class 0 share %d/%d too large", hu[0], n)
	}
}

func TestInterarrivalPacing(t *testing.T) {
	g, err := New(Config{Sites: 1, Classes: 1, MeanInterarrival: time.Millisecond, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range g.Stream(0, 100) {
		if req.Think != time.Millisecond {
			t.Fatalf("constant pacing produced %v", req.Think)
		}
	}
	gp, err := New(Config{Sites: 1, Classes: 1, MeanInterarrival: time.Millisecond, Poisson: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var sum time.Duration
	const n = 5000
	for _, req := range gp.Stream(0, n) {
		sum += req.Think
	}
	mean := sum / n
	if mean < 800*time.Microsecond || mean > 1200*time.Microsecond {
		t.Fatalf("poisson mean %v far from 1ms", mean)
	}
}

func TestTheoreticalConflictRate(t *testing.T) {
	if TheoreticalConflictRate(4) != 0.25 {
		t.Fatal("conflict rate wrong")
	}
	if TheoreticalConflictRate(0) != 1 {
		t.Fatal("degenerate conflict rate wrong")
	}
}

func TestMismatchedOrderZeroProbabilityIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	perm := MismatchedOrder(50, 0, rng)
	for i, v := range perm {
		if v != i {
			t.Fatalf("p=0 permuted: perm[%d]=%d", i, v)
		}
	}
	if DisplacementStats(perm) != 0 {
		t.Fatal("identity displacement not 0")
	}
}

func TestMismatchedOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	perm := MismatchedOrder(100, 0.5, rng)
	seen := make([]bool, 100)
	for _, v := range perm {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", perm)
		}
		seen[v] = true
	}
	if DisplacementStats(perm) == 0 {
		t.Fatal("p=0.5 produced identity (suspicious)")
	}
}

func TestSiteWrapsModulo(t *testing.T) {
	g, err := New(Config{Sites: 3, Classes: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if req := g.Next(5); req.Site != 2 {
		t.Fatalf("site = %d, want 2", req.Site)
	}
}
