// Package workload generates the transaction mixes used by the experiment
// harness: conflict-class selection (uniform or Zipf-skewed), Poisson or
// uniform arrival processes, and update/query mixes. All generators are
// deterministic given a seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Kind distinguishes generated requests.
type Kind int

// Request kinds.
const (
	// Update is a read-write transaction (TO-broadcast to all sites).
	Update Kind = iota + 1
	// Query is a read-only transaction (executed locally).
	Query
)

// Request is one generated operation.
type Request struct {
	// Kind says whether this is an update or a query.
	Kind Kind
	// Class is the conflict class index for updates ([0, Classes)).
	Class int
	// Site is the submitting site index ([0, Sites)).
	Site int
	// Think is the gap to wait after the previous request at this site.
	Think time.Duration
}

// Config parameterises a generator.
type Config struct {
	// Sites is the number of submitting sites.
	Sites int
	// Classes is the number of conflict classes.
	Classes int
	// QueryFraction in [0,1] is the share of queries in the mix.
	QueryFraction float64
	// ZipfS is the Zipf skew parameter for class selection; values
	// <= 1 mean uniform selection. (The Zipf exponent must exceed 1 for
	// math/rand's generator.)
	ZipfS float64
	// MeanInterarrival is the average gap between requests per site.
	// Zero means no pacing (closed loop).
	MeanInterarrival time.Duration
	// Poisson draws exponential gaps (Poisson arrivals) instead of
	// constant ones.
	Poisson bool
	// Seed makes the stream reproducible.
	Seed int64
}

// Generator produces a deterministic request stream.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
}

// New creates a generator.
func New(cfg Config) (*Generator, error) {
	if cfg.Sites <= 0 {
		return nil, fmt.Errorf("workload: Sites must be positive, got %d", cfg.Sites)
	}
	if cfg.Classes <= 0 {
		return nil, fmt.Errorf("workload: Classes must be positive, got %d", cfg.Classes)
	}
	if cfg.QueryFraction < 0 || cfg.QueryFraction > 1 {
		return nil, fmt.Errorf("workload: QueryFraction %f out of [0,1]", cfg.QueryFraction)
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.ZipfS > 1 {
		g.zipf = rand.NewZipf(g.rng, cfg.ZipfS, 1, uint64(cfg.Classes-1))
	}
	return g, nil
}

// Next returns the next request for the given site.
func (g *Generator) Next(site int) Request {
	req := Request{Site: site % g.cfg.Sites}
	if g.rng.Float64() < g.cfg.QueryFraction {
		req.Kind = Query
	} else {
		req.Kind = Update
	}
	if g.zipf != nil {
		req.Class = int(g.zipf.Uint64())
	} else {
		req.Class = g.rng.Intn(g.cfg.Classes)
	}
	if g.cfg.MeanInterarrival > 0 {
		if g.cfg.Poisson {
			req.Think = time.Duration(g.rng.ExpFloat64() * float64(g.cfg.MeanInterarrival))
		} else {
			req.Think = g.cfg.MeanInterarrival
		}
	}
	return req
}

// Stream returns n requests for a site.
func (g *Generator) Stream(site, n int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = g.Next(site)
	}
	return out
}

// ClassHistogram counts class occurrences over n draws, for skew tests.
func (g *Generator) ClassHistogram(n int) []int {
	counts := make([]int, g.cfg.Classes)
	for i := 0; i < n; i++ {
		counts[g.Next(0).Class]++
	}
	return counts
}

// TheoreticalConflictRate returns the probability that two independently
// drawn transactions share a conflict class under uniform selection —
// the knob the abort-rate experiment (E2) sweeps.
func TheoreticalConflictRate(classes int) float64 {
	if classes <= 0 {
		return 1
	}
	return 1 / float64(classes)
}

// MismatchedOrder produces a permutation of 0..n-1 where each adjacent
// pair is swapped with probability p — the standard model for tentative
// orders diverging from the definitive order by spontaneous-order misses.
func MismatchedOrder(n int, p float64, rng *rand.Rand) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	for i := 0; i+1 < n; i++ {
		if rng.Float64() < p {
			out[i], out[i+1] = out[i+1], out[i]
		}
	}
	return out
}

// DisplacementStats reports the mean absolute displacement of a
// permutation from identity, a measure of how disordered a tentative
// order is.
func DisplacementStats(perm []int) float64 {
	if len(perm) == 0 {
		return 0
	}
	total := 0.0
	for i, v := range perm {
		total += math.Abs(float64(i - v))
	}
	return total / float64(len(perm))
}
