package abcast

import (
	"fmt"
	"sync"
	"time"

	"otpdb/internal/consensus"
	"otpdb/internal/metrics"
	"otpdb/internal/queue"
	"otpdb/internal/transport"
)

// Optimistic is the OPT-ABcast engine. Every site Opt-delivers messages in
// raw reception order; the definitive order is agreed in numbered stages,
// one consensus instance per stage, where each site proposes its own
// tentative order of not-yet-decided messages. Spontaneous total order
// makes all proposals equal and the stage decides in one round-trip.
//
// Properties (under a majority of correct sites and ◇S):
//
//	Termination      — reliable data dissemination puts every message into
//	                   every site's proposals until some decision, which
//	                   must then contain it, is reached.
//	Global Agreement — consensus decisions are identical everywhere and
//	                   stages are processed in stage order.
//	Local Agreement  — every Opt-delivered message enters the undecided
//	                   list and is eventually decided.
//	Global Order     — TO events follow the concatenation of stage
//	                   decisions, the same at all sites.
//	Local Order      — a TO event is withheld until the message body has
//	                   arrived and been Opt-delivered.
type Optimistic struct {
	ep   transport.Endpoint
	cons *consensus.Engine
	out  *queue.Q[Event]

	mu      sync.Mutex
	nextSeq uint64
	started bool
	closed  bool
	stats   Stats

	stop   chan struct{}
	done   chan struct{}
	dumpCh chan chan string
	defCh  chan defLogQuery

	// Engine-goroutine state (no locking needed).
	payloads    map[MsgID]any
	optDone     map[MsgID]bool
	decided     map[MsgID]bool
	undecided   []MsgID
	pendingTO   []MsgID
	stage       uint64 // next stage to propose
	inFlight    bool
	nextProcess uint64 // next stage decision to process
	decisionBuf map[uint64][]MsgID
	// lastDecideReq rate-limits gap-triggered decision catch-up
	// broadcasts (see onDecision).
	lastDecideReq time.Time
	lastProp      []MsgID // this site's proposal for the in-flight stage

	// Definitive-history retention (recovery/rejoin support): every
	// decided message is assigned the next global definitive position and
	// retained — ID, position, and body once available — so this site can
	// serve a rejoining replica the deliveries it missed since a peer
	// checkpoint, and retransmit bodies on request. Bounded to defLogCap
	// entries (rejoin fails loudly when asked for pruned history).
	defSeq    uint64 // last assigned definitive position
	defLog    []*DefEntry
	defByID   map[MsgID]*DefEntry
	defLogCap int
	join      *JoinState

	// Optimism telemetry (engine goroutine). Each Opt delivery is
	// assigned a local optimistic index and timestamped; at TO release
	// the index order is compared against the definitive order (an
	// inversion is a reorder — the optimistic prediction was wrong) and
	// the opt→def window is observed. Instruments are inert without
	// WithMetrics.
	scope     *metrics.Scope
	optSeq    uint64 // next optimistic delivery index
	optIdxOf  map[MsgID]uint64
	optAtOf   map[MsgID]time.Time
	maxTOOpt  uint64 // highest optimistic index already TO-released
	anyTO     bool
	reorders  *metrics.Counter
	optDefLat *metrics.Histogram
}

// JoinState primes a fresh engine to rejoin a running group (see
// Cluster.RestartSite): skip the consensus stages already processed
// elsewhere, replay the definitive backlog a peer served, and resume
// this origin's broadcast numbering past everything the group has seen.
type JoinState struct {
	// StartStage is the first consensus stage to process; decisions of
	// earlier stages are covered by Backlog.
	StartStage uint64
	// ResumeSeq is the last broadcast sequence number of this origin the
	// group may have seen; new broadcasts number from ResumeSeq+1 so
	// message IDs stay unique across the crash.
	ResumeSeq uint64
	// Backlog is the definitive history to pre-deliver at Start, in
	// ascending Seq order (the gap between the state-transfer checkpoint
	// and StartStage). Entries without bodies are requested from peers.
	Backlog []DefEntry
}

// Option configures an Optimistic engine.
type Option func(*Optimistic)

// WithJoin makes the engine start in rejoin mode.
func WithJoin(js JoinState) Option {
	return func(o *Optimistic) { o.join = &js }
}

// WithDefLogCap bounds the retained definitive history (default 64Ki
// entries). Rejoin requests below the retained window fail.
func WithDefLogCap(n int) Option {
	return func(o *Optimistic) { o.defLogCap = n }
}

// WithDefBase presets the definitive position counter: after a cold
// restart from durable state the first new decision is assigned base+1,
// keeping engine positions aligned with the replica's recovered commit
// index.
func WithDefBase(base uint64) Option {
	return func(o *Optimistic) {
		if base > o.defSeq {
			o.defSeq = base
		}
	}
}

// WithMetrics registers the engine's optimism telemetry under the
// scope's labels: reorder count, opt→def latency, stage counters and
// the spontaneous-order agreement ratio.
func WithMetrics(s *metrics.Scope) Option {
	return func(o *Optimistic) { o.scope = s }
}

var _ Broadcaster = (*Optimistic)(nil)

// defaultDefLogCap bounds the retained definitive history.
const defaultDefLogCap = 64 << 10

// NewOptimistic creates an OPT-ABcast engine bound to ep and using cons
// for definitive ordering. The consensus engine must be dedicated to this
// broadcaster (instance numbers are the stage numbers) and must be started
// and stopped by the caller.
func NewOptimistic(ep transport.Endpoint, cons *consensus.Engine, opts ...Option) *Optimistic {
	o := &Optimistic{
		ep:          ep,
		cons:        cons,
		out:         queue.New[Event](),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		dumpCh:      make(chan chan string),
		defCh:       make(chan defLogQuery),
		payloads:    make(map[MsgID]any),
		optDone:     make(map[MsgID]bool),
		decided:     make(map[MsgID]bool),
		stage:       1,
		nextProcess: 1,
		decisionBuf: make(map[uint64][]MsgID),
		defByID:     make(map[MsgID]*DefEntry),
		defLogCap:   defaultDefLogCap,
		optIdxOf:    make(map[MsgID]uint64),
		optAtOf:     make(map[MsgID]time.Time),
	}
	for _, opt := range opts {
		opt(o)
	}
	o.reorders = o.scope.Counter("otp_reorder_total")
	o.optDefLat = o.scope.Histogram("otp_opt_def_latency_seconds")
	// Stage counters and the agreement ratio pull from Stats() at
	// snapshot time: the hot path already maintains them under o.mu.
	//otplint:allow metricnames pull-style counter: the Func surfaces the monotonic Stats().Stages total, so _total states its semantics
	o.scope.Func("abcast_stage_total", func() float64 {
		return float64(o.Stats().Stages)
	})
	//otplint:allow metricnames pull-style counter over monotonic Stats().FastStages
	o.scope.Func("abcast_fast_stage_total", func() float64 {
		return float64(o.Stats().FastStages)
	})
	o.scope.Func("abcast_agreement_ratio", func() float64 {
		st := o.Stats()
		if st.Stages == 0 {
			return 1
		}
		return float64(st.FastStages) / float64(st.Stages)
	})
	return o
}

// Start implements Broadcaster.
func (o *Optimistic) Start() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.started {
		return nil
	}
	o.started = true
	go o.run()
	return nil
}

// Stop implements Broadcaster.
func (o *Optimistic) Stop() error {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return nil
	}
	o.closed = true
	o.mu.Unlock()
	close(o.stop)
	<-o.done
	o.out.Close()
	return nil
}

// Broadcast implements Broadcaster.
func (o *Optimistic) Broadcast(payload any) (MsgID, error) {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return MsgID{}, transport.ErrClosed
	}
	o.nextSeq++
	id := MsgID{Origin: o.ep.ID(), Seq: o.nextSeq}
	o.stats.Broadcasts++
	o.mu.Unlock()
	if err := o.ep.Broadcast(StreamData, DataMsg{ID: id, Payload: payload}); err != nil {
		return MsgID{}, err
	}
	return id, nil
}

// Deliveries implements Broadcaster.
func (o *Optimistic) Deliveries() <-chan Event { return o.out.Chan() }

// Stats returns a snapshot of the engine counters.
func (o *Optimistic) Stats() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats
}

func (o *Optimistic) run() {
	defer close(o.done)
	data := o.ep.Subscribe(StreamData)
	decisions := o.cons.Decisions()
	if o.join != nil {
		o.applyJoin()
	}
	for {
		select {
		case env, ok := <-data:
			if !ok {
				return
			}
			switch m := env.Msg.(type) {
			case DataMsg:
				o.onData(m)
			case BodyReq:
				o.onBodyReq(env.From, m)
			}
		case d, ok := <-decisions:
			if !ok {
				return
			}
			o.onDecision(d)
		case q := <-o.defCh:
			q.reply <- o.serveDefLog(q)
		case reply := <-o.dumpCh:
			reply <- o.dumpLocked()
		case <-o.stop:
			return
		}
	}
}

// applyJoin replays the peer-served backlog: every entry is already
// definitively ordered, so it is marked decided, Opt-delivered (when its
// body is known) and queued for TO release in seq order; missing bodies
// are requested from the group. Runs in the engine goroutine before any
// live traffic is processed, so the replica sees the backlog exactly as
// if it had been delivered normally.
func (o *Optimistic) applyJoin() {
	j := o.join
	if j.StartStage > o.stage {
		o.stage = j.StartStage
		o.nextProcess = j.StartStage
	}
	o.mu.Lock()
	if j.ResumeSeq > o.nextSeq {
		o.nextSeq = j.ResumeSeq
	}
	o.mu.Unlock()
	for _, src := range j.Backlog {
		ent := &DefEntry{Seq: src.Seq, ID: src.ID, Payload: src.Payload, HasBody: src.HasBody}
		o.decided[ent.ID] = true
		if ent.Seq > o.defSeq {
			o.defSeq = ent.Seq
		}
		o.retain(ent)
		if ent.HasBody {
			o.optDone[ent.ID] = true
			o.noteOpt(ent.ID)
			o.payloads[ent.ID] = ent.Payload
			o.emit(Event{Kind: Opt, ID: ent.ID, Payload: ent.Payload})
		}
		o.pendingTO = append(o.pendingTO, ent.ID)
	}
	o.flushPendingTO()
	o.requestMissingBodies()
}

// requestMissingBodies asks the group to retransmit bodies the pending
// definitive queue is blocked on. Rejoined sites hit this for backlog
// entries served without bodies, but a site that never crashed needs it
// too: a partition can swallow the original dissemination of a body
// whose decision this site later catches up on. Re-invoked at every
// processed stage, so a peer that itself lacked the body at request
// time is asked again.
func (o *Optimistic) requestMissingBodies() {
	var missing []MsgID
	for _, id := range o.pendingTO {
		if !o.optDone[id] {
			missing = append(missing, id)
		}
	}
	if len(missing) > 0 {
		_ = o.ep.Broadcast(StreamData, BodyReq{IDs: missing})
	}
}

// onBodyReq retransmits retained bodies to a catching-up peer.
func (o *Optimistic) onBodyReq(from transport.NodeID, m BodyReq) {
	for _, id := range m.IDs {
		if ent, ok := o.defByID[id]; ok && ent.HasBody {
			_ = o.ep.Send(from, StreamData, DataMsg{ID: id, Payload: ent.Payload})
			continue
		}
		if pl, ok := o.payloads[id]; ok && o.optDone[id] {
			_ = o.ep.Send(from, StreamData, DataMsg{ID: id, Payload: pl})
		}
	}
}

// retain appends one definitive entry to the bounded history.
func (o *Optimistic) retain(ent *DefEntry) {
	o.defLog = append(o.defLog, ent)
	o.defByID[ent.ID] = ent
	if len(o.defLog) > o.defLogCap {
		drop := len(o.defLog) - o.defLogCap/2 // halve, amortizing the copy
		if drop > len(o.defLog) {
			drop = len(o.defLog)
		}
		for _, old := range o.defLog[:drop] {
			delete(o.defByID, old.ID)
		}
		o.defLog = append([]*DefEntry(nil), o.defLog[drop:]...)
	}
}

// onData Opt-delivers a newly received message and schedules it for
// definitive ordering.
func (o *Optimistic) onData(m DataMsg) {
	if o.optDone[m.ID] {
		return // duplicate (transport retransmission)
	}
	o.optDone[m.ID] = true
	o.noteOpt(m.ID)
	o.payloads[m.ID] = m.Payload
	if ent, ok := o.defByID[m.ID]; ok && !ent.HasBody {
		// A retransmitted body for an already-decided entry: complete the
		// retained history so this site can serve it onward.
		ent.Payload = m.Payload
		ent.HasBody = true
	}
	o.emit(Event{Kind: Opt, ID: m.ID, Payload: m.Payload})

	if o.decided[m.ID] {
		// Already definitively ordered (another site's proposal won the
		// stage before our copy arrived): the TO event may now be
		// releasable.
		o.flushPendingTO()
		return
	}
	o.undecided = append(o.undecided, m.ID)
	o.maybePropose()
}

// decideReqInterval rate-limits gap-triggered decision catch-up
// requests: while the gap persists, at most one broadcast per interval.
const decideReqInterval = 200 * time.Millisecond

// onDecision buffers out-of-order stage decisions and processes them in
// stage order. A buffered decision above a hole means this site missed
// earlier DECIDE broadcasts (a partition swallowed them); the hole
// never fills on its own, so the missing range is re-requested from
// the group.
func (o *Optimistic) onDecision(d consensus.Decision) {
	ids, ok := d.Value.([]MsgID)
	if !ok {
		// Consensus validity guarantees the decision is some site's
		// proposal, which is always []MsgID. Anything else means the
		// ordering layer is broken; dropping it silently would wedge
		// every later stage.
		panic(fmt.Sprintf("abcast: stage %d decided non-proposal value %T", d.Instance, d.Value))
	}
	if d.Instance < o.nextProcess {
		return // retransmission of an already-processed stage
	}
	o.decisionBuf[d.Instance] = ids
	for {
		ids, ok := o.decisionBuf[o.nextProcess]
		if !ok {
			break
		}
		delete(o.decisionBuf, o.nextProcess)
		o.processStage(o.nextProcess, ids)
		o.nextProcess++
	}
	if len(o.decisionBuf) > 0 && time.Since(o.lastDecideReq) >= decideReqInterval {
		o.lastDecideReq = time.Now()
		o.cons.RequestDecisions(o.nextProcess)
	}
}

func (o *Optimistic) processStage(stage uint64, ids []MsgID) {
	o.mu.Lock()
	o.stats.Stages++
	if stage == o.stage && sameIDs(ids, o.lastProp) {
		o.stats.FastStages++
	}
	o.mu.Unlock()

	decidedSet := make(map[MsgID]bool, len(ids))
	for _, id := range ids {
		if o.decided[id] {
			continue // defensive: never TO-deliver twice
		}
		o.decided[id] = true
		decidedSet[id] = true
		// Assign the message its global definitive position and retain it
		// (every site processes the same stage decisions in the same
		// order, so positions agree everywhere).
		o.defSeq++
		ent := &DefEntry{Seq: o.defSeq, ID: id}
		if o.optDone[id] {
			ent.Payload = o.payloads[id]
			ent.HasBody = true
		}
		o.retain(ent)
		o.pendingTO = append(o.pendingTO, id)
	}
	// Drop decided messages from our own tentative list.
	if len(decidedSet) > 0 {
		kept := o.undecided[:0]
		for _, id := range o.undecided {
			if !decidedSet[id] {
				kept = append(kept, id)
			}
		}
		o.undecided = kept
	}
	o.flushPendingTO()

	if stage >= o.stage {
		o.stage = stage + 1
	}
	o.inFlight = false
	o.lastProp = nil
	o.requestMissingBodies()
	o.maybePropose()
}

// noteOpt stamps an Opt delivery with its local optimistic index and
// arrival time, the raw material of the reorder and opt→def metrics.
func (o *Optimistic) noteOpt(id MsgID) {
	o.optSeq++
	o.optIdxOf[id] = o.optSeq
	o.optAtOf[id] = time.Now()
}

// flushPendingTO emits TO events for the decided prefix whose bodies have
// arrived. Definitive order is never violated: a missing body blocks the
// tail (Global Order), and bodies are Opt-delivered first (Local Order).
//
// This is also where the optimistic prediction is graded: a message
// TO-released with an optimistic index below one already released means
// the definitive order inverted the optimistic order — a reorder, the
// event the paper's OPT layer bets against. The opt→def window (Opt
// delivery to TO release) is observed alongside.
func (o *Optimistic) flushPendingTO() {
	for len(o.pendingTO) > 0 && o.optDone[o.pendingTO[0]] {
		id := o.pendingTO[0]
		o.pendingTO = o.pendingTO[1:]
		delete(o.payloads, id)
		if idx, ok := o.optIdxOf[id]; ok {
			if o.anyTO && idx < o.maxTOOpt {
				o.reorders.Inc()
				o.mu.Lock()
				o.stats.Reorders++
				o.mu.Unlock()
			}
			if idx > o.maxTOOpt {
				o.maxTOOpt = idx
			}
			o.anyTO = true
			delete(o.optIdxOf, id)
		}
		if at, ok := o.optAtOf[id]; ok {
			o.optDefLat.Observe(time.Since(at))
			delete(o.optAtOf, id)
		}
		o.emit(Event{Kind: TO, ID: id})
	}
}

// maybePropose opens the next stage when there are unordered messages and
// no stage in flight.
func (o *Optimistic) maybePropose() {
	if o.inFlight || len(o.undecided) == 0 {
		return
	}
	proposal := make([]MsgID, len(o.undecided))
	copy(proposal, o.undecided)
	o.inFlight = true
	o.lastProp = proposal
	_ = o.cons.Propose(o.stage, proposal)
}

func (o *Optimistic) emit(ev Event) {
	o.mu.Lock()
	switch ev.Kind {
	case Opt:
		o.stats.OptDelivered++
	case TO:
		o.stats.TODelivered++
	}
	o.mu.Unlock()
	o.out.Push(ev)
}

// defLogQuery is a DefinitiveLog request served by the engine goroutine.
type defLogQuery struct {
	from   uint64
	origin transport.NodeID
	reply  chan defLogReply
}

type defLogReply struct {
	entries   []DefEntry
	nextStage uint64
	resumeSeq uint64
	err       error
}

// ErrHistoryPruned is returned by DefinitiveLog when the requested range
// reaches below the retained definitive history.
var ErrHistoryPruned = fmt.Errorf("abcast: definitive history pruned past request")

// DefinitiveLog returns this site's definitive history from position
// `from` (inclusive) through the last processed stage, together with the
// next stage number a rejoining engine should resume at and the largest
// broadcast sequence number this site has seen from `origin` (so the
// rejoiner can renumber past its own pre-crash messages). The triple is
// captured atomically in the engine goroutine: the entries cover exactly
// the decisions of every stage below the returned stage number.
func (o *Optimistic) DefinitiveLog(from uint64, origin transport.NodeID) ([]DefEntry, uint64, uint64, error) {
	reply := make(chan defLogReply, 1)
	select {
	case o.defCh <- defLogQuery{from: from, origin: origin, reply: reply}:
		r := <-reply
		return r.entries, r.nextStage, r.resumeSeq, r.err
	case <-o.stop:
		return nil, 0, 0, transport.ErrClosed
	}
}

// serveDefLog runs in the engine goroutine.
func (o *Optimistic) serveDefLog(q defLogQuery) defLogReply {
	r := defLogReply{nextStage: o.nextProcess}
	if q.from > o.defSeq+1 {
		// The requester is ahead of this site: serving a backlog from
		// here would make it re-enter consensus with misaligned
		// definitive positions. Refuse, so a state-transfer client fails
		// over to a more advanced donor.
		r.err = fmt.Errorf("abcast: definitive log requested from %d but this site is at %d (donor behind joiner)",
			q.from, o.defSeq)
		return r
	}
	// Oldest position this site can vouch for: the head of the retained
	// history, or the position right after the counter when nothing is
	// retained (fresh or fully pruned).
	oldest := o.defSeq + 1
	if len(o.defLog) > 0 {
		oldest = o.defLog[0].Seq
	}
	if q.from < oldest {
		r.err = fmt.Errorf("%w: want from %d, oldest retained %d", ErrHistoryPruned, q.from, oldest)
		return r
	}
	for _, ent := range o.defLog {
		if ent.Seq >= q.from {
			r.entries = append(r.entries, *ent)
		}
	}
	// Largest sequence number seen from origin, across everything this
	// site ever received (optDone spans delivered bodies; decided spans
	// ordered messages whose bodies may still be pending).
	for id := range o.optDone {
		if id.Origin == q.origin && id.Seq > r.resumeSeq {
			r.resumeSeq = id.Seq
		}
	}
	for id := range o.decided {
		if id.Origin == q.origin && id.Seq > r.resumeSeq {
			r.resumeSeq = id.Seq
		}
	}
	return r
}

// Dump returns a snapshot of the engine's ordering state, for debugging.
// It is served by the engine goroutine.
func (o *Optimistic) Dump() string {
	reply := make(chan string, 1)
	select {
	case o.dumpCh <- reply:
		return <-reply
	case <-o.stop:
		return "engine stopped"
	}
}

func (o *Optimistic) dumpLocked() string {
	return fmt.Sprintf("abcast(%v): stage=%d nextProcess=%d inFlight=%v undecided=%v pendingTO=%v bufDecisions=%d",
		o.ep.ID(), o.stage, o.nextProcess, o.inFlight, o.undecided, o.pendingTO, len(o.decisionBuf))
}

func sameIDs(a, b []MsgID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
