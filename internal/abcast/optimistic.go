package abcast

import (
	"fmt"
	"sync"

	"otpdb/internal/consensus"
	"otpdb/internal/queue"
	"otpdb/internal/transport"
)

// Optimistic is the OPT-ABcast engine. Every site Opt-delivers messages in
// raw reception order; the definitive order is agreed in numbered stages,
// one consensus instance per stage, where each site proposes its own
// tentative order of not-yet-decided messages. Spontaneous total order
// makes all proposals equal and the stage decides in one round-trip.
//
// Properties (under a majority of correct sites and ◇S):
//
//	Termination      — reliable data dissemination puts every message into
//	                   every site's proposals until some decision, which
//	                   must then contain it, is reached.
//	Global Agreement — consensus decisions are identical everywhere and
//	                   stages are processed in stage order.
//	Local Agreement  — every Opt-delivered message enters the undecided
//	                   list and is eventually decided.
//	Global Order     — TO events follow the concatenation of stage
//	                   decisions, the same at all sites.
//	Local Order      — a TO event is withheld until the message body has
//	                   arrived and been Opt-delivered.
type Optimistic struct {
	ep   transport.Endpoint
	cons *consensus.Engine
	out  *queue.Q[Event]

	mu      sync.Mutex
	nextSeq uint64
	started bool
	closed  bool
	stats   Stats

	stop   chan struct{}
	done   chan struct{}
	dumpCh chan chan string

	// Engine-goroutine state (no locking needed).
	payloads    map[MsgID]any
	optDone     map[MsgID]bool
	decided     map[MsgID]bool
	undecided   []MsgID
	pendingTO   []MsgID
	stage       uint64 // next stage to propose
	inFlight    bool
	nextProcess uint64 // next stage decision to process
	decisionBuf map[uint64][]MsgID
	lastProp    []MsgID // this site's proposal for the in-flight stage
}

var _ Broadcaster = (*Optimistic)(nil)

// NewOptimistic creates an OPT-ABcast engine bound to ep and using cons
// for definitive ordering. The consensus engine must be dedicated to this
// broadcaster (instance numbers are the stage numbers) and must be started
// and stopped by the caller.
func NewOptimistic(ep transport.Endpoint, cons *consensus.Engine) *Optimistic {
	return &Optimistic{
		ep:          ep,
		cons:        cons,
		out:         queue.New[Event](),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		dumpCh:      make(chan chan string),
		payloads:    make(map[MsgID]any),
		optDone:     make(map[MsgID]bool),
		decided:     make(map[MsgID]bool),
		stage:       1,
		nextProcess: 1,
		decisionBuf: make(map[uint64][]MsgID),
	}
}

// Start implements Broadcaster.
func (o *Optimistic) Start() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.started {
		return nil
	}
	o.started = true
	go o.run()
	return nil
}

// Stop implements Broadcaster.
func (o *Optimistic) Stop() error {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return nil
	}
	o.closed = true
	o.mu.Unlock()
	close(o.stop)
	<-o.done
	o.out.Close()
	return nil
}

// Broadcast implements Broadcaster.
func (o *Optimistic) Broadcast(payload any) (MsgID, error) {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return MsgID{}, transport.ErrClosed
	}
	o.nextSeq++
	id := MsgID{Origin: o.ep.ID(), Seq: o.nextSeq}
	o.stats.Broadcasts++
	o.mu.Unlock()
	if err := o.ep.Broadcast(StreamData, DataMsg{ID: id, Payload: payload}); err != nil {
		return MsgID{}, err
	}
	return id, nil
}

// Deliveries implements Broadcaster.
func (o *Optimistic) Deliveries() <-chan Event { return o.out.Chan() }

// Stats returns a snapshot of the engine counters.
func (o *Optimistic) Stats() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats
}

func (o *Optimistic) run() {
	defer close(o.done)
	data := o.ep.Subscribe(StreamData)
	decisions := o.cons.Decisions()
	for {
		select {
		case env, ok := <-data:
			if !ok {
				return
			}
			if m, ok := env.Msg.(DataMsg); ok {
				o.onData(m)
			}
		case d, ok := <-decisions:
			if !ok {
				return
			}
			o.onDecision(d)
		case reply := <-o.dumpCh:
			reply <- o.dumpLocked()
		case <-o.stop:
			return
		}
	}
}

// onData Opt-delivers a newly received message and schedules it for
// definitive ordering.
func (o *Optimistic) onData(m DataMsg) {
	if o.optDone[m.ID] {
		return // duplicate (transport retransmission)
	}
	o.optDone[m.ID] = true
	o.payloads[m.ID] = m.Payload
	o.emit(Event{Kind: Opt, ID: m.ID, Payload: m.Payload})

	if o.decided[m.ID] {
		// Already definitively ordered (another site's proposal won the
		// stage before our copy arrived): the TO event may now be
		// releasable.
		o.flushPendingTO()
		return
	}
	o.undecided = append(o.undecided, m.ID)
	o.maybePropose()
}

// onDecision buffers out-of-order stage decisions and processes them in
// stage order.
func (o *Optimistic) onDecision(d consensus.Decision) {
	ids, ok := d.Value.([]MsgID)
	if !ok {
		// Consensus validity guarantees the decision is some site's
		// proposal, which is always []MsgID. Anything else means the
		// ordering layer is broken; dropping it silently would wedge
		// every later stage.
		panic(fmt.Sprintf("abcast: stage %d decided non-proposal value %T", d.Instance, d.Value))
	}
	o.decisionBuf[d.Instance] = ids
	for {
		ids, ok := o.decisionBuf[o.nextProcess]
		if !ok {
			return
		}
		delete(o.decisionBuf, o.nextProcess)
		o.processStage(o.nextProcess, ids)
		o.nextProcess++
	}
}

func (o *Optimistic) processStage(stage uint64, ids []MsgID) {
	o.mu.Lock()
	o.stats.Stages++
	if stage == o.stage && sameIDs(ids, o.lastProp) {
		o.stats.FastStages++
	}
	o.mu.Unlock()

	decidedSet := make(map[MsgID]bool, len(ids))
	for _, id := range ids {
		if o.decided[id] {
			continue // defensive: never TO-deliver twice
		}
		o.decided[id] = true
		decidedSet[id] = true
		o.pendingTO = append(o.pendingTO, id)
	}
	// Drop decided messages from our own tentative list.
	if len(decidedSet) > 0 {
		kept := o.undecided[:0]
		for _, id := range o.undecided {
			if !decidedSet[id] {
				kept = append(kept, id)
			}
		}
		o.undecided = kept
	}
	o.flushPendingTO()

	if stage >= o.stage {
		o.stage = stage + 1
	}
	o.inFlight = false
	o.lastProp = nil
	o.maybePropose()
}

// flushPendingTO emits TO events for the decided prefix whose bodies have
// arrived. Definitive order is never violated: a missing body blocks the
// tail (Global Order), and bodies are Opt-delivered first (Local Order).
func (o *Optimistic) flushPendingTO() {
	for len(o.pendingTO) > 0 && o.optDone[o.pendingTO[0]] {
		id := o.pendingTO[0]
		o.pendingTO = o.pendingTO[1:]
		delete(o.payloads, id)
		o.emit(Event{Kind: TO, ID: id})
	}
}

// maybePropose opens the next stage when there are unordered messages and
// no stage in flight.
func (o *Optimistic) maybePropose() {
	if o.inFlight || len(o.undecided) == 0 {
		return
	}
	proposal := make([]MsgID, len(o.undecided))
	copy(proposal, o.undecided)
	o.inFlight = true
	o.lastProp = proposal
	_ = o.cons.Propose(o.stage, proposal)
}

func (o *Optimistic) emit(ev Event) {
	o.mu.Lock()
	switch ev.Kind {
	case Opt:
		o.stats.OptDelivered++
	case TO:
		o.stats.TODelivered++
	}
	o.mu.Unlock()
	o.out.Push(ev)
}

// Dump returns a snapshot of the engine's ordering state, for debugging.
// It is served by the engine goroutine.
func (o *Optimistic) Dump() string {
	reply := make(chan string, 1)
	select {
	case o.dumpCh <- reply:
		return <-reply
	case <-o.stop:
		return "engine stopped"
	}
}

func (o *Optimistic) dumpLocked() string {
	return fmt.Sprintf("abcast(%v): stage=%d nextProcess=%d inFlight=%v undecided=%v pendingTO=%v bufDecisions=%d",
		o.ep.ID(), o.stage, o.nextProcess, o.inFlight, o.undecided, o.pendingTO, len(o.decisionBuf))
}

func sameIDs(a, b []MsgID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
