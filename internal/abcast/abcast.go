// Package abcast implements Atomic Broadcast with Optimistic Delivery as
// specified in Section 2.1 of Kemme et al. (ICDCS'99), with the primitives
//
//	TO-broadcast(m) — Broadcast
//	Opt-deliver(m)  — Event{Kind: Opt}, the tentative order (raw reception)
//	TO-deliver(m)   — Event{Kind: TO}, the definitive total order
//
// and the properties Termination, Global Agreement, Local Agreement,
// Global Order and Local Order.
//
// Three engines are provided:
//
//   - Optimistic: the OPT-ABcast realization. Messages are multicast to
//     all sites and Opt-delivered the instant they are received; the
//     definitive order is agreed in stages, one consensus instance per
//     stage, each site proposing its tentative order. With spontaneous
//     total order all proposals match and consensus terminates in one
//     round-trip; mismatches cost extra rounds but deliveries are never
//     wrong (commitment waits for TO).
//   - Sequencer: a conservative baseline. A fixed sequencer assigns the
//     definitive order and Opt/TO are emitted together at definitive
//     time — i.e. classic atomic broadcast with no optimism and no
//     execution overlap.
//   - Scripted: a test double whose delivery schedule is fully under the
//     caller's control.
package abcast

import (
	"strconv"

	"otpdb/internal/transport"
)

// Streams used on the transport.
const (
	// StreamData carries the message bodies (TO-broadcast payloads).
	StreamData = "ab.data"
	// StreamOrder carries the sequencer's ordering decisions.
	StreamOrder = "ab.order"
)

// MsgID identifies a TO-broadcast message network-wide: the originating
// site plus a per-origin sequence number.
type MsgID struct {
	Origin transport.NodeID
	Seq    uint64
}

// String renders "m<origin>.<seq>". Built with strconv rather than
// fmt: the trace ring formats an ID per recorded span, which puts this
// on the traced commit path.
func (m MsgID) String() string {
	b := make([]byte, 1, 16)
	b[0] = 'm'
	b = strconv.AppendInt(b, int64(m.Origin), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, m.Seq, 10)
	return string(b)
}

// EventKind distinguishes the two delivery primitives.
type EventKind int

// Delivery kinds.
const (
	// Opt is a tentative (optimistic) delivery carrying the payload.
	Opt EventKind = iota + 1
	// TO is the definitive delivery; per the paper it carries only the
	// confirmation (the message identifier), the body having been
	// Opt-delivered already.
	TO
)

func (k EventKind) String() string {
	switch k {
	case Opt:
		return "Opt"
	case TO:
		return "TO"
	default:
		return "EventKind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Event is a delivery at one site. The single event stream preserves the
// relative order of Opt and TO deliveries exactly as the protocol emitted
// them, which the transaction manager depends on.
type Event struct {
	Kind    EventKind
	ID      MsgID
	Payload any // set on Opt events only
}

// Broadcaster is one site's attachment to the atomic broadcast.
type Broadcaster interface {
	// Broadcast TO-broadcasts a payload and returns its message ID.
	Broadcast(payload any) (MsgID, error)
	// Deliveries is the ordered stream of Opt and TO events at this site.
	Deliveries() <-chan Event
	// Start launches the engine.
	Start() error
	// Stop terminates the engine and closes Deliveries.
	Stop() error
}

// DataMsg is the wire form of a TO-broadcast payload.
type DataMsg struct {
	ID      MsgID
	Payload any
}

// TraceID surfaces the payload's trace ID (empty when the payload is
// untraced), so TCP frames carrying broadcast bodies expose the trace
// in their headers.
func (d DataMsg) TraceID() string { return transport.TraceOf(d.Payload) }

// OrderMsg is the sequencer's ordering announcement: global sequence
// number Seq is assigned to message ID.
type OrderMsg struct {
	Seq uint64
	ID  MsgID
}

// BodyReq asks peers to retransmit the bodies (DataMsg) of the given
// messages. A rejoining site needs it for messages that were decided in
// the stages it resumes at but whose bodies were broadcast while it was
// down; peers serve from their retained definitive history.
type BodyReq struct {
	IDs []MsgID
}

// DefEntry is one definitive delivery in a site's retained history: the
// message's global definitive position (1-based, identical at every
// site), its identifier, and — once the body has arrived — its payload.
// The retained history is what checkpoint-based recovery streams to a
// rejoining replica to close the gap between the checkpoint index and
// the consensus stage it re-enters at.
type DefEntry struct {
	Seq     uint64
	ID      MsgID
	Payload any
	HasBody bool
}

// RegisterWire registers broadcast message types with the gob codec used
// by the TCP transport. Payload types must be registered separately.
func RegisterWire() {
	transport.Register(DataMsg{}, OrderMsg{}, MsgID{}, []MsgID(nil), BodyReq{}, DefEntry{}, []DefEntry(nil))
}

// Stats are cumulative engine counters, exposed for the experiment
// harness.
type Stats struct {
	// Broadcasts counts locally TO-broadcast messages.
	Broadcasts uint64
	// OptDelivered counts Opt events emitted.
	OptDelivered uint64
	// TODelivered counts TO events emitted.
	TODelivered uint64
	// Stages counts decided consensus stages (Optimistic engine only).
	Stages uint64
	// FastStages counts stages whose decision equalled this site's own
	// proposal — the spontaneous-order fast path.
	FastStages uint64
	// Reorders counts TO deliveries whose definitive position inverted
	// the local optimistic delivery order (Optimistic engine only).
	Reorders uint64
}
