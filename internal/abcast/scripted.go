package abcast

import (
	"sync"

	"otpdb/internal/queue"
	"otpdb/internal/transport"
)

// Scripted is a Broadcaster test double whose delivery schedule is fully
// under the caller's control. It backs the deterministic experiments
// (mismatch-rate sweeps) and the transaction-manager integration tests,
// where the tentative/definitive interleaving must be exact.
type Scripted struct {
	mu      sync.Mutex
	nextSeq uint64
	closed  bool
	// OnBroadcast, when set, is invoked for every Broadcast call instead
	// of the default immediate Opt+TO delivery. The callback typically
	// records the ID and injects deliveries later.
	onBroadcast func(id MsgID, payload any)
	out         *queue.Q[Event]
	origin      transport.NodeID
}

var _ Broadcaster = (*Scripted)(nil)

// NewScripted creates a scripted broadcaster. Without a handler, every
// Broadcast is Opt- and then TO-delivered immediately, in broadcast order.
func NewScripted(origin transport.NodeID, onBroadcast func(id MsgID, payload any)) *Scripted {
	return &Scripted{
		onBroadcast: onBroadcast,
		out:         queue.New[Event](),
		origin:      origin,
	}
}

// Start implements Broadcaster.
func (s *Scripted) Start() error { return nil }

// Stop implements Broadcaster.
func (s *Scripted) Stop() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.out.Close()
	return nil
}

// Broadcast implements Broadcaster.
func (s *Scripted) Broadcast(payload any) (MsgID, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return MsgID{}, transport.ErrClosed
	}
	s.nextSeq++
	id := MsgID{Origin: s.origin, Seq: s.nextSeq}
	handler := s.onBroadcast
	s.mu.Unlock()
	if handler != nil {
		handler(id, payload)
		return id, nil
	}
	s.InjectOpt(id, payload)
	s.InjectTO(id)
	return id, nil
}

// Deliveries implements Broadcaster.
func (s *Scripted) Deliveries() <-chan Event { return s.out.Chan() }

// InjectOpt emits an Opt event.
func (s *Scripted) InjectOpt(id MsgID, payload any) {
	s.out.Push(Event{Kind: Opt, ID: id, Payload: payload})
}

// InjectTO emits a TO event.
func (s *Scripted) InjectTO(id MsgID) {
	s.out.Push(Event{Kind: TO, ID: id})
}
