package abcast

import (
	"sync"

	"otpdb/internal/queue"
	"otpdb/internal/transport"
)

// Sequencer is the conservative atomic broadcast baseline: a fixed
// sequencer site assigns the definitive order, and each site emits the
// Opt and TO events together once the definitive position of a message is
// known. There is no optimism and therefore no opportunity to overlap
// transaction execution with the ordering coordination — exactly the
// classic-ABcast processing model the paper improves upon.
//
// The sequencer site is node 0. The engine assumes the sequencer is
// correct; fault tolerance is the Optimistic engine's job.
type Sequencer struct {
	ep  transport.Endpoint
	out *queue.Q[Event]

	mu      sync.Mutex
	nextSeq uint64
	started bool
	closed  bool
	stats   Stats

	stop chan struct{}
	done chan struct{}

	// Engine-goroutine state.
	payloads    map[MsgID]any
	orderBuf    map[uint64]MsgID
	nextAssign  uint64 // sequencer only: next global sequence to hand out
	nextDeliver uint64
	seen        map[MsgID]bool
}

var _ Broadcaster = (*Sequencer)(nil)

// SequencerNode is the node that assigns the total order.
const SequencerNode transport.NodeID = 0

// NewSequencer creates a conservative broadcaster bound to ep.
func NewSequencer(ep transport.Endpoint) *Sequencer {
	return &Sequencer{
		ep:       ep,
		out:      queue.New[Event](),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		payloads: make(map[MsgID]any),
		orderBuf: make(map[uint64]MsgID),
		seen:     make(map[MsgID]bool),
	}
}

// Start implements Broadcaster.
func (s *Sequencer) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return nil
	}
	s.started = true
	go s.run()
	return nil
}

// Stop implements Broadcaster.
func (s *Sequencer) Stop() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	<-s.done
	s.out.Close()
	return nil
}

// Broadcast implements Broadcaster.
func (s *Sequencer) Broadcast(payload any) (MsgID, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return MsgID{}, transport.ErrClosed
	}
	s.nextSeq++
	id := MsgID{Origin: s.ep.ID(), Seq: s.nextSeq}
	s.stats.Broadcasts++
	s.mu.Unlock()
	if err := s.ep.Broadcast(StreamData, DataMsg{ID: id, Payload: payload}); err != nil {
		return MsgID{}, err
	}
	return id, nil
}

// Deliveries implements Broadcaster.
func (s *Sequencer) Deliveries() <-chan Event { return s.out.Chan() }

// Stats returns a snapshot of the engine counters.
func (s *Sequencer) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Sequencer) run() {
	defer close(s.done)
	data := s.ep.Subscribe(StreamData)
	order := s.ep.Subscribe(StreamOrder)
	for {
		select {
		case env, ok := <-data:
			if !ok {
				return
			}
			if m, ok := env.Msg.(DataMsg); ok {
				s.onData(m)
			}
		case env, ok := <-order:
			if !ok {
				return
			}
			if m, ok := env.Msg.(OrderMsg); ok {
				s.onOrder(m)
			}
		case <-s.stop:
			return
		}
	}
}

func (s *Sequencer) onData(m DataMsg) {
	if s.seen[m.ID] {
		return // duplicate
	}
	s.seen[m.ID] = true
	s.payloads[m.ID] = m.Payload
	if s.ep.ID() == SequencerNode {
		s.nextAssign++
		_ = s.ep.Broadcast(StreamOrder, OrderMsg{Seq: s.nextAssign, ID: m.ID})
	}
	s.flush()
}

func (s *Sequencer) onOrder(m OrderMsg) {
	if _, dup := s.orderBuf[m.Seq]; dup {
		return
	}
	s.orderBuf[m.Seq] = m.ID
	s.flush()
}

// flush emits Opt immediately followed by TO for every message whose
// definitive position is next and whose body has arrived. Head-of-line
// blocking on a missing body or order is what total order requires.
func (s *Sequencer) flush() {
	for {
		id, ok := s.orderBuf[s.nextDeliver+1]
		if !ok {
			return
		}
		payload, have := s.payloads[id]
		if !have {
			return
		}
		s.nextDeliver++
		delete(s.orderBuf, s.nextDeliver)
		delete(s.payloads, id)
		s.mu.Lock()
		s.stats.OptDelivered++
		s.stats.TODelivered++
		s.mu.Unlock()
		s.out.Push(Event{Kind: Opt, ID: id, Payload: payload})
		s.out.Push(Event{Kind: TO, ID: id})
	}
}
