package abcast

import (
	"fmt"
	"testing"
	"time"

	"otpdb/internal/consensus"
	"otpdb/internal/transport"
)

// siteEvents drains one site's deliveries until it has seen wantTO
// TO events, returning the full event sequence.
func siteEvents(t *testing.T, b Broadcaster, wantTO int, timeout time.Duration) []Event {
	t.Helper()
	var events []Event
	seenTO := 0
	deadline := time.After(timeout)
	for seenTO < wantTO {
		select {
		case ev, ok := <-b.Deliveries():
			if !ok {
				t.Fatalf("deliveries closed after %d TO events (want %d)", seenTO, wantTO)
			}
			events = append(events, ev)
			if ev.Kind == TO {
				seenTO++
			}
		case <-deadline:
			t.Fatalf("timed out with %d/%d TO events", seenTO, wantTO)
		}
	}
	return events
}

func toOrder(events []Event) []MsgID {
	var out []MsgID
	for _, ev := range events {
		if ev.Kind == TO {
			out = append(out, ev.ID)
		}
	}
	return out
}

func optOrder(events []Event) []MsgID {
	var out []MsgID
	for _, ev := range events {
		if ev.Kind == Opt {
			out = append(out, ev.ID)
		}
	}
	return out
}

// checkLocalOrder verifies Opt(m) precedes TO(m) for every m.
func checkLocalOrder(t *testing.T, events []Event) {
	t.Helper()
	opted := make(map[MsgID]bool)
	for _, ev := range events {
		switch ev.Kind {
		case Opt:
			if opted[ev.ID] {
				t.Fatalf("%v Opt-delivered twice", ev.ID)
			}
			opted[ev.ID] = true
		case TO:
			if !opted[ev.ID] {
				t.Fatalf("%v TO-delivered before Opt-delivery (Local Order)", ev.ID)
			}
		}
	}
}

func checkSameOrder(t *testing.T, perSite [][]MsgID) {
	t.Helper()
	for s := 1; s < len(perSite); s++ {
		if len(perSite[s]) != len(perSite[0]) {
			t.Fatalf("site %d TO-delivered %d messages, site 0 %d",
				s, len(perSite[s]), len(perSite[0]))
		}
		for i := range perSite[s] {
			if perSite[s][i] != perSite[0][i] {
				t.Fatalf("Global Order violated at position %d: site %d has %v, site 0 has %v",
					i, s, perSite[s][i], perSite[0][i])
			}
		}
	}
}

func startOptimisticGroup(t *testing.T, h *transport.Hub, n int) []*Optimistic {
	t.Helper()
	group := make([]*Optimistic, n)
	for i := 0; i < n; i++ {
		ep := h.Endpoint(transport.NodeID(i))
		cons := consensus.New(consensus.Config{
			Endpoint:     ep,
			RoundTimeout: 50 * time.Millisecond,
		})
		cons.Start()
		o := NewOptimistic(ep, cons)
		if err := o.Start(); err != nil {
			t.Fatal(err)
		}
		group[i] = o
		t.Cleanup(func() {
			_ = o.Stop()
			cons.Stop()
		})
	}
	return group
}

func TestOptimisticDeliversEverywhereInSameOrder(t *testing.T) {
	h := transport.NewHub(3)
	defer h.Close()
	group := startOptimisticGroup(t, h, 3)

	const perSite = 10
	for i := 0; i < perSite; i++ {
		for s, b := range group {
			if _, err := b.Broadcast(fmt.Sprintf("s%d-m%d", s, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	total := perSite * len(group)
	orders := make([][]MsgID, len(group))
	for s, b := range group {
		events := siteEvents(t, b, total, 20*time.Second)
		checkLocalOrder(t, events)
		orders[s] = toOrder(events)
	}
	checkSameOrder(t, orders)
}

func TestOptimisticGlobalOrderUnderJitter(t *testing.T) {
	h := transport.NewHub(3, transport.WithJitter(2*time.Millisecond), transport.WithSeed(17))
	defer h.Close()
	group := startOptimisticGroup(t, h, 3)

	const perSite = 15
	for i := 0; i < perSite; i++ {
		for _, b := range group {
			if _, err := b.Broadcast(i); err != nil {
				t.Fatal(err)
			}
		}
	}
	total := perSite * len(group)
	orders := make([][]MsgID, len(group))
	for s, b := range group {
		events := siteEvents(t, b, total, 30*time.Second)
		checkLocalOrder(t, events)
		orders[s] = toOrder(events)
	}
	checkSameOrder(t, orders)
}

func TestOptimisticOptReflectsReceptionOrder(t *testing.T) {
	h := transport.NewHub(2)
	defer h.Close()
	group := startOptimisticGroup(t, h, 2)

	id1, err := group[0].Broadcast("a")
	if err != nil {
		t.Fatal(err)
	}
	events := siteEvents(t, group[0], 1, 10*time.Second)
	opts := optOrder(events)
	if len(opts) != 1 || opts[0] != id1 {
		t.Fatalf("opt order %v, want [%v]", opts, id1)
	}
	// Payload rides on the Opt event only.
	for _, ev := range events {
		if ev.Kind == Opt && ev.Payload != "a" {
			t.Fatalf("opt payload = %v", ev.Payload)
		}
		if ev.Kind == TO && ev.Payload != nil {
			t.Fatalf("TO event carries payload %v", ev.Payload)
		}
	}
}

func TestOptimisticFastPathCountsStages(t *testing.T) {
	h := transport.NewHub(2)
	defer h.Close()
	group := startOptimisticGroup(t, h, 2)
	for i := 0; i < 5; i++ {
		if _, err := group[0].Broadcast(i); err != nil {
			t.Fatal(err)
		}
		// Pace the sends so tentative orders trivially agree.
		//otplint:allow testpoll fixed-rate pacing of the workload, not a wait for a condition
		time.Sleep(5 * time.Millisecond)
	}
	siteEvents(t, group[0], 5, 10*time.Second)
	st := group[0].Stats()
	if st.Stages == 0 {
		t.Fatal("no stages decided")
	}
	if st.FastStages == 0 {
		t.Fatal("no fast stages despite spontaneous order")
	}
	if st.Broadcasts != 5 || st.TODelivered != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOptimisticStopIsClean(t *testing.T) {
	h := transport.NewHub(2)
	defer h.Close()
	group := startOptimisticGroup(t, h, 2)
	if _, err := group[0].Broadcast("x"); err != nil {
		t.Fatal(err)
	}
	siteEvents(t, group[0], 1, 10*time.Second)
	if err := group[0].Stop(); err != nil {
		t.Fatal(err)
	}
	if err := group[0].Stop(); err != nil {
		t.Fatal(err) // idempotent
	}
	if _, err := group[0].Broadcast("y"); err == nil {
		t.Fatal("broadcast on stopped engine succeeded")
	}
}

func TestSequencerDeliversEverywhereInSameOrder(t *testing.T) {
	h := transport.NewHub(3)
	defer h.Close()
	group := make([]*Sequencer, 3)
	for i := range group {
		group[i] = NewSequencer(h.Endpoint(transport.NodeID(i)))
		if err := group[i].Start(); err != nil {
			t.Fatal(err)
		}
		s := group[i]
		t.Cleanup(func() { _ = s.Stop() })
	}
	const perSite = 10
	for i := 0; i < perSite; i++ {
		for _, b := range group {
			if _, err := b.Broadcast(i); err != nil {
				t.Fatal(err)
			}
		}
	}
	total := perSite * len(group)
	orders := make([][]MsgID, len(group))
	for s, b := range group {
		events := siteEvents(t, b, total, 10*time.Second)
		checkLocalOrder(t, events)
		orders[s] = toOrder(events)
	}
	checkSameOrder(t, orders)
}

func TestSequencerOptAndTOAreAdjacent(t *testing.T) {
	h := transport.NewHub(2)
	defer h.Close()
	group := make([]*Sequencer, 2)
	for i := range group {
		group[i] = NewSequencer(h.Endpoint(transport.NodeID(i)))
		_ = group[i].Start()
		s := group[i]
		t.Cleanup(func() { _ = s.Stop() })
	}
	for i := 0; i < 5; i++ {
		if _, err := group[1].Broadcast(i); err != nil {
			t.Fatal(err)
		}
	}
	events := siteEvents(t, group[0], 5, 10*time.Second)
	// Conservative engine: Opt(m) immediately followed by TO(m).
	for i := 0; i < len(events); i += 2 {
		if events[i].Kind != Opt || events[i+1].Kind != TO || events[i].ID != events[i+1].ID {
			t.Fatalf("events %d,%d = %+v %+v; want adjacent Opt/TO pair",
				i, i+1, events[i], events[i+1])
		}
	}
}

func TestScriptedDefaultImmediateDelivery(t *testing.T) {
	s := NewScripted(0, nil)
	defer func() { _ = s.Stop() }()
	id, err := s.Broadcast("p")
	if err != nil {
		t.Fatal(err)
	}
	ev1 := <-s.Deliveries()
	ev2 := <-s.Deliveries()
	if ev1.Kind != Opt || ev1.ID != id || ev1.Payload != "p" {
		t.Fatalf("first event %+v", ev1)
	}
	if ev2.Kind != TO || ev2.ID != id {
		t.Fatalf("second event %+v", ev2)
	}
}

func TestScriptedCustomSchedule(t *testing.T) {
	var captured []MsgID
	var s *Scripted
	s = NewScripted(1, func(id MsgID, payload any) {
		captured = append(captured, id)
	})
	defer func() { _ = s.Stop() }()
	idA, _ := s.Broadcast("a")
	idB, _ := s.Broadcast("b")
	// Opt in broadcast order, TO reversed.
	s.InjectOpt(idA, "a")
	s.InjectOpt(idB, "b")
	s.InjectTO(idB)
	s.InjectTO(idA)
	var kinds []EventKind
	var ids []MsgID
	for i := 0; i < 4; i++ {
		ev := <-s.Deliveries()
		kinds = append(kinds, ev.Kind)
		ids = append(ids, ev.ID)
	}
	want := []MsgID{idA, idB, idB, idA}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, ids[i], want[i])
		}
	}
	if kinds[0] != Opt || kinds[1] != Opt || kinds[2] != TO || kinds[3] != TO {
		t.Fatalf("kinds = %v", kinds)
	}
	if len(captured) != 2 {
		t.Fatalf("OnBroadcast captured %d ids", len(captured))
	}
}

func TestEventKindString(t *testing.T) {
	if Opt.String() != "Opt" || TO.String() != "TO" {
		t.Fatal("EventKind.String broken")
	}
	if EventKind(9).String() != "EventKind(9)" {
		t.Fatal("unknown kind formatting broken")
	}
}
