package netsim

import (
	"time"

	"otpdb/internal/sim"
)

// SpontaneousExperiment reproduces the Figure 1 measurement: every site
// multicasts one message each Interval, all sites sending concurrently,
// and the per-site reception orders are compared.
type SpontaneousExperiment struct {
	// Sites is the number of sites (the paper used 4).
	Sites int
	// PerSite is the number of messages each site broadcasts.
	PerSite int
	// Interval is the gap between two consecutive messages on each site.
	Interval time.Duration
	// Seed makes the run reproducible.
	Seed int64
	// Config overrides the LAN model; zero-value Sites means "use
	// DefaultLANConfig(Sites)".
	Config Config
}

// Run executes the experiment and returns the spontaneous-order statistics.
//
// Each site sends with an independent random phase in [0, Interval) and a
// ±10% jittered gap, matching unsynchronised real hosts: the paper's sites
// sent "simultaneously" in the sense of concurrently, not clock-aligned.
func (e SpontaneousExperiment) Run() SpontaneousOrderStats {
	if e.Sites <= 0 {
		e.Sites = 4
	}
	if e.PerSite <= 0 {
		e.PerSite = 500
	}
	cfg := e.Config
	if cfg.Sites == 0 {
		cfg = DefaultLANConfig(e.Sites)
	}
	cfg.Sites = e.Sites

	k := sim.New(e.Seed)
	n := New(k, cfg)
	n.EnableReceiveLog()

	rng := k.Rand()
	for s := 0; s < e.Sites; s++ {
		site := SiteID(s)
		at := time.Duration(rng.Int63n(int64(e.Interval) + 1))
		for i := 0; i < e.PerSite; i++ {
			sendAt := sim.Time(at)
			k.At(sendAt, func() { n.Multicast(site, nil) })
			gap := e.Interval
			if gap > 0 {
				// ±10% send-process jitter.
				spread := int64(gap) / 5
				if spread > 0 {
					gap += time.Duration(rng.Int63n(spread)) - time.Duration(spread/2)
				}
			}
			at += gap
		}
	}
	k.Run()

	st := SpontaneousOrder(n.ReceiveLog())
	st.InterSend = e.Interval
	return st
}

// Figure1Point is one x/y sample of the Figure 1 curve.
type Figure1Point struct {
	Interval time.Duration
	Percent  float64
	Messages int
}

// Figure1Curve sweeps the inter-send interval and returns the spontaneous
// order percentage for each point, reproducing Figure 1 of the paper.
func Figure1Curve(sites, perSite int, intervals []time.Duration, seed int64) []Figure1Point {
	points := make([]Figure1Point, 0, len(intervals))
	for i, iv := range intervals {
		st := SpontaneousExperiment{
			Sites:    sites,
			PerSite:  perSite,
			Interval: iv,
			Seed:     seed + int64(i),
		}.Run()
		points = append(points, Figure1Point{
			Interval: iv,
			Percent:  st.Percent(),
			Messages: st.Messages,
		})
	}
	return points
}

// DefaultFigure1Intervals mirrors the x axis of Figure 1 (0 to 5 ms).
func DefaultFigure1Intervals() []time.Duration {
	return []time.Duration{
		50 * time.Microsecond,
		100 * time.Microsecond,
		250 * time.Microsecond,
		500 * time.Microsecond,
		750 * time.Microsecond,
		1 * time.Millisecond,
		1500 * time.Microsecond,
		2 * time.Millisecond,
		2500 * time.Microsecond,
		3 * time.Millisecond,
		3500 * time.Microsecond,
		4 * time.Millisecond,
		4500 * time.Microsecond,
		5 * time.Millisecond,
	}
}
