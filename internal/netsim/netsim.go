// Package netsim models a broadcast local-area network on top of the
// discrete-event kernel in internal/sim.
//
// The model follows the experiment of Figure 1 in Kemme et al. (ICDCS'99):
// n sites connected by a shared 10 Mbit/s Ethernet segment using IP
// multicast. Two physical effects matter for spontaneous total order:
//
//  1. The shared medium serializes frames: concurrent sends are transmitted
//     one after the other (CSMA/CD), so every receiver observes the same
//     "wire order".
//  2. Each receiver adds a small independent delay per frame (interrupt
//     scheduling, protocol-stack queueing). When two frames complete
//     transmission within less than this jitter spread, receivers may
//     disagree on their order.
//
// Spontaneous total order therefore degrades as the inter-send interval
// shrinks toward the frame transmission time — exactly the race Figure 1
// plots (≈99% ordered at 4 ms intervals, low 80s near saturation).
package netsim

import (
	"fmt"
	"time"

	"otpdb/internal/sim"
)

// SiteID identifies a site on the simulated network. Sites are numbered
// from zero.
type SiteID int

// Packet is a message in flight on the simulated network.
type Packet struct {
	From    SiteID
	Seq     uint64 // per-sender sequence number
	Payload any
	SentAt  sim.Time
}

// MsgID uniquely identifies a packet network-wide.
type MsgID struct {
	From SiteID
	Seq  uint64
}

// ID returns the packet's network-wide identifier.
func (p Packet) ID() MsgID { return MsgID{From: p.From, Seq: p.Seq} }

func (m MsgID) String() string { return fmt.Sprintf("m%d.%d", m.From, m.Seq) }

// Handler receives packets delivered to a site, in per-site arrival order.
type Handler func(site SiteID, pkt Packet, at sim.Time)

// Config parameterises the network model.
type Config struct {
	// Sites is the number of sites on the LAN.
	Sites int
	// TxTime is the frame transmission time on the shared medium. While a
	// frame is on the wire, later sends queue behind it (CSMA). Zero
	// models an ideal switched network with no serialization.
	TxTime time.Duration
	// Propagation is the delay common to all receivers of a frame (wire
	// propagation). Sampled once per frame.
	Propagation sim.Dist
	// Jitter is the per-receiver delay added independently for every
	// (frame, receiver) pair. This is what breaks spontaneous order.
	Jitter sim.Dist
	// DropRate is the probability that a (frame, receiver) delivery is
	// lost. The transport above retransmits; the raw LAN does not.
	DropRate float64
}

// DefaultLANConfig returns a configuration calibrated against the paper's
// Figure 1 testbed: 4 UltraSPARC workstations on a shared 10 Mbit/s
// Ethernet. TxTime corresponds to a ~128-byte UDP frame at 10 Mbit/s;
// the receiver jitter is a short exponential tail. With these parameters
// ~99% of messages are spontaneously ordered at a 4 ms inter-send interval,
// decaying into the low-to-mid 80s as the interval approaches zero.
func DefaultLANConfig(sites int) Config {
	return Config{
		Sites:       sites,
		TxTime:      100 * time.Microsecond,
		Propagation: sim.Constant{D: 5 * time.Microsecond},
		Jitter: sim.Exponential{
			MeanD: 33 * time.Microsecond,
			Shift: 5 * time.Microsecond,
		},
	}
}

// Network is a simulated broadcast LAN with a single shared medium.
type Network struct {
	cfg      Config
	kernel   *sim.Kernel
	handlers []Handler
	seq      []uint64 // next per-sender sequence numbers
	recvLog  [][]MsgID
	logging  bool

	// wireFree is the earliest instant the shared medium is idle.
	wireFree sim.Time

	// partitioned[a][b] reports that a cannot reach b.
	partitioned [][]bool

	sent    uint64
	dropped uint64
}

// New creates a network driven by the given kernel.
func New(k *sim.Kernel, cfg Config) *Network {
	if cfg.Sites <= 0 {
		cfg.Sites = 1
	}
	if cfg.Propagation == nil {
		cfg.Propagation = sim.Constant{D: 5 * time.Microsecond}
	}
	if cfg.Jitter == nil {
		cfg.Jitter = sim.Constant{}
	}
	part := make([][]bool, cfg.Sites)
	for i := range part {
		part[i] = make([]bool, cfg.Sites)
	}
	return &Network{
		cfg:         cfg,
		kernel:      k,
		handlers:    make([]Handler, cfg.Sites),
		seq:         make([]uint64, cfg.Sites),
		recvLog:     make([][]MsgID, cfg.Sites),
		partitioned: part,
	}
}

// Sites reports the number of sites.
func (n *Network) Sites() int { return n.cfg.Sites }

// Kernel returns the driving event kernel.
func (n *Network) Kernel() *sim.Kernel { return n.kernel }

// Handle registers the packet handler for a site. Registering nil detaches
// the site (packets to it are dropped silently).
func (n *Network) Handle(site SiteID, h Handler) {
	n.handlers[site] = h
}

// EnableReceiveLog records every delivery order per site, for spontaneous
// order analysis. Call before the simulation starts.
func (n *Network) EnableReceiveLog() { n.logging = true }

// ReceiveLog returns the per-site arrival order of message IDs. The slice
// is shared with the network; callers must not mutate it.
func (n *Network) ReceiveLog() [][]MsgID { return n.recvLog }

// Partition disconnects a from b in both directions.
func (n *Network) Partition(a, b SiteID) {
	n.partitioned[a][b] = true
	n.partitioned[b][a] = true
}

// Heal reconnects a and b.
func (n *Network) Heal(a, b SiteID) {
	n.partitioned[a][b] = false
	n.partitioned[b][a] = false
}

// Stats reports how many frames were sent and how many point deliveries
// were dropped.
func (n *Network) Stats() (sent, dropped uint64) { return n.sent, n.dropped }

// acquireWire reserves the shared medium for one frame starting no earlier
// than now, returning the instant the frame finishes transmitting.
func (n *Network) acquireWire() sim.Time {
	start := n.kernel.Now()
	if n.wireFree > start {
		start = n.wireFree
	}
	done := start + sim.Time(n.cfg.TxTime)
	n.wireFree = done
	return done
}

// Multicast sends payload from site to every site (including the sender:
// the NIC hears its own transmission). It returns the network-wide
// message ID.
func (n *Network) Multicast(from SiteID, payload any) MsgID {
	pkt := Packet{
		From:    from,
		Seq:     n.seq[from],
		Payload: payload,
		SentAt:  n.kernel.Now(),
	}
	n.seq[from]++
	n.sent++

	rng := n.kernel.Rand()
	onWire := n.acquireWire()
	prop := n.cfg.Propagation.Sample(rng)
	for s := 0; s < n.cfg.Sites; s++ {
		site := SiteID(s)
		if n.partitioned[from][site] {
			n.dropped++
			continue
		}
		if n.cfg.DropRate > 0 && rng.Float64() < n.cfg.DropRate {
			n.dropped++
			continue
		}
		at := onWire + sim.Time(prop) + sim.Time(n.cfg.Jitter.Sample(rng))
		n.kernel.At(at, func() { n.deliver(site, pkt) })
	}
	return pkt.ID()
}

// Unicast sends payload from one site to a single destination over the
// same shared medium.
func (n *Network) Unicast(from, to SiteID, payload any) MsgID {
	pkt := Packet{
		From:    from,
		Seq:     n.seq[from],
		Payload: payload,
		SentAt:  n.kernel.Now(),
	}
	n.seq[from]++
	n.sent++

	rng := n.kernel.Rand()
	if n.partitioned[from][to] || (n.cfg.DropRate > 0 && rng.Float64() < n.cfg.DropRate) {
		n.dropped++
		return pkt.ID()
	}
	onWire := n.acquireWire()
	at := onWire + sim.Time(n.cfg.Propagation.Sample(rng)) + sim.Time(n.cfg.Jitter.Sample(rng))
	n.kernel.At(at, func() { n.deliver(to, pkt) })
	return pkt.ID()
}

func (n *Network) deliver(site SiteID, pkt Packet) {
	if n.logging {
		n.recvLog[site] = append(n.recvLog[site], pkt.ID())
	}
	if h := n.handlers[site]; h != nil {
		h(site, pkt, n.kernel.Now())
	}
}
