package netsim

import (
	"testing"
	"time"

	"otpdb/internal/sim"
)

func newTestNet(t *testing.T, sites int, cfg Config) (*sim.Kernel, *Network) {
	t.Helper()
	k := sim.New(11)
	cfg.Sites = sites
	return k, New(k, cfg)
}

func TestMulticastReachesAllSites(t *testing.T) {
	k, n := newTestNet(t, 4, Config{
		Propagation: sim.Constant{D: 100 * time.Microsecond},
		Jitter:      sim.Constant{},
	})
	got := make(map[SiteID]int)
	for s := 0; s < 4; s++ {
		site := SiteID(s)
		n.Handle(site, func(at SiteID, pkt Packet, _ sim.Time) { got[at]++ })
	}
	n.Multicast(0, "hello")
	k.Run()
	for s := 0; s < 4; s++ {
		if got[SiteID(s)] != 1 {
			t.Fatalf("site %d received %d packets, want 1", s, got[SiteID(s)])
		}
	}
}

func TestUnicastReachesOnlyDestination(t *testing.T) {
	k, n := newTestNet(t, 3, Config{})
	got := make(map[SiteID]int)
	for s := 0; s < 3; s++ {
		site := SiteID(s)
		n.Handle(site, func(at SiteID, pkt Packet, _ sim.Time) { got[at]++ })
	}
	n.Unicast(0, 2, "direct")
	k.Run()
	if got[2] != 1 || got[0] != 0 || got[1] != 0 {
		t.Fatalf("unexpected deliveries: %v", got)
	}
}

func TestSequenceNumbersIncrease(t *testing.T) {
	k, n := newTestNet(t, 2, Config{})
	var seqs []uint64
	n.Handle(1, func(_ SiteID, pkt Packet, _ sim.Time) { seqs = append(seqs, pkt.Seq) })
	for i := 0; i < 5; i++ {
		n.Unicast(0, 1, i)
	}
	k.Run()
	if len(seqs) != 5 {
		t.Fatalf("got %d packets, want 5", len(seqs))
	}
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("seq[%d] = %d, want %d", i, s, i)
		}
	}
}

func TestPartitionBlocksAndHealRestores(t *testing.T) {
	k, n := newTestNet(t, 2, Config{})
	received := 0
	n.Handle(1, func(_ SiteID, _ Packet, _ sim.Time) { received++ })

	n.Partition(0, 1)
	n.Unicast(0, 1, "lost")
	k.Run()
	if received != 0 {
		t.Fatalf("partitioned delivery arrived")
	}

	n.Heal(0, 1)
	n.Unicast(0, 1, "found")
	k.Run()
	if received != 1 {
		t.Fatalf("healed delivery missing, received=%d", received)
	}
}

func TestDropRateLosesRoughlyExpectedFraction(t *testing.T) {
	k, n := newTestNet(t, 2, Config{DropRate: 0.5})
	received := 0
	n.Handle(1, func(_ SiteID, _ Packet, _ sim.Time) { received++ })
	const total = 2000
	for i := 0; i < total; i++ {
		n.Unicast(0, 1, i)
	}
	k.Run()
	if received < total/3 || received > 2*total/3 {
		t.Fatalf("drop rate 0.5 delivered %d of %d", received, total)
	}
}

func TestReceiveLogRecordsArrivalOrder(t *testing.T) {
	k, n := newTestNet(t, 2, Config{
		Propagation: sim.Constant{D: time.Millisecond},
	})
	n.EnableReceiveLog()
	n.Multicast(0, "a")
	n.Multicast(1, "b")
	k.Run()
	logs := n.ReceiveLog()
	if len(logs[0]) != 2 || len(logs[1]) != 2 {
		t.Fatalf("logs incomplete: %v", logs)
	}
	// With constant delays and FIFO tie-break both sites see m0.0 then m1.0.
	if logs[0][0] != (MsgID{From: 0, Seq: 0}) || logs[1][0] != (MsgID{From: 0, Seq: 0}) {
		t.Fatalf("unexpected first arrivals: %v", logs)
	}
}

func TestSpontaneousOrderPerfectAgreement(t *testing.T) {
	a := MsgID{From: 0, Seq: 0}
	b := MsgID{From: 1, Seq: 0}
	c := MsgID{From: 2, Seq: 0}
	logs := [][]MsgID{{a, b, c}, {a, b, c}, {a, b, c}}
	st := SpontaneousOrder(logs)
	if st.Messages != 3 || st.Ordered != 3 {
		t.Fatalf("stats = %+v, want 3/3", st)
	}
	if st.Percent() != 100 {
		t.Fatalf("percent = %v, want 100", st.Percent())
	}
}

func TestSpontaneousOrderDetectsSwap(t *testing.T) {
	a := MsgID{From: 0, Seq: 0}
	b := MsgID{From: 1, Seq: 0}
	c := MsgID{From: 2, Seq: 0}
	d := MsgID{From: 3, Seq: 0}
	logs := [][]MsgID{{a, b, c, d}, {a, c, b, d}}
	st := SpontaneousOrder(logs)
	if st.Messages != 4 {
		t.Fatalf("messages = %d, want 4", st.Messages)
	}
	// b and c disagree; a and d agree with everything.
	if st.Ordered != 2 {
		t.Fatalf("ordered = %d, want 2", st.Ordered)
	}
}

func TestSpontaneousOrderSamePositionStillUnordered(t *testing.T) {
	a := MsgID{From: 0, Seq: 0}
	b := MsgID{From: 1, Seq: 0}
	m := MsgID{From: 2, Seq: 0}
	// m holds position 1 at both sites yet its order w.r.t. a and b flips.
	logs := [][]MsgID{{a, m, b}, {b, m, a}}
	st := SpontaneousOrder(logs)
	if st.Ordered != 0 {
		t.Fatalf("ordered = %d, want 0 (pairwise metric)", st.Ordered)
	}
}

func TestSpontaneousOrderIgnoresPartialMessages(t *testing.T) {
	a := MsgID{From: 0, Seq: 0}
	b := MsgID{From: 1, Seq: 0}
	late := MsgID{From: 2, Seq: 0}
	logs := [][]MsgID{{a, b, late}, {a, b}}
	st := SpontaneousOrder(logs)
	if st.Messages != 2 || st.Ordered != 2 {
		t.Fatalf("stats = %+v, want 2/2", st)
	}
}

func TestMatchedPrefixLen(t *testing.T) {
	a := MsgID{From: 0, Seq: 0}
	b := MsgID{From: 1, Seq: 0}
	c := MsgID{From: 2, Seq: 0}
	cases := []struct {
		logs [][]MsgID
		want int
	}{
		{[][]MsgID{{a, b, c}, {a, b, c}}, 3},
		{[][]MsgID{{a, b, c}, {a, c, b}}, 1},
		{[][]MsgID{{a, b}, {a, b, c}}, 2},
		{[][]MsgID{{b}, {a}}, 0},
		{nil, 0},
	}
	for i, tc := range cases {
		if got := MatchedPrefixLen(tc.logs); got != tc.want {
			t.Fatalf("case %d: prefix = %d, want %d", i, got, tc.want)
		}
	}
}

func TestSpontaneousOrderImprovesWithInterval(t *testing.T) {
	run := func(interval time.Duration) float64 {
		st := SpontaneousExperiment{
			Sites:    4,
			PerSite:  300,
			Interval: interval,
			Seed:     99,
		}.Run()
		return st.Percent()
	}
	fast := run(100 * time.Microsecond)
	slow := run(4 * time.Millisecond)
	if slow < 95 {
		t.Fatalf("4ms interval spontaneous order = %.1f%%, want >= 95%% (paper: ~99%%)", slow)
	}
	if fast >= slow {
		t.Fatalf("expected degradation at high rate: fast=%.1f%% slow=%.1f%%", fast, slow)
	}
	if fast < 60 || fast > 97 {
		t.Fatalf("saturation spontaneous order = %.1f%%, want low-to-mid 80s band (60..97)", fast)
	}
}

func TestFigure1CurveMonotoneTrend(t *testing.T) {
	pts := Figure1Curve(4, 200, []time.Duration{
		100 * time.Microsecond, 1 * time.Millisecond, 4 * time.Millisecond,
	}, 7)
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	if !(pts[0].Percent <= pts[1].Percent+2 && pts[1].Percent <= pts[2].Percent+2) {
		t.Fatalf("curve not rising: %.1f %.1f %.1f", pts[0].Percent, pts[1].Percent, pts[2].Percent)
	}
}

func TestWireSerializationOrdersConcurrentSends(t *testing.T) {
	// With zero receiver jitter, the shared medium alone must produce
	// identical reception orders everywhere even for simultaneous sends.
	k := sim.New(3)
	n := New(k, Config{
		Sites:       4,
		TxTime:      100 * time.Microsecond,
		Propagation: sim.Constant{D: 5 * time.Microsecond},
		Jitter:      sim.Constant{},
	})
	n.EnableReceiveLog()
	for s := 0; s < 4; s++ {
		site := SiteID(s)
		k.At(0, func() { n.Multicast(site, nil) })
	}
	k.Run()
	st := SpontaneousOrder(n.ReceiveLog())
	if st.Messages != 4 || st.Ordered != 4 {
		t.Fatalf("wire serialization broken: %+v", st)
	}
}
