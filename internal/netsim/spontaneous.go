package netsim

import "time"

// SpontaneousOrderStats summarises how well reception orders agree across
// sites, the metric plotted in Figure 1 of the paper.
type SpontaneousOrderStats struct {
	// Messages is the number of messages every site received.
	Messages int
	// Ordered is the number of messages whose relative order with respect
	// to every other message is identical at all sites.
	Ordered int
	// InterSend is the per-site interval between consecutive broadcasts.
	InterSend time.Duration
}

// Percent reports the share of spontaneously ordered messages, 0–100.
func (s SpontaneousOrderStats) Percent() float64 {
	if s.Messages == 0 {
		return 100
	}
	return 100 * float64(s.Ordered) / float64(s.Messages)
}

// SpontaneousOrder analyses per-site reception logs. A message m counts as
// spontaneously totally ordered when, for every other message m', all sites
// agree on whether m arrived before m'. This is the strict pairwise
// definition: position equality alone is not sufficient (sites may agree on
// m's index while disagreeing on what preceded it).
//
// Only messages present in every site's log are considered; trailing
// messages still in flight when the measurement window closed are excluded
// by the caller.
func SpontaneousOrder(logs [][]MsgID) SpontaneousOrderStats {
	if len(logs) == 0 {
		return SpontaneousOrderStats{}
	}
	// Position of each message at each site.
	positions := make([]map[MsgID]int, len(logs))
	for s, log := range logs {
		positions[s] = make(map[MsgID]int, len(log))
		for i, id := range log {
			positions[s][id] = i
		}
	}
	// Messages received everywhere.
	var common []MsgID
	for id := range positions[0] {
		everywhere := true
		for s := 1; s < len(positions); s++ {
			if _, ok := positions[s][id]; !ok {
				everywhere = false
				break
			}
		}
		if everywhere {
			common = append(common, id)
		}
	}

	stats := SpontaneousOrderStats{Messages: len(common)}
	for i, m := range common {
		ordered := true
	pairs:
		for j, m2 := range common {
			if i == j {
				continue
			}
			before := positions[0][m] < positions[0][m2]
			for s := 1; s < len(positions); s++ {
				if (positions[s][m] < positions[s][m2]) != before {
					ordered = false
					break pairs
				}
			}
		}
		if ordered {
			stats.Ordered++
		}
	}
	return stats
}

// MatchedPrefixLen returns the length of the longest common prefix of the
// given per-site logs. OPT-ABcast uses prefix agreement as its fast path;
// this helper is shared by its tests and the experiment harness.
func MatchedPrefixLen(logs [][]MsgID) int {
	if len(logs) == 0 {
		return 0
	}
	n := len(logs[0])
	for _, l := range logs[1:] {
		if len(l) < n {
			n = len(l)
		}
	}
	for i := 0; i < n; i++ {
		id := logs[0][i]
		for _, l := range logs[1:] {
			if l[i] != id {
				return i
			}
		}
	}
	return n
}
