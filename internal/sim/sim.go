// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in scheduling order, which —
// together with a seeded random source — makes every simulation run fully
// reproducible. The kernel is intentionally single-threaded: all events run
// on the goroutine that calls Run/Step, so simulated protocol code needs no
// locking of its own.
//
// The network simulator (internal/netsim) and the Figure 1 experiment are
// built on this kernel.
package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Time is an instant of virtual time, expressed as a duration since the
// start of the simulation.
type Time time.Duration

// Duration converts a virtual instant to the duration since simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports the virtual instant in seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // FIFO tie-break for events at the same instant
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Kernel is a deterministic discrete-event scheduler.
//
// The zero value is not usable; construct with New.
type Kernel struct {
	now    Time
	queue  eventHeap
	seq    uint64
	rng    *rand.Rand
	events uint64 // total events executed
}

// New returns a kernel whose random source is seeded with seed.
// Two kernels created with the same seed and fed the same schedule
// produce identical executions.
func New(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// EventsExecuted reports how many events have fired so far.
func (k *Kernel) EventsExecuted() uint64 { return k.events }

// At schedules fn to run at virtual instant t. Scheduling in the past is
// clamped to the current instant, preserving causality.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	heap.Push(&k.queue, &event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d after the current virtual instant.
// Negative d is clamped to zero.
func (k *Kernel) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	k.At(k.now+Time(d), fn)
}

// Step executes the next pending event, advancing the clock to its instant.
// It reports whether an event was executed.
func (k *Kernel) Step() bool {
	if k.queue.Len() == 0 {
		return false
	}
	ev, ok := heap.Pop(&k.queue).(*event)
	if !ok {
		return false
	}
	k.now = ev.at
	k.events++
	ev.fn()
	return true
}

// Run executes events until the queue is drained.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with instants <= deadline, then advances the
// clock to deadline. Events scheduled beyond the deadline remain queued.
func (k *Kernel) RunUntil(deadline Time) {
	for k.queue.Len() > 0 && k.queue[0].at <= deadline {
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return k.queue.Len() }
