package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := New(1)
	var got []int
	k.At(Time(30*time.Millisecond), func() { got = append(got, 3) })
	k.At(Time(10*time.Millisecond), func() { got = append(got, 1) })
	k.At(Time(20*time.Millisecond), func() { got = append(got, 2) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if k.Now() != Time(30*time.Millisecond) {
		t.Fatalf("Now() = %v, want 30ms", k.Now().Duration())
	}
}

func TestKernelSameInstantIsFIFO(t *testing.T) {
	k := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(Time(5*time.Millisecond), func() { got = append(got, i) })
	}
	k.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestKernelAfterIsRelative(t *testing.T) {
	k := New(1)
	var at Time
	k.At(Time(time.Second), func() {
		k.After(time.Second, func() { at = k.Now() })
	})
	k.Run()
	if at != Time(2*time.Second) {
		t.Fatalf("nested After fired at %v, want 2s", at.Duration())
	}
}

func TestKernelPastSchedulingClamps(t *testing.T) {
	k := New(1)
	var fired Time
	k.At(Time(time.Second), func() {
		k.At(0, func() { fired = k.Now() })
	})
	k.Run()
	if fired != Time(time.Second) {
		t.Fatalf("past event fired at %v, want clamp to 1s", fired.Duration())
	}
}

func TestKernelRunUntilLeavesFutureEvents(t *testing.T) {
	k := New(1)
	ran := 0
	k.At(Time(time.Second), func() { ran++ })
	k.At(Time(3*time.Second), func() { ran++ })
	k.RunUntil(Time(2 * time.Second))
	if ran != 1 {
		t.Fatalf("ran %d events, want 1", ran)
	}
	if k.Now() != Time(2*time.Second) {
		t.Fatalf("Now() = %v, want 2s", k.Now().Duration())
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", k.Pending())
	}
}

func TestKernelDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		k := New(seed)
		var out []time.Duration
		d := Exponential{MeanD: time.Millisecond}
		for i := 0; i < 100; i++ {
			k.After(d.Sample(k.Rand()), func() { out = append(out, k.Now().Duration()) })
		}
		k.Run()
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDistributionsNonNegative(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	dists := []Dist{
		Constant{D: time.Millisecond},
		Uniform{Min: 0, Max: time.Millisecond},
		Normal{Mu: time.Millisecond, Sigma: 2 * time.Millisecond},
		Exponential{MeanD: time.Millisecond},
	}
	for _, d := range dists {
		for i := 0; i < 1000; i++ {
			if v := d.Sample(r); v < 0 {
				t.Fatalf("%v sampled negative duration %v", d, v)
			}
		}
	}
}

func TestUniformWithinBounds(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	u := Uniform{Min: time.Millisecond, Max: 2 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		v := u.Sample(r)
		if v < u.Min || v > u.Max {
			t.Fatalf("uniform sample %v out of [%v,%v]", v, u.Min, u.Max)
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	u := Uniform{Min: time.Millisecond, Max: time.Millisecond}
	if v := u.Sample(r); v != time.Millisecond {
		t.Fatalf("degenerate uniform = %v, want 1ms", v)
	}
}

func TestNormalFloor(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := Normal{Mu: 0, Sigma: 10 * time.Millisecond, Floor: time.Millisecond}
	for i := 0; i < 1000; i++ {
		if v := n.Sample(r); v < time.Millisecond {
			t.Fatalf("normal sample %v below floor", v)
		}
	}
}

func TestExponentialMeanApprox(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	e := Exponential{MeanD: time.Millisecond}
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += e.Sample(r)
	}
	mean := sum / n
	if mean < 900*time.Microsecond || mean > 1100*time.Microsecond {
		t.Fatalf("empirical mean %v too far from 1ms", mean)
	}
}

func TestQuickSchedulingNeverLosesEvents(t *testing.T) {
	f := func(delays []uint16) bool {
		k := New(3)
		fired := 0
		for _, d := range delays {
			k.After(time.Duration(d)*time.Microsecond, func() { fired++ })
		}
		k.Run()
		return fired == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickClockMonotone(t *testing.T) {
	f := func(delays []uint16) bool {
		k := New(5)
		last := Time(-1)
		ok := true
		for _, d := range delays {
			k.After(time.Duration(d)*time.Microsecond, func() {
				if k.Now() < last {
					ok = false
				}
				last = k.Now()
			})
		}
		k.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
