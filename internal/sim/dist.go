package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Dist is a distribution over durations, used to model network latency,
// transaction service times and workload interarrival gaps.
//
// Implementations must be safe to share across simulated entities as long
// as Sample is always invoked from the kernel goroutine.
type Dist interface {
	// Sample draws one duration using the supplied random source.
	Sample(r *rand.Rand) time.Duration
	// Mean reports the distribution mean.
	Mean() time.Duration
}

// Constant is a degenerate distribution that always returns D.
type Constant struct{ D time.Duration }

var _ Dist = Constant{}

// Sample implements Dist.
func (c Constant) Sample(*rand.Rand) time.Duration { return c.D }

// Mean implements Dist.
func (c Constant) Mean() time.Duration { return c.D }

func (c Constant) String() string { return fmt.Sprintf("const(%v)", c.D) }

// Uniform draws uniformly from [Min, Max].
type Uniform struct {
	Min, Max time.Duration
}

var _ Dist = Uniform{}

// Sample implements Dist.
func (u Uniform) Sample(r *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(r.Int63n(int64(u.Max-u.Min)+1))
}

// Mean implements Dist.
func (u Uniform) Mean() time.Duration { return (u.Min + u.Max) / 2 }

func (u Uniform) String() string { return fmt.Sprintf("uniform(%v,%v)", u.Min, u.Max) }

// Normal draws from a normal distribution with the given mean and standard
// deviation, truncated below at Floor (defaults to zero) so latencies are
// never negative.
type Normal struct {
	Mu    time.Duration
	Sigma time.Duration
	Floor time.Duration
}

var _ Dist = Normal{}

// Sample implements Dist.
func (n Normal) Sample(r *rand.Rand) time.Duration {
	d := time.Duration(r.NormFloat64()*float64(n.Sigma)) + n.Mu
	if d < n.Floor {
		return n.Floor
	}
	return d
}

// Mean implements Dist.
func (n Normal) Mean() time.Duration { return n.Mu }

func (n Normal) String() string { return fmt.Sprintf("normal(%v,%v)", n.Mu, n.Sigma) }

// Exponential draws from an exponential distribution with the given mean,
// shifted by Shift. It models interarrival gaps of Poisson processes and
// heavy network-jitter tails.
type Exponential struct {
	MeanD time.Duration
	Shift time.Duration
}

var _ Dist = Exponential{}

// Sample implements Dist.
func (e Exponential) Sample(r *rand.Rand) time.Duration {
	return e.Shift + time.Duration(r.ExpFloat64()*float64(e.MeanD))
}

// Mean implements Dist.
func (e Exponential) Mean() time.Duration { return e.Shift + e.MeanD }

func (e Exponential) String() string { return fmt.Sprintf("exp(%v)+%v", e.MeanD, e.Shift) }
