// Package sproc implements the paper's transaction model (Section 2.2):
// all data access happens through predefined stored procedures, one
// transaction per procedure invocation. Because procedures are predefined,
// each one declares up front whether it is an update (bound to a single
// conflict class, broadcast to all sites) or a read-only query (executed
// locally against a snapshot, Section 5).
package sproc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"otpdb/internal/storage"
)

// ClassID names a conflict class; it doubles as the storage partition
// name (classes access disjoint partitions, Section 2.3).
type ClassID string

// UpdateCtx is the data-access interface handed to update procedures. All
// keys implicitly live in the procedure's conflict-class partition.
type UpdateCtx interface {
	// Read returns the value of a key as seen by the transaction.
	Read(key storage.Key) (storage.Value, bool)
	// Write sets a key within the transaction.
	Write(key storage.Key, v storage.Value) error
	// Args returns the invocation arguments.
	Args() []storage.Value
}

// QueryCtx is the data-access interface handed to read-only queries. A
// query may read multiple conflict classes (Section 5); every read is
// served from the query's consistent snapshot.
type QueryCtx interface {
	// Read returns the snapshot value of a key in a class.
	Read(class ClassID, key storage.Key) (storage.Value, bool)
	// Args returns the invocation arguments.
	Args() []storage.Value
}

// UpdateFn is the body of an update procedure. The returned Value is the
// procedure's result: it is computed deterministically at every site, and
// the submitting site hands it back to the client through its transaction
// handle (Result.Value at the otpdb layer). A nil Value is fine for
// procedures with nothing to report. Returning an error aborts nothing at
// the replication level — updates are deterministic and must not fail on
// valid input; an error is reported as a programming bug.
type UpdateFn func(ctx UpdateCtx) (storage.Value, error)

// QueryFn is the body of a read-only query; it returns the query result.
type QueryFn func(ctx QueryCtx) (storage.Value, error)

// Update is a registered update procedure.
type Update struct {
	// Name is the procedure's unique name.
	Name string
	// Class is the conflict class: the transaction may touch only this
	// class's partition, and conflicts are assumed against every other
	// transaction of the class.
	Class ClassID
	// Fn is the procedure body.
	Fn UpdateFn
	// Cost is an optional simulated service time, used by the benchmark
	// workloads to model transactions of a given length. The executor
	// waits Cost before running Fn (abort interrupts the wait).
	Cost time.Duration
}

// Query is a registered read-only procedure.
type Query struct {
	// Name is the procedure's unique name.
	Name string
	// Fn is the procedure body.
	Fn QueryFn
}

// MultiUpdateCtx is the data-access interface of multi-class update
// procedures (the finer-granularity model of the companion report [13]):
// reads and writes are class-qualified, restricted to the declared set.
type MultiUpdateCtx interface {
	// Read returns the value of a key in one of the declared classes.
	Read(class ClassID, key storage.Key) (storage.Value, bool)
	// Write sets a key in one of the declared classes.
	Write(class ClassID, key storage.Key, v storage.Value) error
	// Args returns the invocation arguments.
	Args() []storage.Value
}

// MultiUpdateFn is the body of a multi-class update procedure. Like
// UpdateFn, the returned Value is the procedure's result, delivered to
// the submitting client.
type MultiUpdateFn func(ctx MultiUpdateCtx) (storage.Value, error)

// MultiUpdate declares an update procedure spanning several conflict
// classes. It conflicts with every transaction sharing any of its
// classes; the scheduler runs it only when it heads all of their queues.
type MultiUpdate struct {
	// Name is the procedure's unique name.
	Name string
	// Classes is the set of conflict classes the procedure may touch.
	// For a Dynamic procedure this is only the fallback set; each
	// Request may carry its own.
	Classes []ClassID
	// Fn is the procedure body.
	Fn MultiUpdateFn
	// Cost is an optional simulated service time.
	Cost time.Duration
	// Dynamic marks a procedure whose conflict classes vary per
	// invocation: the broadcast Request carries the class set the
	// scheduler and executor use (Request.Classes), overriding Classes.
	// The cross-shard prepare (internal/shard) is the canonical user —
	// it holds exactly the classes of the transaction it prepares.
	Dynamic bool
}

// TxnControl exposes two scheduler signals to running update procedures.
// The executor's contexts implement it; procedures that must block
// mid-body (the cross-shard prepare parks at the head of its class
// queues until the commit decision arrives) type-assert for it.
type TxnControl interface {
	// Definitive is closed once this transaction's definitive
	// total-order position is fixed: the transaction has been
	// TO-delivered, and since it is running (at the head of all its
	// class queues) no later delivery can displace or abort this
	// attempt. State observed after Definitive is the state every
	// replica observes for this transaction.
	Definitive() <-chan struct{}
	// AbortSignal is closed when the Correctness Check undoes this
	// attempt; the procedure should perform one more context access
	// (which reports the abort to the executor) and return.
	AbortSignal() <-chan struct{}
}

// Errors returned by the registry.
var (
	// ErrDuplicateProc reports a name collision at registration.
	ErrDuplicateProc = errors.New("sproc: procedure already registered")
	// ErrUnknownProc reports a lookup of an unregistered name.
	ErrUnknownProc = errors.New("sproc: unknown procedure")
)

// Registry holds the stored procedures of a database. One registry is
// shared by all replicas of a cluster (procedures must be identical
// everywhere for deterministic re-execution).
type Registry struct {
	mu      sync.RWMutex
	updates map[string]Update
	multis  map[string]MultiUpdate
	queries map[string]Query
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		updates: make(map[string]Update),
		multis:  make(map[string]MultiUpdate),
		queries: make(map[string]Query),
	}
}

// taken reports whether a name is already registered in any namespace.
// Callers must hold r.mu.
func (r *Registry) taken(name string) bool {
	if _, ok := r.updates[name]; ok {
		return true
	}
	if _, ok := r.multis[name]; ok {
		return true
	}
	_, ok := r.queries[name]
	return ok
}

// RegisterUpdate adds an update procedure.
func (r *Registry) RegisterUpdate(u Update) error {
	if u.Name == "" || u.Class == "" || u.Fn == nil {
		return fmt.Errorf("sproc: update needs name, class and body")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.taken(u.Name) {
		return fmt.Errorf("%w: %s", ErrDuplicateProc, u.Name)
	}
	r.updates[u.Name] = u
	return nil
}

// RegisterMulti adds a multi-class update procedure.
func (r *Registry) RegisterMulti(u MultiUpdate) error {
	if u.Name == "" || len(u.Classes) == 0 || u.Fn == nil {
		return fmt.Errorf("sproc: multi-update needs name, classes and body")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.taken(u.Name) {
		return fmt.Errorf("%w: %s", ErrDuplicateProc, u.Name)
	}
	r.multis[u.Name] = u
	return nil
}

// RegisterQuery adds a read-only procedure.
func (r *Registry) RegisterQuery(q Query) error {
	if q.Name == "" || q.Fn == nil {
		return fmt.Errorf("sproc: query needs name and body")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.taken(q.Name) {
		return fmt.Errorf("%w: %s", ErrDuplicateProc, q.Name)
	}
	r.queries[q.Name] = q
	return nil
}

// Multi looks up a multi-class update procedure.
func (r *Registry) Multi(name string) (MultiUpdate, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	u, ok := r.multis[name]
	if !ok {
		return MultiUpdate{}, fmt.Errorf("%w: %s", ErrUnknownProc, name)
	}
	return u, nil
}

// Classes returns the class set of any update procedure (single- or
// multi-class) by name.
func (r *Registry) UpdateClasses(name string) ([]ClassID, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if u, ok := r.updates[name]; ok {
		return []ClassID{u.Class}, nil
	}
	if u, ok := r.multis[name]; ok {
		out := make([]ClassID, len(u.Classes))
		copy(out, u.Classes)
		return out, nil
	}
	return nil, fmt.Errorf("%w: %s", ErrUnknownProc, name)
}

// Update looks up an update procedure.
func (r *Registry) Update(name string) (Update, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	u, ok := r.updates[name]
	if !ok {
		return Update{}, fmt.Errorf("%w: %s", ErrUnknownProc, name)
	}
	return u, nil
}

// Query looks up a read-only procedure.
func (r *Registry) Query(name string) (Query, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	q, ok := r.queries[name]
	if !ok {
		return Query{}, fmt.Errorf("%w: %s", ErrUnknownProc, name)
	}
	return q, nil
}

// UpdateNames lists registered update procedures in sorted order.
func (r *Registry) UpdateNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.updates))
	for n := range r.updates {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// QueryNames lists registered queries in sorted order.
func (r *Registry) QueryNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.queries))
	for n := range r.queries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Classes lists the distinct conflict classes of all update procedures.
func (r *Registry) Classes() []ClassID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	set := make(map[ClassID]bool)
	for _, u := range r.updates {
		set[u.Class] = true
	}
	out := make([]ClassID, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Request is the broadcast payload of an update transaction: the
// procedure name plus its arguments. Stored procedures make requests tiny
// (Section 2.2) — the whole interaction ships in one message. Classes is
// set only for Dynamic multi-class procedures and carries the conflict
// classes of this particular invocation. Trace, when set, is the
// cluster-wide trace ID of the logical transaction this request
// belongs to; it rides the payload so every replica's span records can
// be stitched across sites and shards.
type Request struct {
	Proc    string
	Args    []storage.Value
	Classes []ClassID
	Trace   string
}

// TraceID reports the request's cluster-wide trace ID; it satisfies
// the transport layer's TraceCarrier so TCP frames can surface the ID
// in their headers without decoding the payload.
func (r Request) TraceID() string { return r.Trace }

// RequestClasses resolves the conflict classes of a request: the
// request-carried set for a Dynamic multi-class procedure, the declared
// set otherwise. Carrying classes on a non-dynamic procedure is an
// error — the declaration is the contract every replica schedules by.
func (r *Registry) RequestClasses(req Request) ([]ClassID, error) {
	if len(req.Classes) == 0 {
		return r.UpdateClasses(req.Proc)
	}
	u, err := r.Multi(req.Proc)
	if err != nil {
		return nil, err
	}
	if !u.Dynamic {
		return nil, fmt.Errorf("sproc: %s is not dynamic; request-carried classes rejected", req.Proc)
	}
	out := make([]ClassID, len(req.Classes))
	copy(out, req.Classes)
	return out, nil
}
