package sproc

import (
	"errors"
	"testing"

	"otpdb/internal/storage"
)

func noopUpdate(UpdateCtx) (storage.Value, error) { return nil, nil }
func noopQuery(QueryCtx) (storage.Value, error)   { return nil, nil }

func TestRegisterAndLookupUpdate(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterUpdate(Update{Name: "u", Class: "c", Fn: noopUpdate}); err != nil {
		t.Fatal(err)
	}
	u, err := r.Update("u")
	if err != nil || u.Class != "c" {
		t.Fatalf("lookup = %+v, %v", u, err)
	}
	if _, err := r.Update("missing"); !errors.Is(err, ErrUnknownProc) {
		t.Fatalf("missing lookup err = %v", err)
	}
}

func TestRegisterAndLookupQuery(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterQuery(Query{Name: "q", Fn: noopQuery}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Query("q"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Query("nope"); !errors.Is(err, ErrUnknownProc) {
		t.Fatalf("missing query err = %v", err)
	}
}

func TestNameCollisionsRejected(t *testing.T) {
	r := NewRegistry()
	_ = r.RegisterUpdate(Update{Name: "x", Class: "c", Fn: noopUpdate})
	if err := r.RegisterUpdate(Update{Name: "x", Class: "d", Fn: noopUpdate}); !errors.Is(err, ErrDuplicateProc) {
		t.Fatalf("dup update err = %v", err)
	}
	if err := r.RegisterQuery(Query{Name: "x", Fn: noopQuery}); !errors.Is(err, ErrDuplicateProc) {
		t.Fatalf("query colliding with update err = %v", err)
	}
	_ = r.RegisterQuery(Query{Name: "y", Fn: noopQuery})
	if err := r.RegisterUpdate(Update{Name: "y", Class: "c", Fn: noopUpdate}); !errors.Is(err, ErrDuplicateProc) {
		t.Fatalf("update colliding with query err = %v", err)
	}
}

func TestValidationRejectsIncomplete(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterUpdate(Update{Name: "", Class: "c", Fn: noopUpdate}); err == nil {
		t.Fatal("nameless update accepted")
	}
	if err := r.RegisterUpdate(Update{Name: "u", Class: "", Fn: noopUpdate}); err == nil {
		t.Fatal("classless update accepted")
	}
	if err := r.RegisterUpdate(Update{Name: "u", Class: "c"}); err == nil {
		t.Fatal("bodyless update accepted")
	}
	if err := r.RegisterQuery(Query{Name: "q"}); err == nil {
		t.Fatal("bodyless query accepted")
	}
}

func TestNamesAndClassesSorted(t *testing.T) {
	r := NewRegistry()
	_ = r.RegisterUpdate(Update{Name: "b", Class: "z", Fn: noopUpdate})
	_ = r.RegisterUpdate(Update{Name: "a", Class: "y", Fn: noopUpdate})
	_ = r.RegisterUpdate(Update{Name: "c", Class: "y", Fn: noopUpdate})
	_ = r.RegisterQuery(Query{Name: "q2", Fn: noopQuery})
	_ = r.RegisterQuery(Query{Name: "q1", Fn: noopQuery})

	names := r.UpdateNames()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("update names = %v", names)
	}
	qnames := r.QueryNames()
	if len(qnames) != 2 || qnames[0] != "q1" {
		t.Fatalf("query names = %v", qnames)
	}
	classes := r.Classes()
	if len(classes) != 2 || classes[0] != "y" || classes[1] != "z" {
		t.Fatalf("classes = %v", classes)
	}
}
