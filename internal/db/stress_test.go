package db_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"otpdb/internal/abcast"
	"otpdb/internal/consensus"
	"otpdb/internal/db"
	"otpdb/internal/otp"
	"otpdb/internal/sproc"
	"otpdb/internal/storage"
	"otpdb/internal/transport"
)

// deadlineDump makes stress rounds run without per-Exec timeouts so a
// wedge survives until the 60s diagnostic dump fires. Toggled manually
// while debugging liveness.
const deadlineDump = false

// TestClusterStressWithDiagnostics repeats the converge workload many
// times; on a hang it dumps the broadcast, consensus and scheduler state
// of every site. This is the regression harness for the ordering-layer
// liveness bugs found during development.
func TestClusterStressWithDiagnostics(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rounds := 20
	if deadlineDump {
		rounds = 6
	}
	for round := 0; round < rounds; round++ {
		runStressRound(t, round)
	}
}

func runStressRound(t *testing.T, round int) {
	t.Helper()
	reg := sproc.NewRegistry()
	for c := 0; c < 3; c++ {
		class := sproc.ClassID(fmt.Sprintf("c%d", c))
		if err := reg.RegisterUpdate(sproc.Update{
			Name:  "bump-" + string(class),
			Class: class,
			Fn: func(ctx sproc.UpdateCtx) (storage.Value, error) {
				v, _ := ctx.Read("k")
				next := storage.Int64Value(storage.ValueInt64(v) + 1)
				return next, ctx.Write("k", next)
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	hub := transport.NewHub(3, transport.WithSeed(int64(round)))
	defer hub.Close()
	type site struct {
		rep  *db.Replica
		bc   *abcast.Optimistic
		cons *consensus.Engine
	}
	sites := make([]site, 3)
	for i := 0; i < 3; i++ {
		ep := hub.Endpoint(transport.NodeID(i))
		cons := consensus.New(consensus.Config{Endpoint: ep, RoundTimeout: 50 * time.Millisecond})
		cons.Start()
		bc := abcast.NewOptimistic(ep, cons)
		if err := bc.Start(); err != nil {
			t.Fatal(err)
		}
		rep, err := db.New(db.Config{ID: transport.NodeID(i), Broadcast: bc, Registry: reg})
		if err != nil {
			t.Fatal(err)
		}
		rep.Start()
		sites[i] = site{rep: rep, bc: bc, cons: cons}
	}
	defer func() {
		for _, s := range sites {
			s.rep.Stop()
			_ = s.bc.Stop()
			s.cons.Stop()
		}
	}()

	ctx := context.Background()
	var wg sync.WaitGroup
	const perSite = 15
	for i := range sites {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perSite; j++ {
				ectx := ctx
				cancel := context.CancelFunc(func() {})
				if !deadlineDump {
					ectx, cancel = context.WithTimeout(ctx, 30*time.Second)
				}
				_, err := sites[i].rep.Exec(ectx, fmt.Sprintf("bump-c%d", (i+j)%3))
				cancel()
				if err != nil {
					t.Errorf("round %d site %d txn %d: %v", round, i, j, err)
					return
				}
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		for i, s := range sites {
			t.Logf("site %d abcast: %s", i, s.bc.Dump())
			t.Logf("site %d consensus: %s", i, s.cons.Dump())
			t.Logf("site %d stats: %+v pending=%d", i, s.rep.Manager().Stats(), s.rep.Manager().Pending())
			for c := 0; c < 3; c++ {
				q := s.rep.Manager().QueueSnapshot(otp.ClassID(fmt.Sprintf("c%d", c)))
				if len(q) > 0 {
					t.Logf("site %d queue c%d: %v", i, c, q)
				}
			}
		}
		t.Fatalf("round %d: cluster wedged", round)
	}
}
