package db_test

import (
	"context"
	"testing"
	"time"

	"otpdb/internal/abcast"
	"otpdb/internal/consensus"
	"otpdb/internal/db"
	"otpdb/internal/storage"
	"otpdb/internal/transport"
)

// TestReplicaPrunesVersions drives a replica with a tiny prune interval
// through many updates of one key and verifies that (a) the version
// chain is pruned instead of growing without bound, (b) the watermark
// advanced, and (c) snapshot queries keep working after pruning.
func TestReplicaPrunesVersions(t *testing.T) {
	reg := bankRegistry(t, 1, 1)
	hub := transport.NewHub(1)
	t.Cleanup(hub.Close)
	ep := hub.Endpoint(0)
	cons := consensus.New(consensus.Config{Endpoint: ep, RoundTimeout: 50 * time.Millisecond})
	cons.Start()
	bc := abcast.NewOptimistic(ep, cons)
	if err := bc.Start(); err != nil {
		t.Fatal(err)
	}
	store := storage.NewStore()
	rep, err := db.New(db.Config{
		ID:            0,
		Broadcast:     bc,
		Registry:      reg,
		Store:         store,
		PruneInterval: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Start()
	t.Cleanup(func() {
		rep.Stop()
		_ = bc.Stop()
		cons.Stop()
	})

	const txns = 200
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < txns; i++ {
		if _, err := rep.Exec(ctx, "deposit-c0",
			storage.StringValue("acct0"), storage.Int64Value(1)); err != nil {
			t.Fatal(err)
		}
	}

	if got := store.VersionCount(); got >= txns {
		t.Fatalf("version count %d did not shrink (expected pruning below %d)", got, txns)
	}
	w := store.PruneWatermark("c0")
	if w == 0 {
		t.Fatal("prune watermark never advanced")
	}
	// Queries after pruning still read exact, current snapshots.
	v, err := rep.Query(ctx, "get", storage.StringValue("c0"), storage.StringValue("acct0"))
	if err != nil {
		t.Fatal(err)
	}
	if storage.ValueInt64(v) != txns {
		t.Fatalf("post-prune query = %d, want %d", storage.ValueInt64(v), txns)
	}
	// Raw reads below the watermark fail loudly at the storage layer.
	if _, _, _, err := store.SnapshotReadAt("c0", "acct0", w-1); err == nil {
		t.Fatal("read below watermark succeeded")
	}
}
