package db

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"otpdb/internal/abcast"
	"otpdb/internal/otp"
	"otpdb/internal/sproc"
	"otpdb/internal/storage"
	"otpdb/internal/wal"
)

// executor runs stored procedures on behalf of the OTP scheduler: one
// goroutine per in-flight transaction. Single-class procedures (the
// paper's model) and multi-class procedures (the [13] extension) share
// the same machinery; the storage transaction simply spans one or more
// partitions. The tricky part is the abort path: the scheduler may abort
// a transaction while its goroutine is mid-procedure, so every data
// access is guarded by the attempt's lock and an aborted flag, and
// completions of superseded attempts are fenced by epochs both here and
// in the scheduler.
//
// The scheduler recycles MultiTxn structs after commit, so the executor
// copies everything an attempt needs (ID, classes, payload) out of the
// transaction while Submit holds it live; the execution goroutine never
// dereferences the MultiTxn.
type executor struct {
	r *Replica

	mu           sync.Mutex
	running      map[abcast.MsgID]*attempt
	abortedBelow map[abcast.MsgID]int  // min acceptable epoch per transaction
	toDelivered  map[abcast.MsgID]bool // own TO-delivery seen, not yet committed
}

var _ otp.MultiExecutor = (*executor)(nil)

// attempt is one execution attempt of a transaction. Attempts are
// pooled: the executor map and the execution goroutine each hold one
// reference, and the last release returns the struct to the pool.
type attempt struct {
	id      abcast.MsgID
	parts   []storage.Partition
	req     sproc.Request
	epoch   int
	abortCh chan struct{}
	// toCh is closed (under executor.mu) once the transaction's own
	// TO-delivery reaches a running attempt: the definitive position is
	// fixed and, because the attempt heads all its class queues, no later
	// delivery can displace it. Exposed as sproc.TxnControl.Definitive.
	toCh     chan struct{}
	toClosed bool // guarded by executor.mu
	refs     atomic.Int32

	mu      sync.Mutex
	stx     *storage.MultiTxn
	result  storage.Value // procedure return value, set when the body completes
	aborted bool
}

// attemptPool recycles attempt structs across transactions and retries.
var attemptPool = sync.Pool{New: func() any { return new(attempt) }}

// newAttempt prepares a pooled attempt for one execution, with two
// references (executor map + goroutine).
func newAttempt(id abcast.MsgID, parts []storage.Partition, req sproc.Request, epoch int) *attempt {
	att := attemptPool.Get().(*attempt)
	att.id = id
	att.parts = parts
	att.req = req
	att.epoch = epoch
	att.abortCh = make(chan struct{})
	att.toCh = make(chan struct{})
	att.toClosed = false
	att.refs.Store(2)
	att.stx = nil
	att.result = nil
	att.aborted = false
	return att
}

// release drops one reference and recycles the attempt when both the
// executor map and the goroutine are done with it.
func (a *attempt) release() {
	if a.refs.Add(-1) == 0 {
		a.req = sproc.Request{}
		a.result = nil
		a.stx = nil
		a.parts = nil
		attemptPool.Put(a)
	}
}

func newExecutor(r *Replica) *executor {
	return &executor{
		r:            r,
		running:      make(map[abcast.MsgID]*attempt),
		abortedBelow: make(map[abcast.MsgID]int),
		toDelivered:  make(map[abcast.MsgID]bool),
	}
}

// Submit implements otp.MultiExecutor. It captures everything the
// execution goroutine needs out of tx before returning (the scheduler
// may recycle tx once the transaction commits).
func (e *executor) Submit(tx *otp.MultiTxn, epoch int) {
	req, ok := tx.Payload.(sproc.Request)
	if !ok {
		e.r.failWaiter(tx.ID, fmt.Errorf("db: malformed payload %T", tx.Payload))
		// The transaction stays queued but never reports execution; the
		// protocol treats malformed payloads as fatal to the submitter
		// only (matches the previous behaviour).
		return
	}
	parts := make([]storage.Partition, len(tx.Classes))
	for i, c := range tx.Classes {
		parts[i] = storage.Partition(c)
	}
	e.mu.Lock()
	if epoch < e.abortedBelow[tx.ID] {
		// A racing abort already superseded this submission; the
		// scheduler will resubmit with a fresh epoch.
		e.mu.Unlock()
		return
	}
	att := newAttempt(tx.ID, parts, req, epoch)
	if e.toDelivered[tx.ID] {
		// The transaction was TO-delivered before reaching the head of
		// its queues; this attempt starts out definitive.
		att.toClosed = true
		close(att.toCh)
	}
	e.running[tx.ID] = att
	e.mu.Unlock()
	go e.runTxn(att)
}

// Abort implements otp.MultiExecutor: it undoes the transaction's effects
// and fences the attempt so a still-running procedure stops at its next
// data access. tx.Epoch() is already the post-abort epoch.
func (e *executor) Abort(tx *otp.MultiTxn) {
	e.mu.Lock()
	if tx.Epoch() > e.abortedBelow[tx.ID] {
		e.abortedBelow[tx.ID] = tx.Epoch()
	}
	att := e.running[tx.ID]
	delete(e.running, tx.ID)
	e.mu.Unlock()
	if att == nil {
		return
	}
	att.mu.Lock()
	if !att.aborted {
		att.aborted = true
		close(att.abortCh)
		if att.stx != nil {
			_ = att.stx.Abort()
		}
	}
	att.mu.Unlock()
	att.release()
}

// Commit implements otp.MultiExecutor: the procedure has finished and the
// definitive order is confirmed, so install the writes as versions
// labelled with the transaction's TO index.
func (e *executor) Commit(tx *otp.MultiTxn) {
	e.mu.Lock()
	att := e.running[tx.ID]
	delete(e.running, tx.ID)
	delete(e.abortedBelow, tx.ID)
	delete(e.toDelivered, tx.ID)
	e.mu.Unlock()
	if att == nil || att.stx == nil {
		// Protocol invariant: commit follows a completed execution.
		panic(fmt.Sprintf("db: commit of %v without a completed attempt", tx.ID))
	}
	readSet, writeSet := att.stx.ReadSet(), att.stx.WriteSet()
	if d := e.r.dur; d != nil {
		// Write-ahead: the commit record reaches the log (and, under the
		// per-commit sync policy, stable storage) before the writes are
		// installed and before the submitting client is acknowledged.
		rec := wal.Record{TOIndex: tx.TOIndex(), Writes: att.stx.PendingWrites()}
		if err := d.Append(rec); err != nil {
			e.r.mu.Lock()
			stopped := e.r.stopped
			e.r.mu.Unlock()
			if !stopped {
				panic(fmt.Sprintf("db: WAL append of %v: %v", tx.ID, err))
			}
			// Racing shutdown closed the log; the in-memory commit still
			// proceeds so the scheduler's invariants hold.
		}
	}
	if err := att.stx.Commit(tx.TOIndex()); err != nil {
		panic(fmt.Sprintf("db: commit of %v: %v", tx.ID, err))
	}
	if e.r.hist != nil {
		classes := make([]sproc.ClassID, len(tx.Classes))
		for i, c := range tx.Classes {
			classes[i] = sproc.ClassID(c)
		}
		e.r.hist.RecordUpdate(e.r.id, tx.ID, classes, tx.TOIndex(), readSet, writeSet)
	}
	result := att.result
	if hook := e.r.cfgHook; hook != nil && result != nil {
		// A committed group-configuration command: apply it before the
		// submitter is acknowledged, so membership side effects (quorum,
		// peer set, detector targets) are in place when Exec returns.
		for _, c := range tx.Classes {
			if sproc.ClassID(c) == e.r.cfgClass {
				hook(result, tx.TOIndex())
				break
			}
		}
	}
	// Hand the submitting client its typed outcome now that the writes
	// are installed. (A failing procedure already resolved the waiter
	// with its error; resolveWaiter is then a no-op.)
	att.release()
	e.r.resolveWaiter(tx.ID, CommitResult{Info: CommitInfo{
		Value:     result,
		TOIndex:   tx.TOIndex(),
		Retried:   tx.Aborts() > 0,
		Reordered: tx.Reordered(),
	}})
}

// markTO records the transaction's own TO-delivery and, if an attempt is
// currently running, fixes it as definitive (closes its toCh). Invoked
// from the scheduler's OnTODelivered hook (under the manager lock — keep
// this fast, no callbacks into the manager). A running attempt heads all
// of its class queues, so everything ahead of it has committed at lower
// TO indexes: the transaction's own delivery cannot displace it, and any
// later delivery orders behind it — the attempt is stable. An attempt
// submitted after the flag is set starts out definitive (see Submit).
func (e *executor) markTO(id abcast.MsgID) {
	e.mu.Lock()
	e.toDelivered[id] = true
	if att := e.running[id]; att != nil && !att.toClosed {
		att.toClosed = true
		close(att.toCh)
	}
	e.mu.Unlock()
}

// runTxn executes one attempt of a stored procedure. It works purely
// from the attempt's captured state — never from the scheduler's
// (recyclable) MultiTxn.
func (e *executor) runTxn(att *attempt) {
	defer att.release()

	// Resolve the procedure body and its simulated cost.
	var cost time.Duration
	var runBody func(att *attempt, args []storage.Value) (storage.Value, error)
	if up, err := e.r.reg.Update(att.req.Proc); err == nil {
		cost = up.Cost
		class := storage.Partition(up.Class)
		runBody = func(att *attempt, args []storage.Value) (storage.Value, error) {
			uc := &updateCtx{att: att, class: class, args: args}
			v, perr := up.Fn(uc)
			if perr != nil {
				return nil, perr
			}
			return v, uc.err
		}
	} else if mu, merr := e.r.reg.Multi(att.req.Proc); merr == nil {
		cost = mu.Cost
		runBody = func(att *attempt, args []storage.Value) (storage.Value, error) {
			mc := &multiUpdateCtx{att: att, args: args}
			v, perr := mu.Fn(mc)
			if perr != nil {
				return nil, perr
			}
			return v, mc.err
		}
	} else {
		e.r.failWaiter(att.id, err)
		return
	}

	// Acquire the partitions. A superseded attempt of an overlapping
	// class may hold one for a moment while its abort races; park on the
	// partition's release channel until it frees (or this attempt is
	// itself aborted) — no polling.
	stx, berr := e.r.store.BeginMultiWait(att.parts, e.r.mode, att.abortCh)
	if berr != nil {
		return // canceled: the scheduler aborted this attempt
	}
	att.mu.Lock()
	if att.aborted {
		att.mu.Unlock()
		_ = stx.Abort()
		return
	}
	att.stx = stx
	att.mu.Unlock()

	// Simulated service time, interruptible by abort.
	if cost > 0 {
		select {
		case <-time.After(cost):
		case <-att.abortCh:
			return
		}
	}

	val, perr := runBody(att, att.req.Args)
	if perr != nil {
		if perr == errAborted {
			// Aborted mid-procedure; the scheduler already knows.
			return
		}
		// A failing procedure is a programming error (procedures must be
		// deterministic and total). Keep the protocol live: commit an
		// empty transaction and report the error to the submitter. The
		// wait for fresh partitions runs outside att.mu — a racing Abort
		// must be able to close abortCh while we park.
		att.mu.Lock()
		failed := !att.aborted
		if failed {
			_ = att.stx.Abort()
			att.stx = nil
		}
		att.mu.Unlock()
		if failed {
			fresh, berr := e.r.store.BeginMultiWait(att.parts, e.r.mode, att.abortCh)
			if berr != nil {
				return // aborted while waiting
			}
			att.mu.Lock()
			if att.aborted {
				att.mu.Unlock()
				_ = fresh.Abort()
				return
			}
			att.stx = fresh
			att.mu.Unlock()
		}
		e.r.failWaiter(att.id, perr)
	}

	att.mu.Lock()
	att.result = val
	aborted := att.aborted
	att.mu.Unlock()
	if !aborted {
		e.r.mgr.OnExecuted(att.id, att.epoch)
	}
}

// errAborted is the sentinel recorded when an access hits an aborted
// attempt; the procedure should return promptly (writes fail).
var errAborted = fmt.Errorf("db: transaction aborted by correctness check")

// updateCtx implements sproc.UpdateCtx (single class, unqualified keys)
// with abort fencing.
type updateCtx struct {
	att   *attempt
	class storage.Partition
	args  []storage.Value
	err   error
}

var _ sproc.UpdateCtx = (*updateCtx)(nil)
var _ sproc.TxnControl = (*updateCtx)(nil)

func (c *updateCtx) Args() []storage.Value { return c.args }

// Definitive implements sproc.TxnControl.
func (c *updateCtx) Definitive() <-chan struct{} { return c.att.toCh }

// AbortSignal implements sproc.TxnControl.
func (c *updateCtx) AbortSignal() <-chan struct{} { return c.att.abortCh }

func (c *updateCtx) Read(key storage.Key) (storage.Value, bool) {
	c.att.mu.Lock()
	defer c.att.mu.Unlock()
	if c.att.aborted {
		c.err = errAborted
		return nil, false
	}
	return c.att.stx.Read(c.class, key)
}

func (c *updateCtx) Write(key storage.Key, v storage.Value) error {
	c.att.mu.Lock()
	defer c.att.mu.Unlock()
	if c.att.aborted {
		c.err = errAborted
		return errAborted
	}
	return c.att.stx.Write(c.class, key, v)
}

// multiUpdateCtx implements sproc.MultiUpdateCtx (class-qualified keys)
// with abort fencing.
type multiUpdateCtx struct {
	att  *attempt
	args []storage.Value
	err  error
}

var _ sproc.MultiUpdateCtx = (*multiUpdateCtx)(nil)
var _ sproc.TxnControl = (*multiUpdateCtx)(nil)

func (c *multiUpdateCtx) Args() []storage.Value { return c.args }

// Definitive implements sproc.TxnControl.
func (c *multiUpdateCtx) Definitive() <-chan struct{} { return c.att.toCh }

// AbortSignal implements sproc.TxnControl.
func (c *multiUpdateCtx) AbortSignal() <-chan struct{} { return c.att.abortCh }

func (c *multiUpdateCtx) Read(class sproc.ClassID, key storage.Key) (storage.Value, bool) {
	c.att.mu.Lock()
	defer c.att.mu.Unlock()
	if c.att.aborted {
		c.err = errAborted
		return nil, false
	}
	return c.att.stx.Read(storage.Partition(class), key)
}

func (c *multiUpdateCtx) Write(class sproc.ClassID, key storage.Key, v storage.Value) error {
	c.att.mu.Lock()
	defer c.att.mu.Unlock()
	if c.att.aborted {
		c.err = errAborted
		return errAborted
	}
	return c.att.stx.Write(storage.Partition(class), key, v)
}
