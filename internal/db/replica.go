// Package db assembles one replica of the replicated database: the atomic
// broadcast with optimistic delivery below, the OTP transaction manager in
// the middle, and the versioned storage engine with stored procedures on
// top (Figure 3 of the paper).
//
// Replica control follows Section 2.4 (read-one/write-all): update
// transactions are TO-broadcast and executed at every site; read-only
// queries execute locally against multi-version snapshots (Section 5).
package db

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"otpdb/internal/abcast"
	"otpdb/internal/metrics"
	"otpdb/internal/otp"
	"otpdb/internal/recovery"
	"otpdb/internal/sproc"
	"otpdb/internal/storage"
	"otpdb/internal/transport"
)

// QueryRead is one key observation of a read-only query: the query saw
// the version of Key (in Class) written by the update with TO index
// Version (0 = initial database state).
type QueryRead struct {
	Class   sproc.ClassID
	Key     storage.Key
	Version int64
}

// HistorySink receives committed-transaction and query observations for
// offline serializability checking. Implementations must be safe for
// concurrent use. internal/history provides the standard recorder.
type HistorySink interface {
	// RecordUpdate is called once per committed update transaction, with
	// its full class set and partition-qualified read/write sets.
	RecordUpdate(site transport.NodeID, id abcast.MsgID, classes []sproc.ClassID,
		toIndex int64, readSet, writeSet []storage.ClassKey)
	// RecordQuery is called once per completed read-only query with all
	// the versioned reads it performed. queryIndex is the query's
	// Section 5 index i (the query logically runs at i+0.5).
	RecordQuery(site transport.NodeID, queryIndex int64, reads []QueryRead)
}

// CommitInfo describes one update transaction as committed at this site:
// the procedure's return value, its definitive total-order position, and
// how the optimistic protocol treated it on the way there.
type CommitInfo struct {
	// Value is the stored procedure's return value (may be nil).
	Value storage.Value
	// TOIndex is the definitive (TO-delivery) index of the transaction.
	TOIndex int64
	// Retried reports that the tentative execution was undone by the
	// Correctness Check and redone (CC8: tentative order contradicted).
	Retried bool
	// Reordered reports that TO-delivery moved the transaction ahead of
	// pending transactions in one of its class queues (CC10).
	Reordered bool
}

// CommitResult is what a commit waiter receives: the commit info, or a
// terminal error (failed procedure, malformed request, replica stopped).
type CommitResult struct {
	Info CommitInfo
	Err  error
}

// QueryMode selects how queries read (Section 5 vs the broken baseline).
type QueryMode int

// Query modes.
const (
	// SnapshotQueries is the paper's Section 5 design: a query receives
	// index i+0.5 (i = last TO-delivered transaction) and reads, per
	// class, the latest version with index <= i, waiting for that
	// version's transaction to commit if necessary.
	SnapshotQueries QueryMode = iota + 1
	// DirtyQueries reads the latest committed value with no index
	// discipline — the baseline Section 5 shows violates
	// 1-copy-serializability. Provided for the E5 ablation only.
	DirtyQueries
)

// Config assembles a Replica.
type Config struct {
	// ID is the site identifier (must match the broadcaster's).
	ID transport.NodeID
	// Broadcast is the atomic broadcast attachment. The replica consumes
	// its Deliveries; the caller owns Start/Stop of the engine itself.
	Broadcast abcast.Broadcaster
	// Registry holds the stored procedures (shared across the cluster).
	Registry *sproc.Registry
	// Store is the local storage engine; nil creates an empty one.
	Store *storage.Store
	// WriteMode selects the executor's write strategy (default Buffered).
	WriteMode storage.Mode
	// Queries selects the query strategy (default SnapshotQueries).
	Queries QueryMode
	// History, when non-nil, receives commit and query observations.
	History HistorySink
	// PruneInterval is the number of local commits between version-prune
	// passes: every interval the store's watermark advances to the oldest
	// active query snapshot (or the last TO index when no query is
	// active) and versions below it are discarded. 0 selects the default
	// (1024); negative disables pruning.
	PruneInterval int
	// Durability, when non-nil, makes the replica durable: every
	// definitive commit is appended to the write-ahead log before the
	// submitting client is acknowledged, and a checkpoint is taken every
	// Durability.CheckpointEvery() commits to bound replay. The replica
	// takes ownership: Stop flushes and closes it.
	Durability *recovery.Durability
	// InitialTOIndex resumes the definitive index counter after
	// recovery: the next TO delivery is assigned InitialTOIndex+1. The
	// store must hold exactly the committed state at that index (as
	// Durability.Recover and Cluster.RestartSite arrange).
	InitialTOIndex int64
	// CommitDelay, when positive, models a serial commit-flush device in
	// the definitive delivery path: the delivery loop dwells this long
	// before processing each TO confirmation, the way a per-commit WAL
	// fsync serializes a group's commit pipeline. Benchmarks use it to
	// study shard scaling with a deterministic device instead of the
	// host filesystem (whose shared journal serializes concurrent
	// fsyncs); it composes with — but is independent of — Durability.
	CommitDelay time.Duration
	// ConfigClass, when set together with OnConfigCommit, names the
	// reserved conflict class carrying group-configuration commands
	// (internal/member). Whenever a transaction of that class commits
	// with a non-nil result, OnConfigCommit receives the committed value
	// and its definitive index — before the submitting client is
	// acknowledged, so a successful change is applied locally by the
	// time its Exec returns. The hook runs on the commit path and must
	// not block.
	ConfigClass    sproc.ClassID
	OnConfigCommit func(value storage.Value, toIndex int64)
	// Metrics, when non-nil, registers the replica's scheduler telemetry
	// (commits, CC8 rollbacks, CC10 repositionings, pending depth) under
	// the scope's labels. Collectors pull from the scheduler's existing
	// Stats() snapshot at scrape time — zero cost on the commit path.
	Metrics *metrics.Scope
	// Trace, when non-nil, receives one lifecycle span per transaction
	// event at this site (submit, opt-deliver, to-deliver, commit,
	// abort).
	Trace *metrics.TraceRing
	// Shard stamps trace events with this replica's shard index (purely
	// informational; 0 for unsharded deployments).
	Shard int
}

// defaultPruneInterval is the commit count between prune passes when
// Config.PruneInterval is 0.
const defaultPruneInterval = 1024

// Replica is one site of the replicated database.
type Replica struct {
	id          transport.NodeID
	bcast       abcast.Broadcaster
	reg         *sproc.Registry
	store       *storage.Store
	mode        storage.Mode
	qmode       QueryMode
	hist        HistorySink
	mgr         *otp.MultiManager
	cfgClass    sproc.ClassID
	cfgHook     func(value storage.Value, toIndex int64)
	commitDelay time.Duration
	trace       *metrics.TraceRing
	shard       int
	txnFails    *metrics.Counter

	// traceIDs maps an in-flight message to the cluster-wide trace ID
	// its request carried, so every span this replica records for it can
	// be stitched with spans from other sites; txnKeys interns the
	// formatted message ID so the several spans of one transaction share
	// one string (the traced arm's E7 overhead is almost entirely GC
	// amplification of per-span allocations against a large live heap —
	// the ≤3% budget of DESIGN.md §12 holds only with the interning).
	// Entries are removed at commit/abort; their own mutex keeps span()
	// callable under r.mu.
	traceMu  sync.Mutex
	traceIDs map[abcast.MsgID]string
	txnKeys  map[abcast.MsgID]string

	// stallNanos, when nonzero, adds a sleep before each definitive
	// delivery — the slow-disk fault of the chaos harness (a WAL device
	// that has gone out to lunch). Unlike CommitDelay's load-independent
	// spin (a calibrated benchmark device), the stall is a plain sleep:
	// it models a device that is genuinely blocked, and chaos runs
	// dozens of sites in one process, where spinning would starve the
	// survivors the harness is trying to observe.
	stallNanos atomic.Int64

	mu         sync.Mutex
	waiters    map[abcast.MsgID]func(CommitResult)
	classLast  map[sproc.ClassID]int64 // largest TO index seen per class
	lastTO     int64                   // largest TO index seen overall
	optCount   uint64                  // transactions admitted by the scheduler
	commits    uint64                  // transactions committed locally
	commitCond *sync.Cond
	stopped    bool

	// Version pruning: active query snapshots pin the versions they may
	// still read; every pruneEvery commits the store's watermark advances
	// to the oldest pinned snapshot (or lastTO when none is active).
	activeSnaps map[int64]int // qIndex -> active query count
	pruneEvery  int           // <=0 disables
	sincePrune  int

	// Durability: every commit is WAL-logged by the executor before the
	// client ack; every ckptEvery commits a background checkpoint bounds
	// replay (at most one in flight, extra triggers dropped; Stop joins
	// it via ckptWG before closing the directory, so no checkpoint
	// writer outlives the replica).
	dur       *recovery.Durability
	ckptEvery int
	sinceCkpt int
	ckptWG    sync.WaitGroup

	exec *executor

	stop chan struct{}
	done chan struct{}
}

// Errors returned by the replica.
var (
	// ErrStopped is returned after Stop.
	ErrStopped = errors.New("db: replica stopped")
	// ErrNotUpdate is returned by Exec for a name registered as a query.
	ErrNotUpdate = errors.New("db: procedure is not an update")
)

// New creates a replica. Call Start to begin processing deliveries.
func New(cfg Config) (*Replica, error) {
	if cfg.Broadcast == nil {
		return nil, fmt.Errorf("db: Config.Broadcast is required")
	}
	if cfg.Registry == nil {
		return nil, fmt.Errorf("db: Config.Registry is required")
	}
	if cfg.Store == nil {
		cfg.Store = storage.NewStore()
	}
	if cfg.WriteMode == 0 {
		cfg.WriteMode = storage.Buffered
	}
	if cfg.Queries == 0 {
		cfg.Queries = SnapshotQueries
	}
	pruneEvery := cfg.PruneInterval
	if pruneEvery == 0 {
		pruneEvery = defaultPruneInterval
	}
	r := &Replica{
		id:          cfg.ID,
		bcast:       cfg.Broadcast,
		reg:         cfg.Registry,
		store:       cfg.Store,
		mode:        cfg.WriteMode,
		qmode:       cfg.Queries,
		hist:        cfg.History,
		cfgClass:    cfg.ConfigClass,
		cfgHook:     cfg.OnConfigCommit,
		commitDelay: cfg.CommitDelay,
		trace:       cfg.Trace,
		shard:       cfg.Shard,
		txnFails:    cfg.Metrics.Counter("otp_txn_fail_total"),
		traceIDs:    make(map[abcast.MsgID]string),
		txnKeys:     make(map[abcast.MsgID]string),
		waiters:     make(map[abcast.MsgID]func(CommitResult)),
		classLast:   make(map[sproc.ClassID]int64),
		activeSnaps: make(map[int64]int),
		pruneEvery:  pruneEvery,
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	r.commitCond = sync.NewCond(&r.mu)
	r.exec = newExecutor(r)
	r.mgr = otp.NewMultiManager(r.exec, otp.MultiHooks{
		OnCommit:      r.onCommit,
		OnTODelivered: r.onTODelivered,
	})
	if cfg.Durability != nil {
		r.dur = cfg.Durability
		r.ckptEvery = cfg.Durability.CheckpointEvery()
	}
	// Scheduler telemetry pulls the manager's Stats() snapshot at scrape
	// time; only the registration happens here, nothing on the hot path.
	//otplint:allow metricnames pull-style counter: the Func surfaces the monotonic Stats().Commits total, so _total states its semantics
	cfg.Metrics.Func("otp_commits_total", func() float64 {
		return float64(r.mgr.Stats().Commits)
	})
	//otplint:allow metricnames pull-style counter over monotonic Stats().Aborts
	cfg.Metrics.Func("otp_rollback_total", func() float64 {
		return float64(r.mgr.Stats().Aborts)
	})
	//otplint:allow metricnames pull-style counter over monotonic Stats().Reorders
	cfg.Metrics.Func("otp_reposition_total", func() float64 {
		return float64(r.mgr.Stats().Reorders)
	})
	//otplint:allow metricnames pull-style counter over monotonic Stats().Submits
	cfg.Metrics.Func("otp_submit_total", func() float64 {
		return float64(r.mgr.Stats().Submits)
	})
	cfg.Metrics.Func("otp_pending", func() float64 {
		return float64(r.mgr.Pending())
	})
	cfg.Metrics.Func("otp_last_to_index", func() float64 {
		return float64(r.LastTO())
	})
	if cfg.InitialTOIndex > 0 {
		// Resume after recovery: the definitive counter continues past
		// the recovered index, and the per-class snapshot targets reflect
		// the committed floors the recovered store carries. The admission
		// and commit counters also resume there (each TO delivery commits
		// exactly once, so at quiescence commits == lastTO), keeping
		// WaitCommits thresholds comparable across recovered and
		// never-crashed replicas.
		r.lastTO = cfg.InitialTOIndex
		r.optCount = uint64(cfg.InitialTOIndex)
		r.commits = uint64(cfg.InitialTOIndex)
		r.mgr.StartAt(cfg.InitialTOIndex)
		for _, p := range r.store.Partitions() {
			if lc := r.store.LastCommitted(p); lc > 0 {
				r.classLast[sproc.ClassID(p)] = lc
			}
		}
	}
	return r, nil
}

// span records one lifecycle trace event, stamped with the message's
// cluster-wide trace ID when its request carried one. The nil guard
// keeps the untraced path allocation-free (id.String() would otherwise
// format).
func (r *Replica) span(id abcast.MsgID, span, note string) {
	if r.trace == nil {
		return
	}
	r.traceMu.Lock()
	key, ok := r.txnKeys[id]
	if !ok {
		key = id.String()
		r.txnKeys[id] = key
	}
	tid := r.traceIDs[id]
	r.traceMu.Unlock()
	r.trace.Record(metrics.TraceEvent{
		Txn: key, Trace: tid, Span: span, Site: int(r.id), Shard: r.shard, Note: note,
	})
}

// noteTrace associates a message with the trace ID its request
// carried; forgetTrace drops the association (and the interned key) at
// commit/abort.
func (r *Replica) noteTrace(id abcast.MsgID, tid string) {
	if r.trace == nil || tid == "" {
		return
	}
	r.traceMu.Lock()
	r.traceIDs[id] = tid
	r.traceMu.Unlock()
}

func (r *Replica) forgetTrace(id abcast.MsgID) {
	if r.trace == nil {
		return
	}
	r.traceMu.Lock()
	delete(r.traceIDs, id)
	delete(r.txnKeys, id)
	r.traceMu.Unlock()
}

// onTODelivered tracks the largest definitive index, globally and per
// conflict class; Section 5 queries capture the pair atomically under
// r.mu. Invoked under the scheduler lock, so it must not call back into
// the scheduler (Query reads r.lastTO instead of the scheduler's
// LastTOIndex for the same reason: lock ordering is always mgr.mu ->
// r.mu).
func (r *Replica) onTODelivered(id abcast.MsgID, classes []otp.ClassID, toIndex int64) {
	r.mu.Lock()
	for _, class := range classes {
		if toIndex > r.classLast[sproc.ClassID(class)] {
			r.classLast[sproc.ClassID(class)] = toIndex
		}
	}
	if toIndex > r.lastTO {
		r.lastTO = toIndex
	}
	r.mu.Unlock()
	// Fix the transaction's definitive position for its running attempt
	// (sproc.TxnControl.Definitive) — blocking procedures vote and apply
	// side effects only past this point. markTO takes only the executor
	// lock, so calling it under the scheduler lock is safe.
	r.exec.markTO(id)
}

// Start launches the delivery loop.
func (r *Replica) Start() {
	go r.run()
}

// Stop halts the delivery loop. The broadcaster is not stopped (the
// caller owns it). Outstanding Exec waiters receive ErrStopped.
func (r *Replica) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		<-r.done
		return
	}
	r.stopped = true
	r.mu.Unlock()
	close(r.stop)
	<-r.done
	r.mu.Lock()
	orphans := make([]func(CommitResult), 0, len(r.waiters))
	for id, fn := range r.waiters {
		orphans = append(orphans, fn)
		delete(r.waiters, id)
	}
	r.commitCond.Broadcast()
	r.mu.Unlock()
	for _, fn := range orphans {
		fn(CommitResult{Err: ErrStopped})
	}
	if r.dur != nil {
		// Join any in-flight background checkpoint (its waits resolve
		// with ErrStopped now that stopped is set), then flush the WAL
		// tail so a clean shutdown loses nothing even under the grouped
		// or OS-driven sync policies — and no writer outlives the
		// replica's claim on the data directory (RestartSite reopens it).
		r.ckptWG.Wait()
		_ = r.dur.Close()
	}
}

// ID returns the site identifier.
func (r *Replica) ID() transport.NodeID { return r.id }

// LastTO reports the largest definitive (TO-delivery) index this
// replica has seen — the `to=` field operators read in otpd's STATS
// line to watch a joiner catch up.
func (r *Replica) LastTO() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastTO
}

// SetCommitStall adds an extra dwell before every subsequent definitive
// delivery at this replica, modelling a stalled WAL fsync (slow-disk
// fault injection). It composes with Config.CommitDelay; zero clears
// the stall. Safe to call concurrently with delivery.
func (r *Replica) SetCommitStall(d time.Duration) {
	if d < 0 {
		d = 0
	}
	r.stallNanos.Store(int64(d))
}

// Store returns the local storage engine (for inspection and seeding).
func (r *Replica) Store() *storage.Store { return r.store }

// Manager exposes the OTP scheduler (stats, queue snapshots, invariants).
// Single-class procedures schedule exactly as the paper's Manager; the
// MultiManager generalization also admits multi-class procedures.
func (r *Replica) Manager() *otp.MultiManager { return r.mgr }

// run is the delivery loop: the Tentative/Definitive Atomic Broadcast
// modules of Figure 3 feeding the Serialization and Correctness Check
// modules.
func (r *Replica) run() {
	defer close(r.done)
	for {
		select {
		case ev, ok := <-r.bcast.Deliveries():
			if !ok {
				return
			}
			r.onDelivery(ev)
		case <-r.stop:
			return
		}
	}
}

func (r *Replica) onDelivery(ev abcast.Event) {
	switch ev.Kind {
	case abcast.Opt:
		req, ok := ev.Payload.(sproc.Request)
		if !ok {
			r.failWaiter(ev.ID, fmt.Errorf("db: malformed payload %T", ev.Payload))
			return
		}
		classes, err := r.reg.RequestClasses(req)
		if err != nil {
			r.failWaiter(ev.ID, err)
			return
		}
		otpClasses := make([]otp.ClassID, len(classes))
		for i, c := range classes {
			otpClasses[i] = otp.ClassID(c)
		}
		if err := r.mgr.OnOptDeliver(ev.ID, otpClasses, req); err != nil {
			r.failWaiter(ev.ID, err)
			return
		}
		r.noteTrace(ev.ID, req.Trace)
		r.span(ev.ID, metrics.SpanOptDeliver, "")
		// Count scheduler admissions for WaitCommits: optCount - commits
		// equals the manager's pending set, and both counters live under
		// r.mu so the commit condition can be re-checked race-free.
		r.mu.Lock()
		r.optCount++
		r.mu.Unlock()
	case abcast.TO:
		if stall := time.Duration(r.stallNanos.Load()); stall > 0 {
			time.Sleep(stall)
		}
		if r.commitDelay > 0 {
			// Modeled commit-flush device: serialize the group's
			// definitive pipeline (see Config.CommitDelay). A yielding
			// wall-clock wait, not time.Sleep: timer sleeps on a
			// virtualized host are floored near a millisecond when the
			// process is idle yet approach nominal when it is busy, so a
			// sleep-based device would speed up exactly when more shards
			// keep the CPU warm, inflating scaling results. The elapsed-
			// time check is load-independent; Gosched donates the CPU to
			// real work between checks.
			for start := time.Now(); time.Since(start) < r.commitDelay; {
				runtime.Gosched()
			}
		}
		// Record the class's definitive index for query snapshots before
		// the manager processes the confirmation (queries capture the
		// pair atomically under r.mu).
		r.span(ev.ID, metrics.SpanTODeliver, "")
		if err := r.mgr.OnTODeliver(ev.ID); err != nil {
			// Unknown transaction: the payload was malformed at Opt time
			// and never entered a queue. Already reported.
			return
		}
	}
}

// onCommit tracks the commit counter and signals snapshot and WaitCommits
// waiters. The submitting client's waiter is resolved by the executor
// (which holds the procedure's return value) just before this hook runs.
// Every pruneEvery commits the version store is pruned up to the oldest
// snapshot any active query can still read.
func (r *Replica) onCommit(tx *otp.MultiTxn) {
	r.span(tx.ID, metrics.SpanCommit, "")
	r.forgetTrace(tx.ID)
	r.mu.Lock()
	r.commits++
	r.commitCond.Broadcast()
	horizon := int64(0)
	if r.pruneEvery > 0 {
		r.sincePrune++
		if r.sincePrune >= r.pruneEvery {
			r.sincePrune = 0
			horizon = r.pruneHorizonLocked()
		}
	}
	ckpt := false
	if r.dur != nil && r.ckptEvery > 0 && !r.stopped {
		r.sinceCkpt++
		if r.sinceCkpt >= r.ckptEvery {
			r.sinceCkpt = 0
			// Registered under r.mu: Stop flips stopped under the same
			// lock before joining ckptWG, so no checkpoint goroutine is
			// added after the join begins.
			if r.dur.TryBeginCheckpoint() {
				ckpt = true
				r.ckptWG.Add(1)
			}
		}
	}
	r.mu.Unlock()
	if horizon > 0 {
		// Outside r.mu: pruning walks every partition under its lock.
		r.store.Prune(horizon)
	}
	if ckpt {
		// Background: a checkpoint waits for the commit frontier and
		// walks the whole store; the commit path must not.
		go r.backgroundCheckpoint()
	}
}

// ckptPinTimeout bounds how long a background checkpoint may wait for
// the commit frontier — and therefore how long it may pin versions
// against pruning. Every Replica.Checkpoint caller is expected to bound
// its pin the same way (statex transfers carry their own deadline).
const ckptPinTimeout = 2 * time.Minute

// backgroundCheckpoint takes a consistent checkpoint at the current
// definitive frontier and hands it to the durability layer, which bounds
// the WAL against it. Failures are non-fatal (the log alone still
// recovers everything); the claimed checkpoint slot is always released.
func (r *Replica) backgroundCheckpoint() {
	defer r.ckptWG.Done()
	ctx, cancel := context.WithTimeout(context.Background(), ckptPinTimeout)
	defer cancel()
	ck, err := r.Checkpoint(ctx)
	if err != nil {
		r.dur.ReleaseCheckpoint()
		return
	}
	_ = r.dur.Checkpoint(ck)
}

// Checkpoint captures a consistent snapshot of the committed state at
// this replica's current definitive index: it waits (exactly as a
// Section 5 query would) until every transaction at or below that index
// has committed locally, pins the index against version pruning, and
// serializes the per-key state. The same snapshot serves cold-restart
// checkpoints and live replica catch-up (Cluster.RestartSite streams it
// to the rejoining site).
func (r *Replica) Checkpoint(ctx context.Context) (*storage.Checkpoint, error) {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return nil, ErrStopped
	}
	q := r.lastTO
	targets := make(map[sproc.ClassID]int64, len(r.classLast))
	for c, idx := range r.classLast {
		targets[c] = idx
	}
	// Pin the snapshot against pruning, exactly as queries do.
	r.activeSnaps[q]++
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		if r.activeSnaps[q] <= 1 {
			delete(r.activeSnaps, q)
		} else {
			r.activeSnaps[q]--
		}
		r.mu.Unlock()
	}()
	for _, p := range r.store.Partitions() {
		target := targets[sproc.ClassID(p)]
		if target > q {
			target = q
		}
		if err := r.waitCommitted(ctx, p, target); err != nil {
			return nil, err
		}
	}
	return r.store.CheckpointAt(q), nil
}

// pruneHorizonLocked computes the oldest snapshot index still reachable:
// the minimum over active query snapshots, or the last TO-delivered
// index when no query is active (new queries always start at or above
// it). Callers hold r.mu.
func (r *Replica) pruneHorizonLocked() int64 {
	horizon := r.lastTO
	for idx := range r.activeSnaps {
		if idx < horizon {
			horizon = idx
		}
	}
	return horizon
}

// resolveWaiter pops the waiter registered for id, if any, and invokes it
// outside the replica lock. Each waiter fires at most once.
func (r *Replica) resolveWaiter(id abcast.MsgID, res CommitResult) {
	r.mu.Lock()
	fn, ok := r.waiters[id]
	if ok {
		delete(r.waiters, id)
	}
	r.mu.Unlock()
	if ok {
		fn(res)
	}
}

func (r *Replica) failWaiter(id abcast.MsgID, err error) {
	r.txnFails.Inc()
	r.span(id, metrics.SpanAbort, err.Error())
	r.forgetTrace(id)
	r.resolveWaiter(id, CommitResult{Err: err})
}

// Submit TO-broadcasts an update transaction without waiting for its
// commit. The returned ID can be observed via the scheduler's commit log.
func (r *Replica) Submit(proc string, args ...storage.Value) (abcast.MsgID, error) {
	return r.SubmitNotify(proc, args, nil)
}

// SubmitNotify TO-broadcasts an update transaction and registers fn to be
// called exactly once with the local commit outcome (or a terminal
// error). fn may be nil for fire-and-forget submission. fn runs on a
// protocol goroutine and must not block; hand the result off through a
// buffered channel or by closing a done channel.
//
// The waiter is registered before the broadcast is handed to the network,
// so the commit cannot race past it on a fast in-process transport.
func (r *Replica) SubmitNotify(proc string, args []storage.Value, fn func(CommitResult)) (abcast.MsgID, error) {
	return r.SubmitRequest(sproc.Request{Proc: proc, Args: args}, fn)
}

// SubmitRequest is SubmitNotify for a fully-formed request — the entry
// point for Dynamic procedures, whose per-invocation conflict classes
// ride in Request.Classes.
func (r *Replica) SubmitRequest(req sproc.Request, fn func(CommitResult)) (abcast.MsgID, error) {
	if _, err := r.reg.RequestClasses(req); err != nil {
		if errors.Is(err, sproc.ErrUnknownProc) {
			if _, qerr := r.reg.Query(req.Proc); qerr == nil {
				return abcast.MsgID{}, fmt.Errorf("%w: %s", ErrNotUpdate, req.Proc)
			}
		}
		return abcast.MsgID{}, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return abcast.MsgID{}, ErrStopped
	}
	id, err := r.bcast.Broadcast(req)
	if err != nil {
		return abcast.MsgID{}, err
	}
	if fn != nil {
		r.waiters[id] = fn
	}
	r.noteTrace(id, req.Trace)
	r.span(id, metrics.SpanSubmit, req.Proc)
	return id, nil
}

// Forget deregisters the commit waiter of id, if still pending. The
// transaction itself is unaffected (broadcast is irrevocable); only the
// notification is dropped.
func (r *Replica) Forget(id abcast.MsgID) {
	r.mu.Lock()
	delete(r.waiters, id)
	r.mu.Unlock()
}

// Exec TO-broadcasts an update transaction and waits until it commits
// locally, returning the procedure's value and ordering metadata. On ctx
// cancellation the wait is abandoned but the transaction still commits
// everywhere — broadcast is irrevocable.
func (r *Replica) Exec(ctx context.Context, proc string, args ...storage.Value) (CommitInfo, error) {
	ch := make(chan CommitResult, 1)
	id, err := r.SubmitNotify(proc, args, func(res CommitResult) { ch <- res })
	if err != nil {
		return CommitInfo{}, err
	}
	select {
	case res := <-ch:
		return res.Info, res.Err
	case <-ctx.Done():
		r.Forget(id)
		return CommitInfo{}, ctx.Err()
	}
}

// WaitCommits blocks until this replica has committed at least n update
// transactions and has none pending, or ctx is cancelled. It is driven by
// commit notifications (no polling): every local commit broadcasts the
// replica's condition variable and the predicate is re-checked.
func (r *Replica) WaitCommits(ctx context.Context, n int) error {
	done := make(chan struct{})
	defer close(done)
	if d := ctx.Done(); d != nil {
		go func() {
			select {
			case <-d:
				// Broadcast under r.mu: a lockless broadcast can land
				// between a waiter's predicate check and its re-entry
				// into Wait, and be lost forever.
				r.mu.Lock()
				r.commitCond.Broadcast()
				r.mu.Unlock()
			case <-done:
			}
		}()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for !(r.commits >= uint64(n) && r.optCount == r.commits) && !r.stopped {
		if err := ctx.Err(); err != nil {
			return err
		}
		r.commitCond.Wait()
	}
	if r.stopped {
		return ErrStopped
	}
	return nil
}

// Query runs a read-only stored procedure locally (Section 5). The query
// receives index i+0.5 where i is the index of the last TO-delivered
// transaction at this site; every class it touches is read at the latest
// version with index <= i, waiting for in-flight committable transactions
// of that class when necessary.
func (r *Replica) Query(ctx context.Context, name string, args ...storage.Value) (storage.Value, error) {
	q, err := r.reg.Query(name)
	if err != nil {
		return nil, err
	}
	snap, err := r.BeginSnap(ctx)
	if err != nil {
		return nil, err
	}
	defer snap.Close()

	qc := &queryCtx{snap: snap, args: args}
	res, err := q.Fn(qc)
	if err != nil {
		return nil, err
	}
	if snap.err != nil {
		return nil, snap.err
	}
	if r.hist != nil {
		r.hist.RecordQuery(r.id, snap.qIndex, snap.reads)
	}
	return res, nil
}

// QuerySnap is a pinned consistent read snapshot of this replica — the
// Section 5 query discipline factored out of Query so a multi-shard
// session can hold one snapshot per shard group and route each read to
// the owning shard's. The pin keeps the snapshot's versions alive
// against pruning until Close.
type QuerySnap struct {
	r       *Replica
	ctx     context.Context
	qIndex  int64
	targets map[sproc.ClassID]int64
	reads   []QueryRead
	err     error
	closed  bool
}

// BeginSnap pins a query snapshot at the replica's current definitive
// index. The caller must Close it.
func (r *Replica) BeginSnap(ctx context.Context) (*QuerySnap, error) {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return nil, ErrStopped
	}
	qIndex := r.lastTO
	// Pin the snapshot: versions at or above qIndex survive pruning for
	// as long as this snapshot is open.
	r.activeSnaps[qIndex]++
	// Per-class wait targets: the largest class index <= qIndex, captured
	// atomically with qIndex.
	targets := make(map[sproc.ClassID]int64, len(r.classLast))
	for c, idx := range r.classLast {
		targets[c] = idx
	}
	r.mu.Unlock()
	return &QuerySnap{r: r, ctx: ctx, qIndex: qIndex, targets: targets}, nil
}

// Close releases the snapshot's prune pin. Idempotent.
func (s *QuerySnap) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.r.mu.Lock()
	if s.r.activeSnaps[s.qIndex] <= 1 {
		delete(s.r.activeSnaps, s.qIndex)
	} else {
		s.r.activeSnaps[s.qIndex]--
	}
	s.r.mu.Unlock()
}

// QIndex reports the definitive index the snapshot reads at.
func (s *QuerySnap) QIndex() int64 { return s.qIndex }

// Reads returns the versioned reads performed so far (history recording).
func (s *QuerySnap) Reads() []QueryRead { return s.reads }

// Err reports the first read failure (cancellation, pruned snapshot).
func (s *QuerySnap) Err() error { return s.err }

// Read returns the snapshot value of a key in a class, waiting for the
// class's in-flight committable transactions when necessary.
func (s *QuerySnap) Read(class sproc.ClassID, key storage.Key) (storage.Value, bool) {
	if s.err != nil {
		return nil, false
	}
	part := storage.Partition(class)
	if s.r.qmode == DirtyQueries {
		v, ver, ok := s.r.store.GetVersioned(part, key)
		s.reads = append(s.reads, QueryRead{Class: class, Key: key, Version: ver})
		return v, ok
	}
	// Section 5: wait until the last TO-delivered transaction of this
	// class with index <= qIndex has committed, then read its version.
	target := s.targets[class]
	if target > s.qIndex {
		target = s.qIndex
	}
	if err := s.r.waitCommitted(s.ctx, part, target); err != nil {
		s.err = err
		return nil, false
	}
	v, ver, ok, err := s.r.store.SnapshotReadAt(part, key, s.qIndex)
	if err != nil {
		// ErrSnapshotPruned: the versions this query needs were discarded
		// (the query outlived its pin, a replica-level bug). Fail loudly
		// rather than serve an incomplete snapshot.
		s.err = err
		return nil, false
	}
	s.reads = append(s.reads, QueryRead{Class: class, Key: key, Version: ver})
	return v, ok
}

// queryCtx adapts a QuerySnap to sproc.QueryCtx.
type queryCtx struct {
	snap *QuerySnap
	args []storage.Value
}

var _ sproc.QueryCtx = (*queryCtx)(nil)

func (q *queryCtx) Args() []storage.Value { return q.args }

func (q *queryCtx) Read(class sproc.ClassID, key storage.Key) (storage.Value, bool) {
	return q.snap.Read(class, key)
}

// waitCommitted blocks until the partition's last committed index reaches
// target. Starvation freedom (Theorem 4.1) guarantees progress.
func (r *Replica) waitCommitted(ctx context.Context, part storage.Partition, target int64) error {
	if target == 0 || r.store.LastCommitted(part) >= target {
		return nil
	}
	done := make(chan struct{})
	defer close(done)
	if d := ctx.Done(); d != nil {
		go func() {
			select {
			case <-d:
				// Broadcast under r.mu (see WaitCommits): a lockless
				// broadcast can be lost against a waiter about to Wait.
				r.mu.Lock()
				r.commitCond.Broadcast()
				r.mu.Unlock()
			case <-done:
			}
		}()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.store.LastCommitted(part) < target && !r.stopped {
		if err := ctx.Err(); err != nil {
			return err
		}
		r.commitCond.Wait()
	}
	if r.stopped {
		return ErrStopped
	}
	return nil
}

// RegisterWire registers the payload types the replica broadcasts with
// the gob codec used by the TCP transport.
func RegisterWire() {
	transport.Register(sproc.Request{}, storage.Value(nil), []storage.Value(nil))
}
