package db_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"otpdb/internal/abcast"
	"otpdb/internal/consensus"
	"otpdb/internal/db"
	"otpdb/internal/history"
	"otpdb/internal/sproc"
	"otpdb/internal/storage"
	"otpdb/internal/transport"
)

// bankRegistry builds the test schema: `classes` conflict classes, each a
// partition holding `accounts` integer accounts, with deposit and
// transfer procedures per class and cross-class queries.
func bankRegistry(t *testing.T, classes, accounts int) *sproc.Registry {
	t.Helper()
	reg := sproc.NewRegistry()
	for c := 0; c < classes; c++ {
		class := sproc.ClassID(fmt.Sprintf("c%d", c))
		// deposit-<class>(account, amount)
		if err := reg.RegisterUpdate(sproc.Update{
			Name:  "deposit-" + string(class),
			Class: class,
			Fn: func(ctx sproc.UpdateCtx) (storage.Value, error) {
				acct := storage.Key(storage.ValueString(ctx.Args()[0]))
				amount := storage.ValueInt64(ctx.Args()[1])
				cur, _ := ctx.Read(acct)
				next := storage.Int64Value(storage.ValueInt64(cur) + amount)
				return next, ctx.Write(acct, next)
			},
		}); err != nil {
			t.Fatal(err)
		}
		// transfer-<class>(from, to, amount): conserves the class total.
		if err := reg.RegisterUpdate(sproc.Update{
			Name:  "transfer-" + string(class),
			Class: class,
			Fn: func(ctx sproc.UpdateCtx) (storage.Value, error) {
				from := storage.Key(storage.ValueString(ctx.Args()[0]))
				to := storage.Key(storage.ValueString(ctx.Args()[1]))
				amount := storage.ValueInt64(ctx.Args()[2])
				fv, _ := ctx.Read(from)
				tv, _ := ctx.Read(to)
				if err := ctx.Write(from, storage.Int64Value(storage.ValueInt64(fv)-amount)); err != nil {
					return nil, err
				}
				return nil, ctx.Write(to, storage.Int64Value(storage.ValueInt64(tv)+amount))
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// total(class...): sums every account of the given classes from one
	// consistent snapshot.
	if err := reg.RegisterQuery(sproc.Query{
		Name: "total",
		Fn: func(ctx sproc.QueryCtx) (storage.Value, error) {
			var sum int64
			for _, arg := range ctx.Args() {
				class := sproc.ClassID(storage.ValueString(arg))
				for a := 0; a < accounts; a++ {
					v, _ := ctx.Read(class, storage.Key(fmt.Sprintf("acct%d", a)))
					sum += storage.ValueInt64(v)
				}
			}
			return storage.Int64Value(sum), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	// get(class, account): single-key read.
	if err := reg.RegisterQuery(sproc.Query{
		Name: "get",
		Fn: func(ctx sproc.QueryCtx) (storage.Value, error) {
			class := sproc.ClassID(storage.ValueString(ctx.Args()[0]))
			v, _ := ctx.Read(class, storage.Key(storage.ValueString(ctx.Args()[1])))
			return v, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	return reg
}

// cluster is an in-process replicated database over the optimistic
// atomic broadcast.
type cluster struct {
	hub  *transport.Hub
	reps []*db.Replica
	rec  *history.Recorder
}

type clusterOpts struct {
	jitter  time.Duration
	queries db.QueryMode
	mode    storage.Mode
	seed    func(s *storage.Store)
}

func newCluster(t *testing.T, n int, reg *sproc.Registry, o clusterOpts) *cluster {
	t.Helper()
	var hubOpts []transport.MemOption
	if o.jitter > 0 {
		hubOpts = append(hubOpts, transport.WithJitter(o.jitter), transport.WithSeed(42))
	}
	hub := transport.NewHub(n, hubOpts...)
	rec := history.NewRecorder()
	c := &cluster{hub: hub, rec: rec}
	for i := 0; i < n; i++ {
		ep := hub.Endpoint(transport.NodeID(i))
		cons := consensus.New(consensus.Config{Endpoint: ep, RoundTimeout: 50 * time.Millisecond})
		cons.Start()
		bc := abcast.NewOptimistic(ep, cons)
		if err := bc.Start(); err != nil {
			t.Fatal(err)
		}
		store := storage.NewStore()
		if o.seed != nil {
			o.seed(store)
		}
		rep, err := db.New(db.Config{
			ID:        transport.NodeID(i),
			Broadcast: bc,
			Registry:  reg,
			Store:     store,
			WriteMode: o.mode,
			Queries:   o.queries,
			History:   rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep.Start()
		c.reps = append(c.reps, rep)
		t.Cleanup(func() {
			rep.Stop()
			_ = bc.Stop()
			cons.Stop()
		})
	}
	t.Cleanup(hub.Close)
	return c
}

// quiesce waits until every replica has committed `want` transactions.
func (c *cluster) quiesce(t *testing.T, want int, timeout time.Duration) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	for _, rep := range c.reps {
		if err := rep.WaitCommits(ctx, want); err != nil {
			for i, rep := range c.reps {
				t.Logf("replica %d: committed=%d pending=%d",
					i, len(rep.Manager().Committed()), rep.Manager().Pending())
			}
			t.Fatalf("cluster did not quiesce at %d commits: %v", want, err)
		}
	}
}

func (c *cluster) checkConvergence(t *testing.T) {
	t.Helper()
	d0 := c.reps[0].Store().Digest()
	for i, rep := range c.reps[1:] {
		if rep.Store().Digest() != d0 {
			t.Fatalf("replica %d diverged from replica 0", i+1)
		}
	}
	for i, rep := range c.reps {
		if err := rep.Manager().CheckInvariants(); err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
	}
	if err := c.rec.Check(); err != nil {
		t.Fatalf("history check: %v", err)
	}
}

func TestExecSingleReplica(t *testing.T) {
	reg := bankRegistry(t, 1, 4)
	c := newCluster(t, 1, reg, clusterOpts{})
	ctx := context.Background()
	if _, err := c.reps[0].Exec(ctx, "deposit-c0", storage.StringValue("acct0"), storage.Int64Value(100)); err != nil {
		t.Fatal(err)
	}
	v, ok := c.reps[0].Store().Get("c0", "acct0")
	if !ok || storage.ValueInt64(v) != 100 {
		t.Fatalf("acct0 = %v,%v", storage.ValueInt64(v), ok)
	}
	c.checkConvergence(t)
}

func TestClusterConvergesAndIsSerializable(t *testing.T) {
	reg := bankRegistry(t, 3, 4)
	c := newCluster(t, 3, reg, clusterOpts{})
	ctx := context.Background()
	var wg sync.WaitGroup
	const perReplica = 20
	for i, rep := range c.reps {
		wg.Add(1)
		go func(i int, rep *db.Replica) {
			defer wg.Done()
			for j := 0; j < perReplica; j++ {
				class := fmt.Sprintf("c%d", (i+j)%3)
				acct := fmt.Sprintf("acct%d", j%4)
				if _, err := rep.Exec(ctx, "deposit-"+class,
					storage.StringValue(acct), storage.Int64Value(1)); err != nil {
					t.Errorf("exec: %v", err)
					return
				}
			}
		}(i, rep)
	}
	wg.Wait()
	c.quiesce(t, 3*perReplica, 30*time.Second)
	c.checkConvergence(t)
}

func TestClusterConvergesUnderJitter(t *testing.T) {
	reg := bankRegistry(t, 2, 4)
	c := newCluster(t, 3, reg, clusterOpts{jitter: 2 * time.Millisecond})
	ctx := context.Background()
	var wg sync.WaitGroup
	const perReplica = 15
	for i, rep := range c.reps {
		wg.Add(1)
		go func(i int, rep *db.Replica) {
			defer wg.Done()
			for j := 0; j < perReplica; j++ {
				class := fmt.Sprintf("c%d", j%2)
				if _, err := rep.Exec(ctx, "deposit-"+class,
					storage.StringValue("acct0"), storage.Int64Value(1)); err != nil {
					t.Errorf("exec: %v", err)
					return
				}
			}
		}(i, rep)
	}
	wg.Wait()
	c.quiesce(t, 3*perReplica, 30*time.Second)
	c.checkConvergence(t)
	// Final balance must equal the total number of deposits at every site.
	for i, rep := range c.reps {
		var sum int64
		for _, class := range []storage.Partition{"c0", "c1"} {
			v, _ := rep.Store().Get(class, "acct0")
			sum += storage.ValueInt64(v)
		}
		if sum != 3*perReplica {
			t.Fatalf("replica %d: sum = %d, want %d", i, sum, 3*perReplica)
		}
	}
}

func TestSnapshotQueriesSeeConsistentTotals(t *testing.T) {
	reg := bankRegistry(t, 2, 2)
	seed := func(s *storage.Store) {
		for _, class := range []storage.Partition{"c0", "c1"} {
			s.Load(class, "acct0", storage.Int64Value(500))
			s.Load(class, "acct1", storage.Int64Value(500))
		}
	}
	c := newCluster(t, 2, reg, clusterOpts{seed: seed})
	ctx := context.Background()

	stopUpdates := make(chan struct{})
	var updWG sync.WaitGroup
	updWG.Add(1)
	go func() {
		defer updWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopUpdates:
				return
			default:
			}
			class := fmt.Sprintf("c%d", i%2)
			_, _ = c.reps[i%2].Exec(ctx, "transfer-"+class,
				storage.StringValue("acct0"), storage.StringValue("acct1"), storage.Int64Value(7))
		}
	}()

	// Transfers conserve per-class totals, so any consistent snapshot
	// reads exactly 1000 per class (2000 for both).
	for i := 0; i < 50; i++ {
		rep := c.reps[i%2]
		v, err := rep.Query(ctx, "total", storage.StringValue("c0"), storage.StringValue("c1"))
		if err != nil {
			t.Fatal(err)
		}
		if got := storage.ValueInt64(v); got != 2000 {
			t.Fatalf("query %d: total = %d, want 2000 (inconsistent snapshot)", i, got)
		}
	}
	close(stopUpdates)
	updWG.Wait()
	committed := len(c.reps[0].Manager().Committed())
	c.quiesce(t, committed, 30*time.Second)
	c.checkConvergence(t)
}

func TestQueryDoesNotBlockUpdates(t *testing.T) {
	reg := bankRegistry(t, 1, 2)
	c := newCluster(t, 1, reg, clusterOpts{})
	ctx := context.Background()
	// A query takes its snapshot, then updates proceed immediately; the
	// query result is unaffected by them.
	if _, err := c.reps[0].Exec(ctx, "deposit-c0", storage.StringValue("acct0"), storage.Int64Value(10)); err != nil {
		t.Fatal(err)
	}
	v, err := c.reps[0].Query(ctx, "get", storage.StringValue("c0"), storage.StringValue("acct0"))
	if err != nil {
		t.Fatal(err)
	}
	if storage.ValueInt64(v) != 10 {
		t.Fatalf("get = %d", storage.ValueInt64(v))
	}
	if _, err := c.reps[0].Exec(ctx, "deposit-c0", storage.StringValue("acct0"), storage.Int64Value(5)); err != nil {
		t.Fatal(err)
	}
	v2, err := c.reps[0].Query(ctx, "get", storage.StringValue("c0"), storage.StringValue("acct0"))
	if err != nil {
		t.Fatal(err)
	}
	if storage.ValueInt64(v2) != 15 {
		t.Fatalf("get after second deposit = %d", storage.ValueInt64(v2))
	}
}

func TestExecErrors(t *testing.T) {
	reg := bankRegistry(t, 1, 1)
	c := newCluster(t, 1, reg, clusterOpts{})
	ctx := context.Background()
	if _, err := c.reps[0].Exec(ctx, "no-such-proc"); !errors.Is(err, sproc.ErrUnknownProc) {
		t.Fatalf("unknown proc err = %v", err)
	}
	if _, err := c.reps[0].Exec(ctx, "total"); !errors.Is(err, db.ErrNotUpdate) {
		t.Fatalf("query-as-update err = %v", err)
	}
	if _, err := c.reps[0].Query(ctx, "deposit-c0"); !errors.Is(err, sproc.ErrUnknownProc) {
		t.Fatalf("update-as-query err = %v", err)
	}
}

func TestFailingProcedureReportsButStaysLive(t *testing.T) {
	reg := bankRegistry(t, 1, 1)
	boom := errors.New("boom")
	if err := reg.RegisterUpdate(sproc.Update{
		Name:  "failing",
		Class: "c0",
		Fn:    func(sproc.UpdateCtx) (storage.Value, error) { return nil, boom },
	}); err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, 1, reg, clusterOpts{})
	ctx := context.Background()
	if _, err := c.reps[0].Exec(ctx, "failing"); !errors.Is(err, boom) {
		t.Fatalf("failing proc err = %v", err)
	}
	// The class queue must not be stuck.
	if _, err := c.reps[0].Exec(ctx, "deposit-c0", storage.StringValue("acct0"), storage.Int64Value(1)); err != nil {
		t.Fatal(err)
	}
}

func TestExecContextCancellation(t *testing.T) {
	reg := bankRegistry(t, 1, 1)
	if err := reg.RegisterUpdate(sproc.Update{
		Name:  "slow",
		Class: "c0",
		Cost:  200 * time.Millisecond,
		Fn:    func(sproc.UpdateCtx) (storage.Value, error) { return nil, nil },
	}); err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, 1, reg, clusterOpts{})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := c.reps[0].Exec(ctx, "slow")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// The broadcast is irrevocable: the transaction still commits.
	c.quiesce(t, 1, 10*time.Second)
}

func TestInPlaceUndoModeConverges(t *testing.T) {
	reg := bankRegistry(t, 2, 2)
	c := newCluster(t, 2, reg, clusterOpts{mode: storage.InPlaceUndo, jitter: time.Millisecond})
	ctx := context.Background()
	var wg sync.WaitGroup
	const perReplica = 10
	for i, rep := range c.reps {
		wg.Add(1)
		go func(i int, rep *db.Replica) {
			defer wg.Done()
			for j := 0; j < perReplica; j++ {
				class := fmt.Sprintf("c%d", j%2)
				if _, err := rep.Exec(ctx, "deposit-"+class,
					storage.StringValue("acct0"), storage.Int64Value(2)); err != nil {
					t.Errorf("exec: %v", err)
					return
				}
			}
		}(i, rep)
	}
	wg.Wait()
	c.quiesce(t, 2*perReplica, 30*time.Second)
	c.checkConvergence(t)
}

func TestStopUnblocksWaiters(t *testing.T) {
	reg := bankRegistry(t, 1, 1)
	if err := reg.RegisterUpdate(sproc.Update{
		Name:  "verySlow",
		Class: "c0",
		Cost:  5 * time.Second,
		Fn:    func(sproc.UpdateCtx) (storage.Value, error) { return nil, nil },
	}); err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, 1, reg, clusterOpts{})
	errCh := make(chan error, 1)
	go func() {
		_, err := c.reps[0].Exec(context.Background(), "verySlow")
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond)
	c.reps[0].Stop()
	select {
	case err := <-errCh:
		if !errors.Is(err, db.ErrStopped) {
			t.Fatalf("err = %v, want ErrStopped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not released on Stop")
	}
}
