package member

import (
	"errors"
	"strings"
	"testing"

	"otpdb/internal/sproc"
	"otpdb/internal/storage"
	"otpdb/internal/transport"
)

func bootstrap3() Config {
	return Bootstrap(map[transport.NodeID]string{0: ":9000", 1: ":9001", 2: ":9002"})
}

func TestBootstrapSortedEpoch1(t *testing.T) {
	cfg := bootstrap3()
	if cfg.Epoch != 1 || len(cfg.Members) != 3 {
		t.Fatalf("bootstrap = %v", cfg)
	}
	for i, m := range cfg.Members {
		if m.ID != transport.NodeID(i) {
			t.Fatalf("members not sorted: %v", cfg.Members)
		}
	}
	if cfg.Quorum() != 2 {
		t.Fatalf("quorum = %d, want 2", cfg.Quorum())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, cfg := range []Config{
		bootstrap3(),
		Bootstrap(map[transport.NodeID]string{0: "", 1: "", 2: ""}), // in-process: empty addrs
		{Epoch: 42, Members: []Site{{ID: 7, Addr: "10.0.0.1:9"}}},
	} {
		back, err := Decode(Encode(cfg))
		if err != nil {
			t.Fatalf("decode(%v): %v", cfg, err)
		}
		if back.Epoch != cfg.Epoch || len(back.Members) != len(cfg.Members) {
			t.Fatalf("round trip %v -> %v", cfg, back)
		}
		for i := range cfg.Members {
			if back.Members[i] != cfg.Members[i] {
				t.Fatalf("member %d: %v != %v", i, back.Members[i], cfg.Members[i])
			}
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a := Encode(bootstrap3())
	b := Encode(bootstrap3())
	if string(a) != string(b) {
		t.Fatal("encoding not deterministic")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, v := range []string{"", "bogus", "e1\nnotanumber :9\n", "e1\n"} {
		if _, err := Decode(storage.Value(v)); err == nil {
			t.Fatalf("decoded garbage %q", v)
		}
	}
}

func TestSuccessorOperations(t *testing.T) {
	cfg := bootstrap3()

	grown, err := cfg.WithAdd(Site{ID: 3, Addr: ":9003"})
	if err != nil {
		t.Fatal(err)
	}
	if grown.Epoch != 2 || len(grown.Members) != 4 || !grown.Has(3) || grown.Quorum() != 3 {
		t.Fatalf("add = %v", grown)
	}
	if _, err := cfg.WithAdd(Site{ID: 1}); err == nil {
		t.Fatal("re-adding an existing member succeeded")
	}
	// The parent configuration is never mutated by a successor.
	if len(cfg.Members) != 3 || cfg.Epoch != 1 {
		t.Fatalf("parent mutated: %v", cfg)
	}

	shrunk, err := grown.WithRemove(2)
	if err != nil {
		t.Fatal(err)
	}
	if shrunk.Epoch != 3 || len(shrunk.Members) != 3 || shrunk.Has(2) || shrunk.Quorum() != 2 {
		t.Fatalf("remove = %v", shrunk)
	}
	if _, err := shrunk.WithRemove(9); err == nil {
		t.Fatal("removing a non-member succeeded")
	}
	single := Config{Epoch: 5, Members: []Site{{ID: 0}}}
	if _, err := single.WithRemove(0); err == nil {
		t.Fatal("removing the last member succeeded")
	}

	replaced, err := cfg.WithReplace(2, ":9999")
	if err != nil {
		t.Fatal(err)
	}
	if replaced.Epoch != 2 || len(replaced.Members) != 3 {
		t.Fatalf("replace = %v", replaced)
	}
	if s, _ := replaced.Site(2); s.Addr != ":9999" {
		t.Fatalf("replaced addr = %q", s.Addr)
	}
	if s, _ := cfg.Site(2); s.Addr != ":9002" {
		t.Fatal("replace mutated the parent config")
	}
	if _, err := cfg.WithReplace(9, ":1"); err == nil {
		t.Fatal("replacing a non-member succeeded")
	}
}

// fakeCtx backs the reserved procedure with a plain map, standing in for
// the executor's transaction context.
type fakeCtx struct {
	vals map[storage.Key]storage.Value
	args []storage.Value
}

func (c *fakeCtx) Args() []storage.Value { return c.args }
func (c *fakeCtx) Read(k storage.Key) (storage.Value, bool) {
	v, ok := c.vals[k]
	return v, ok
}
func (c *fakeCtx) Write(k storage.Key, v storage.Value) error {
	c.vals[k] = v
	return nil
}

func changeProc(t *testing.T) sproc.Update {
	t.Helper()
	reg := sproc.NewRegistry()
	if err := RegisterProc(reg); err != nil {
		t.Fatal(err)
	}
	up, err := reg.Update(Proc)
	if err != nil {
		t.Fatal(err)
	}
	return up
}

func TestChangeProcAppliesSuccessor(t *testing.T) {
	up := changeProc(t)
	cfg := bootstrap3()
	next, _ := cfg.WithReplace(2, ":9999")
	ctx := &fakeCtx{vals: map[storage.Key]storage.Value{Key: Encode(cfg)}, args: []storage.Value{Encode(next)}}
	val, err := up.Fn(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(ctx.vals[Key])
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 2 {
		t.Fatalf("committed epoch = %d", got.Epoch)
	}
	if string(val) != string(Encode(next)) {
		t.Fatal("procedure result is not the committed encoding")
	}
}

func TestChangeProcRejectsEpochConflict(t *testing.T) {
	up := changeProc(t)
	cfg := bootstrap3()
	next, _ := cfg.WithAdd(Site{ID: 3})
	stale := next // epoch 2
	// Another change won the race: committed config is already epoch 2.
	committed, _ := cfg.WithRemove(2)
	ctx := &fakeCtx{vals: map[storage.Key]storage.Value{Key: Encode(committed)}, args: []storage.Value{Encode(stale)}}
	if _, err := up.Fn(ctx); !errors.Is(err, ErrEpochConflict) {
		t.Fatalf("err = %v, want ErrEpochConflict", err)
	}
	// The committed config is untouched.
	if got, _ := Decode(ctx.vals[Key]); got.Epoch != 2 || got.Has(3) {
		t.Fatalf("committed config mutated: %v", got)
	}
}

func TestChangeProcRequiresSeed(t *testing.T) {
	up := changeProc(t)
	next, _ := bootstrap3().WithAdd(Site{ID: 3})
	ctx := &fakeCtx{vals: map[storage.Key]storage.Value{}, args: []storage.Value{Encode(next)}}
	if _, err := up.Fn(ctx); !errors.Is(err, ErrNotInitialized) {
		t.Fatalf("err = %v, want ErrNotInitialized", err)
	}
}

func TestSeedAndCommittedConfig(t *testing.T) {
	s := storage.NewStore()
	if _, err := CommittedConfig(s); !errors.Is(err, ErrNotInitialized) {
		t.Fatalf("err = %v, want ErrNotInitialized", err)
	}
	Seed(s, bootstrap3())
	got, err := CommittedConfig(s)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 1 || len(got.Members) != 3 {
		t.Fatalf("committed = %v", got)
	}
}

func TestTrackerMonotonicApplyAndSubscribers(t *testing.T) {
	cfg := bootstrap3()
	tr := NewTracker(cfg)
	var seen []uint64
	tr.OnChange(func(c Config) { seen = append(seen, c.Epoch) })

	if tr.Apply(cfg) {
		t.Fatal("re-applying the current epoch installed")
	}
	next, _ := cfg.WithAdd(Site{ID: 3, Addr: ":9003"})
	if !tr.Apply(next) {
		t.Fatal("successor not installed")
	}
	if tr.Epoch() != 2 || len(tr.Members()) != 4 {
		t.Fatalf("tracker = %v", tr.Config())
	}
	if tr.Apply(next) {
		t.Fatal("duplicate apply installed")
	}
	// A stale epoch (replayed history) is ignored.
	if tr.Apply(cfg) {
		t.Fatal("stale epoch installed")
	}
	if len(seen) != 1 || seen[0] != 2 {
		t.Fatalf("subscriber calls = %v", seen)
	}
}

func TestConfigString(t *testing.T) {
	s := bootstrap3().String()
	if !strings.Contains(s, "epoch=1") || !strings.Contains(s, "n0@:9000") {
		t.Fatalf("String() = %q", s)
	}
}
