// Package member implements dynamic group membership for the replicated
// database. The paper (Section 2) assumes a fixed site group; this
// package relaxes that the standard group-communication way: a
// membership change is itself a definitively-ordered command, so every
// site switches quorums, failure-detector targets and transport peer
// sets at the same definitive index.
//
// The mechanism reuses the machinery the database already has instead of
// inventing a side protocol:
//
//   - The group configuration (epoch + member list) is a row in a
//     reserved conflict class (Class/Key). It is seeded at version 0
//     from the static bootstrap list, carried by every checkpoint,
//     write-ahead logged with the commit that changed it, and therefore
//     recovered and state-transferred exactly like user data — a
//     restarted or freshly transferred replica is in the correct epoch
//     by construction.
//   - A change is proposed as the *full* successor configuration with
//     Epoch = committed epoch + 1, submitted through the reserved stored
//     procedure (RegisterProc). The procedure validates epoch succession
//     against the committed row and writes the successor; a concurrent
//     proposal that lost the definitive-order race fails validation and
//     reports ErrEpochConflict to its submitter, so at most one change
//     per epoch commits — the single-change-at-a-time discipline the
//     quorum-intersection argument in DESIGN.md §9 needs.
//   - A Tracker per process observes committed configurations (via the
//     replica's config-commit hook) and fans them out: the consensus
//     engine reads its Members/Epoch as the view, the failure detector
//     and the transport are reconfigured by OnChange subscribers.
//
// Three operations are expressed over successor configurations:
// WithAdd (grow), WithRemove (shrink), and WithReplace (remove a dead
// site and re-admit its identifier at a new address in one epoch).
package member

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"otpdb/internal/sproc"
	"otpdb/internal/storage"
	"otpdb/internal/transport"
)

// Reserved names. The class prefix keeps user classes out of the way;
// the registry treats the membership procedure like any other update, so
// ordering, WAL, checkpoints and state transfer need no special cases.
const (
	// Class is the reserved conflict class holding the configuration.
	Class = sproc.ClassID("__member")
	// Proc is the reserved update procedure applying a change.
	Proc = "__member.change"
	// Key is the single key of Class carrying the encoded Config.
	Key = storage.Key("config")
)

// Site is one member of the group: its node identifier and, for TCP
// deployments, its listen address (empty on in-process transports).
type Site struct {
	ID   transport.NodeID
	Addr string
}

// Config is one epoch of the group: the full member list. Members are
// kept sorted by ID; Epoch increases by exactly one per committed
// change.
type Config struct {
	Epoch   uint64
	Members []Site
}

// Errors returned by configuration operations.
var (
	// ErrEpochConflict reports a change whose epoch does not succeed the
	// committed one — the loser of a concurrent-change race, or a stale
	// submitter. Safe to retry against the newly committed config.
	ErrEpochConflict = errors.New("member: epoch conflict")
	// ErrNotInitialized reports that the reserved class holds no
	// configuration (the group was started without a membership seed).
	ErrNotInitialized = errors.New("member: membership not initialized")
)

// Bootstrap builds the epoch-1 configuration from a static address map —
// the seed every site loads at version 0. Addrs may be nil/empty-valued
// for in-process transports.
func Bootstrap(addrs map[transport.NodeID]string) Config {
	cfg := Config{Epoch: 1}
	for id, addr := range addrs {
		cfg.Members = append(cfg.Members, Site{ID: id, Addr: addr})
	}
	sort.Slice(cfg.Members, func(i, j int) bool { return cfg.Members[i].ID < cfg.Members[j].ID })
	return cfg
}

// Has reports whether id is a member.
func (c Config) Has(id transport.NodeID) bool {
	_, ok := c.Site(id)
	return ok
}

// Site returns the member with the given id.
func (c Config) Site(id transport.NodeID) (Site, bool) {
	for _, m := range c.Members {
		if m.ID == id {
			return m, true
		}
	}
	return Site{}, false
}

// IDs returns the member identifiers in ascending order.
func (c Config) IDs() []transport.NodeID {
	out := make([]transport.NodeID, len(c.Members))
	for i, m := range c.Members {
		out[i] = m.ID
	}
	return out
}

// Addrs returns the id -> address map (TCP deployments).
func (c Config) Addrs() map[transport.NodeID]string {
	out := make(map[transport.NodeID]string, len(c.Members))
	for _, m := range c.Members {
		out[m.ID] = m.Addr
	}
	return out
}

// Quorum is the majority size of this configuration.
func (c Config) Quorum() int { return len(c.Members)/2 + 1 }

// String renders "epoch=3 members=[n0@:9000 n1 n2@:9002]".
func (c Config) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch=%d members=[", c.Epoch)
	for i, m := range c.Members {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(m.ID.String())
		if m.Addr != "" {
			b.WriteByte('@')
			b.WriteString(m.Addr)
		}
	}
	b.WriteByte(']')
	return b.String()
}

// clone copies the member slice so successor configurations never alias
// their parent.
func (c Config) clone() Config {
	out := Config{Epoch: c.Epoch, Members: make([]Site, len(c.Members))}
	copy(out.Members, c.Members)
	return out
}

// WithAdd returns the successor configuration admitting a new site.
func (c Config) WithAdd(s Site) (Config, error) {
	if c.Has(s.ID) {
		return Config{}, fmt.Errorf("member: %v is already a member", s.ID)
	}
	next := c.clone()
	next.Epoch++
	next.Members = append(next.Members, s)
	sort.Slice(next.Members, func(i, j int) bool { return next.Members[i].ID < next.Members[j].ID })
	return next, nil
}

// WithRemove returns the successor configuration without id.
func (c Config) WithRemove(id transport.NodeID) (Config, error) {
	if !c.Has(id) {
		return Config{}, fmt.Errorf("member: %v is not a member", id)
	}
	if len(c.Members) == 1 {
		return Config{}, errors.New("member: cannot remove the last member")
	}
	next := Config{Epoch: c.Epoch + 1}
	for _, m := range c.Members {
		if m.ID != id {
			next.Members = append(next.Members, m)
		}
	}
	return next, nil
}

// WithReplace returns the successor configuration in which the (dead)
// site id is re-admitted at a new address — remove + add in one epoch,
// keeping the node identifier. Replace is intended for a site that has
// crashed permanently: the quorum-intersection argument (DESIGN.md §9)
// relies on the replaced incarnation no longer participating.
func (c Config) WithReplace(id transport.NodeID, addr string) (Config, error) {
	if !c.Has(id) {
		return Config{}, fmt.Errorf("member: %v is not a member", id)
	}
	next := c.clone()
	next.Epoch++
	for i := range next.Members {
		if next.Members[i].ID == id {
			next.Members[i].Addr = addr
		}
	}
	return next, nil
}

// validate checks structural well-formedness of a proposed config.
func (c Config) validate() error {
	if len(c.Members) == 0 {
		return errors.New("member: empty member list")
	}
	for i := 1; i < len(c.Members); i++ {
		if c.Members[i].ID <= c.Members[i-1].ID {
			return errors.New("member: member list not sorted/unique")
		}
	}
	return nil
}

// Encode serializes a Config as the committed storage value. The format
// is deliberately textual and canonical (epoch line, then one member per
// line in ascending ID order) so the bytes are deterministic across
// sites — the convergence digest hashes them directly.
func Encode(c Config) storage.Value {
	var b strings.Builder
	fmt.Fprintf(&b, "e%d\n", c.Epoch)
	for _, m := range c.Members {
		fmt.Fprintf(&b, "%d %s\n", int(m.ID), m.Addr)
	}
	return storage.Value(b.String())
}

// Decode parses the Encode format.
func Decode(v storage.Value) (Config, error) {
	lines := strings.Split(strings.TrimRight(string(v), "\n"), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "e") {
		return Config{}, fmt.Errorf("member: malformed config %q", v)
	}
	epoch, err := strconv.ParseUint(lines[0][1:], 10, 64)
	if err != nil {
		return Config{}, fmt.Errorf("member: malformed epoch %q", lines[0])
	}
	cfg := Config{Epoch: epoch}
	for _, line := range lines[1:] {
		id, addr, _ := strings.Cut(line, " ")
		n, err := strconv.Atoi(id)
		if err != nil {
			return Config{}, fmt.Errorf("member: malformed member line %q", line)
		}
		cfg.Members = append(cfg.Members, Site{ID: transport.NodeID(n), Addr: addr})
	}
	if err := cfg.validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// CommittedConfig reads the committed configuration out of a store —
// used to prime a Tracker after recovery, a checkpoint install, or at a
// fresh start from the version-0 seed.
func CommittedConfig(s *storage.Store) (Config, error) {
	v, ok := s.Get(storage.Partition(Class), Key)
	if !ok {
		return Config{}, ErrNotInitialized
	}
	return Decode(v)
}

// Seed loads the bootstrap configuration into a store at version 0. Call
// before recovery: a recovered checkpoint or log tail carrying a newer
// committed configuration overrides the seed.
func Seed(s *storage.Store, cfg Config) {
	s.Load(storage.Partition(Class), Key, Encode(cfg))
}

// RegisterProc registers the reserved membership procedure. The
// procedure body runs deterministically at every site: it validates that
// the proposed configuration succeeds the committed epoch by exactly one
// and writes it. Its return value is the committed encoding, so the
// submitter's Result.Value carries the new configuration.
func RegisterProc(reg *sproc.Registry) error {
	return reg.RegisterUpdate(sproc.Update{
		Name:  Proc,
		Class: Class,
		Fn: func(ctx sproc.UpdateCtx) (storage.Value, error) {
			args := ctx.Args()
			if len(args) != 1 {
				return nil, errors.New("member: change needs exactly one encoded config argument")
			}
			proposed, err := Decode(args[0])
			if err != nil {
				return nil, err
			}
			curVal, ok := ctx.Read(Key)
			if !ok {
				return nil, ErrNotInitialized
			}
			cur, err := Decode(curVal)
			if err != nil {
				return nil, fmt.Errorf("member: committed config corrupt: %w", err)
			}
			if proposed.Epoch != cur.Epoch+1 {
				return nil, fmt.Errorf("%w: proposed epoch %d, committed epoch %d",
					ErrEpochConflict, proposed.Epoch, cur.Epoch)
			}
			enc := Encode(proposed)
			return enc, ctx.Write(Key, enc)
		},
	})
}
