package member

import (
	"fmt"
	"strconv"
	"sync"

	"otpdb/internal/events"
	"otpdb/internal/transport"
)

// Tracker owns a process's view of the group configuration. It is the
// bridge between the ordered commit stream (Apply, driven by the
// replica's config-commit hook) and everything that must follow the
// epoch: the consensus engine reads Members/Epoch as its view, and
// OnChange subscribers retarget the failure detector and the transport
// peer set. Epochs are monotonic; stale applications (replayed history,
// duplicate hooks) are ignored.
type Tracker struct {
	mu   sync.Mutex
	cfg  Config
	ids  []transport.NodeID // precomputed cfg.IDs(); immutable once set
	subs []func(Config)
	rec  *events.Recorder
	site int
}

// NewTracker creates a tracker at an initial configuration (the
// version-0 seed, or the committed config recovered from local state or
// a transferred checkpoint).
func NewTracker(initial Config) *Tracker {
	return &Tracker{cfg: initial, ids: initial.IDs()}
}

// Snapshot returns the current epoch and member identifiers, captured
// atomically — the consensus view (one snapshot per message handler
// keeps quorum counting inside a single configuration). The returned
// slice is immutable; no allocation per call.
func (t *Tracker) Snapshot() (uint64, []transport.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cfg.Epoch, t.ids
}

// Config returns the current configuration.
func (t *Tracker) Config() Config {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cfg
}

// Epoch returns the current epoch.
func (t *Tracker) Epoch() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cfg.Epoch
}

// Members returns the member identifiers in ascending order.
func (t *Tracker) Members() []transport.NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cfg.IDs()
}

// SetEvents arms the flight recorder: every installed configuration is
// logged as an epoch-change event at the given site. Call before the
// commit stream starts applying changes.
func (t *Tracker) SetEvents(rec *events.Recorder, site int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rec = rec
	t.site = site
}

// OnChange registers a subscriber invoked with every newly applied
// configuration. Subscribers run synchronously on the applying
// goroutine (the replica's commit path) and must not block; they are
// invoked outside the tracker lock, in epoch order per subscriber.
func (t *Tracker) OnChange(fn func(Config)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.subs = append(t.subs, fn)
}

// Apply installs a newer configuration. Configurations at or below the
// current epoch are ignored (idempotent replay). It reports whether the
// configuration was installed.
func (t *Tracker) Apply(cfg Config) bool {
	t.mu.Lock()
	if cfg.Epoch <= t.cfg.Epoch {
		t.mu.Unlock()
		return false
	}
	t.cfg = cfg
	t.ids = cfg.IDs()
	subs := t.subs
	rec, site := t.rec, t.site
	t.mu.Unlock()
	rec.Record(site, events.KindEpochChange,
		"epoch", strconv.FormatUint(cfg.Epoch, 10),
		"members", fmt.Sprint(cfg.IDs()))
	for _, fn := range subs {
		fn(cfg)
	}
	return true
}
