package transport

import (
	"testing"
	"time"
)

func recvOne(t *testing.T, ch <-chan Envelope) Envelope {
	t.Helper()
	select {
	case env, ok := <-ch:
		if !ok {
			t.Fatal("channel closed")
		}
		return env
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for envelope")
	}
	return Envelope{}
}

func TestMemSendAndReceive(t *testing.T) {
	h := NewHub(2)
	defer h.Close()
	a, b := h.Endpoint(0), h.Endpoint(1)
	in := b.Subscribe("s")
	if err := a.Send(1, "s", "hello"); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, in)
	if env.From != 0 || env.Msg != "hello" || env.Stream != "s" {
		t.Fatalf("got %+v", env)
	}
}

func TestMemBroadcastIncludesSelf(t *testing.T) {
	h := NewHub(3)
	defer h.Close()
	chans := make([]<-chan Envelope, 3)
	for i := 0; i < 3; i++ {
		chans[i] = h.Endpoint(NodeID(i)).Subscribe("s")
	}
	if err := h.Endpoint(0).Broadcast("s", 42); err != nil {
		t.Fatal(err)
	}
	for i, ch := range chans {
		env := recvOne(t, ch)
		if env.Msg != 42 {
			t.Fatalf("node %d got %+v", i, env)
		}
	}
}

func TestMemEarlyMessagesBuffered(t *testing.T) {
	h := NewHub(2)
	defer h.Close()
	if err := h.Endpoint(0).Send(1, "late", "first"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	in := h.Endpoint(1).Subscribe("late")
	env := recvOne(t, in)
	if env.Msg != "first" {
		t.Fatalf("buffered message lost: %+v", env)
	}
}

func TestMemFIFOPerSenderStream(t *testing.T) {
	h := NewHub(2)
	defer h.Close()
	in := h.Endpoint(1).Subscribe("s")
	for i := 0; i < 100; i++ {
		if err := h.Endpoint(0).Send(1, "s", i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		env := recvOne(t, in)
		if env.Msg != i {
			t.Fatalf("message %d = %v, want %d", i, env.Msg, i)
		}
	}
}

func TestMemStreamsAreIsolated(t *testing.T) {
	h := NewHub(2)
	defer h.Close()
	sa := h.Endpoint(1).Subscribe("a")
	sb := h.Endpoint(1).Subscribe("b")
	if err := h.Endpoint(0).Send(1, "b", "forB"); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, sb)
	if env.Msg != "forB" {
		t.Fatalf("stream b got %+v", env)
	}
	select {
	case env := <-sa:
		t.Fatalf("stream a leaked %+v", env)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestMemPartitionDropsTraffic(t *testing.T) {
	h := NewHub(2)
	defer h.Close()
	in := h.Endpoint(1).Subscribe("s")
	h.Partition(0, 1)
	_ = h.Endpoint(0).Send(1, "s", "lost")
	select {
	case env := <-in:
		t.Fatalf("partition leaked %+v", env)
	case <-time.After(20 * time.Millisecond):
	}
	h.Heal(0, 1)
	_ = h.Endpoint(0).Send(1, "s", "found")
	env := recvOne(t, in)
	if env.Msg != "found" {
		t.Fatalf("got %+v after heal", env)
	}
}

func TestMemCrashSilencesNode(t *testing.T) {
	h := NewHub(2)
	defer h.Close()
	in := h.Endpoint(1).Subscribe("s")
	h.Crash(0)
	_ = h.Endpoint(0).Send(1, "s", "fromGhost")
	select {
	case env := <-in:
		t.Fatalf("crashed node delivered %+v", env)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestMemClosedEndpointErrors(t *testing.T) {
	h := NewHub(2)
	defer h.Close()
	e := h.Endpoint(0)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Send(1, "s", 1); err != ErrClosed {
		t.Fatalf("Send after close = %v, want ErrClosed", err)
	}
	if err := e.Broadcast("s", 1); err != ErrClosed {
		t.Fatalf("Broadcast after close = %v, want ErrClosed", err)
	}
}

func TestMemDelayedDeliveryStillArrives(t *testing.T) {
	h := NewHub(2, WithDelay(5*time.Millisecond), WithJitter(5*time.Millisecond), WithSeed(3))
	defer h.Close()
	in := h.Endpoint(1).Subscribe("s")
	start := time.Now()
	_ = h.Endpoint(0).Send(1, "s", "slow")
	env := recvOne(t, in)
	if env.Msg != "slow" {
		t.Fatalf("got %+v", env)
	}
	if time.Since(start) < 4*time.Millisecond {
		t.Fatal("delay not applied")
	}
}
