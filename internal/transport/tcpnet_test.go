package transport

import (
	"fmt"
	"net"
	"testing"
	"time"
)

// freeAddrs reserves n distinct loopback ports and returns them as a node
// address map. The listeners are closed before returning, so a race with
// another process is possible but vanishingly unlikely in CI.
func freeAddrs(t *testing.T, n int) map[NodeID]string {
	t.Helper()
	addrs := make(map[NodeID]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[NodeID(i)] = ln.Addr().String()
		_ = ln.Close()
	}
	return addrs
}

func startMesh(t *testing.T, n int) []*TCPNode {
	t.Helper()
	addrs := freeAddrs(t, n)
	nodes := make([]*TCPNode, n)
	for i := 0; i < n; i++ {
		node, err := ListenTCP(TCPConfig{
			ID:        NodeID(i),
			Addrs:     addrs,
			DialRetry: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		t.Cleanup(func() { _ = node.Close() })
	}
	return nodes
}

type tcpTestMsg struct {
	K int
	S string
}

func TestTCPSendAndReceive(t *testing.T) {
	Register(tcpTestMsg{})
	nodes := startMesh(t, 2)
	in := nodes[1].Subscribe("s")
	if err := nodes[0].Send(1, "s", tcpTestMsg{K: 7, S: "hi"}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, in)
	msg, ok := env.Msg.(tcpTestMsg)
	if !ok || msg.K != 7 || msg.S != "hi" || env.From != 0 {
		t.Fatalf("got %+v", env)
	}
}

func TestTCPBroadcastReachesAllIncludingSelf(t *testing.T) {
	Register(tcpTestMsg{})
	nodes := startMesh(t, 3)
	chans := make([]<-chan Envelope, 3)
	for i, n := range nodes {
		chans[i] = n.Subscribe("b")
	}
	if err := nodes[2].Broadcast("b", tcpTestMsg{K: 1}); err != nil {
		t.Fatal(err)
	}
	for i, ch := range chans {
		env := recvOne(t, ch)
		if env.From != 2 {
			t.Fatalf("node %d got from %v", i, env.From)
		}
	}
}

func TestTCPFIFOOrder(t *testing.T) {
	Register(tcpTestMsg{})
	nodes := startMesh(t, 2)
	in := nodes[1].Subscribe("fifo")
	const total = 200
	for i := 0; i < total; i++ {
		if err := nodes[0].Send(1, "fifo", tcpTestMsg{K: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < total; i++ {
		env := recvOne(t, in)
		msg := env.Msg.(tcpTestMsg)
		if msg.K != i {
			t.Fatalf("message %d = %d, out of order", i, msg.K)
		}
	}
}

func TestTCPSelfSendLoopsBack(t *testing.T) {
	Register(tcpTestMsg{})
	nodes := startMesh(t, 2)
	in := nodes[0].Subscribe("self")
	if err := nodes[0].Send(0, "self", tcpTestMsg{K: 9}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, in)
	if env.Msg.(tcpTestMsg).K != 9 {
		t.Fatalf("got %+v", env)
	}
}

func TestTCPUnknownPeerError(t *testing.T) {
	nodes := startMesh(t, 2)
	if err := nodes[0].Send(9, "s", tcpTestMsg{}); err == nil {
		t.Fatal("send to unknown peer succeeded")
	}
}

func TestTCPCloseIsIdempotent(t *testing.T) {
	nodes := startMesh(t, 2)
	if err := nodes[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Send(1, "s", tcpTestMsg{}); err != ErrClosed {
		t.Fatalf("Send after close = %v, want ErrClosed", err)
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	Register(tcpTestMsg{})
	addrs := freeAddrs(t, 2)
	n0, err := ListenTCP(TCPConfig{ID: 0, Addrs: addrs, DialRetry: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = n0.Close() }()

	n1, err := ListenTCP(TCPConfig{ID: 1, Addrs: addrs, DialRetry: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	in := n1.Subscribe("s")
	if err := n0.Send(1, "s", tcpTestMsg{K: 1}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, in)
	_ = n1.Close()

	// Messages sent while the peer is down are queued and delivered after
	// it restarts on the same address.
	if err := n0.Send(1, "s", tcpTestMsg{K: 2}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	n1b, err := ListenTCP(TCPConfig{ID: 1, Addrs: addrs, DialRetry: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = n1b.Close() }()
	in2 := n1b.Subscribe("s")
	// K=1 may be replayed if its ack raced with the old peer's shutdown
	// (the restarted process is a fresh incarnation); K=2 must arrive.
	for i := 0; i < 3; i++ {
		env := recvOne(t, in2)
		if env.Msg.(tcpTestMsg).K == 2 {
			return
		}
	}
	t.Fatal("K=2 never arrived after peer restart")
}

// TestTCPRestartedSenderIsHeard is the incarnation regression test: a
// peer that restarts (fresh process, sequence numbering from 1) must not
// have its new frames silently deduplicated by survivors that remember
// its pre-crash sequence floor — exactly the situation of a killed otpd
// rejoining a live cluster.
func TestTCPRestartedSenderIsHeard(t *testing.T) {
	Register(tcpTestMsg{})
	addrs := freeAddrs(t, 2)
	n0, err := ListenTCP(TCPConfig{ID: 0, Addrs: addrs, DialRetry: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = n0.Close() }()
	in := n0.Subscribe("s")

	n1, err := ListenTCP(TCPConfig{ID: 1, Addrs: addrs, DialRetry: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Push the survivor's dedup floor for node 1 well past what the
	// restarted incarnation will use.
	const preCrash = 50
	for i := 0; i < preCrash; i++ {
		if err := n1.Send(0, "s", tcpTestMsg{K: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < preCrash; i++ {
		recvOne(t, in)
	}
	_ = n1.Close() // the "kill -9"

	n1b, err := ListenTCP(TCPConfig{ID: 1, Addrs: addrs, DialRetry: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = n1b.Close() }()
	if err := n1b.Send(0, "s", tcpTestMsg{K: 999}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, in)
	if got := env.Msg.(tcpTestMsg).K; got != 999 {
		t.Fatalf("survivor delivered %d, want the restarted sender's 999", got)
	}
	// And FIFO still holds within the new incarnation.
	for i := 0; i < 10; i++ {
		if err := n1b.Send(0, "s", tcpTestMsg{K: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		env := recvOne(t, in)
		if env.Msg.(tcpTestMsg).K != i {
			t.Fatalf("post-restart message %d = %d, out of order", i, env.Msg.(tcpTestMsg).K)
		}
	}
}

func TestTCPManyStreamsConcurrently(t *testing.T) {
	Register(tcpTestMsg{})
	nodes := startMesh(t, 2)
	const streams = 8
	chans := make([]<-chan Envelope, streams)
	for s := 0; s < streams; s++ {
		chans[s] = nodes[1].Subscribe(fmt.Sprintf("st%d", s))
	}
	for s := 0; s < streams; s++ {
		if err := nodes[0].Send(1, fmt.Sprintf("st%d", s), tcpTestMsg{K: s}); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < streams; s++ {
		env := recvOne(t, chans[s])
		if env.Msg.(tcpTestMsg).K != s {
			t.Fatalf("stream %d got %+v", s, env)
		}
	}
}
