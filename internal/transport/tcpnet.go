package transport

import (
	"bufio"
	"context"
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"otpdb/internal/metrics"
	"otpdb/internal/queue"
)

// Register makes concrete message types known to the gob codec used by the
// TCP transport. Every type sent through Endpoint.Send/Broadcast as the
// dynamic value of Envelope.Msg must be registered by both ends.
func Register(values ...any) {
	for _, v := range values {
		gob.Register(v)
	}
}

// TCPConfig configures one node of a TCP mesh.
type TCPConfig struct {
	// ID is this node's identifier.
	ID NodeID
	// Addrs maps every node (including this one) to its listen address.
	Addrs map[NodeID]string
	// DialRetry is the back-off between reconnection attempts.
	// Defaults to 250 ms.
	DialRetry time.Duration
	// Incarnation, when non-zero, overrides the clock-derived process
	// incarnation stamped on data frames. Durable deployments pass a
	// PersistentIncarnation so a clock stepping backwards across a
	// restart cannot mint a stale one.
	Incarnation uint64
	// Metrics, when non-nil, registers transport telemetry (inbound
	// frames, coalesce batch sizes, dial retries) under the scope's
	// labels.
	Metrics *metrics.Scope
	// Trace, when non-nil, receives a net-recv span for every fresh
	// inbound data frame whose payload carries a trace ID (see
	// TraceCarrier) — the network-hop edges of a distributed trace.
	Trace *metrics.TraceRing
}

// tcpFrame is the wire unit. Data frames (IsAck false) flow from the
// connection initiator to the acceptor; cumulative acknowledgements flow
// back on the same connection. Sequence numbers are per directed link and
// let the receiver deduplicate retransmissions.
//
// Inc is the sender's incarnation: a clock-derived value fixed at node
// creation. A restarted process numbers its frames from 1 again; without
// the incarnation, peers that remember the pre-crash sequence floor
// would silently drop everything the new process sends (while still
// acknowledging it). A frame with a newer incarnation resets the
// receiver's dedup floor for that sender; frames from an older
// incarnation are stale retransmissions and are dropped.
//
// The clock-derived default assumes the host clock does not step
// backwards across a restart. If it does (NTP correction, VM snapshot
// restore), peers stay deaf to the restarted node until its clock
// passes the old incarnation — a visible availability failure (its
// state-transfer probes time out loudly), never silent divergence.
// Durable deployments close the window by passing a persisted
// monotonic incarnation (PersistentIncarnation) in TCPConfig; cmd/otpd
// does so whenever -data is set.
//
//otp:fence Inc
type tcpFrame struct {
	IsAck bool
	Seq   uint64 // data sequence number (IsAck false)
	Ack   uint64 // cumulative acknowledged sequence (IsAck true)
	Inc   uint64 // sender incarnation (IsAck false)
	Trace string // trace ID of the payload's transaction ("" untraced)
	Env   Envelope
}

// TCPNode is a transport endpoint over a full TCP mesh. Frames are gob
// encoded. Outbound messages are buffered, acknowledged end-to-end, and
// retransmitted across reconnects, giving reliable FIFO delivery to every
// peer that stays up or restarts on the same address (crash-stop peers
// simply never acknowledge). Duplicate deliveries are filtered by
// per-sender sequence numbers.
//
// The peer set is dynamic: AddPeer/RemovePeer/SetPeers reconfigure the
// mesh at runtime (group membership changes), creating or tearing down
// per-peer links without touching the others.
type TCPNode struct {
	cfg  TCPConfig
	ln   net.Listener
	inc  uint64 // this node's incarnation, stamped on every data frame
	box  *mailbox
	stop chan struct{}
	wg   sync.WaitGroup

	// Telemetry (inert unregistered instruments without cfg.Metrics).
	framesIn    *metrics.Counter
	dupFrames   *metrics.Counter
	dialRetries *metrics.Counter
	batchSizes  *metrics.Histogram

	mu      sync.Mutex
	addrs   map[NodeID]string // current peer map, including self
	out     map[NodeID]*peerLink
	lastSeq map[NodeID]uint64 // highest data seq delivered per sender incarnation
	lastInc map[NodeID]uint64 // newest incarnation seen per sender
	closed  bool
}

var _ Endpoint = (*TCPNode)(nil)

// ListenTCP starts a node listening on its configured address and begins
// connecting to its peers in the background.
func ListenTCP(cfg TCPConfig) (*TCPNode, error) {
	addr, ok := cfg.Addrs[cfg.ID]
	if !ok {
		return nil, fmt.Errorf("tcpnet: no address configured for %v", cfg.ID)
	}
	if cfg.DialRetry <= 0 {
		cfg.DialRetry = 250 * time.Millisecond
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", addr, err)
	}
	n := &TCPNode{
		cfg:         cfg,
		ln:          ln,
		box:         newMailbox(),
		addrs:       make(map[NodeID]string, len(cfg.Addrs)),
		out:         make(map[NodeID]*peerLink),
		inc:         cfg.Incarnation,
		stop:        make(chan struct{}),
		lastSeq:     make(map[NodeID]uint64),
		lastInc:     make(map[NodeID]uint64),
		framesIn:    cfg.Metrics.Counter("transport_frames_in_total"),
		dupFrames:   cfg.Metrics.Counter("transport_dup_frames_total"),
		dialRetries: cfg.Metrics.Counter("transport_dial_retry_total"),
		batchSizes:  cfg.Metrics.SizeHistogram("transport_coalesce_batch"),
	}
	for id, peerAddr := range cfg.Addrs {
		n.addrs[id] = peerAddr
		if id == cfg.ID {
			continue
		}
		n.out[id] = newPeerLink(n, peerAddr)
	}
	if n.inc == 0 {
		n.inc = uint64(time.Now().UnixNano())
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// AddPeer attaches (or re-addresses) a peer at runtime. An existing link
// to the same address is left untouched; a changed address tears the old
// link down — its unacknowledged frames are dropped, matching the
// membership-change semantics (the old incarnation is gone for good) —
// and dials the new one.
func (n *TCPNode) AddPeer(id NodeID, addr string) {
	if id == n.cfg.ID {
		return
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	old := n.out[id]
	if old != nil && n.addrs[id] == addr {
		n.mu.Unlock()
		return
	}
	n.addrs[id] = addr
	n.out[id] = newPeerLink(n, addr)
	n.mu.Unlock()
	if old != nil {
		old.close()
	}
}

// RemovePeer detaches a peer: its link is torn down (promptly, even
// mid-dial against a dead address) and queued frames are dropped.
// Inbound dedup state is retained so a stale straggler from the removed
// peer cannot be mistaken for fresh traffic.
func (n *TCPNode) RemovePeer(id NodeID) {
	n.mu.Lock()
	link := n.out[id]
	delete(n.out, id)
	delete(n.addrs, id)
	n.mu.Unlock()
	if link != nil {
		link.close()
	}
}

// SetPeers reconciles the full peer map (including this node's own
// entry) against the current mesh: missing peers are added, re-addressed
// peers are redialed, absent peers are removed. This is the transport
// half of applying a membership configuration.
func (n *TCPNode) SetPeers(addrs map[NodeID]string) {
	n.mu.Lock()
	var gone []*peerLink
	for id, link := range n.out {
		if _, keep := addrs[id]; !keep {
			gone = append(gone, link)
			delete(n.out, id)
			delete(n.addrs, id)
		}
	}
	n.mu.Unlock()
	for _, link := range gone {
		link.close()
	}
	for id, addr := range addrs {
		n.AddPeer(id, addr)
	}
	n.mu.Lock()
	if _, ok := addrs[n.cfg.ID]; ok {
		n.addrs[n.cfg.ID] = addrs[n.cfg.ID]
	}
	n.mu.Unlock()
}

// Addr returns the node's bound listen address (useful with ":0").
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// ID implements Endpoint.
func (n *TCPNode) ID() NodeID { return n.cfg.ID }

// N implements Endpoint: the current group size (self included).
func (n *TCPNode) N() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.addrs)
}

// Send implements Endpoint.
func (n *TCPNode) Send(to NodeID, stream string, msg any) error {
	env := Envelope{From: n.cfg.ID, Stream: stream, Msg: msg}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if to == n.cfg.ID {
		n.mu.Unlock()
		n.box.enqueue(env)
		return nil
	}
	link, ok := n.out[to]
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("tcpnet: unknown peer %v", to)
	}
	link.send(env)
	return nil
}

// Broadcast implements Endpoint. The recipient set is the peer map at
// call time; a membership change mid-broadcast may or may not include
// the changing peer, exactly as a racing unicast would.
func (n *TCPNode) Broadcast(stream string, msg any) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	links := make([]*peerLink, 0, len(n.out))
	for _, link := range n.out {
		links = append(links, link)
	}
	n.mu.Unlock()
	env := Envelope{From: n.cfg.ID, Stream: stream, Msg: msg}
	n.box.enqueue(env)
	for _, link := range links {
		link.send(env)
	}
	return nil
}

// Subscribe implements Endpoint.
func (n *TCPNode) Subscribe(stream string) <-chan Envelope {
	return n.box.subscribe(stream)
}

// Close implements Endpoint.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	links := make([]*peerLink, 0, len(n.out))
	for _, link := range n.out {
		links = append(links, link)
	}
	n.mu.Unlock()
	close(n.stop)
	_ = n.ln.Close()
	for _, link := range links {
		link.close()
	}
	n.wg.Wait()
	n.box.close()
	return nil
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.stop:
				return
			default:
			}
			continue
		}
		n.wg.Add(1)
		go n.serveConn(conn)
	}
}

// serveConn handles one inbound connection: data frames in, cumulative
// acks out on the same connection. Acks are coalesced: the decoder posts
// the latest sequence into a one-slot mailbox and a dedicated writer
// acknowledges whatever is newest, so a burst of inbound frames costs
// one ack syscall instead of one per frame (acks are cumulative, so
// acknowledging only the newest is lossless).
func (n *TCPNode) serveConn(conn net.Conn) {
	defer n.wg.Done()
	defer func() { _ = conn.Close() }()
	// Unblock the decoder on shutdown.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-n.stop:
			_ = conn.Close()
		case <-done:
		}
	}()
	dec := gob.NewDecoder(conn)
	ackCh := make(chan uint64, 1)
	defer close(ackCh)
	go n.writeAcks(conn, ackCh)
	for {
		var f tcpFrame
		if err := dec.Decode(&f); err != nil {
			return
		}
		if f.IsAck {
			continue // acks are never expected inbound on accepted conns
		}
		n.mu.Lock()
		fresh := false
		switch {
		case f.Inc > n.lastInc[f.Env.From]:
			// A restarted sender: its sequence numbering begins anew, so
			// the dedup floor must too.
			n.lastInc[f.Env.From] = f.Inc
			n.lastSeq[f.Env.From] = f.Seq
			fresh = true
		case f.Inc == n.lastInc[f.Env.From] && f.Seq > n.lastSeq[f.Env.From]:
			n.lastSeq[f.Env.From] = f.Seq
			fresh = true
		}
		n.mu.Unlock()
		n.framesIn.Inc()
		if fresh {
			if f.Trace != "" {
				n.cfg.Trace.Record(metrics.TraceEvent{
					Trace: f.Trace, Span: metrics.SpanNetRecv,
					Site: int(n.cfg.ID), Note: f.Env.Stream,
				})
			}
			n.box.enqueue(f.Env)
		} else {
			n.dupFrames.Inc()
		}
		// Acknowledge regardless: duplicates mean the ack was lost.
		// Replace any unsent older ack — the newest covers it.
		select {
		case ackCh <- f.Seq:
		default:
			select {
			case <-ackCh:
			default:
			}
			select {
			case ackCh <- f.Seq:
			default:
			}
		}
	}
}

// writeAcks drains the ack mailbox onto the connection, flushing only
// when no newer ack is already pending. A write failure closes the
// connection so the decoder in serveConn notices too — a half-broken
// link (readable but unwritable) must tear down fully, or the sender's
// retransmission buffer would grow forever waiting for acks.
func (n *TCPNode) writeAcks(conn net.Conn, ackCh <-chan uint64) {
	bw := bufio.NewWriter(conn)
	enc := gob.NewEncoder(bw)
	for seq := range ackCh {
		if err := enc.Encode(tcpFrame{IsAck: true, Ack: seq}); err != nil {
			_ = conn.Close()
			return
		}
		if len(ackCh) == 0 {
			if err := bw.Flush(); err != nil {
				_ = conn.Close()
				return
			}
		}
	}
}

// peerLink owns the outbound traffic to one peer: an unbounded send queue
// plus a retransmission buffer of unacknowledged frames, drained by a
// writer goroutine that dials (and redials) the peer. Links are torn
// down individually when membership removes or re-addresses a peer, so
// close must interrupt a writer parked in dial backoff against a dead
// address, not just one reading the queue.
type peerLink struct {
	node *TCPNode
	addr string
	q    *queue.Q[Envelope]
	done chan struct{}
	stop chan struct{} // closed by close(); unblocks dial/backoff/encode
	once sync.Once

	mu      sync.Mutex
	conn    net.Conn   // current outbound connection, for prompt teardown
	pending []tcpFrame // sent but not yet acknowledged, ascending seq
	nextSeq uint64

	connErr chan struct{} // signalled by the ack reader on conn failure

	// tries and rng drive the reconnect backoff schedule. Both are
	// touched only from the writeLoop goroutine (dial and backoff run
	// there), so they need no lock.
	tries int
	rng   *rand.Rand
}

func newPeerLink(n *TCPNode, addr string) *peerLink {
	l := &peerLink{
		node:    n,
		addr:    addr,
		q:       queue.New[Envelope](),
		done:    make(chan struct{}),
		stop:    make(chan struct{}),
		connErr: make(chan struct{}, 1),
		rng:     rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(n.cfg.ID)<<32)),
	}
	go l.writeLoop()
	return l
}

func (l *peerLink) send(env Envelope) { l.q.Push(env) }

func (l *peerLink) close() {
	l.once.Do(func() {
		close(l.stop)
		l.mu.Lock()
		if l.conn != nil {
			_ = l.conn.Close() // unblock a writer mid-encode
		}
		l.mu.Unlock()
		l.q.Close()
	})
	<-l.done
}

// setConn records the live outbound connection for teardown.
func (l *peerLink) setConn(c net.Conn) {
	l.mu.Lock()
	l.conn = c
	l.mu.Unlock()
}

// ackUpTo drops acknowledged frames from the retransmission buffer.
//
//otp:fenced sender side: pending holds frames this link built under its own incarnation; Inc fencing happens on the inbound path (handleConn)
func (l *peerLink) ackUpTo(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	i := 0
	for i < len(l.pending) && l.pending[i].Seq <= seq {
		i++
	}
	l.pending = l.pending[i:]
}

func (l *peerLink) signalConnErr() {
	select {
	case l.connErr <- struct{}{}:
	default:
	}
}

// maxWriteBatch bounds how many queued envelopes one writeLoop drain
// coalesces into a single encode+flush.
const maxWriteBatch = 128

func (l *peerLink) writeLoop() {
	defer close(l.done)
	var conn net.Conn
	var bw *bufio.Writer
	var enc *gob.Encoder
	disconnect := func() {
		if conn != nil {
			_ = conn.Close()
			conn, bw, enc = nil, nil, nil
			l.setConn(nil)
		}
	}
	defer disconnect()

	// connect dials and replays the retransmission buffer (which already
	// contains any batch being sent, so a reconnect completes the send).
	// It returns false when the node is shutting down.
	connect := func() bool {
		for {
			disconnect()
			c, err := l.dial()
			if err != nil {
				return false
			}
			conn = c
			l.setConn(c)
			bw = bufio.NewWriter(conn)
			enc = gob.NewEncoder(bw)
			// Drain any stale failure signal from the previous conn.
			select {
			case <-l.connErr:
			default:
			}
			go l.readAcks(c)
			l.mu.Lock()
			resend := make([]tcpFrame, len(l.pending))
			copy(resend, l.pending)
			l.mu.Unlock()
			ok := true
			for _, f := range resend {
				if err := enc.Encode(f); err != nil {
					ok = false
					break
				}
			}
			if ok && bw.Flush() == nil {
				return true
			}
			if !l.backoff() {
				return false
			}
		}
	}

	// sendBatch encodes the frames and flushes once. On a connection
	// error it reconnects; connect() replays the retransmission buffer,
	// which includes the batch, so the send completes either way. It
	// returns false when the node is shutting down.
	sendBatch := func(frames []tcpFrame) bool {
		for {
			if conn == nil {
				return connect()
			}
			ok := true
			for _, f := range frames {
				if err := enc.Encode(f); err != nil {
					ok = false
					break
				}
			}
			if ok && bw.Flush() == nil {
				return true
			}
			disconnect()
			if !l.backoff() {
				return false
			}
		}
	}

	batch := make([]tcpFrame, 0, maxWriteBatch)
	for {
		select {
		case env, open := <-l.q.Chan():
			if !open {
				return
			}
			// Coalesce: greedily drain whatever else is queued so the
			// whole burst shares one encoder flush (one syscall) —
			// consensus votes and data messages ride together.
			batch = batch[:0]
			closed := false
			l.mu.Lock()
			l.nextSeq++
			batch = append(batch, tcpFrame{Seq: l.nextSeq, Inc: l.node.inc, Trace: TraceOf(env.Msg), Env: env})
		drain:
			for len(batch) < maxWriteBatch {
				select {
				case env2, open2 := <-l.q.Chan():
					if !open2 {
						closed = true
						break drain
					}
					l.nextSeq++
					batch = append(batch, tcpFrame{Seq: l.nextSeq, Inc: l.node.inc, Trace: TraceOf(env2.Msg), Env: env2})
				default:
					break drain
				}
			}
			l.pending = append(l.pending, batch...)
			l.mu.Unlock()
			l.node.batchSizes.ObserveInt(int64(len(batch)))
			if !sendBatch(batch) {
				return
			}
			if closed {
				return
			}
		case <-l.connErr:
			// Connection died while idle: reconnect so pending frames
			// are retransmitted promptly.
			l.mu.Lock()
			hasPending := len(l.pending) > 0
			l.mu.Unlock()
			disconnect()
			if hasPending {
				if !connect() {
					return
				}
			}
		case <-l.node.stop:
			return
		}
	}
}

// readAcks consumes acknowledgement frames from an outbound connection and
// releases the retransmission buffer.
//
//otp:fenced acks arrive on the connection this link dialed itself, so they answer its own incarnation; inbound data frames are fenced in handleConn
func (l *peerLink) readAcks(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	for {
		var f tcpFrame
		if err := dec.Decode(&f); err != nil {
			l.signalConnErr()
			return
		}
		if f.IsAck {
			l.ackUpTo(f.Ack)
		}
	}
}

// backoff waits before the next reconnection attempt. Consecutive
// failures back off exponentially from the configured DialRetry floor
// up to a 16× cap, with up to +50% random jitter so that after a
// partition heals the reconnect attempts of many peers do not arrive
// in lockstep at a still-recovering node. A successful dial resets the
// schedule to the floor (see dial).
func (l *peerLink) backoff() bool {
	l.node.dialRetries.Inc()
	d := l.node.cfg.DialRetry
	if shift := l.tries; shift > 0 {
		if shift > 4 {
			shift = 4
		}
		d <<= shift
	}
	if l.tries < 4 {
		l.tries++
	}
	d += time.Duration(l.rng.Int63n(int64(d)/2 + 1))
	select {
	case <-l.node.stop:
		return false
	case <-l.stop:
		return false
	case <-time.After(d):
		return true
	}
}

// dial connects to the peer, retrying until success, node shutdown, or
// link teardown (peer removed from the group). The dial itself is
// interruptible: close() must return promptly even while a connection
// attempt to a dead address is in flight — membership changes tear
// links down from the replica's commit path, which must not absorb a
// multi-second dial timeout.
func (l *peerLink) dial() (net.Conn, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-l.stop:
			cancel()
		case <-l.node.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	d := net.Dialer{Timeout: 2 * time.Second}
	for {
		select {
		case <-l.stop:
			return nil, ErrClosed
		default:
		}
		conn, err := d.DialContext(ctx, "tcp", l.addr)
		if err == nil {
			l.tries = 0
			return conn, nil
		}
		if !l.backoff() {
			return nil, ErrClosed
		}
	}
}
