// Package transport defines the message-passing abstraction used by the
// broadcast and consensus protocols, together with two implementations:
//
//   - memnet: an in-process transport for tests and single-process
//     clusters, with optional delay, reordering, partitions and crashes.
//   - tcpnet: a real TCP mesh with gob-encoded frames for multi-process
//     deployments (cmd/otpd).
//
// Both provide reliable FIFO point-to-point channels between correct
// nodes, matching the paper's system model (asynchronous, reliable
// communication; crash failures).
package transport

import (
	"errors"
	"fmt"
)

// NodeID identifies a node of the group. Nodes are numbered densely from
// zero; the group membership is static, as in the paper.
type NodeID int

func (n NodeID) String() string { return fmt.Sprintf("n%d", n) }

// Envelope is a received message together with its origin and stream.
type Envelope struct {
	From   NodeID
	Stream string
	Msg    any
}

// Endpoint is one node's attachment to the group communication layer.
// Streams multiplex independent protocols (failure detector, consensus,
// broadcast) over one transport.
type Endpoint interface {
	// ID returns this node's identifier.
	ID() NodeID
	// N returns the group size.
	N() int
	// Send transmits msg to a single node on the given stream. Sending to
	// oneself loops back locally.
	Send(to NodeID, stream string, msg any) error
	// Broadcast transmits msg to every node in the group, including the
	// sender (self-delivery loops back locally).
	Broadcast(stream string, msg any) error
	// Subscribe returns the reception channel for a stream. Messages
	// arriving before the first Subscribe call for their stream are
	// buffered. Subscribe is idempotent: repeated calls return the same
	// channel.
	Subscribe(stream string) <-chan Envelope
	// Close detaches the endpoint and releases its goroutines.
	Close() error
}

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// TraceCarrier is implemented by messages that belong to a traced
// transaction. Transports surface the ID in their frame headers so a
// receiving site can record the network hop into its trace ring
// without decoding (or even understanding) the payload.
type TraceCarrier interface {
	TraceID() string
}

// TraceOf extracts the trace ID a message carries, if any.
func TraceOf(msg any) string {
	if tc, ok := msg.(TraceCarrier); ok {
		return tc.TraceID()
	}
	return ""
}
