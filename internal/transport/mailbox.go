package transport

import (
	"sync"

	"otpdb/internal/queue"
)

// mailbox demultiplexes received envelopes into per-stream unbounded
// queues. Messages arriving before the first Subscribe for their stream
// are buffered so protocol start-up order never loses traffic.
type mailbox struct {
	mu     sync.Mutex
	subs   map[string]*queue.Q[Envelope]
	early  map[string][]Envelope
	closed bool
}

func newMailbox() *mailbox {
	return &mailbox{
		subs:  make(map[string]*queue.Q[Envelope]),
		early: make(map[string][]Envelope),
	}
}

func (m *mailbox) subscribe(stream string) <-chan Envelope {
	m.mu.Lock()
	defer m.mu.Unlock()
	if q, ok := m.subs[stream]; ok {
		return q.Chan()
	}
	q := queue.New[Envelope]()
	m.subs[stream] = q
	for _, env := range m.early[stream] {
		q.Push(env)
	}
	delete(m.early, stream)
	return q.Chan()
}

func (m *mailbox) enqueue(env Envelope) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	if q, ok := m.subs[env.Stream]; ok {
		m.mu.Unlock()
		q.Push(env)
		return
	}
	m.early[env.Stream] = append(m.early[env.Stream], env)
	m.mu.Unlock()
}

func (m *mailbox) close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	subs := make([]*queue.Q[Envelope], 0, len(m.subs))
	for _, q := range m.subs {
		subs = append(subs, q)
	}
	m.mu.Unlock()
	for _, q := range subs {
		q.Close()
	}
}
