package transport

import (
	"math/rand"
	"sync"
	"time"
)

// MemOption configures a Hub.
type MemOption func(*Hub)

// WithDelay adds a fixed delivery delay to every message.
func WithDelay(d time.Duration) MemOption {
	return func(h *Hub) { h.baseDelay = d }
}

// WithJitter adds a uniformly random extra delay in [0, d) per message,
// which can reorder messages from different senders (and, when larger than
// the base delay, even from the same sender — useful for stressing
// protocols beyond the FIFO guarantee they rely on from TCP).
func WithJitter(d time.Duration) MemOption {
	return func(h *Hub) { h.jitter = d }
}

// WithSeed seeds the hub's random source (jitter, drop decisions).
func WithSeed(seed int64) MemOption {
	return func(h *Hub) { h.rng = rand.New(rand.NewSource(seed)) }
}

// LinkProfile shapes one directed link of a Hub — the WAN model the
// chaos harness drives. Delay/Jitter override the hub-wide settings for
// the link. Loss is the per-message probability of a modeled packet
// loss; because the in-process transport promises reliable channels
// (the protocols above assume TCP-like links), a "lost" message is not
// dropped but charged RetransmitDelay and re-rolled — the latency shape
// of a retransmission timeout, with reliability intact. Profiles are
// directional: SetLink(a, b, p) shapes only a→b traffic, so asymmetric
// routes (and asymmetric congestion) are expressible.
type LinkProfile struct {
	// Delay is the fixed one-way delay for the link.
	Delay time.Duration
	// Jitter adds a uniformly random extra delay in [0, Jitter).
	Jitter time.Duration
	// Loss is the per-message probability of a modeled loss in [0, 1).
	Loss float64
	// RetransmitDelay is charged per modeled loss (default 200 ms, the
	// shape of a retransmission timeout). Losses re-roll, so the charge
	// is geometric: a 30%-loss link occasionally pays several RTOs.
	RetransmitDelay time.Duration
}

// link identifies a directed hub link.
type link struct{ from, to NodeID }

// Hub is an in-process transport connecting n endpoints. It provides
// reliable FIFO channels by default; delay and jitter options can weaken
// timing (never reliability) and Partition/Crash inject failures.
type Hub struct {
	mu        sync.Mutex
	nodes     []*memEndpoint
	baseDelay time.Duration
	jitter    time.Duration
	rng       *rand.Rand
	parted    [][]bool
	crashed   []bool
	links     map[link]LinkProfile
	timers    sync.WaitGroup
	closed    bool
}

// NewHub creates a hub with n endpoints.
func NewHub(n int, opts ...MemOption) *Hub {
	h := &Hub{
		rng:     rand.New(rand.NewSource(1)),
		parted:  make([][]bool, n),
		crashed: make([]bool, n),
	}
	for i := range h.parted {
		h.parted[i] = make([]bool, n)
	}
	for _, opt := range opts {
		opt(h)
	}
	h.nodes = make([]*memEndpoint, n)
	for i := 0; i < n; i++ {
		h.nodes[i] = &memEndpoint{
			hub: h,
			id:  NodeID(i),
			box: newMailbox(),
		}
	}
	return h
}

// Endpoint returns node i's endpoint.
func (h *Hub) Endpoint(i NodeID) Endpoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.nodes[i]
}

// Endpoints returns all endpoints in node order.
func (h *Hub) Endpoints() []Endpoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Endpoint, len(h.nodes))
	for i, n := range h.nodes {
		out[i] = n
	}
	return out
}

// Len reports the number of nodes the hub carries (crashed included).
func (h *Hub) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.nodes)
}

// Add grows the hub by one node and returns its endpoint — the
// in-process transport half of admitting a new site to the group. The
// new node starts connected to every existing node.
func (h *Hub) Add() Endpoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	id := NodeID(len(h.nodes))
	for i := range h.parted {
		h.parted[i] = append(h.parted[i], false)
	}
	h.parted = append(h.parted, make([]bool, len(h.nodes)+1))
	h.crashed = append(h.crashed, false)
	ep := &memEndpoint{hub: h, id: id, box: newMailbox()}
	h.nodes = append(h.nodes, ep)
	return ep
}

// Partition disconnects a and b in both directions.
func (h *Hub) Partition(a, b NodeID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.parted[a][b] = true
	h.parted[b][a] = true
}

// Heal reconnects a and b.
func (h *Hub) Heal(a, b NodeID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.parted[a][b] = false
	h.parted[b][a] = false
}

// SetLink installs a fault profile on the directed link from → to,
// replacing any previous profile (and, for that link, the hub-wide
// delay/jitter). Safe to call while traffic flows; messages already
// scheduled keep their old delay.
func (h *Hub) SetLink(from, to NodeID, p LinkProfile) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.links == nil {
		h.links = make(map[link]LinkProfile)
	}
	if p.Loss > 0 && p.RetransmitDelay <= 0 {
		p.RetransmitDelay = 200 * time.Millisecond
	}
	h.links[link{from, to}] = p
}

// ClearLink removes the fault profile of the directed link from → to,
// restoring the hub-wide delay/jitter.
func (h *Hub) ClearLink(from, to NodeID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.links, link{from, to})
}

// ClearLinks removes every per-link fault profile.
func (h *Hub) ClearLinks() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.links = nil
}

// Crash makes a node silently drop all traffic, modelling a crash-stop
// failure.
func (h *Hub) Crash(n NodeID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.crashed[n] = true
}

// Restart revives a crashed node with a fresh endpoint (fresh mailbox) —
// the transport-level model of a process restart. Messages sent while
// the node was down are gone for good; the returned endpoint receives
// only traffic routed after the restart. The old endpoint is closed;
// in-flight deliveries addressed to it are dropped.
func (h *Hub) Restart(n NodeID) Endpoint {
	h.mu.Lock()
	old := h.nodes[n]
	fresh := &memEndpoint{hub: h, id: n, box: newMailbox()}
	h.nodes[n] = fresh
	h.crashed[n] = false
	h.mu.Unlock()
	_ = old.Close()
	return fresh
}

// Close shuts down every endpoint and waits for in-flight deliveries.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	h.mu.Unlock()
	h.timers.Wait()
	h.mu.Lock()
	nodes := append([]*memEndpoint(nil), h.nodes...)
	h.mu.Unlock()
	for _, n := range nodes {
		_ = n.Close()
	}
}

// Inject routes an envelope as if sent by `from`, even when that node
// is crashed — the ghost-incarnation replay primitive: a survivor's
// transport retransmitting a dead process's backlog looks exactly like
// this. Partitions and the destination's crash state still apply.
func (h *Hub) Inject(from, to NodeID, stream string, msg any) {
	h.route(from, to, Envelope{From: from, Stream: stream, Msg: msg}, true)
}

// route delivers an envelope from -> to, applying failures and delay.
// ghost bypasses the sender's crash state (see Inject).
func (h *Hub) route(from, to NodeID, env Envelope, ghost bool) {
	h.mu.Lock()
	if h.closed || (h.crashed[from] && !ghost) || h.crashed[to] || h.parted[from][to] {
		h.mu.Unlock()
		return
	}
	delay := h.baseDelay
	jitter := h.jitter
	if p, ok := h.links[link{from, to}]; ok {
		delay, jitter = p.Delay, p.Jitter
		for p.Loss > 0 && h.rng.Float64() < p.Loss {
			delay += p.RetransmitDelay
		}
	}
	if jitter > 0 {
		delay += time.Duration(h.rng.Int63n(int64(jitter)))
	}
	dst := h.nodes[to]
	if delay == 0 {
		h.mu.Unlock()
		dst.enqueue(env)
		return
	}
	h.timers.Add(1)
	h.mu.Unlock()
	time.AfterFunc(delay, func() {
		defer h.timers.Done()
		h.mu.Lock()
		dead := h.closed || h.crashed[to]
		h.mu.Unlock()
		if !dead {
			dst.enqueue(env)
		}
	})
}

// memEndpoint is one node's attachment to a Hub.
type memEndpoint struct {
	hub *Hub
	id  NodeID
	box *mailbox

	mu     sync.Mutex
	closed bool
}

var _ Endpoint = (*memEndpoint)(nil)

func (e *memEndpoint) ID() NodeID { return e.id }

func (e *memEndpoint) N() int {
	e.hub.mu.Lock()
	defer e.hub.mu.Unlock()
	return len(e.hub.nodes)
}

func (e *memEndpoint) Send(to NodeID, stream string, msg any) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	e.hub.route(e.id, to, Envelope{From: e.id, Stream: stream, Msg: msg}, false)
	return nil
}

func (e *memEndpoint) Broadcast(stream string, msg any) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	env := Envelope{From: e.id, Stream: stream, Msg: msg}
	e.hub.mu.Lock()
	n := len(e.hub.nodes)
	e.hub.mu.Unlock()
	for i := 0; i < n; i++ {
		e.hub.route(e.id, NodeID(i), env, false)
	}
	return nil
}

func (e *memEndpoint) Subscribe(stream string) <-chan Envelope {
	return e.box.subscribe(stream)
}

func (e *memEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.box.close()
	return nil
}

func (e *memEndpoint) enqueue(env Envelope) {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return
	}
	e.box.enqueue(env)
}
