package transport

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// incarnationFile is the name of the persisted incarnation counter under
// a node's durable directory.
const incarnationFile = "incarnation"

// PersistentIncarnation mints a process incarnation that is strictly
// greater than any incarnation this directory has minted before, even if
// the host clock stepped backwards across a restart (NTP correction, VM
// snapshot restore). The value is the wall clock when the clock is ahead
// of the stored floor — keeping incarnations comparable across machines —
// and floor+1 otherwise. The new value is fsynced to dir/incarnation
// before it is returned, so a kill -9 immediately after startup cannot
// reuse it.
//
// Both the TCP transport and the failure detector stamp outgoing traffic
// with the incarnation (TCPConfig.Incarnation, fd.Config.Incarnation);
// peers use it to tell a restarted process from a stale retransmission.
func PersistentIncarnation(dir string) (uint64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("transport: incarnation dir: %w", err)
	}
	path := filepath.Join(dir, incarnationFile)
	var floor uint64
	if b, err := os.ReadFile(path); err == nil {
		if n, perr := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64); perr == nil {
			floor = n
		}
		// A corrupt file falls through with floor 0: the clock value is
		// still a valid incarnation, just without the monotonic guarantee
		// the (lost) floor carried.
	}
	inc := uint64(time.Now().UnixNano())
	if inc <= floor {
		inc = floor + 1
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("transport: incarnation: %w", err)
	}
	if _, err := fmt.Fprintf(f, "%d\n", inc); err != nil {
		_ = f.Close()
		return 0, fmt.Errorf("transport: incarnation: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return 0, fmt.Errorf("transport: incarnation sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("transport: incarnation: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, fmt.Errorf("transport: incarnation rename: %w", err)
	}
	// Fsync the directory so the rename itself survives a crash.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return inc, nil
}
