package transport

import (
	"testing"
	"time"
)

// TestTCPAddPeerJoinsMesh: a node attached after startup exchanges
// traffic with the existing mesh once both sides add each other.
func TestTCPAddPeerJoinsMesh(t *testing.T) {
	Register(tcpTestMsg{})
	nodes := startMesh(t, 2)
	addrs := freeAddrs(t, 1)
	joiner, err := ListenTCP(TCPConfig{
		ID:        NodeID(2),
		Addrs:     map[NodeID]string{2: addrs[0]},
		DialRetry: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = joiner.Close() })

	full := map[NodeID]string{0: nodes[0].Addr(), 1: nodes[1].Addr(), 2: joiner.Addr()}
	for _, n := range nodes {
		n.SetPeers(full)
	}
	joiner.SetPeers(full)
	if got := nodes[0].N(); got != 3 {
		t.Fatalf("N after add = %d, want 3", got)
	}

	in := joiner.Subscribe("s")
	if err := nodes[0].Send(2, "s", tcpTestMsg{K: 42}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, in)
	if msg, ok := env.Msg.(tcpTestMsg); !ok || msg.K != 42 {
		t.Fatalf("joiner got %+v", env)
	}

	back := nodes[1].Subscribe("s")
	if err := joiner.Broadcast("s", tcpTestMsg{K: 7}); err != nil {
		t.Fatal(err)
	}
	env = recvOne(t, back)
	if env.From != 2 {
		t.Fatalf("broadcast from joiner arrived from %v", env.From)
	}
}

// TestTCPRemovePeerPromptEvenWhileDialingDeadAddress: tearing down the
// link to a dead peer must not hang on the dial retry loop.
func TestTCPRemovePeerPromptEvenWhileDialingDeadAddress(t *testing.T) {
	Register(tcpTestMsg{})
	addrs := freeAddrs(t, 2) // addr 1 is never listened on
	node, err := ListenTCP(TCPConfig{ID: 0, Addrs: addrs, DialRetry: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	// Queue traffic so the link is actively dialing the dead address.
	_ = node.Send(1, "s", tcpTestMsg{K: 1})
	done := make(chan struct{})
	go func() {
		node.RemovePeer(1)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("RemovePeer hung on a dead peer's dial loop")
	}
	if node.N() != 1 {
		t.Fatalf("N after remove = %d, want 1", node.N())
	}
	if err := node.Send(1, "s", tcpTestMsg{K: 2}); err == nil {
		t.Fatal("send to removed peer succeeded")
	}
}

// TestTCPReplacePeerAddress: re-addressing an existing peer dials the
// new address and traffic flows to the new process.
func TestTCPReplacePeerAddress(t *testing.T) {
	Register(tcpTestMsg{})
	nodes := startMesh(t, 2)
	addrs := freeAddrs(t, 1)
	// The replacement process for id 1 at a new address.
	repl, err := ListenTCP(TCPConfig{
		ID:        NodeID(1),
		Addrs:     map[NodeID]string{0: nodes[0].Addr(), 1: addrs[0]},
		DialRetry: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = repl.Close() })
	_ = nodes[1].Close() // old incarnation dies

	nodes[0].AddPeer(1, repl.Addr())
	in := repl.Subscribe("s")
	if err := nodes[0].Send(1, "s", tcpTestMsg{K: 9}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, in)
	if msg, ok := env.Msg.(tcpTestMsg); !ok || msg.K != 9 {
		t.Fatalf("replacement got %+v", env)
	}
}

// TestHubAddGrowsGroup: a hub node added at runtime is reachable and
// counted, and broadcasts from old nodes reach it.
func TestHubAddGrowsGroup(t *testing.T) {
	h := NewHub(2)
	defer h.Close()
	ep := h.Add()
	if ep.ID() != 2 {
		t.Fatalf("new node id = %v, want 2", ep.ID())
	}
	if h.Endpoint(0).N() != 3 || ep.N() != 3 {
		t.Fatal("N did not grow to 3")
	}
	in := ep.Subscribe("s")
	if err := h.Endpoint(0).Broadcast("s", "hello"); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, in)
	if env.From != 0 || env.Msg != "hello" {
		t.Fatalf("added node got %+v", env)
	}
	// And the new node can crash/restart like any other.
	h.Crash(2)
	if err := h.Endpoint(0).Send(2, "s", "dropped"); err != nil {
		t.Fatal(err)
	}
	fresh := h.Restart(2)
	in2 := fresh.Subscribe("s")
	if err := h.Endpoint(1).Send(2, "s", "alive"); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, in2); env.Msg != "alive" {
		t.Fatalf("restarted added node got %+v", env)
	}
}
