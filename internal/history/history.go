// Package history records the execution histories of all replicas and
// checks 1-copy-serializability (Theorem 4.2 and the Section 5 query
// rules) offline.
//
// The check has two parts:
//
//  1. Replica agreement: every site commits the same update transactions
//     with the same definitive indexes, classes and write sets, and
//     per-class commit orders are prefix-compatible across sites
//     (Lemma 4.1).
//  2. Serializability of the union history: a conflict graph is built
//     with one node per logical update transaction (the "1-copy" view)
//     and one node per query execution. Within a class the definitive
//     order chains the updates; each versioned query read adds a
//     writer→query edge and a query→overwriter edge. The union history
//     is serializable iff this graph is acyclic.
//
// The dirty-query counterexample of Section 5 (a query at site N ordering
// T2 before T5 while a query at N' orders T5 before T2) shows up as a
// cycle through the two query nodes and is caught by part 2.
package history

import (
	"fmt"
	"sort"
	"sync"

	"otpdb/internal/abcast"
	"otpdb/internal/db"
	"otpdb/internal/sproc"
	"otpdb/internal/storage"
	"otpdb/internal/transport"
)

// UpdateObs is one committed update transaction observed at one site.
type UpdateObs struct {
	Site    transport.NodeID
	ID      abcast.MsgID
	Classes []sproc.ClassID
	TOIndex int64
	Reads   []storage.ClassKey
	Writes  []storage.ClassKey
}

// QueryObs is one completed query at one site.
type QueryObs struct {
	Site       transport.NodeID
	QueryIndex int64
	Reads      []db.QueryRead
}

// Recorder collects observations from any number of replicas.
type Recorder struct {
	mu      sync.Mutex
	updates []UpdateObs
	queries []QueryObs
}

var _ db.HistorySink = (*Recorder)(nil)

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// RecordUpdate implements db.HistorySink.
func (r *Recorder) RecordUpdate(site transport.NodeID, id abcast.MsgID, classes []sproc.ClassID,
	toIndex int64, readSet, writeSet []storage.ClassKey) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.updates = append(r.updates, UpdateObs{
		Site:    site,
		ID:      id,
		Classes: classes,
		TOIndex: toIndex,
		Reads:   readSet,
		Writes:  writeSet,
	})
}

// RecordQuery implements db.HistorySink.
func (r *Recorder) RecordQuery(site transport.NodeID, queryIndex int64, reads []db.QueryRead) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queries = append(r.queries, QueryObs{Site: site, QueryIndex: queryIndex, Reads: reads})
}

// Counts reports how many update commits and queries were recorded.
func (r *Recorder) Counts() (updates, queries int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.updates), len(r.queries)
}

// logicalUpdate is the 1-copy view of an update transaction.
type logicalUpdate struct {
	id      abcast.MsgID
	classes map[sproc.ClassID]bool
	writes  map[storage.ClassKey]bool
}

// Check validates replica agreement and serializability of the union
// history. A nil result means the recorded execution is
// 1-copy-serializable.
func (r *Recorder) Check() error {
	r.mu.Lock()
	updates := make([]UpdateObs, len(r.updates))
	copy(updates, r.updates)
	queries := make([]QueryObs, len(r.queries))
	copy(queries, r.queries)
	r.mu.Unlock()

	logical, err := mergeUpdates(updates)
	if err != nil {
		return err
	}
	return checkGraph(logical, queries)
}

// mergeUpdates folds per-site observations into logical transactions,
// verifying agreement on id, class and write set per definitive index.
func mergeUpdates(updates []UpdateObs) (map[int64]*logicalUpdate, error) {
	logical := make(map[int64]*logicalUpdate)
	perSiteClass := make(map[transport.NodeID]map[sproc.ClassID][]int64)
	for _, u := range updates {
		lu, ok := logical[u.TOIndex]
		if !ok {
			writes := make(map[storage.ClassKey]bool, len(u.Writes))
			for _, k := range u.Writes {
				writes[k] = true
			}
			classes := make(map[sproc.ClassID]bool, len(u.Classes))
			for _, c := range u.Classes {
				classes[c] = true
			}
			logical[u.TOIndex] = &logicalUpdate{id: u.ID, classes: classes, writes: writes}
		} else {
			if lu.id != u.ID || len(lu.classes) != len(u.Classes) {
				return nil, fmt.Errorf(
					"history: index %d is %v at one site and %v at %v",
					u.TOIndex, lu.id, u.ID, u.Site)
			}
			for _, c := range u.Classes {
				if !lu.classes[c] {
					return nil, fmt.Errorf(
						"history: %v declares class %s at %v but not elsewhere",
						u.ID, c, u.Site)
				}
			}
			for _, k := range u.Writes {
				if !lu.writes[k] {
					return nil, fmt.Errorf(
						"history: %v wrote %v at %v but not elsewhere (non-deterministic procedure?)",
						u.ID, k, u.Site)
				}
			}
		}
		bySite, ok := perSiteClass[u.Site]
		if !ok {
			bySite = make(map[sproc.ClassID][]int64)
			perSiteClass[u.Site] = bySite
		}
		for _, c := range u.Classes {
			bySite[c] = append(bySite[c], u.TOIndex)
		}
	}
	// Lemma 4.1: per class, each site's commit order is ascending in the
	// definitive index (observations arrive in commit order).
	for site, bySite := range perSiteClass {
		for class, seq := range bySite {
			for i := 1; i < len(seq); i++ {
				if seq[i] <= seq[i-1] {
					return nil, fmt.Errorf(
						"history: site %v committed class %s out of definitive order (%d after %d)",
						site, class, seq[i], seq[i-1])
				}
			}
		}
	}
	return logical, nil
}

// checkGraph builds the union conflict graph and reports any cycle.
func checkGraph(logical map[int64]*logicalUpdate, queries []QueryObs) error {
	// Node numbering: updates by definitive index, then queries.
	idxs := make([]int64, 0, len(logical))
	for idx := range logical {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	node := make(map[int64]int, len(idxs))
	for i, idx := range idxs {
		node[idx] = i
	}
	n := len(idxs) + len(queries)
	adj := make([][]int, n)
	addEdge := func(a, b int) { adj[a] = append(adj[a], b) }

	// Update-update edges: the definitive order within each class (a
	// multi-class transaction chains in every class it declares).
	lastInClass := make(map[sproc.ClassID]int)
	for _, idx := range idxs {
		lu := logical[idx]
		for class := range lu.classes {
			if prev, ok := lastInClass[class]; ok && prev != node[idx] {
				addEdge(prev, node[idx])
			}
			lastInClass[class] = node[idx]
		}
	}

	// writersOf(class/key) in ascending definitive order.
	writers := make(map[storage.ClassKey][]int64)
	for _, idx := range idxs {
		lu := logical[idx]
		for k := range lu.writes {
			writers[k] = append(writers[k], idx)
		}
	}

	// Query edges.
	for qi, q := range queries {
		qNode := len(idxs) + qi
		for _, read := range q.Reads {
			ck := storage.ClassKey{Partition: storage.Partition(read.Class), Key: read.Key}
			if read.Version > 0 {
				wNode, ok := node[read.Version]
				if !ok {
					return fmt.Errorf(
						"history: query at site %v read version %d of %s/%s, but no such commit was recorded",
						q.Site, read.Version, read.Class, read.Key)
				}
				if !logical[read.Version].writes[ck] {
					return fmt.Errorf(
						"history: query read version %d of %s/%s, but T_%d did not write it",
						read.Version, read.Class, read.Key, read.Version)
				}
				addEdge(wNode, qNode)
			}
			// Edge to the earliest overwriter after the observed version.
			ws := writers[ck]
			i := sort.Search(len(ws), func(i int) bool { return ws[i] > read.Version })
			if i < len(ws) {
				addEdge(qNode, node[ws[i]])
			}
		}
	}

	if cycle := findCycle(adj); cycle != nil {
		return fmt.Errorf("history: union history not serializable: conflict cycle %v (nodes 0..%d are updates by definitive order, the rest queries)",
			cycle, len(idxs)-1)
	}
	return nil
}

// findCycle returns one cycle as a node list, or nil if the graph is
// acyclic. Iterative DFS with the classic three colors.
func findCycle(adj [][]int) []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(adj))
	parent := make([]int, len(adj))
	for i := range parent {
		parent[i] = -1
	}
	for start := range adj {
		if color[start] != white {
			continue
		}
		type frame struct{ node, edge int }
		stack := []frame{{start, 0}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.edge < len(adj[f.node]) {
				next := adj[f.node][f.edge]
				f.edge++
				switch color[next] {
				case white:
					color[next] = gray
					parent[next] = f.node
					stack = append(stack, frame{next, 0})
				case gray:
					// Found a cycle: walk parents from f.node to next.
					cycle := []int{next}
					for at := f.node; at != next && at != -1; at = parent[at] {
						cycle = append(cycle, at)
					}
					cycle = append(cycle, next)
					reverse(cycle)
					return cycle
				}
				continue
			}
			color[f.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return nil
}

func reverse(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
