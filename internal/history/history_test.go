package history_test

import (
	"strings"
	"testing"

	"otpdb/internal/abcast"
	"otpdb/internal/db"
	"otpdb/internal/history"
	"otpdb/internal/sproc"
	"otpdb/internal/storage"
	"otpdb/internal/transport"
)

func mid(n uint64) abcast.MsgID { return abcast.MsgID{Origin: 0, Seq: n} }

func keys(part string, ks ...string) []storage.ClassKey {
	out := make([]storage.ClassKey, len(ks))
	for i, k := range ks {
		out[i] = storage.ClassKey{Partition: storage.Partition(part), Key: storage.Key(k)}
	}
	return out
}

func cls(cs ...string) []sproc.ClassID {
	out := make([]sproc.ClassID, len(cs))
	for i, c := range cs {
		out[i] = sproc.ClassID(c)
	}
	return out
}

func TestEmptyHistoryIsSerializable(t *testing.T) {
	r := history.NewRecorder()
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestAgreeingSitesPass(t *testing.T) {
	r := history.NewRecorder()
	for site := 0; site < 3; site++ {
		r.RecordUpdate(transport.NodeID(site), mid(1), cls("x"), 1, nil, keys("x", "k"))
		r.RecordUpdate(transport.NodeID(site), mid(2), cls("x"), 2, nil, keys("x", "k"))
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	u, q := r.Counts()
	if u != 6 || q != 0 {
		t.Fatalf("counts = %d,%d", u, q)
	}
}

func TestClassDisagreementDetected(t *testing.T) {
	r := history.NewRecorder()
	r.RecordUpdate(0, mid(1), cls("x"), 1, nil, keys("x", "k"))
	r.RecordUpdate(1, mid(1), cls("y"), 1, nil, keys("y", "k"))
	if err := r.Check(); err == nil {
		t.Fatal("class disagreement not detected")
	}
}

func TestIDDisagreementDetected(t *testing.T) {
	r := history.NewRecorder()
	r.RecordUpdate(0, mid(1), cls("x"), 1, nil, keys("x", "k"))
	r.RecordUpdate(1, mid(9), cls("x"), 1, nil, keys("x", "k"))
	if err := r.Check(); err == nil {
		t.Fatal("id disagreement not detected")
	}
}

func TestNonDeterministicWriteSetDetected(t *testing.T) {
	r := history.NewRecorder()
	r.RecordUpdate(0, mid(1), cls("x"), 1, nil, keys("x", "a"))
	r.RecordUpdate(1, mid(1), cls("x"), 1, nil, keys("x", "b"))
	if err := r.Check(); err == nil {
		t.Fatal("write-set divergence not detected")
	}
}

func TestOutOfOrderClassCommitDetected(t *testing.T) {
	r := history.NewRecorder()
	// Site 0 commits T2 before T1 within the same class.
	r.RecordUpdate(0, mid(2), cls("x"), 2, nil, keys("x", "k"))
	r.RecordUpdate(0, mid(1), cls("x"), 1, nil, keys("x", "k"))
	err := r.Check()
	if err == nil || !strings.Contains(err.Error(), "definitive order") {
		t.Fatalf("err = %v", err)
	}
}

func TestSnapshotQueriesAreSerializable(t *testing.T) {
	r := history.NewRecorder()
	for site := 0; site < 2; site++ {
		r.RecordUpdate(transport.NodeID(site), mid(2), cls("x"), 2, nil, keys("x", "kx"))
		r.RecordUpdate(transport.NodeID(site), mid(5), cls("y"), 5, nil, keys("y", "ky"))
	}
	// Site 0's query at index 3: sees T2's kx, initial ky.
	r.RecordQuery(0, 3, []db.QueryRead{
		{Class: "x", Key: "kx", Version: 2},
		{Class: "y", Key: "ky", Version: 0},
	})
	// Site 1's query at index 5: sees both.
	r.RecordQuery(1, 5, []db.QueryRead{
		{Class: "x", Key: "kx", Version: 2},
		{Class: "y", Key: "ky", Version: 5},
	})
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
}

// The Section 5 counterexample: query Q at site N observes T2 -> Q -> T5,
// query Q' at site N' observes T5 -> Q' -> T2. The union history has the
// cycle T2 -> Q -> T5 -> Q' -> T2 and must be rejected.
func TestSection5DirtyQueryCycleDetected(t *testing.T) {
	r := history.NewRecorder()
	for site := 0; site < 2; site++ {
		r.RecordUpdate(transport.NodeID(site), mid(2), cls("x"), 2, nil, keys("x", "kx"))
		r.RecordUpdate(transport.NodeID(site), mid(5), cls("y"), 5, nil, keys("y", "ky"))
	}
	// Q at N: read kx after T2, ky before T5.
	r.RecordQuery(0, 5, []db.QueryRead{
		{Class: "x", Key: "kx", Version: 2},
		{Class: "y", Key: "ky", Version: 0},
	})
	// Q' at N': read ky after T5, kx before T2 — only possible with
	// dirty reads, impossible with Section 5 snapshots.
	r.RecordQuery(1, 5, []db.QueryRead{
		{Class: "y", Key: "ky", Version: 5},
		{Class: "x", Key: "kx", Version: 0},
	})
	err := r.Check()
	if err == nil || !strings.Contains(err.Error(), "not serializable") {
		t.Fatalf("err = %v, want conflict cycle", err)
	}
}

func TestQueryReadOfUnknownVersionDetected(t *testing.T) {
	r := history.NewRecorder()
	r.RecordUpdate(0, mid(1), cls("x"), 1, nil, keys("x", "k"))
	r.RecordQuery(0, 9, []db.QueryRead{{Class: "x", Key: "k", Version: 7}})
	if err := r.Check(); err == nil {
		t.Fatal("read of unrecorded version not detected")
	}
}

func TestQueryReadOfNonWrittenKeyDetected(t *testing.T) {
	r := history.NewRecorder()
	r.RecordUpdate(0, mid(1), cls("x"), 1, nil, keys("x", "a"))
	r.RecordQuery(0, 1, []db.QueryRead{{Class: "x", Key: "b", Version: 1}})
	if err := r.Check(); err == nil {
		t.Fatal("version/key mismatch not detected")
	}
}
