package statex

import (
	"context"
	"hash/crc32"
	"testing"
	"time"

	"otpdb/internal/abcast"
	"otpdb/internal/recovery"
	"otpdb/internal/storage"
	"otpdb/internal/transport"
)

// resumeOpts keeps failover fast: the first donor's silence is detected
// on the chunk timeout.
var resumeOpts = Options{RespTimeout: 2 * time.Second, ChunkTimeout: 200 * time.Millisecond}

// TestFetchResumesTailAcrossFailover: donor 1 dies mid-tail after four
// verified entries; the failover JoinReq advertises those entries, so
// donor 2 serves only the missing range, and the assembled backlog is
// the stitched whole.
func TestFetchResumesTailAcrossFailover(t *testing.T) {
	hub := transport.NewHub(3)
	defer hub.Close()
	all := mkEntries(1, 10)

	scriptDonor(hub.Endpoint(1), func(joiner transport.NodeID, req JoinReq) {
		ep := hub.Endpoint(1)
		_ = ep.Send(joiner, StreamXfer, JoinResp{Xfer: req.Xfer, Mode: TailOnly})
		_ = ep.Send(joiner, StreamXfer, TailChunk{Xfer: req.Xfer, Seq: 0, Entries: all[:4]})
		// ... and silence: died mid-tail.
	}, make(chan uint64, 1))

	from2 := make(chan int64, 1)
	scriptDonor(hub.Endpoint(2), func(joiner transport.NodeID, req JoinReq) {
		from2 <- req.From
		ep := hub.Endpoint(2)
		_ = ep.Send(joiner, StreamXfer, JoinResp{Xfer: req.Xfer, Mode: TailOnly})
		_ = ep.Send(joiner, StreamXfer, TailChunk{Xfer: req.Xfer, Seq: 0, Entries: all[req.From:]})
		_ = ep.Send(joiner, StreamXfer, Done{Xfer: req.Xfer, StartStage: 8, ResumeSeq: 2, Chunks: 1, Frontier: 10})
	}, make(chan uint64, 1))

	xfer, err := Fetch(context.Background(), hub.Endpoint(0), 0, []transport.NodeID{1, 2}, resumeOpts)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-from2:
		if f != 4 {
			t.Fatalf("failover advertised From=%d, want 4 (only the missing range)", f)
		}
	default:
		t.Fatal("second donor never asked")
	}
	if xfer.Donor != 2 || xfer.Mode != TailOnly || xfer.Base != 0 {
		t.Fatalf("transfer = %+v", xfer)
	}
	if len(xfer.Join.Backlog) != 10 {
		t.Fatalf("stitched backlog has %d entries, want 10", len(xfer.Join.Backlog))
	}
	for i, ent := range xfer.Join.Backlog {
		if ent.Seq != uint64(i+1) {
			t.Fatalf("backlog[%d].Seq = %d", i, ent.Seq)
		}
	}
	if xfer.Join.StartStage != 8 {
		t.Fatalf("StartStage = %d", xfer.Join.StartStage)
	}
}

// ckptChunks encodes a checkpoint into wire chunks of the given size.
func ckptChunks(t *testing.T, xfer uint64, ck *storage.Checkpoint, chunkBytes int) []CkptChunk {
	t.Helper()
	data, err := recovery.EncodeCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	var out []CkptChunk
	for seq, off := 0, 0; ; seq++ {
		end := off + chunkBytes
		if end > len(data) {
			end = len(data)
		}
		out = append(out, CkptChunk{
			Xfer: xfer, Seq: seq, Data: data[off:end],
			CRC:  crc32.Checksum(data[off:end], castagnoli),
			Last: end == len(data),
		})
		if end == len(data) {
			return out
		}
		off = end
	}
}

// TestFetchRetainsCheckpointAcrossFailover: donor 1 streams a complete
// checkpoint plus part of the tail, then dies. The checkpoint is NOT
// re-fetched: the failover advertises checkpoint index + verified tail,
// donor 2 serves tail-only, and the final transfer still carries donor
// 1's checkpoint.
func TestFetchRetainsCheckpointAcrossFailover(t *testing.T) {
	hub := transport.NewHub(3)
	defer hub.Close()
	ck := mkCheckpoint(7)
	tail := mkEntries(8, 12)

	scriptDonor(hub.Endpoint(1), func(joiner transport.NodeID, req JoinReq) {
		ep := hub.Endpoint(1)
		_ = ep.Send(joiner, StreamXfer, JoinResp{Xfer: req.Xfer, Mode: CheckpointTail})
		for _, chunk := range ckptChunks(t, req.Xfer, ck, 64) {
			_ = ep.Send(joiner, StreamXfer, chunk)
		}
		_ = ep.Send(joiner, StreamXfer, TailChunk{Xfer: req.Xfer, Seq: 0, Entries: tail[:2]}) // 8, 9
		// ... and silence: died mid-tail.
	}, make(chan uint64, 1))

	from2 := make(chan int64, 1)
	scriptDonor(hub.Endpoint(2), func(joiner transport.NodeID, req JoinReq) {
		from2 <- req.From
		ep := hub.Endpoint(2)
		_ = ep.Send(joiner, StreamXfer, JoinResp{Xfer: req.Xfer, Mode: TailOnly})
		_ = ep.Send(joiner, StreamXfer, TailChunk{Xfer: req.Xfer, Seq: 0, Entries: tail[req.From-7:]})
		_ = ep.Send(joiner, StreamXfer, Done{Xfer: req.Xfer, StartStage: 13, Chunks: 1, Frontier: 12})
	}, make(chan uint64, 1))

	xfer, err := Fetch(context.Background(), hub.Endpoint(0), 0, []transport.NodeID{1, 2}, resumeOpts)
	if err != nil {
		t.Fatal(err)
	}
	if f := <-from2; f != 9 {
		t.Fatalf("failover advertised From=%d, want 9 (checkpoint 7 + 2 verified entries)", f)
	}
	if xfer.Mode != CheckpointTail || xfer.Donor != 2 {
		t.Fatalf("transfer mode=%v donor=%v", xfer.Mode, xfer.Donor)
	}
	if xfer.Checkpoint == nil || xfer.Checkpoint.Index != 7 || xfer.Base != 7 {
		t.Fatalf("checkpoint = %+v base=%d", xfer.Checkpoint, xfer.Base)
	}
	// The retained checkpoint reconstructs donor 1's state bit-for-bit.
	want, got := storage.NewStore(), storage.NewStore()
	want.InstallCheckpoint(ck)
	got.InstallCheckpoint(xfer.Checkpoint)
	if want.Digest() != got.Digest() {
		t.Fatal("retained checkpoint digest differs")
	}
	if len(xfer.Join.Backlog) != 5 || xfer.Join.Backlog[0].Seq != 8 || xfer.Join.Backlog[4].Seq != 12 {
		t.Fatalf("stitched backlog = %+v", xfer.Join.Backlog)
	}
}

// TestFetchDiscardsPartialCheckpoint: an incomplete checkpoint stream is
// donor-specific bytes and cannot be resumed elsewhere — the failover
// starts over from the joiner's own index.
func TestFetchDiscardsPartialCheckpoint(t *testing.T) {
	hub := transport.NewHub(3)
	defer hub.Close()
	scriptDonor(hub.Endpoint(1), func(joiner transport.NodeID, req JoinReq) {
		ep := hub.Endpoint(1)
		_ = ep.Send(joiner, StreamXfer, JoinResp{Xfer: req.Xfer, Mode: CheckpointTail})
		data := []byte("first half of a checkpoint")
		_ = ep.Send(joiner, StreamXfer, CkptChunk{
			Xfer: req.Xfer, Seq: 0, Data: data, CRC: crc32.Checksum(data, castagnoli),
		})
		// ... and silence, mid-checkpoint.
	}, make(chan uint64, 1))

	from2 := make(chan int64, 1)
	good := &fakeSource{entries: mkEntries(3, 6), oldest: 3, stage: 4}
	donor2 := NewServer(hub.Endpoint(2), good)
	donor2.Start()
	defer donor2.Stop()
	// Observe the failover's advertised index through a tap on the
	// request stream of a third scripted observer? Simpler: the joiner
	// recovered to 2, so anything but From=2 would change the served
	// range; assert via the result instead.
	_ = from2

	xfer, err := Fetch(context.Background(), hub.Endpoint(0), 2, []transport.NodeID{1, 2}, resumeOpts)
	if err != nil {
		t.Fatal(err)
	}
	if xfer.Donor != 2 || xfer.Mode != TailOnly || xfer.Base != 2 {
		t.Fatalf("transfer = %+v", xfer)
	}
	if xfer.Checkpoint != nil {
		t.Fatal("partial checkpoint was retained")
	}
	if len(xfer.Join.Backlog) != 4 || xfer.Join.Backlog[0].Seq != 3 {
		t.Fatalf("backlog = %+v", xfer.Join.Backlog)
	}
}

// TestFetchResumeConsistencyWithJoinState: the stitched transfer feeds a
// JoinState whose backlog covers exactly (Base, StartStage-era frontier]
// with no duplicate or missing positions — the invariant applyJoin
// depends on.
func TestFetchResumeConsistencyWithJoinState(t *testing.T) {
	hub := transport.NewHub(3)
	defer hub.Close()
	all := mkEntries(5, 20)
	scriptDonor(hub.Endpoint(1), func(joiner transport.NodeID, req JoinReq) {
		ep := hub.Endpoint(1)
		_ = ep.Send(joiner, StreamXfer, JoinResp{Xfer: req.Xfer, Mode: TailOnly})
		_ = ep.Send(joiner, StreamXfer, TailChunk{Xfer: req.Xfer, Seq: 0, Entries: all[:7]}) // 5..11
	}, make(chan uint64, 1))
	scriptDonor(hub.Endpoint(2), func(joiner transport.NodeID, req JoinReq) {
		ep := hub.Endpoint(2)
		_ = ep.Send(joiner, StreamXfer, JoinResp{Xfer: req.Xfer, Mode: TailOnly})
		_ = ep.Send(joiner, StreamXfer, TailChunk{Xfer: req.Xfer, Seq: 0, Entries: all[req.From-4:]})
		_ = ep.Send(joiner, StreamXfer, Done{Xfer: req.Xfer, StartStage: 21, ResumeSeq: 11, Chunks: 1, Frontier: 20})
	}, make(chan uint64, 1))

	xfer, err := Fetch(context.Background(), hub.Endpoint(0), 4, []transport.NodeID{1, 2}, resumeOpts)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for _, ent := range xfer.Join.Backlog {
		if ent.Seq <= uint64(xfer.Base) {
			t.Fatalf("backlog entry %d at or below base %d", ent.Seq, xfer.Base)
		}
		if seen[ent.Seq] {
			t.Fatalf("duplicate backlog position %d", ent.Seq)
		}
		seen[ent.Seq] = true
	}
	if len(seen) != 16 {
		t.Fatalf("backlog covers %d positions, want 16", len(seen))
	}
	if xfer.Join.ResumeSeq != 11+ResumeSeqSlack {
		t.Fatalf("ResumeSeq = %d", xfer.Join.ResumeSeq)
	}
	var _ abcast.JoinState = xfer.Join
}
