package statex

import (
	"context"
	"testing"
	"time"

	"otpdb/internal/recovery"
	"otpdb/internal/storage"
	"otpdb/internal/transport"
)

// frontierFake adds the optional Frontier hook to a fakeSource, the way
// ReplicaSource reports the replica's LastTO.
type frontierFake struct {
	*fakeSource
	frontier int64
}

func (f frontierFake) Frontier() int64 { return f.frontier }

// recordDonor runs a scripted donor that records every JoinReq it sees.
func recordDonor(ep transport.Endpoint, reqs chan<- JoinReq, script func(joiner transport.NodeID, req JoinReq)) {
	in := ep.Subscribe(StreamReq)
	go func() {
		for env := range in {
			if m, ok := env.Msg.(JoinReq); ok {
				reqs <- m
				if script != nil {
					script(env.From, m)
				}
			}
		}
	}()
}

// TestFetchParallelSplit: the checkpoint streams from donor 1 while the
// tail above donor 1's frontier streams from donor 2; the stitched
// transfer is complete and the tail donor demonstrably served it.
func TestFetchParallelSplit(t *testing.T) {
	hub := transport.NewHub(3)
	defer hub.Close()
	ck := mkCheckpoint(7)
	src := &fakeSource{ck: ck, entries: mkEntries(8, 12), oldest: 8, stage: 13, resume: 4}
	donorA := NewServer(hub.Endpoint(1), frontierFake{src, 7}, WithChunkBytes(64))
	donorA.Start()
	defer donorA.Stop()

	reqs := make(chan JoinReq, 4)
	recordDonor(hub.Endpoint(2), reqs, func(joiner transport.NodeID, req JoinReq) {
		ep := hub.Endpoint(2)
		_ = ep.Send(joiner, StreamXfer, JoinResp{Xfer: req.Xfer, Mode: TailOnly, Frontier: 12})
		_ = ep.Send(joiner, StreamXfer, TailChunk{Xfer: req.Xfer, Seq: 0, Entries: mkEntries(8, 12)})
		_ = ep.Send(joiner, StreamXfer, Done{Xfer: req.Xfer, StartStage: 13, ResumeSeq: 4, Chunks: 1, Frontier: 12})
	})

	xfer, err := Fetch(context.Background(), hub.Endpoint(0), 2, []transport.NodeID{1, 2},
		Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if xfer.Mode != CheckpointTail || xfer.Base != 7 || xfer.Checkpoint == nil || xfer.Checkpoint.Index != 7 {
		t.Fatalf("transfer = %+v", xfer)
	}
	if len(xfer.Join.Backlog) != 5 || xfer.Join.Backlog[0].Seq != 8 || xfer.Join.Backlog[4].Seq != 12 {
		t.Fatalf("backlog = %+v", xfer.Join.Backlog)
	}
	if xfer.Join.StartStage != 13 {
		t.Fatalf("StartStage = %d, want 13", xfer.Join.StartStage)
	}
	// The tail donor was asked for exactly the range above the
	// checkpoint donor's frontier, tail-only.
	select {
	case req := <-reqs:
		if !req.TailOnly || req.From != 7 {
			t.Fatalf("tail donor request = %+v, want TailOnly from 7", req)
		}
	default:
		t.Fatal("tail donor was never contacted — the fetch did not parallelize")
	}
	want, got := storage.NewStore(), storage.NewStore()
	want.InstallCheckpoint(ck)
	got.InstallCheckpoint(xfer.Checkpoint)
	if want.Digest() != got.Digest() {
		t.Fatal("streamed checkpoint digest != donor checkpoint digest")
	}
}

// TestFetchParallelTailDonorSilent: the tail donor never answers; the
// banked checkpoint survives the timeout and the sequential loop
// fetches the tail from the checkpoint donor — parallel never makes a
// fetch less likely to succeed.
func TestFetchParallelTailDonorSilent(t *testing.T) {
	hub := transport.NewHub(3)
	defer hub.Close()
	ck := mkCheckpoint(7)
	src := &fakeSource{ck: ck, entries: mkEntries(8, 12), oldest: 8, stage: 13, resume: 0}
	donorA := NewServer(hub.Endpoint(1), frontierFake{src, 7})
	donorA.Start()
	defer donorA.Stop()
	reqs := make(chan JoinReq, 4)
	recordDonor(hub.Endpoint(2), reqs, nil) // records, never answers

	xfer, err := Fetch(context.Background(), hub.Endpoint(0), 2, []transport.NodeID{1, 2},
		Options{Parallel: true, RespTimeout: time.Second, ChunkTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if xfer.Base != 7 || len(xfer.Join.Backlog) != 5 || xfer.Join.Backlog[0].Seq != 8 {
		t.Fatalf("transfer = %+v backlog = %+v", xfer, xfer.Join.Backlog)
	}
	select {
	case <-reqs:
	default:
		t.Fatal("tail donor was never contacted")
	}
}

// TestFetchParallelTailDeclined: the tail donor's ring cannot serve the
// frontier (it declines the TailOnly request); the checkpoint half
// completes and the sequential loop closes the gap — no timeout burned.
func TestFetchParallelTailDeclined(t *testing.T) {
	hub := transport.NewHub(3)
	defer hub.Close()
	ck := mkCheckpoint(7)
	src := &fakeSource{ck: ck, entries: mkEntries(8, 12), oldest: 8, stage: 13, resume: 0}
	donorA := NewServer(hub.Endpoint(1), frontierFake{src, 7})
	donorA.Start()
	defer donorA.Stop()
	// Donor 2 retains nothing useful: a TailOnly request is declined.
	donorB := NewServer(hub.Endpoint(2), &fakeSource{oldest: 100})
	donorB.Start()
	defer donorB.Stop()

	start := time.Now()
	xfer, err := Fetch(context.Background(), hub.Endpoint(0), 2, []transport.NodeID{1, 2},
		Options{Parallel: true, RespTimeout: 5 * time.Second, ChunkTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if xfer.Base != 7 || len(xfer.Join.Backlog) != 5 {
		t.Fatalf("transfer = %+v", xfer)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("declined tail took the timeout path instead of failing fast")
	}
}

// TestFetchParallelDegeneratesToTailOnly: when the first donor's ring
// covers the advertised index there is no checkpoint to split; the
// parallel fetch completes as a plain tail-only transfer and the second
// donor is never contacted.
func TestFetchParallelDegeneratesToTailOnly(t *testing.T) {
	hub := transport.NewHub(3)
	defer hub.Close()
	src := &fakeSource{entries: mkEntries(1, 10), oldest: 1, stage: 6, resume: 3}
	donor := NewServer(hub.Endpoint(1), src)
	donor.Start()
	defer donor.Stop()
	reqs := make(chan JoinReq, 4)
	recordDonor(hub.Endpoint(2), reqs, nil)

	xfer, err := Fetch(context.Background(), hub.Endpoint(0), 4, []transport.NodeID{1, 2},
		Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if xfer.Mode != TailOnly || xfer.Base != 4 || len(xfer.Join.Backlog) != 6 {
		t.Fatalf("transfer = %+v", xfer)
	}
	select {
	case req := <-reqs:
		t.Fatalf("tail donor contacted with %+v during a tail-only transfer", req)
	default:
	}
}

// TestServeNoTail pins the donor half of the split: a NoTail checkpoint
// request streams the checkpoint and terminates without TailChunks.
func TestServeNoTail(t *testing.T) {
	hub := transport.NewHub(2)
	defer hub.Close()
	ck := mkCheckpoint(5)
	src := &fakeSource{ck: ck, entries: mkEntries(6, 9), oldest: 6, stage: 10, resume: 2}
	donor := NewServer(hub.Endpoint(1), frontierFake{src, 5}, WithChunkBytes(64))
	donor.Start()
	defer donor.Stop()

	joiner := hub.Endpoint(0)
	sub := joiner.Subscribe(StreamXfer)
	if err := joiner.Send(1, StreamReq, JoinReq{Xfer: 77, From: 1, NoTail: true}); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	sawResp := false
	deadline := time.After(5 * time.Second)
	for {
		var env transport.Envelope
		select {
		case env = <-sub:
		case <-deadline:
			t.Fatal("transfer never terminated")
		}
		switch m := env.Msg.(type) {
		case JoinResp:
			if m.Mode != CheckpointTail || m.Frontier != 5 {
				t.Fatalf("JoinResp = %+v, want checkpoint+tail with frontier 5", m)
			}
			sawResp = true
		case CkptChunk:
			buf = append(buf, m.Data...)
		case TailChunk:
			t.Fatalf("NoTail transfer carried a TailChunk: %+v", m)
		case Done:
			if !sawResp {
				t.Fatal("Done before JoinResp")
			}
			if m.Err != "" {
				t.Fatalf("donor aborted: %s", m.Err)
			}
			back, err := recovery.DecodeCheckpoint(buf)
			if err != nil {
				t.Fatal(err)
			}
			if back.Index != 5 {
				t.Fatalf("checkpoint index = %d, want 5", back.Index)
			}
			return
		}
	}
}

// TestServeTailOnlyDeclinedWhenPruned pins the other donor half: a
// TailOnly request outside the ring is declined, never answered with a
// checkpoint the joiner did not ask for.
func TestServeTailOnlyDeclinedWhenPruned(t *testing.T) {
	hub := transport.NewHub(2)
	defer hub.Close()
	donor := NewServer(hub.Endpoint(1), &fakeSource{ck: mkCheckpoint(5), oldest: 100})
	donor.Start()
	defer donor.Stop()

	joiner := hub.Endpoint(0)
	sub := joiner.Subscribe(StreamXfer)
	if err := joiner.Send(1, StreamReq, JoinReq{Xfer: 78, From: 1, TailOnly: true}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-sub:
		m, ok := env.Msg.(JoinResp)
		if !ok {
			t.Fatalf("first message = %T, want JoinResp", env.Msg)
		}
		if m.Err == "" {
			t.Fatalf("pruned TailOnly request was not declined: %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("donor never answered")
	}
}
