// Package statex is the peer-to-peer state-transfer service that lets a
// restarted replica rejoin a running cluster over the ordinary transport
// streams — the wire-native form of the catch-up protocol that
// otpdb.Cluster.RestartSite used to perform by function call. It keeps
// recovery traffic off the hot broadcast path: transfers ride dedicated
// streams and never touch consensus.
//
// The protocol is a negotiation followed by a one-way stream:
//
//  1. The joiner advertises the definitive index it recovered locally
//     (JoinReq.From — 0 for a site with no usable local state).
//  2. The donor answers with a mode (JoinResp): "tail only" when its
//     retained definitive history still covers From+1, or "checkpoint +
//     tail" when the backlog ring has evicted that range and the joiner
//     needs a full snapshot first.
//  3. In checkpoint mode the donor streams its newest consistent
//     checkpoint in CRC-framed chunks (CkptChunk) — the same gob+CRC
//     encoding internal/recovery writes to disk, so a received
//     checkpoint is bit-identical to a local one.
//  4. The donor streams the definitive backlog above the base index
//     (TailChunk) and terminates with Done, which carries the consensus
//     stage to resume at and the joiner's pre-crash broadcast sequence
//     floor — captured atomically with the backlog, so checkpoint +
//     backlog + live stages cover the definitive order with no gap and
//     no overlap.
//
// The client (Fetch) tries donors in order and fails over to the next
// peer when a transfer dies mid-stream: a silent donor (per-chunk
// receive timeout), a CRC-corrupt or out-of-sequence chunk, and an
// explicit donor error all abandon the attempt, send Abort so the donor
// unpins promptly, and move on.
//
// Failover resumes rather than restarts: verified progress survives the
// donor switch. A fully received (CRC-validated, decoded) checkpoint is
// retained and the next donor is asked only for the range above it, and
// the verified contiguous prefix of the backlog is kept — the next
// JoinReq advertises base + received entries, so only the missing range
// is re-fetched. Definitive entries are identical at every site, which
// is what makes cross-donor stitching sound. The one thing that cannot
// resume across donors is a *partial* checkpoint stream: checkpoint
// bytes are donor-specific encodings (two donors' checkpoints of the
// same state need not be byte-identical), so chunks from one donor can
// never be completed by another; an incomplete checkpoint is discarded
// and the next donor streams its own from chunk 0.
package statex

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"
	"sync/atomic"
	"time"

	"otpdb/internal/abcast"
	"otpdb/internal/events"
	"otpdb/internal/metrics"
	"otpdb/internal/recovery"
	"otpdb/internal/storage"
	"otpdb/internal/transport"
)

// Transport streams. Requests flow joiner -> donor on StreamReq; the
// transfer itself flows donor -> joiner on StreamXfer. Keeping the two
// directions on separate streams lets a node run a donor Server and,
// earlier in its life, a Fetch, without the two contending for one
// subscription channel.
const (
	// StreamReq carries JoinReq and Abort (joiner -> donor).
	StreamReq = "sx.req"
	// StreamXfer carries JoinResp, CkptChunk, TailChunk and Done
	// (donor -> joiner).
	StreamXfer = "sx.xfer"
)

// Mode is the negotiated transfer shape.
type Mode int

// Transfer modes.
const (
	// TailOnly transfers just the definitive backlog above the joiner's
	// advertised index: the joiner's local state is current enough that
	// the donor's retained history closes the gap.
	TailOnly Mode = iota + 1
	// CheckpointTail transfers a full donor checkpoint first, then the
	// backlog above it: the joiner's index has fallen below the donor's
	// retained history.
	CheckpointTail
)

func (m Mode) String() string {
	switch m {
	case TailOnly:
		return "tail-only"
	case CheckpointTail:
		return "checkpoint+tail"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Wire messages.
type (
	// JoinReq opens a transfer: the joiner advertises the definitive
	// index its local recovery reached.
	JoinReq struct {
		// Xfer identifies the transfer; chunks of abandoned attempts are
		// filtered by it.
		Xfer uint64
		// From is the joiner's recovered definitive index (0 = nothing).
		From int64
		// TailOnly, when set, forbids checkpoint mode: the donor serves
		// the backlog above From or declines outright. A parallel fetch
		// uses it for the tail half — a checkpoint from this donor would
		// duplicate the one already streaming from the other donor.
		TailOnly bool
		// NoTail, when set, trims checkpoint mode to the checkpoint
		// alone: the donor streams its snapshot and terminates without
		// TailChunks, because the joiner is tailing from another donor in
		// parallel. Ignored in tail-only mode (when the donor's ring
		// covers From there is no checkpoint to split off, and the tail
		// is the whole transfer).
		NoTail bool
	}
	// JoinResp is the donor's negotiation answer.
	//
	//otp:fence Xfer
	JoinResp struct {
		Xfer uint64
		// Mode is the transfer shape the donor chose.
		Mode Mode
		// Frontier is the donor's definitive index at negotiation time.
		// A parallel fetch uses it as the tail donor's start: the
		// checkpoint about to be captured lands at or above it, so a
		// tail from Frontier overlaps the checkpoint rather than leaving
		// a gap below it. Zero when the donor cannot report one (older
		// donors, sources without a frontier) — the joiner then skips
		// the parallel tail and completes sequentially.
		Frontier int64
		// Err, when non-empty, declines the transfer (the joiner fails
		// over to another donor).
		Err string
	}
	// CkptChunk is one CRC-framed slice of the encoded checkpoint.
	// Chunks are numbered from 0 and the last one is flagged; the
	// assembled bytes are the recovery checkpoint encoding (gob body +
	// CRC-32C trailer), which the joiner validates a second time as a
	// whole on decode.
	//
	//otp:fence Xfer
	CkptChunk struct {
		Xfer uint64
		Seq  int
		Data []byte
		// CRC is the CRC-32C of Data — per-chunk framing so corruption
		// is caught at the first bad chunk, not after the full stream.
		CRC  uint32
		Last bool
	}
	// TailChunk is one batch of the definitive backlog, in ascending
	// contiguous Seq order across chunks.
	//
	//otp:fence Xfer
	TailChunk struct {
		Xfer    uint64
		Seq     int
		Entries []abcast.DefEntry
	}
	// Done terminates a transfer: the consensus stage the joiner must
	// resume at and the largest broadcast sequence number the donor has
	// seen from the joiner's origin, captured atomically with the last
	// backlog entry. A non-empty Err aborts the transfer instead (e.g.
	// the donor's checkpoint failed mid-stream).
	//
	// The transport between joiner and donor may reorder messages (the
	// chaos network models per-packet jitter), so Done can overtake the
	// chunks it terminates. Chunks and Frontier let the joiner tell a
	// complete stream from a truncated one: it holds the Done until all
	// Chunks tail chunks arrived, and the assembled backlog must reach
	// exactly Frontier.
	//
	//otp:fence Xfer
	Done struct {
		Xfer       uint64
		StartStage uint64
		ResumeSeq  uint64
		// Chunks is the number of TailChunks the donor sent before this
		// Done.
		Chunks int
		// Frontier is the definitive index the stream covers: checkpoint
		// index (if any) plus every tail entry sent.
		Frontier int64
		Err      string
	}
	// Abort tells the donor the joiner gave up on a transfer, so the
	// donor stops streaming (and unpins) promptly.
	Abort struct {
		Xfer uint64
	}
)

// RegisterWire registers the state-transfer message types with the gob
// codec used by the TCP transport.
func RegisterWire() {
	transport.Register(JoinReq{}, JoinResp{}, CkptChunk{}, TailChunk{}, Done{}, Abort{})
}

// ResumeSeqSlack is added to the donor-reported broadcast sequence floor
// when the joiner resumes numbering its own messages. A single donor can
// under-report: a message the crashing origin managed to deliver to some
// third site but not to the donor would collide with a re-used sequence
// number and be silently deduplicated there. Sequence numbers only need
// to be unique, so jumping far past anything plausibly in flight closes
// the window outright.
const ResumeSeqSlack = 1 << 20

// Transfer is the assembled result of a successful fetch.
type Transfer struct {
	// Mode is the negotiated shape.
	Mode Mode
	// Donor is the peer that served the transfer.
	Donor transport.NodeID
	// Checkpoint is the donor snapshot to install (nil in TailOnly mode
	// — the joiner's own recovered state is the base).
	Checkpoint *storage.Checkpoint
	// Base is the definitive index the joiner's store holds once the
	// checkpoint (if any) is installed: Join.Backlog starts at Base+1.
	Base int64
	// Join primes the joiner's broadcast engine: resume stage, backlog,
	// and the slack-adjusted broadcast sequence floor.
	Join abcast.JoinState
}

// Options tunes the client side of a transfer.
type Options struct {
	// RespTimeout bounds the wait for the donor's JoinResp (default 5s).
	// This is also the price of probing a dead donor, so keep it short.
	RespTimeout time.Duration
	// ChunkTimeout bounds the silence between stream messages after the
	// JoinResp (default 45s). It must exceed the donor's checkpoint-
	// capture deadline (WithCheckpointTimeout, default 30s), which is
	// the longest legitimate silence — between the JoinResp and the
	// first chunk, while the donor waits on its commit frontier. A
	// capture that overruns then fails donor-side first (a terminal
	// Done{Err}, immediate failover) instead of burning this timeout.
	ChunkTimeout time.Duration
	// Parallel, with two or more donors, splits a checkpoint transfer
	// across them: the checkpoint streams from the first donor
	// (NoTail) while the backlog above its frontier tails from the
	// second (TailOnly) — the two biggest transfer components ride
	// different donors' uplinks concurrently, cutting rejoin time for
	// large states. Any failure on the parallel path falls back to the
	// sequential protocol with whatever progress was verified, so
	// Parallel never makes a fetch less likely to succeed.
	Parallel bool
	// Metrics, when non-nil, registers transfer telemetry (bytes and
	// chunks received, catch-up entries, donor failovers) under the
	// scope's labels.
	Metrics *metrics.Scope
	// Events, when non-nil, receives flight-recorder entries for the
	// transfer negotiation: start, per-donor failover, and outcome.
	Events *events.Recorder
}

// xferMetrics is the per-fetch instrument set, threaded into every
// attempt so chunks verified on receipt are counted where they are
// verified. Instruments from a nil scope are inert, so the zero cost
// of the uninstrumented path is one atomic add per chunk.
type xferMetrics struct {
	bytes, chunks, entries *metrics.Counter
}

func newXferMetrics(s *metrics.Scope) xferMetrics {
	return xferMetrics{
		bytes:   s.Counter("statex_transfer_bytes_total"),
		chunks:  s.Counter("statex_transfer_chunks_total"),
		entries: s.Counter("statex_catchup_entries_total"),
	}
}

func (o Options) withDefaults() Options {
	if o.RespTimeout <= 0 {
		o.RespTimeout = 5 * time.Second
	}
	if o.ChunkTimeout <= 0 {
		o.ChunkTimeout = 45 * time.Second
	}
	return o
}

// castagnoli matches the WAL/checkpoint CRC flavour.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// xferCounter generates per-process transfer identifiers. Seeded with
// the clock at init so identifiers stay unique across a process
// restart: a survivor's transport retransmits the unacknowledged chunks
// of a pre-crash transfer to the restarted process, and those must not
// collide with the identifiers of its fresh attempts. (Donors
// additionally key transfers by joiner, so two joiners whose clocks
// collide cannot interfere with each other.)
var xferCounter atomic.Uint64

func init() {
	xferCounter.Store(uint64(time.Now().UnixNano()))
}

func nextXferID() uint64 { return xferCounter.Add(1) }

// progress is the verified state retained across donor attempts, so a
// failover re-fetches only the missing range instead of restarting the
// transfer from scratch.
type progress struct {
	// ck is a fully received and decoded checkpoint from an earlier
	// attempt (nil when none completed).
	ck *storage.Checkpoint
	// entries is the verified contiguous backlog prefix above base():
	// entries[i].Seq == base()+1+i.
	entries []abcast.DefEntry
}

// base is the definitive index the retained state reaches before the
// backlog prefix: the retained checkpoint's index, or the joiner's own
// recovered index.
func (p *progress) base(from int64) int64 {
	if p.ck != nil {
		return p.ck.Index
	}
	return from
}

// advertise is the index the next JoinReq carries: everything at or
// below it is already verified locally.
func (p *progress) advertise(from int64) int64 {
	return p.base(from) + int64(len(p.entries))
}

// Fetch negotiates and downloads a state transfer from the first donor
// able to serve it, failing over down the donors list when a transfer
// dies mid-stream. `from` is the definitive index the joiner recovered
// locally. Verified progress (a completed checkpoint, the contiguous
// backlog prefix) carries across the failover: later donors are asked
// only for the missing range. The endpoint must be attached to the
// cluster transport; no broadcast engine needs to be running yet.
func Fetch(ctx context.Context, ep transport.Endpoint, from int64, donors []transport.NodeID, opts Options) (*Transfer, error) {
	if len(donors) == 0 {
		return nil, errors.New("statex: no donors to fetch from")
	}
	opts = opts.withDefaults()
	sub := ep.Subscribe(StreamXfer)
	prog := &progress{}
	xm := newXferMetrics(opts.Metrics)
	failovers := opts.Metrics.Counter("statex_donor_failover_total")
	site := int(ep.ID())
	opts.Events.Record(site, events.KindStatex,
		"phase", "fetch", "from", strconv.FormatInt(from, 10),
		"donors", fmt.Sprint(donors))
	if opts.Parallel && len(donors) >= 2 {
		t, err := fetchParallel(ctx, ep, sub, prog, from, donors, opts, xm)
		if err != nil {
			return nil, err
		}
		if t != nil {
			return t, nil
		}
		// The parallel phase did not finish the transfer (it may have
		// banked a checkpoint and a backlog prefix into prog); the
		// sequential loop below completes — or, after a total parallel
		// failure, restarts — the fetch.
	}
	var errs []error
	for _, donor := range donors {
		if err := ctx.Err(); err != nil {
			errs = append(errs, err)
			break
		}
		t, err := fetchFrom(ctx, ep, sub, prog, from, donor, opts, xm)
		if err == nil {
			opts.Events.Record(site, events.KindStatex,
				"phase", "fetched", "donor", donor.String(),
				"base", strconv.FormatInt(t.Base, 10))
			return t, nil
		}
		failovers.Inc()
		opts.Events.Record(site, events.KindStatex,
			"phase", "failover", "donor", donor.String(), "err", err.Error())
		errs = append(errs, fmt.Errorf("donor %v: %w", donor, err))
	}
	opts.Events.Record(site, events.KindStatex, "phase", "exhausted")
	return nil, fmt.Errorf("statex: no donor could serve: %w", errors.Join(errs...))
}

// fetchParallel runs the split phase of a parallel fetch: donors[0]
// streams its checkpoint (JoinReq.NoTail) while donors[1] tails the
// backlog above donors[0]'s advertised frontier (JoinReq.TailOnly),
// the two streams demultiplexed by sender on the shared subscription.
// The phase ends without a terminal Done of its own — it banks the
// checkpoint and the contiguous backlog prefix above it into prog and
// returns (nil, nil), leaving the sequential loop to fetch the (small)
// remainder under an atomically consistent Done. Two exceptions return
// a complete Transfer directly: the checkpoint donor's ring covered
// the advertised index (TailOnly answer — the "checkpoint" transfer
// was the whole thing), or nothing was salvageable (also (nil, nil):
// the sequential loop simply restarts from scratch). A non-nil error
// is returned only for terminal conditions (context cancelled,
// endpoint closed).
func fetchParallel(ctx context.Context, ep transport.Endpoint, sub <-chan transport.Envelope,
	prog *progress, from int64, donors []transport.NodeID, opts Options, xm xferMetrics) (*Transfer, error) {
	ckDonor, tailDonor := donors[0], donors[1]
	if ckDonor == tailDonor {
		return nil, nil
	}
	advFrom := prog.advertise(from)
	ckXfer := nextXferID()
	if err := ep.Send(ckDonor, StreamReq, JoinReq{Xfer: ckXfer, From: advFrom, NoTail: true}); err != nil {
		return nil, nil
	}
	ckSt := &attempt{donor: ckDonor, prog: prog, from: from, advFrom: advFrom, m: xm}
	var (
		tailSt   *attempt
		tailXfer uint64
		frontier int64
		ckFin    bool
		tailFin  bool
		tailDead bool
	)
	abortCk := func() { _ = ep.Send(ckDonor, StreamReq, Abort{Xfer: ckXfer}) }
	abortTail := func() {
		if tailSt != nil && !tailFin && !tailDead {
			_ = ep.Send(tailDonor, StreamReq, Abort{Xfer: tailXfer})
		}
	}

	wait := opts.RespTimeout
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for !ckFin || (tailSt != nil && !tailFin && !tailDead) {
		var env transport.Envelope
		select {
		case <-ctx.Done():
			abortCk()
			abortTail()
			return nil, ctx.Err()
		case <-timer.C:
			abortCk()
			abortTail()
			ckSt.salvage()
			return nil, nil
		case e, ok := <-sub:
			if !ok {
				return nil, transport.ErrClosed
			}
			env = e
		}
		switch env.From {
		case ckDonor:
			if jr, ok := env.Msg.(JoinResp); ok && jr.Xfer == ckXfer {
				frontier = jr.Frontier
			}
			done, final, err := ckSt.onMessage(env.Msg, ckXfer)
			if err != nil {
				// The checkpoint half is the foundation; without it the
				// speculative tail has nothing to attach to. Fold what
				// completed into prog and let the sequential loop retry.
				abortCk()
				abortTail()
				ckSt.salvage()
				return nil, nil
			}
			if final {
				ckFin = true
				if ckSt.mode == TailOnly {
					abortTail()
					t, aerr := ckSt.assemble(done)
					if aerr != nil {
						ckSt.salvage()
						return nil, nil
					}
					ckSt.succeeded = true
					return t, nil
				}
			}
			if !ckFin && ckSt.gotResp && ckSt.mode == CheckpointTail && tailSt == nil && !tailDead && frontier > advFrom {
				// The donor confirmed a checkpoint is coming and told us
				// its frontier: start tailing from there in parallel. The
				// checkpoint will land at or above the frontier, so the
				// tail overlaps it — overlap is trimmed at stitch time,
				// a gap could not be.
				tailXfer = nextXferID()
				if ep.Send(tailDonor, StreamReq, JoinReq{Xfer: tailXfer, From: frontier, TailOnly: true}) == nil {
					tailSt = &attempt{donor: tailDonor, prog: &progress{}, from: frontier, advFrom: frontier, m: xm}
				} else {
					tailDead = true
				}
			}
		case tailDonor:
			if tailSt == nil {
				continue
			}
			_, final, err := tailSt.onMessage(env.Msg, tailXfer)
			if err != nil {
				// The tail half is pure speculation; losing it only costs
				// the overlap. Drop it and keep the checkpoint streaming.
				_ = ep.Send(tailDonor, StreamReq, Abort{Xfer: tailXfer})
				tailDead = true
			} else if final {
				tailFin = true
			}
		default:
			continue
		}
		if ckSt.gotResp {
			wait = opts.ChunkTimeout
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
	}

	// Bank the split transfer: the decoded checkpoint becomes the base,
	// and the tail entries above its index become the verified prefix
	// (tail entries start at frontier+1 ≤ ck.Index+1, verified
	// contiguous on receipt, so trimming the overlap leaves exactly
	// ck.Index+1...). The sequential loop completes the fetch from
	// advertise() = ck.Index + len(prefix) under a terminal Done.
	if !ckSt.ckptDone {
		return nil, nil
	}
	ck, err := recovery.DecodeCheckpoint(ckSt.ckptBuf.Bytes())
	if err != nil {
		return nil, nil
	}
	prog.ck = ck
	prog.entries = nil
	if tailSt != nil && tailFin && len(tailSt.entries) > 0 {
		if skip := ck.Index - frontier; skip >= 0 && int64(len(tailSt.entries)) > skip {
			prog.entries = append([]abcast.DefEntry(nil), tailSt.entries[skip:]...)
		}
	}
	return nil, nil
}

// attempt is the receive-side state machine of one transfer attempt.
type attempt struct {
	donor transport.NodeID
	// prog is the cross-attempt verified state; from is the joiner's
	// original recovered index. advFrom is what this attempt advertised
	// (prog.advertise(from) at attempt start).
	prog    *progress
	from    int64
	advFrom int64

	// m counts verified receive-side progress. Always populated via
	// newXferMetrics (unregistered instruments without a scope).
	m xferMetrics

	mode     Mode
	gotResp  bool
	ckptBuf  bytes.Buffer
	ckptSeq  int
	ckptDone bool
	tailSeq  int
	// expectSeq is the next definitive position the tail must carry
	// (0 = not yet known: checkpoint mode before the first entry).
	expectSeq uint64
	entries   []abcast.DefEntry
	// pendCk/pendTail hold chunks that arrived ahead of their turn and
	// fin a Done that overtook the stream it terminates: the transport
	// under a chaotic network reorders messages, so the state machine
	// applies chunks in Seq order from these buffers and only finalizes
	// once every chunk the Done accounts for has been applied.
	pendCk   map[int]CkptChunk
	pendTail map[int]TailChunk
	fin      *Done
	// succeeded marks an attempt whose Transfer assembled: its progress
	// went into the result, so the deferred salvage has nothing to do
	// (and must not re-decode a large checkpoint for nothing).
	succeeded bool
}

// fetchFrom runs one attempt against one donor, resuming from the
// retained progress. On failure, newly verified progress is salvaged
// into prog before returning.
func fetchFrom(ctx context.Context, ep transport.Endpoint, sub <-chan transport.Envelope,
	prog *progress, from int64, donor transport.NodeID, opts Options, xm xferMetrics) (*Transfer, error) {
	xfer := nextXferID()
	advFrom := prog.advertise(from)
	if err := ep.Send(donor, StreamReq, JoinReq{Xfer: xfer, From: advFrom}); err != nil {
		return nil, err
	}
	abort := func() { _ = ep.Send(donor, StreamReq, Abort{Xfer: xfer}) }

	st := &attempt{donor: donor, prog: prog, from: from, advFrom: advFrom, m: xm}
	defer st.salvage()
	wait := opts.RespTimeout
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		var env transport.Envelope
		select {
		case <-ctx.Done():
			abort()
			return nil, ctx.Err()
		case <-timer.C:
			abort()
			return nil, fmt.Errorf("statex: transfer timed out after %v of silence", wait)
		case e, ok := <-sub:
			if !ok {
				return nil, transport.ErrClosed
			}
			env = e
		}
		if env.From != donor {
			continue // stale traffic from an abandoned attempt
		}
		done, final, err := st.onMessage(env.Msg, xfer)
		if err != nil {
			abort()
			return nil, err
		}
		if final {
			t, aerr := st.assemble(done)
			if aerr == nil {
				st.succeeded = true
			}
			return t, aerr
		}
		if st.gotResp {
			wait = opts.ChunkTimeout
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
	}
}

// onMessage advances the state machine by one wire message. The
// transport may reorder messages arbitrarily (chaos jitter models
// per-packet delay), so chunks that arrive ahead of their turn are
// buffered and applied in Seq order, and a Done that overtakes the
// stream is held until every chunk it accounts for has been applied.
// It returns the terminal Done only once the stream is complete.
func (st *attempt) onMessage(msg any, xfer uint64) (Done, bool, error) {
	switch m := msg.(type) {
	case JoinResp:
		if m.Xfer != xfer || st.gotResp {
			return Done{}, false, nil // stale or duplicate: ignore
		}
		if m.Err != "" {
			return Done{}, false, fmt.Errorf("statex: donor declined: %s", m.Err)
		}
		if m.Mode != TailOnly && m.Mode != CheckpointTail {
			return Done{}, false, fmt.Errorf("statex: donor proposed unknown mode %d", int(m.Mode))
		}
		st.gotResp = true
		st.mode = m.Mode
		if m.Mode == TailOnly {
			// The tail continues the verified prefix: position advFrom+1
			// first. In checkpoint mode the start is the (yet unknown)
			// checkpoint index + 1, pinned when the first entry arrives
			// and cross-checked against the decoded index in assemble.
			st.expectSeq = uint64(st.advFrom) + 1
		}
	case CkptChunk:
		if m.Xfer != xfer || m.Seq < st.ckptSeq {
			return Done{}, false, nil // stale or already applied
		}
		if st.gotResp && st.mode != CheckpointTail {
			return Done{}, false, errors.New("statex: checkpoint chunk in tail-only transfer")
		}
		if crc32.Checksum(m.Data, castagnoli) != m.CRC {
			return Done{}, false, fmt.Errorf("statex: checkpoint chunk %d CRC mismatch", m.Seq)
		}
		st.m.chunks.Inc()
		st.m.bytes.Add(uint64(len(m.Data)))
		if st.pendCk == nil {
			st.pendCk = make(map[int]CkptChunk)
		}
		st.pendCk[m.Seq] = m
	case TailChunk:
		if m.Xfer != xfer || m.Seq < st.tailSeq {
			return Done{}, false, nil // stale or already applied
		}
		st.m.chunks.Inc()
		if st.pendTail == nil {
			st.pendTail = make(map[int]TailChunk)
		}
		st.pendTail[m.Seq] = m
	case Done:
		if m.Xfer != xfer {
			return Done{}, false, nil
		}
		if m.Err != "" {
			return Done{}, false, fmt.Errorf("statex: donor aborted: %s", m.Err)
		}
		d := m
		st.fin = &d
	}
	if err := st.drain(); err != nil {
		return Done{}, false, err
	}
	if st.fin != nil && st.gotResp &&
		(st.mode == TailOnly || st.ckptDone) && st.tailSeq == st.fin.Chunks {
		return *st.fin, true, nil
	}
	return Done{}, false, nil
}

// drain applies buffered chunks in order as far as contiguity allows.
// Checkpoint bytes first (their Last flag gates the tail), then tail
// entries, each verified on apply so salvaged progress is trustworthy.
//
//otp:fenced pendCk/pendTail only hold chunks onMessage admitted after comparing m.Xfer against this attempt's id
func (st *attempt) drain() error {
	if !st.gotResp {
		return nil
	}
	if st.mode == CheckpointTail && !st.ckptDone {
		for {
			m, ok := st.pendCk[st.ckptSeq]
			if !ok {
				break
			}
			delete(st.pendCk, st.ckptSeq)
			st.ckptSeq++
			st.ckptBuf.Write(m.Data)
			if m.Last {
				st.ckptDone = true
				break
			}
		}
	}
	if st.mode == CheckpointTail && !st.ckptDone {
		return nil // the tail attaches above the checkpoint; wait for it
	}
	for {
		m, ok := st.pendTail[st.tailSeq]
		if !ok {
			return nil
		}
		delete(st.pendTail, st.tailSeq)
		st.tailSeq++
		// Verify contiguity as entries arrive, not at assembly: entries
		// verified here are salvageable progress if the stream dies.
		for _, ent := range m.Entries {
			if st.expectSeq == 0 {
				st.expectSeq = ent.Seq
			}
			if ent.Seq != st.expectSeq {
				return fmt.Errorf("statex: backlog gap: entry has position %d, want %d",
					ent.Seq, st.expectSeq)
			}
			st.expectSeq++
			st.entries = append(st.entries, ent)
			st.m.entries.Inc()
		}
	}
}

// salvage folds this attempt's verified progress into the cross-attempt
// state so the next donor serves only the missing range. A completed
// (decoded) checkpoint supersedes everything retained before it; a
// partial checkpoint stream is discarded (its bytes are donor-specific
// and cannot be completed by another donor). Tail entries are kept only
// when they verifiably extend the retained prefix. Runs via defer; a
// successful attempt skips it — its progress is already in the result,
// and re-decoding a large checkpoint for nothing would double the
// joiner's install cost.
func (st *attempt) salvage() {
	if st.succeeded {
		return
	}
	switch st.mode {
	case CheckpointTail:
		if !st.ckptDone {
			return
		}
		ck, err := recovery.DecodeCheckpoint(st.ckptBuf.Bytes())
		if err != nil {
			return
		}
		st.prog.ck = ck
		st.prog.entries = nil
		if len(st.entries) > 0 && st.entries[0].Seq == uint64(ck.Index)+1 {
			st.prog.entries = st.entries
		}
	case TailOnly:
		// Verified on receipt to start at advFrom+1, which is exactly
		// base()+len(prog.entries)+1: a contiguous extension.
		st.prog.entries = append(st.prog.entries, st.entries...)
	}
}

// assemble validates the completed stream and builds the Transfer,
// stitching retained progress from earlier attempts under this donor's
// terminal Done.
//
//otp:fenced the Done passed in is st.fin, stored by onMessage only after comparing m.Xfer against this attempt's id
func (st *attempt) assemble(d Done) (*Transfer, error) {
	t := &Transfer{Mode: st.mode, Donor: st.donor}
	var entries []abcast.DefEntry
	switch st.mode {
	case CheckpointTail:
		// This donor streamed its own checkpoint; it supersedes any
		// retained one (its index is at least the advertised from).
		if !st.ckptDone {
			return nil, errors.New("statex: checkpoint stream truncated")
		}
		ck, err := recovery.DecodeCheckpoint(st.ckptBuf.Bytes())
		if err != nil {
			return nil, err
		}
		t.Checkpoint = ck
		t.Base = ck.Index
		entries = st.entries
	case TailOnly:
		// This donor extended the verified prefix; the base (and any
		// checkpoint) come from the retained progress.
		t.Checkpoint = st.prog.ck
		t.Base = st.prog.base(st.from)
		if t.Checkpoint != nil {
			t.Mode = CheckpointTail
		}
		entries = append(append([]abcast.DefEntry{}, st.prog.entries...), st.entries...)
	}
	for i, ent := range entries {
		if ent.Seq != uint64(t.Base)+1+uint64(i) {
			return nil, fmt.Errorf("statex: backlog gap: entry %d has position %d, want %d",
				i, ent.Seq, uint64(t.Base)+1+uint64(i))
		}
	}
	// End-to-end truncation guard: the assembled backlog must reach
	// exactly the frontier the donor's Done accounts for. A reordering
	// or loss that swallowed trailing chunks fails here instead of
	// silently joining the group with missing history.
	if got := t.Base + int64(len(entries)); got != d.Frontier {
		return nil, fmt.Errorf("statex: backlog truncated: assembled through %d, donor frontier %d", got, d.Frontier)
	}
	t.Join = abcast.JoinState{
		StartStage: d.StartStage,
		ResumeSeq:  d.ResumeSeq + ResumeSeqSlack,
		Backlog:    entries,
	}
	return t, nil
}
