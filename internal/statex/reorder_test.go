package statex

import (
	"context"
	"strings"
	"testing"
	"time"

	"otpdb/internal/transport"
)

// The wire between joiner and donor is not FIFO: the chaos network
// models per-packet jitter, so chunks and even the terminal Done can
// arrive in any order. These tests pin the two sides of the guarantee:
// a reordered-but-complete stream assembles exactly, and a stream whose
// trailing chunks never arrive fails loudly instead of joining the
// group with silently missing history.

// TestFetchReorderedStreamAssembles: the donor's messages are delivered
// fully reversed — Done first, then tail chunks highest-Seq first, then
// checkpoint chunks highest-Seq first, JoinResp last. The fetch must
// still assemble the complete transfer.
func TestFetchReorderedStreamAssembles(t *testing.T) {
	hub := transport.NewHub(2)
	defer hub.Close()
	ck := mkCheckpoint(7)
	tail := mkEntries(8, 12)

	scriptDonor(hub.Endpoint(1), func(joiner transport.NodeID, req JoinReq) {
		ep := hub.Endpoint(1)
		cks := ckptChunks(t, req.Xfer, ck, 64)
		var msgs []any
		msgs = append(msgs, JoinResp{Xfer: req.Xfer, Mode: CheckpointTail, Frontier: 7})
		for _, c := range cks {
			msgs = append(msgs, c)
		}
		msgs = append(msgs,
			TailChunk{Xfer: req.Xfer, Seq: 0, Entries: tail[:2]},
			TailChunk{Xfer: req.Xfer, Seq: 1, Entries: tail[2:]},
			Done{Xfer: req.Xfer, StartStage: 13, ResumeSeq: 4, Chunks: 2, Frontier: 12})
		for i := len(msgs) - 1; i >= 0; i-- {
			_ = ep.Send(joiner, StreamXfer, msgs[i])
		}
	}, make(chan uint64, 1))

	xfer, err := Fetch(context.Background(), hub.Endpoint(0), 0, []transport.NodeID{1},
		Options{RespTimeout: 2 * time.Second, ChunkTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if xfer.Mode != CheckpointTail || xfer.Base != 7 || xfer.Checkpoint == nil || xfer.Checkpoint.Index != 7 {
		t.Fatalf("transfer = %+v", xfer)
	}
	if len(xfer.Join.Backlog) != 5 || xfer.Join.Backlog[0].Seq != 8 || xfer.Join.Backlog[4].Seq != 12 {
		t.Fatalf("backlog = %+v", xfer.Join.Backlog)
	}
	if xfer.Join.StartStage != 13 {
		t.Fatalf("StartStage = %d, want 13", xfer.Join.StartStage)
	}
}

// TestFetchTruncatedStreamRejected: the Done accounts for two tail
// chunks but the second never arrives. Accepting the stream would make
// the joiner skip the missing transactions forever (it resumes at
// StartStage regardless) — the fetch must time out and fail instead of
// assembling a truncated backlog.
func TestFetchTruncatedStreamRejected(t *testing.T) {
	hub := transport.NewHub(2)
	defer hub.Close()
	tail := mkEntries(1, 8)
	scriptDonor(hub.Endpoint(1), func(joiner transport.NodeID, req JoinReq) {
		ep := hub.Endpoint(1)
		_ = ep.Send(joiner, StreamXfer, JoinResp{Xfer: req.Xfer, Mode: TailOnly, Frontier: 8})
		_ = ep.Send(joiner, StreamXfer, TailChunk{Xfer: req.Xfer, Seq: 0, Entries: tail[:4]})
		// Chunk 1 (entries 5..8) is lost for good; Done still promises it.
		_ = ep.Send(joiner, StreamXfer, Done{Xfer: req.Xfer, StartStage: 9, ResumeSeq: 3, Chunks: 2, Frontier: 8})
	}, make(chan uint64, 1))

	_, err := Fetch(context.Background(), hub.Endpoint(0), 0, []transport.NodeID{1},
		Options{RespTimeout: 2 * time.Second, ChunkTimeout: 300 * time.Millisecond})
	if err == nil {
		t.Fatal("truncated stream was accepted")
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v, want a timeout waiting for the missing chunk", err)
	}
}
