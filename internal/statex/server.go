package statex

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"
	"sync"
	"time"

	"otpdb/internal/abcast"
	"otpdb/internal/events"
	"otpdb/internal/recovery"
	"otpdb/internal/storage"
	"otpdb/internal/transport"
)

// Source is the donor-side state access a Server serves from: a
// consistent checkpoint of the committed state and the retained
// definitive backlog. db.Replica and abcast.Optimistic satisfy the two
// halves; ReplicaSource binds them.
type Source interface {
	// Checkpoint captures a consistent snapshot at the current
	// definitive index. The context bounds how long the capture may pin
	// versions against pruning — implementations must honour
	// cancellation while waiting for the commit frontier.
	Checkpoint(ctx context.Context) (*storage.Checkpoint, error)
	// DefinitiveLog returns the retained definitive history from
	// position `from`, the next consensus stage a joiner should resume
	// at, and the largest broadcast sequence number seen from `origin`,
	// captured atomically. It returns abcast.ErrHistoryPruned when the
	// retention ring no longer covers `from`.
	DefinitiveLog(from uint64, origin transport.NodeID) ([]abcast.DefEntry, uint64, uint64, error)
}

// ReplicaSource adapts a replica and its broadcast engine to Source.
// The interface fields match db.Replica and abcast.Optimistic, kept
// structural so this package needs no dependency on internal/db.
type ReplicaSource struct {
	Replica interface {
		Checkpoint(ctx context.Context) (*storage.Checkpoint, error)
		LastTO() int64
	}
	Engine interface {
		DefinitiveLog(from uint64, origin transport.NodeID) ([]abcast.DefEntry, uint64, uint64, error)
	}
}

var _ Source = ReplicaSource{}

// Checkpoint implements Source.
func (s ReplicaSource) Checkpoint(ctx context.Context) (*storage.Checkpoint, error) {
	return s.Replica.Checkpoint(ctx)
}

// Frontier reports the replica's current definitive index — the
// optional negotiation hint a parallel joiner tails from (see
// JoinResp.Frontier).
func (s ReplicaSource) Frontier() int64 {
	return s.Replica.LastTO()
}

// DefinitiveLog implements Source.
func (s ReplicaSource) DefinitiveLog(from uint64, origin transport.NodeID) ([]abcast.DefEntry, uint64, uint64, error) {
	return s.Engine.DefinitiveLog(from, origin)
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithChunkBytes sets the checkpoint chunk size (default 256 KiB).
func WithChunkBytes(n int) ServerOption {
	return func(s *Server) { s.chunkBytes = n }
}

// WithTailBatch sets how many backlog entries ride in one TailChunk
// (default 1024).
func WithTailBatch(n int) ServerOption {
	return func(s *Server) { s.tailBatch = n }
}

// WithCheckpointTimeout bounds how long one transfer may pin the donor's
// checkpoint machinery (default 30s). A joiner that vanished mid-
// negotiation cannot hold versions pinned past this deadline.
func WithCheckpointTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.ckptTimeout = d }
}

// WithEvents arms the flight recorder: every transfer served is logged
// (start and completion) so donor activity survives in the causal log.
func WithEvents(rec *events.Recorder) ServerOption {
	return func(s *Server) { s.events = rec }
}

// Server serves state transfers at a live site. One server per
// endpoint; transfers run concurrently, each on its own goroutine with
// its own cancelable context (Abort from the joiner, or Stop, cancels).
type Server struct {
	ep          transport.Endpoint
	src         Source
	chunkBytes  int
	tailBatch   int
	ckptTimeout time.Duration
	events      *events.Recorder

	mu      sync.Mutex
	active  map[xferKey]context.CancelFunc
	started bool
	closed  bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	stop   chan struct{}
	done   chan struct{}
}

// NewServer creates a donor server bound to ep serving from src. Call
// Start to begin answering requests.
func NewServer(ep transport.Endpoint, src Source, opts ...ServerOption) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		ep:          ep,
		src:         src,
		chunkBytes:  256 << 10,
		tailBatch:   1024,
		ckptTimeout: 30 * time.Second,
		active:      make(map[xferKey]context.CancelFunc),
		ctx:         ctx,
		cancel:      cancel,
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Start launches the request loop.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	go s.run()
}

// Stop cancels in-flight transfers and halts the server. Idempotent.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if s.started {
			<-s.done
		}
		return
	}
	s.closed = true
	started := s.started
	s.mu.Unlock()
	s.cancel()
	close(s.stop)
	if started {
		<-s.done
	}
	s.wg.Wait()
}

// Serving reports the number of transfers currently in flight — the
// "am I a donor right now" signal operators see in STATS.
func (s *Server) Serving() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.active)
}

func (s *Server) run() {
	defer close(s.done)
	in := s.ep.Subscribe(StreamReq)
	for {
		select {
		case env, ok := <-in:
			if !ok {
				return
			}
			switch m := env.Msg.(type) {
			case JoinReq:
				s.beginServe(env.From, m)
			case Abort:
				s.mu.Lock()
				if cancel, ok := s.active[xferKey{env.From, m.Xfer}]; ok {
					cancel()
				}
				s.mu.Unlock()
			}
		case <-s.stop:
			return
		}
	}
}

// xferKey identifies a transfer at the donor: transfer identifiers are
// only unique per joiner, so two joiners must never share an entry.
type xferKey struct {
	joiner transport.NodeID
	xfer   uint64
}

// beginServe registers a transfer and serves it on its own goroutine.
func (s *Server) beginServe(from transport.NodeID, req JoinReq) {
	ctx, cancel := context.WithCancel(s.ctx)
	key := xferKey{from, req.Xfer}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return
	}
	s.active[key] = cancel
	s.wg.Add(1)
	s.mu.Unlock()
	s.events.Record(int(s.ep.ID()), events.KindStatex,
		"phase", "serve", "joiner", from.String(),
		"from", strconv.FormatInt(req.From, 10))
	go func() {
		defer func() {
			s.mu.Lock()
			delete(s.active, key)
			s.mu.Unlock()
			cancel()
			s.wg.Done()
			s.events.Record(int(s.ep.ID()), events.KindStatex,
				"phase", "served", "joiner", from.String())
		}()
		s.serve(ctx, from, req)
	}()
}

// serve runs one transfer: negotiate, stream, terminate.
func (s *Server) serve(ctx context.Context, joiner transport.NodeID, req JoinReq) {
	send := func(msg any) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return s.ep.Send(joiner, StreamXfer, msg)
	}

	// Negotiate: can the retained backlog alone close the joiner's gap?
	entries, stage, resumeSeq, err := s.src.DefinitiveLog(uint64(req.From)+1, joiner)
	base := req.From
	switch {
	case err == nil:
		frontier := req.From + int64(len(entries))
		if err := send(JoinResp{Xfer: req.Xfer, Mode: TailOnly, Frontier: frontier}); err != nil {
			return
		}
	case errors.Is(err, abcast.ErrHistoryPruned):
		if req.TailOnly {
			// The joiner wants only a tail (it is streaming a checkpoint
			// from another donor); a checkpoint from here would be a
			// duplicate, so decline instead.
			_ = send(JoinResp{Xfer: req.Xfer, Err: err.Error()})
			return
		}
		// Frontier lets a parallel joiner start a tail elsewhere before
		// this checkpoint lands (the capture can only move the index
		// upward, so a tail from here overlaps rather than gaps). Zero
		// when the source cannot report one; the joiner then completes
		// sequentially.
		var frontier int64
		if f, ok := s.src.(interface{ Frontier() int64 }); ok {
			frontier = f.Frontier()
		}
		if err := send(JoinResp{Xfer: req.Xfer, Mode: CheckpointTail, Frontier: frontier}); err != nil {
			return
		}
		entries, stage, resumeSeq, base, err = s.serveCheckpoint(ctx, joiner, req)
		if err != nil {
			_ = send(Done{Xfer: req.Xfer, Err: err.Error()})
			return
		}
		if req.NoTail {
			// Checkpoint-only transfer: the joiner tails from another
			// donor. Done still carries the stage/sequence pair, though a
			// parallel joiner takes those from its final tail donor.
			entries = nil
		}
	default:
		_ = send(JoinResp{Xfer: req.Xfer, Err: err.Error()})
		return
	}

	chunks := (len(entries) + s.tailBatch - 1) / s.tailBatch
	frontier := base + int64(len(entries))
	for seq := 0; len(entries) > 0; seq++ {
		n := s.tailBatch
		if n > len(entries) {
			n = len(entries)
		}
		if err := send(TailChunk{Xfer: req.Xfer, Seq: seq, Entries: entries[:n]}); err != nil {
			return
		}
		entries = entries[n:]
	}
	_ = send(Done{Xfer: req.Xfer, StartStage: stage, ResumeSeq: resumeSeq, Chunks: chunks, Frontier: frontier})
}

// serveCheckpoint captures and streams a checkpoint, then returns the
// backlog above it and the checkpoint's definitive index. The capture
// is deadline-bounded so an abandoned transfer cannot leave donor
// versions pinned.
//
//otp:fenced donor side: only reads Last off chunks it built itself; Xfer fencing is the joiner's job (attempt.onMessage)
func (s *Server) serveCheckpoint(ctx context.Context, joiner transport.NodeID, req JoinReq) ([]abcast.DefEntry, uint64, uint64, int64, error) {
	ckctx, cancel := context.WithTimeout(ctx, s.ckptTimeout)
	ck, err := s.src.Checkpoint(ckctx)
	cancel()
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("checkpoint: %w", err)
	}
	data, err := recovery.EncodeCheckpoint(ck)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	for seq, off := 0, 0; ; seq++ {
		end := off + s.chunkBytes
		if end > len(data) {
			end = len(data)
		}
		chunk := CkptChunk{
			Xfer: req.Xfer,
			Seq:  seq,
			Data: data[off:end],
			CRC:  crc32.Checksum(data[off:end], castagnoli),
			Last: end == len(data),
		}
		if err := ctx.Err(); err != nil {
			return nil, 0, 0, 0, err
		}
		if err := s.ep.Send(joiner, StreamXfer, chunk); err != nil {
			return nil, 0, 0, 0, err
		}
		if chunk.Last {
			break
		}
		off = end
	}
	// The backlog above the checkpoint. The ring can evict between the
	// capture and this query under extreme decision rates; one retry
	// against a fresh checkpoint would hit the same race, so fail the
	// transfer and let the joiner retry from negotiation.
	entries, stage, resumeSeq, err := s.src.DefinitiveLog(uint64(ck.Index)+1, joiner)
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("backlog above checkpoint %d: %w", ck.Index, err)
	}
	return entries, stage, resumeSeq, ck.Index, nil
}
