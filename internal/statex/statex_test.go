package statex

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"strings"
	"testing"
	"time"

	"otpdb/internal/abcast"
	"otpdb/internal/recovery"
	"otpdb/internal/storage"
	"otpdb/internal/testutil"
	"otpdb/internal/transport"
)

// fakeSource scripts the donor-side state: a retention window over a
// fixed definitive history, an optional checkpoint, and an optional
// blocking Checkpoint used by the pin-bounding tests.
type fakeSource struct {
	ck      *storage.Checkpoint
	entries []abcast.DefEntry
	oldest  uint64 // DefinitiveLog below this reports ErrHistoryPruned
	stage   uint64
	resume  uint64

	// blockCkpt, when non-nil, makes Checkpoint park until its context
	// is cancelled; the observed error is sent on the channel.
	blockCkpt chan error
}

func (f *fakeSource) Checkpoint(ctx context.Context) (*storage.Checkpoint, error) {
	if f.blockCkpt != nil {
		<-ctx.Done()
		f.blockCkpt <- ctx.Err()
		return nil, ctx.Err()
	}
	return f.ck, nil
}

func (f *fakeSource) DefinitiveLog(from uint64, _ transport.NodeID) ([]abcast.DefEntry, uint64, uint64, error) {
	if from < f.oldest {
		return nil, 0, 0, fmt.Errorf("%w: want from %d, oldest retained %d", abcast.ErrHistoryPruned, from, f.oldest)
	}
	var out []abcast.DefEntry
	for _, e := range f.entries {
		if e.Seq >= from {
			out = append(out, e)
		}
	}
	return out, f.stage, f.resume, nil
}

// mkEntries builds a contiguous definitive history [from, to].
func mkEntries(from, to uint64) []abcast.DefEntry {
	var out []abcast.DefEntry
	for s := from; s <= to; s++ {
		out = append(out, abcast.DefEntry{
			Seq:     s,
			ID:      abcast.MsgID{Origin: 1, Seq: s},
			Payload: fmt.Sprintf("payload-%d", s),
			HasBody: true,
		})
	}
	return out
}

// mkCheckpoint builds a real storage checkpoint at the given index.
func mkCheckpoint(index int64) *storage.Checkpoint {
	s := storage.NewStore()
	for i := int64(1); i <= index; i++ {
		s.InstallCommit(i, []storage.ClassKeyValue{
			{Partition: "p", Key: storage.Key(fmt.Sprintf("k%d", i%4)), Value: storage.Int64Value(i)},
		})
	}
	return s.CheckpointAt(index)
}

func TestFetchTailOnly(t *testing.T) {
	hub := transport.NewHub(2)
	defer hub.Close()
	src := &fakeSource{entries: mkEntries(1, 10), oldest: 1, stage: 6, resume: 3}
	donor := NewServer(hub.Endpoint(1), src)
	donor.Start()
	defer donor.Stop()

	xfer, err := Fetch(context.Background(), hub.Endpoint(0), 4, []transport.NodeID{1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if xfer.Mode != TailOnly || xfer.Donor != 1 || xfer.Base != 4 {
		t.Fatalf("transfer = %+v", xfer)
	}
	if xfer.Checkpoint != nil {
		t.Fatal("tail-only transfer carried a checkpoint")
	}
	if len(xfer.Join.Backlog) != 6 || xfer.Join.Backlog[0].Seq != 5 || xfer.Join.Backlog[5].Seq != 10 {
		t.Fatalf("backlog = %+v", xfer.Join.Backlog)
	}
	if xfer.Join.StartStage != 6 {
		t.Fatalf("StartStage = %d, want 6", xfer.Join.StartStage)
	}
	if xfer.Join.ResumeSeq != 3+ResumeSeqSlack {
		t.Fatalf("ResumeSeq = %d, want %d", xfer.Join.ResumeSeq, 3+ResumeSeqSlack)
	}
}

// TestFetchCheckpointFallback: the donor's backlog ring no longer covers
// the joiner's gap, so the transfer falls back to checkpoint + tail, and
// the streamed checkpoint reconstructs the donor state bit-for-bit.
func TestFetchCheckpointFallback(t *testing.T) {
	hub := transport.NewHub(2)
	defer hub.Close()
	ck := mkCheckpoint(7)
	src := &fakeSource{ck: ck, entries: mkEntries(8, 12), oldest: 8, stage: 9, resume: 0}
	// Tiny chunks so the stream genuinely exercises multi-chunk framing.
	donor := NewServer(hub.Endpoint(1), src, WithChunkBytes(64), WithTailBatch(2))
	donor.Start()
	defer donor.Stop()

	xfer, err := Fetch(context.Background(), hub.Endpoint(0), 2, []transport.NodeID{1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if xfer.Mode != CheckpointTail || xfer.Base != 7 {
		t.Fatalf("transfer mode=%v base=%d", xfer.Mode, xfer.Base)
	}
	if xfer.Checkpoint == nil || xfer.Checkpoint.Index != 7 {
		t.Fatalf("checkpoint = %+v", xfer.Checkpoint)
	}
	if len(xfer.Join.Backlog) != 5 || xfer.Join.Backlog[0].Seq != 8 {
		t.Fatalf("backlog = %+v", xfer.Join.Backlog)
	}
	// The received checkpoint installs to exactly the donor state.
	want, got := storage.NewStore(), storage.NewStore()
	want.InstallCheckpoint(ck)
	got.InstallCheckpoint(xfer.Checkpoint)
	if want.Digest() != got.Digest() {
		t.Fatal("streamed checkpoint digest != donor checkpoint digest")
	}
}

// scriptDonor runs a hand-driven donor on ep: it answers the first
// JoinReq by calling script, and records whether an Abort arrived.
func scriptDonor(ep transport.Endpoint, script func(joiner transport.NodeID, req JoinReq), aborted chan<- uint64) {
	in := ep.Subscribe(StreamReq)
	go func() {
		for env := range in {
			switch m := env.Msg.(type) {
			case JoinReq:
				script(env.From, m)
			case Abort:
				select {
				case aborted <- m.Xfer:
				default:
				}
			}
		}
	}()
}

// TestFetchFailoverOnTruncatedStream: the first donor dies mid-stream
// (silence after one chunk); the joiner times out, aborts, and fails
// over to the second donor.
func TestFetchFailoverOnTruncatedStream(t *testing.T) {
	hub := transport.NewHub(3)
	defer hub.Close()
	aborted := make(chan uint64, 1)
	scriptDonor(hub.Endpoint(1), func(joiner transport.NodeID, req JoinReq) {
		_ = hub.Endpoint(1).Send(joiner, StreamXfer, JoinResp{Xfer: req.Xfer, Mode: CheckpointTail})
		data := []byte("partial checkpoint bytes")
		_ = hub.Endpoint(1).Send(joiner, StreamXfer, CkptChunk{
			Xfer: req.Xfer, Seq: 0, Data: data, CRC: crc32.Checksum(data, castagnoli),
		})
		// ... and silence: the donor died mid-transfer.
	}, aborted)
	good := &fakeSource{entries: mkEntries(1, 6), oldest: 1, stage: 4}
	donor2 := NewServer(hub.Endpoint(2), good)
	donor2.Start()
	defer donor2.Stop()

	xfer, err := Fetch(context.Background(), hub.Endpoint(0), 0, []transport.NodeID{1, 2},
		Options{RespTimeout: time.Second, ChunkTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if xfer.Donor != 2 || xfer.Mode != TailOnly || len(xfer.Join.Backlog) != 6 {
		t.Fatalf("transfer = %+v", xfer)
	}
	select {
	case <-aborted:
	case <-time.After(2 * time.Second):
		t.Fatal("abandoned donor never received Abort")
	}
}

// TestFetchFailoverOnCorruptChunk: a CRC-corrupt chunk abandons the
// donor immediately (no timeout) and fails over.
func TestFetchFailoverOnCorruptChunk(t *testing.T) {
	hub := transport.NewHub(3)
	defer hub.Close()
	scriptDonor(hub.Endpoint(1), func(joiner transport.NodeID, req JoinReq) {
		_ = hub.Endpoint(1).Send(joiner, StreamXfer, JoinResp{Xfer: req.Xfer, Mode: CheckpointTail})
		_ = hub.Endpoint(1).Send(joiner, StreamXfer, CkptChunk{
			Xfer: req.Xfer, Seq: 0, Data: []byte("corrupted"), CRC: 0xdeadbeef, Last: true,
		})
	}, make(chan uint64, 1))
	good := &fakeSource{entries: mkEntries(1, 3), oldest: 1, stage: 2}
	donor2 := NewServer(hub.Endpoint(2), good)
	donor2.Start()
	defer donor2.Stop()

	start := time.Now()
	xfer, err := Fetch(context.Background(), hub.Endpoint(0), 0, []transport.NodeID{1, 2},
		Options{RespTimeout: 5 * time.Second, ChunkTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if xfer.Donor != 2 {
		t.Fatalf("donor = %v, want 2", xfer.Donor)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("corrupt chunk took the timeout path instead of failing fast")
	}
}

// TestFetchCorruptChunkErrorSurfaces: with no fallback donor the CRC
// failure is reported, not mistaken for success.
func TestFetchCorruptChunkErrorSurfaces(t *testing.T) {
	hub := transport.NewHub(2)
	defer hub.Close()
	scriptDonor(hub.Endpoint(1), func(joiner transport.NodeID, req JoinReq) {
		_ = hub.Endpoint(1).Send(joiner, StreamXfer, JoinResp{Xfer: req.Xfer, Mode: CheckpointTail})
		_ = hub.Endpoint(1).Send(joiner, StreamXfer, CkptChunk{
			Xfer: req.Xfer, Seq: 0, Data: []byte("x"), CRC: 1, Last: true,
		})
	}, make(chan uint64, 1))
	_, err := Fetch(context.Background(), hub.Endpoint(0), 0, []transport.NodeID{1},
		Options{RespTimeout: 2 * time.Second, ChunkTimeout: 2 * time.Second})
	if err == nil || !strings.Contains(err.Error(), "CRC mismatch") {
		t.Fatalf("err = %v, want CRC mismatch", err)
	}
}

// TestFetchBacklogGapRejected: a donor whose tail skips positions is
// rejected (the assembled state would silently miss transactions).
func TestFetchBacklogGapRejected(t *testing.T) {
	hub := transport.NewHub(2)
	defer hub.Close()
	scriptDonor(hub.Endpoint(1), func(joiner transport.NodeID, req JoinReq) {
		ep := hub.Endpoint(1)
		_ = ep.Send(joiner, StreamXfer, JoinResp{Xfer: req.Xfer, Mode: TailOnly})
		gappy := []abcast.DefEntry{{Seq: 1}, {Seq: 3}} // 2 is missing
		_ = ep.Send(joiner, StreamXfer, TailChunk{Xfer: req.Xfer, Seq: 0, Entries: gappy})
		_ = ep.Send(joiner, StreamXfer, Done{Xfer: req.Xfer, StartStage: 2, Chunks: 1, Frontier: 3})
	}, make(chan uint64, 1))
	_, err := Fetch(context.Background(), hub.Endpoint(0), 0, []transport.NodeID{1},
		Options{RespTimeout: 2 * time.Second, ChunkTimeout: 2 * time.Second})
	if err == nil || !strings.Contains(err.Error(), "backlog gap") {
		t.Fatalf("err = %v, want backlog gap", err)
	}
}

// TestServerBoundsCheckpointPin: a checkpoint capture that cannot
// complete (frontier never reached — e.g. the joiner raced a donor that
// is itself wedged) is cancelled at the server's deadline, so donor
// versions are not pinned indefinitely, and the joiner hears a terminal
// error instead of hanging.
func TestServerBoundsCheckpointPin(t *testing.T) {
	hub := transport.NewHub(2)
	defer hub.Close()
	observed := make(chan error, 1)
	src := &fakeSource{oldest: 100, blockCkpt: observed} // everything pruned -> checkpoint mode
	donor := NewServer(hub.Endpoint(1), src, WithCheckpointTimeout(100*time.Millisecond))
	donor.Start()
	defer donor.Stop()

	_, err := Fetch(context.Background(), hub.Endpoint(0), 0, []transport.NodeID{1},
		Options{RespTimeout: 2 * time.Second, ChunkTimeout: 2 * time.Second})
	if err == nil || !strings.Contains(err.Error(), "donor aborted") {
		t.Fatalf("err = %v, want donor aborted", err)
	}
	select {
	case cerr := <-observed:
		if !errors.Is(cerr, context.DeadlineExceeded) {
			t.Fatalf("checkpoint ctx error = %v, want deadline exceeded", cerr)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("donor checkpoint was never cancelled")
	}
	// Generous deadline: under -race on a loaded runner the server
	// goroutine can take a while to unwind after cancellation.
	testutil.Eventually(t, 10*time.Second, "donor to deregister the transfer", func() bool {
		return donor.Serving() == 0
	})
}

// TestAbortCancelsDonorCheckpoint: a joiner that gives up mid-transfer
// (here: its chunk timeout fires while the donor's checkpoint capture
// is stuck) sends Abort, which cancels the donor's capture context well
// before the donor's own generous deadline.
func TestAbortCancelsDonorCheckpoint(t *testing.T) {
	hub := transport.NewHub(2)
	defer hub.Close()
	observed := make(chan error, 1)
	src := &fakeSource{oldest: 100, blockCkpt: observed}
	donor := NewServer(hub.Endpoint(1), src, WithCheckpointTimeout(time.Minute))
	donor.Start()
	defer donor.Stop()

	_, err := Fetch(context.Background(), hub.Endpoint(0), 0, []transport.NodeID{1},
		Options{RespTimeout: 2 * time.Second, ChunkTimeout: 100 * time.Millisecond})
	if err == nil {
		t.Fatal("fetch against a wedged donor succeeded")
	}
	select {
	case cerr := <-observed:
		if !errors.Is(cerr, context.Canceled) {
			t.Fatalf("checkpoint ctx error = %v, want canceled (Abort)", cerr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Abort did not cancel the donor's checkpoint capture")
	}
}

// TestEncodeDecodeRoundTrip pins the wire checkpoint encoding to the
// on-disk one.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	ck := mkCheckpoint(9)
	data, err := recovery.EncodeCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	back, err := recovery.DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	want, got := storage.NewStore(), storage.NewStore()
	want.InstallCheckpoint(ck)
	got.InstallCheckpoint(back)
	if back.Index != ck.Index || want.Digest() != got.Digest() {
		t.Fatal("round-tripped checkpoint differs")
	}
	// Corruption anywhere in the body is caught by the trailer.
	data[len(data)/2] ^= 0x40
	if _, err := recovery.DecodeCheckpoint(data); err == nil {
		t.Fatal("corrupt checkpoint decoded")
	}
}
