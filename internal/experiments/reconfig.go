package experiments

import (
	"context"
	"fmt"
	"time"

	"otpdb"
)

// This file is E11 (DESIGN.md §4): the reconfiguration benchmark. The
// headline quantity is replacement time — the wall clock from
// ReplaceSite being issued against a dead site to the fresh incarnation
// serving in agreement with the survivors (every missed commit applied,
// digests equal). The change itself is one definitively-ordered
// transaction, so the cost is dominated by the state transfer, exactly
// as in E10; the extra work the epoch machinery adds (quorum switch,
// tracker fan-out) is what this experiment bounds. A grow cell times
// AddSite the same way.
//
// The cells are serialized into BENCH_commit.json (schema v4) by
// `otpbench -json commit`; `otpbench reconfig` runs them standalone.

// ReconfigParams sizes E11.
type ReconfigParams struct {
	// Sites is the starting cluster size (the last site is the victim).
	Sites int
	// Backlogs sweeps how many commits land while the victim is down.
	Backlogs []int
	// Keys is the keyspace width.
	Keys int
}

// DefaultReconfigParams is the tracked configuration.
func DefaultReconfigParams() ReconfigParams {
	return ReconfigParams{Sites: 3, Backlogs: []int{500, 2000, 8000}, Keys: 64}
}

// QuickReconfigParams shrinks the sweep for CI smoke runs.
func QuickReconfigParams() ReconfigParams {
	return ReconfigParams{Sites: 3, Backlogs: []int{100, 400}, Keys: 32}
}

// ReconfigCell is one measured membership operation.
type ReconfigCell struct {
	// Op is "replace" or "add".
	Op string `json:"op"`
	// Missed is the number of commits the dead site missed ("replace")
	// or the group had already committed ("add").
	Missed int `json:"missed_commits"`
	// Epoch is the membership epoch after the change.
	Epoch uint64 `json:"epoch"`
	// OpMillis is the wall time from the operation being issued to the
	// new/replacement site serving in agreement (all missed commits
	// applied at every live site).
	OpMillis float64 `json:"op_ms"`
	// MissedPerSec is Missed / op time — catch-up bandwidth including
	// the reconfiguration overhead.
	MissedPerSec float64 `json:"missed_per_sec"`
}

// ReconfigReport is the E11 payload inside BENCH_commit.json.
type ReconfigReport struct {
	Cells []ReconfigCell `json:"cells"`
}

// ReconfigBench runs E11.
func ReconfigBench(p ReconfigParams) (ReconfigReport, error) {
	var rep ReconfigReport
	for _, missed := range p.Backlogs {
		cell, err := reconfigCell(p, missed, "replace")
		if err != nil {
			return rep, fmt.Errorf("reconfig (replace, %d missed): %w", missed, err)
		}
		rep.Cells = append(rep.Cells, cell)
	}
	// One grow cell at the largest backlog: AddSite of a fresh site into
	// a warm group.
	last := p.Backlogs[len(p.Backlogs)-1]
	cell, err := reconfigCell(p, last, "add")
	if err != nil {
		return rep, fmt.Errorf("reconfig (add, %d committed): %w", last, err)
	}
	rep.Cells = append(rep.Cells, cell)
	return rep, nil
}

// reconfigCell measures one membership operation end to end.
func reconfigCell(p ReconfigParams, missed int, op string) (ReconfigCell, error) {
	cluster, err := otpdb.NewCluster(otpdb.WithReplicas(p.Sites))
	if err != nil {
		return ReconfigCell{}, err
	}
	defer cluster.Stop()
	cluster.MustRegisterUpdate(otpdb.Update{
		Name:  "bump",
		Class: "c",
		Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
			key := otpdb.Key(otpdb.AsString(ctx.Args()[0]))
			v, _ := ctx.Read(key)
			next := otpdb.Int64(otpdb.AsInt64(v) + 1)
			return next, ctx.Write(key, next)
		},
	})
	if err := cluster.Start(); err != nil {
		return ReconfigCell{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	submit := func(n, from int) error {
		for i := 0; i < n; i++ {
			key := otpdb.String(fmt.Sprintf("k%d", (from+i)%p.Keys))
			if _, err := cluster.Submit(0, "bump", key); err != nil {
				return err
			}
		}
		return nil
	}

	const warm = 20
	if err := submit(warm, 0); err != nil {
		return ReconfigCell{}, err
	}
	if err := cluster.WaitForCommits(ctx, warm); err != nil {
		return ReconfigCell{}, err
	}
	victim := p.Sites - 1
	if op == "replace" {
		if err := cluster.CrashSite(victim); err != nil {
			return ReconfigCell{}, err
		}
	}
	if err := submit(missed, warm); err != nil {
		return ReconfigCell{}, err
	}
	if err := cluster.WaitForCommits(ctx, warm+missed); err != nil {
		return ReconfigCell{}, err
	}

	start := time.Now()
	target := victim
	switch op {
	case "replace":
		if err := cluster.ReplaceSite(ctx, victim); err != nil {
			return ReconfigCell{}, err
		}
	case "add":
		site, err := cluster.AddSite(ctx)
		if err != nil {
			return ReconfigCell{}, err
		}
		target = site
	}
	// The operation is complete once every live site — including the
	// new/replacement one — has committed everything plus the change.
	if err := cluster.WaitForCommits(ctx, warm+missed+1); err != nil {
		return ReconfigCell{}, err
	}
	elapsed := time.Since(start)

	d0, err := cluster.DigestAt(0)
	if err != nil {
		return ReconfigCell{}, err
	}
	dt, err := cluster.DigestAt(target)
	if err != nil {
		return ReconfigCell{}, err
	}
	if d0 != dt {
		return ReconfigCell{}, fmt.Errorf("site %d digest diverged after %s", target, op)
	}
	epoch, err := cluster.Epoch(target)
	if err != nil {
		return ReconfigCell{}, err
	}
	if epoch != 2 {
		return ReconfigCell{}, fmt.Errorf("epoch after %s = %d, want 2", op, epoch)
	}
	return ReconfigCell{
		Op:           op,
		Missed:       missed,
		Epoch:        epoch,
		OpMillis:     float64(elapsed.Nanoseconds()) / 1e6,
		MissedPerSec: float64(missed) / elapsed.Seconds(),
	}, nil
}

// Table renders E11 as the otpbench plain-text tables.
func (r ReconfigReport) Table() Table {
	t := Table{
		Title: "E11 — Reconfiguration: replace/grow a live group (tracked in BENCH_commit.json)",
		Columns: []string{
			"op", "missed", "epoch", "time", "catch-up rate",
		},
	}
	for _, c := range r.Cells {
		t.AddRow(c.Op, fmt.Sprintf("%d", c.Missed), fmt.Sprintf("%d", c.Epoch),
			fmt.Sprintf("%.1fms", c.OpMillis),
			fmt.Sprintf("%.0f missed/s", c.MissedPerSec))
	}
	return t
}
