package experiments

import (
	"fmt"
	"sync"
	"time"

	"otpdb/internal/abcast"
	"otpdb/internal/consensus"
	"otpdb/internal/metrics"
	"otpdb/internal/transport"
)

// OrderingParams configures the ablation comparing the two definitive-
// order engines: OPT-ABcast (consensus stages with optimistic delivery)
// versus the fixed sequencer (conservative, no optimistic delivery).
type OrderingParams struct {
	// Sites is the cluster size.
	Sites int
	// Messages is the number of broadcasts per site.
	Messages int
	// NetDelay is the one-way delay between sites.
	NetDelay time.Duration
	// Jitter randomises delivery, creating tentative-order mismatches.
	Jitter time.Duration
}

// DefaultOrderingParams uses a 3-site LAN-ish setup.
func DefaultOrderingParams() OrderingParams {
	return OrderingParams{
		Sites:    3,
		Messages: 50,
		NetDelay: time.Millisecond,
		Jitter:   500 * time.Microsecond,
	}
}

// orderingRun measures, for one engine, the mean Opt latency (broadcast
// to tentative delivery at the origin) and TO latency (broadcast to
// definitive delivery at the origin).
func orderingRun(p OrderingParams, optimistic bool) (optLat, toLat metrics.Summary, fastShare float64, err error) {
	hub := transport.NewHub(p.Sites,
		transport.WithDelay(p.NetDelay),
		transport.WithJitter(p.Jitter),
		transport.WithSeed(11))
	defer hub.Close()

	type engine struct {
		bc   abcast.Broadcaster
		stop func()
	}
	engines := make([]engine, p.Sites)
	for i := 0; i < p.Sites; i++ {
		ep := hub.Endpoint(transport.NodeID(i))
		if optimistic {
			cons := consensus.New(consensus.Config{Endpoint: ep, RoundTimeout: 100 * time.Millisecond})
			cons.Start()
			bc := abcast.NewOptimistic(ep, cons)
			if err := bc.Start(); err != nil {
				return metrics.Summary{}, metrics.Summary{}, 0, err
			}
			engines[i] = engine{bc: bc, stop: func() { _ = bc.Stop(); cons.Stop() }}
		} else {
			bc := abcast.NewSequencer(ep)
			if err := bc.Start(); err != nil {
				return metrics.Summary{}, metrics.Summary{}, 0, err
			}
			engines[i] = engine{bc: bc, stop: func() { _ = bc.Stop() }}
		}
	}
	defer func() {
		for _, e := range engines {
			e.stop()
		}
	}()

	optHist := metrics.NewHistogram()
	toHist := metrics.NewHistogram()

	// Track per-origin send times and consume origin-site deliveries.
	var mu sync.Mutex
	sendTimes := make(map[abcast.MsgID]time.Time)

	var wg sync.WaitGroup
	for i := 0; i < p.Sites; i++ {
		e := engines[i]
		origin := transport.NodeID(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			seenTO := 0
			for ev := range e.bc.Deliveries() {
				if ev.ID.Origin != origin {
					continue
				}
				mu.Lock()
				t0, ok := sendTimes[ev.ID]
				mu.Unlock()
				if !ok {
					continue
				}
				switch ev.Kind {
				case abcast.Opt:
					optHist.Observe(time.Since(t0))
				case abcast.TO:
					toHist.Observe(time.Since(t0))
					seenTO++
					if seenTO == p.Messages {
						return
					}
				}
			}
		}()
	}
	for i := 0; i < p.Sites; i++ {
		e := engines[i]
		go func() {
			for j := 0; j < p.Messages; j++ {
				mu.Lock()
				id, err := e.bc.Broadcast(j)
				if err == nil {
					sendTimes[id] = time.Now()
				}
				mu.Unlock()
				time.Sleep(p.NetDelay / 2)
			}
		}()
	}
	wg.Wait()

	if optimistic {
		if o, ok := engines[0].bc.(*abcast.Optimistic); ok {
			st := o.Stats()
			if st.Stages > 0 {
				fastShare = 100 * float64(st.FastStages) / float64(st.Stages)
			}
		}
	}
	return optHist.Summarize(), toHist.Summarize(), fastShare, nil
}

// Ordering is the ablation table: the optimistic engine Opt-delivers in
// one network hop (enabling the OTP overlap) while its TO confirmation
// costs consensus; the sequencer delivers both after the sequencer round
// trip. The gap between the Opt and TO columns is exactly the window OTP
// hides behind transaction execution.
func Ordering(p OrderingParams) (Table, error) {
	if p.Sites == 0 {
		p = DefaultOrderingParams()
	}
	t := Table{
		Title: "E7b — ordering engines: OPT-ABcast vs fixed sequencer",
		Columns: []string{
			"engine", "Opt mean", "TO mean", "TO p95", "overlap window", "fast stages",
		},
		Notes: []string{
			fmt.Sprintf("%d sites, %d msgs/site, %v delay, %v jitter",
				p.Sites, p.Messages, p.NetDelay, p.Jitter),
			"overlap window = TO mean - Opt mean: the coordination OTP hides behind execution",
		},
	}
	optOpt, optTO, fastShare, err := orderingRun(p, true)
	if err != nil {
		return Table{}, err
	}
	seqOpt, seqTO, _, err := orderingRun(p, false)
	if err != nil {
		return Table{}, err
	}
	t.AddRow("OPT-ABcast",
		optOpt.Mean.Round(time.Microsecond).String(),
		optTO.Mean.Round(time.Microsecond).String(),
		optTO.P95.Round(time.Microsecond).String(),
		(optTO.Mean - optOpt.Mean).Round(time.Microsecond).String(),
		fmt.Sprintf("%.0f%%", fastShare))
	t.AddRow("sequencer (conservative)",
		seqOpt.Mean.Round(time.Microsecond).String(),
		seqTO.Mean.Round(time.Microsecond).String(),
		seqTO.P95.Round(time.Microsecond).String(),
		(seqTO.Mean - seqOpt.Mean).Round(time.Microsecond).String(),
		"n/a")
	return t, nil
}
