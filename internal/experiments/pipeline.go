package experiments

import (
	"context"
	"fmt"
	"time"

	"otpdb"
	"otpdb/internal/metrics"
)

// PipelineParams configures the client-pipelining experiment: the same
// conflicting increment workload driven through the Session API at
// increasing pipeline depths. Depth 1 is the synchronous Exec baseline;
// deeper pipelines keep that many transactions in flight per client,
// which is the client-side counterpart of the paper's overlap argument —
// the broadcast's coordination phase is hidden behind the submission of
// later transactions instead of idle client time.
type PipelineParams struct {
	// Sites is the cluster size.
	Sites int
	// Txns is the number of transactions per cell.
	Txns int
	// Depths sweeps the number of in-flight transactions per client.
	Depths []int
	// Jitter provokes tentative/definitive mismatches so the outcome
	// split (fastpath vs reordered/retried) is visible under load.
	Jitter time.Duration
}

// DefaultPipelineParams sweeps depth from synchronous to 128-deep.
func DefaultPipelineParams() PipelineParams {
	return PipelineParams{
		Sites:  3,
		Txns:   1500,
		Depths: []int{1, 8, 32, 128},
		Jitter: 200 * time.Microsecond,
	}
}

// pipelineCell drives Txns increments through one session at the given
// depth and reports throughput, latency and the outcome split.
func pipelineCell(p PipelineParams, depth int) (perSec float64, lat metrics.Summary, fast, reordered, retried int, err error) {
	opts := []otpdb.Option{otpdb.WithReplicas(p.Sites)}
	if p.Jitter > 0 {
		opts = append(opts, otpdb.WithNetworkJitter(p.Jitter))
	}
	cluster, err := otpdb.NewCluster(opts...)
	if err != nil {
		return 0, metrics.Summary{}, 0, 0, 0, err
	}
	defer cluster.Stop()
	cluster.MustRegisterUpdate(otpdb.Update{
		Name:  "incr",
		Class: "counter",
		Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
			cur, _ := ctx.Read("n")
			next := otpdb.Int64(otpdb.AsInt64(cur) + 1)
			return next, ctx.Write("n", next)
		},
	})
	if err := cluster.Start(); err != nil {
		return 0, metrics.Summary{}, 0, 0, 0, err
	}
	sess, err := cluster.Session(0)
	if err != nil {
		return 0, metrics.Summary{}, 0, 0, 0, err
	}

	ctx := context.Background()
	hist := metrics.NewHistogram()
	account := func(res otpdb.Result) {
		hist.Observe(res.Latency)
		switch res.Outcome {
		case otpdb.Reordered:
			reordered++
		case otpdb.Retried:
			retried++
		default:
			fast++
		}
	}

	start := time.Now()
	// Sliding window of in-flight handles: submit until `depth` are
	// outstanding, then resolve the oldest before submitting the next.
	window := make([]*otpdb.Handle, 0, depth)
	for i := 0; i < p.Txns; i++ {
		if len(window) == depth {
			res, werr := window[0].Wait(ctx)
			if werr != nil {
				return 0, metrics.Summary{}, 0, 0, 0, werr
			}
			account(res)
			window = window[1:]
		}
		h, serr := sess.SubmitAsync("incr")
		if serr != nil {
			return 0, metrics.Summary{}, 0, 0, 0, serr
		}
		window = append(window, h)
	}
	for _, h := range window {
		res, werr := h.Wait(ctx)
		if werr != nil {
			return 0, metrics.Summary{}, 0, 0, 0, werr
		}
		account(res)
	}
	elapsed := time.Since(start)

	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := cluster.WaitForCommits(wctx, p.Txns); err != nil {
		return 0, metrics.Summary{}, 0, 0, 0, err
	}
	return float64(p.Txns) / elapsed.Seconds(), hist.Summarize(), fast, reordered, retried, nil
}

// Pipeline measures Session API throughput as a function of pipeline
// depth. With one transaction in flight the client pays the full
// broadcast round-trip per commit; with a deep pipeline the ordering
// protocol runs concurrently with submission and throughput approaches
// what the scheduler can sustain.
func Pipeline(p PipelineParams) (Table, error) {
	if p.Sites == 0 {
		p = DefaultPipelineParams()
	}
	t := Table{
		Title: "E6 — Session pipelining: throughput vs in-flight depth (SubmitAsync)",
		Columns: []string{
			"depth", "txn/s", "commit mean", "commit p95", "fastpath", "reordered", "retried",
		},
		Notes: []string{
			fmt.Sprintf("%d sites, %d conflicting increments through one session, %v network jitter",
				p.Sites, p.Txns, p.Jitter),
			"depth 1 = synchronous Exec; deeper pipelines overlap ordering with submission",
		},
	}
	for _, depth := range p.Depths {
		perSec, lat, fast, reordered, retried, err := pipelineCell(p, depth)
		if err != nil {
			return Table{}, fmt.Errorf("depth %d: %w", depth, err)
		}
		t.AddRow(
			fmt.Sprintf("%d", depth),
			fmt.Sprintf("%.0f", perSec),
			lat.Mean.Round(time.Microsecond).String(),
			lat.P95.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", fast),
			fmt.Sprintf("%d", reordered),
			fmt.Sprintf("%d", retried),
		)
	}
	return t, nil
}
