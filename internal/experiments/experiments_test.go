package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tab := Table{
		Title:   "demo",
		Columns: []string{"col1", "c2"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("v1", "longer-value")
	tab.AddRow("v2", "x")
	out := tab.String()
	for _, want := range []string{"== demo ==", "col1", "longer-value", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1SmallRunHasPaperShape(t *testing.T) {
	tab := Figure1(Figure1Params{
		Sites:     4,
		PerSite:   150,
		Intervals: []time.Duration{100 * time.Microsecond, 4 * time.Millisecond},
		Seed:      3,
	})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(tab.Rows[1][1], "9") { // 9x% at 4ms
		t.Fatalf("4ms cell = %q, want 9x%%", tab.Rows[1][1])
	}
}

func TestAbortRateCellMonotoneInClasses(t *testing.T) {
	one := AbortRateCell(800, 1, 0.25, 11)
	many := AbortRateCell(800, 16, 0.25, 11)
	if one.Commits != 800 || many.Commits != 800 {
		t.Fatalf("commits = %d/%d", one.Commits, many.Commits)
	}
	if one.Aborts <= many.Aborts {
		t.Fatalf("aborts(1 class)=%d should exceed aborts(16 classes)=%d",
			one.Aborts, many.Aborts)
	}
}

func TestAbortRateTableShape(t *testing.T) {
	tab := AbortRate(AbortRateParams{
		Txns:          300,
		Classes:       []int{1, 8},
		MismatchProbs: []float64{0.1},
		Seed:          5,
	})
	if len(tab.Rows) != 2 || len(tab.Rows[0]) != 2 {
		t.Fatalf("table shape = %dx%d", len(tab.Rows), len(tab.Rows[0]))
	}
}

func TestOverlapOTPBeatsConservative(t *testing.T) {
	tab, err := Overlap(OverlapParams{
		ExecTime:      2 * time.Millisecond,
		ConfirmDelays: []time.Duration{2 * time.Millisecond},
		Txns:          8,
	})
	if err != nil {
		t.Fatal(err)
	}
	optMean, err := time.ParseDuration(tab.Rows[0][1])
	if err != nil {
		t.Fatal(err)
	}
	consMean, err := time.ParseDuration(tab.Rows[0][2])
	if err != nil {
		t.Fatal(err)
	}
	if optMean >= consMean {
		t.Fatalf("OTP %v not faster than conservative %v at D=E", optMean, consMean)
	}
}

func TestVsAsyncShapes(t *testing.T) {
	tab, err := VsAsync(VsAsyncParams{Sites: 2, IncrementsPerSite: 10, NetDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// OTP row loses nothing.
	if !strings.HasPrefix(tab.Rows[0][3], "0/") {
		t.Fatalf("OTP lost updates: %q", tab.Rows[0][3])
	}
}

func TestOrderingShapes(t *testing.T) {
	tab, err := Ordering(OrderingParams{
		Sites:    3,
		Messages: 10,
		NetDelay: time.Millisecond,
		Jitter:   200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestRejoinBenchModesAndShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	rep, err := RejoinBench(RejoinParams{
		Sites:    3,
		Backlogs: []int{120},
		Keys:     16,
		EvictCap: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(rep.Cells))
	}
	// RejoinBench verifies the negotiated mode per cell; pin the pairing
	// here too so the report stays interpretable.
	if rep.Cells[0].Mode != "tail-only" || rep.Cells[1].Mode != "checkpoint+tail" {
		t.Fatalf("modes = %q/%q", rep.Cells[0].Mode, rep.Cells[1].Mode)
	}
	for _, c := range rep.Cells {
		if c.RejoinMillis <= 0 || c.MissedPerSec <= 0 {
			t.Fatalf("cell %+v has non-positive timing", c)
		}
	}
}

func TestQueriesSnapshotRowIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	tab, err := Queries(QueriesParams{Sites: 2, Classes: 2, TransfersPerSite: 30, Queries: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot row: zero torn totals, serializable.
	if tab.Rows[0][4] != "0" || tab.Rows[0][5] != "true" {
		t.Fatalf("snapshot row = %v", tab.Rows[0])
	}
}

func TestShardBenchShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment")
	}
	rep, err := ShardBench(ShardBenchParams{
		Replicas:    1,
		Shards:      []int{1, 2},
		Txns:        60,
		Depth:       8,
		FlushDelay:  200 * time.Microsecond,
		DurableTxns: 30,
		CrossShards: 2,
		CrossRatios: []float64{0.25},
		CrossTxns:   40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scale) != 2 || len(rep.ScaleDurable) != 2 || len(rep.Cross) != 1 {
		t.Fatalf("report shape: %d scale, %d durable, %d cross",
			len(rep.Scale), len(rep.ScaleDurable), len(rep.Cross))
	}
	for _, c := range append(append([]ShardScaleCell{}, rep.Scale...), rep.ScaleDurable...) {
		if c.ThroughputPerSec <= 0 {
			t.Fatalf("cell %+v has non-positive throughput", c)
		}
	}
	// 10 of 40 transactions cross two shards at ratio 0.25.
	if rep.Cross[0].CrossTxns != 10 {
		t.Fatalf("cross txns = %d, want 10", rep.Cross[0].CrossTxns)
	}
	if rep.Cross[0].ThroughputPerSec <= 0 {
		t.Fatalf("cross cell %+v has non-positive throughput", rep.Cross[0])
	}
}
