package experiments

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"otpdb"
	"otpdb/internal/metrics"
)

// This file is E12 (DESIGN.md §10): horizontal scaling across shard
// groups. The paper's protocol orders every transaction in one total
// order, so one group's commit pipeline bounds aggregate throughput no
// matter how many sites serve reads; sharding multiplies that bound by
// running S independent groups behind one namespace. The experiment
// measures (a) aggregate commit throughput at 1..S shards when each
// group's pipeline is bounded by a serial commit-flush device, (b) the
// same sweep against the host filesystem's real per-commit fsync, and
// (c) what the two-phase cross-shard protocol costs as the fraction of
// transactions spanning two shards grows.
//
// The primary scaling sweep uses WithCommitFlushDelay — a deterministic
// per-group flush device (sized to a typical small-write fsync) — for
// the same reason Figure 1 uses netsim's modeled network: the benchmark
// host confounds the measurement. Concurrent fsyncs from different WAL
// files serialize in the shared filesystem journal (measured here:
// ~4/5ths of a single lane at 4 writers), so the real-fsync sweep mostly
// measures one ext4 journal, not the protocol. Both sweeps are reported.

// ShardBenchParams sizes the sharding benchmark.
type ShardBenchParams struct {
	// Replicas is the number of sites per shard group.
	Replicas int
	// Shards is the scaling sweep (aggregate throughput per shard count).
	Shards []int
	// Txns is the transaction count per scaling cell.
	Txns int
	// Depth is the pipelined submit window per cell.
	Depth int
	// FlushDelay is the modeled per-commit flush device of the primary
	// scaling sweep.
	FlushDelay time.Duration
	// DurableTxns is the transaction count per real-fsync scaling cell.
	DurableTxns int
	// CrossShards is the shard count of the cross-ratio sweep.
	CrossShards int
	// CrossRatios is the fraction of transactions spanning two shards.
	CrossRatios []float64
	// CrossTxns is the transaction count per cross-ratio cell.
	CrossTxns int
}

// DefaultShardBenchParams is the tracked configuration.
func DefaultShardBenchParams() ShardBenchParams {
	return ShardBenchParams{
		Replicas:    3,
		Shards:      []int{1, 2, 4, 8},
		Txns:        2000,
		Depth:       64,
		FlushDelay:  300 * time.Microsecond,
		DurableTxns: 800,
		CrossShards: 4,
		CrossRatios: []float64{0, 0.05, 0.10, 0.25, 0.50},
		CrossTxns:   600,
	}
}

// QuickShardBenchParams shrinks the sweep for CI smoke runs.
func QuickShardBenchParams() ShardBenchParams {
	return ShardBenchParams{
		Replicas:    1,
		Shards:      []int{1, 2, 4},
		Txns:        600,
		Depth:       32,
		FlushDelay:  200 * time.Microsecond,
		DurableTxns: 300,
		CrossShards: 2,
		CrossRatios: []float64{0, 0.10, 0.50},
		CrossTxns:   150,
	}
}

// ShardScaleCell is one shard count's aggregate durable throughput.
type ShardScaleCell struct {
	Shards int `json:"shards"`
	LatencyStats
	// SpeedupVs1 is this cell's throughput over the 1-shard cell's.
	SpeedupVs1 float64 `json:"speedup_vs_1"`
}

// ShardCrossCell is one cross-shard ratio's throughput at a fixed shard
// count.
type ShardCrossCell struct {
	Shards int `json:"shards"`
	// CrossPercent is the share of transactions spanning two shards.
	CrossPercent float64 `json:"cross_percent"`
	// CrossTxns is how many of the cell's transactions were cross-shard.
	CrossTxns int `json:"cross_txns"`
	LatencyStats
}

// ShardReport is E12's section of BENCH_commit.json (schema v5).
type ShardReport struct {
	Replicas int `json:"replicas_per_shard"`
	// FlushMicros is the nominal modeled per-commit flush device of the
	// primary scaling sweep (see the file comment for why it is modeled).
	FlushMicros float64 `json:"flush_us"`
	// EffectiveFlushMicros is the calibrated duration one flush-device
	// wait actually takes on this host.
	EffectiveFlushMicros float64 `json:"effective_flush_us"`
	// Scale is the primary sweep: aggregate throughput per shard count
	// over the modeled flush device.
	Scale []ShardScaleCell `json:"scale"`
	// ScaleDurable is the same sweep against the host filesystem with
	// fsync=commit; its ceiling is the filesystem journal's concurrent-
	// fsync capacity, reported for honesty about real-disk behavior.
	ScaleDurable []ShardScaleCell `json:"scale_durable"`
	// Cross is the cross-shard ratio sweep (modeled flush device).
	Cross []ShardCrossCell `json:"cross"`
}

// shardCluster builds a durable sharded cluster with classes c<i> pinned
// to shard i and a bump-c<i> increment procedure per class; withCross
// also registers the two-shard transfer procedure.
func shardCluster(replicas, shards int, withCross bool, opts ...otpdb.Option) (*otpdb.Cluster, error) {
	cluster, err := otpdb.NewCluster(append([]otpdb.Option{
		otpdb.WithReplicas(replicas),
		otpdb.WithShards(shards),
	}, opts...)...)
	if err != nil {
		return nil, err
	}
	for i := 0; i < shards; i++ {
		class := otpdb.Class(fmt.Sprintf("c%d", i))
		if err := cluster.PinClass(class, i); err != nil {
			return nil, err
		}
		cluster.MustRegisterUpdate(otpdb.Update{
			Name:  fmt.Sprintf("bump-%s", class),
			Class: class,
			Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
				v, _ := ctx.Read("k")
				next := otpdb.Int64(otpdb.AsInt64(v) + 1)
				return next, ctx.Write("k", next)
			},
		})
	}
	if withCross {
		// Each invocation moves value between its own key pair: the cell
		// measures the two-phase protocol's cost, not optimistic-
		// validation contention on one hot key (which would livelock the
		// cross transactions against the pipelined single-shard stream).
		cluster.MustRegisterMultiUpdate(otpdb.MultiUpdate{
			Name:    "xfer",
			Classes: []otpdb.Class{"c0", "c1"},
			Fn: func(ctx otpdb.MultiUpdateCtx) (otpdb.Value, error) {
				key := otpdb.Key(otpdb.AsString(ctx.Args()[0]))
				s, _ := ctx.Read("c0", key)
				d, _ := ctx.Read("c1", key)
				if err := ctx.Write("c0", key, otpdb.Int64(otpdb.AsInt64(s)-1)); err != nil {
					return nil, err
				}
				next := otpdb.Int64(otpdb.AsInt64(d) + 1)
				return next, ctx.Write("c1", key, next)
			},
		})
	}
	if err := cluster.Start(); err != nil {
		return nil, err
	}
	return cluster, nil
}

// runPipelined drives txns transactions through one session with a
// bounded window of in-flight handles, procedure chosen per index.
// Returns throughput and the latency summary.
func runPipelined(sess *otpdb.Session, txns, depth int, proc func(i int) (string, []otpdb.Value)) (float64, metrics.Summary, error) {
	hist := metrics.NewHistogram()
	window := make([]*otpdb.Handle, 0, depth)
	drain := func(keep int) error {
		for len(window) > keep {
			h := window[0]
			window = window[1:]
			res, err := h.Wait(context.Background())
			if err != nil {
				return err
			}
			hist.Observe(res.Latency)
		}
		return nil
	}
	start := time.Now()
	for i := 0; i < txns; i++ {
		name, args := proc(i)
		h, err := sess.SubmitAsync(name, args...)
		if err != nil {
			return 0, metrics.Summary{}, err
		}
		window = append(window, h)
		if err := drain(depth - 1); err != nil {
			return 0, metrics.Summary{}, err
		}
	}
	if err := drain(0); err != nil {
		return 0, metrics.Summary{}, err
	}
	elapsed := time.Since(start)
	return float64(txns) / elapsed.Seconds(), hist.Summarize(), nil
}

// scaleSweep runs one scaling sweep: aggregate pipelined throughput per
// shard count, speedup relative to the sweep's own 1-shard cell.
func scaleSweep(p ShardBenchParams, txns int, opts ...otpdb.Option) ([]ShardScaleCell, error) {
	var cells []ShardScaleCell
	for _, s := range p.Shards {
		perSec, lat, err := func() (float64, metrics.Summary, error) {
			cluster, err := shardCluster(p.Replicas, s, false, opts...)
			if err != nil {
				return 0, metrics.Summary{}, err
			}
			defer cluster.Stop()
			sess, err := cluster.Session(0)
			if err != nil {
				return 0, metrics.Summary{}, err
			}
			return runPipelined(sess, txns, p.Depth, func(i int) (string, []otpdb.Value) {
				return fmt.Sprintf("bump-c%d", i%s), nil
			})
		}()
		if err != nil {
			return nil, fmt.Errorf("shards=%d: %w", s, err)
		}
		cell := ShardScaleCell{Shards: s, LatencyStats: latencyStats(lat, perSec)}
		if len(cells) > 0 && cells[0].ThroughputPerSec > 0 {
			cell.SpeedupVs1 = perSec / cells[0].ThroughputPerSec
		} else {
			cell.SpeedupVs1 = 1
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// effectiveSleep measures what the host actually delivers for one
// modeled flush-device wait (the same yielding wall-clock wait the
// replica performs; on an otherwise idle host it sits within a few
// percent of nominal).
func effectiveSleep(d time.Duration) time.Duration {
	const n = 64
	start := time.Now()
	for i := 0; i < n; i++ {
		for s := time.Now(); time.Since(s) < d; {
			runtime.Gosched()
		}
	}
	return time.Since(start) / n
}

// ShardBench runs E12.
func ShardBench(p ShardBenchParams) (ShardReport, error) {
	rep := ShardReport{
		Replicas:             p.Replicas,
		FlushMicros:          float64(p.FlushDelay.Nanoseconds()) / 1e3,
		EffectiveFlushMicros: float64(effectiveSleep(p.FlushDelay).Nanoseconds()) / 1e3,
	}

	// Primary sweep: modeled per-group flush device.
	scale, err := scaleSweep(p, p.Txns, otpdb.WithCommitFlushDelay(p.FlushDelay))
	if err != nil {
		return rep, fmt.Errorf("scale: %w", err)
	}
	rep.Scale = scale

	// Honesty sweep: real per-commit fsync on the host filesystem. Each
	// cell gets a fresh durable directory.
	durable, err := func() ([]ShardScaleCell, error) {
		dir, err := os.MkdirTemp("", "otpdb-shardbench")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		var cells []ShardScaleCell
		for _, s := range p.Shards {
			sub := fmt.Sprintf("%s/s%d", dir, s)
			one, err := scaleSweep(ShardBenchParams{
				Replicas: p.Replicas, Shards: []int{s}, Depth: p.Depth,
			}, p.DurableTxns,
				otpdb.WithDurability(sub), otpdb.WithSyncPolicy(otpdb.SyncEveryCommit))
			if err != nil {
				return nil, err
			}
			cell := one[0]
			if len(cells) > 0 && cells[0].ThroughputPerSec > 0 {
				cell.SpeedupVs1 = cell.ThroughputPerSec / cells[0].ThroughputPerSec
			}
			cells = append(cells, cell)
		}
		return cells, nil
	}()
	if err != nil {
		return rep, fmt.Errorf("scale durable: %w", err)
	}
	rep.ScaleDurable = durable

	for _, ratio := range p.CrossRatios {
		cross := 0
		perSec, lat, err := func() (float64, metrics.Summary, error) {
			cluster, err := shardCluster(p.Replicas, p.CrossShards, true,
				otpdb.WithCommitFlushDelay(p.FlushDelay))
			if err != nil {
				return 0, metrics.Summary{}, err
			}
			defer cluster.Stop()
			sess, err := cluster.Session(0)
			if err != nil {
				return 0, metrics.Summary{}, err
			}
			// Deterministic Bresenham-style interleaving of cross-shard
			// transactions at the requested ratio.
			acc := 0.0
			return runPipelined(sess, p.CrossTxns, p.Depth, func(i int) (string, []otpdb.Value) {
				acc += ratio
				if acc >= 1 {
					acc--
					cross++
					return "xfer", []otpdb.Value{otpdb.String(fmt.Sprintf("x%d", i))}
				}
				return fmt.Sprintf("bump-c%d", i%p.CrossShards), nil
			})
		}()
		if err != nil {
			return rep, fmt.Errorf("cross ratio=%.2f: %w", ratio, err)
		}
		rep.Cross = append(rep.Cross, ShardCrossCell{
			Shards:       p.CrossShards,
			CrossPercent: ratio * 100,
			CrossTxns:    cross,
			LatencyStats: latencyStats(lat, perSec),
		})
	}
	return rep, nil
}

// Table renders the report.
func (r ShardReport) Table() Table {
	t := Table{
		Title: "E12 — Horizontal sharding: aggregate commit throughput by shard count",
		Columns: []string{
			"cell", "n", "txn/s", "speedup", "mean", "p99",
		},
		Notes: []string{
			fmt.Sprintf("%d replica(s) per shard; one session pipelines across all shards", r.Replicas),
			fmt.Sprintf("scale cells: modeled per-commit flush device, nominal %.0fµs, calibrated %.0fµs on this host", r.FlushMicros, r.EffectiveFlushMicros),
			"durable cells: real fsync=commit on the host filesystem",
			"(the host fs journal serializes concurrent fsyncs, capping the durable sweep)",
		},
	}
	us := func(f float64) string { return fmt.Sprintf("%.1fµs", f) }
	for _, c := range r.Scale {
		t.AddRow(fmt.Sprintf("scale shards=%d", c.Shards), fmt.Sprintf("%d", c.Count),
			fmt.Sprintf("%.0f", c.ThroughputPerSec), fmt.Sprintf("%.2fx", c.SpeedupVs1),
			us(c.MeanMicros), us(c.P99Micros))
	}
	for _, c := range r.ScaleDurable {
		t.AddRow(fmt.Sprintf("durable shards=%d", c.Shards), fmt.Sprintf("%d", c.Count),
			fmt.Sprintf("%.0f", c.ThroughputPerSec), fmt.Sprintf("%.2fx", c.SpeedupVs1),
			us(c.MeanMicros), us(c.P99Micros))
	}
	for _, c := range r.Cross {
		t.AddRow(fmt.Sprintf("cross shards=%d ratio=%.0f%%", c.Shards, c.CrossPercent),
			fmt.Sprintf("%d", c.Count), fmt.Sprintf("%.0f", c.ThroughputPerSec),
			"-", us(c.MeanMicros), us(c.P99Micros))
	}
	return t
}
