package experiments

import (
	"fmt"
	"io"
	"sort"

	"otpdb/internal/chaos"
)

// This file is E13 (DESIGN.md §4): the chaos matrix. It is not a
// throughput benchmark but an adversity one — every shipped scenario of
// internal/chaos runs at one seed, and the report records whether the
// invariants held (digest convergence, no lost acked commit, effect-
// exactly-once, epoch monotonicity) together with the two operational
// quantities the ROADMAP asks for: commit availability during the fault
// phase and recovery time per fault class.
//
// The rows are serialized into BENCH_commit.json (schema v6) by
// `otpbench -json commit`; `otpbench chaos [-seed S]` runs the matrix
// standalone with pass/fail per scenario.

// ChaosBenchParams sizes E13.
type ChaosBenchParams struct {
	// Seed drives every scenario's fault schedule; the same seed replays
	// the same schedules.
	Seed int64
	// Quick restricts the matrix to the smoke scenarios.
	Quick bool
	// Out, when non-nil, streams per-scenario progress.
	Out io.Writer
	// DumpDir, when non-empty, receives a flight-recorder dump for
	// every scenario that fails an invariant (chaos.Options.DumpDir).
	DumpDir string
}

// DefaultChaosBenchParams is the tracked configuration.
func DefaultChaosBenchParams() ChaosBenchParams { return ChaosBenchParams{Seed: 1} }

// QuickChaosBenchParams shrinks the matrix for CI smoke runs.
func QuickChaosBenchParams() ChaosBenchParams { return ChaosBenchParams{Seed: 1, Quick: true} }

// ChaosClassStat aggregates recovery across every scenario that injected
// one fault class.
type ChaosClassStat struct {
	// Events is how many faults of the class were injected; Recovered how
	// many of the affected sites acknowledged a commit after repair.
	Events    int `json:"events"`
	Recovered int `json:"recovered"`
	// MeanMillis/MaxMillis are the recovery times: fault injection to the
	// affected site's first acknowledged commit after repair began.
	MeanMillis float64 `json:"mean_ms"`
	MaxMillis  float64 `json:"max_ms"`
	// MinAvailability is the worst commit availability of any scenario
	// injecting the class (fraction of 100 ms fault-phase buckets with at
	// least one acknowledged commit somewhere).
	MinAvailability float64 `json:"min_availability"`
}

// ChaosReport is E13's section of BENCH_commit.json (schema v7).
type ChaosReport struct {
	Seed int64 `json:"seed"`
	// Scenarios is the per-scenario outcome, in matrix order.
	Scenarios []chaos.Result `json:"scenarios"`
	// ByClass is the aggregated recovery/availability view per fault
	// class, keyed by chaos.FaultClass.
	ByClass map[string]ChaosClassStat `json:"by_class"`
	// Replace aggregates the auto-replacement hysteresis across every
	// scenario that won a replacement round: how long the survivors
	// deliberately waited before acting (detect) versus how long the
	// repair itself took (rebuild).
	Replace ReplaceStat `json:"replace"`
}

// ReplaceStat aggregates auto-replacement phase timings across the
// matrix (see chaos.ReplacementMs).
type ReplaceStat struct {
	// Rounds is how many replacement rounds were won; Rebuilt how many
	// completed their state transfer.
	Rounds  int `json:"rounds"`
	Rebuilt int `json:"rebuilt"`
	// MeanDetectMillis is the mean sustained-suspicion window before a
	// survivor acted; MeanRebuildMillis the mean membership-commit plus
	// state-transfer time that followed.
	MeanDetectMillis  float64 `json:"mean_detect_ms"`
	MeanRebuildMillis float64 `json:"mean_rebuild_ms"`
}

// Failures counts scenarios whose invariants did not hold.
func (r ChaosReport) Failures() int {
	n := 0
	for _, res := range r.Scenarios {
		if !res.Pass {
			n++
		}
	}
	return n
}

// ChaosBench runs E13: the shipped scenario matrix at one seed. An
// invariant violation is a failed row, not an error; err is reserved for
// harness failures.
func ChaosBench(p ChaosBenchParams) (ChaosReport, error) {
	rep := ChaosReport{Seed: p.Seed, ByClass: make(map[string]ChaosClassStat)}
	for _, sc := range chaos.Scenarios(p.Quick) {
		res, err := chaos.Run(sc, p.Seed, chaos.Options{Out: p.Out, DumpDir: p.DumpDir})
		if err != nil {
			return rep, fmt.Errorf("chaos %s: %w", sc.Name, err)
		}
		rep.Scenarios = append(rep.Scenarios, *res)
		for class, st := range res.Recovery {
			agg := rep.ByClass[class]
			// st.MeanMs is a mean over st.Recovered sites; re-weight into
			// the running aggregate before normalizing below.
			agg.MeanMillis += st.MeanMs * float64(st.Recovered)
			agg.Events += st.Events
			agg.Recovered += st.Recovered
			if st.MaxMs > agg.MaxMillis {
				agg.MaxMillis = st.MaxMs
			}
			if agg.MinAvailability == 0 || res.Availability < agg.MinAvailability {
				agg.MinAvailability = res.Availability
			}
			rep.ByClass[class] = agg
		}
		for _, rm := range res.Replacements {
			rep.Replace.Rounds++
			rep.Replace.MeanDetectMillis += rm.DetectMs
			if rm.RebuildMs > 0 {
				rep.Replace.Rebuilt++
				rep.Replace.MeanRebuildMillis += rm.RebuildMs
			}
		}
	}
	for class, agg := range rep.ByClass {
		if agg.Recovered > 0 {
			agg.MeanMillis /= float64(agg.Recovered)
		}
		rep.ByClass[class] = agg
	}
	if rep.Replace.Rounds > 0 {
		rep.Replace.MeanDetectMillis /= float64(rep.Replace.Rounds)
	}
	if rep.Replace.Rebuilt > 0 {
		rep.Replace.MeanRebuildMillis /= float64(rep.Replace.Rebuilt)
	}
	return rep, nil
}

// Table renders E13 as the otpbench plain-text tables.
func (r ChaosReport) Table() Table {
	t := Table{
		Title: "E13 — Chaos matrix: invariants under injected faults (tracked in BENCH_commit.json)",
		Columns: []string{
			"scenario", "sites", "shards", "events", "acked", "avail", "result",
		},
	}
	for _, res := range r.Scenarios {
		verdict := "pass"
		if !res.Pass {
			verdict = fmt.Sprintf("FAIL (%d violations)", len(res.Violations))
		}
		t.AddRow(res.Scenario,
			fmt.Sprintf("%d", res.Sites), fmt.Sprintf("%d", res.Shards),
			fmt.Sprintf("%d", res.Events),
			fmt.Sprintf("%d/%d", res.Acked, res.Submitted),
			fmt.Sprintf("%.3f", res.Availability), verdict)
	}
	classes := make([]string, 0, len(r.ByClass))
	for class := range r.ByClass {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		st := r.ByClass[class]
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%s: %d/%d recovered, recovery mean %.0fms max %.0fms, worst availability %.3f",
			class, st.Recovered, st.Events, st.MeanMillis, st.MaxMillis, st.MinAvailability))
	}
	if r.Replace.Rounds > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"auto-replace: %d rounds (%d rebuilt), detect mean %.0fms, rebuild mean %.0fms",
			r.Replace.Rounds, r.Replace.Rebuilt, r.Replace.MeanDetectMillis, r.Replace.MeanRebuildMillis))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"seed %d; invariants: digest convergence, no lost acked commit, effect-once, epoch monotonicity", r.Seed))
	return t
}
