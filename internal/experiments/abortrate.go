package experiments

import (
	"fmt"
	"math/rand"

	"otpdb/internal/abcast"
	"otpdb/internal/otp"
	"otpdb/internal/workload"
)

// AbortRateParams configures the Section 3.2 claim reproduction: order
// mismatches between tentative and definitive delivery only cost aborts
// when the affected transactions conflict, so with enough conflict
// classes the abort rate stays low even under heavy mismatch.
type AbortRateParams struct {
	// Txns is the number of transactions per cell.
	Txns int
	// Classes is the swept number of conflict classes.
	Classes []int
	// MismatchProbs is the swept per-adjacent-pair swap probability of
	// the tentative order relative to the definitive one.
	MismatchProbs []float64
	// Seed fixes workload randomness.
	Seed int64
}

// DefaultAbortRateParams covers the interesting region.
func DefaultAbortRateParams() AbortRateParams {
	return AbortRateParams{
		Txns:          2000,
		Classes:       []int{1, 2, 4, 8, 16, 64},
		MismatchProbs: []float64{0.01, 0.05, 0.10, 0.25, 0.50},
		Seed:          7,
	}
}

// abortExec is a minimal auto-completing executor for the sweep.
type abortExec struct{ mgr *otp.Manager }

func (e *abortExec) Submit(tx *otp.Txn, epoch int) { e.mgr.OnExecuted(tx.ID, epoch) }
func (e *abortExec) Abort(*otp.Txn)                {}
func (e *abortExec) Commit(*otp.Txn)               {}

// AbortRateCell drives one OTP manager through a mismatched schedule with
// the given parameters and returns its stats — the unit the E2 table and
// the BenchmarkAbortRate benchmark share.
func AbortRateCell(txns, classes int, p float64, seed int64) otp.Stats {
	return runAbortCell(txns, classes, p, rand.New(rand.NewSource(seed)))
}

// runAbortCell drives one OTP manager through a mismatched schedule and
// returns its stats. Executions complete instantly, which maximises the
// number of executed-but-pending heads — the worst case for aborts.
func runAbortCell(txns, classes int, p float64, rng *rand.Rand) otp.Stats {
	exec := &abortExec{}
	mgr := otp.NewManager(exec, otp.Hooks{})
	exec.mgr = mgr

	classOf := make([]otp.ClassID, txns)
	for i := range classOf {
		classOf[i] = otp.ClassID(fmt.Sprintf("c%d", rng.Intn(classes)))
	}
	tentative := workload.MismatchedOrder(txns, p, rng)
	id := func(n int) abcast.MsgID { return abcast.MsgID{Origin: 0, Seq: uint64(n + 1)} }

	// All Opt-deliveries in tentative order, then all TO-deliveries in
	// definitive order: the maximum-divergence interleaving.
	for _, n := range tentative {
		if err := mgr.OnOptDeliver(id(n), classOf[n], nil); err != nil {
			panic(err)
		}
	}
	for n := 0; n < txns; n++ {
		if err := mgr.OnTODeliver(id(n)); err != nil {
			panic(err)
		}
	}
	if mgr.Pending() != 0 {
		panic("abort-rate cell did not quiesce")
	}
	return mgr.Stats()
}

// AbortRate reproduces the Section 3.2 claim as a table: abort rate (CC8
// aborts per committed transaction) as a function of the number of
// conflict classes and the mismatch probability.
func AbortRate(p AbortRateParams) Table {
	if p.Txns == 0 {
		p = DefaultAbortRateParams()
	}
	cols := []string{"classes \\ mismatch"}
	for _, mp := range p.MismatchProbs {
		cols = append(cols, fmt.Sprintf("p=%.2f", mp))
	}
	t := Table{
		Title:   "E2 — abort rate vs conflict classes and order-mismatch probability (§3.2)",
		Columns: cols,
		Notes: []string{
			fmt.Sprintf("%d transactions per cell; executions complete instantly (worst case)", p.Txns),
			"paper claim: non-conflicting mismatches are free, so more classes => fewer aborts",
		},
	}
	for _, classes := range p.Classes {
		row := []string{fmt.Sprintf("%d", classes)}
		for i, mp := range p.MismatchProbs {
			rng := rand.New(rand.NewSource(p.Seed + int64(classes*1000+i)))
			st := runAbortCell(p.Txns, classes, mp, rng)
			row = append(row, fmt.Sprintf("%.2f%%", 100*float64(st.Aborts)/float64(st.Commits)))
		}
		t.AddRow(row...)
	}
	return t
}
