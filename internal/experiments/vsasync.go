package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"otpdb/internal/abcast"
	"otpdb/internal/baseline"
	"otpdb/internal/consensus"
	"otpdb/internal/db"
	"otpdb/internal/metrics"
	"otpdb/internal/sproc"
	"otpdb/internal/storage"
	"otpdb/internal/transport"
)

// VsAsyncParams configures the Section 1 comparison against commercial
// asynchronous replication: comparable performance, but OTP keeps global
// consistency while async loses concurrent updates.
type VsAsyncParams struct {
	// Sites is the cluster size.
	Sites int
	// IncrementsPerSite is how many counter increments each site submits.
	IncrementsPerSite int
	// NetDelay is the propagation delay between sites.
	NetDelay time.Duration
}

// DefaultVsAsyncParams uses a 3-site cluster with a LAN-ish delay.
func DefaultVsAsyncParams() VsAsyncParams {
	return VsAsyncParams{Sites: 3, IncrementsPerSite: 60, NetDelay: 2 * time.Millisecond}
}

func incrRegistry() (*sproc.Registry, error) {
	reg := sproc.NewRegistry()
	err := reg.RegisterUpdate(sproc.Update{
		Name:  "incr",
		Class: "counter",
		Fn: func(ctx sproc.UpdateCtx) (storage.Value, error) {
			cur, _ := ctx.Read("n")
			next := storage.Int64Value(storage.ValueInt64(cur) + 1)
			return next, ctx.Write("n", next)
		},
	})
	return reg, err
}

// vsAsyncResult is one engine's measurement.
type vsAsyncResult struct {
	meanLatency time.Duration
	p95Latency  time.Duration
	lost        int64
	diverged    int
}

func runOTPSide(p VsAsyncParams) (vsAsyncResult, error) {
	reg, err := incrRegistry()
	if err != nil {
		return vsAsyncResult{}, err
	}
	hub := transport.NewHub(p.Sites, transport.WithDelay(p.NetDelay), transport.WithSeed(1))
	defer hub.Close()
	var reps []*db.Replica
	var stops []func()
	for i := 0; i < p.Sites; i++ {
		ep := hub.Endpoint(transport.NodeID(i))
		cons := consensus.New(consensus.Config{Endpoint: ep, RoundTimeout: 100 * time.Millisecond})
		cons.Start()
		bc := abcast.NewOptimistic(ep, cons)
		if err := bc.Start(); err != nil {
			return vsAsyncResult{}, err
		}
		rep, err := db.New(db.Config{ID: transport.NodeID(i), Broadcast: bc, Registry: reg})
		if err != nil {
			return vsAsyncResult{}, err
		}
		rep.Start()
		reps = append(reps, rep)
		stops = append(stops, func() { rep.Stop(); _ = bc.Stop(); cons.Stop() })
	}
	defer func() {
		for _, s := range stops {
			s()
		}
	}()

	hist := metrics.NewHistogram()
	ctx := context.Background()
	var wg sync.WaitGroup
	var execErr error
	var errOnce sync.Once
	for _, rep := range reps {
		wg.Add(1)
		go func(rep *db.Replica) {
			defer wg.Done()
			for i := 0; i < p.IncrementsPerSite; i++ {
				start := time.Now()
				if _, err := rep.Exec(ctx, "incr"); err != nil {
					errOnce.Do(func() { execErr = err })
					return
				}
				hist.Observe(time.Since(start))
			}
		}(rep)
	}
	wg.Wait()
	if execErr != nil {
		return vsAsyncResult{}, execErr
	}
	// Quiesce: every replica commits every transaction.
	total := p.Sites * p.IncrementsPerSite
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	for _, rep := range reps {
		if err := rep.WaitCommits(wctx, total); err != nil {
			break
		}
	}
	cancel()

	res := vsAsyncResult{meanLatency: hist.Mean(), p95Latency: hist.Percentile(95)}
	expected := int64(total)
	d0 := reps[0].Store().Digest()
	for _, rep := range reps {
		v, _ := rep.Store().Get("counter", "n")
		if got := storage.ValueInt64(v); expected-got > res.lost {
			res.lost = expected - got
		}
		if rep.Store().Digest() != d0 {
			res.diverged++
		}
	}
	return res, nil
}

func runAsyncSide(p VsAsyncParams) (vsAsyncResult, error) {
	reg, err := incrRegistry()
	if err != nil {
		return vsAsyncResult{}, err
	}
	hub := transport.NewHub(p.Sites, transport.WithDelay(p.NetDelay), transport.WithSeed(2))
	defer hub.Close()
	var reps []*baseline.AsyncReplica
	for i := 0; i < p.Sites; i++ {
		rep := baseline.NewAsync(hub.Endpoint(transport.NodeID(i)), reg, nil)
		rep.Start()
		reps = append(reps, rep)
	}
	defer func() {
		for _, rep := range reps {
			rep.Stop()
		}
	}()

	hist := metrics.NewHistogram()
	var wg sync.WaitGroup
	var execErr error
	var errOnce sync.Once
	for _, rep := range reps {
		wg.Add(1)
		go func(rep *baseline.AsyncReplica) {
			defer wg.Done()
			for i := 0; i < p.IncrementsPerSite; i++ {
				start := time.Now()
				if err := rep.Exec("incr"); err != nil {
					errOnce.Do(func() { execErr = err })
					return
				}
				hist.Observe(time.Since(start))
			}
		}(rep)
	}
	wg.Wait()
	if execErr != nil {
		return vsAsyncResult{}, execErr
	}
	// Quiesce: every replica has applied every remote write set.
	expectedApplies := uint64((p.Sites - 1) * p.IncrementsPerSite)
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := true
		for _, rep := range reps {
			if rep.Stats().RemoteApplies < expectedApplies {
				done = false
				break
			}
		}
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	res := vsAsyncResult{meanLatency: hist.Mean(), p95Latency: hist.Percentile(95)}
	expected := int64(p.Sites * p.IncrementsPerSite)
	d0 := reps[0].Store().Digest()
	for _, rep := range reps {
		v, _ := rep.Get("counter", "n")
		if got := storage.ValueInt64(v); expected-got > res.lost {
			res.lost = expected - got
		}
		if rep.Store().Digest() != d0 {
			res.diverged++
		}
	}
	return res, nil
}

// VsAsync reproduces the Section 1 comparison table: OTP versus
// commercial-style asynchronous replication on the same conflicting
// workload. Async wins on raw commit latency (it only commits locally)
// but loses updates and diverges; OTP pays the broadcast and loses
// nothing.
func VsAsync(p VsAsyncParams) (Table, error) {
	if p.Sites == 0 {
		p = DefaultVsAsyncParams()
	}
	otpRes, err := runOTPSide(p)
	if err != nil {
		return Table{}, fmt.Errorf("otp side: %w", err)
	}
	asyncRes, err := runAsyncSide(p)
	if err != nil {
		return Table{}, fmt.Errorf("async side: %w", err)
	}
	t := Table{
		Title: "E4 — OTP vs asynchronous replication (§1)",
		Columns: []string{
			"engine", "mean latency", "p95 latency", "lost updates", "diverged replicas",
		},
		Notes: []string{
			fmt.Sprintf("%d sites, %d conflicting increments/site, %v network delay",
				p.Sites, p.IncrementsPerSite, p.NetDelay),
			"paper claim (§1): comparable performance with global consistency kept",
		},
	}
	expected := int64(p.Sites * p.IncrementsPerSite)
	t.AddRow("OTP (this paper)",
		otpRes.meanLatency.Round(time.Microsecond).String(),
		otpRes.p95Latency.Round(time.Microsecond).String(),
		fmt.Sprintf("%d/%d", otpRes.lost, expected),
		fmt.Sprintf("%d", otpRes.diverged))
	t.AddRow("async primary-copy",
		asyncRes.meanLatency.Round(time.Microsecond).String(),
		asyncRes.p95Latency.Round(time.Microsecond).String(),
		fmt.Sprintf("%d/%d", asyncRes.lost, expected),
		fmt.Sprintf("%d", asyncRes.diverged))
	return t, nil
}
