package experiments

import (
	"context"
	"fmt"
	"time"

	"otpdb"
)

// This file is E10 (DESIGN.md §4): the state-transfer benchmark. One
// quantity, two regimes: how long a crashed replica takes to rejoin a
// running cluster as a function of how many definitive deliveries it
// missed, under each statex transfer mode —
//
//   - tail-only: the survivors' retained definitive history covers the
//     gap, so catch-up replays the missed deliveries through the
//     scheduler (cost grows with the backlog);
//   - checkpoint+tail: the retention ring has evicted the gap, so the
//     donor streams a full checkpoint first (cost is dominated by state
//     size, not backlog length).
//
// The cells are serialized into BENCH_commit.json (schema v3) by
// `otpbench -json commit`; `otpbench rejoin` runs them standalone.

// RejoinParams sizes E10.
type RejoinParams struct {
	// Sites is the cluster size (the last site is the victim).
	Sites int
	// Backlogs sweeps how many commits land while the victim is down.
	Backlogs []int
	// Keys is the keyspace width, which sets the checkpoint size.
	Keys int
	// EvictCap is the retained-history cap used in the checkpoint-mode
	// cells, small enough that every Backlogs value overflows it.
	EvictCap int
}

// DefaultRejoinParams is the tracked configuration.
func DefaultRejoinParams() RejoinParams {
	return RejoinParams{
		Sites:    3,
		Backlogs: []int{500, 2000, 8000},
		Keys:     64,
		EvictCap: 64,
	}
}

// QuickRejoinParams shrinks the sweep for CI smoke runs.
func QuickRejoinParams() RejoinParams {
	return RejoinParams{
		Sites:    3,
		Backlogs: []int{100, 400},
		Keys:     32,
		EvictCap: 64,
	}
}

// RejoinCell is one measured rejoin.
type RejoinCell struct {
	// Missed is the number of commits the victim was down for.
	Missed int `json:"missed_commits"`
	// Mode is the negotiated transfer shape ("tail-only" or
	// "checkpoint+tail").
	Mode string `json:"mode"`
	// RejoinMillis is the wall time from RestartSite to the victim
	// having committed every missed transaction.
	RejoinMillis float64 `json:"rejoin_ms"`
	// MissedPerSec is Missed / rejoin time — catch-up bandwidth.
	MissedPerSec float64 `json:"missed_per_sec"`
}

// RejoinReport is the E10 payload inside BENCH_commit.json.
type RejoinReport struct {
	Cells []RejoinCell `json:"cells"`
}

// RejoinBench runs E10.
func RejoinBench(p RejoinParams) (RejoinReport, error) {
	var rep RejoinReport
	for _, missed := range p.Backlogs {
		for _, evict := range []bool{false, true} {
			cell, err := rejoinCell(p, missed, evict)
			if err != nil {
				return rep, fmt.Errorf("rejoin (%d missed, evict=%v): %w", missed, evict, err)
			}
			rep.Cells = append(rep.Cells, cell)
		}
	}
	return rep, nil
}

// rejoinCell crashes the last site, commits `missed` transactions
// through the survivors, and times the full rejoin. With evict set the
// cluster's retained history is capped below `missed`, forcing the
// checkpoint+tail fallback; the cell fails if the negotiated mode is
// not the one the configuration was built to produce.
func rejoinCell(p RejoinParams, missed int, evict bool) (RejoinCell, error) {
	opts := []otpdb.Option{otpdb.WithReplicas(p.Sites)}
	wantMode := "tail-only"
	if evict {
		opts = append(opts, otpdb.WithDefLogCap(p.EvictCap))
		wantMode = "checkpoint+tail"
	}
	cluster, err := otpdb.NewCluster(opts...)
	if err != nil {
		return RejoinCell{}, err
	}
	defer cluster.Stop()
	cluster.MustRegisterUpdate(otpdb.Update{
		Name:  "bump",
		Class: "c",
		Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
			key := otpdb.Key(otpdb.AsString(ctx.Args()[0]))
			v, _ := ctx.Read(key)
			next := otpdb.Int64(otpdb.AsInt64(v) + 1)
			return next, ctx.Write(key, next)
		},
	})
	if err := cluster.Start(); err != nil {
		return RejoinCell{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	victim := p.Sites - 1
	submit := func(n, from int) error {
		for i := 0; i < n; i++ {
			key := otpdb.String(fmt.Sprintf("k%d", (from+i)%p.Keys))
			if _, err := cluster.Submit(0, "bump", key); err != nil {
				return err
			}
		}
		return nil
	}

	const warm = 20
	if err := submit(warm, 0); err != nil {
		return RejoinCell{}, err
	}
	if err := cluster.WaitForCommits(ctx, warm); err != nil {
		return RejoinCell{}, err
	}
	if err := cluster.CrashSite(victim); err != nil {
		return RejoinCell{}, err
	}
	if err := submit(missed, warm); err != nil {
		return RejoinCell{}, err
	}
	if err := cluster.WaitForCommits(ctx, warm+missed); err != nil {
		return RejoinCell{}, err
	}

	start := time.Now()
	if err := cluster.RestartSite(ctx, victim); err != nil {
		return RejoinCell{}, err
	}
	// Rejoin is complete once the victim has committed everything it
	// missed (WaitForCommits spans every live site again).
	if err := cluster.WaitForCommits(ctx, warm+missed); err != nil {
		return RejoinCell{}, err
	}
	elapsed := time.Since(start)

	mode, err := cluster.RejoinMode(victim)
	if err != nil {
		return RejoinCell{}, err
	}
	if mode != wantMode {
		return RejoinCell{}, fmt.Errorf("negotiated %s, cell is built for %s", mode, wantMode)
	}
	d0, err := cluster.DigestAt(0)
	if err != nil {
		return RejoinCell{}, err
	}
	dv, err := cluster.DigestAt(victim)
	if err != nil {
		return RejoinCell{}, err
	}
	if d0 != dv {
		return RejoinCell{}, fmt.Errorf("victim digest diverged after rejoin")
	}
	return RejoinCell{
		Missed:       missed,
		Mode:         mode,
		RejoinMillis: float64(elapsed.Nanoseconds()) / 1e6,
		MissedPerSec: float64(missed) / elapsed.Seconds(),
	}, nil
}

// Table renders E10 as the otpbench plain-text tables.
func (r RejoinReport) Table() Table {
	t := Table{
		Title: "E10 — Live rejoin via state transfer (tracked in BENCH_commit.json)",
		Columns: []string{
			"mode", "missed", "rejoin", "catch-up rate",
		},
	}
	for _, c := range r.Cells {
		t.AddRow(c.Mode, fmt.Sprintf("%d", c.Missed),
			fmt.Sprintf("%.1fms", c.RejoinMillis),
			fmt.Sprintf("%.0f missed/s", c.MissedPerSec))
	}
	return t
}
